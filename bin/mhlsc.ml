(** [mhlsc] — command-line driver for the MLIR HLS adaptor flows.

    Subcommands:
    - [list]     enumerate the built-in kernels;
    - [emit]     print a kernel's IR at any stage of either flow;
    - [synth]    run a flow end-to-end and print the synthesis report
                 ([compile] is an alias);
    - [compare]  run both flows and compare QoR;
    - [cosim]    three-way functional co-simulation;
    - [adapt]    run the adaptor on an .ll file (our textual dialect);
    - [lint]     run the HLS diagnostics engine and report all findings;
    - [batch]    compile a set of jobs in parallel with result caching;
    - [dse]      explore the directive design space;
    - [opt]      run the LLVM pass pipeline, optionally
                 parallel-by-function behind the static safety checker;
    - [serve]    long-lived compile daemon over a Unix socket;
    - [client]   send one protocol request to a running daemon.

    This file is a {e thin argv layer}: every subcommand parses flags
    into the typed requests of {!Mhls_serve.Protocol} (or the local
    request types of {!Mhls_cli.Handlers}) and calls the same pure
    handlers the [serve] dispatcher uses; responses are printed via
    {!Mhls_cli.Render}.  Only here are [result] errors rendered and
    turned into exit codes. *)

open Cmdliner
module K = Workloads.Kernels
module D = Mhls_driver.Driver
module P = Mhls_serve.Protocol
module H = Mhls_cli.Handlers
module R = Mhls_cli.Render

(* ------------------------------------------------------------------ *)
(* Error rendering: the exception/exit boundary                       *)
(* ------------------------------------------------------------------ *)

let die (ds : Support.Diag.t list) : 'a =
  prerr_string (Support.Diag.render ds);
  exit (Support.Diag.exit_code ds)

let ok_or_die = function Ok v -> v | Error ds -> die ds

let find_kernel name =
  match K.by_name name with
  | Some k -> k
  | None ->
      Printf.eprintf "unknown kernel %s; try `mhlsc list`\n" name;
      exit 1

(* ------------------------------------------------------------------ *)
(* Shared arguments                                                   *)
(* ------------------------------------------------------------------ *)

let kernel_arg =
  let doc = "Kernel name (see `mhlsc list`)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"KERNEL" ~doc)

let pipeline_arg =
  let doc = "Pipeline target II (0 disables pipelining)." in
  Arg.(value & opt int 1 & info [ "pipeline"; "ii" ] ~docv:"II" ~doc)

let strategy_arg =
  let doc = "Directive strategy: $(b,inner) pipelines the reduction loop; \
             $(b,middle) pipelines the second-innermost loop and fully \
             unrolls the reduction." in
  Arg.(value & opt (enum [ ("inner", "inner"); ("middle", "middle") ]) "inner"
       & info [ "strategy" ] ~docv:"S" ~doc)

let unroll_arg =
  let doc = "Unroll factor for the innermost loop (inner strategy only)." in
  Arg.(value & opt (some int) None & info [ "unroll" ] ~docv:"N" ~doc)

let partition_arg =
  let doc = "Array partition directive, repeatable: ARG:KIND:FACTOR:DIM \
             (e.g. A:cyclic:4:2)." in
  Arg.(value & opt_all string [] & info [ "partition" ] ~docv:"SPEC" ~doc)

let clock_arg =
  let doc = "Target clock period in nanoseconds." in
  Arg.(value & opt float 10.0 & info [ "clock" ] ~docv:"NS" ~doc)

let flow_arg =
  let doc = "Flow: $(b,direct) (MLIR->LLVM IR->adaptor, the paper's \
             proposal) or $(b,cpp) (MLIR->HLS C++->Clang, the baseline)." in
  Arg.(value & opt (enum [ ("direct", "direct"); ("cpp", "cpp") ]) "direct"
       & info [ "flow" ] ~docv:"FLOW" ~doc)

let sched_arg =
  let doc = "Scheduling discipline of the estimation backend: \
             $(b,static) (list scheduling, the default) or $(b,dynamic) \
             (elastic/dataflow: units fire when operands arrive, loop II \
             emerges from token round-trip time)." in
  Arg.(value & opt (enum [ ("static", "static"); ("dynamic", "dynamic") ])
         "static"
       & info [ "sched" ] ~docv:"SCHED" ~doc)

(** Directive flags to the protocol's directive record ([ii <= 0]
    disables pipelining inside the handler). *)
let directives_of ~pipeline ~strategy ~unroll ~partitions : P.directives =
  {
    P.d_ii = Some pipeline;
    d_unroll = unroll;
    d_strategy = strategy;
    d_partitions = ok_or_die (H.parse_partitions partitions);
  }

(* Adaptor pass-pipeline flags, shared by adapt / lint / synth / batch *)

let passes_arg =
  let doc =
    "Run exactly these adaptor passes, in order (comma-separated). \
     Defaults to the full pipeline; see the README for pass names."
  in
  Arg.(value & opt (some string) None & info [ "passes" ] ~docv:"P1,P2" ~doc)

let disable_pass_arg =
  let doc = "Disable one adaptor pass by name (repeatable)." in
  Arg.(value & opt_all string [] & info [ "disable-pass" ] ~docv:"NAME" ~doc)

let split_passes = Option.map (String.split_on_char ',')

let jobs_arg =
  let doc = "Worker domains to compile on (1 = sequential)." in
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let cache_dir_arg =
  let doc =
    "Result cache directory (content-addressed; safe to share between \
     runs).  Pass the empty string to disable caching."
  in
  Arg.(value & opt string ".mhlsc-cache" & info [ "cache-dir" ] ~docv:"DIR" ~doc)

let cache_dir_opt dir = if dir = "" then None else Some dir

let read_file path = In_channel.with_open_text path In_channel.input_all

(* ------------------------------------------------------------------ *)
(* list                                                               *)
(* ------------------------------------------------------------------ *)

let list_cmd =
  let run () = print_string (R.kernel_list (H.list_kernels ())) in
  Cmd.v (Cmd.info "list" ~doc:"List the built-in benchmark kernels.")
    Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* emit                                                               *)
(* ------------------------------------------------------------------ *)

let stage_arg =
  let doc = "IR stage to print: mhir, mhir-generic, llvm (modern), \
             adapted (HLS-ready), or cpp (baseline C++)." in
  Arg.(value & opt (enum
         [ ("mhir", H.Mhir); ("mhir-generic", H.Mhir_generic);
           ("llvm", H.Llvm); ("adapted", H.Adapted); ("cpp", H.Cpp) ])
         H.Adapted
       & info [ "stage" ] ~docv:"STAGE" ~doc)

let emit_cmd =
  let run kernel stage pipeline strategy unroll partitions =
    let k = find_kernel kernel in
    let directives = directives_of ~pipeline ~strategy ~unroll ~partitions in
    print_string (ok_or_die (H.emit ~kernel:k.K.kname ~stage ~directives))
  in
  Cmd.v
    (Cmd.info "emit" ~doc:"Print a kernel's IR at a chosen stage.")
    Term.(const run $ kernel_arg $ stage_arg $ pipeline_arg $ strategy_arg
          $ unroll_arg $ partition_arg)

(* ------------------------------------------------------------------ *)
(* synth (and its service-speak alias, compile)                       *)
(* ------------------------------------------------------------------ *)

let synth_run kernel flow sched pipeline strategy unroll partitions clock
    verbose passes disable =
  let k = find_kernel kernel in
  let req =
    {
      P.c_kernel = k.K.kname;
      c_flow = flow;
      c_sched = sched;
      c_directives = directives_of ~pipeline ~strategy ~unroll ~partitions;
      c_clock_ns = clock;
      c_passes = split_passes passes;
      c_disable = disable;
    }
  in
  let env = H.create_env () in
  Fun.protect
    ~finally:(fun () -> H.close_env env)
    (fun () ->
      let resp =
        ok_or_die (H.compile env ~trace:Support.Tracing.null req)
      in
      print_string (R.compile ~verbose resp))

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print the adaptor report.")

let synth_term =
  Term.(const synth_run $ kernel_arg $ flow_arg $ sched_arg $ pipeline_arg
        $ strategy_arg $ unroll_arg $ partition_arg $ clock_arg $ verbose_arg
        $ passes_arg $ disable_pass_arg)

let synth_cmd =
  Cmd.v
    (Cmd.info "synth" ~doc:"Run one flow end-to-end and print the synthesis report.")
    synth_term

let compile_cmd =
  Cmd.v
    (Cmd.info "compile"
       ~doc:"Alias of $(b,synth): the same compile job the serve protocol \
             runs, named like the service request.")
    synth_term

(* ------------------------------------------------------------------ *)
(* compare                                                            *)
(* ------------------------------------------------------------------ *)

let compare_cmd =
  let run kernel pipeline strategy unroll partitions clock =
    let k = find_kernel kernel in
    let directives = directives_of ~pipeline ~strategy ~unroll ~partitions in
    print_string
      (R.compare
         (ok_or_die
            (H.compare_kernel ~kernel:k.K.kname ~directives ~clock_ns:clock)))
  in
  Cmd.v
    (Cmd.info "compare" ~doc:"Run both flows and compare QoR.")
    Term.(const run $ kernel_arg $ pipeline_arg $ strategy_arg $ unroll_arg
          $ partition_arg $ clock_arg)

(* ------------------------------------------------------------------ *)
(* cosim                                                              *)
(* ------------------------------------------------------------------ *)

let cosim_cmd =
  let run kernel pipeline strategy unroll partitions =
    let k = find_kernel kernel in
    let directives = directives_of ~pipeline ~strategy ~unroll ~partitions in
    let cs = ok_or_die (H.cosim ~kernel:k.K.kname ~directives) in
    print_string (R.cosim cs);
    if not cs.Flow.ok then exit 1
  in
  Cmd.v
    (Cmd.info "cosim"
       ~doc:"Co-simulate: mhir interpreter, both flows' LLVM IR, and the \
             OCaml reference must agree.")
    Term.(const run $ kernel_arg $ pipeline_arg $ strategy_arg $ unroll_arg
          $ partition_arg)

(* ------------------------------------------------------------------ *)
(* adapt                                                              *)
(* ------------------------------------------------------------------ *)

let adapt_cmd =
  let file =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"FILE.ll" ~doc:"LLVM IR file (this tool's dialect).")
  in
  let run file strict passes disable =
    let r =
      ok_or_die
        (H.adapt ~source:(read_file file) ~strict
           ~passes:(split_passes passes) ~disable ())
    in
    prerr_string r.H.a_report;
    print_string r.H.a_ir
  in
  let strict =
    Arg.(value & flag & info [ "strict" ]
         ~doc:"Fail unless the output is fully HLS-ready.")
  in
  Cmd.v
    (Cmd.info "adapt"
       ~doc:"Run the adaptor on an .ll file and print the legalized IR \
             (report goes to stderr).")
    Term.(const run $ file $ strict $ passes_arg $ disable_pass_arg)

(* ------------------------------------------------------------------ *)
(* lint                                                               *)
(* ------------------------------------------------------------------ *)

let lint_cmd =
  let target =
    Arg.(value & pos 0 (some string) None
         & info [] ~docv:"TARGET"
             ~doc:"Kernel name (see `mhlsc list`) or an .ll file (this \
                   tool's dialect).  Kernels are linted on the adapter's \
                   HLS-ready output; files are linted as written.  Not \
                   needed with $(b,--list-rules).")
  in
  let list_rules =
    Arg.(value & flag
         & info [ "list-rules" ]
             ~doc:"Print the rule registry (ID, default severity, summary) \
                   and exit.")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the diagnostics as JSON.")
  in
  let werror =
    Arg.(value & flag & info [ "werror" ] ~doc:"Promote warnings to errors.")
  in
  let top =
    Arg.(value & opt (some string) None
         & info [ "top" ] ~docv:"NAME"
             ~doc:"Top function for interface rules (default: the module's \
                   single function).")
  in
  let rules =
    Arg.(value & opt (some string) None
         & info [ "rules" ] ~docv:"IDS"
             ~doc:"Comma-separated rule IDs to keep (e.g. HLS001,HLS004).")
  in
  let run target list_rules json werror top rules pipeline strategy unroll
      partitions passes disable =
    if list_rules then begin
      print_string (R.rule_list ~json);
      exit 0
    end;
    let target =
      match target with
      | Some t -> t
      | None ->
          prerr_endline "lint: need a TARGET (or --list-rules)";
          exit 2
    in
    let l_kernel, l_source =
      if Sys.file_exists target then (None, Some (read_file target))
      else (Some (find_kernel target).K.kname, None)
    in
    let req =
      {
        P.l_kernel;
        l_source;
        l_directives = directives_of ~pipeline ~strategy ~unroll ~partitions;
        l_rules = split_passes rules;
        l_werror = werror;
        l_top = top;
        l_passes = split_passes passes;
        l_disable = disable;
      }
    in
    let diags = (ok_or_die (H.lint req)).P.lr_diags in
    if json then print_endline (Support.Diag.to_json diags)
    else print_string (Support.Diag.render diags);
    exit (Support.Diag.exit_code diags)
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Run the HLS diagnostics engine: dataflow and dependence \
             analyses plus compatibility rules, reported all at once. \
             Exit code: 0 clean, 1 warnings, 2 errors.")
    Term.(const run $ target $ list_rules $ json $ werror $ top $ rules
          $ pipeline_arg $ strategy_arg $ unroll_arg $ partition_arg
          $ passes_arg $ disable_pass_arg)

(* ------------------------------------------------------------------ *)
(* synth-mlir: compile a textual multi-level IR file                  *)
(* ------------------------------------------------------------------ *)

let synth_mlir_cmd =
  let file =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"FILE.mlir"
             ~doc:"Multi-level IR in generic textual form (as printed by \
                   `mhlsc emit --stage mhir-generic`).")
  in
  let top =
    Arg.(value & opt (some string) None
         & info [ "top" ] ~docv:"NAME"
             ~doc:"Top function (default: the first function).")
  in
  let run file top flow sched clock verbose =
    let flow =
      match flow with "cpp" -> Flow.Hls_cpp | _ -> Flow.Direct_ir
    in
    let sched = ok_or_die (H.sched_of_name sched) in
    let r =
      ok_or_die
        (H.synth_mlir ~source:(read_file file) ~top ~flow ~sched
           ~clock_ns:clock ())
    in
    if verbose then prerr_string r.H.sm_aux;
    print_string r.H.sm_report
  in
  let verbose =
    Arg.(value & flag
         & info [ "v"; "verbose" ]
             ~doc:"Print the adaptor report / generated C++ to stderr.")
  in
  Cmd.v
    (Cmd.info "synth-mlir"
       ~doc:"Parse a textual multi-level IR file, run a flow end-to-end and \
             print the synthesis report.")
    Term.(const run $ file $ top $ flow_arg $ sched_arg $ clock_arg $ verbose)

(* ------------------------------------------------------------------ *)
(* dse                                                                *)
(* ------------------------------------------------------------------ *)

let dse_cmd =
  let run kernel sched max_evals rounds stable budget_bram budget_dsp
      budget_lut jobs cache_dir clock out =
    let k = find_kernel kernel in
    let req =
      {
        P.ds_kernel = k.K.kname;
        ds_sched = sched;
        ds_max_evals = Some max_evals;
        ds_rounds = Some rounds;
        ds_stable = Some stable;
        ds_budget_bram = budget_bram;
        ds_budget_dsp = budget_dsp;
        ds_budget_lut = budget_lut;
        ds_clock_ns = clock;
      }
    in
    let r =
      ok_or_die
        (H.dse ?cache_dir:(cache_dir_opt cache_dir) ~jobs
           ~trace:Support.Tracing.null req)
    in
    print_string r.P.dr_report;
    (match out with
    | Some path ->
        Out_channel.with_open_text path (fun oc ->
            Out_channel.output_string oc r.P.dr_json);
        (* validate what we just wrote, so a green exit implies a
           schema-conforming export (CI asserts on this) *)
        (match Mhls_dse.Dse_json.validate_file path with
        | Ok () -> Printf.printf "\ndse.json: frontier -> %s (valid)\n" path
        | Error e ->
            Printf.eprintf "dse.json: %s\n" e;
            exit 1)
    | None -> ());
    print_string (R.dse_best r)
  in
  let module S = Mhls_dse.Search in
  let dse_sched =
    let doc = "Estimation-backend axis of the space: $(b,static), \
               $(b,dynamic), or $(b,both) (the search then explores \
               scheduling discipline as one more axis)." in
    Arg.(value & opt (enum [ ("static", "static"); ("dynamic", "dynamic");
                             ("both", "both") ]) "static"
         & info [ "sched" ] ~docv:"SCHED" ~doc)
  in
  let max_evals =
    Arg.(value & opt int S.default_params.S.max_evals
         & info [ "max-evals" ] ~docv:"N"
             ~doc:"Cap on distinct configurations evaluated.")
  in
  let rounds =
    Arg.(value & opt int S.default_params.S.max_rounds
         & info [ "rounds" ] ~docv:"N" ~doc:"Cap on search rounds.")
  in
  let stable =
    Arg.(value & opt int S.default_params.S.stable_rounds
         & info [ "stable-rounds" ] ~docv:"K"
             ~doc:"Stop after K consecutive rounds without frontier change.")
  in
  let budget_bram =
    Arg.(value & opt (some int) None
         & info [ "budget-bram"; "max-bram" ] ~docv:"N" ~doc:"BRAM18K budget.")
  in
  let budget_dsp =
    Arg.(value & opt (some int) None
         & info [ "budget-dsp"; "max-dsp" ] ~docv:"N" ~doc:"DSP48 budget.")
  in
  let budget_lut =
    Arg.(value & opt (some int) None
         & info [ "budget-lut" ] ~docv:"N" ~doc:"LUT budget.")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE.json"
             ~doc:"Write the versioned dse.json frontier export (validated \
                   after writing).")
  in
  Cmd.v
    (Cmd.info "dse"
       ~doc:"Pareto-archive design-space exploration: the search space is \
             derived from the kernel's own loops and arrays, candidates \
             compile as parallel cached jobs on the batch driver, and the \
             frontier is deterministic for any $(b,--jobs).")
    Term.(const run $ kernel_arg $ dse_sched $ max_evals $ rounds $ stable
          $ budget_bram $ budget_dsp $ budget_lut $ jobs_arg $ cache_dir_arg
          $ clock_arg $ out)

(* ------------------------------------------------------------------ *)
(* batch                                                              *)
(* ------------------------------------------------------------------ *)

let batch_cmd =
  let manifest =
    Arg.(value & pos 0 (some file) None
         & info [] ~docv:"MANIFEST"
             ~doc:"Job manifest: one job per line, `KERNEL key=value ...` \
                   (see the README).  Mutually exclusive with \
                   $(b,--all-kernels).")
  in
  let all_kernels =
    Arg.(value & flag
         & info [ "all-kernels" ]
             ~doc:"Sweep every built-in kernel through the default \
                   directive grid.")
  in
  let both_flows =
    Arg.(value & flag
         & info [ "both-flows" ]
             ~doc:"With $(b,--all-kernels): run the HLS C++ baseline flow \
                   next to the direct-IR flow.")
  in
  let trace_out =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE.json"
             ~doc:"Write the per-job per-pass JSON trace and print the \
                   aggregate pass summary.")
  in
  let run manifest all_kernels both_flows sched jobs cache_dir trace_out
      clock passes disable =
    if manifest = None && not all_kernels then begin
      prerr_endline "batch: need a MANIFEST file or --all-kernels";
      exit 2
    end;
    let sched = ok_or_die (H.sched_of_name sched) in
    let b =
      ok_or_die
        (H.batch
           ~manifest:(Option.map read_file manifest)
           ~all_kernels ~both_flows ~sched ~jobs
           ~cache_dir:(cache_dir_opt cache_dir) ~clock_ns:clock
           ~passes:(split_passes passes) ~disable ())
    in
    print_string (D.render b);
    (match trace_out with
    | Some path ->
        let records = D.trace_records b in
        Mhls_driver.Trace.write_file ~tool:D.tool_version path records;
        Printf.printf "\ntrace: %d records -> %s\n%s" (List.length records)
          path
          (Mhls_driver.Trace.summary_table records)
    | None -> ());
    let failed =
      List.exists
        (fun (o : D.outcome) -> Result.is_error o.D.o_qor)
        b.D.outcomes
    in
    exit (if failed then 1 else 0)
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:"Compile a set of jobs (kernel × flow × directives) on a \
             parallel worker pool with persistent result caching; print \
             the QoR table, run statistics, and optionally a per-pass \
             JSON trace.")
    Term.(const run $ manifest $ all_kernels $ both_flows $ sched_arg
          $ jobs_arg $ cache_dir_arg $ trace_out $ clock_arg $ passes_arg
          $ disable_pass_arg)

(* ------------------------------------------------------------------ *)
(* opt: run the LLVM pass pipeline (optionally parallel-by-function)  *)
(* ------------------------------------------------------------------ *)

let opt_cmd =
  let file =
    Arg.(value & pos 0 (some file) None
         & info [] ~docv:"FILE.ll"
             ~doc:"LLVM IR file (this tool's dialect).  Mutually exclusive \
                   with $(b,--synth).")
  in
  let synth_n =
    Arg.(value & opt (some int) None
         & info [ "synth" ] ~docv:"N"
             ~doc:"Instead of a file, optimize a generated module of N \
                   independent kernel functions (the parallel-pipeline \
                   smoke workload).")
  in
  let parallel =
    Arg.(value & flag
         & info [ "parallel-passes" ]
             ~doc:"Fan the function-local pass tail out over $(b,--jobs) \
                   worker domains when the static parallel-safety checker \
                   proves the module race-free; byte-identical to the \
                   sequential pipeline.")
  in
  let llvm_passes =
    Arg.(value & opt (some string) None
         & info [ "passes" ] ~docv:"P1,P2"
             ~doc:"Run exactly these LLVM passes, in order \
                   (comma-separated; see `Pass.by_name`).  Defaults to the \
                   full cleanup pipeline.")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE"
             ~doc:"Write the optimized module here instead of stdout.")
  in
  let parsafe =
    Arg.(value & flag
         & info [ "parsafe" ]
             ~doc:"Only run the parallel-safety checker and print its \
                   verdict (exit 0 safe, 1 unsafe).")
  in
  let json =
    Arg.(value & flag
         & info [ "json" ] ~doc:"With $(b,--parsafe): emit the verdict as JSON.")
  in
  let run file synth_n parallel llvm_passes jobs out parsafe json =
    (match (file, synth_n) with
    | Some _, Some _ ->
        prerr_endline "opt: FILE.ll and --synth are mutually exclusive";
        exit 2
    | None, None ->
        prerr_endline "opt: need FILE.ll or --synth N";
        exit 2
    | _ -> ());
    let req =
      {
        P.op_source = Option.map read_file file;
        op_synth = synth_n;
        op_passes = split_passes llvm_passes;
        op_parallel = parallel;
        op_jobs = jobs;
        op_parsafe = parsafe;
        op_json = json;
      }
    in
    let r = ok_or_die (H.opt req) in
    if parsafe then begin
      print_endline (Option.value r.P.or_verdict ~default:"");
      exit (if r.P.or_safe then 0 else 1)
    end;
    (match r.P.or_par_status with
    | Some status -> Printf.eprintf "opt: %s\n" status
    | None -> ());
    Printf.eprintf "opt: %d passes, %.1f ms\n" r.P.or_passes
      (r.P.or_seconds *. 1000.0);
    match out with
    | Some path -> Out_channel.with_open_text path (fun oc ->
        Out_channel.output_string oc r.P.or_ir)
    | None -> print_string r.P.or_ir
  in
  Cmd.v
    (Cmd.info "opt"
       ~doc:"Run the LLVM cleanup pipeline on a module — from a file or \
             generated with $(b,--synth) — sequentially or, when the \
             parallel-safety checker proves the module race-free, \
             parallel-by-function with byte-identical output.")
    Term.(const run $ file $ synth_n $ parallel $ llvm_passes $ jobs_arg
          $ out $ parsafe $ json)

(* ------------------------------------------------------------------ *)
(* fuzz                                                               *)
(* ------------------------------------------------------------------ *)

let fuzz_cmd =
  let run seed count stages shrink repro_dir jobs =
    let req =
      { P.f_seed = seed; f_count = count; f_stages = stages;
        f_shrink = shrink; f_jobs = jobs }
    in
    let repro_dir = if repro_dir = "" then None else Some repro_dir in
    let r =
      ok_or_die (H.fuzz ?repro_dir ~trace:Support.Tracing.null req)
    in
    print_string r.P.fr_report;
    exit (if r.P.fr_failures = 0 then 0 else 1)
  in
  let seed =
    Arg.(value & opt int 42
         & info [ "seed" ] ~docv:"N" ~doc:"Base seed for the run.")
  in
  let count =
    Arg.(value & opt int 200
         & info [ "count" ] ~docv:"N" ~doc:"Number of random kernels to test.")
  in
  let stages =
    let doc =
      "Stages to check against the mhir reference interpreter, \
       repeatable: $(b,lower) (modern LLVM lowering + cleanup), \
       $(b,adapted) (full direct-IR front-end incl. the adaptor) or \
       $(b,cpp) (HLS-C++ emission re-parsed by the mini-C front-end)."
    in
    Arg.(value & opt_all string [ "lower"; "adapted"; "cpp" ]
         & info [ "stages" ] ~docv:"STAGE" ~doc)
  in
  let shrink =
    Arg.(value & opt bool true
         & info [ "shrink" ] ~docv:"BOOL"
             ~doc:"Minimize mismatching kernels before reporting.")
  in
  let repro_dir =
    Arg.(value & opt string ""
         & info [ "repro-dir" ] ~docv:"DIR"
             ~doc:"Write a self-contained .mlir repro per mismatch into DIR.")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Differential testing: run random well-typed kernels through \
             every flow stage on identical inputs and cross-check the \
             results bit-for-bit against the mhir interpreter.")
    Term.(const run $ seed $ count $ stages $ shrink $ repro_dir $ jobs_arg)

(* ------------------------------------------------------------------ *)
(* serve                                                              *)
(* ------------------------------------------------------------------ *)

let socket_arg =
  let doc = "Unix-domain socket path." in
  Arg.(value & opt string "mhlsc.sock" & info [ "socket" ] ~docv:"PATH" ~doc)

let serve_cmd =
  let tcp =
    Arg.(value & opt (some int) None
         & info [ "tcp" ] ~docv:"PORT"
             ~doc:"Additionally listen on loopback TCP port PORT.")
  in
  let queue_max =
    Arg.(value & opt int 64
         & info [ "queue-max" ] ~docv:"N"
             ~doc:"Admission-control bound: pending requests beyond N are \
                   answered $(b,busy) instead of queueing.")
  in
  let quiet =
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"No daemon log lines.")
  in
  let budgets =
    Arg.(value & opt_all string []
         & info [ "budget" ] ~docv:"KIND=N"
             ~doc:"Concurrent-evaluation bound for one request kind \
                   (repeatable), e.g. $(b,--budget dse=1).  Kinds not \
                   named keep their defaults (dse=1, fuzz=1, others 4).")
  in
  let max_rss =
    Arg.(value & opt (some int) None
         & info [ "max-rss-mb" ] ~docv:"MB"
             ~doc:"Soft resident-memory cap: above it the daemon sheds its \
                   response memo and latency rings instead of growing \
                   without bound.")
  in
  let parse_budgets (specs : string list) : (string * int) list =
    List.map
      (fun spec ->
        match String.index_opt spec '=' with
        | Some i -> (
            let kind = String.sub spec 0 i in
            let n = String.sub spec (i + 1) (String.length spec - i - 1) in
            match int_of_string_opt n with
            | Some n when n >= 1 && kind <> "" -> (kind, n)
            | _ ->
                Printf.eprintf "serve: bad --budget '%s' (want KIND=N, N ≥ 1)\n"
                  spec;
                exit 2)
        | None ->
            Printf.eprintf "serve: bad --budget '%s' (want KIND=N)\n" spec;
            exit 2)
      specs
  in
  let run socket tcp queue_max jobs cache_dir quiet budgets max_rss =
    let budgets = parse_budgets budgets in
    let env =
      (* Oversubscribed pool: the daemon trades cache-friendly sizing
         for latency — short jobs must not wait behind a sweep just
         because the host has few cores. *)
      H.create_env ?cache_dir:(cache_dir_opt cache_dir) ~jobs
        ~oversubscribe:true ()
    in
    let default = Mhls_serve.Server.default_config in
    let config =
      {
        default with
        Mhls_serve.Server.socket_path = Some socket;
        tcp_port = tcp;
        queue_max;
        budgets =
          budgets
          @ List.filter
              (fun (k, _) -> not (List.mem_assoc k budgets))
              default.Mhls_serve.Server.budgets;
        max_rss_mb = max_rss;
        log =
          (if quiet then ignore
           else fun s -> Printf.eprintf "serve: %s\n%!" s);
      }
    in
    Fun.protect
      ~finally:(fun () -> H.close_env env)
      (fun () ->
        ok_or_die
          (Mhls_serve.Server.serve ~config
             ~counters:(fun () -> H.counters env)
             ~exec:(H.background env)
             ~dispatch:(H.dispatch env) ()))
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the long-lived compile daemon: accepts compile / lint / \
             opt / dse / fuzz jobs over a length-prefixed JSON protocol on \
             a Unix socket, keeping the domain pool and the \
             content-addressed result cache warm across requests.  Request \
             groups evaluate concurrently on the domain pool under \
             per-kind $(b,--budget) bounds with round-robin fairness \
             across connections.  Identical queued or in-flight requests \
             coalesce into one evaluation; resubmitted requests are served \
             from the response memo.  Refuses to start (HLS906) if the \
             socket is owned by a live daemon.  Stop with a $(b,shutdown) \
             request (see `mhlsc client`).")
    Term.(const run $ socket_arg $ tcp $ queue_max $ jobs_arg
          $ cache_dir_arg $ quiet $ budgets $ max_rss)

(* ------------------------------------------------------------------ *)
(* client                                                             *)
(* ------------------------------------------------------------------ *)

let client_cmd =
  let module C = Mhls_serve.Client in
  let request_arg =
    Arg.(required & opt (some string) None
         & info [ "request" ] ~docv:"JSON"
             ~doc:"The request object, e.g. \
                   '{\"kind\": \"compile\", \"kernel\": \"matmul\"}' or \
                   '{\"kind\": \"stats\"}'.")
  in
  let tcp =
    Arg.(value & opt (some int) None
         & info [ "tcp" ] ~docv:"PORT"
             ~doc:"Connect to loopback TCP port PORT instead of the socket.")
  in
  let stream =
    Arg.(value & flag
         & info [ "stream" ]
             ~doc:"Subscribe to pass events (printed to stderr as JSON \
                   lines before the response).")
  in
  let wait =
    Arg.(value & opt float 5.0
         & info [ "wait" ] ~docv:"SECS"
             ~doc:"Keep retrying the connection this long while the daemon \
                   starts.")
  in
  let run socket tcp stream wait request =
    let req =
      match
        Result.bind (Support.Json.parse request) P.request_of_json
      with
      | Ok r -> r
      | Error e ->
          Printf.eprintf "client: bad request: %s\n" e;
          exit 2
    in
    let conn =
      match tcp with
      | Some port -> C.connect_tcp ~retry_for:wait ~port ()
      | None -> C.connect_unix ~retry_for:wait socket
    in
    let c =
      match conn with
      | Ok c -> c
      | Error e ->
          Printf.eprintf "client: cannot connect: %s\n" e;
          exit 2
    in
    let on_event ev =
      Printf.eprintf "%s\n%!"
        (Support.Json.to_string (P.frame_to_json (P.Event ev)))
    in
    let reply =
      match C.request ~stream ~on_event c req with
      | Ok r -> r
      | Error e ->
          Printf.eprintf "client: %s\n" e;
          exit 2
    in
    C.close c;
    print_endline (R.reply_json reply);
    match reply with
    | P.Done _ -> ()
    | P.Busy _ -> exit 1
    | P.Failed _ -> exit 2
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:"Send one serve-protocol request to a running daemon and print \
             the JSON response.  Exit code: 0 ok, 1 busy, 2 error.")
    Term.(const run $ socket_arg $ tcp $ stream $ wait $ request_arg)

(* ------------------------------------------------------------------ *)

let () =
  let doc = "MLIR HLS adaptor for LLVM IR — reference implementation" in
  let info = Cmd.info "mhlsc" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; emit_cmd; synth_cmd; compile_cmd; compare_cmd;
            cosim_cmd; adapt_cmd; lint_cmd; synth_mlir_cmd; dse_cmd;
            batch_cmd; opt_cmd; fuzz_cmd; serve_cmd; client_cmd ]))
