(** [mhlsc] — command-line driver for the MLIR HLS adaptor flows.

    Subcommands:
    - [list]     enumerate the built-in kernels;
    - [emit]     print a kernel's IR at any stage of either flow;
    - [synth]    run a flow end-to-end and print the synthesis report;
    - [compare]  run both flows and compare QoR;
    - [cosim]    three-way functional co-simulation;
    - [adapt]    run the adaptor on an .ll file (our textual dialect);
    - [lint]     run the HLS diagnostics engine and report all findings;
    - [batch]    compile a set of jobs in parallel with result caching;
    - [dse]      explore the directive design space;
    - [opt]      run the LLVM pass pipeline, optionally
                 parallel-by-function behind the static safety checker.

    This executable is the {e exception boundary}: the libraries report
    failures as [result] values ({!Adaptor.run}, {!Flow.run}); only
    here are they rendered and turned into exit codes. *)

open Cmdliner
module K = Workloads.Kernels
module E = Hls_backend.Estimate
module D = Mhls_driver.Driver

(* ------------------------------------------------------------------ *)
(* Shared arguments                                                   *)
(* ------------------------------------------------------------------ *)

let kernel_arg =
  let doc = "Kernel name (see `mhlsc list`)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"KERNEL" ~doc)

let pipeline_arg =
  let doc = "Pipeline target II (0 disables pipelining)." in
  Arg.(value & opt int 1 & info [ "pipeline"; "ii" ] ~docv:"II" ~doc)

let strategy_arg =
  let doc = "Directive strategy: $(b,inner) pipelines the reduction loop; \
             $(b,middle) pipelines the second-innermost loop and fully \
             unrolls the reduction." in
  Arg.(value & opt (enum [ ("inner", K.Inner); ("middle", K.Middle) ]) K.Inner
       & info [ "strategy" ] ~docv:"S" ~doc)

let unroll_arg =
  let doc = "Unroll factor for the innermost loop (inner strategy only)." in
  Arg.(value & opt (some int) None & info [ "unroll" ] ~docv:"N" ~doc)

let partition_arg =
  let doc = "Array partition directive, repeatable: ARG:KIND:FACTOR:DIM \
             (e.g. A:cyclic:4:2)." in
  Arg.(value & opt_all string [] & info [ "partition" ] ~docv:"SPEC" ~doc)

let clock_arg =
  let doc = "Target clock period in nanoseconds." in
  Arg.(value & opt float 10.0 & info [ "clock" ] ~docv:"NS" ~doc)

let flow_arg =
  let doc = "Flow: $(b,direct) (MLIR->LLVM IR->adaptor, the paper's \
             proposal) or $(b,cpp) (MLIR->HLS C++->Clang, the baseline)." in
  Arg.(value & opt (enum [ ("direct", Flow.Direct_ir); ("cpp", Flow.Hls_cpp) ])
         Flow.Direct_ir
       & info [ "flow" ] ~docv:"FLOW" ~doc)

let parse_partitions specs =
  List.map
    (fun spec ->
      match String.split_on_char ':' spec with
      | [ a; kind; f; d ] -> (
          match (int_of_string_opt f, int_of_string_opt d) with
          | Some f, Some d -> (a, kind, f, d)
          | _ -> failwith ("bad partition spec: " ^ spec))
      | _ -> failwith ("bad partition spec: " ^ spec))
    specs

let directives_of ~pipeline ~strategy ~unroll ~partitions =
  {
    K.pipeline_ii = (if pipeline <= 0 then None else Some pipeline);
    K.unroll;
    K.strategy;
    K.partitions = parse_partitions partitions;
  }

let find_kernel name =
  match K.by_name name with
  | Some k -> k
  | None ->
      Printf.eprintf "unknown kernel %s; try `mhlsc list`\n" name;
      exit 1

(* Adaptor pass-pipeline flags, shared by adapt / lint / synth / batch *)

let passes_arg =
  let doc =
    "Run exactly these adaptor passes, in order (comma-separated). \
     Defaults to the full pipeline; see the README for pass names."
  in
  Arg.(value & opt (some string) None & info [ "passes" ] ~docv:"P1,P2" ~doc)

let disable_pass_arg =
  let doc = "Disable one adaptor pass by name (repeatable)." in
  Arg.(value & opt_all string [] & info [ "disable-pass" ] ~docv:"NAME" ~doc)

(** Resolve the pipeline flags; unknown pass names exit with an
    HLS-style diagnostic (rule HLS900), not a stack trace. *)
let pipeline_of_flags ?top ?(strict = true) ~passes ~disable () :
    Adaptor.Pipeline.t =
  let or_die = function
    | Ok p -> p
    | Error d ->
        prerr_string (Support.Diag.render [ d ]);
        exit (Support.Diag.exit_code [ d ])
  in
  let base =
    match passes with
    | None ->
        { Adaptor.Pipeline.default with Adaptor.Pipeline.top; strict }
    | Some spec ->
        or_die
          (Adaptor.Pipeline.of_names ?top ~strict
             (String.split_on_char ',' spec))
  in
  List.fold_left
    (fun p name -> or_die (Adaptor.Pipeline.disable name p))
    base disable

(* ------------------------------------------------------------------ *)
(* list                                                               *)
(* ------------------------------------------------------------------ *)

let list_cmd =
  let run () =
    List.iter
      (fun k ->
        Printf.printf "%-10s %s\n" k.K.kname k.K.description)
      (K.all ())
  in
  Cmd.v (Cmd.info "list" ~doc:"List the built-in benchmark kernels.")
    Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* emit                                                               *)
(* ------------------------------------------------------------------ *)

let stage_arg =
  let doc = "IR stage to print: mhir, mhir-generic, llvm (modern), \
             adapted (HLS-ready), or cpp (baseline C++)." in
  Arg.(value & opt (enum
         [ ("mhir", `Mhir); ("mhir-generic", `Mhir_generic);
           ("llvm", `Llvm); ("adapted", `Adapted); ("cpp", `Cpp) ]) `Adapted
       & info [ "stage" ] ~docv:"STAGE" ~doc)

let emit_cmd =
  let run kernel stage pipeline strategy unroll partitions =
    let k = find_kernel kernel in
    let d = directives_of ~pipeline ~strategy ~unroll ~partitions in
    let m = k.K.build d in
    match stage with
    | `Mhir -> print_string (Mhir.Printer.module_to_string m)
    | `Mhir_generic ->
        print_string (Mhir.Printer.module_to_string ~generic:true m)
    | `Llvm ->
        let lm = Lowering.Lower.lower_module (Mhir.Canonicalize.run m) in
        let lm = fst (Llvmir.Pass.run_pipeline Llvmir.Pass.default_pipeline lm) in
        print_string (Llvmir.Lprinter.module_to_string lm)
    | `Adapted -> (
        match Flow.direct_ir_frontend m with
        | Ok (lm, _, _) -> print_string (Llvmir.Lprinter.module_to_string lm)
        | Error ds ->
            prerr_string (Support.Diag.render ds);
            exit (Support.Diag.exit_code ds))
    | `Cpp ->
        let _, cpp, _ = Flow.hls_cpp_frontend m in
        print_string cpp
  in
  Cmd.v
    (Cmd.info "emit" ~doc:"Print a kernel's IR at a chosen stage.")
    Term.(const run $ kernel_arg $ stage_arg $ pipeline_arg $ strategy_arg
          $ unroll_arg $ partition_arg)

(* ------------------------------------------------------------------ *)
(* synth                                                              *)
(* ------------------------------------------------------------------ *)

let synth_cmd =
  let run kernel flow pipeline strategy unroll partitions clock verbose passes
      disable =
    let k = find_kernel kernel in
    let d = directives_of ~pipeline ~strategy ~unroll ~partitions in
    let adaptor_pipeline =
      pipeline_of_flags ~top:k.K.kname ~passes ~disable ()
    in
    match
      Flow.run ~directives:d ~pipeline:adaptor_pipeline ~clock_ns:clock k flow
    with
    | Error ds ->
        prerr_string (Support.Diag.render ds);
        exit (Support.Diag.exit_code ds)
    | Ok r ->
        Printf.printf "kernel: %s   flow: %s   front-end: %.1f ms\n" k.K.kname
          (Flow.flow_name r.Flow.kind)
          (r.Flow.seconds *. 1000.0);
        (match (verbose, r.Flow.adaptor_report) with
        | true, Some rep -> print_string (Adaptor.report_to_string rep)
        | _ -> ());
        print_string (Hls_backend.Report.render r.Flow.hls)
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print the adaptor report.")
  in
  Cmd.v
    (Cmd.info "synth" ~doc:"Run one flow end-to-end and print the synthesis report.")
    Term.(const run $ kernel_arg $ flow_arg $ pipeline_arg $ strategy_arg
          $ unroll_arg $ partition_arg $ clock_arg $ verbose $ passes_arg
          $ disable_pass_arg)

(* ------------------------------------------------------------------ *)
(* compare                                                            *)
(* ------------------------------------------------------------------ *)

let compare_cmd =
  let run kernel pipeline strategy unroll partitions clock =
    let k = find_kernel kernel in
    let d = directives_of ~pipeline ~strategy ~unroll ~partitions in
    let c = Flow.compare_flows ~directives:d ~clock_ns:clock k in
    Printf.printf "%-12s %12s %12s\n" "" "direct-IR" "HLS C++";
    Printf.printf "%-12s %12d %12d\n" "latency" c.Flow.direct.Flow.hls.E.latency
      c.Flow.cpp.Flow.hls.E.latency;
    Printf.printf "%-12s %12d %12d\n" "BRAM"
      c.Flow.direct.Flow.hls.E.resources.E.bram
      c.Flow.cpp.Flow.hls.E.resources.E.bram;
    Printf.printf "%-12s %12d %12d\n" "DSP"
      c.Flow.direct.Flow.hls.E.resources.E.dsp
      c.Flow.cpp.Flow.hls.E.resources.E.dsp;
    Printf.printf "%-12s %12.1f %12.1f\n" "time (ms)"
      (c.Flow.direct.Flow.seconds *. 1000.0)
      (c.Flow.cpp.Flow.seconds *. 1000.0);
    Printf.printf "latency ratio (cpp/direct): %.3f\n" (Flow.latency_ratio c)
  in
  Cmd.v
    (Cmd.info "compare" ~doc:"Run both flows and compare QoR.")
    Term.(const run $ kernel_arg $ pipeline_arg $ strategy_arg $ unroll_arg
          $ partition_arg $ clock_arg)

(* ------------------------------------------------------------------ *)
(* cosim                                                              *)
(* ------------------------------------------------------------------ *)

let cosim_cmd =
  let run kernel pipeline strategy unroll partitions =
    let k = find_kernel kernel in
    let d = directives_of ~pipeline ~strategy ~unroll ~partitions in
    let cs = Flow.cosim ~directives:d k in
    if cs.Flow.ok then
      Printf.printf "cosim PASS (max relative error %.2e)\n" cs.Flow.max_abs_error
    else begin
      Printf.printf "cosim FAIL\n";
      List.iter print_endline cs.Flow.details;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "cosim"
       ~doc:"Co-simulate: mhir interpreter, both flows' LLVM IR, and the \
             OCaml reference must agree.")
    Term.(const run $ kernel_arg $ pipeline_arg $ strategy_arg $ unroll_arg
          $ partition_arg)

(* ------------------------------------------------------------------ *)
(* adapt                                                              *)
(* ------------------------------------------------------------------ *)

let adapt_cmd =
  let file =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"FILE.ll" ~doc:"LLVM IR file (this tool's dialect).")
  in
  let run file strict passes disable =
    let src = In_channel.with_open_text file In_channel.input_all in
    let m = Llvmir.Lparser.parse_module src in
    Llvmir.Lverifier.verify_module m;
    let pipeline = pipeline_of_flags ~strict ~passes ~disable () in
    match Adaptor.run ~pipeline m with
    | Ok (m', report) ->
        prerr_string (Adaptor.report_to_string report);
        print_string (Llvmir.Lprinter.module_to_string m')
    | Error ds ->
        (* strict gate: the complete accumulated diagnostic list *)
        prerr_string (Support.Diag.render ds);
        exit (Support.Diag.exit_code ds)
  in
  let strict =
    Arg.(value & flag & info [ "strict" ]
         ~doc:"Fail unless the output is fully HLS-ready.")
  in
  Cmd.v
    (Cmd.info "adapt"
       ~doc:"Run the adaptor on an .ll file and print the legalized IR \
             (report goes to stderr).")
    Term.(const run $ file $ strict $ passes_arg $ disable_pass_arg)

(* ------------------------------------------------------------------ *)
(* lint                                                               *)
(* ------------------------------------------------------------------ *)

(** One row per rule, from the single source of truth
    ({!Hls_backend.Lint.catalog}). *)
let render_rule_list ~json =
  let cat = Hls_backend.Lint.catalog in
  if json then
    Printf.sprintf "[%s]\n"
      (String.concat ", "
         (List.map
            (fun (id, sev, summary) ->
              Printf.sprintf
                "{\"id\": \"%s\", \"severity\": \"%s\", \"summary\": \"%s\"}"
                id
                (Support.Diag.severity_name sev)
                summary)
            cat))
  else
    String.concat ""
      (List.map
         (fun (id, sev, summary) ->
           Printf.sprintf "%-8s %-8s %s\n" id
             (Support.Diag.severity_name sev)
             summary)
         cat)

let lint_cmd =
  let target =
    Arg.(value & pos 0 (some string) None
         & info [] ~docv:"TARGET"
             ~doc:"Kernel name (see `mhlsc list`) or an .ll file (this \
                   tool's dialect).  Kernels are linted on the adapter's \
                   HLS-ready output; files are linted as written.  Not \
                   needed with $(b,--list-rules).")
  in
  let list_rules =
    Arg.(value & flag
         & info [ "list-rules" ]
             ~doc:"Print the rule registry (ID, default severity, summary) \
                   and exit.")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the diagnostics as JSON.")
  in
  let werror =
    Arg.(value & flag & info [ "werror" ] ~doc:"Promote warnings to errors.")
  in
  let top =
    Arg.(value & opt (some string) None
         & info [ "top" ] ~docv:"NAME"
             ~doc:"Top function for interface rules (default: the module's \
                   single function).")
  in
  let rules =
    Arg.(value & opt (some string) None
         & info [ "rules" ] ~docv:"IDS"
             ~doc:"Comma-separated rule IDs to keep (e.g. HLS001,HLS004).")
  in
  let run target list_rules json werror top rules pipeline strategy unroll
      partitions passes disable =
    if list_rules then begin
      print_string (render_rule_list ~json);
      exit 0
    end;
    let target =
      match target with
      | Some t -> t
      | None ->
          prerr_endline "lint: need a TARGET (or --list-rules)";
          exit 2
    in
    let only = Option.map (String.split_on_char ',') rules in
    let diags =
      if Sys.file_exists target then
        let src = In_channel.with_open_text target In_channel.input_all in
        match Llvmir.Lparser.parse_module src with
        | m -> Hls_backend.Lint.run ?only ~werror ?top m
        | exception Support.Err.Compile_error e ->
            [ Support.Diag.of_err ~rule:"HLS000" e ]
      else
        let k = find_kernel target in
        let d = directives_of ~pipeline ~strategy ~unroll ~partitions in
        let adaptor_pipeline =
          pipeline_of_flags ~top:k.K.kname ~passes ~disable ()
        in
        Flow.lint_kernel ~directives:d ~pipeline:adaptor_pipeline ?only
          ~werror k
    in
    if json then print_endline (Support.Diag.to_json diags)
    else print_string (Support.Diag.render diags);
    exit (Support.Diag.exit_code diags)
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Run the HLS diagnostics engine: dataflow and dependence \
             analyses plus compatibility rules, reported all at once. \
             Exit code: 0 clean, 1 warnings, 2 errors.")
    Term.(const run $ target $ list_rules $ json $ werror $ top $ rules
          $ pipeline_arg $ strategy_arg $ unroll_arg $ partition_arg
          $ passes_arg $ disable_pass_arg)

(* ------------------------------------------------------------------ *)
(* synth-mlir: compile a textual multi-level IR file                  *)
(* ------------------------------------------------------------------ *)

let synth_mlir_cmd =
  let file =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"FILE.mlir"
             ~doc:"Multi-level IR in generic textual form (as printed by \
                   `mhlsc emit --stage mhir-generic`).")
  in
  let top =
    Arg.(value & opt (some string) None
         & info [ "top" ] ~docv:"NAME"
             ~doc:"Top function (default: the first function).")
  in
  let run file top flow clock verbose =
    let src = In_channel.with_open_text file In_channel.input_all in
    let m = Mhir.Parser.parse_module src in
    Mhir.Verifier.verify_module m;
    let top =
      match (top, m.Mhir.Ir.funcs) with
      | Some t, _ -> t
      | None, f :: _ -> f.Mhir.Ir.fname
      | None, [] ->
          prerr_endline "module has no functions";
          exit 1
    in
    let lm =
      match flow with
      | Flow.Direct_ir -> (
          match Flow.direct_ir_frontend m with
          | Ok (lm, report, _) ->
              if verbose then prerr_string (Adaptor.report_to_string report);
              lm
          | Error ds ->
              prerr_string (Support.Diag.render ds);
              exit (Support.Diag.exit_code ds))
      | Flow.Hls_cpp ->
          let lm, cpp, _ = Flow.hls_cpp_frontend m in
          if verbose then prerr_string cpp;
          lm
    in
    let r = Hls_backend.Estimate.synthesize ~clock_ns:clock ~top lm in
    print_string (Hls_backend.Report.render r)
  in
  let verbose =
    Arg.(value & flag
         & info [ "v"; "verbose" ]
             ~doc:"Print the adaptor report / generated C++ to stderr.")
  in
  Cmd.v
    (Cmd.info "synth-mlir"
       ~doc:"Parse a textual multi-level IR file, run a flow end-to-end and \
             print the synthesis report.")
    Term.(const run $ file $ top $ flow_arg $ clock_arg $ verbose)

(* ------------------------------------------------------------------ *)
(* dse                                                                *)
(* ------------------------------------------------------------------ *)

let jobs_arg =
  let doc = "Worker domains to compile on (1 = sequential)." in
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let cache_dir_arg =
  let doc =
    "Result cache directory (content-addressed; safe to share between \
     runs).  Pass the empty string to disable caching."
  in
  Arg.(value & opt string ".mhlsc-cache" & info [ "cache-dir" ] ~docv:"DIR" ~doc)

let cache_dir_opt dir = if dir = "" then None else Some dir

let dse_cmd =
  let module S = Mhls_dse.Search in
  let run kernel max_evals rounds stable budget_bram budget_dsp budget_lut
      jobs cache_dir clock out =
    let k = find_kernel kernel in
    let params =
      {
        S.max_evals;
        S.max_rounds = rounds;
        S.stable_rounds = stable;
        S.budget =
          {
            S.b_max_bram = budget_bram;
            S.b_max_dsp = budget_dsp;
            S.b_max_lut = budget_lut;
          };
        S.clock_ns = clock;
      }
    in
    let o =
      S.search ~params ~jobs ?cache_dir:(cache_dir_opt cache_dir) k
    in
    print_string (S.render o);
    (match out with
    | Some path ->
        Mhls_dse.Dse_json.write_file ~tool:D.tool_version path o;
        (* validate what we just wrote, so a green exit implies a
           schema-conforming export (CI asserts on this) *)
        (match Mhls_dse.Dse_json.validate_file path with
        | Ok () -> Printf.printf "\ndse.json: frontier -> %s (valid)\n" path
        | Error e ->
            Printf.eprintf "dse.json: %s\n" e;
            exit 1)
    | None -> ());
    match S.best o with
    | Some best ->
        Printf.printf "\nbest: %s (%d cycles)\n" best.S.pt_label
          best.S.pt_report.E.latency
    | None -> print_endline "\nno feasible design point under this budget"
  in
  let max_evals =
    Arg.(value & opt int S.default_params.S.max_evals
         & info [ "max-evals" ] ~docv:"N"
             ~doc:"Cap on distinct configurations evaluated.")
  in
  let rounds =
    Arg.(value & opt int S.default_params.S.max_rounds
         & info [ "rounds" ] ~docv:"N" ~doc:"Cap on search rounds.")
  in
  let stable =
    Arg.(value & opt int S.default_params.S.stable_rounds
         & info [ "stable-rounds" ] ~docv:"K"
             ~doc:"Stop after K consecutive rounds without frontier change.")
  in
  let budget_bram =
    Arg.(value & opt (some int) None
         & info [ "budget-bram"; "max-bram" ] ~docv:"N" ~doc:"BRAM18K budget.")
  in
  let budget_dsp =
    Arg.(value & opt (some int) None
         & info [ "budget-dsp"; "max-dsp" ] ~docv:"N" ~doc:"DSP48 budget.")
  in
  let budget_lut =
    Arg.(value & opt (some int) None
         & info [ "budget-lut" ] ~docv:"N" ~doc:"LUT budget.")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE.json"
             ~doc:"Write the versioned dse.json frontier export (validated \
                   after writing).")
  in
  Cmd.v
    (Cmd.info "dse"
       ~doc:"Pareto-archive design-space exploration: the search space is \
             derived from the kernel's own loops and arrays, candidates \
             compile as parallel cached jobs on the batch driver, and the \
             frontier is deterministic for any $(b,--jobs).")
    Term.(const run $ kernel_arg $ max_evals $ rounds $ stable $ budget_bram
          $ budget_dsp $ budget_lut $ jobs_arg $ cache_dir_arg $ clock_arg
          $ out)

(* ------------------------------------------------------------------ *)
(* batch                                                              *)
(* ------------------------------------------------------------------ *)

let batch_cmd =
  let manifest =
    Arg.(value & pos 0 (some file) None
         & info [] ~docv:"MANIFEST"
             ~doc:"Job manifest: one job per line, `KERNEL key=value ...` \
                   (see the README).  Mutually exclusive with \
                   $(b,--all-kernels).")
  in
  let all_kernels =
    Arg.(value & flag
         & info [ "all-kernels" ]
             ~doc:"Sweep every built-in kernel through the default \
                   directive grid.")
  in
  let both_flows =
    Arg.(value & flag
         & info [ "both-flows" ]
             ~doc:"With $(b,--all-kernels): run the HLS C++ baseline flow \
                   next to the direct-IR flow.")
  in
  let trace_out =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE.json"
             ~doc:"Write the per-job per-pass JSON trace and print the \
                   aggregate pass summary.")
  in
  let run manifest all_kernels both_flows jobs cache_dir trace_out clock
      passes disable =
    let pipeline = pipeline_of_flags ~passes ~disable () in
    let js =
      match (manifest, all_kernels) with
      | Some file, _ -> (
          let text = In_channel.with_open_text file In_channel.input_all in
          match D.parse_manifest text with
          | Ok js -> js
          | Error d ->
              prerr_string (Support.Diag.render [ d ]);
              exit (Support.Diag.exit_code [ d ]))
      | None, true ->
          let flows =
            if both_flows then [ Flow.Direct_ir; Flow.Hls_cpp ]
            else [ Flow.Direct_ir ]
          in
          D.all_kernel_jobs ~flows ~clock_ns:clock ()
      | None, false ->
          prerr_endline "batch: need a MANIFEST file or --all-kernels";
          exit 2
    in
    let b =
      D.run_batch ~pipeline ?cache_dir:(cache_dir_opt cache_dir) ~jobs js
    in
    print_string (D.render b);
    (match trace_out with
    | Some path ->
        let records = D.trace_records b in
        Mhls_driver.Trace.write_file ~tool:D.tool_version path records;
        Printf.printf "\ntrace: %d records -> %s\n%s" (List.length records)
          path
          (Mhls_driver.Trace.summary_table records)
    | None -> ());
    let failed =
      List.exists
        (fun (o : D.outcome) -> Result.is_error o.D.o_qor)
        b.D.outcomes
    in
    exit (if failed then 1 else 0)
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:"Compile a set of jobs (kernel × flow × directives) on a \
             parallel worker pool with persistent result caching; print \
             the QoR table, run statistics, and optionally a per-pass \
             JSON trace.")
    Term.(const run $ manifest $ all_kernels $ both_flows $ jobs_arg
          $ cache_dir_arg $ trace_out $ clock_arg $ passes_arg
          $ disable_pass_arg)

(* ------------------------------------------------------------------ *)
(* opt: run the LLVM pass pipeline (optionally parallel-by-function)  *)
(* ------------------------------------------------------------------ *)

let opt_cmd =
  let module P = Llvmir.Pass in
  let file =
    Arg.(value & pos 0 (some file) None
         & info [] ~docv:"FILE.ll"
             ~doc:"LLVM IR file (this tool's dialect).  Mutually exclusive \
                   with $(b,--synth).")
  in
  let synth_n =
    Arg.(value & opt (some int) None
         & info [ "synth" ] ~docv:"N"
             ~doc:"Instead of a file, optimize a generated module of N \
                   independent kernel functions (the parallel-pipeline \
                   smoke workload).")
  in
  let parallel =
    Arg.(value & flag
         & info [ "parallel-passes" ]
             ~doc:"Fan the function-local pass tail out over $(b,--jobs) \
                   worker domains when the static parallel-safety checker \
                   proves the module race-free; byte-identical to the \
                   sequential pipeline.")
  in
  let llvm_passes =
    Arg.(value & opt (some string) None
         & info [ "passes" ] ~docv:"P1,P2"
             ~doc:"Run exactly these LLVM passes, in order \
                   (comma-separated; see `Pass.by_name`).  Defaults to the \
                   full cleanup pipeline.")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE"
             ~doc:"Write the optimized module here instead of stdout.")
  in
  let parsafe =
    Arg.(value & flag
         & info [ "parsafe" ]
             ~doc:"Only run the parallel-safety checker and print its \
                   verdict (exit 0 safe, 1 unsafe).")
  in
  let json =
    Arg.(value & flag
         & info [ "json" ] ~doc:"With $(b,--parsafe): emit the verdict as JSON.")
  in
  let run file synth_n parallel llvm_passes jobs out parsafe json =
    let m =
      match (file, synth_n) with
      | Some _, Some _ ->
          prerr_endline "opt: FILE.ll and --synth are mutually exclusive";
          exit 2
      | Some f, None -> (
          let src = In_channel.with_open_text f In_channel.input_all in
          match Llvmir.Lparser.parse_module src with
          | m ->
              Llvmir.Lverifier.verify_module m;
              m
          | exception Support.Err.Compile_error e ->
              prerr_string
                (Support.Diag.render [ Support.Diag.of_err ~rule:"HLS000" e ]);
              exit 2)
      | None, Some n -> Mhls_driver.Synth.many_kernels ~n
      | None, None ->
          prerr_endline "opt: need FILE.ll or --synth N";
          exit 2
    in
    if parsafe then begin
      let v = Llvmir.Parsafe.check m in
      if json then print_endline (Llvmir.Parsafe.to_json v)
      else print_endline (Llvmir.Parsafe.verdict_to_string v);
      exit (match v with Llvmir.Parsafe.Safe -> 0 | Llvmir.Parsafe.Unsafe _ -> 1)
    end;
    let passes =
      match llvm_passes with
      | None -> P.default_pipeline
      | Some spec ->
          List.map
            (fun name ->
              match P.by_name name with
              | Some p -> p
              | None ->
                  Printf.eprintf "opt: unknown LLVM pass %S\n" name;
                  exit 2)
            (String.split_on_char ',' spec)
    in
    let m', timings =
      if parallel then begin
        let fanout = Mhls_driver.Pool.fanout ~jobs in
        let m', ts, status = P.run_pipeline_parallel ~fanout passes m in
        Printf.eprintf "opt: %s\n" (P.par_status_to_string status);
        (m', ts)
      end
      else P.run_pipeline passes m
    in
    let total =
      List.fold_left (fun a (t : P.timing) -> a +. t.P.seconds) 0.0 timings
    in
    Printf.eprintf "opt: %d passes, %.1f ms\n" (List.length timings)
      (total *. 1000.0);
    let text = Llvmir.Lprinter.module_to_string m' in
    match out with
    | Some path -> Out_channel.with_open_text path (fun oc ->
        Out_channel.output_string oc text)
    | None -> print_string text
  in
  Cmd.v
    (Cmd.info "opt"
       ~doc:"Run the LLVM cleanup pipeline on a module — from a file or \
             generated with $(b,--synth) — sequentially or, when the \
             parallel-safety checker proves the module race-free, \
             parallel-by-function with byte-identical output.")
    Term.(const run $ file $ synth_n $ parallel $ llvm_passes $ jobs_arg
          $ out $ parsafe $ json)

(* ------------------------------------------------------------------ *)
(* fuzz                                                               *)
(* ------------------------------------------------------------------ *)

let fuzz_cmd =
  let module F = Mhls_difftest.Difftest in
  let run seed count stages shrink repro_dir jobs =
    let stages =
      List.map
        (fun s ->
          match F.stage_of_name s with
          | Some st -> st
          | None ->
              Printf.eprintf
                "fuzz: unknown stage %S (expected lower, adapted or cpp)\n" s;
              exit 2)
        stages
    in
    let repro_dir = if repro_dir = "" then None else Some repro_dir in
    let r = F.run_batch ~stages ~shrink ?repro_dir ~jobs ~seed ~count () in
    print_string (F.render r);
    exit (if r.F.r_failures = [] then 0 else 1)
  in
  let seed =
    Arg.(value & opt int 42
         & info [ "seed" ] ~docv:"N" ~doc:"Base seed for the run.")
  in
  let count =
    Arg.(value & opt int 200
         & info [ "count" ] ~docv:"N" ~doc:"Number of random kernels to test.")
  in
  let stages =
    let doc =
      "Stages to check against the mhir reference interpreter, \
       repeatable: $(b,lower) (modern LLVM lowering + cleanup), \
       $(b,adapted) (full direct-IR front-end incl. the adaptor) or \
       $(b,cpp) (HLS-C++ emission re-parsed by the mini-C front-end)."
    in
    Arg.(value & opt_all string [ "lower"; "adapted"; "cpp" ]
         & info [ "stages" ] ~docv:"STAGE" ~doc)
  in
  let shrink =
    Arg.(value & opt bool true
         & info [ "shrink" ] ~docv:"BOOL"
             ~doc:"Minimize mismatching kernels before reporting.")
  in
  let repro_dir =
    Arg.(value & opt string ""
         & info [ "repro-dir" ] ~docv:"DIR"
             ~doc:"Write a self-contained .mlir repro per mismatch into DIR.")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Differential testing: run random well-typed kernels through \
             every flow stage on identical inputs and cross-check the \
             results bit-for-bit against the mhir interpreter.")
    Term.(const run $ seed $ count $ stages $ shrink $ repro_dir $ jobs_arg)

(* ------------------------------------------------------------------ *)

let () =
  let doc = "MLIR HLS adaptor for LLVM IR — reference implementation" in
  let info = Cmd.info "mhlsc" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; emit_cmd; synth_cmd; compare_cmd; cosim_cmd; adapt_cmd;
            lint_cmd; synth_mlir_cmd; dse_cmd; batch_cmd; opt_cmd; fuzz_cmd ]))
