(** conv2d through the adaptor, with and without the "keep more
    expression details" step — the heart of the paper's argument.

      dune exec examples/conv2d_pipeline.exe

    The modern MLIR lowering linearizes every access
    ([img[(i+ki)*W + (j+kj)]] behind a descriptor), which makes the
    array shape invisible to the HLS backend.  The adaptor's
    delinearization reconstructs [img[i+ki][j+kj]], so partition
    directives can split the image across BRAM banks.  The flat-view
    ablation shows what a flow without that step would ship. *)

module K = Workloads.Kernels
module E = Hls_backend.Estimate

(* process boundary: surface adaptor diagnostics and bail *)
let frontend ?pipeline m =
  match Flow.direct_ir_frontend ?pipeline m with
  | Ok r -> r
  | Error ds ->
      List.iter (fun d -> prerr_endline (Support.Diag.to_string d)) ds;
      exit 1

let show_access_shapes lm =
  (* count 2-D vs 1-D GEPs in the top function *)
  let f = Llvmir.Lmodule.find_func_exn lm "conv2d" in
  let two_d = ref 0 and one_d = ref 0 in
  Llvmir.Lmodule.iter_insts
    (fun (i : Llvmir.Linstr.t) ->
      match i.Llvmir.Linstr.op with
      | Llvmir.Linstr.Gep { src_ty = Llvmir.Ltype.Array (_, Llvmir.Ltype.Array _); _ } ->
          incr two_d
      | Llvmir.Linstr.Gep { src_ty = Llvmir.Ltype.Array _; _ } -> incr one_d
      | _ -> ())
    f;
  Printf.printf "  access shapes: %d two-dimensional, %d flattened\n" !two_d !one_d

let () =
  let kernel = K.conv2d () in
  let directives =
    K.optimized ~factor:4 ~parts:[ ("img", 2); ("ker", 2) ] ()
  in
  Printf.printf "kernel: %s — %s\n\n" kernel.K.kname kernel.K.description;

  print_endline "--- full adaptor (with delinearization) ---";
  let m = kernel.K.build directives in
  let full_ir, report, _ = frontend m in
  Printf.printf "  %d GEPs delinearized, %d flat fallbacks\n"
    report.Adaptor.descriptors.Adaptor.Eliminate_descriptors.delinearized
    report.Adaptor.descriptors.Adaptor.Eliminate_descriptors.flat_fallback;
  show_access_shapes full_ir;
  let full = E.synthesize ~top:"conv2d" full_ir in
  Printf.printf "  latency: %d cycles\n\n" full.E.latency;

  print_endline "--- ablation: flat views (shape information lost) ---";
  let m = kernel.K.build directives in
  let flat_ir, _, _ = frontend ~pipeline:Adaptor.Pipeline.flat_views m in
  show_access_shapes flat_ir;
  let flat = E.synthesize ~top:"conv2d" flat_ir in
  Printf.printf "  latency: %d cycles\n\n" flat.E.latency;

  Printf.printf "delinearization speedup at partition factor 4: %.2fx\n"
    (float_of_int flat.E.latency /. float_of_int full.E.latency);

  (* both variants still compute the same convolution *)
  let out_full = Flow.run_llvm kernel full_ir in
  let out_flat = Flow.run_llvm kernel flat_ir in
  let same =
    List.for_all2
      (fun a b ->
        Array.for_all2 (fun x y -> Float.abs (x -. y) < 1e-9) a b)
      out_full out_flat
  in
  Printf.printf "functional equivalence of both variants: %s\n"
    (if same then "PASS" else "FAIL");

  (* print the loop table of the good version *)
  print_newline ();
  print_string (Hls_backend.Report.render full)
