module {
func.func @fir(%0: memref<64xf32>, %1: memref<8xf32>, %2: memref<57xf32>) -> () {
  "affine.for"() {lower_map = affine_map<() -> (0)>, upper_map = affine_map<() -> (57)>, step = 1, lower_operands = 0} ({
    ^bb(%3: index):
      %4 = "arith.constant"() {value = 0.0} : () -> (f32)
      %11 = "affine.for"(%4) {hls.pipeline = 1, lower_map = affine_map<() -> (0)>, upper_map = affine_map<() -> (8)>, step = 1, lower_operands = 0} ({
        ^bb(%5: index, %6: f32):
          %7 = "affine.load"(%1, %5) {map = affine_map<(d0) -> (d0)>} : (memref<8xf32>, index) -> (f32)
          %8 = "affine.load"(%0, %3, %5) {map = affine_map<(d0, d1) -> ((d0 + d1))>} : (memref<64xf32>, index, index) -> (f32)
          %9 = "arith.mulf"(%7, %8) : (f32, f32) -> (f32)
          %10 = "arith.addf"(%6, %9) : (f32, f32) -> (f32)
          "affine.yield"(%10) : (f32) -> ()
      }) : (f32) -> (f32)
      "affine.store"(%11, %2, %3) {map = affine_map<(d0) -> (d0)>} : (f32, memref<57xf32>, index) -> ()
      "affine.yield"() : () -> ()
  }) : () -> ()
  "func.return"() : () -> ()
}
}
