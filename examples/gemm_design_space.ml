(** Design-space exploration of gemm: sweep directive strategies,
    unroll factors and partition factors through the adaptor flow, and
    print a Pareto-ish summary (latency vs resources).

      dune exec examples/gemm_design_space.exe

    This is the workload that motivates direct-IR flows: every design
    point re-runs the whole front-end, so a flow that skips C++
    emission and re-parsing iterates faster at identical QoR. *)

module K = Workloads.Kernels
module E = Hls_backend.Estimate
module T = Support.Table

type point = {
  name : string;
  directives : K.directives;
}

let design_points =
  [
    { name = "baseline (no directives)"; directives = K.no_directives };
    { name = "pipeline inner"; directives = K.pipelined };
    { name = "pipeline inner, unroll 2";
      directives = { K.pipelined with K.unroll = Some 2 } };
    { name = "pipeline middle, full unroll";
      directives = K.optimized ~factor:1 ~parts:[] () };
    { name = "middle + partition x2";
      directives = K.optimized ~factor:2 ~parts:[ ("A", 2); ("B", 1) ] () };
    { name = "middle + partition x4";
      directives = K.optimized ~factor:4 ~parts:[ ("A", 2); ("B", 1) ] () };
    { name = "middle + partition x8";
      directives = K.optimized ~factor:8 ~parts:[ ("A", 2); ("B", 1) ] () };
  ]

let () =
  let kernel = K.gemm () in
  let t =
    T.create
      ~aligns:[ T.Left; T.Right; T.Right; T.Right; T.Right; T.Right; T.Right ]
      [ "design point"; "latency"; "II"; "BRAM"; "DSP"; "LUT"; "front-end ms" ]
  in
  let best = ref None in
  List.iter
    (fun p ->
      let r = Flow.run_exn ~directives:p.directives kernel Flow.Direct_ir in
      let hls = r.Flow.hls in
      let ii =
        List.fold_left
          (fun acc (l : E.loop_report) ->
            match l.E.achieved_ii with Some ii -> max acc ii | None -> acc)
          0 hls.E.loops
      in
      (match !best with
      | Some (_, l) when l <= hls.E.latency -> ()
      | _ -> best := Some (p.name, hls.E.latency));
      T.add_row t
        [
          p.name;
          string_of_int hls.E.latency;
          (if ii = 0 then "-" else string_of_int ii);
          string_of_int hls.E.resources.E.bram;
          string_of_int hls.E.resources.E.dsp;
          string_of_int hls.E.resources.E.lut;
          Printf.sprintf "%.2f" (r.Flow.seconds *. 1000.0);
        ])
    design_points;
  T.print t;
  (match !best with
  | Some (name, lat) ->
      Printf.printf "\nbest design point: %s (%d cycles, %.1fx over baseline)\n"
        name lat
        (let base = Flow.run_exn ~directives:K.no_directives kernel Flow.Direct_ir in
         float_of_int base.Flow.hls.E.latency /. float_of_int lat)
  | None -> ());
  (* sanity: the fastest point still computes the right answer *)
  let cs =
    Flow.cosim
      ~directives:(K.optimized ~factor:8 ~parts:[ ("A", 2); ("B", 1) ] ())
      kernel
  in
  Printf.printf "co-simulation of the optimized point: %s\n"
    (if cs.Flow.ok then "PASS" else "FAIL")
