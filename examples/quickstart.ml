(** Quickstart: run the paper's two flows on one kernel and look at
    what the adaptor did.

      dune exec examples/quickstart.exe

    Steps:
    1. take a built-in kernel (gemm) with a pipeline directive;
    2. Flow A (paper): lower MLIR directly to LLVM IR, legalize it with
       the adaptor, synthesize;
    3. Flow B (baseline): emit HLS C++, re-parse it with the mini-C
       front-end, synthesize;
    4. co-simulate both against the reference;
    5. compare the reports. *)

module K = Workloads.Kernels
module E = Hls_backend.Estimate

let () =
  let kernel = K.gemm () in
  Printf.printf "kernel: %s — %s\n\n" kernel.K.kname kernel.K.description;

  (* ---- Flow A: direct IR through the adaptor --------------------- *)
  let direct = Flow.run_exn ~directives:K.pipelined kernel Flow.Direct_ir in
  print_endline "--- Flow A: direct IR + adaptor ---";
  (match direct.Flow.adaptor_report with
  | Some rep ->
      Printf.printf "adaptor closed %d compatibility issues\n"
        (List.length rep.Adaptor.issues_before)
  | None -> ());
  print_string (Hls_backend.Report.render direct.Flow.hls);

  (* ---- Flow B: HLS C++ round-trip --------------------------------- *)
  let cpp = Flow.run_exn ~directives:K.pipelined kernel Flow.Hls_cpp in
  print_endline "\n--- Flow B: HLS C++ baseline ---";
  (match cpp.Flow.cpp_source with
  | Some src ->
      print_endline "generated C++ (first lines):";
      String.split_on_char '\n' src
      |> List.filteri (fun i _ -> i < 8)
      |> List.iter (fun l -> print_endline ("  " ^ l))
  | None -> ());
  print_string (Hls_backend.Report.render cpp.Flow.hls);

  (* ---- Co-simulation ---------------------------------------------- *)
  let cs = Flow.cosim ~directives:K.pipelined kernel in
  Printf.printf "\nco-simulation: %s (max relative error %.2e)\n"
    (if cs.Flow.ok then "PASS" else "FAIL")
    cs.Flow.max_abs_error;

  (* ---- Verdict ----------------------------------------------------- *)
  Printf.printf "\nlatency: direct-IR %d cycles vs HLS C++ %d cycles (ratio %.3f)\n"
    direct.Flow.hls.E.latency cpp.Flow.hls.E.latency
    (float_of_int cpp.Flow.hls.E.latency
    /. float_of_int direct.Flow.hls.E.latency);
  print_endline
    "-> the direct-IR flow matches the C++ flow without ever printing C++\n\
    \   (the paper's \"comparable performance\" result)"
