(** Building your own kernel against the public API — a weighted
    moving-average filter that is not part of the benchmark suite —
    and taking it through both flows.

      dune exec examples/custom_kernel.exe

    Demonstrates:
    - the mhir {!Mhir.Builder} API (loops with iter_args, affine
      subscript maps, HLS directive attributes);
    - attaching array-partition directives via function attributes;
    - running a hand-built module through [Flow.direct_ir_frontend] /
      [Flow.hls_cpp_frontend] without a [Workloads.Kernels.kernel]
      wrapper. *)

open Mhir

let n = 32
let taps = 4

(** y[i] = (w0*x[i] + w1*x[i+1] + w2*x[i+2] + w3*x[i+3]) / sum(w) *)
let build () =
  let b = Builder.create () in
  let f =
    Builder.func b "wavg"
      ~args:
        [ ("x", Types.memref [ n ]); ("w", Types.memref [ taps ]);
          ("y", Types.memref [ n - taps + 1 ]) ]
      ~ret_tys:[]
      ~fattrs:[ ("hls.partition.x", Attr.Str "cyclic:2:1") ]
      (fun b args ->
        match args with
        | [ x; w; y ] ->
            (* total weight, computed once before the main loop *)
            let zero = Builder.constant_f b 0.0 in
            let wsum =
              Builder.affine_for b ~lb:0 ~ub:taps ~iters:[ zero ]
                (fun b k iters ->
                  let wv = Builder.load b w [ k ] in
                  [ Builder.addf b (List.hd iters) wv ])
            in
            ignore
              (Builder.affine_for b ~lb:0 ~ub:(n - taps + 1)
                 ~attrs:[ ("hls.pipeline", Attr.Int 1) ]
                 (fun b i _ ->
                   let acc =
                     Builder.affine_for b ~lb:0 ~ub:taps ~iters:[ zero ]
                       ~attrs:[ ("hls.unroll", Attr.Bool true) ]
                       (fun b k iters ->
                         let wv = Builder.load b w [ k ] in
                         let xv =
                           Builder.affine_load b x
                             ~map:
                               (Affine_map.make ~num_dims:2 ~num_syms:0
                                  [ Affine_expr.add (Affine_expr.dim 0)
                                      (Affine_expr.dim 1) ])
                             [ i; k ]
                         in
                         let m = Builder.mulf b wv xv in
                         [ Builder.addf b (List.hd iters) m ])
                   in
                   let v = Builder.divf b (List.hd acc) (List.hd wsum) in
                   Builder.store b v y [ i ];
                   []));
            Builder.ret b []
        | _ -> assert false)
  in
  { Ir.funcs = [ f ] }

let () =
  let m = build () in
  Verifier.verify_module m;
  print_endline "multi-level IR:";
  print_string (Printer.module_to_string m);

  (* direct flow *)
  let lm, report, _ =
    match Flow.direct_ir_frontend m with
    | Ok r -> r
    | Error ds ->
        List.iter (fun d -> prerr_endline (Support.Diag.to_string d)) ds;
        exit 1
  in
  Printf.printf "\nadaptor: %d issues closed\n"
    (List.length report.Adaptor.issues_before);
  let r = Hls_backend.Estimate.synthesize ~top:"wavg" lm in
  print_string (Hls_backend.Report.render r);

  (* baseline flow agrees functionally *)
  let lm_cpp, cpp, _ = Flow.hls_cpp_frontend m in
  print_endline "\ngenerated C++:";
  print_string cpp;
  let run lmod =
    let st = Llvmir.Linterp.create lmod in
    let ax = Llvmir.Linterp.alloc_floats st n in
    let aw = Llvmir.Linterp.alloc_floats st taps in
    let ay = Llvmir.Linterp.alloc_floats st (n - taps + 1) in
    Llvmir.Linterp.write_floats st ax (Array.init n (fun i -> float_of_int (i mod 5)));
    Llvmir.Linterp.write_floats st aw [| 1.0; 2.0; 2.0; 1.0 |];
    ignore
      (Llvmir.Linterp.run st "wavg"
         [ Llvmir.Linterp.RPtr ax; Llvmir.Linterp.RPtr aw; Llvmir.Linterp.RPtr ay ]);
    Llvmir.Linterp.read_floats st ay (n - taps + 1)
  in
  let a = run lm and b = run lm_cpp in
  let same = Array.for_all2 (fun x y -> Float.abs (x -. y) < 1e-6) a b in
  Printf.printf "\nboth flows agree: %s (y[0] = %g)\n"
    (if same then "PASS" else "FAIL")
    a.(0)
