(** A guided tour of the IR at every stage of the direct flow, on a
    tiny dot-product kernel — useful for understanding exactly what
    the adaptor rewrites.

      dune exec examples/ir_tour.exe

    Stages shown:
    1. multi-level IR (pretty form);
    2. modern LLVM IR as MLIR lowers it (descriptors, opaque pointers,
       fmuladd, lifetime markers, loop metadata);
    3. the same IR after the cleanup pipeline;
    4. HLS-ready IR after the adaptor;
    5. the compat checker's view before/after. *)

open Mhir

let banner s =
  Printf.printf "\n%s\n%s\n" s (String.make (String.length s) '-')

let build_dot n =
  let b = Builder.create () in
  let vty = Types.memref [ n ] in
  let f =
    Builder.func b "dot"
      ~args:[ ("x", vty); ("y", vty); ("out", Types.memref [ 1 ]) ]
      ~ret_tys:[]
      (fun b args ->
        match args with
        | [ x; y; out ] ->
            let zero = Builder.constant_f b 0.0 in
            let acc =
              Builder.affine_for b ~lb:0 ~ub:n ~iters:[ zero ]
                ~attrs:[ ("hls.pipeline", Attr.Int 1) ]
                (fun b i iters ->
                  let xv = Builder.load b x [ i ] in
                  let yv = Builder.load b y [ i ] in
                  let m = Builder.mulf b xv yv in
                  [ Builder.addf b (List.hd iters) m ])
            in
            let c0 = Builder.constant_i b 0 in
            Builder.store b (List.hd acc) out [ c0 ];
            Builder.ret b []
        | _ -> assert false)
  in
  { Ir.funcs = [ f ] }

let () =
  let n = 8 in
  let m = build_dot n in
  Verifier.verify_module m;

  banner "1. multi-level IR (the MLIR analogue)";
  print_string (Printer.module_to_string m);

  banner "2. modern LLVM IR (what mlir-translate emits today)";
  let lm = Lowering.Lower.lower_module m in
  print_string (Llvmir.Lprinter.module_to_string lm);

  banner "3. after the LLVM cleanup pipeline (mem2reg, cse, licm, ...)";
  let lm_opt = fst (Llvmir.Pass.run_pipeline Llvmir.Pass.default_pipeline lm) in
  print_string (Llvmir.Lprinter.module_to_string lm_opt);

  banner "4. compat check on the modern IR (what Vitis would choke on)";
  let issues = Adaptor.Compat.check lm_opt in
  List.iter
    (fun (k, n) -> Printf.printf "  %-20s %d\n" k n)
    (Adaptor.Compat.summarize issues);

  banner "5. HLS-ready IR after the adaptor";
  let adapted, report = Adaptor.run_exn lm_opt in
  print_string (Llvmir.Lprinter.module_to_string adapted);
  Printf.printf "\nremaining issues: %d\n" (List.length report.Adaptor.issues_after);

  banner "6. synthesis + functional check";
  let r = Hls_backend.Estimate.synthesize ~top:"dot" adapted in
  print_string (Hls_backend.Report.render r);
  (* run it: dot of [1..8] with itself = 204 *)
  let st = Llvmir.Linterp.create adapted in
  let ax = Llvmir.Linterp.alloc_floats st n in
  let ay = Llvmir.Linterp.alloc_floats st n in
  let aout = Llvmir.Linterp.alloc_floats st 1 in
  let data = Array.init n (fun i -> float_of_int (i + 1)) in
  Llvmir.Linterp.write_floats st ax data;
  Llvmir.Linterp.write_floats st ay data;
  ignore
    (Llvmir.Linterp.run st "dot"
       [ Llvmir.Linterp.RPtr ax; Llvmir.Linterp.RPtr ay; Llvmir.Linterp.RPtr aout ]);
  let out = Llvmir.Linterp.read_floats st aout 1 in
  Printf.printf "\ndot([1..%d], [1..%d]) = %g (expected %g)\n" n n out.(0)
    (Array.fold_left (fun a x -> a +. (x *. x)) 0.0 data)
