(** Tests for the LLVM optimization passes, both unit-level (expected
    structural effect) and differential (semantics preserved on every
    kernel through the interpreter). *)

open Llvmir

let parse text =
  let m = Lparser.parse_module text in
  Lverifier.verify_module m;
  m

let count_opcode pred (m : Lmodule.t) =
  List.fold_left
    (fun acc f -> Lmodule.fold_insts (fun n i -> if pred i then n + 1 else n) acc f)
    0 m.Lmodule.funcs

let is_alloca (i : Linstr.t) = match i.Linstr.op with Linstr.Alloca _ -> true | _ -> false
let is_load (i : Linstr.t) = match i.Linstr.op with Linstr.Load _ -> true | _ -> false
let is_phi (i : Linstr.t) = match i.Linstr.op with Linstr.Phi _ -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* mem2reg                                                            *)
(* ------------------------------------------------------------------ *)

let mem2reg_input =
  {|define i64 @f(i1 %c) {
entry:
  %x = alloca i64
  store i64 1, i64* %x
  br i1 %c, label %a, label %b
a:
  store i64 10, i64* %x
  br label %join
b:
  store i64 20, i64* %x
  br label %join
join:
  %v = load i64, i64* %x
  ret i64 %v
}|}

let test_mem2reg_promotes () =
  let m = parse mem2reg_input in
  let m' = Opt_mem2reg.run m in
  Lverifier.verify_module m';
  Alcotest.(check int) "allocas gone" 0 (count_opcode is_alloca m');
  Alcotest.(check int) "loads gone" 0 (count_opcode is_load m');
  Alcotest.(check int) "a phi was placed" 1 (count_opcode is_phi m')

let test_mem2reg_semantics () =
  let m = parse mem2reg_input in
  let m' = Opt_mem2reg.run m in
  List.iter
    (fun c ->
      let run mm =
        let st = Linterp.create mm in
        match Linterp.run st "f" [ Linterp.RInt c ] with
        | Some (Linterp.RInt v) -> v
        | _ -> -1
      in
      Alcotest.(check int) (Printf.sprintf "same result for c=%d" c) (run m) (run m'))
    [ 0; 1 ]

let test_mem2reg_loop_carried () =
  (* a counter in memory promoted across a back edge *)
  let m =
    parse
      {|define i64 @f() {
entry:
  %x = alloca i64
  store i64 0, i64* %x
  br label %header
header:
  %v = load i64, i64* %x
  %c = icmp slt i64 %v, 5
  br i1 %c, label %body, label %exit
body:
  %v2 = load i64, i64* %x
  %v3 = add i64 %v2, 1
  store i64 %v3, i64* %x
  br label %header
exit:
  %r = load i64, i64* %x
  ret i64 %r
}|}
  in
  let m' = Opt_mem2reg.run m in
  Lverifier.verify_module m';
  Alcotest.(check int) "allocas gone" 0 (count_opcode is_alloca m');
  let st = Linterp.create m' in
  (match Linterp.run st "f" [] with
  | Some (Linterp.RInt 5) -> ()
  | Some (Linterp.RInt v) -> Alcotest.failf "expected 5, got %d" v
  | _ -> Alcotest.fail "bad result")

let test_mem2reg_skips_escaping () =
  (* an alloca whose address is stored escapes and must survive *)
  let m =
    parse
      {|define void @f(i64** %out) {
entry:
  %x = alloca i64
  store i64* %x, i64** %out
  ret void
}|}
  in
  let m' = Opt_mem2reg.run m in
  Alcotest.(check int) "escaping alloca preserved" 1 (count_opcode is_alloca m')

(* ------------------------------------------------------------------ *)
(* constfold / dce / cse / simplifycfg / licm                         *)
(* ------------------------------------------------------------------ *)

let test_constfold () =
  let m =
    parse
      {|define i64 @f() {
entry:
  %a = mul i64 6, 7
  %b = add i64 %a, 0
  %c = select i1 true, i64 %b, i64 99
  ret i64 %c
}|}
  in
  let m' = Opt_constfold.run m in
  Lverifier.verify_module m';
  Alcotest.(check int) "folded to a bare ret" 1
    (Lmodule.inst_count (List.hd m'.Lmodule.funcs));
  let st = Linterp.create m' in
  (match Linterp.run st "f" [] with
  | Some (Linterp.RInt 42) -> ()
  | _ -> Alcotest.fail "folded value wrong")

let test_dce () =
  let m =
    parse
      {|define i64 @f(i64 %x) {
entry:
  %dead1 = mul i64 %x, %x
  %dead2 = add i64 %dead1, 1
  ret i64 %x
}|}
  in
  let m' = Opt_dce.run m in
  Alcotest.(check int) "dead chain removed" 1
    (Lmodule.inst_count (List.hd m'.Lmodule.funcs))

let test_dce_keeps_side_effects () =
  let m =
    parse
      {|define void @f(i64* %p) {
entry:
  store i64 1, i64* %p
  ret void
}|}
  in
  let m' = Opt_dce.run m in
  Alcotest.(check int) "store survives" 2
    (Lmodule.inst_count (List.hd m'.Lmodule.funcs))

let test_cse () =
  let m =
    parse
      {|define i64 @f(i64 %x) {
entry:
  %a = mul i64 %x, %x
  %b = mul i64 %x, %x
  %c = add i64 %a, %b
  ret i64 %c
}|}
  in
  let m' = Opt_cse.run m in
  Lverifier.verify_module m';
  let muls =
    count_opcode
      (fun i -> match i.Linstr.op with Linstr.IBin (Linstr.Mul, _, _) -> true | _ -> false)
      m'
  in
  Alcotest.(check int) "duplicate mul unified" 1 muls;
  let st = Linterp.create m' in
  (match Linterp.run st "f" [ Linterp.RInt 5 ] with
  | Some (Linterp.RInt 50) -> ()
  | _ -> Alcotest.fail "cse changed semantics")

let test_cse_respects_dominance () =
  (* identical instructions in sibling branches must NOT unify *)
  let m =
    parse
      {|define i64 @f(i1 %c, i64 %x) {
entry:
  br i1 %c, label %a, label %b
a:
  %m1 = mul i64 %x, %x
  br label %join
b:
  %m2 = mul i64 %x, %x
  br label %join
join:
  %r = phi i64 [ %m1, %a ], [ %m2, %b ]
  ret i64 %r
}|}
  in
  let m' = Opt_cse.run m in
  Lverifier.verify_module m';
  let muls =
    count_opcode
      (fun i -> match i.Linstr.op with Linstr.IBin (Linstr.Mul, _, _) -> true | _ -> false)
      m'
  in
  Alcotest.(check int) "sibling expressions kept" 2 muls

let test_simplifycfg_folds_constant_branch () =
  let m =
    parse
      {|define i64 @f() {
entry:
  br i1 true, label %a, label %b
a:
  ret i64 1
b:
  ret i64 2
}|}
  in
  let m' = Opt_simplifycfg.run m in
  Lverifier.verify_module m';
  let f = List.hd m'.Lmodule.funcs in
  Alcotest.(check int) "dead branch removed" 1 (List.length f.Lmodule.blocks);
  let st = Linterp.create m' in
  (match Linterp.run st "f" [] with
  | Some (Linterp.RInt 1) -> ()
  | _ -> Alcotest.fail "wrong branch survived")

let test_simplifycfg_merges_chains () =
  let m =
    parse
      {|define i64 @f() {
entry:
  br label %a
a:
  %x = add i64 1, 2
  br label %b
b:
  ret i64 %x
}|}
  in
  let m' = Opt_simplifycfg.run m in
  Lverifier.verify_module m';
  Alcotest.(check int) "straight-line chain merged" 1
    (List.length (List.hd m'.Lmodule.funcs).Lmodule.blocks)

let test_licm_hoists () =
  let m =
    parse
      {|define i64 @f(i64 %a, i64 %b) {
entry:
  br label %header
header:
  %i = phi i64 [ 0, %entry ], [ %i.next, %body ]
  %s = phi i64 [ 0, %entry ], [ %s.next, %body ]
  %c = icmp slt i64 %i, 10
  br i1 %c, label %body, label %exit
body:
  %inv = mul i64 %a, %b
  %s.next = add i64 %s, %inv
  %i.next = add i64 %i, 1
  br label %header
exit:
  ret i64 %s
}|}
  in
  let m' = Opt_licm.run m in
  Lverifier.verify_module m';
  let f = Lmodule.find_func_exn m' "f" in
  let entry = Lmodule.entry f in
  let hoisted =
    List.exists
      (fun (i : Linstr.t) ->
        match i.Linstr.op with Linstr.IBin (Linstr.Mul, _, _) -> true | _ -> false)
      entry.Lmodule.insts
  in
  Alcotest.(check bool) "invariant mul hoisted to preheader" true hoisted;
  let run mm =
    let st = Linterp.create mm in
    match Linterp.run st "f" [ Linterp.RInt 3; Linterp.RInt 4 ] with
    | Some (Linterp.RInt v) -> v
    | _ -> -1
  in
  Alcotest.(check int) "licm preserves semantics" (run m) (run m')

(* ------------------------------------------------------------------ *)
(* Differential: full pipeline on all kernels                         *)
(* ------------------------------------------------------------------ *)

let test_pipeline_differential () =
  List.iter
    (fun k ->
      let m = k.Workloads.Kernels.build Workloads.Kernels.no_directives in
      let lm = Lowering.Lower.lower_module m in
      let lm', _ = Pass.run_pipeline Pass.default_pipeline lm in
      let out1 = Flow.run_llvm k lm in
      let out2 = Flow.run_llvm k lm' in
      List.iteri
        (fun i (a, b) ->
          Array.iteri
            (fun j av ->
              if Float.abs (av -. b.(j)) > 1e-9 then
                Alcotest.failf "%s: optimized IR diverges at arg %d[%d]"
                  k.Workloads.Kernels.kname i j)
            a)
        (List.combine out1 out2))
    (Workloads.Kernels.all ())

let test_pipeline_shrinks_ir () =
  (* the cleanup pipeline should never grow the instruction count on
     single-function kernels (inlining legitimately duplicates code in
     multi-function ones) *)
  List.iter
    (fun k ->
      let m = k.Workloads.Kernels.build Workloads.Kernels.no_directives in
      if List.length m.Mhir.Ir.funcs = 1 then begin
        let lm = Lowering.Lower.lower_module m in
        let lm', _ = Pass.run_pipeline Pass.default_pipeline lm in
        let count mm =
          List.fold_left
            (fun acc f -> acc + Lmodule.inst_count f)
            0 mm.Lmodule.funcs
        in
        Alcotest.(check bool)
          (k.Workloads.Kernels.kname ^ " does not grow")
          true
          (count lm' <= count lm)
      end)
    (Workloads.Kernels.all ())

let test_inline_pass () =
  let m =
    parse
      {|define i64 @helper(i64 %x) {
entry:
  %c = icmp sgt i64 %x, 10
  br i1 %c, label %big, label %small
big:
  ret i64 100
small:
  %d = mul i64 %x, 2
  ret i64 %d
}
define i64 @top(i64 %a) {
entry:
  %r1 = call i64 @helper(i64 %a)
  %r2 = call i64 @helper(i64 20)
  %s = add i64 %r1, %r2
  ret i64 %s
}|}
  in
  let m' = Opt_inline.run m in
  Lverifier.verify_module m';
  let top = Lmodule.find_func_exn m' "top" in
  let calls =
    Lmodule.fold_insts
      (fun n (i : Linstr.t) ->
        match i.Linstr.op with Linstr.Call _ -> n + 1 | _ -> n)
      0 top
  in
  Alcotest.(check int) "no calls remain in @top" 0 calls;
  let run mm a =
    let st = Linterp.create mm in
    match Linterp.run st "top" [ Linterp.RInt a ] with
    | Some (Linterp.RInt v) -> v
    | _ -> -1
  in
  (* helper(3)=6, helper(20)=100 -> 106; helper(50)=100 -> 200 *)
  Alcotest.(check int) "inlined semantics (small)" 106 (run m' 3);
  Alcotest.(check int) "inlined semantics (big)" 200 (run m' 50);
  Alcotest.(check int) "matches original" (run m 3) (run m' 3)

let test_inline_multi_function_kernel () =
  let k = Workloads.Kernels.mmcall () in
  let m = k.Workloads.Kernels.build Workloads.Kernels.pipelined in
  let lm = Lowering.Lower.lower_module m in
  let lm', _ = Pass.run_pipeline Pass.default_pipeline lm in
  let top = Lmodule.find_func_exn lm' "mmcall" in
  let calls_to_helper =
    Lmodule.fold_insts
      (fun n (i : Linstr.t) ->
        match i.Linstr.op with
        | Linstr.Call { callee = "mm_row"; _ } -> n + 1
        | _ -> n)
      0 top
  in
  Alcotest.(check int) "helper fully inlined" 0 calls_to_helper;
  (* semantics preserved vs the reference *)
  let reference = Flow.run_reference k in
  let got = Flow.run_llvm k lm' in
  let err, issues = Flow.compare_outputs k ~what:"inlined" reference got in
  if issues <> [] then Alcotest.fail (List.hd issues);
  Alcotest.(check bool) "error small" true (err < 1e-5)

let suite =
  [
    Alcotest.test_case "mem2reg promotes" `Quick test_mem2reg_promotes;
    Alcotest.test_case "mem2reg semantics" `Quick test_mem2reg_semantics;
    Alcotest.test_case "mem2reg loop-carried" `Quick test_mem2reg_loop_carried;
    Alcotest.test_case "mem2reg skips escaping" `Quick test_mem2reg_skips_escaping;
    Alcotest.test_case "constfold" `Quick test_constfold;
    Alcotest.test_case "dce" `Quick test_dce;
    Alcotest.test_case "dce keeps side effects" `Quick test_dce_keeps_side_effects;
    Alcotest.test_case "cse" `Quick test_cse;
    Alcotest.test_case "cse respects dominance" `Quick test_cse_respects_dominance;
    Alcotest.test_case "simplifycfg constant branch" `Quick test_simplifycfg_folds_constant_branch;
    Alcotest.test_case "simplifycfg merges chains" `Quick test_simplifycfg_merges_chains;
    Alcotest.test_case "licm hoists" `Quick test_licm_hoists;
    Alcotest.test_case "pipeline differential (all kernels)" `Quick test_pipeline_differential;
    Alcotest.test_case "pipeline shrinks IR" `Quick test_pipeline_shrinks_ir;
    Alcotest.test_case "inline pass" `Quick test_inline_pass;
    Alcotest.test_case "inline multi-function kernel" `Quick
      test_inline_multi_function_kernel;
  ]
