(** Tests for the workload suite itself: metadata consistency and
    reference-vs-interpreter agreement for every kernel. *)

module K = Workloads.Kernels

let test_kernel_metadata_consistent () =
  List.iter
    (fun k ->
      (* outputs name real arguments *)
      List.iter
        (fun o ->
          Alcotest.(check bool)
            (Printf.sprintf "%s output %s is an argument" k.K.kname o)
            true (List.mem_assoc o k.K.args))
        k.K.outputs;
      (* the built module has a top function with matching arity *)
      let m = k.K.build K.no_directives in
      let f = Mhir.Ir.find_func_exn m k.K.kname in
      Alcotest.(check int)
        (k.K.kname ^ " argument count")
        (List.length k.K.args)
        (List.length f.Mhir.Ir.args))
    (K.all ())

let test_kernel_names_unique () =
  let names = List.map (fun k -> k.K.kname) (K.all ()) in
  Alcotest.(check int) "no duplicate kernel names"
    (List.length names)
    (List.length (List.sort_uniq compare names))

let test_by_name () =
  Alcotest.(check bool) "gemm found" true (K.by_name "gemm" <> None);
  Alcotest.(check bool) "unknown absent" true (K.by_name "nope" = None)

let test_reference_matches_interpreter () =
  List.iter
    (fun k ->
      let reference = Flow.run_reference k in
      let interp = Flow.run_mhir k ~directives:K.no_directives in
      let err, issues =
        Flow.compare_outputs k ~what:"mhir" reference interp
      in
      if issues <> [] then
        Alcotest.failf "%s: %s" k.K.kname (List.hd issues);
      Alcotest.(check bool) (k.K.kname ^ " matches reference") true (err < 1e-5))
    (K.all ())

let test_directives_do_not_change_semantics () =
  (* attributes are annotations only: the interpreter must compute the
     same result with or without them *)
  List.iter
    (fun k ->
      let plain = Flow.run_mhir k ~directives:K.no_directives in
      let ann =
        Flow.run_mhir k
          ~directives:(K.optimized ~factor:4 ~parts:[] ())
      in
      List.iteri
        (fun i (a, b) ->
          Array.iteri
            (fun j av ->
              if Float.abs (av -. b.(j)) > 1e-9 then
                Alcotest.failf "%s: directives changed semantics at %d[%d]"
                  k.K.kname i j)
            a)
        (List.combine plain ann))
    (K.all ())

let test_kernels_verify_under_all_directive_sets () =
  List.iter
    (fun k ->
      List.iter
        (fun d ->
          Mhir.Verifier.verify_module (k.K.build d))
        [
          K.no_directives;
          K.pipelined;
          { K.pipelined with K.unroll = Some 2 };
          K.optimized ~factor:2 ~parts:[] ();
        ])
    (K.all ())

let suite =
  [
    Alcotest.test_case "metadata consistent" `Quick test_kernel_metadata_consistent;
    Alcotest.test_case "names unique" `Quick test_kernel_names_unique;
    Alcotest.test_case "by_name" `Quick test_by_name;
    Alcotest.test_case "reference matches interpreter" `Quick
      test_reference_matches_interpreter;
    Alcotest.test_case "directives preserve semantics" `Quick
      test_directives_do_not_change_semantics;
    Alcotest.test_case "kernels verify under directives" `Quick
      test_kernels_verify_under_all_directive_sets;
  ]
