(** Tests for the LLVM IR interpreter: memory model, GEP arithmetic,
    aggregates, intrinsics, control flow. *)

open Llvmir

let run_module text fname args =
  let m = Lparser.parse_module text in
  Lverifier.verify_module m;
  let st = Linterp.create m in
  (st, Linterp.run st fname args)

let check_int name expected = function
  | Some (Linterp.RInt v) -> Alcotest.(check int) name expected v
  | _ -> Alcotest.fail (name ^ ": expected integer result")

let check_float name expected = function
  | Some (Linterp.RFloat v) -> Alcotest.(check (float 1e-9)) name expected v
  | _ -> Alcotest.fail (name ^ ": expected float result")

let test_arith () =
  let _, r =
    run_module
      {|define i64 @f() {
entry:
  %a = mul i64 6, 7
  %b = sub i64 %a, 2
  %c = sdiv i64 %b, 4
  ret i64 %c
}|}
      "f" []
  in
  check_int "(6*7-2)/4" 10 r

let test_i32_wrap () =
  let _, r =
    run_module
      {|define i32 @f() {
entry:
  %a = add i32 2147483647, 1
  ret i32 %a
}|}
      "f" []
  in
  check_int "i32 wraps" (-2147483648) r

let test_branches_and_phis () =
  let run c =
    let _, r =
      run_module
        {|define i64 @f(i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  br label %join
b:
  br label %join
join:
  %r = phi i64 [ 10, %a ], [ 20, %b ]
  ret i64 %r
}|}
        "f" [ Linterp.RInt c ]
    in
    r
  in
  check_int "true edge" 10 (run 1);
  check_int "false edge" 20 (run 0)

let test_loop_sums () =
  let _, r =
    run_module
      {|define i64 @f() {
entry:
  br label %header
header:
  %i = phi i64 [ 0, %entry ], [ %i.next, %header ]
  %s = phi i64 [ 0, %entry ], [ %s.next, %header ]
  %s.next = add i64 %s, %i
  %i.next = add i64 %i, 1
  %c = icmp slt i64 %i.next, 10
  br i1 %c, label %header, label %exit
exit:
  ret i64 %s.next
}|}
      "f" []
  in
  check_int "sum 0..9" 45 r

let test_memory_and_gep () =
  let m =
    Lparser.parse_module
      {|define float @f(float* %p) {
entry:
  %a = getelementptr float, float* %p, i64 3
  %v = load float, float* %a
  ret float %v
}|}
  in
  let st = Linterp.create m in
  let addr = Linterp.alloc_floats st 8 in
  Linterp.write_floats st addr [| 0.; 1.; 2.; 3.5; 4.; 5.; 6.; 7. |];
  check_float "p[3]" 3.5 (Linterp.run st "f" [ Linterp.RPtr addr ])

let test_multidim_gep () =
  let m =
    Lparser.parse_module
      {|define float @f([4 x [8 x float]]* %p) {
entry:
  %a = getelementptr [4 x [8 x float]], [4 x [8 x float]]* %p, i64 0, i64 2, i64 5
  %v = load float, float* %a
  ret float %v
}|}
  in
  let st = Linterp.create m in
  let addr = Linterp.alloc_floats st 32 in
  let data = Array.init 32 float_of_int in
  Linterp.write_floats st addr data;
  check_float "p[2][5] = flat 21" 21.0 (Linterp.run st "f" [ Linterp.RPtr addr ])

let test_struct_gep_matches_layout () =
  (* store through field 1 of { i8, i32 }, read back *)
  let m =
    Lparser.parse_module
      {|define i32 @f() {
entry:
  %s = alloca { i8, i32 }
  %f1 = getelementptr { i8, i32 }, { i8, i32 }* %s, i64 0, i64 1
  store i32 77, i32* %f1
  %v = load i32, i32* %f1
  ret i32 %v
}|}
  in
  let st = Linterp.create m in
  check_int "struct field store/load" 77 (Linterp.run st "f" [])

let test_insert_extract_value () =
  let _, r =
    run_module
      {|define i64 @f() {
entry:
  %a = insertvalue { i64, i64 } undef, i64 11, 0
  %b = insertvalue { i64, i64 } %a, i64 31, 1
  %x = extractvalue { i64, i64 } %b, 0
  %y = extractvalue { i64, i64 } %b, 1
  %s = add i64 %x, %y
  ret i64 %s
}|}
      "f" []
  in
  check_int "insert/extract" 42 r

let test_intrinsics () =
  let _, r =
    run_module
      {|declare i64 @llvm.smax.i64(i64, i64)
define i64 @f() {
entry:
  %m = call i64 @llvm.smax.i64(i64 3, i64 9)
  ret i64 %m
}|}
      "f" []
  in
  check_int "llvm.smax" 9 r;
  let _, r2 =
    run_module
      {|declare float @llvm.fmuladd.f32(float, float, float)
define float @f() {
entry:
  %m = call float @llvm.fmuladd.f32(float 2.0, float 3.0, float 4.0)
  ret float %m
}|}
      "f" []
  in
  check_float "llvm.fmuladd" 10.0 r2

let test_select_freeze () =
  let _, r =
    run_module
      {|define i64 @f() {
entry:
  %c = icmp sgt i64 5, 3
  %s = select i1 %c, i64 1, i64 2
  %fz = freeze i64 %s
  ret i64 %fz
}|}
      "f" []
  in
  check_int "select + freeze" 1 r

let test_switch () =
  let run v =
    let _, r =
      run_module
        {|define i64 @f(i64 %x) {
entry:
  switch i64 %x, label %def [ i64 1, label %one i64 2, label %two ]
one:
  ret i64 100
two:
  ret i64 200
def:
  ret i64 0
}|}
        "f" [ Linterp.RInt v ]
    in
    r
  in
  check_int "case 1" 100 (run 1);
  check_int "case 2" 200 (run 2);
  check_int "default" 0 (run 7)

let test_infinite_loop_guard () =
  let m =
    Lparser.parse_module
      {|define void @f() {
entry:
  br label %spin
spin:
  br label %spin
}|}
  in
  let st = Linterp.create m in
  st.Linterp.fuel <- 10_000;
  Alcotest.(check bool) "fuel exhaustion raises" true
    (try
       ignore (Linterp.run st "f" []);
       false
     with Support.Err.Compile_error _ -> true)

let test_uninitialized_load_traps () =
  let m =
    Lparser.parse_module
      {|define float @f() {
entry:
  %p = inttoptr i64 99991 to float*
  %v = load float, float* %p
  ret float %v
}|}
  in
  let st = Linterp.create m in
  Alcotest.(check bool) "wild load raises" true
    (try
       ignore (Linterp.run st "f" []);
       false
     with Support.Err.Compile_error _ -> true)

let suite =
  [
    Alcotest.test_case "arith" `Quick test_arith;
    Alcotest.test_case "i32 wrap" `Quick test_i32_wrap;
    Alcotest.test_case "branches + phis" `Quick test_branches_and_phis;
    Alcotest.test_case "loop sum" `Quick test_loop_sums;
    Alcotest.test_case "memory + gep" `Quick test_memory_and_gep;
    Alcotest.test_case "multidim gep" `Quick test_multidim_gep;
    Alcotest.test_case "struct gep layout" `Quick test_struct_gep_matches_layout;
    Alcotest.test_case "insert/extract value" `Quick test_insert_extract_value;
    Alcotest.test_case "intrinsics" `Quick test_intrinsics;
    Alcotest.test_case "select + freeze" `Quick test_select_freeze;
    Alcotest.test_case "switch" `Quick test_switch;
    Alcotest.test_case "infinite loop guard" `Quick test_infinite_loop_guard;
    Alcotest.test_case "uninitialized load traps" `Quick test_uninitialized_load_traps;
  ]
