(** Tests for the multi-level IR: builder, verifier, printer/parser
    round-trip, and structural utilities. *)

open Mhir

(* ------------------------------------------------------------------ *)
(* Helpers                                                            *)
(* ------------------------------------------------------------------ *)

(** saxpy-like module: y[i] = a*x[i] + y[i] with scalar a as constant. *)
let build_saxpy n =
  let b = Builder.create () in
  let vty = Types.memref [ n ] in
  let f =
    Builder.func b "saxpy"
      ~args:[ ("x", vty); ("y", vty) ]
      ~ret_tys:[]
      (fun b args ->
        match args with
        | [ x; y ] ->
            ignore
              (Builder.affine_for b ~lb:0 ~ub:n (fun b i _ ->
                   let a = Builder.constant_f b 2.5 in
                   let xv = Builder.load b x [ i ] in
                   let yv = Builder.load b y [ i ] in
                   let m = Builder.mulf b a xv in
                   let s = Builder.addf b m yv in
                   Builder.store b s y [ i ];
                   []));
            Builder.ret b []
        | _ -> assert false)
  in
  { Ir.funcs = [ f ] }

let build_sum_reduction n =
  let b = Builder.create () in
  let vty = Types.memref [ n ] in
  let f =
    Builder.func b "sum"
      ~args:[ ("x", vty); ("out", Types.memref [ 1 ]) ]
      ~ret_tys:[]
      (fun b args ->
        match args with
        | [ x; out ] ->
            let zero = Builder.constant_f b 0.0 in
            let acc =
              Builder.affine_for b ~lb:0 ~ub:n ~iters:[ zero ] (fun b i iters ->
                  let xv = Builder.load b x [ i ] in
                  [ Builder.addf b (List.hd iters) xv ])
            in
            let c0 = Builder.constant_i b 0 in
            Builder.store b (List.hd acc) out [ c0 ];
            Builder.ret b []
        | _ -> assert false)
  in
  { Ir.funcs = [ f ] }

(* ------------------------------------------------------------------ *)
(* Builder / verifier                                                 *)
(* ------------------------------------------------------------------ *)

let test_builder_produces_valid_ir () =
  Verifier.verify_module (build_saxpy 8);
  Verifier.verify_module (build_sum_reduction 8)

let test_builder_type_checks () =
  let b = Builder.create () in
  let i = Builder.constant_i b 1 in
  let f = Builder.constant_f b 1.0 in
  Alcotest.(check bool) "addi on float rejected" true
    (try
       ignore (Builder.addi b f f);
       false
     with Support.Err.Compile_error _ -> true);
  Alcotest.(check bool) "mixed addf rejected" true
    (try
       ignore (Builder.addf b f (Builder.sitofp b i Types.F64));
       false
     with Support.Err.Compile_error _ -> true)

let test_builder_subscript_checks () =
  let b = Builder.create () in
  let m = Builder.memref_alloc b (Types.memref [ 4; 4 ]) in
  let i = Builder.constant_i b 0 in
  Alcotest.(check bool) "rank mismatch rejected" true
    (try
       ignore (Builder.load b m [ i ]);
       false
     with Support.Err.Compile_error _ -> true)

let test_verifier_detects_bad_yield () =
  (* hand-build an affine.for whose yield type mismatches its result *)
  let b = Builder.create () in
  let f =
    Builder.func b "bad" ~args:[] ~ret_tys:[] (fun b _ ->
        let zero = Builder.constant_f b 0.0 in
        ignore
          (Builder.affine_for b ~lb:0 ~ub:4 ~iters:[ zero ] (fun b _ iters ->
               iters));
        Builder.ret b [])
  in
  let m = { Ir.funcs = [ f ] } in
  (* corrupt it: change the loop result type *)
  let corrupt =
    Ir.rewrite_func
      (fun o ->
        if o.Ir.name = "affine.for" then
          [ { o with Ir.results = List.map (fun v -> { v with Ir.ty = Types.I32 }) o.Ir.results } ]
        else [ o ])
      f
  in
  Verifier.verify_module m;
  Alcotest.(check bool) "corrupted module rejected" true
    (try
       Verifier.verify_module { Ir.funcs = [ corrupt ] };
       false
     with Support.Err.Compile_error _ -> true)

let test_verifier_detects_duplicate_funcs () =
  let m = build_saxpy 4 in
  let dup = { Ir.funcs = m.Ir.funcs @ m.Ir.funcs } in
  Alcotest.(check bool) "duplicate function names rejected" true
    (try
       Verifier.verify_module dup;
       false
     with Support.Err.Compile_error _ -> true)

let test_verifier_checks_calls () =
  let b = Builder.create () in
  let f =
    Builder.func b "caller" ~args:[] ~ret_tys:[] (fun b _ ->
        ignore (Builder.call b "missing" ~ret_tys:[] []);
        Builder.ret b [])
  in
  Alcotest.(check bool) "call to unknown function rejected" true
    (try
       Verifier.verify_module { Ir.funcs = [ f ] };
       false
     with Support.Err.Compile_error _ -> true)

(* ------------------------------------------------------------------ *)
(* Walk / rewrite                                                     *)
(* ------------------------------------------------------------------ *)

let test_walk_counts () =
  let m = build_saxpy 8 in
  let f = List.hd m.Ir.funcs in
  let count = Ir.op_count f in
  (* for + yield + return + 6 body ops *)
  Alcotest.(check bool) "op_count sees nested ops" true (count >= 8)

let test_rewrite_deletes () =
  let m = build_saxpy 8 in
  let f = List.hd m.Ir.funcs in
  let without_stores =
    Ir.rewrite_func
      (fun o -> if o.Ir.name = "affine.store" then [] else [ o ])
      f
  in
  let stores = ref 0 in
  Ir.walk_func
    (fun o -> if o.Ir.name = "affine.store" then incr stores)
    without_stores;
  Alcotest.(check int) "stores removed" 0 !stores

(* ------------------------------------------------------------------ *)
(* Printer / parser round-trip                                        *)
(* ------------------------------------------------------------------ *)

let roundtrip m =
  let text = Printer.module_to_string ~generic:true m in
  let m2 = Parser.parse_module text in
  Verifier.verify_module m2;
  let text2 = Printer.module_to_string ~generic:true m2 in
  (text, text2)

let test_roundtrip_saxpy () =
  let t1, t2 = roundtrip (build_saxpy 8) in
  Alcotest.(check string) "generic text is a fixpoint" t1 t2

let test_roundtrip_reduction () =
  let t1, t2 = roundtrip (build_sum_reduction 16) in
  Alcotest.(check string) "generic text is a fixpoint" t1 t2

let test_roundtrip_all_kernels () =
  List.iter
    (fun k ->
      let m = k.Workloads.Kernels.build Workloads.Kernels.pipelined in
      let t1, t2 = roundtrip m in
      Alcotest.(check string) (k.Workloads.Kernels.kname ^ " round-trips") t1 t2)
    (Workloads.Kernels.all ())

let test_pretty_printer_runs () =
  let m = build_saxpy 8 in
  let s = Printer.module_to_string m in
  Alcotest.(check bool) "pretty output mentions affine.for" true
    (let found = ref false in
     String.iteri
       (fun i _ ->
         if i + 10 <= String.length s && String.sub s i 10 = "affine.for" then
           found := true)
       s;
     !found)

let test_parser_rejects_garbage () =
  Alcotest.(check bool) "garbage rejected" true
    (try
       ignore (Parser.parse_module "module { func.func oops }");
       false
     with Support.Err.Compile_error _ -> true)

let test_parser_rejects_type_conflict () =
  let bad =
    {|module {
func.func @f(%0: i32) -> () {
  %1 = "arith.addi"(%0, %0) : (i64, i64) -> (i64)
  "func.return"() : () -> ()
}
}|}
  in
  Alcotest.(check bool) "conflicting SSA types rejected" true
    (try
       ignore (Parser.parse_module bad);
       false
     with Support.Err.Compile_error _ -> true)

let suite =
  [
    Alcotest.test_case "builder produces valid IR" `Quick test_builder_produces_valid_ir;
    Alcotest.test_case "builder type checks" `Quick test_builder_type_checks;
    Alcotest.test_case "builder subscript checks" `Quick test_builder_subscript_checks;
    Alcotest.test_case "verifier: bad yield" `Quick test_verifier_detects_bad_yield;
    Alcotest.test_case "verifier: duplicate funcs" `Quick test_verifier_detects_duplicate_funcs;
    Alcotest.test_case "verifier: unknown call" `Quick test_verifier_checks_calls;
    Alcotest.test_case "walk counts nested ops" `Quick test_walk_counts;
    Alcotest.test_case "rewrite deletes ops" `Quick test_rewrite_deletes;
    Alcotest.test_case "roundtrip saxpy" `Quick test_roundtrip_saxpy;
    Alcotest.test_case "roundtrip reduction" `Quick test_roundtrip_reduction;
    Alcotest.test_case "roundtrip all kernels" `Quick test_roundtrip_all_kernels;
    Alcotest.test_case "pretty printer" `Quick test_pretty_printer_runs;
    Alcotest.test_case "parser rejects garbage" `Quick test_parser_rejects_garbage;
    Alcotest.test_case "parser rejects type conflicts" `Quick test_parser_rejects_type_conflict;
  ]
