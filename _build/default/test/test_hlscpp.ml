(** Tests for the baseline HLS C++ flow: the emitter, the mini-C
    lexer/parser, and the Clang-style code generator. *)

module K = Workloads.Kernels
open Llvmir

(* ------------------------------------------------------------------ *)
(* Lexer                                                              *)
(* ------------------------------------------------------------------ *)

let test_lexer_basic () =
  let toks = Hlscpp.Clex.tokenize "int x = 42; // comment\nfloat y = 1.5f;" in
  let has t = Array.exists (( = ) t) toks in
  Alcotest.(check bool) "int kw" true (has (Hlscpp.Clex.Tident "int"));
  Alcotest.(check bool) "42" true (has (Hlscpp.Clex.Tint 42));
  Alcotest.(check bool) "float lit with suffix" true
    (has (Hlscpp.Clex.Tfloat (1.5, true)));
  Alcotest.(check bool) "comment skipped" true
    (not (has (Hlscpp.Clex.Tident "comment")))

let test_lexer_pragma () =
  let toks = Hlscpp.Clex.tokenize "#pragma HLS pipeline II=3\nx = 1;" in
  Alcotest.(check bool) "pragma token" true
    (Array.exists
       (function Hlscpp.Clex.Tpragma p -> Str_find.contains p "pipeline" | _ -> false)
       toks)

let test_lexer_two_char_ops () =
  let toks = Hlscpp.Clex.tokenize "a += b; c <= d; e++;" in
  let has p = Array.exists (( = ) (Hlscpp.Clex.Tpunct p)) toks in
  Alcotest.(check bool) "+=" true (has "+=");
  Alcotest.(check bool) "<=" true (has "<=");
  Alcotest.(check bool) "++" true (has "++")

(* ------------------------------------------------------------------ *)
(* Parser                                                             *)
(* ------------------------------------------------------------------ *)

let test_parse_function () =
  let file =
    Hlscpp.Cparse.parse_file
      {|void f(float A[4][4], int n) {
  float acc = 0.0f;
  for (int i = 0; i < 4; i++) {
    acc = acc + A[i][i];
  }
  A[0][0] = acc;
}|}
  in
  Alcotest.(check int) "one function" 1 (List.length file);
  let f = List.hd file in
  Alcotest.(check string) "name" "f" f.Hlscpp.Cast.fname;
  Alcotest.(check int) "two params" 2 (List.length f.Hlscpp.Cast.params);
  Alcotest.(check (list int)) "array dims" [ 4; 4 ]
    (List.hd f.Hlscpp.Cast.params).Hlscpp.Cast.dims

let test_parse_pragmas () =
  let p = Hlscpp.Cparse.parse_pragma "pragma HLS pipeline II=4" in
  Alcotest.(check bool) "pipeline II" true (p = Hlscpp.Cast.Ppipeline 4);
  let u = Hlscpp.Cparse.parse_pragma "pragma HLS unroll factor=8" in
  Alcotest.(check bool) "unroll factor" true (u = Hlscpp.Cast.Punroll 8);
  let u0 = Hlscpp.Cparse.parse_pragma "pragma HLS unroll" in
  Alcotest.(check bool) "bare unroll = full" true (u0 = Hlscpp.Cast.Punroll 0);
  match Hlscpp.Cparse.parse_pragma
          "pragma HLS array_partition variable=Buf cyclic factor=4 dim=2" with
  | Hlscpp.Cast.Ppartition { variable; kind; factor; dim } ->
      Alcotest.(check string) "variable keeps case" "Buf" variable;
      Alcotest.(check string) "kind" "cyclic" kind;
      Alcotest.(check int) "factor" 4 factor;
      Alcotest.(check int) "dim" 2 dim
  | _ -> Alcotest.fail "partition pragma not recognized"

let test_parse_precedence () =
  (* 1 + 2 * 3 parses as 1 + (2 * 3) *)
  let file = Hlscpp.Cparse.parse_file "int f() { return 1 + 2 * 3; }" in
  let f = List.hd file in
  match f.Hlscpp.Cast.body with
  | [ Hlscpp.Cast.Sreturn (Some (Hlscpp.Cast.Ebin ("+", Hlscpp.Cast.Eint 1, Hlscpp.Cast.Ebin ("*", _, _)))) ] ->
      ()
  | _ -> Alcotest.fail "precedence wrong"

let test_parse_rejects_malformed_for () =
  Alcotest.(check bool) "for with mismatched variable rejected" true
    (try
       ignore
         (Hlscpp.Cparse.parse_file "void f() { for (int i = 0; j < 4; i++) { } }");
       false
     with Support.Err.Compile_error _ -> true)

(* ------------------------------------------------------------------ *)
(* Codegen                                                            *)
(* ------------------------------------------------------------------ *)

let test_codegen_scalar_function () =
  let m =
    Hlscpp.Ccodegen.compile
      {|int f(int a, int b) {
  int c = a * b;
  if (c > 100) {
    c = 100;
  }
  return c;
}|}
  in
  Lverifier.verify_module m;
  let run a b =
    let st = Linterp.create m in
    match Linterp.run st "f" [ Linterp.RInt a; Linterp.RInt b ] with
    | Some (Linterp.RInt v) -> v
    | _ -> -1
  in
  Alcotest.(check int) "6*7" 42 (run 6 7);
  Alcotest.(check int) "clamped" 100 (run 20 20)

let test_codegen_loop_and_arrays () =
  let m =
    Hlscpp.Ccodegen.compile
      {|void scale(float x[8], float y[8]) {
  for (int i = 0; i < 8; i++) {
    y[i] = x[i] * 2.0f;
  }
}|}
  in
  Lverifier.verify_module m;
  let st = Linterp.create m in
  let xa = Linterp.alloc_floats st 8 in
  let ya = Linterp.alloc_floats st 8 in
  Linterp.write_floats st xa (Array.init 8 float_of_int);
  ignore (Linterp.run st "scale" [ Linterp.RPtr xa; Linterp.RPtr ya ]);
  let y = Linterp.read_floats st ya 8 in
  Alcotest.(check (float 1e-9)) "y[3] = 6" 6.0 y.(3);
  Alcotest.(check (float 1e-9)) "y[7] = 14" 14.0 y.(7)

let test_codegen_is_clang_shaped () =
  (* locals through allocas, markers in loop headers, typed pointers *)
  let m =
    Hlscpp.Ccodegen.compile
      {|void f(float x[8]) {
  for (int i = 0; i < 8; i++) {
#pragma HLS pipeline II=1
    x[i] = x[i] + 1.0f;
  }
}|}
  in
  let text = Lprinter.module_to_string m in
  Alcotest.(check bool) "alloca for loop counter" true
    (Str_find.contains text "alloca i32");
  Alcotest.(check bool) "pipeline marker call" true
    (Str_find.contains text "_ssdm_op_SpecPipeline");
  Alcotest.(check bool) "tripcount marker call" true
    (Str_find.contains text "_ssdm_op_SpecLoopTripCount");
  Alcotest.(check bool) "no opaque pointers" true
    (Hls_backend.Adaptor_markers.legality_errors m = [])

let test_codegen_compound_assign () =
  let m =
    Hlscpp.Ccodegen.compile
      {|int f(int x) {
  int s = 1;
  s += x;
  s *= 2;
  return s;
}|}
  in
  let st = Linterp.create m in
  (match Linterp.run st "f" [ Linterp.RInt 4 ] with
  | Some (Linterp.RInt 10) -> ()
  | Some (Linterp.RInt v) -> Alcotest.failf "expected 10, got %d" v
  | _ -> Alcotest.fail "bad result")

let test_codegen_int_float_conversions () =
  let m =
    Hlscpp.Ccodegen.compile
      {|float f(int n) {
  float s = 0.0f;
  s = s + n;
  return s * 1.5f;
}|}
  in
  let st = Linterp.create m in
  (match Linterp.run st "f" [ Linterp.RInt 4 ] with
  | Some (Linterp.RFloat v) -> Alcotest.(check (float 1e-6)) "4 * 1.5" 6.0 v
  | _ -> Alcotest.fail "bad result")

(* ------------------------------------------------------------------ *)
(* Emitter + round-trip                                               *)
(* ------------------------------------------------------------------ *)

let test_emit_contains_pragmas () =
  let k = K.gemm () in
  let d = K.optimized ~factor:4 ~parts:[ ("A", 2); ("B", 1) ] () in
  let cpp = Hlscpp.Emit.emit_module (k.K.build d) in
  Alcotest.(check bool) "pipeline pragma" true
    (Str_find.contains cpp "#pragma HLS pipeline");
  Alcotest.(check bool) "unroll pragma" true
    (Str_find.contains cpp "#pragma HLS unroll");
  Alcotest.(check bool) "partition pragma" true
    (Str_find.contains cpp "#pragma HLS array_partition variable=A");
  Alcotest.(check bool) "array params" true
    (Str_find.contains cpp "float A[16][16]")

let test_cpp_roundtrip_all_kernels () =
  (* mhir -> C++ -> LLVM must match the mhir interpreter exactly *)
  List.iter
    (fun k ->
      let m = k.K.build K.pipelined in
      let cpp = Hlscpp.Emit.emit_module (Mhir.Canonicalize.run m) in
      let lm = Hlscpp.Ccodegen.compile cpp in
      Lverifier.verify_module lm;
      let lm = fst (Pass.run_pipeline Pass.default_pipeline lm) in
      let reference = Flow.run_reference k in
      let got = Flow.run_llvm k lm in
      let err, issues = Flow.compare_outputs k ~what:"cpp" reference got in
      if issues <> [] then
        Alcotest.failf "%s: %s" k.K.kname (List.hd issues);
      Alcotest.(check bool) (k.K.kname ^ " error small") true (err < 1e-4))
    (K.all ())

let test_cpp_flow_is_hls_legal () =
  List.iter
    (fun k ->
      let lm, _, _ = Flow.hls_cpp_frontend (k.K.build K.pipelined) in
      Alcotest.(check bool)
        (k.K.kname ^ " C++ round-trip is HLS-legal")
        true
        (Hls_backend.Adaptor_markers.legality_errors lm = []))
    (K.all ())

let suite =
  [
    Alcotest.test_case "lexer basic" `Quick test_lexer_basic;
    Alcotest.test_case "lexer pragma" `Quick test_lexer_pragma;
    Alcotest.test_case "lexer two-char ops" `Quick test_lexer_two_char_ops;
    Alcotest.test_case "parse function" `Quick test_parse_function;
    Alcotest.test_case "parse pragmas" `Quick test_parse_pragmas;
    Alcotest.test_case "parse precedence" `Quick test_parse_precedence;
    Alcotest.test_case "parse rejects malformed for" `Quick test_parse_rejects_malformed_for;
    Alcotest.test_case "codegen scalar function" `Quick test_codegen_scalar_function;
    Alcotest.test_case "codegen loop + arrays" `Quick test_codegen_loop_and_arrays;
    Alcotest.test_case "codegen is clang-shaped" `Quick test_codegen_is_clang_shaped;
    Alcotest.test_case "codegen compound assign" `Quick test_codegen_compound_assign;
    Alcotest.test_case "codegen conversions" `Quick test_codegen_int_float_conversions;
    Alcotest.test_case "emit contains pragmas" `Quick test_emit_contains_pragmas;
    Alcotest.test_case "C++ roundtrip (all kernels)" `Quick test_cpp_roundtrip_all_kernels;
    Alcotest.test_case "C++ flow is HLS-legal" `Quick test_cpp_flow_is_hls_legal;
  ]
