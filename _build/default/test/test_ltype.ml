(** Tests for the LLVM type system: sizes, alignment, layout, GEP
    stepping, printing. *)

open Llvmir

let test_scalar_sizes () =
  Alcotest.(check int) "i1" 1 (Ltype.sizeof Ltype.I1);
  Alcotest.(check int) "i8" 1 (Ltype.sizeof Ltype.I8);
  Alcotest.(check int) "i16" 2 (Ltype.sizeof Ltype.I16);
  Alcotest.(check int) "i32" 4 (Ltype.sizeof Ltype.I32);
  Alcotest.(check int) "i64" 8 (Ltype.sizeof Ltype.I64);
  Alcotest.(check int) "float" 4 (Ltype.sizeof Ltype.Float);
  Alcotest.(check int) "double" 8 (Ltype.sizeof Ltype.Double);
  Alcotest.(check int) "ptr" 8 (Ltype.sizeof Ltype.opaque_ptr)

let test_array_sizes () =
  Alcotest.(check int) "[8 x float]" 32 (Ltype.sizeof (Ltype.Array (8, Ltype.Float)));
  Alcotest.(check int) "[4 x [4 x i32]]" 64
    (Ltype.sizeof (Ltype.Array (4, Ltype.Array (4, Ltype.I32))))

let test_struct_layout () =
  (* { i8, i32 } pads to 8 bytes *)
  let s = Ltype.Struct [ Ltype.I8; Ltype.I32 ] in
  Alcotest.(check int) "padded struct size" 8 (Ltype.sizeof s);
  Alcotest.(check int) "field 0 offset" 0 (Ltype.struct_offset [ Ltype.I8; Ltype.I32 ] 0);
  Alcotest.(check int) "field 1 aligned" 4 (Ltype.struct_offset [ Ltype.I8; Ltype.I32 ] 1)

let test_descriptor_layout () =
  (* the memref descriptor: { ptr, ptr, i64, [2 x i64], [2 x i64] } *)
  let fields =
    [ Ltype.opaque_ptr; Ltype.opaque_ptr; Ltype.I64;
      Ltype.Array (2, Ltype.I64); Ltype.Array (2, Ltype.I64) ]
  in
  Alcotest.(check int) "descriptor size" 56 (Ltype.sizeof (Ltype.Struct fields));
  Alcotest.(check int) "aligned ptr field at 8" 8 (Ltype.struct_offset fields 1);
  Alcotest.(check int) "sizes array at 24" 24 (Ltype.struct_offset fields 3)

let test_gep_step () =
  let arr = Ltype.Array (4, Ltype.Array (8, Ltype.Float)) in
  Alcotest.(check bool) "array step" true
    (Ltype.equal (Ltype.gep_step arr None) (Ltype.Array (8, Ltype.Float)));
  let s = Ltype.Struct [ Ltype.I32; Ltype.Float ] in
  Alcotest.(check bool) "struct step needs constant" true
    (try
       ignore (Ltype.gep_step s None);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "struct field 1" true
    (Ltype.equal (Ltype.gep_step s (Some 1)) Ltype.Float)

let test_to_string () =
  Alcotest.(check string) "typed ptr" "float*" (Ltype.to_string (Ltype.ptr Ltype.Float));
  Alcotest.(check string) "opaque ptr" "ptr" (Ltype.to_string Ltype.opaque_ptr);
  Alcotest.(check string) "nested array" "[4 x [8 x float]]"
    (Ltype.to_string (Ltype.Array (4, Ltype.Array (8, Ltype.Float))));
  Alcotest.(check string) "struct" "{ i64, float* }"
    (Ltype.to_string (Ltype.Struct [ Ltype.I64; Ltype.ptr Ltype.Float ]))

let test_predicates () =
  Alcotest.(check bool) "opaque detected" true (Ltype.is_opaque_pointer Ltype.opaque_ptr);
  Alcotest.(check bool) "typed not opaque" false (Ltype.is_opaque_pointer (Ltype.ptr Ltype.I32));
  Alcotest.(check bool) "aggregate" true (Ltype.is_aggregate (Ltype.Array (2, Ltype.I8)));
  Alcotest.(check bool) "int width" true (Ltype.int_width Ltype.I16 = 16)

let prop_sizeof_positive =
  let gen_ty =
    let open QCheck.Gen in
    fix
      (fun self depth ->
        if depth = 0 then
          oneofl [ Ltype.I1; Ltype.I8; Ltype.I32; Ltype.I64; Ltype.Float; Ltype.Double ]
        else
          frequency
            [
              (3, oneofl [ Ltype.I32; Ltype.Float; Ltype.I64 ]);
              (1, map2 (fun n t -> Ltype.Array (n, t)) (int_range 1 8) (self (depth - 1)));
              (1, map (fun ts -> Ltype.Struct ts) (list_size (int_range 1 4) (self (depth - 1))));
            ])
      3
  in
  QCheck.Test.make ~name:"sizeof is positive and aligned" ~count:200
    (QCheck.make gen_ty) (fun t ->
      let s = Ltype.sizeof t and a = Ltype.alignment t in
      s > 0 && a > 0 && s mod a = 0)

let prop_struct_offsets_monotonic =
  let gen_fields =
    QCheck.Gen.(list_size (int_range 1 6)
      (oneofl [ Ltype.I8; Ltype.I16; Ltype.I32; Ltype.I64; Ltype.Float; Ltype.Double ]))
  in
  QCheck.Test.make ~name:"struct offsets are monotonic and in-bounds" ~count:200
    (QCheck.make gen_fields) (fun fields ->
      let n = List.length fields in
      let offs = List.init n (Ltype.struct_offset fields) in
      let sorted = List.sort compare offs in
      offs = sorted
      && List.for_all2
           (fun o f -> o + Ltype.sizeof f <= Ltype.sizeof (Ltype.Struct fields))
           offs fields)

let suite =
  [
    Alcotest.test_case "scalar sizes" `Quick test_scalar_sizes;
    Alcotest.test_case "array sizes" `Quick test_array_sizes;
    Alcotest.test_case "struct layout" `Quick test_struct_layout;
    Alcotest.test_case "descriptor layout" `Quick test_descriptor_layout;
    Alcotest.test_case "gep step" `Quick test_gep_step;
    Alcotest.test_case "to_string" `Quick test_to_string;
    Alcotest.test_case "predicates" `Quick test_predicates;
    QCheck_alcotest.to_alcotest prop_sizeof_positive;
    QCheck_alcotest.to_alcotest prop_struct_offsets_monotonic;
  ]
