(** Tests for the MLIR → LLVM lowering: the modern style must produce
    exactly the constructs the adaptor exists to remove, the classic
    style must not, and both must preserve semantics. *)

open Llvmir
module K = Workloads.Kernels

let lower ?style k d =
  let m = (k : K.kernel).K.build d in
  Lowering.Lower.lower_module ?style m

let count pred (m : Lmodule.t) =
  List.fold_left
    (fun acc f -> Lmodule.fold_insts (fun n i -> if pred i then n + 1 else n) acc f)
    0 m.Lmodule.funcs

let has_call name (m : Lmodule.t) =
  count
    (fun (i : Linstr.t) ->
      match i.Linstr.op with
      | Linstr.Call { callee; _ } -> callee = name
      | _ -> false)
    m
  > 0

let test_modern_emits_descriptors () =
  let m = lower (K.gemm ()) K.no_directives in
  let inserts =
    count
      (fun i -> match i.Linstr.op with Linstr.InsertValue _ -> true | _ -> false)
      m
  in
  (* 3 memref args x (2 ptrs + offset + 2 sizes + 2 strides) = 21 *)
  Alcotest.(check int) "descriptor insertvalue chains" 21 inserts

let test_modern_emits_opaque_pointers () =
  let m = lower (K.gemm ()) K.no_directives in
  let f = Lmodule.find_func_exn m "gemm" in
  List.iter
    (fun (p : Lmodule.param) ->
      Alcotest.(check bool) "param is opaque ptr" true
        (Ltype.is_opaque_pointer p.Lmodule.pty))
    f.Lmodule.params

let test_modern_emits_fmuladd () =
  let m = lower (K.gemm ()) K.no_directives in
  Alcotest.(check bool) "fmuladd fused" true (has_call "llvm.fmuladd.f32" m);
  (* and the plain fmul that fed it is gone *)
  let fmuls =
    count
      (fun i ->
        match i.Linstr.op with
        | Linstr.FBin (Linstr.FMul, _, _) -> true
        | _ -> false)
      m
  in
  Alcotest.(check int) "no separate fmul remains" 0 fmuls

let test_modern_emits_assume_and_lifetimes () =
  let m = lower (K.mm2 ()) K.no_directives in
  Alcotest.(check bool) "llvm.assume" true (has_call "llvm.assume" m);
  Alcotest.(check bool) "lifetime.start around local buffer" true
    (has_call "llvm.lifetime.start.p0" m)

let test_modern_emits_loop_metadata () =
  let m = lower (K.gemm ()) K.pipelined in
  let md_count =
    count (fun i -> i.Linstr.imeta <> []) m
  in
  Alcotest.(check bool) "latches carry metadata" true (md_count >= 3);
  let has_key key =
    count (fun i -> List.mem_assoc key i.Linstr.imeta) m > 0
  in
  Alcotest.(check bool) "pipeline ii key" true (has_key "llvm.loop.pipeline.ii");
  Alcotest.(check bool) "tripcount key" true (has_key "llvm.loop.tripcount")

let test_classic_style_is_clean () =
  let m = lower ~style:Lowering.Lower.classic (K.gemm ()) K.no_directives in
  Lverifier.verify_module m;
  let inserts =
    count
      (fun i -> match i.Linstr.op with Linstr.InsertValue _ -> true | _ -> false)
      m
  in
  Alcotest.(check int) "no descriptors" 0 inserts;
  let f = Lmodule.find_func_exn m "gemm" in
  List.iter
    (fun (p : Lmodule.param) ->
      Alcotest.(check bool) "typed param" false
        (Ltype.is_opaque_pointer p.Lmodule.pty))
    f.Lmodule.params;
  Alcotest.(check bool) "no fmuladd" true (not (has_call "llvm.fmuladd.f32" m))

let test_lowered_ir_verifies_all_kernels () =
  List.iter
    (fun k ->
      List.iter
        (fun style ->
          let m = lower ~style k K.pipelined in
          Lverifier.verify_module m)
        [ Lowering.Lower.modern; Lowering.Lower.classic ])
    (K.all ())

let test_modern_vs_classic_semantics () =
  (* two very different lowerings of the same program must agree *)
  List.iter
    (fun k ->
      let modern = lower ~style:Lowering.Lower.modern k K.no_directives in
      let classic = lower ~style:Lowering.Lower.classic k K.no_directives in
      let a = Flow.run_llvm k modern in
      let b = Flow.run_llvm k classic in
      List.iteri
        (fun i (x, y) ->
          Array.iteri
            (fun j xv ->
              if Float.abs (xv -. y.(j)) > 1e-9 then
                Alcotest.failf "%s: modern/classic diverge at %d[%d]"
                  k.K.kname i j)
            x)
        (List.combine a b))
    (K.all ())

let test_linearized_accesses () =
  (* in modern style every access GEP is flat (1 index over the elem) *)
  let m = lower (K.gemm ()) K.no_directives in
  Lmodule.iter_insts
    (fun (i : Linstr.t) ->
      match i.Linstr.op with
      | Linstr.Gep { src_ty; idxs; _ } ->
          Alcotest.(check bool) "flat elem gep" true
            (src_ty = Ltype.Float && List.length idxs = 1)
      | _ -> ())
    (Lmodule.find_func_exn m "gemm")

let test_scalar_args_lower_directly () =
  (* a function with a scalar argument keeps it as a value param *)
  let b = Mhir.Builder.create () in
  let f =
    Mhir.Builder.func b "scale"
      ~args:[ ("x", Mhir.Types.memref [ 4 ]); ("s", Mhir.Types.F32) ]
      ~ret_tys:[]
      (fun b args ->
        match args with
        | [ x; s ] ->
            ignore
              (Mhir.Builder.affine_for b ~lb:0 ~ub:4 (fun b i _ ->
                   let v = Mhir.Builder.load b x [ i ] in
                   let v2 = Mhir.Builder.mulf b v s in
                   Mhir.Builder.store b v2 x [ i ];
                   []));
            Mhir.Builder.ret b []
        | _ -> assert false)
  in
  let lm = Lowering.Lower.lower_module { Mhir.Ir.funcs = [ f ] } in
  Lverifier.verify_module lm;
  let lf = Lmodule.find_func_exn lm "scale" in
  (match (List.nth lf.Lmodule.params 1).Lmodule.pty with
  | Ltype.Float -> ()
  | t -> Alcotest.failf "scalar param lowered to %s" (Ltype.to_string t));
  (* run it *)
  let st = Linterp.create lm in
  let ax = Linterp.alloc_floats st 4 in
  Linterp.write_floats st ax [| 1.; 2.; 3.; 4. |];
  ignore (Linterp.run st "scale" [ Linterp.RPtr ax; Linterp.RFloat 2.0 ]);
  Alcotest.(check (float 1e-9)) "x[2] scaled" 6.0 (Linterp.read_floats st ax 4).(2)

let test_scf_constructs_lower () =
  (* scf.for + scf.if lower to correct CFG *)
  let b = Mhir.Builder.create () in
  let f =
    Mhir.Builder.func b "clip"
      ~args:[ ("x", Mhir.Types.memref [ 8 ]) ]
      ~ret_tys:[]
      (fun b args ->
        let x = List.hd args in
        let lb = Mhir.Builder.constant_i b 0 in
        let ub = Mhir.Builder.constant_i b 8 in
        let step = Mhir.Builder.constant_i b 1 in
        ignore
          (Mhir.Builder.scf_for b ~lb ~ub ~step (fun b i _ ->
               let v = Mhir.Builder.load b x [ i ] in
               let limit = Mhir.Builder.constant_f b 5.0 in
               let c = Mhir.Builder.cmpf b Mhir.Builder.Ogt v limit in
               let clipped =
                 Mhir.Builder.scf_if b c ~result_tys:[ Mhir.Types.F32 ]
                   ~then_:(fun b -> [ Mhir.Builder.constant_f b 5.0 ])
                   ~else_:(fun _ -> [ v ])
               in
               Mhir.Builder.store b (List.hd clipped) x [ i ];
               []));
        Mhir.Builder.ret b [])
  in
  let m = { Mhir.Ir.funcs = [ f ] } in
  Mhir.Verifier.verify_module m;
  let lm = Lowering.Lower.lower_module m in
  Lverifier.verify_module lm;
  let st = Linterp.create lm in
  let ax = Linterp.alloc_floats st 8 in
  Linterp.write_floats st ax [| 1.; 9.; 3.; 7.; 5.; 6.; 2.; 8. |];
  ignore (Linterp.run st "clip" [ Linterp.RPtr ax ]);
  let out = Linterp.read_floats st ax 8 in
  Alcotest.(check (float 1e-9)) "clipped 9 -> 5" 5.0 out.(1);
  Alcotest.(check (float 1e-9)) "kept 3" 3.0 out.(2);
  Alcotest.(check (float 1e-9)) "clipped 8 -> 5" 5.0 out.(7)

let suite =
  [
    Alcotest.test_case "modern emits descriptors" `Quick test_modern_emits_descriptors;
    Alcotest.test_case "modern emits opaque pointers" `Quick test_modern_emits_opaque_pointers;
    Alcotest.test_case "modern emits fmuladd" `Quick test_modern_emits_fmuladd;
    Alcotest.test_case "modern emits assume/lifetimes" `Quick
      test_modern_emits_assume_and_lifetimes;
    Alcotest.test_case "modern emits loop metadata" `Quick test_modern_emits_loop_metadata;
    Alcotest.test_case "classic style is clean" `Quick test_classic_style_is_clean;
    Alcotest.test_case "lowered IR verifies (all kernels)" `Quick
      test_lowered_ir_verifies_all_kernels;
    Alcotest.test_case "modern vs classic semantics" `Quick test_modern_vs_classic_semantics;
    Alcotest.test_case "linearized accesses" `Quick test_linearized_accesses;
    Alcotest.test_case "scalar args" `Quick test_scalar_args_lower_directly;
    Alcotest.test_case "scf constructs" `Quick test_scf_constructs_lower;
  ]
