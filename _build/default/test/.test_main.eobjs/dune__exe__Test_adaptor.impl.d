test/test_adaptor.ml: Adaptor Alcotest Array Float Flow Hls_backend Linstr Linterp List Llvmir Lmodule Lowering Lparser Lprinter Ltype Lverifier Pass Str_find Support Workloads
