test/test_mhir_interp.ml: Affine_to_scf Alcotest Array Builder Canonicalize Dialect Float Interp Ir List Mhir Support Types Verifier Workloads
