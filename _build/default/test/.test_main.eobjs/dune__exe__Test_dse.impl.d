test/test_dse.ml: Alcotest Flow Hls_backend List Printf Str_find Workloads
