test/test_support.ml: Alcotest List String Support
