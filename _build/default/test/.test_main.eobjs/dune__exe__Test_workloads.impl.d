test/test_workloads.ml: Alcotest Array Float Flow List Mhir Printf Workloads
