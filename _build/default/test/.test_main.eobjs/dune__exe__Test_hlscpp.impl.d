test/test_hlscpp.ml: Alcotest Array Flow Hls_backend Hlscpp Linterp List Llvmir Lprinter Lverifier Mhir Pass Str_find Support Workloads
