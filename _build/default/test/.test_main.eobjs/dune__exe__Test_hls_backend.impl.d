test/test_hls_backend.ml: Alcotest Array Cfg Flow Hls_backend List Llvmir Lmodule Loop_info Lowering Lparser Lverifier Printf Str_find String Workloads
