test/test_llvmir.ml: Alcotest Flow Hls_backend Lbuilder Linstr List Llvmir Lmodule Lowering Lparser Lprinter Ltype Lvalue Lverifier Str_find String Support Workloads
