test/test_ltype.ml: Alcotest List Llvmir Ltype QCheck QCheck_alcotest
