test/test_llvmir_extra.ml: Alcotest Hashtbl Hls_backend Linstr Linterp List Llvmir Lmodule Lparser Lprinter Ltype Lvalue Lverifier
