test/test_flow.ml: Adaptor Alcotest Flow Hls_backend List Printf Str_find Workloads
