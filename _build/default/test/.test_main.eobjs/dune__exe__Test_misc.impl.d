test/test_misc.ml: Alcotest Array Attr Builder Canonicalize Dialect Flow Hls_backend Hlscpp Ir List Llvmir Ltype Lvalue Mhir Option Parser Printer Str_find String Types Verifier Workloads
