test/test_random.ml: Adaptor Affine_expr Affine_map Array Attr Builder Canonicalize Float Hls_backend Hlscpp Interp Ir List Llvmir Lowering Mhir Parser Printer QCheck QCheck_alcotest Types Verifier
