test/test_mhir.ml: Alcotest Builder Ir List Mhir Parser Printer String Support Types Verifier Workloads
