test/test_llvm_analyses.ml: Alcotest Array Cfg Dominance Fun List Llvmir Lmodule Loop_info Lowering Lparser Lverifier Workloads
