test/test_lowering.ml: Alcotest Array Float Flow Linstr Linterp List Llvmir Lmodule Lowering Ltype Lverifier Mhir Workloads
