test/test_affine.ml: Affine_expr Affine_map Alcotest Array List Mhir QCheck QCheck_alcotest
