test/test_llvm_interp.ml: Alcotest Array Linterp Llvmir Lparser Lverifier Support
