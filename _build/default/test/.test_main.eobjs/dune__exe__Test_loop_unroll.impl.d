test/test_loop_unroll.ml: Alcotest Array Attr Float Flow Hls_backend Interp Ir List Loop_unroll Mhir Types Verifier Workloads
