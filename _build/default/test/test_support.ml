(** Unit tests for the support library. *)

let test_namegen_basic () =
  let g = Support.Namegen.create () in
  Alcotest.(check string) "first use of a base keeps it" "x" (Support.Namegen.fresh g "x");
  let second = Support.Namegen.fresh g "x" in
  Alcotest.(check bool) "second use is distinct" true (second <> "x");
  Alcotest.(check bool) "second is registered" true (Support.Namegen.is_used g second)

let test_namegen_reserve () =
  let g = Support.Namegen.create () in
  Support.Namegen.reserve g "t0";
  let n = Support.Namegen.fresh g "t0" in
  Alcotest.(check bool) "reserved name is avoided" true (n <> "t0")

let test_namegen_no_collisions () =
  let g = Support.Namegen.create () in
  let names = List.init 100 (fun _ -> Support.Namegen.fresh g "v") in
  let uniq = List.sort_uniq compare names in
  Alcotest.(check int) "100 fresh names are distinct" 100 (List.length uniq)

let test_union_find () =
  let u = Support.Union_find.create 8 in
  Alcotest.(check bool) "initially disjoint" false (Support.Union_find.same u 0 1);
  ignore (Support.Union_find.union u 0 1);
  ignore (Support.Union_find.union u 2 3);
  Alcotest.(check bool) "0~1" true (Support.Union_find.same u 0 1);
  Alcotest.(check bool) "2~3" true (Support.Union_find.same u 2 3);
  Alcotest.(check bool) "0!~2" false (Support.Union_find.same u 0 2);
  ignore (Support.Union_find.union u 1 2);
  Alcotest.(check bool) "transitive merge" true (Support.Union_find.same u 0 3)

let test_union_find_idempotent () =
  let u = Support.Union_find.create 4 in
  let r1 = Support.Union_find.union u 0 1 in
  let r2 = Support.Union_find.union u 0 1 in
  Alcotest.(check int) "re-union returns same root" r1 r2

let test_table_render () =
  let t = Support.Table.create ~aligns:[ Support.Table.Left; Support.Table.Right ] [ "name"; "n" ] in
  Support.Table.add_row t [ "a"; "1" ];
  Support.Table.add_row t [ "bb"; "22" ];
  let s = Support.Table.render t in
  Alcotest.(check bool) "contains header" true
    (String.length s > 0 && String.contains s 'n');
  (* all lines share the same width *)
  let lines = String.split_on_char '\n' s in
  let widths = List.map String.length (List.filter (fun l -> l <> "") lines) in
  let w0 = List.hd widths in
  Alcotest.(check bool) "rectangular output" true
    (List.for_all (fun w -> w = w0) widths)

let test_table_missing_cells () =
  let t = Support.Table.create [ "a"; "b"; "c" ] in
  Support.Table.add_row t [ "1" ];
  let s = Support.Table.render t in
  Alcotest.(check bool) "short rows are padded" true (String.length s > 0)

let test_err_fail_raises () =
  Alcotest.check_raises "fail raises Compile_error"
    (Support.Err.Compile_error (Support.Err.make ~pass:"x" "nope 42"))
    (fun () -> Support.Err.fail ~pass:"x" "nope %d" 42)

let test_err_guard () =
  Support.Err.guard ~pass:"g" true "fine";
  Alcotest.(check bool) "guard true passes" true true;
  match Support.Err.guard ~pass:"g" false "broken" with
  | () -> Alcotest.fail "guard false should raise"
  | exception Support.Err.Compile_error e ->
      Alcotest.(check string) "pass recorded" "g" e.Support.Err.pass

let suite =
  [
    Alcotest.test_case "namegen basic" `Quick test_namegen_basic;
    Alcotest.test_case "namegen reserve" `Quick test_namegen_reserve;
    Alcotest.test_case "namegen no collisions" `Quick test_namegen_no_collisions;
    Alcotest.test_case "union-find basic" `Quick test_union_find;
    Alcotest.test_case "union-find idempotent" `Quick test_union_find_idempotent;
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "table missing cells" `Quick test_table_missing_cells;
    Alcotest.test_case "err fail raises" `Quick test_err_fail_raises;
    Alcotest.test_case "err guard" `Quick test_err_guard;
  ]
