(** Unit and property tests for affine expressions and maps. *)

open Mhir
module AE = Affine_expr
module AM = Affine_map

(* ------------------------------------------------------------------ *)
(* QCheck generators                                                  *)
(* ------------------------------------------------------------------ *)

(** Random affine expression over [ndims] dims and [nsyms] syms.  Only
    "pure affine" shapes are generated (mul/div/mod by positive
    constants). *)
let gen_expr ~ndims ~nsyms : AE.t QCheck.Gen.t =
  let open QCheck.Gen in
  let leaf =
    oneof
      ([ map AE.const (int_range (-8) 8) ]
      @ (if ndims > 0 then [ map AE.dim (int_range 0 (ndims - 1)) ] else [])
      @ if nsyms > 0 then [ map AE.sym (int_range 0 (nsyms - 1)) ] else [])
  in
  fix
    (fun self depth ->
      if depth = 0 then leaf
      else
        frequency
          [
            (2, leaf);
            (2, map2 AE.add (self (depth - 1)) (self (depth - 1)));
            (1, map2 (fun e c -> AE.mul e (AE.const c)) (self (depth - 1)) (int_range 1 6));
            (1, map2 (fun e c -> AE.modulo e (AE.const c)) (self (depth - 1)) (int_range 1 6));
            (1, map2 (fun e c -> AE.floordiv e (AE.const c)) (self (depth - 1)) (int_range 1 6));
            (1, map2 (fun e c -> AE.ceildiv e (AE.const c)) (self (depth - 1)) (int_range 1 6));
          ])
    3

let arb_expr = QCheck.make (gen_expr ~ndims:2 ~nsyms:1)

(* ------------------------------------------------------------------ *)
(* Unit tests                                                         *)
(* ------------------------------------------------------------------ *)

let eval e dims syms =
  AE.eval ~dims:(Array.of_list dims) ~syms:(Array.of_list syms) e

let test_eval_basic () =
  let e = AE.add (AE.mul (AE.dim 0) (AE.const 4)) (AE.dim 1) in
  Alcotest.(check int) "d0*4 + d1 at (3, 2)" 14 (eval e [ 3; 2 ] []);
  Alcotest.(check int) "at (0, 0)" 0 (eval e [ 0; 0 ] [])

let test_eval_divmod () =
  let d = AE.dim 0 in
  Alcotest.(check int) "7 mod 4" 3 (eval (AE.modulo d (AE.const 4)) [ 7 ] []);
  Alcotest.(check int) "-1 mod 4 is Euclidean" 3 (eval (AE.modulo d (AE.const 4)) [ -1 ] []);
  Alcotest.(check int) "7 floordiv 2" 3 (eval (AE.floordiv d (AE.const 2)) [ 7 ] []);
  Alcotest.(check int) "-7 floordiv 2" (-4) (eval (AE.floordiv d (AE.const 2)) [ -7 ] []);
  Alcotest.(check int) "7 ceildiv 2" 4 (eval (AE.ceildiv d (AE.const 2)) [ 7 ] []);
  Alcotest.(check int) "-7 ceildiv 2" (-3) (eval (AE.ceildiv d (AE.const 2)) [ -7 ] [])

let test_smart_constructors () =
  Alcotest.(check bool) "x + 0 = x" true (AE.add (AE.dim 0) (AE.const 0) = AE.dim 0);
  Alcotest.(check bool) "x * 1 = x" true (AE.mul (AE.dim 0) (AE.const 1) = AE.dim 0);
  Alcotest.(check bool) "x * 0 = 0" true (AE.mul (AE.dim 0) (AE.const 0) = AE.const 0);
  Alcotest.(check bool) "const folding" true (AE.add (AE.const 2) (AE.const 3) = AE.const 5);
  Alcotest.(check bool) "mod 1 = 0" true (AE.modulo (AE.dim 0) (AE.const 1) = AE.const 0)

let test_max_dim_sym () =
  let e = AE.add (AE.dim 2) (AE.sym 1) in
  Alcotest.(check int) "max_dim" 3 (AE.max_dim e);
  Alcotest.(check int) "max_sym" 2 (AE.max_sym e)

let test_pure_affine () =
  Alcotest.(check bool) "d0*4 is pure" true
    (AE.is_pure_affine (AE.mul (AE.dim 0) (AE.const 4)));
  Alcotest.(check bool) "d0*d1 is not pure" false
    (AE.is_pure_affine (AE.Mul (AE.dim 0, AE.dim 1)))

let test_map_identity () =
  let m = AM.identity 3 in
  Alcotest.(check (list int)) "identity eval" [ 5; 6; 7 ]
    (AM.eval m ~dims:[| 5; 6; 7 |] ~syms:[||])

let test_map_constant () =
  let m = AM.constant 42 in
  Alcotest.(check (option int)) "as_constant" (Some 42) (AM.as_constant m);
  Alcotest.(check bool) "is_constant" true (AM.is_constant m)

let test_map_make_validates () =
  Alcotest.(check bool) "out-of-range dim rejected" true
    (try
       ignore (AM.make ~num_dims:1 ~num_syms:0 [ AE.dim 1 ]);
       false
     with Invalid_argument _ -> true)

let test_map_compose () =
  (* f(x, y) = (x + y); g(a) = (a, a*2). f∘g (a) = a + 2a = 3a *)
  let f = AM.make ~num_dims:2 ~num_syms:0 [ AE.add (AE.dim 0) (AE.dim 1) ] in
  let g = AM.make ~num_dims:1 ~num_syms:0 [ AE.dim 0; AE.mul (AE.dim 0) (AE.const 2) ] in
  let fg = AM.compose f g in
  Alcotest.(check (list int)) "compose eval" [ 15 ]
    (AM.eval fg ~dims:[| 5 |] ~syms:[||])

(* ------------------------------------------------------------------ *)
(* Properties                                                         *)
(* ------------------------------------------------------------------ *)

let prop_substitute_consistent =
  QCheck.Test.make ~name:"substitute with identity preserves eval" ~count:200
    arb_expr (fun e ->
      let dims = [| AE.dim 0; AE.dim 1 |] in
      let syms = [| AE.sym 0 |] in
      let e' = AE.substitute ~dims ~syms e in
      List.for_all
        (fun (d0, d1, s0) ->
          AE.eval ~dims:[| d0; d1 |] ~syms:[| s0 |] e
          = AE.eval ~dims:[| d0; d1 |] ~syms:[| s0 |] e')
        [ (0, 0, 0); (1, 2, 3); (7, -3, 2); (100, 5, 1) ])

let prop_smart_constructors_sound =
  (* the smart constructors (used pervasively for simplification) must
     agree with the raw constructors semantically *)
  QCheck.Test.make ~name:"smart add/mul agree with raw eval" ~count:200
    (QCheck.pair arb_expr arb_expr) (fun (a, b) ->
      List.for_all
        (fun (d0, d1, s0) ->
          let dims = [| d0; d1 |] and syms = [| s0 |] in
          AE.eval ~dims ~syms (AE.add a b)
          = AE.eval ~dims ~syms a + AE.eval ~dims ~syms b
          && AE.eval ~dims ~syms (AE.mul a (AE.const 3))
             = AE.eval ~dims ~syms a * 3)
        [ (0, 0, 0); (4, 9, 2); (-5, 3, 7) ])

let prop_compose_is_application =
  QCheck.Test.make ~name:"map composition = function composition" ~count:100
    (QCheck.pair arb_expr arb_expr) (fun (e1, e2) ->
      (* f: 2 dims -> 1 result (uses e1 mapped over (d0,d1));
         g: 2 dims -> 2 results *)
      let strip_syms e = AE.substitute ~dims:[| AE.dim 0; AE.dim 1 |] ~syms:[| AE.const 1 |] e in
      let f = AM.make ~num_dims:2 ~num_syms:0 [ strip_syms e1 ] in
      let g = AM.make ~num_dims:2 ~num_syms:0 [ strip_syms e2; AE.dim 0 ] in
      let fg = AM.compose f g in
      List.for_all
        (fun (x, y) ->
          let gv = Array.of_list (AM.eval g ~dims:[| x; y |] ~syms:[||]) in
          AM.eval fg ~dims:[| x; y |] ~syms:[||]
          = AM.eval f ~dims:gv ~syms:[||])
        [ (0, 0); (3, 5); (-2, 7) ])

let suite =
  [
    Alcotest.test_case "eval basic" `Quick test_eval_basic;
    Alcotest.test_case "eval div/mod" `Quick test_eval_divmod;
    Alcotest.test_case "smart constructors" `Quick test_smart_constructors;
    Alcotest.test_case "max dim/sym" `Quick test_max_dim_sym;
    Alcotest.test_case "pure affine" `Quick test_pure_affine;
    Alcotest.test_case "map identity" `Quick test_map_identity;
    Alcotest.test_case "map constant" `Quick test_map_constant;
    Alcotest.test_case "map make validates" `Quick test_map_make_validates;
    Alcotest.test_case "map compose" `Quick test_map_compose;
    QCheck_alcotest.to_alcotest prop_substitute_consistent;
    QCheck_alcotest.to_alcotest prop_smart_constructors_sound;
    QCheck_alcotest.to_alcotest prop_compose_is_application;
  ]
