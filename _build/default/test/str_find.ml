(** Tiny substring-search helper shared by the test suites. *)

(** Index of the first occurrence of [sub] in [s].
    @raise Not_found when absent. *)
let find (s : string) (sub : string) : int =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then raise Not_found
    else if String.sub s i m = sub then i
    else go (i + 1)
  in
  go 0

let contains s sub = try ignore (find s sub); true with Not_found -> false

(** Count non-overlapping occurrences. *)
let count s sub =
  let m = String.length sub in
  if m = 0 then 0
  else
    let rec go i acc =
      match try Some (find (String.sub s i (String.length s - i)) sub) with Not_found -> None with
      | Some j -> go (i + j + m) (acc + 1)
      | None -> acc
    in
    go 0 0
