(** Tests for the design-space exploration extension. *)

module K = Workloads.Kernels
module E = Hls_backend.Estimate
module D = Flow.Dse

let gemm_parts = [ ("A", 2); ("B", 1) ]

let test_explore_finds_points () =
  let r = D.explore ~parts:gemm_parts (K.gemm ()) in
  Alcotest.(check bool) "explored several points" true
    (List.length r.D.explored >= 6);
  Alcotest.(check bool) "frontier non-empty" true (r.D.frontier <> []);
  Alcotest.(check int) "nothing infeasible without a budget" 0
    (List.length r.D.infeasible)

let test_frontier_is_pareto () =
  let r = D.explore ~parts:gemm_parts (K.gemm ()) in
  (* no frontier point dominates another *)
  List.iter
    (fun p ->
      List.iter
        (fun q ->
          if p != q then
            Alcotest.(check bool)
              (Printf.sprintf "%s does not dominate %s" p.D.label q.D.label)
              false (D.dominates p q && D.dominates q p))
        r.D.frontier)
    r.D.frontier;
  (* every explored point is dominated-by-or-on the frontier *)
  List.iter
    (fun p ->
      let covered =
        List.exists (fun q -> q.D.label = p.D.label || D.dominates q p) r.D.frontier
      in
      Alcotest.(check bool) (p.D.label ^ " covered by frontier") true covered)
    r.D.explored

let test_best_is_fastest () =
  let r = D.explore ~parts:gemm_parts (K.gemm ()) in
  match D.best r with
  | Some best ->
      List.iter
        (fun p ->
          Alcotest.(check bool) "best has minimal latency" true
            (best.D.latency <= p.D.latency))
        r.D.explored
  | None -> Alcotest.fail "no best point"

let test_budget_constrains () =
  let unconstrained = D.explore ~parts:gemm_parts (K.gemm ()) in
  let tight =
    D.explore
      ~budget:{ D.no_budget with D.max_dsp = Some 10 }
      ~parts:gemm_parts (K.gemm ())
  in
  Alcotest.(check bool) "budget rejects some points" true
    (List.length tight.D.explored < List.length unconstrained.D.explored);
  Alcotest.(check bool) "budget recorded as infeasible" true
    (tight.D.infeasible <> []);
  List.iter
    (fun p ->
      Alcotest.(check bool) "all kept points within budget" true
        (p.D.resources.E.dsp <= 10))
    tight.D.explored;
  (* the constrained best is slower or equal *)
  match (D.best unconstrained, D.best tight) with
  | Some u, Some t ->
      Alcotest.(check bool) "constrained best is slower-or-equal" true
        (t.D.latency >= u.D.latency)
  | _ -> Alcotest.fail "both spaces should have a best point"

let test_dse_improves_over_baseline () =
  let r = D.explore ~parts:gemm_parts (K.gemm ()) in
  let baseline =
    List.find (fun p -> p.D.label = "no directives") r.D.explored
  in
  match D.best r with
  | Some best ->
      Alcotest.(check bool) "best is at least 10x the baseline" true
        (baseline.D.latency / best.D.latency >= 10)
  | None -> Alcotest.fail "no best"

let test_best_point_cosims () =
  let r = D.explore ~parts:gemm_parts (K.gemm ()) in
  match D.best r with
  | Some best ->
      let cs = Flow.cosim ~directives:best.D.directives (K.gemm ()) in
      Alcotest.(check bool) "optimized design computes correctly" true cs.Flow.ok
  | None -> Alcotest.fail "no best"

let test_render () =
  let r = D.explore ~parts:gemm_parts (K.gemm ()) in
  let s = D.render r in
  Alcotest.(check bool) "mentions kernel" true (Str_find.contains s "gemm");
  Alcotest.(check bool) "marks pareto points" true (Str_find.contains s "*")

let test_works_on_vector_kernels () =
  (* kernels without partitionable matmul arrays still explore fine *)
  let r = D.explore ~parts:[ ("A", 2) ] (K.atax ()) in
  Alcotest.(check bool) "atax explored" true (r.D.frontier <> [])

let suite =
  [
    Alcotest.test_case "explore finds points" `Quick test_explore_finds_points;
    Alcotest.test_case "frontier is pareto" `Quick test_frontier_is_pareto;
    Alcotest.test_case "best is fastest" `Quick test_best_is_fastest;
    Alcotest.test_case "budget constrains" `Quick test_budget_constrains;
    Alcotest.test_case "dse improves over baseline" `Quick test_dse_improves_over_baseline;
    Alcotest.test_case "best point cosims" `Quick test_best_point_cosims;
    Alcotest.test_case "render" `Quick test_render;
    Alcotest.test_case "vector kernels" `Quick test_works_on_vector_kernels;
  ]
