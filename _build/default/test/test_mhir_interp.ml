(** Semantics tests for the mhir interpreter, plus differential tests
    for the mhir-level passes (canonicalize, affine->scf). *)

open Mhir

(** Build a single-function module evaluating integer expressions. *)
let int_func name body =
  let b = Builder.create () in
  let f =
    Builder.func b name ~args:[] ~ret_tys:[ Types.I32 ] (fun b _ ->
        let r = body b in
        Builder.ret b [ r ])
  in
  { Ir.funcs = [ f ] }

let run_int m name =
  match Interp.run_func m name [] with
  | [ Interp.Int v ] -> v
  | _ -> Alcotest.fail "expected a single integer result"

let test_arith_semantics () =
  let cases =
    [
      ("add", (fun b -> Builder.addi b (Builder.constant_i ~ty:Types.I32 b 40) (Builder.constant_i ~ty:Types.I32 b 2)), 42);
      ("sub", (fun b -> Builder.subi b (Builder.constant_i ~ty:Types.I32 b 7) (Builder.constant_i ~ty:Types.I32 b 10)), -3);
      ("mul", (fun b -> Builder.muli b (Builder.constant_i ~ty:Types.I32 b 6) (Builder.constant_i ~ty:Types.I32 b 7)), 42);
      ("div", (fun b -> Builder.divsi b (Builder.constant_i ~ty:Types.I32 b 7) (Builder.constant_i ~ty:Types.I32 b 2)), 3);
      ("rem", (fun b -> Builder.remsi b (Builder.constant_i ~ty:Types.I32 b 7) (Builder.constant_i ~ty:Types.I32 b 4)), 3);
      ("max", (fun b -> Builder.maxsi b (Builder.constant_i ~ty:Types.I32 b 3) (Builder.constant_i ~ty:Types.I32 b 9)), 9);
      ("min", (fun b -> Builder.minsi b (Builder.constant_i ~ty:Types.I32 b 3) (Builder.constant_i ~ty:Types.I32 b 9)), 3);
      ("shl", (fun b -> Builder.shli b (Builder.constant_i ~ty:Types.I32 b 3) (Builder.constant_i ~ty:Types.I32 b 2)), 12);
    ]
  in
  List.iter
    (fun (name, body, expected) ->
      let m = int_func name body in
      Alcotest.(check int) name expected (run_int m name))
    cases

let test_i32_wrapping () =
  let m =
    int_func "wrap" (fun b ->
        let big = Builder.constant_i ~ty:Types.I32 b 0x7FFFFFFF in
        let one = Builder.constant_i ~ty:Types.I32 b 1 in
        Builder.addi b big one)
  in
  Alcotest.(check int) "i32 overflow wraps to min_int32" (-2147483648)
    (run_int m "wrap")

let test_select_and_cmp () =
  let m =
    int_func "sel" (fun b ->
        let a = Builder.constant_i ~ty:Types.I32 b 10 in
        let c = Builder.constant_i ~ty:Types.I32 b 20 in
        let cond = Builder.cmpi b Builder.Slt a c in
        Builder.select b cond a c)
  in
  Alcotest.(check int) "select slt" 10 (run_int m "sel")

let test_scf_if () =
  let build cond_val =
    let b = Builder.create () in
    let f =
      Builder.func b "f" ~args:[] ~ret_tys:[ Types.I32 ] (fun b _ ->
          let x = Builder.constant_i ~ty:Types.I32 b cond_val in
          let z = Builder.constant_i ~ty:Types.I32 b 0 in
          let c = Builder.cmpi b Builder.Sgt x z in
          let r =
            Builder.scf_if b c ~result_tys:[ Types.I32 ]
              ~then_:(fun b -> [ Builder.constant_i ~ty:Types.I32 b 111 ])
              ~else_:(fun b -> [ Builder.constant_i ~ty:Types.I32 b 222 ])
          in
          Builder.ret b [ List.hd r ])
    in
    { Ir.funcs = [ f ] }
  in
  Alcotest.(check int) "then branch" 111 (run_int (build 5) "f");
  Alcotest.(check int) "else branch" 222 (run_int (build (-5)) "f")

let test_loop_iter_args () =
  (* sum of 0..9 via iter_args *)
  let b = Builder.create () in
  let f =
    Builder.func b "tri" ~args:[] ~ret_tys:[ Types.Index ] (fun b _ ->
        let zero = Builder.constant_i b 0 in
        let r =
          Builder.affine_for b ~lb:0 ~ub:10 ~iters:[ zero ] (fun b i iters ->
              [ Builder.addi b (List.hd iters) i ])
        in
        Builder.ret b [ List.hd r ])
  in
  let m = { Ir.funcs = [ f ] } in
  (match Interp.run_func m "tri" [] with
  | [ Interp.Int 45 ] -> ()
  | [ Interp.Int v ] -> Alcotest.failf "expected 45, got %d" v
  | _ -> Alcotest.fail "bad result shape")

let test_out_of_bounds_traps () =
  let b = Builder.create () in
  let f =
    Builder.func b "oob" ~args:[ ("x", Types.memref [ 4 ]) ] ~ret_tys:[]
      (fun b args ->
        let x = List.hd args in
        let i = Builder.constant_i b 9 in
        ignore (Builder.load b x [ i ]);
        Builder.ret b [])
  in
  let m = { Ir.funcs = [ f ] } in
  let buf = Interp.fbuf [ 4 ] [ 1.; 2.; 3.; 4. ] in
  Alcotest.(check bool) "OOB load raises" true
    (try
       ignore (Interp.run_func m "oob" [ buf ]);
       false
     with Support.Err.Compile_error _ -> true)

let test_call_between_functions () =
  let b = Builder.create () in
  let callee =
    Builder.func b "double" ~args:[ ("v", Types.I32) ] ~ret_tys:[ Types.I32 ]
      (fun b args ->
        let v = List.hd args in
        Builder.ret b [ Builder.addi b v v ])
  in
  let b2 = Builder.create () in
  let caller =
    Builder.func b2 "main" ~args:[] ~ret_tys:[ Types.I32 ] (fun b _ ->
        let x = Builder.constant_i ~ty:Types.I32 b 21 in
        let r = Builder.call b "double" ~ret_tys:[ Types.I32 ] [ x ] in
        Builder.ret b [ List.hd r ])
  in
  let m = { Ir.funcs = [ callee; caller ] } in
  Verifier.verify_module m;
  Alcotest.(check int) "call result" 42 (run_int m "main")

(* ------------------------------------------------------------------ *)
(* Differential tests for the mhir passes                             *)
(* ------------------------------------------------------------------ *)

(** Run a kernel through the mhir interpreter, optionally transformed. *)
let kernel_outputs ?(transform = fun m -> m) (k : Workloads.Kernels.kernel) =
  let m = transform (k.Workloads.Kernels.build Workloads.Kernels.no_directives) in
  Verifier.verify_module m;
  let bufs =
    List.mapi
      (fun i (_, shape) ->
        match Interp.random_fbuf ~seed:(i + 3) shape with
        | Interp.Buf src ->
            let b = Interp.alloc_buffer (Array.of_list shape) Types.F32 in
            Array.blit src.Interp.fdata 0 b.Interp.fdata 0
              (Array.length src.Interp.fdata);
            Interp.Buf b
        | _ -> assert false)
      k.Workloads.Kernels.args
  in
  ignore (Interp.run_func m k.Workloads.Kernels.kname bufs);
  List.map
    (function
      | Interp.Buf b -> Array.copy b.Interp.fdata
      | _ -> assert false)
    bufs

let check_same_outputs name a b =
  List.iteri
    (fun i (x, y) ->
      Array.iteri
        (fun j xv ->
          if Float.abs (xv -. y.(j)) > 1e-9 then
            Alcotest.failf "%s: arg %d index %d differs: %g vs %g" name i j xv
              y.(j))
        x)
    (List.combine a b)

let test_canonicalize_preserves_semantics () =
  List.iter
    (fun k ->
      let plain = kernel_outputs k in
      let canon = kernel_outputs ~transform:Canonicalize.run k in
      check_same_outputs k.Workloads.Kernels.kname plain canon)
    (Workloads.Kernels.all ())

let test_canonicalize_folds_constants () =
  let b = Builder.create () in
  let f =
    Builder.func b "fold" ~args:[] ~ret_tys:[ Types.Index ] (fun b _ ->
        let two = Builder.constant_i b 2 in
        let three = Builder.constant_i b 3 in
        let six = Builder.muli b two three in
        let seven = Builder.addi b six (Builder.constant_i b 1) in
        Builder.ret b [ seven ])
  in
  let m = Canonicalize.run { Ir.funcs = [ f ] } in
  let f' = List.hd m.Ir.funcs in
  let arith_ops = ref 0 in
  Ir.walk_func
    (fun o ->
      if o.Ir.name = "arith.addi" || o.Ir.name = "arith.muli" then
        incr arith_ops)
    f';
  Alcotest.(check int) "all arithmetic folded away" 0 !arith_ops;
  Alcotest.(check int) "still evaluates to 7" 7
    (match Interp.run_func m "fold" [] with
    | [ Interp.Int v ] -> v
    | _ -> -1)

let test_canonicalize_removes_dead_code () =
  let b = Builder.create () in
  let f =
    Builder.func b "dead" ~args:[] ~ret_tys:[] (fun b _ ->
        let x = Builder.constant_f b 1.0 in
        let y = Builder.constant_f b 2.0 in
        ignore (Builder.addf b x y);  (* dead *)
        Builder.ret b [])
  in
  let m = Canonicalize.run { Ir.funcs = [ f ] } in
  Alcotest.(check int) "everything dead is gone" 1
    (Ir.op_count (List.hd m.Ir.funcs))

let test_affine_to_scf_preserves_semantics () =
  List.iter
    (fun k ->
      let plain = kernel_outputs k in
      let lowered = kernel_outputs ~transform:Affine_to_scf.run k in
      check_same_outputs k.Workloads.Kernels.kname plain lowered)
    (Workloads.Kernels.all ())

let test_affine_to_scf_removes_affine_ops () =
  let m =
    Affine_to_scf.run
      ((Workloads.Kernels.gemm ()).Workloads.Kernels.build
         Workloads.Kernels.no_directives)
  in
  Verifier.verify_module m;
  let affine_ops = ref 0 in
  List.iter
    (Ir.walk_func (fun o ->
         if Dialect.dialect_of o.Ir.name = "affine" then incr affine_ops))
    m.Ir.funcs;
  Alcotest.(check int) "no affine ops remain" 0 !affine_ops

let suite =
  [
    Alcotest.test_case "arith semantics" `Quick test_arith_semantics;
    Alcotest.test_case "i32 wrapping" `Quick test_i32_wrapping;
    Alcotest.test_case "select and cmp" `Quick test_select_and_cmp;
    Alcotest.test_case "scf.if" `Quick test_scf_if;
    Alcotest.test_case "loop iter_args" `Quick test_loop_iter_args;
    Alcotest.test_case "out-of-bounds traps" `Quick test_out_of_bounds_traps;
    Alcotest.test_case "function calls" `Quick test_call_between_functions;
    Alcotest.test_case "canonicalize preserves semantics" `Quick
      test_canonicalize_preserves_semantics;
    Alcotest.test_case "canonicalize folds constants" `Quick
      test_canonicalize_folds_constants;
    Alcotest.test_case "canonicalize removes dead code" `Quick
      test_canonicalize_removes_dead_code;
    Alcotest.test_case "affine->scf preserves semantics" `Quick
      test_affine_to_scf_preserves_semantics;
    Alcotest.test_case "affine->scf removes affine ops" `Quick
      test_affine_to_scf_removes_affine_ops;
  ]
