(** Dead code elimination: removes pure instructions whose results are
    unused, plus calls to known-pure intrinsics.  Iterates to a fixed
    point. *)

open Lmodule

(** Intrinsics with no side effects (safe to delete when unused). *)
let pure_intrinsic name =
  let starts_with p =
    String.length name >= String.length p
    && String.sub name 0 (String.length p) = p
  in
  starts_with "llvm.smax." || starts_with "llvm.smin."
  || starts_with "llvm.umax." || starts_with "llvm.umin."
  || starts_with "llvm.abs." || starts_with "llvm.fmuladd."
  || starts_with "llvm.fma." || starts_with "llvm.fabs."
  || starts_with "llvm.sqrt."

let removable (i : Linstr.t) =
  Linstr.is_pure i
  ||
  match i.op with
  | Linstr.Call { callee; _ } -> pure_intrinsic callee
  | _ -> false

let run_func (f : func) : func * bool =
  let changed_total = ref false in
  let rec go f =
    let used = used_names f in
    let changed = ref false in
    let f' =
      rewrite_insts
        (fun i ->
          if
            i.Linstr.result <> ""
            && (not (Hashtbl.mem used i.Linstr.result))
            && removable i
          then begin
            changed := true;
            []
          end
          else [ i ])
        f
    in
    if !changed then begin
      changed_total := true;
      go f'
    end
    else f'
  in
  let f' = go f in
  (f', !changed_total)

let run (m : t) : t = map_funcs (fun f -> fst (run_func f)) m
