(** LLVM IR type system (the subset the HLS stack exercises).

    Pointers come in two flavours mirroring the LLVM 14+ / LLVM 7 split
    that motivates the paper's adaptor:
    - [Ptr None] — an {e opaque} pointer ([ptr]), produced by modern
      MLIR lowering;
    - [Ptr (Some t)] — a {e typed} pointer ([t*]), the only form the
      Vitis-era middle-end accepts.  The adaptor's
      typed-pointer-reconstruction pass rewrites the former into the
      latter. *)

type t =
  | Void
  | I1
  | I8
  | I16
  | I32
  | I64
  | Float
  | Double
  | Ptr of t option  (** [None] = opaque pointer *)
  | Array of int * t
  | Struct of t list  (** literal struct *)

let ptr t = Ptr (Some t)
let opaque_ptr = Ptr None

let is_int = function I1 | I8 | I16 | I32 | I64 -> true | _ -> false
let is_float = function Float | Double -> true | _ -> false
let is_pointer = function Ptr _ -> true | _ -> false
let is_opaque_pointer = function Ptr None -> true | _ -> false
let is_aggregate = function Array _ | Struct _ -> true | _ -> false
let is_first_class = function Void -> false | _ -> true

let int_width = function
  | I1 -> 1
  | I8 -> 8
  | I16 -> 16
  | I32 -> 32
  | I64 -> 64
  | _ -> invalid_arg "Ltype.int_width: not an integer type"

(** Byte size under the default data layout (pointers are 8 bytes). *)
let rec sizeof = function
  | Void -> 0
  | I1 | I8 -> 1
  | I16 -> 2
  | I32 | Float -> 4
  | I64 | Double | Ptr _ -> 8
  | Array (n, t) -> n * sizeof t
  | Struct fields ->
      (* naturally aligned, padded layout *)
      let align = alignment (Struct fields) in
      let off =
        List.fold_left
          (fun off f ->
            let a = alignment f in
            let off = (off + a - 1) / a * a in
            off + sizeof f)
          0 fields
      in
      (off + align - 1) / align * align

and alignment = function
  | Void -> 1
  | I1 | I8 -> 1
  | I16 -> 2
  | I32 | Float -> 4
  | I64 | Double | Ptr _ -> 8
  | Array (_, t) -> alignment t
  | Struct fields ->
      List.fold_left (fun a f -> max a (alignment f)) 1 fields

(** Byte offset of struct field [i]. *)
let struct_offset fields i =
  let rec go off k = function
    | [] -> invalid_arg "Ltype.struct_offset: field index out of range"
    | f :: tl ->
        let a = alignment f in
        let off = (off + a - 1) / a * a in
        if k = i then off else go (off + sizeof f) (k + 1) tl
  in
  go 0 0 fields

let rec to_string = function
  | Void -> "void"
  | I1 -> "i1"
  | I8 -> "i8"
  | I16 -> "i16"
  | I32 -> "i32"
  | I64 -> "i64"
  | Float -> "float"
  | Double -> "double"
  | Ptr None -> "ptr"
  | Ptr (Some t) -> to_string t ^ "*"
  | Array (n, t) -> Printf.sprintf "[%d x %s]" n (to_string t)
  | Struct fields ->
      "{ " ^ String.concat ", " (List.map to_string fields) ^ " }"

let pp fmt t = Format.pp_print_string fmt (to_string t)

let equal (a : t) (b : t) = a = b

(** Element type reached by indexing [ty] with one more (non-leading)
    GEP index. *)
let gep_step ty idx_const =
  match ty with
  | Array (_, t) -> t
  | Struct fields -> (
      match idx_const with
      | Some i when i >= 0 && i < List.length fields -> List.nth fields i
      | _ -> invalid_arg "Ltype.gep_step: struct index must be constant/in-range")
  | _ -> invalid_arg ("Ltype.gep_step: cannot index into " ^ to_string ty)
