(** LLVM IR instructions.

    Loop and HLS-related metadata attaches to instructions as a simple
    key/value list ([imeta]); the printer renders it in an
    [!md{key = value}] suffix.  Modern loop hints use the upstream keys
    ([llvm.loop.unroll.count], ...); the adaptor's metadata-translation
    pass replaces them with Vitis-style [_ssdm_op_Spec*] marker calls. *)

type ibinop =
  | Add | Sub | Mul | SDiv | UDiv | SRem | URem
  | Shl | LShr | AShr | And | Or | Xor

type fbinop = FAdd | FSub | FMul | FDiv | FRem

type icmp =
  | IEq | INe | ISlt | ISle | ISgt | ISge | IUlt | IUle | IUgt | IUge

type fcmp = FOeq | FOne | FOlt | FOle | FOgt | FOge | FOrd | FUno

type cast =
  | Trunc | Zext | Sext | Fptrunc | Fpext | Fptosi | Sitofp
  | Ptrtoint | Inttoptr | Bitcast

type meta = MInt of int | MStr of string

type opcode =
  | IBin of ibinop * Lvalue.t * Lvalue.t
  | FBin of fbinop * Lvalue.t * Lvalue.t
  | Icmp of icmp * Lvalue.t * Lvalue.t
  | Fcmp of fcmp * Lvalue.t * Lvalue.t
  | Alloca of Ltype.t * int  (** element type, count *)
  | Load of Ltype.t * Lvalue.t  (** loaded type, pointer *)
  | Store of Lvalue.t * Lvalue.t  (** value, pointer *)
  | Gep of {
      inbounds : bool;
      src_ty : Ltype.t;  (** pointee type the indices walk *)
      base : Lvalue.t;
      idxs : Lvalue.t list;
    }
  | Cast of cast * Lvalue.t * Ltype.t
  | Select of Lvalue.t * Lvalue.t * Lvalue.t
  | Phi of (Lvalue.t * string) list  (** (incoming value, pred label) *)
  | Call of { callee : string; ret : Ltype.t; args : Lvalue.t list }
  | ExtractValue of Lvalue.t * int list
  | InsertValue of Lvalue.t * Lvalue.t * int list  (** agg, elt, path *)
  | Freeze of Lvalue.t
  | Ret of Lvalue.t option
  | Br of string
  | CondBr of Lvalue.t * string * string
  | Switch of Lvalue.t * string * (int * string) list
  | Unreachable

type t = {
  result : string;  (** SSA name; [""] when the instruction is void *)
  ty : Ltype.t;  (** result type; [Void] when none *)
  op : opcode;
  imeta : (string * meta) list;
}

let make ?(imeta = []) ?(result = "") ?(ty = Ltype.Void) op =
  { result; ty; op; imeta }

let is_terminator i =
  match i.op with
  | Ret _ | Br _ | CondBr _ | Switch _ | Unreachable -> true
  | _ -> false

(** Instruction has no side effects and can be removed if unused.
    Calls are conservatively impure (intrinsic purity is refined by the
    passes that know the intrinsic table). *)
let is_pure i =
  match i.op with
  | IBin _ | FBin _ | Icmp _ | Fcmp _ | Gep _ | Cast _ | Select _ | Phi _
  | ExtractValue _ | InsertValue _ | Freeze _ ->
      true
  | Alloca _ | Load _ | Store _ | Call _ | Ret _ | Br _ | CondBr _
  | Switch _ | Unreachable ->
      false

(** Operand values of an instruction, in printing order. *)
let operands i =
  match i.op with
  | IBin (_, a, b) | FBin (_, a, b) | Icmp (_, a, b) | Fcmp (_, a, b) ->
      [ a; b ]
  | Alloca _ -> []
  | Load (_, p) -> [ p ]
  | Store (v, p) -> [ v; p ]
  | Gep { base; idxs; _ } -> base :: idxs
  | Cast (_, v, _) | Freeze v -> [ v ]
  | Select (c, a, b) -> [ c; a; b ]
  | Phi incoming -> List.map fst incoming
  | Call { args; _ } -> args
  | ExtractValue (a, _) -> [ a ]
  | InsertValue (a, v, _) -> [ a; v ]
  | Ret (Some v) -> [ v ]
  | Ret None -> []
  | Br _ -> []
  | CondBr (c, _, _) -> [ c ]
  | Switch (v, _, _) -> [ v ]
  | Unreachable -> []

(** Rebuild the instruction with operands mapped through [f]. *)
let map_operands f i =
  let op =
    match i.op with
    | IBin (o, a, b) -> IBin (o, f a, f b)
    | FBin (o, a, b) -> FBin (o, f a, f b)
    | Icmp (o, a, b) -> Icmp (o, f a, f b)
    | Fcmp (o, a, b) -> Fcmp (o, f a, f b)
    | Alloca _ as op -> op
    | Load (t, p) -> Load (t, f p)
    | Store (v, p) -> Store (f v, f p)
    | Gep g -> Gep { g with base = f g.base; idxs = List.map f g.idxs }
    | Cast (c, v, t) -> Cast (c, f v, t)
    | Select (c, a, b) -> Select (f c, f a, f b)
    | Phi incoming -> Phi (List.map (fun (v, l) -> (f v, l)) incoming)
    | Call c -> Call { c with args = List.map f c.args }
    | ExtractValue (a, path) -> ExtractValue (f a, path)
    | InsertValue (a, v, path) -> InsertValue (f a, f v, path)
    | Freeze v -> Freeze (f v)
    | Ret (Some v) -> Ret (Some (f v))
    | Ret None -> Ret None
    | Br _ as op -> op
    | CondBr (c, t, e) -> CondBr (f c, t, e)
    | Switch (v, d, cases) -> Switch (f v, d, cases)
    | Unreachable -> Unreachable
  in
  { i with op }

(** Successor labels of a terminator (empty for non-terminators). *)
let successors i =
  match i.op with
  | Br l -> [ l ]
  | CondBr (_, t, e) -> [ t; e ]
  | Switch (_, d, cases) -> d :: List.map snd cases
  | _ -> []

(** Rebuild a terminator with successor labels mapped through [f]. *)
let map_successors f i =
  let op =
    match i.op with
    | Br l -> Br (f l)
    | CondBr (c, t, e) -> CondBr (c, f t, f e)
    | Switch (v, d, cases) ->
        Switch (v, f d, List.map (fun (c, l) -> (c, f l)) cases)
    | op -> op
  in
  { i with op }

let string_of_ibinop = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | SDiv -> "sdiv"
  | UDiv -> "udiv" | SRem -> "srem" | URem -> "urem" | Shl -> "shl"
  | LShr -> "lshr" | AShr -> "ashr" | And -> "and" | Or -> "or"
  | Xor -> "xor"

let string_of_fbinop = function
  | FAdd -> "fadd" | FSub -> "fsub" | FMul -> "fmul" | FDiv -> "fdiv"
  | FRem -> "frem"

let string_of_icmp = function
  | IEq -> "eq" | INe -> "ne" | ISlt -> "slt" | ISle -> "sle"
  | ISgt -> "sgt" | ISge -> "sge" | IUlt -> "ult" | IUle -> "ule"
  | IUgt -> "ugt" | IUge -> "uge"

let string_of_fcmp = function
  | FOeq -> "oeq" | FOne -> "one" | FOlt -> "olt" | FOle -> "ole"
  | FOgt -> "ogt" | FOge -> "oge" | FOrd -> "ord" | FUno -> "uno"

let string_of_cast = function
  | Trunc -> "trunc" | Zext -> "zext" | Sext -> "sext"
  | Fptrunc -> "fptrunc" | Fpext -> "fpext" | Fptosi -> "fptosi"
  | Sitofp -> "sitofp" | Ptrtoint -> "ptrtoint" | Inttoptr -> "inttoptr"
  | Bitcast -> "bitcast"

let ibinop_of_string = function
  | "add" -> Add | "sub" -> Sub | "mul" -> Mul | "sdiv" -> SDiv
  | "udiv" -> UDiv | "srem" -> SRem | "urem" -> URem | "shl" -> Shl
  | "lshr" -> LShr | "ashr" -> AShr | "and" -> And | "or" -> Or
  | "xor" -> Xor
  | s -> invalid_arg ("Linstr.ibinop_of_string: " ^ s)

let fbinop_of_string = function
  | "fadd" -> FAdd | "fsub" -> FSub | "fmul" -> FMul | "fdiv" -> FDiv
  | "frem" -> FRem
  | s -> invalid_arg ("Linstr.fbinop_of_string: " ^ s)

let icmp_of_string = function
  | "eq" -> IEq | "ne" -> INe | "slt" -> ISlt | "sle" -> ISle
  | "sgt" -> ISgt | "sge" -> ISge | "ult" -> IUlt | "ule" -> IUle
  | "ugt" -> IUgt | "uge" -> IUge
  | s -> invalid_arg ("Linstr.icmp_of_string: " ^ s)

let fcmp_of_string = function
  | "oeq" -> FOeq | "one" -> FOne | "olt" -> FOlt | "ole" -> FOle
  | "ogt" -> FOgt | "oge" -> FOge | "ord" -> FOrd | "uno" -> FUno
  | s -> invalid_arg ("Linstr.fcmp_of_string: " ^ s)

let cast_of_string = function
  | "trunc" -> Trunc | "zext" -> Zext | "sext" -> Sext
  | "fptrunc" -> Fptrunc | "fpext" -> Fpext | "fptosi" -> Fptosi
  | "sitofp" -> Sitofp | "ptrtoint" -> Ptrtoint | "inttoptr" -> Inttoptr
  | "bitcast" -> Bitcast
  | s -> invalid_arg ("Linstr.cast_of_string: " ^ s)
