lib/llvmir/opt_constfold.ml: Float Hashtbl Linstr Linterp List Lmodule Ltype Lvalue
