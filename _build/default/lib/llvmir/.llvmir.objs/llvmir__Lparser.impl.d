lib/llvmir/lparser.ml: Array Buffer Linstr List Lmodule Ltype Lvalue Printf String Support
