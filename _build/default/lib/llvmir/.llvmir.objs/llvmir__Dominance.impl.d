lib/llvmir/dominance.ml: Array Cfg List
