lib/llvmir/cfg.ml: Array Hashtbl Linstr List Lmodule Support
