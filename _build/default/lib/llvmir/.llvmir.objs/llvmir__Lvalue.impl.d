lib/llvmir/lvalue.ml: Ltype Printf String
