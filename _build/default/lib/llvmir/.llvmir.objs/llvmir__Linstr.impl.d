lib/llvmir/linstr.ml: List Ltype Lvalue
