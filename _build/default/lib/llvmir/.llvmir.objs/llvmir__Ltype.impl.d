lib/llvmir/ltype.ml: Format List Printf String
