lib/llvmir/linterp.ml: Array Float Hashtbl Linstr List Lmodule Ltype Lvalue String Support
