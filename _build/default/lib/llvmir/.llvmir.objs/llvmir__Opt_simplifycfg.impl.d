lib/llvmir/opt_simplifycfg.ml: Array Cfg Linstr List Lmodule Lvalue
