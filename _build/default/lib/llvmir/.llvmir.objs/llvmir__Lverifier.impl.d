lib/llvmir/lverifier.ml: Array Cfg Dominance Hashtbl Linstr List Lmodule Ltype Lvalue Support
