lib/llvmir/opt_inline.ml: Hashtbl Linstr List Lmodule Ltype Lvalue Printf String Support
