lib/llvmir/lbuilder.ml: Linstr List Lmodule Ltype Lvalue Option Support
