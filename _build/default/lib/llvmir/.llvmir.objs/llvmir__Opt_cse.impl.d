lib/llvmir/opt_cse.ml: Array Cfg Dominance Hashtbl Linstr List Lmodule Ltype Lvalue Option Printf String
