lib/llvmir/lprinter.ml: Linstr List Lmodule Ltype Lvalue Printf String
