lib/llvmir/pass.ml: List Lmodule Lverifier Opt_constfold Opt_cse Opt_dce Opt_inline Opt_licm Opt_mem2reg Opt_simplifycfg Sys
