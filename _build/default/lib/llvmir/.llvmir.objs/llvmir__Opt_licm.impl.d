lib/llvmir/opt_licm.ml: Array Cfg Hashtbl Linstr List Lmodule Loop_info Lvalue
