lib/llvmir/opt_mem2reg.ml: Array Cfg Dominance Hashtbl Linstr List Lmodule Ltype Lvalue Option Queue Support
