lib/llvmir/loop_info.ml: Array Cfg Dominance Hashtbl Linstr List Lmodule Lvalue
