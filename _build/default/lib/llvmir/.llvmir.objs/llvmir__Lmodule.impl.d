lib/llvmir/lmodule.ml: Hashtbl Linstr List Ltype Lvalue Option Printf Support
