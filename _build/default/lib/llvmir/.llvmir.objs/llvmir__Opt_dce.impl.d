lib/llvmir/opt_dce.ml: Hashtbl Linstr Lmodule String
