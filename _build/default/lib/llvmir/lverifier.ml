(** LLVM IR verifier: module/function well-formedness and SSA dominance.

    Checks:
    - block structure: non-empty blocks, exactly one terminator, at the
      end; entry block has no phis; unique labels;
    - SSA: unique definitions; every register use is dominated by its
      definition (phi uses checked against the incoming edge);
    - types: operand types are consistent where locally checkable
      (binop operands match, store value matches pointee for typed
      pointers, GEP base is a pointer, ...);
    - calls: callee is a defined function or declaration with matching
      arity. *)

open Linstr
open Lmodule

let fail = Support.Err.fail ~pass:"llvmir.verifier"

let check_block_structure (f : func) =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (b : block) ->
      if Hashtbl.mem seen b.label then
        fail "@%s: duplicate block label %%%s" f.fname b.label;
      Hashtbl.replace seen b.label ();
      match List.rev b.insts with
      | [] -> fail "@%s: empty block %%%s" f.fname b.label
      | term :: rest ->
          if not (is_terminator term) then
            fail "@%s: block %%%s does not end with a terminator" f.fname
              b.label;
          List.iter
            (fun i ->
              if is_terminator i then
                fail "@%s: terminator in the middle of block %%%s" f.fname
                  b.label)
            rest)
    f.blocks;
  (match f.blocks with
  | entry :: _ ->
      List.iter
        (fun (i : Linstr.t) ->
          match i.op with
          | Phi _ -> fail "@%s: phi in entry block" f.fname
          | _ -> ())
        entry.insts
  | [] -> fail "@%s: function has no blocks" f.fname)

let check_ssa (f : func) =
  let cfg = Cfg.build f in
  let dom = Dominance.compute cfg in
  (* definition site per register: (block index, instruction index) *)
  let defs = Hashtbl.create 64 in
  List.iter (fun p -> Hashtbl.replace defs p.pname (-1, -1)) f.params;
  List.iteri
    (fun bi (b : block) ->
      List.iteri
        (fun ii (i : Linstr.t) ->
          if i.result <> "" then begin
            if Hashtbl.mem defs i.result then
              fail "@%s: register %%%s defined more than once" f.fname i.result;
            Hashtbl.replace defs i.result (bi, ii)
          end)
        b.insts)
    f.blocks;
  let check_use ~use_bi ~use_ii name =
    match Hashtbl.find_opt defs name with
    | None -> fail "@%s: use of undefined register %%%s" f.fname name
    | Some (-1, _) -> ()  (* parameter *)
    | Some (def_bi, def_ii) ->
        let ok =
          if def_bi = use_bi then def_ii < use_ii
          else Dominance.dominates dom def_bi use_bi
        in
        if not ok then
          fail "@%s: use of %%%s (block %%%s) not dominated by its definition"
            f.fname name
            (Cfg.label cfg use_bi)
  in
  List.iteri
    (fun bi (b : block) ->
      List.iteri
        (fun ii (i : Linstr.t) ->
          match i.op with
          | Phi incoming ->
              (* each incoming value must dominate the end of its pred *)
              List.iter
                (fun (v, pred_label) ->
                  (match Cfg.index_of cfg pred_label with
                  | None ->
                      fail "@%s: phi references unknown block %%%s" f.fname
                        pred_label
                  | Some pred_bi ->
                      if not (List.mem pred_bi cfg.Cfg.preds.(bi)) then
                        fail "@%s: phi incoming block %%%s is not a predecessor"
                          f.fname pred_label;
                      (match v with
                      | Lvalue.Reg (n, _) -> (
                          match Hashtbl.find_opt defs n with
                          | None ->
                              fail "@%s: phi uses undefined register %%%s"
                                f.fname n
                          | Some (-1, _) -> ()
                          | Some (def_bi, _) ->
                              if not (Dominance.dominates dom def_bi pred_bi)
                              then
                                fail
                                  "@%s: phi incoming %%%s does not dominate \
                                   edge from %%%s"
                                  f.fname n pred_label)
                      | _ -> ())))
                incoming
          | _ ->
              List.iter
                (function
                  | Lvalue.Reg (n, _) -> check_use ~use_bi:bi ~use_ii:ii n
                  | _ -> ())
                (operands i))
        b.insts)
    f.blocks

let check_types (f : func) =
  iter_insts
    (fun (i : Linstr.t) ->
      let t = Lvalue.type_of in
      match i.op with
      | IBin (_, a, b) ->
          if not (Ltype.equal (t a) (t b)) then
            fail "@%s: %%%s: integer binop operand types differ" f.fname
              i.result;
          if not (Ltype.is_int (t a)) then
            fail "@%s: %%%s: integer binop on non-integer" f.fname i.result
      | FBin (_, a, b) ->
          if not (Ltype.equal (t a) (t b)) then
            fail "@%s: %%%s: float binop operand types differ" f.fname i.result;
          if not (Ltype.is_float (t a)) then
            fail "@%s: %%%s: float binop on non-float" f.fname i.result
      | Icmp (_, a, b) ->
          if not (Ltype.equal (t a) (t b)) then
            fail "@%s: icmp operand types differ" f.fname
      | Fcmp (_, a, b) ->
          if not (Ltype.equal (t a) (t b) && Ltype.is_float (t a)) then
            fail "@%s: fcmp operand types invalid" f.fname
      | Load (ty, p) -> (
          match t p with
          | Ltype.Ptr (Some pt) when not (Ltype.equal pt ty) ->
              fail "@%s: load type %s from pointer to %s" f.fname
                (Ltype.to_string ty) (Ltype.to_string pt)
          | Ltype.Ptr _ -> ()
          | other ->
              fail "@%s: load from non-pointer %s" f.fname
                (Ltype.to_string other))
      | Store (v, p) -> (
          match t p with
          | Ltype.Ptr (Some pt) when not (Ltype.equal pt (t v)) ->
              fail "@%s: store of %s into pointer to %s" f.fname
                (Ltype.to_string (t v)) (Ltype.to_string pt)
          | Ltype.Ptr _ -> ()
          | other ->
              fail "@%s: store to non-pointer %s" f.fname
                (Ltype.to_string other))
      | Gep { base; idxs; _ } ->
          if not (Ltype.is_pointer (t base)) then
            fail "@%s: getelementptr base is not a pointer" f.fname;
          List.iter
            (fun v ->
              if not (Ltype.is_int (t v)) then
                fail "@%s: getelementptr index is not an integer" f.fname)
            idxs
      | Select (c, a, b) ->
          if not (Ltype.equal (t c) Ltype.I1) then
            fail "@%s: select condition is not i1" f.fname;
          if not (Ltype.equal (t a) (t b)) then
            fail "@%s: select branch types differ" f.fname
      | Phi incoming ->
          let tys = List.map (fun (v, _) -> t v) incoming in
          (match tys with
          | [] -> fail "@%s: empty phi" f.fname
          | ty0 :: rest ->
              if not (List.for_all (Ltype.equal ty0) rest) then
                fail "@%s: phi incoming types differ" f.fname)
      | CondBr (c, _, _) ->
          if not (Ltype.equal (t c) Ltype.I1) then
            fail "@%s: conditional branch on non-i1" f.fname
      | Ret (Some v) ->
          if not (Ltype.equal (t v) f.ret_ty) then
            fail "@%s: return type mismatch" f.fname
      | Ret None ->
          if not (Ltype.equal f.ret_ty Ltype.Void) then
            fail "@%s: void return from non-void function" f.fname
      | _ -> ())
    f

let check_calls (m : t) (f : func) =
  iter_insts
    (fun (i : Linstr.t) ->
      match i.op with
      | Call { callee; args; ret } -> (
          match find_func m callee with
          | Some g ->
              if List.length args <> List.length g.params then
                fail "@%s: call @%s with wrong arity" f.fname callee;
              if not (Ltype.equal ret g.ret_ty) then
                fail "@%s: call @%s return type mismatch" f.fname callee
          | None -> (
              match find_decl m callee with
              | Some d ->
                  if List.length args <> List.length d.dargs then
                    fail "@%s: call @%s with wrong arity" f.fname callee
              | None ->
                  fail "@%s: call to undeclared function @%s" f.fname callee))
      | _ -> ())
    f

let verify_func (m : t) (f : func) =
  check_block_structure f;
  check_ssa f;
  check_types f;
  check_calls m f

let verify_module (m : t) = List.iter (verify_func m) m.funcs
