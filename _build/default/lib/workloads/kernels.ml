(** PolyBench-style benchmark kernels, built directly in the multi-level
    IR (as an MLIR front-end such as Polygeist / the paper's flow would
    produce them), each paired with a plain-OCaml reference
    implementation for three-way co-simulation.

    All kernels use statically-shaped [f32] memrefs.  Directives
    (pipeline / unroll on the innermost loop, array partitioning on a
    named argument) are injected at build time. *)

open Mhir

(** Where the pipeline directive goes in a loop nest:
    - [Inner]: pipeline the innermost (reduction) loop — the naive
      choice, II is recurrence-bound for float accumulation;
    - [Middle]: pipeline the second-innermost loop and {e fully unroll}
      the innermost — the standard HLS recipe; II becomes memory-port
      bound, so array partitioning pays off. *)
type strategy = Inner | Middle

(** Synthesis directives applied when building a kernel. *)
type directives = {
  pipeline_ii : int option;  (** target II for the pipelined loop *)
  unroll : int option;  (** extra unroll factor for the innermost loop *)
  strategy : strategy;
  partitions : (string * string * int * int) list;
      (** (argument, kind, factor, dim) *)
}

let no_directives =
  { pipeline_ii = None; unroll = None; strategy = Inner; partitions = [] }

let pipelined = { no_directives with pipeline_ii = Some 1 }

(** The standard optimized recipe: pipeline the middle loop, unroll the
    reduction, partition the hot arrays by [factor]. *)
let optimized ?(factor = 4) ~(parts : (string * int) list) () =
  {
    pipeline_ii = Some 1;
    unroll = None;
    strategy = Middle;
    partitions = List.map (fun (a, d) -> (a, "cyclic", factor, d)) parts;
  }

type kernel = {
  kname : string;
  description : string;
  args : (string * int list) list;  (** name, shape (flattened size) *)
  outputs : string list;  (** names of output arguments *)
  build : directives -> Ir.modul;  (** top function named [kname] *)
  reference : float array list -> unit;  (** in-place on flat arrays *)
}

(* ------------------------------------------------------------------ *)
(* Builder helpers                                                    *)
(* ------------------------------------------------------------------ *)

let mref shape = Types.memref shape

(** Innermost-loop attrs from directives. *)
let inner_attrs (d : directives) =
  match d.strategy with
  | Inner ->
      (match d.pipeline_ii with
      | Some ii -> [ ("hls.pipeline", Attr.Int ii) ]
      | None -> [])
      @ (match d.unroll with
        | Some f -> [ ("hls.unroll", Attr.Int f) ]
        | None -> [])
  | Middle -> [ ("hls.unroll", Attr.Bool true) ]  (* full unroll *)

(** Second-innermost-loop attrs from directives. *)
let middle_attrs (d : directives) =
  match d.strategy with
  | Inner -> []
  | Middle -> (
      match d.pipeline_ii with
      | Some ii -> [ ("hls.pipeline", Attr.Int ii) ]
      | None -> [ ("hls.pipeline", Attr.Int 1) ])

let fattrs_of (d : directives) =
  List.map
    (fun (arg, kind, factor, dim) ->
      ( "hls.partition." ^ arg,
        Attr.Str (Printf.sprintf "%s:%d:%d" kind factor dim) ))
    d.partitions

(** [matmul b d c_mem a_mem b_mem n m k] emits C[n×m] += A[n×k]·B[k×m]
    as a three-deep affine nest with a register accumulator. *)
let emit_matmul b d ~dst ~lhs ~rhs ~n ~m ~k =
  ignore
    (Builder.affine_for b ~lb:0 ~ub:n (fun b i _ ->
         ignore
           (Builder.affine_for b ~lb:0 ~ub:m ~attrs:(middle_attrs d)
              (fun b j _ ->
                let zero = Builder.constant_f b 0.0 in
                let acc =
                  Builder.affine_for b ~lb:0 ~ub:k ~iters:[ zero ]
                    ~attrs:(inner_attrs d) (fun b kk iters ->
                      let a = Builder.load b lhs [ i; kk ] in
                      let bv = Builder.load b rhs [ kk; j ] in
                      let m = Builder.mulf b a bv in
                      [ Builder.addf b (List.hd iters) m ])
                in
                Builder.store b (List.hd acc) dst [ i; j ];
                []));
         []))

let ref_matmul ~n ~m ~k cdat adat bdat =
  for i = 0 to n - 1 do
    for j = 0 to m - 1 do
      let acc = ref 0.0 in
      for kk = 0 to k - 1 do
        acc := !acc +. (adat.((i * k) + kk) *. bdat.((kk * m) + j))
      done;
      cdat.((i * m) + j) <- !acc
    done
  done

(* ------------------------------------------------------------------ *)
(* gemm                                                               *)
(* ------------------------------------------------------------------ *)

let gemm ?(n = 16) () : kernel =
  {
    kname = "gemm";
    description = Printf.sprintf "C = A x B (dense %dx%d matmul)" n n;
    args = [ ("A", [ n; n ]); ("B", [ n; n ]); ("C", [ n; n ]) ];
    outputs = [ "C" ];
    build =
      (fun d ->
        let b = Builder.create () in
        let mty = mref [ n; n ] in
        let f =
          Builder.func b "gemm"
            ~args:[ ("A", mty); ("B", mty); ("C", mty) ]
            ~ret_tys:[] ~fattrs:(fattrs_of d)
            (fun b args ->
              match args with
              | [ a; bb; c ] ->
                  emit_matmul b d ~dst:c ~lhs:a ~rhs:bb ~n ~m:n ~k:n;
                  Builder.ret b []
              | _ -> assert false)
        in
        { Ir.funcs = [ f ] });
    reference =
      (function
      | [ a; bb; c ] -> ref_matmul ~n ~m:n ~k:n c a bb
      | _ -> invalid_arg "gemm reference");
  }

(* ------------------------------------------------------------------ *)
(* 2mm: tmp = A x B; D = tmp x C  (exercises a local buffer)          *)
(* ------------------------------------------------------------------ *)

let mm2 ?(n = 12) () : kernel =
  {
    kname = "mm2";
    description = "D = (A x B) x C with an on-chip temporary";
    args = [ ("A", [ n; n ]); ("B", [ n; n ]); ("C", [ n; n ]); ("D", [ n; n ]) ];
    outputs = [ "D" ];
    build =
      (fun d ->
        let b = Builder.create () in
        let mty = mref [ n; n ] in
        let f =
          Builder.func b "mm2"
            ~args:[ ("A", mty); ("B", mty); ("C", mty); ("D", mty) ]
            ~ret_tys:[] ~fattrs:(fattrs_of d)
            (fun b args ->
              match args with
              | [ a; bb; c; dd ] ->
                  let tmp = Builder.memref_alloc b mty in
                  emit_matmul b d ~dst:tmp ~lhs:a ~rhs:bb ~n ~m:n ~k:n;
                  emit_matmul b d ~dst:dd ~lhs:tmp ~rhs:c ~n ~m:n ~k:n;
                  Builder.ret b []
              | _ -> assert false)
        in
        { Ir.funcs = [ f ] });
    reference =
      (function
      | [ a; bb; c; dd ] ->
          let tmp = Array.make (n * n) 0.0 in
          ref_matmul ~n ~m:n ~k:n tmp a bb;
          ref_matmul ~n ~m:n ~k:n dd tmp c
      | _ -> invalid_arg "mm2 reference");
  }

(* ------------------------------------------------------------------ *)
(* 3mm                                                                *)
(* ------------------------------------------------------------------ *)

let mm3 ?(n = 10) () : kernel =
  {
    kname = "mm3";
    description = "G = (A x B) x (C x D)";
    args =
      [ ("A", [ n; n ]); ("B", [ n; n ]); ("C", [ n; n ]); ("D", [ n; n ]);
        ("G", [ n; n ]) ];
    outputs = [ "G" ];
    build =
      (fun d ->
        let b = Builder.create () in
        let mty = mref [ n; n ] in
        let f =
          Builder.func b "mm3"
            ~args:
              [ ("A", mty); ("B", mty); ("C", mty); ("D", mty); ("G", mty) ]
            ~ret_tys:[] ~fattrs:(fattrs_of d)
            (fun b args ->
              match args with
              | [ a; bb; c; dd; g ] ->
                  let e = Builder.memref_alloc b mty in
                  let f_ = Builder.memref_alloc b mty in
                  emit_matmul b d ~dst:e ~lhs:a ~rhs:bb ~n ~m:n ~k:n;
                  emit_matmul b d ~dst:f_ ~lhs:c ~rhs:dd ~n ~m:n ~k:n;
                  emit_matmul b d ~dst:g ~lhs:e ~rhs:f_ ~n ~m:n ~k:n;
                  Builder.ret b []
              | _ -> assert false)
        in
        { Ir.funcs = [ f ] });
    reference =
      (function
      | [ a; bb; c; dd; g ] ->
          let e = Array.make (n * n) 0.0 in
          let f_ = Array.make (n * n) 0.0 in
          ref_matmul ~n ~m:n ~k:n e a bb;
          ref_matmul ~n ~m:n ~k:n f_ c dd;
          ref_matmul ~n ~m:n ~k:n g e f_
      | _ -> invalid_arg "mm3 reference");
  }

(* ------------------------------------------------------------------ *)
(* atax: y = A^T (A x)                                                *)
(* ------------------------------------------------------------------ *)

let atax ?(n = 24) () : kernel =
  {
    kname = "atax";
    description = "y = A^T (A x)";
    args = [ ("A", [ n; n ]); ("x", [ n ]); ("y", [ n ]); ("tmp", [ n ]) ];
    outputs = [ "y"; "tmp" ];
    build =
      (fun d ->
        let b = Builder.create () in
        let mty = mref [ n; n ] in
        let vty = mref [ n ] in
        let f =
          Builder.func b "atax"
            ~args:[ ("A", mty); ("x", vty); ("y", vty); ("tmp", vty) ]
            ~ret_tys:[] ~fattrs:(fattrs_of d)
            (fun b args ->
              match args with
              | [ a; x; y; tmp ] ->
                  (* zero y *)
                  ignore
                    (Builder.affine_for b ~lb:0 ~ub:n (fun b i _ ->
                         let z = Builder.constant_f b 0.0 in
                         Builder.store b z y [ i ];
                         []));
                  ignore
                    (Builder.affine_for b ~lb:0 ~ub:n
                       ~attrs:(middle_attrs d) (fun b i _ ->
                         let zero = Builder.constant_f b 0.0 in
                         let acc =
                           Builder.affine_for b ~lb:0 ~ub:n ~iters:[ zero ]
                             ~attrs:(inner_attrs d) (fun b j iters ->
                               let av = Builder.load b a [ i; j ] in
                               let xv = Builder.load b x [ j ] in
                               let m = Builder.mulf b av xv in
                               [ Builder.addf b (List.hd iters) m ])
                         in
                         Builder.store b (List.hd acc) tmp [ i ];
                         []));
                  ignore
                    (Builder.affine_for b ~lb:0 ~ub:n
                       ~attrs:(middle_attrs d) (fun b i _ ->
                         ignore
                           (Builder.affine_for b ~lb:0 ~ub:n
                              ~attrs:(inner_attrs d) (fun b j _ ->
                                let yv = Builder.load b y [ j ] in
                                let av = Builder.load b a [ i; j ] in
                                let tv = Builder.load b tmp [ i ] in
                                let m = Builder.mulf b av tv in
                                let s = Builder.addf b yv m in
                                Builder.store b s y [ j ];
                                []));
                         []));
                  Builder.ret b []
              | _ -> assert false)
        in
        { Ir.funcs = [ f ] });
    reference =
      (function
      | [ a; x; y; tmp ] ->
          Array.fill y 0 n 0.0;
          for i = 0 to n - 1 do
            let acc = ref 0.0 in
            for j = 0 to n - 1 do
              acc := !acc +. (a.((i * n) + j) *. x.(j))
            done;
            tmp.(i) <- !acc
          done;
          for i = 0 to n - 1 do
            for j = 0 to n - 1 do
              y.(j) <- y.(j) +. (a.((i * n) + j) *. tmp.(i))
            done
          done
      | _ -> invalid_arg "atax reference");
  }

(* ------------------------------------------------------------------ *)
(* bicg: s = A^T r ; q = A p                                          *)
(* ------------------------------------------------------------------ *)

let bicg ?(n = 24) () : kernel =
  {
    kname = "bicg";
    description = "s = A^T r; q = A p";
    args =
      [ ("A", [ n; n ]); ("r", [ n ]); ("p", [ n ]); ("s", [ n ]); ("q", [ n ]) ];
    outputs = [ "s"; "q" ];
    build =
      (fun d ->
        let b = Builder.create () in
        let mty = mref [ n; n ] in
        let vty = mref [ n ] in
        let f =
          Builder.func b "bicg"
            ~args:
              [ ("A", mty); ("r", vty); ("p", vty); ("s", vty); ("q", vty) ]
            ~ret_tys:[] ~fattrs:(fattrs_of d)
            (fun b args ->
              match args with
              | [ a; r; p; s; q ] ->
                  ignore
                    (Builder.affine_for b ~lb:0 ~ub:n (fun b i _ ->
                         let z = Builder.constant_f b 0.0 in
                         Builder.store b z s [ i ];
                         []));
                  ignore
                    (Builder.affine_for b ~lb:0 ~ub:n
                       ~attrs:(middle_attrs d) (fun b i _ ->
                         let zero = Builder.constant_f b 0.0 in
                         let acc =
                           Builder.affine_for b ~lb:0 ~ub:n ~iters:[ zero ]
                             ~attrs:(inner_attrs d) (fun b j iters ->
                               (* s[j] += r[i] * A[i][j] *)
                               let sv = Builder.load b s [ j ] in
                               let rv = Builder.load b r [ i ] in
                               let av = Builder.load b a [ i; j ] in
                               let m = Builder.mulf b rv av in
                               let s2 = Builder.addf b sv m in
                               Builder.store b s2 s [ j ];
                               (* q[i] += A[i][j] * p[j] *)
                               let pv = Builder.load b p [ j ] in
                               let m2 = Builder.mulf b av pv in
                               [ Builder.addf b (List.hd iters) m2 ])
                         in
                         Builder.store b (List.hd acc) q [ i ];
                         []));
                  Builder.ret b []
              | _ -> assert false)
        in
        { Ir.funcs = [ f ] });
    reference =
      (function
      | [ a; r; p; s; q ] ->
          Array.fill s 0 n 0.0;
          for i = 0 to n - 1 do
            let acc = ref 0.0 in
            for j = 0 to n - 1 do
              s.(j) <- s.(j) +. (r.(i) *. a.((i * n) + j));
              acc := !acc +. (a.((i * n) + j) *. p.(j))
            done;
            q.(i) <- !acc
          done
      | _ -> invalid_arg "bicg reference");
  }

(* ------------------------------------------------------------------ *)
(* mvt: x1 += A y1 ; x2 += A^T y2                                     *)
(* ------------------------------------------------------------------ *)

let mvt ?(n = 24) () : kernel =
  {
    kname = "mvt";
    description = "x1 += A y1; x2 += A^T y2";
    args =
      [ ("A", [ n; n ]); ("x1", [ n ]); ("x2", [ n ]); ("y1", [ n ]);
        ("y2", [ n ]) ];
    outputs = [ "x1"; "x2" ];
    build =
      (fun d ->
        let b = Builder.create () in
        let mty = mref [ n; n ] in
        let vty = mref [ n ] in
        let f =
          Builder.func b "mvt"
            ~args:
              [ ("A", mty); ("x1", vty); ("x2", vty); ("y1", vty); ("y2", vty) ]
            ~ret_tys:[] ~fattrs:(fattrs_of d)
            (fun b args ->
              match args with
              | [ a; x1; x2; y1; y2 ] ->
                  let dot dst src row_major =
                    ignore
                      (Builder.affine_for b ~lb:0 ~ub:n
                         ~attrs:(middle_attrs d) (fun b i _ ->
                           let init = Builder.load b dst [ i ] in
                           let acc =
                             Builder.affine_for b ~lb:0 ~ub:n ~iters:[ init ]
                               ~attrs:(inner_attrs d) (fun b j iters ->
                                 let av =
                                   if row_major then Builder.load b a [ i; j ]
                                   else Builder.load b a [ j; i ]
                                 in
                                 let yv = Builder.load b src [ j ] in
                                 let m = Builder.mulf b av yv in
                                 [ Builder.addf b (List.hd iters) m ])
                           in
                           Builder.store b (List.hd acc) dst [ i ];
                           []))
                  in
                  dot x1 y1 true;
                  dot x2 y2 false;
                  Builder.ret b []
              | _ -> assert false)
        in
        { Ir.funcs = [ f ] });
    reference =
      (function
      | [ a; x1; x2; y1; y2 ] ->
          for i = 0 to n - 1 do
            let acc = ref x1.(i) in
            for j = 0 to n - 1 do
              acc := !acc +. (a.((i * n) + j) *. y1.(j))
            done;
            x1.(i) <- !acc
          done;
          for i = 0 to n - 1 do
            let acc = ref x2.(i) in
            for j = 0 to n - 1 do
              acc := !acc +. (a.((j * n) + i) *. y2.(j))
            done;
            x2.(i) <- !acc
          done
      | _ -> invalid_arg "mvt reference");
  }

(* ------------------------------------------------------------------ *)
(* gesummv: y = alpha A x + beta B x                                  *)
(* ------------------------------------------------------------------ *)

let gesummv ?(n = 24) () : kernel =
  let alpha = 1.5 and beta = 1.2 in
  {
    kname = "gesummv";
    description = "y = alpha A x + beta B x";
    args = [ ("A", [ n; n ]); ("B", [ n; n ]); ("x", [ n ]); ("y", [ n ]) ];
    outputs = [ "y" ];
    build =
      (fun d ->
        let b = Builder.create () in
        let mty = mref [ n; n ] in
        let vty = mref [ n ] in
        let f =
          Builder.func b "gesummv"
            ~args:[ ("A", mty); ("B", mty); ("x", vty); ("y", vty) ]
            ~ret_tys:[] ~fattrs:(fattrs_of d)
            (fun b args ->
              match args with
              | [ a; bb; x; y ] ->
                  ignore
                    (Builder.affine_for b ~lb:0 ~ub:n
                       ~attrs:(middle_attrs d) (fun b i _ ->
                         let zero = Builder.constant_f b 0.0 in
                         let accs =
                           Builder.affine_for b ~lb:0 ~ub:n
                             ~iters:[ zero; zero ] ~attrs:(inner_attrs d)
                             (fun b j iters ->
                               match iters with
                               | [ ta; tb ] ->
                                   let xv = Builder.load b x [ j ] in
                                   let av = Builder.load b a [ i; j ] in
                                   let bv = Builder.load b bb [ i; j ] in
                                   let ma = Builder.mulf b av xv in
                                   let mb = Builder.mulf b bv xv in
                                   [ Builder.addf b ta ma; Builder.addf b tb mb ]
                               | _ -> assert false)
                         in
                         (match accs with
                         | [ ta; tb ] ->
                             let ca = Builder.constant_f b alpha in
                             let cb = Builder.constant_f b beta in
                             let va = Builder.mulf b ca ta in
                             let vb = Builder.mulf b cb tb in
                             let s = Builder.addf b va vb in
                             Builder.store b s y [ i ]
                         | _ -> assert false);
                         []));
                  Builder.ret b []
              | _ -> assert false)
        in
        { Ir.funcs = [ f ] });
    reference =
      (function
      | [ a; bb; x; y ] ->
          for i = 0 to n - 1 do
            let ta = ref 0.0 and tb = ref 0.0 in
            for j = 0 to n - 1 do
              ta := !ta +. (a.((i * n) + j) *. x.(j));
              tb := !tb +. (bb.((i * n) + j) *. x.(j))
            done;
            y.(i) <- (alpha *. !ta) +. (beta *. !tb)
          done
      | _ -> invalid_arg "gesummv reference");
  }

(* ------------------------------------------------------------------ *)
(* fir: y[i] = sum_k h[k] x[i+k]                                      *)
(* ------------------------------------------------------------------ *)

let fir ?(n = 64) ?(taps = 8) () : kernel =
  let outn = n - taps + 1 in
  {
    kname = "fir";
    description = Printf.sprintf "%d-tap FIR filter over %d samples" taps n;
    args = [ ("x", [ n ]); ("h", [ taps ]); ("y", [ outn ]) ];
    outputs = [ "y" ];
    build =
      (fun d ->
        let b = Builder.create () in
        let f =
          Builder.func b "fir"
            ~args:
              [ ("x", mref [ n ]); ("h", mref [ taps ]); ("y", mref [ outn ]) ]
            ~ret_tys:[] ~fattrs:(fattrs_of d)
            (fun b args ->
              match args with
              | [ x; h; y ] ->
                  ignore
                    (Builder.affine_for b ~lb:0 ~ub:outn
                       ~attrs:(middle_attrs d) (fun b i _ ->
                         let zero = Builder.constant_f b 0.0 in
                         let acc =
                           Builder.affine_for b ~lb:0 ~ub:taps ~iters:[ zero ]
                             ~attrs:(inner_attrs d) (fun b k iters ->
                               let hv = Builder.load b h [ k ] in
                               (* x[i + k] via an affine map *)
                               let xv =
                                 Builder.affine_load b x
                                   ~map:
                                     (Affine_map.make ~num_dims:2 ~num_syms:0
                                        [ Affine_expr.add (Affine_expr.dim 0)
                                            (Affine_expr.dim 1) ])
                                   [ i; k ]
                               in
                               let m = Builder.mulf b hv xv in
                               [ Builder.addf b (List.hd iters) m ])
                         in
                         Builder.store b (List.hd acc) y [ i ];
                         []));
                  Builder.ret b []
              | _ -> assert false)
        in
        { Ir.funcs = [ f ] });
    reference =
      (function
      | [ x; h; y ] ->
          for i = 0 to outn - 1 do
            let acc = ref 0.0 in
            for k = 0 to taps - 1 do
              acc := !acc +. (h.(k) *. x.(i + k))
            done;
            y.(i) <- !acc
          done
      | _ -> invalid_arg "fir reference");
  }

(* ------------------------------------------------------------------ *)
(* conv2d: valid convolution with a KxK kernel                        *)
(* ------------------------------------------------------------------ *)

let conv2d ?(h = 16) ?(w = 16) ?(k = 3) () : kernel =
  let oh = h - k + 1 and ow = w - k + 1 in
  {
    kname = "conv2d";
    description = Printf.sprintf "%dx%d valid conv over %dx%d image" k k h w;
    args = [ ("img", [ h; w ]); ("ker", [ k; k ]); ("out", [ oh; ow ]) ];
    outputs = [ "out" ];
    build =
      (fun d ->
        let b = Builder.create () in
        let f =
          Builder.func b "conv2d"
            ~args:
              [ ("img", mref [ h; w ]); ("ker", mref [ k; k ]);
                ("out", mref [ oh; ow ]) ]
            ~ret_tys:[] ~fattrs:(fattrs_of d)
            (fun b args ->
              match args with
              | [ img; ker; out ] ->
                  ignore
                    (Builder.affine_for b ~lb:0 ~ub:oh (fun b i _ ->
                         ignore
                           (Builder.affine_for b ~lb:0 ~ub:ow
                              ~attrs:(middle_attrs d) (fun b j _ ->
                                let zero = Builder.constant_f b 0.0 in
                                let acc0 =
                                  Builder.affine_for b ~lb:0 ~ub:k
                                    ~iters:[ zero ]
                                    ~attrs:
                                      (match d.strategy with
                                      | Middle -> [ ("hls.unroll", Attr.Bool true) ]
                                      | Inner -> [])
                                    (fun b ki iters ->
                                      let acc1 =
                                        Builder.affine_for b ~lb:0 ~ub:k
                                          ~iters:[ List.hd iters ]
                                          ~attrs:(inner_attrs d)
                                          (fun b kj it2 ->
                                            let kv =
                                              Builder.load b ker [ ki; kj ]
                                            in
                                            let iv =
                                              Builder.affine_load b img
                                                ~map:
                                                  (Affine_map.make ~num_dims:4
                                                     ~num_syms:0
                                                     [
                                                       Affine_expr.add
                                                         (Affine_expr.dim 0)
                                                         (Affine_expr.dim 2);
                                                       Affine_expr.add
                                                         (Affine_expr.dim 1)
                                                         (Affine_expr.dim 3);
                                                     ])
                                                [ i; j; ki; kj ]
                                            in
                                            let m = Builder.mulf b kv iv in
                                            [ Builder.addf b (List.hd it2) m ])
                                      in
                                      [ List.hd acc1 ])
                                in
                                Builder.store b (List.hd acc0) out [ i; j ];
                                []));
                         []));
                  Builder.ret b []
              | _ -> assert false)
        in
        { Ir.funcs = [ f ] });
    reference =
      (function
      | [ img; ker; out ] ->
          for i = 0 to oh - 1 do
            for j = 0 to ow - 1 do
              let acc = ref 0.0 in
              for ki = 0 to k - 1 do
                for kj = 0 to k - 1 do
                  acc :=
                    !acc
                    +. (ker.((ki * k) + kj) *. img.(((i + ki) * w) + j + kj))
                done
              done;
              out.((i * ow) + j) <- !acc
            done
          done
      | _ -> invalid_arg "conv2d reference");
  }

(* ------------------------------------------------------------------ *)
(* jacobi2d: one 5-point stencil sweep                                *)
(* ------------------------------------------------------------------ *)

let jacobi2d ?(n = 16) () : kernel =
  {
    kname = "jacobi2d";
    description = "one 5-point Jacobi sweep over an NxN grid";
    args = [ ("A", [ n; n ]); ("B", [ n; n ]) ];
    outputs = [ "B" ];
    build =
      (fun d ->
        let b = Builder.create () in
        let mty = mref [ n; n ] in
        let f =
          Builder.func b "jacobi2d"
            ~args:[ ("A", mty); ("B", mty) ]
            ~ret_tys:[] ~fattrs:(fattrs_of d)
            (fun b args ->
              match args with
              | [ a; bb ] ->
                  ignore
                    (Builder.affine_for b ~lb:1 ~ub:(n - 1)
                       ~attrs:(middle_attrs d) (fun b i _ ->
                         ignore
                           (Builder.affine_for b ~lb:1 ~ub:(n - 1)
                              ~attrs:(inner_attrs d) (fun b j _ ->
                                let at di dj =
                                  Builder.affine_load b a
                                    ~map:
                                      (Affine_map.make ~num_dims:2 ~num_syms:0
                                         [
                                           Affine_expr.add (Affine_expr.dim 0)
                                             (Affine_expr.const di);
                                           Affine_expr.add (Affine_expr.dim 1)
                                             (Affine_expr.const dj);
                                         ])
                                    [ i; j ]
                                in
                                let c = at 0 0 in
                                let l = at 0 (-1) in
                                let r = at 0 1 in
                                let u = at (-1) 0 in
                                let dn = at 1 0 in
                                let s1 = Builder.addf b c l in
                                let s2 = Builder.addf b s1 r in
                                let s3 = Builder.addf b s2 u in
                                let s4 = Builder.addf b s3 dn in
                                let fifth = Builder.constant_f b 0.2 in
                                let v = Builder.mulf b s4 fifth in
                                Builder.store b v bb [ i; j ];
                                []));
                         []));
                  Builder.ret b []
              | _ -> assert false)
        in
        { Ir.funcs = [ f ] });
    reference =
      (function
      | [ a; bb ] ->
          for i = 1 to n - 2 do
            for j = 1 to n - 2 do
              bb.((i * n) + j) <-
                0.2
                *. (a.((i * n) + j) +. a.((i * n) + j - 1)
                   +. a.((i * n) + j + 1)
                   +. a.(((i - 1) * n) + j)
                   +. a.(((i + 1) * n) + j))
            done
          done
      | _ -> invalid_arg "jacobi2d reference");
  }

(* ------------------------------------------------------------------ *)
(* syrk: C = A A^T + C (symmetric rank-k update, full form)           *)
(* ------------------------------------------------------------------ *)

let syrk ?(n = 14) () : kernel =
  {
    kname = "syrk";
    description = "C = A A^T + C (rank-k update)";
    args = [ ("A", [ n; n ]); ("C", [ n; n ]) ];
    outputs = [ "C" ];
    build =
      (fun d ->
        let b = Builder.create () in
        let mty = mref [ n; n ] in
        let f =
          Builder.func b "syrk"
            ~args:[ ("A", mty); ("C", mty) ]
            ~ret_tys:[] ~fattrs:(fattrs_of d)
            (fun b args ->
              match args with
              | [ a; c ] ->
                  ignore
                    (Builder.affine_for b ~lb:0 ~ub:n (fun b i _ ->
                         ignore
                           (Builder.affine_for b ~lb:0 ~ub:n
                              ~attrs:(middle_attrs d) (fun b j _ ->
                                let init = Builder.load b c [ i; j ] in
                                let acc =
                                  Builder.affine_for b ~lb:0 ~ub:n
                                    ~iters:[ init ] ~attrs:(inner_attrs d)
                                    (fun b k iters ->
                                      let aik = Builder.load b a [ i; k ] in
                                      let ajk = Builder.load b a [ j; k ] in
                                      let m = Builder.mulf b aik ajk in
                                      [ Builder.addf b (List.hd iters) m ])
                                in
                                Builder.store b (List.hd acc) c [ i; j ];
                                []));
                         []));
                  Builder.ret b []
              | _ -> assert false)
        in
        { Ir.funcs = [ f ] });
    reference =
      (function
      | [ a; c ] ->
          for i = 0 to n - 1 do
            for j = 0 to n - 1 do
              let acc = ref c.((i * n) + j) in
              for k = 0 to n - 1 do
                acc := !acc +. (a.((i * n) + k) *. a.((j * n) + k))
              done;
              c.((i * n) + j) <- !acc
            done
          done
      | _ -> invalid_arg "syrk reference");
  }

(* ------------------------------------------------------------------ *)
(* doitgen: rank-3 tensor contraction (exercises rank-3 memrefs)      *)
(* ------------------------------------------------------------------ *)

let doitgen ?(r = 6) ?(q = 6) ?(p = 8) () : kernel =
  {
    kname = "doitgen";
    description = "A[r][q][:] = A[r][q][:] x C4 (rank-3 tensor contraction)";
    args = [ ("A", [ r; q; p ]); ("C4", [ p; p ]); ("sum", [ p ]) ];
    outputs = [ "A"; "sum" ];
    build =
      (fun d ->
        let b = Builder.create () in
        let aty = mref [ r; q; p ] in
        let cty = mref [ p; p ] in
        let sty = mref [ p ] in
        let f =
          Builder.func b "doitgen"
            ~args:[ ("A", aty); ("C4", cty); ("sum", sty) ]
            ~ret_tys:[] ~fattrs:(fattrs_of d)
            (fun b args ->
              match args with
              | [ a; c4; sum ] ->
                  ignore
                    (Builder.affine_for b ~lb:0 ~ub:r (fun b ri _ ->
                         ignore
                           (Builder.affine_for b ~lb:0 ~ub:q (fun b qi _ ->
                                ignore
                                  (Builder.affine_for b ~lb:0 ~ub:p
                                     ~attrs:(middle_attrs d) (fun b pi _ ->
                                       let zero = Builder.constant_f b 0.0 in
                                       let acc =
                                         Builder.affine_for b ~lb:0 ~ub:p
                                           ~iters:[ zero ]
                                           ~attrs:(inner_attrs d)
                                           (fun b s iters ->
                                             let av =
                                               Builder.load b a [ ri; qi; s ]
                                             in
                                             let cv =
                                               Builder.load b c4 [ s; pi ]
                                             in
                                             let m = Builder.mulf b av cv in
                                             [
                                               Builder.addf b (List.hd iters) m;
                                             ])
                                       in
                                       Builder.store b (List.hd acc) sum [ pi ];
                                       []));
                                (* write back *)
                                ignore
                                  (Builder.affine_for b ~lb:0 ~ub:p
                                     (fun b pi _ ->
                                       let sv = Builder.load b sum [ pi ] in
                                       Builder.store b sv a [ ri; qi; pi ];
                                       []));
                                []));
                         []));
                  Builder.ret b []
              | _ -> assert false)
        in
        { Ir.funcs = [ f ] });
    reference =
      (function
      | [ a; c4; sum ] ->
          for ri = 0 to r - 1 do
            for qi = 0 to q - 1 do
              for pi = 0 to p - 1 do
                let acc = ref 0.0 in
                for s = 0 to p - 1 do
                  acc :=
                    !acc
                    +. (a.((((ri * q) + qi) * p) + s) *. c4.((s * p) + pi))
                done;
                sum.(pi) <- !acc
              done;
              for pi = 0 to p - 1 do
                a.((((ri * q) + qi) * p) + pi) <- sum.(pi)
              done
            done
          done
      | _ -> invalid_arg "doitgen reference");
  }

(* ------------------------------------------------------------------ *)
(* seidel2d: in-place Gauss–Seidel sweep (loop-carried through memory) *)
(* ------------------------------------------------------------------ *)

let seidel2d ?(n = 14) () : kernel =
  {
    kname = "seidel2d";
    description = "one in-place Gauss-Seidel sweep over an NxN grid";
    args = [ ("A", [ n; n ]) ];
    outputs = [ "A" ];
    build =
      (fun d ->
        let b = Builder.create () in
        let mty = mref [ n; n ] in
        let f =
          Builder.func b "seidel2d"
            ~args:[ ("A", mty) ]
            ~ret_tys:[] ~fattrs:(fattrs_of d)
            (fun b args ->
              let a = List.hd args in
              ignore
                (Builder.affine_for b ~lb:1 ~ub:(n - 1) (fun b i _ ->
                     ignore
                       (Builder.affine_for b ~lb:1 ~ub:(n - 1)
                          ~attrs:
                            (match d.strategy with
                            | Inner -> inner_attrs d
                            | Middle -> middle_attrs d)
                          (fun b j _ ->
                            let at di dj =
                              Builder.affine_load b a
                                ~map:
                                  (Affine_map.make ~num_dims:2 ~num_syms:0
                                     [
                                       Affine_expr.add (Affine_expr.dim 0)
                                         (Affine_expr.const di);
                                       Affine_expr.add (Affine_expr.dim 1)
                                         (Affine_expr.const dj);
                                     ])
                                [ i; j ]
                            in
                            let s1 = Builder.addf b (at (-1) (-1)) (at (-1) 0) in
                            let s2 = Builder.addf b s1 (at (-1) 1) in
                            let s3 = Builder.addf b s2 (at 0 (-1)) in
                            let s4 = Builder.addf b s3 (at 0 0) in
                            let s5 = Builder.addf b s4 (at 0 1) in
                            let s6 = Builder.addf b s5 (at 1 (-1)) in
                            let s7 = Builder.addf b s6 (at 1 0) in
                            let s8 = Builder.addf b s7 (at 1 1) in
                            let ninth = Builder.constant_f b (1.0 /. 9.0) in
                            let v = Builder.mulf b s8 ninth in
                            Builder.store b v a [ i; j ];
                            []));
                     []));
              Builder.ret b [])
        in
        { Ir.funcs = [ f ] });
    reference =
      (function
      | [ a ] ->
          for i = 1 to n - 2 do
            for j = 1 to n - 2 do
              a.((i * n) + j) <-
                (a.(((i - 1) * n) + j - 1)
                +. a.(((i - 1) * n) + j)
                +. a.(((i - 1) * n) + j + 1)
                +. a.((i * n) + j - 1)
                +. a.((i * n) + j)
                +. a.((i * n) + j + 1)
                +. a.(((i + 1) * n) + j - 1)
                +. a.(((i + 1) * n) + j)
                +. a.(((i + 1) * n) + j + 1))
                /. 9.0
            done
          done
      | _ -> invalid_arg "seidel2d reference");
  }

(* ------------------------------------------------------------------ *)
(* mmcall: gemm split across two functions (exercises func.call,      *)
(* user-function calls in the C round-trip, and HLS inlining)         *)
(* ------------------------------------------------------------------ *)

let mmcall ?(n = 12) () : kernel =
  {
    kname = "mmcall";
    description = "C = A x B with the row computation in a helper function";
    args = [ ("A", [ n; n ]); ("B", [ n; n ]); ("C", [ n; n ]) ];
    outputs = [ "C" ];
    build =
      (fun d ->
        let b = Builder.create () in
        let mty = mref [ n; n ] in
        let helper =
          Builder.func b "mm_row"
            ~args:[ ("A", mty); ("B", mty); ("C", mty); ("i", Types.Index) ]
            ~ret_tys:[]
            (fun b args ->
              match args with
              | [ a; bb; c; i ] ->
                  ignore
                    (Builder.affine_for b ~lb:0 ~ub:n ~attrs:(middle_attrs d)
                       (fun b j _ ->
                         let zero = Builder.constant_f b 0.0 in
                         let acc =
                           Builder.affine_for b ~lb:0 ~ub:n ~iters:[ zero ]
                             ~attrs:(inner_attrs d) (fun b k iters ->
                               let av = Builder.load b a [ i; k ] in
                               let bv = Builder.load b bb [ k; j ] in
                               let m = Builder.mulf b av bv in
                               [ Builder.addf b (List.hd iters) m ])
                         in
                         Builder.store b (List.hd acc) c [ i; j ];
                         []));
                  Builder.ret b []
              | _ -> assert false)
        in
        let top =
          Builder.func b "mmcall"
            ~args:[ ("A", mty); ("B", mty); ("C", mty) ]
            ~ret_tys:[] ~fattrs:(fattrs_of d)
            (fun b args ->
              match args with
              | [ a; bb; c ] ->
                  ignore
                    (Builder.affine_for b ~lb:0 ~ub:n (fun b i _ ->
                         ignore
                           (Builder.call b "mm_row" ~ret_tys:[]
                              [ a; bb; c; i ]);
                         []));
                  Builder.ret b []
              | _ -> assert false)
        in
        { Ir.funcs = [ helper; top ] });
    reference =
      (function
      | [ a; bb; c ] -> ref_matmul ~n ~m:n ~k:n c a bb
      | _ -> invalid_arg "mmcall reference");
  }

(* ------------------------------------------------------------------ *)

(** The evaluation suite (paper-style kernel set). *)
let all ?scale () : kernel list =
  ignore scale;
  [
    gemm ();
    mm2 ();
    mm3 ();
    atax ();
    bicg ();
    mvt ();
    gesummv ();
    fir ();
    conv2d ();
    jacobi2d ();
    syrk ();
    doitgen ();
    seidel2d ();
    mmcall ();
  ]

let by_name name =
  List.find_opt (fun k -> k.kname = name) (all ())
