lib/workloads/kernels.ml: Affine_expr Affine_map Array Attr Builder Ir List Mhir Printf Types
