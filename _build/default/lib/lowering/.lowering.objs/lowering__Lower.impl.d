lib/lowering/lower.ml: Affine_expr Affine_map Array Attr Hashtbl Ir List Llvmir Mhir Option Printf String Support Types
