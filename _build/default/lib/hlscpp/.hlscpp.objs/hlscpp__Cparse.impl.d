lib/hlscpp/cparse.ml: Array Cast Clex List String Support
