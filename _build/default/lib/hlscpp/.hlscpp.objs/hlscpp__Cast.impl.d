lib/hlscpp/cast.ml:
