lib/hlscpp/clex.ml: Array List String Support
