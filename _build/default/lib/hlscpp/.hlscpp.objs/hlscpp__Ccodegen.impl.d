lib/hlscpp/ccodegen.ml: Cast Cparse Hashtbl List Llvmir Support
