lib/hlscpp/emit.ml: Affine_expr Affine_map Attr Buffer Float Hashtbl Ir List Mhir Printf String Support Types
