(** Lexer for the C subset.  [#pragma ...] lines become single tokens;
    [//] and [/* */] comments are skipped. *)

type token =
  | Tident of string
  | Tint of int
  | Tfloat of float * bool  (** value, had 'f' suffix *)
  | Tpragma of string  (** full pragma line without the leading # *)
  | Tpunct of string  (** operators and punctuation, longest match *)
  | Teof

let fail fmt = Support.Err.fail ~pass:"hlscpp.lexer" fmt

let two_char_ops =
  [ "<="; ">="; "=="; "!="; "&&"; "||"; "++"; "--"; "+="; "-="; "*="; "/="; "<<"; ">>" ]

let tokenize (src : string) : token array =
  let n = String.length src in
  let toks = ref [] in
  let i = ref 0 in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  let is_ident_start c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
  in
  let is_ident c = is_ident_start c || (c >= '0' && c <= '9') in
  let is_digit c = c >= '0' && c <= '9' in
  let read_while pred =
    let start = !i in
    while !i < n && pred src.[!i] do incr i done;
    String.sub src start (!i - start)
  in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then incr i
    else if c = '/' && peek 1 = Some '/' then
      while !i < n && src.[!i] <> '\n' do incr i done
    else if c = '/' && peek 1 = Some '*' then begin
      i := !i + 2;
      while !i + 1 < n && not (src.[!i] = '*' && src.[!i + 1] = '/') do incr i done;
      i := min n (!i + 2)
    end
    else if c = '#' then begin
      incr i;
      let line = read_while (fun c -> c <> '\n') in
      toks := Tpragma (String.trim line) :: !toks
    end
    else if is_ident_start c then toks := Tident (read_while is_ident) :: !toks
    else if is_digit c then begin
      let start = !i in
      let _ = read_while is_digit in
      let is_float = ref false in
      if !i < n && src.[!i] = '.' then begin
        is_float := true;
        incr i;
        let _ = read_while is_digit in
        ()
      end;
      if !i < n && (src.[!i] = 'e' || src.[!i] = 'E') then begin
        is_float := true;
        incr i;
        if !i < n && (src.[!i] = '+' || src.[!i] = '-') then incr i;
        let _ = read_while is_digit in
        ()
      end;
      let lit = String.sub src start (!i - start) in
      let suffix_f =
        if !i < n && (src.[!i] = 'f' || src.[!i] = 'F') then begin
          incr i;
          true
        end
        else false
      in
      if !is_float || suffix_f then
        toks := Tfloat (float_of_string lit, suffix_f) :: !toks
      else toks := Tint (int_of_string lit) :: !toks
    end
    else begin
      let two =
        if !i + 1 < n then String.sub src !i 2 else ""
      in
      if List.mem two two_char_ops then begin
        i := !i + 2;
        toks := Tpunct two :: !toks
      end
      else begin
        incr i;
        toks := Tpunct (String.make 1 c) :: !toks
      end
    end
  done;
  Array.of_list (List.rev (Teof :: !toks))
