(** AST of the C subset accepted by the mini front-end (the Vitis
    Clang analogue).  Covers what the HLS C++ emitter produces plus the
    constructs hand-written HLS kernels in the test-suite use. *)

type cty = Cvoid | Cint | Clong | Cfloat | Cdouble

type expr =
  | Eint of int
  | Efloat of float * bool  (** value, is_single_precision (f suffix) *)
  | Eident of string
  | Eindex of expr * expr  (** a[i] *)
  | Ebin of string * expr * expr  (** "+", "-", "*", "/", "%", "<", ... *)
  | Eunary of string * expr  (** "-", "!" *)
  | Ecast of cty * expr
  | Eternary of expr * expr * expr
  | Ecall of string * expr list

type pragma =
  | Ppipeline of int  (** II *)
  | Punroll of int  (** factor; 0 = full *)
  | Ppartition of { variable : string; kind : string; factor : int; dim : int }
  | Pother of string

type stmt =
  | Sdecl of cty * string * int list * expr option
      (** type, name, array dims (empty = scalar), initializer *)
  | Sassign of expr * expr  (** lvalue = expr *)
  | Scompound_assign of string * expr * expr  (** op, lvalue, expr: a += b *)
  | Sfor of {
      ivar : string;
      init : expr;
      bound : expr;  (** loop runs while ivar < bound *)
      step : expr;  (** increment per iteration *)
      body : stmt list;
    }
  | Sif of expr * stmt list * stmt list
  | Sreturn of expr option
  | Sexpr of expr
  | Spragma of pragma

type param = { pname : string; pty : cty; dims : int list }

type func = {
  fname : string;
  ret : cty;
  params : param list;
  body : stmt list;
}

type file = func list
