(** Fresh-name generation for SSA values, labels and symbols.

    A generator remembers every name it has handed out (and every name
    registered from pre-existing IR) so freshness is global within one
    function or module being rewritten. *)

type t = { mutable counter : int; used : (string, unit) Hashtbl.t }

let create () = { counter = 0; used = Hashtbl.create 64 }

(** Mark [name] as taken without generating anything. *)
let reserve t name = Hashtbl.replace t.used name ()

let is_used t name = Hashtbl.mem t.used name

(** [fresh t base] returns [base] if free, otherwise [base ^ string_of_int k]
    for the first free [k]. The result is reserved. *)
let fresh t base =
  if not (Hashtbl.mem t.used base) then begin
    Hashtbl.replace t.used base ();
    base
  end
  else
    let rec go () =
      let candidate = base ^ string_of_int t.counter in
      t.counter <- t.counter + 1;
      if Hashtbl.mem t.used candidate then go ()
      else begin
        Hashtbl.replace t.used candidate ();
        candidate
      end
    in
    go ()
