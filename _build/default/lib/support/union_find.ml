(** Imperative union-find over integer keys, used by the typed-pointer
    reconstruction pass to merge pointee-type equivalence classes. *)

type t = { parent : int array; rank : int array }

let create n = { parent = Array.init n (fun i -> i); rank = Array.make n 0 }

let rec find t i =
  let p = t.parent.(i) in
  if p = i then i
  else begin
    let root = find t p in
    t.parent.(i) <- root;
    root
  end

(** [union t a b] merges the classes of [a] and [b]; returns the root of
    the merged class. *)
let union t a b =
  let ra = find t a and rb = find t b in
  if ra = rb then ra
  else if t.rank.(ra) < t.rank.(rb) then begin
    t.parent.(ra) <- rb;
    rb
  end
  else if t.rank.(ra) > t.rank.(rb) then begin
    t.parent.(rb) <- ra;
    ra
  end
  else begin
    t.parent.(rb) <- ra;
    t.rank.(ra) <- t.rank.(ra) + 1;
    ra
  end

let same t a b = find t a = find t b
