lib/support/err.ml: Format Printf
