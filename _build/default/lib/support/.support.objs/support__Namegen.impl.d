lib/support/namegen.ml: Hashtbl
