(** Plain-text table rendering for reports and the bench harness.

    Produces aligned ASCII tables in the style of Vitis HLS synthesis
    reports, e.g.

    {v
    +--------+---------+-----+
    | kernel | latency | II  |
    +--------+---------+-----+
    | gemm   |   34913 |   1 |
    +--------+---------+-----+
    v} *)

type align = Left | Right

type t = {
  headers : string list;
  aligns : align list;
  mutable rows : string list list;  (* reversed *)
}

let create ?aligns headers =
  let aligns =
    match aligns with
    | Some a -> a
    | None -> List.map (fun _ -> Right) headers
  in
  { headers; aligns; rows = [] }

let add_row t row = t.rows <- row :: t.rows

let render t =
  let rows = List.rev t.rows in
  let all = t.headers :: rows in
  let ncols = List.length t.headers in
  let width c =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row c with
        | Some cell -> max acc (String.length cell)
        | None -> acc)
      0 all
  in
  let widths = List.init ncols width in
  let sep =
    "+"
    ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths)
    ^ "+"
  in
  let pad align w s =
    let n = w - String.length s in
    if n <= 0 then s
    else
      match align with
      | Left -> s ^ String.make n ' '
      | Right -> String.make n ' ' ^ s
  in
  let render_row row =
    let cells =
      List.mapi
        (fun i cell ->
          let w = List.nth widths i in
          let a = try List.nth t.aligns i with _ -> Right in
          " " ^ pad a w cell ^ " ")
        (List.init ncols (fun i ->
             match List.nth_opt row i with Some c -> c | None -> ""))
    in
    "|" ^ String.concat "|" cells ^ "|"
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (sep ^ "\n");
  Buffer.add_string buf (render_row t.headers ^ "\n");
  Buffer.add_string buf (sep ^ "\n");
  List.iter (fun r -> Buffer.add_string buf (render_row r ^ "\n")) rows;
  Buffer.add_string buf sep;
  Buffer.contents buf

let print t = print_endline (render t)
