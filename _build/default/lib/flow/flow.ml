(** Library root: the end-to-end flows plus the design-space
    exploration extension. *)

include Flow_impl

(** Automatic design-space exploration (extension; see {!Dse}). *)
module Dse = Dse
