lib/flow/flow_impl.ml: Adaptor Array Float Hls_backend Hlscpp List Llvmir Lowering Mhir Printf Sys Workloads
