lib/flow/flow.ml: Dse Flow_impl
