lib/flow/dse.ml: Buffer Flow_impl Hls_backend List Printf Support Workloads
