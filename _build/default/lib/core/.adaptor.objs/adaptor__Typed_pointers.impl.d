lib/core/typed_pointers.ml: Hashtbl Linstr List Llvmir Lmodule Ltype Lvalue Support
