lib/core/legalize_intrinsics.ml: Hashtbl Hls_names Linstr List Llvmir Lmodule Ltype Lvalue Opt_dce Support
