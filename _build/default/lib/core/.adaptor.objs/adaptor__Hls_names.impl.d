lib/core/hls_names.ml: String
