lib/core/eliminate_descriptors.ml: Fun Hashtbl Linstr List Llvmir Lmodule Ltype Lvalue Opt_dce Option Support
