lib/core/canonicalize_geps.ml: Hashtbl Linstr List Llvmir Lmodule Ltype Lvalue Opt_dce Support
