lib/core/compat.ml: Hashtbl Hls_names Linstr List Llvmir Lmodule Ltype Lvalue Option Printf
