lib/core/adaptor.ml: Buffer Canonicalize_geps Compat Eliminate_descriptors Hls_names Interfaces Legalize_intrinsics List Llvmir Printf Support Sys Translate_metadata Typed_pointers
