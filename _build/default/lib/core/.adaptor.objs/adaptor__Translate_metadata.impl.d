lib/core/translate_metadata.ml: Hashtbl Hls_names Linstr List Llvmir Lmodule Ltype Lvalue Option
