lib/core/interfaces.ml: Hls_names List Llvmir Lmodule Ltype String
