(** Adaptor pass 6: interface lowering for the top function.

    Pointer parameters of the top function get an explicit HLS
    interface attribute ([fpga.interface = "bram"] — the equivalent of
    [#pragma HLS interface bram port=...]), and function-level
    [hls.partition.<arg> = "kind:factor:dim"] attributes (forwarded
    from the MLIR level by the lowering) become structured per-param
    partition attributes the HLS backend binds against. *)

open Llvmir

type stats = { mutable interfaces : int; mutable partitions : int }

let fresh_stats () = { interfaces = 0; partitions = 0 }

let prefix = "hls.partition."

let parse_partition (s : string) : (string * int * int) option =
  match String.split_on_char ':' s with
  | [ kind; factor; dim ] -> (
      match (int_of_string_opt factor, int_of_string_opt dim) with
      | Some f, Some d -> Some (kind, f, d)
      | _ -> None)
  | _ -> None

let run_func ?(stats = fresh_stats ()) (f : Lmodule.func) : Lmodule.func =
  let partition_for name =
    List.find_map
      (fun (k, v) ->
        if k = prefix ^ name then parse_partition v else None)
      f.fattrs
  in
  let params =
    List.map
      (fun (p : Lmodule.param) ->
        if Ltype.is_pointer p.pty then begin
          stats.interfaces <- stats.interfaces + 1;
          let base =
            if List.mem_assoc Hls_names.attr_interface p.pattrs then p.pattrs
            else (Hls_names.attr_interface, "bram") :: p.pattrs
          in
          let pattrs =
            match partition_for p.pname with
            | Some (kind, factor, dim) ->
                stats.partitions <- stats.partitions + 1;
                (Hls_names.attr_partition_kind, kind)
                :: (Hls_names.attr_partition_factor, string_of_int factor)
                :: (Hls_names.attr_partition_dim, string_of_int dim)
                :: base
            | None -> base
          in
          { p with pattrs }
        end
        else p)
      f.params
  in
  (* consumed partition attrs are dropped from the function *)
  let fattrs =
    List.filter
      (fun (k, _) -> not (Hls_names.starts_with prefix k))
      f.fattrs
  in
  { f with params; fattrs }

(** Apply to the named top function (or every function when [top] is
    [None]). *)
let run ?stats ?top (m : Lmodule.t) : Lmodule.t =
  Lmodule.map_funcs
    (fun f ->
      match top with
      | Some t when f.Lmodule.fname <> t -> f
      | _ -> run_func ?stats f)
    m
