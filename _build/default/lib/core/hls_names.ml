(** Names and shapes shared across the adaptor passes: the Vitis-style
    spec-op markers the legalized IR uses to carry directives, and the
    metadata keys the modern lowering emits. *)

(** Vitis-style directive markers (modelled after the [_ssdm_op_*]
    intrinsics Vitis HLS front-ends emit for pragmas). *)
let spec_pipeline = "_ssdm_op_SpecPipeline"

let spec_unroll = "_ssdm_op_SpecUnroll"
let spec_trip_count = "_ssdm_op_SpecLoopTripCount"

let is_spec_op name =
  String.length name >= 9 && String.sub name 0 9 = "_ssdm_op_"

(** Modern loop-metadata keys translated by the adaptor. *)
let md_pipeline_enable = "llvm.loop.pipeline.enable"

let md_pipeline_ii = "llvm.loop.pipeline.ii"
let md_unroll_count = "llvm.loop.unroll.count"
let md_unroll_full = "llvm.loop.unroll.full"
let md_tripcount = "llvm.loop.tripcount"

let is_loop_md key =
  String.length key >= 10 && String.sub key 0 10 = "llvm.loop."

(** Interface / partition parameter-attribute keys. *)
let attr_interface = "fpga.interface"

let attr_partition_kind = "fpga.partition.kind"
let attr_partition_factor = "fpga.partition.factor"
let attr_partition_dim = "fpga.partition.dim"

let starts_with p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

(** Intrinsics a Vitis-era (LLVM 7) middle-end does not know. *)
let is_modern_intrinsic name =
  starts_with "llvm.smax." name
  || starts_with "llvm.smin." name
  || starts_with "llvm.umax." name
  || starts_with "llvm.umin." name
  || starts_with "llvm.abs." name
  || starts_with "llvm.fmuladd." name
  || starts_with "llvm.lifetime." name
  || starts_with "llvm.assume" name
  || starts_with "llvm.experimental." name
