lib/hls/schedule.ml: Adaptor_markers Array Directives Fun Hashtbl Linstr List Llvmir Lvalue Op_model Option
