lib/hls/adaptor_markers.ml: Linstr List Llvmir Lmodule Ltype Printf String
