lib/hls/report.ml: Buffer Directives Estimate List Printf String Support
