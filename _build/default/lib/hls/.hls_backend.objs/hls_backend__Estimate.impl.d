lib/hls/estimate.ml: Adaptor_markers Array Cfg Directives Hashtbl Linstr List Llvmir Lmodule Loop_info Lvalue Map Op_model Option Printf Schedule String Support
