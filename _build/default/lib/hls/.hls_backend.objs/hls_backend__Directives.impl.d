lib/hls/directives.ml: Adaptor_markers Array Cfg Hashtbl Linstr List Llvmir Lmodule Loop_info Ltype Lvalue Option
