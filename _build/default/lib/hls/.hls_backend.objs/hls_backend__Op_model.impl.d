lib/hls/op_model.ml: Adaptor_markers Linstr Llvmir Ltype Lvalue Printf
