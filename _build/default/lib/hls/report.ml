(** Vitis-HLS-style text rendering of synthesis reports. *)

open Estimate

let render (r : report) : string =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf
       "== Synthesis report for '%s' (clock %.1f ns, %.0f MHz) ==\n" r.top
       r.clock_ns
       (1000.0 /. r.clock_ns));
  Buffer.add_string b
    (Printf.sprintf "  Latency: %d cycles (%.3f us)   Interval: %d cycles\n"
       r.latency
       (float_of_int r.latency *. r.clock_ns /. 1000.0)
       r.interval);
  let t =
    Support.Table.create
      ~aligns:
        [ Support.Table.Left; Support.Table.Right; Support.Table.Right;
          Support.Table.Right; Support.Table.Left; Support.Table.Right;
          Support.Table.Right; Support.Table.Right ]
      [ "loop"; "trip"; "unroll"; "iter lat"; "pipelined"; "II"; "RecMII"; "total" ]
  in
  List.iter
    (fun (l : loop_report) ->
      Support.Table.add_row t
        [
          String.make (2 * (l.depth - 1)) ' ' ^ "%" ^ l.label;
          string_of_int l.tripcount;
          string_of_int l.unroll;
          string_of_int l.iteration_latency;
          (if l.pipelined then "yes" else "no");
          (match l.achieved_ii with Some ii -> string_of_int ii | None -> "-");
          string_of_int l.rec_mii;
          string_of_int l.total_latency;
        ])
    r.loops;
  Buffer.add_string b (Support.Table.render t);
  Buffer.add_char b '\n';
  Buffer.add_string b
    (Printf.sprintf "  Resources: BRAM_18K=%d DSP48=%d FF=%d LUT=%d\n"
       r.resources.bram r.resources.dsp r.resources.ff r.resources.lut);
  List.iter
    (fun (a : Directives.array_info) ->
      Buffer.add_string b
        (Printf.sprintf "  array %%%-10s dims=%s %s%s\n" a.Directives.aname
           (String.concat "x" (List.map string_of_int a.Directives.dims))
           (if a.Directives.local then "(local bram)" else "(interface bram)")
           (if a.Directives.partition_factor > 1 then
              Printf.sprintf " partition %s factor=%d dim=%d"
                a.Directives.partition_kind a.Directives.partition_factor
                a.Directives.partition_dim
            else "")))
    r.arrays;
  List.iter
    (fun w -> Buffer.add_string b (Printf.sprintf "  WARNING: %s\n" w))
    r.warnings;
  Buffer.contents b
