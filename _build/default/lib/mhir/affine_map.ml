(** Affine maps: [(d0, d1)[s0] -> (e0, e1, ...)], mirroring
    [mlir::AffineMap].  Used by [affine.for] bounds, [affine.load]/
    [affine.store] subscripts and [affine.apply]. *)

type t = {
  num_dims : int;
  num_syms : int;
  exprs : Affine_expr.t list;  (** one per result *)
}

let make ~num_dims ~num_syms exprs =
  List.iter
    (fun e ->
      if Affine_expr.max_dim e > num_dims then
        invalid_arg "Affine_map.make: expression uses out-of-range dim";
      if Affine_expr.max_sym e > num_syms then
        invalid_arg "Affine_map.make: expression uses out-of-range sym")
    exprs;
  { num_dims; num_syms; exprs }

(** The [n]-dimensional identity map [(d0, ..., dn-1) -> (d0, ..., dn-1)]. *)
let identity n =
  make ~num_dims:n ~num_syms:0 (List.init n (fun i -> Affine_expr.dim i))

(** A 0-input constant map [() -> (c)], the shape of constant loop bounds. *)
let constant c = make ~num_dims:0 ~num_syms:0 [ Affine_expr.const c ]

let num_results m = List.length m.exprs

let is_constant m =
  List.for_all (function Affine_expr.Const _ -> true | _ -> false) m.exprs

let as_constant m =
  match m.exprs with [ Affine_expr.Const c ] -> Some c | _ -> None

(** Evaluate all results given dim and symbol values. *)
let eval m ~dims ~syms =
  if Array.length dims <> m.num_dims then
    invalid_arg "Affine_map.eval: wrong number of dims";
  if Array.length syms <> m.num_syms then
    invalid_arg "Affine_map.eval: wrong number of syms";
  List.map (Affine_expr.eval ~dims ~syms) m.exprs

(** [compose f g] is the map applying [g] then [f]: the results of [g]
    become the dims of [f].  [g]'s symbols are appended after [f]'s. *)
let compose f g =
  if num_results g <> f.num_dims then
    invalid_arg "Affine_map.compose: arity mismatch";
  let dims = Array.of_list g.exprs in
  let syms = Array.init f.num_syms (fun i -> Affine_expr.sym i) in
  let exprs = List.map (Affine_expr.substitute ~dims ~syms) f.exprs in
  make ~num_dims:g.num_dims ~num_syms:(max f.num_syms g.num_syms) exprs

let to_string m =
  let dims = List.init m.num_dims (fun i -> "d" ^ string_of_int i) in
  let syms = List.init m.num_syms (fun i -> "s" ^ string_of_int i) in
  let symp = if syms = [] then "" else "[" ^ String.concat ", " syms ^ "]" in
  Printf.sprintf "affine_map<(%s)%s -> (%s)>"
    (String.concat ", " dims)
    symp
    (String.concat ", " (List.map Affine_expr.to_string m.exprs))

let pp fmt m = Format.pp_print_string fmt (to_string m)

let equal (a : t) (b : t) = a = b
