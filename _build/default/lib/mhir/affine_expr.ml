(** Affine expressions over dimension and symbol variables, mirroring
    [mlir::AffineExpr].

    Expressions are kept in a lightly-normalized form by the smart
    constructors ([add], [mul], ...): constants fold, [x + 0] and
    [x * 1] simplify, and sums of constants gravitate right.  Full
    canonicalization is not required for correctness — evaluation and
    flattening drive everything downstream. *)

type t =
  | Dim of int  (** [d0], [d1], ... — bound by the enclosing map *)
  | Sym of int  (** [s0], [s1], ... — map symbols *)
  | Const of int
  | Add of t * t
  | Mul of t * t
  | Mod of t * t  (** Euclidean modulo, rhs must be a positive constant *)
  | FloorDiv of t * t
  | CeilDiv of t * t

let dim i = Dim i
let sym i = Sym i
let const c = Const c

let rec add a b =
  match (a, b) with
  | Const 0, x | x, Const 0 -> x
  | Const x, Const y -> Const (x + y)
  | Add (x, Const c1), Const c2 -> add x (Const (c1 + c2))
  | Const _, x -> Add (x, a)
  | _ -> Add (a, b)

let mul a b =
  match (a, b) with
  | Const 0, _ | _, Const 0 -> Const 0
  | Const 1, x | x, Const 1 -> x
  | Const x, Const y -> Const (x * y)
  | Const _, x -> Mul (x, a)
  | _ -> Mul (a, b)

let sub a b = add a (mul b (Const (-1)))

let floordiv a b =
  match (a, b) with
  | _, Const 1 -> a
  | Const x, Const y when y > 0 ->
      Const (if x >= 0 then x / y else -(((-x) + y - 1) / y))
  | _ -> FloorDiv (a, b)

let ceildiv a b =
  match (a, b) with
  | _, Const 1 -> a
  | Const x, Const y when y > 0 ->
      Const (if x >= 0 then (x + y - 1) / y else -((-x) / y))
  | _ -> CeilDiv (a, b)

let modulo a b =
  match (a, b) with
  | _, Const 1 -> Const 0
  | Const x, Const y when y > 0 ->
      let r = x mod y in
      Const (if r < 0 then r + y else r)
  | _ -> Mod (a, b)

(** Evaluate with concrete dimension and symbol values. *)
let rec eval ~dims ~syms = function
  | Dim i ->
      if i >= Array.length dims then
        invalid_arg "Affine_expr.eval: dim out of range"
      else dims.(i)
  | Sym i ->
      if i >= Array.length syms then
        invalid_arg "Affine_expr.eval: sym out of range"
      else syms.(i)
  | Const c -> c
  | Add (a, b) -> eval ~dims ~syms a + eval ~dims ~syms b
  | Mul (a, b) -> eval ~dims ~syms a * eval ~dims ~syms b
  | Mod (a, b) ->
      let x = eval ~dims ~syms a and y = eval ~dims ~syms b in
      if y <= 0 then invalid_arg "Affine_expr.eval: mod by non-positive";
      let r = x mod y in
      if r < 0 then r + y else r
  | FloorDiv (a, b) ->
      let x = eval ~dims ~syms a and y = eval ~dims ~syms b in
      if y <= 0 then invalid_arg "Affine_expr.eval: floordiv by non-positive";
      if x >= 0 then x / y else -(((-x) + y - 1) / y)
  | CeilDiv (a, b) ->
      let x = eval ~dims ~syms a and y = eval ~dims ~syms b in
      if y <= 0 then invalid_arg "Affine_expr.eval: ceildiv by non-positive";
      if x >= 0 then (x + y - 1) / y else -((-x) / y)

(** Substitute expressions for dims and syms (map composition helper). *)
let rec substitute ~dims ~syms = function
  | Dim i -> dims.(i)
  | Sym i -> syms.(i)
  | Const c -> Const c
  | Add (a, b) -> add (substitute ~dims ~syms a) (substitute ~dims ~syms b)
  | Mul (a, b) -> mul (substitute ~dims ~syms a) (substitute ~dims ~syms b)
  | Mod (a, b) -> modulo (substitute ~dims ~syms a) (substitute ~dims ~syms b)
  | FloorDiv (a, b) ->
      floordiv (substitute ~dims ~syms a) (substitute ~dims ~syms b)
  | CeilDiv (a, b) ->
      ceildiv (substitute ~dims ~syms a) (substitute ~dims ~syms b)

let rec is_pure_affine = function
  | Dim _ | Sym _ | Const _ -> true
  | Add (a, b) -> is_pure_affine a && is_pure_affine b
  | Mul (a, b) -> (
      (is_pure_affine a && is_pure_affine b)
      &&
      match (a, b) with
      | Const _, _ | _, Const _ -> true
      | _ -> false)
  | Mod (a, b) | FloorDiv (a, b) | CeilDiv (a, b) -> (
      is_pure_affine a && match b with Const c -> c > 0 | _ -> false)

let rec max_dim = function
  | Dim i -> i + 1
  | Sym _ | Const _ -> 0
  | Add (a, b) | Mul (a, b) | Mod (a, b) | FloorDiv (a, b) | CeilDiv (a, b) ->
      max (max_dim a) (max_dim b)

let rec max_sym = function
  | Sym i -> i + 1
  | Dim _ | Const _ -> 0
  | Add (a, b) | Mul (a, b) | Mod (a, b) | FloorDiv (a, b) | CeilDiv (a, b) ->
      max (max_sym a) (max_sym b)

let rec to_string = function
  | Dim i -> "d" ^ string_of_int i
  | Sym i -> "s" ^ string_of_int i
  | Const c -> string_of_int c
  | Add (a, b) -> Printf.sprintf "(%s + %s)" (to_string a) (to_string b)
  | Mul (a, b) -> Printf.sprintf "(%s * %s)" (to_string a) (to_string b)
  | Mod (a, b) -> Printf.sprintf "(%s mod %s)" (to_string a) (to_string b)
  | FloorDiv (a, b) ->
      Printf.sprintf "(%s floordiv %s)" (to_string a) (to_string b)
  | CeilDiv (a, b) ->
      Printf.sprintf "(%s ceildiv %s)" (to_string a) (to_string b)

let pp fmt e = Format.pp_print_string fmt (to_string e)
