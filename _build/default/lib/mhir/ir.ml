(** Core IR structures: values, operations, blocks, regions, functions
    and modules.

    The design mirrors MLIR's generic operation form: an op is a name
    plus operands, results, an attribute dictionary and nested regions.
    Dialect semantics (what ["affine.for"] means) live in {!Dialect}
    and the per-dialect builders in {!Builder}.

    Control flow is structured only — every region holds exactly one
    block whose ops execute in order, with [affine.for]/[scf.for]/
    [scf.if] nesting via regions.  This matches the IR the paper's flow
    produces before lowering to LLVM (where real CFGs appear). *)

(** An SSA value.  [id] is unique within a function; [ty] is its type;
    [hint] is a printing hint (argument name etc.). *)
type value = { id : int; ty : Types.ty; hint : string }

type op = {
  name : string;  (** fully-qualified, e.g. ["affine.for"] *)
  operands : value list;
  results : value list;
  attrs : (string * Attr.t) list;
  regions : region list;
}

and block = { params : value list; ops : op list }
and region = { blocks : block list }

type func = {
  fname : string;
  args : value list;
  ret_tys : Types.ty list;
  body : region;
  fattrs : (string * Attr.t) list;  (** e.g. HLS array-partition directives *)
}

type modul = { funcs : func list }

(* ------------------------------------------------------------------ *)
(* Construction helpers                                               *)
(* ------------------------------------------------------------------ *)

let region ops = { blocks = [ { params = []; ops } ] }
let region1 ~params ops = { blocks = [ { params; ops } ] }

let entry_block (r : region) =
  match r.blocks with
  | [ b ] -> b
  | _ -> invalid_arg "Ir.entry_block: region must have exactly one block"

let find_func m name = List.find_opt (fun f -> f.fname = name) m.funcs

let find_func_exn m name =
  match find_func m name with
  | Some f -> f
  | None -> invalid_arg ("Ir.find_func_exn: no function " ^ name)

(* ------------------------------------------------------------------ *)
(* Traversal                                                          *)
(* ------------------------------------------------------------------ *)

(** Pre-order walk over every op in a region, recursing into nested
    regions. *)
let rec walk_region f (r : region) =
  List.iter (fun b -> List.iter (walk_op f) b.ops) r.blocks

and walk_op f (o : op) =
  f o;
  List.iter (walk_region f) o.regions

let walk_func f (fn : func) = walk_region f fn.body

(** Count ops (including nested) in a function. *)
let op_count fn =
  let n = ref 0 in
  walk_func (fun _ -> incr n) fn;
  !n

(** Bottom-up rewrite of every op in a region.  [f] receives an op whose
    regions have already been rewritten and returns its replacement
    op list (possibly empty for deletion, or more than one op). *)
let rec rewrite_region f (r : region) : region =
  { blocks = List.map (rewrite_block f) r.blocks }

and rewrite_block f (b : block) : block =
  let ops =
    List.concat_map
      (fun o ->
        let o = { o with regions = List.map (rewrite_region f) o.regions } in
        f o)
      b.ops
  in
  { b with ops }

let rewrite_func f (fn : func) = { fn with body = rewrite_region f fn.body }

(* ------------------------------------------------------------------ *)
(* Value maps                                                         *)
(* ------------------------------------------------------------------ *)

module Vmap = Map.Make (Int)

(** Replace operand uses according to [subst : value Vmap.t] throughout
    a region (results and block params are left alone). *)
let rec substitute_region subst (r : region) : region =
  let subst_value v =
    match Vmap.find_opt v.id subst with Some v' -> v' | None -> v
  in
  let subst_op (o : op) =
    {
      o with
      operands = List.map subst_value o.operands;
      regions = List.map (substitute_region subst) o.regions;
    }
  in
  {
    blocks =
      List.map
        (fun b -> { b with ops = List.map subst_op b.ops })
        r.blocks;
  }

(** All values used as operands (transitively) in a region. *)
let used_values (r : region) =
  let tbl = Hashtbl.create 64 in
  walk_region
    (fun o -> List.iter (fun v -> Hashtbl.replace tbl v.id ()) o.operands)
    r;
  tbl
