(** Operation attributes — compile-time constants attached to ops,
    mirroring MLIR's attribute dictionary. *)

type t =
  | Int of int
  | Float of float
  | Bool of bool
  | Str of string
  | Type of Types.ty
  | Map of Affine_map.t
  | List of t list

let rec to_string = function
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%h" f
  | Bool b -> string_of_bool b
  | Str s -> Printf.sprintf "%S" s
  | Type t -> Types.to_string t
  | Map m -> Affine_map.to_string m
  | List l -> "[" ^ String.concat ", " (List.map to_string l) ^ "]"

let pp fmt a = Format.pp_print_string fmt (to_string a)

(* Typed accessors: raise [Invalid_argument] on kind mismatch so dialect
   verifiers surface malformed attributes early. *)

let as_int = function Int i -> i | a -> invalid_arg ("Attr.as_int: " ^ to_string a)
let as_float = function Float f -> f | Int i -> float_of_int i | a -> invalid_arg ("Attr.as_float: " ^ to_string a)
let as_bool = function Bool b -> b | a -> invalid_arg ("Attr.as_bool: " ^ to_string a)
let as_str = function Str s -> s | a -> invalid_arg ("Attr.as_str: " ^ to_string a)
let as_type = function Type t -> t | a -> invalid_arg ("Attr.as_type: " ^ to_string a)
let as_map = function Map m -> m | a -> invalid_arg ("Attr.as_map: " ^ to_string a)
let as_list = function List l -> l | a -> invalid_arg ("Attr.as_list: " ^ to_string a)

(** Lookup in an attribute dictionary. *)
let find attrs key = List.assoc_opt key attrs

let find_exn attrs key =
  match find attrs key with
  | Some a -> a
  | None -> invalid_arg ("Attr.find_exn: missing attribute " ^ key)

let set attrs key v = (key, v) :: List.remove_assoc key attrs
