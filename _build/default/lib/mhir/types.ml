(** Type system of the multi-level IR (the MLIR analogue).

    Memrefs carry static shapes only: the adaptor paper targets
    statically-shaped HLS kernels, and Vitis requires static array
    bounds for BRAM mapping.  Dynamic dimensions are rejected at
    construction. *)

type ty =
  | I1
  | I32
  | I64
  | Index  (** platform-width integer used for loop induction / subscripts *)
  | F32
  | F64
  | Memref of int list * ty  (** static shape, element type *)

type fn_ty = { inputs : ty list; outputs : ty list }

let is_int = function I1 | I32 | I64 | Index -> true | _ -> false
let is_float = function F32 | F64 -> true | _ -> false
let is_scalar t = is_int t || is_float t
let is_memref = function Memref _ -> true | _ -> false

(** Bit-width of an integer type (Index counts as 64). *)
let int_width = function
  | I1 -> 1
  | I32 -> 32
  | I64 | Index -> 64
  | t -> invalid_arg "Types.int_width: not an integer type"
  [@@warning "-27"]

let memref ?(elem = F32) shape =
  List.iter
    (fun d ->
      if d <= 0 then invalid_arg "Types.memref: dimensions must be static and positive")
    shape;
  Memref (shape, elem)

(** Number of scalar elements in a memref type. *)
let memref_size = function
  | Memref (shape, _) -> List.fold_left ( * ) 1 shape
  | _ -> invalid_arg "Types.memref_size"

let rec to_string = function
  | I1 -> "i1"
  | I32 -> "i32"
  | I64 -> "i64"
  | Index -> "index"
  | F32 -> "f32"
  | F64 -> "f64"
  | Memref (shape, elem) ->
      Printf.sprintf "memref<%sx%s>"
        (String.concat "x" (List.map string_of_int shape))
        (to_string elem)

let pp fmt t = Format.pp_print_string fmt (to_string t)

let equal (a : ty) (b : ty) = a = b

let fn_to_string { inputs; outputs } =
  Printf.sprintf "(%s) -> (%s)"
    (String.concat ", " (List.map to_string inputs))
    (String.concat ", " (List.map to_string outputs))
