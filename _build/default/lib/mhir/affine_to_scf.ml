(** Lowering of the affine dialect into scf + arith + memref, mirroring
    MLIR's [-lower-affine].  After this pass a function contains no
    [affine.*] ops: loops become [scf.for] with explicit bound
    constants, and affine subscript maps are expanded into arithmetic.

    The direct-IR flow does not require this pass (lowering handles
    affine ops natively); it exists because the paper's pipeline mirrors
    the upstream MLIR pass stack, and it doubles as a differential
    testing target (interpret before vs after). *)

open Ir

let fail = Support.Err.fail ~pass:"mhir.affine_to_scf"

(** Mini-builder for pass-internal op creation: fresh ids continue from
    the function's maximum. *)
type ctx = { mutable next_id : int }

let make_ctx (f : func) =
  let m = ref 0 in
  let see (v : value) = if v.id >= !m then m := v.id + 1 in
  List.iter see f.args;
  walk_func
    (fun o ->
      List.iter see o.operands;
      List.iter see o.results;
      List.iter
        (fun r -> List.iter (fun b -> List.iter see b.params) r.blocks)
        o.regions)
    f;
  { next_id = !m }

let fresh ctx ty =
  let id = ctx.next_id in
  ctx.next_id <- ctx.next_id + 1;
  { id; ty; hint = "" }

let const_op ctx acc c =
  let r = fresh ctx Types.Index in
  acc :=
    {
      name = "arith.constant";
      operands = [];
      results = [ r ];
      attrs = [ ("value", Attr.Int c) ];
      regions = [];
    }
    :: !acc;
  r

let binop_op ctx acc name a b =
  let r = fresh ctx Types.Index in
  acc :=
    { name; operands = [ a; b ]; results = [ r ]; attrs = []; regions = [] }
    :: !acc;
  r

(** Expand an affine expression into arith ops appended to [acc]
    (reversed); returns the value holding the result. *)
let rec expand_expr ctx acc ~dims ~syms (e : Affine_expr.t) : value =
  match e with
  | Affine_expr.Const c -> const_op ctx acc c
  | Affine_expr.Dim i -> List.nth dims i
  | Affine_expr.Sym i -> List.nth syms i
  | Affine_expr.Add (a, b) ->
      binop_op ctx acc "arith.addi"
        (expand_expr ctx acc ~dims ~syms a)
        (expand_expr ctx acc ~dims ~syms b)
  | Affine_expr.Mul (a, b) ->
      binop_op ctx acc "arith.muli"
        (expand_expr ctx acc ~dims ~syms a)
        (expand_expr ctx acc ~dims ~syms b)
  | Affine_expr.Mod (a, b) ->
      (* Euclidean mod for non-negative subscripts: remsi suffices since
         loop ivs are non-negative in the kernels this stack handles. *)
      binop_op ctx acc "arith.remsi"
        (expand_expr ctx acc ~dims ~syms a)
        (expand_expr ctx acc ~dims ~syms b)
  | Affine_expr.FloorDiv (a, b) ->
      binop_op ctx acc "arith.divsi"
        (expand_expr ctx acc ~dims ~syms a)
        (expand_expr ctx acc ~dims ~syms b)
  | Affine_expr.CeilDiv (a, b) ->
      let va = expand_expr ctx acc ~dims ~syms a in
      let vb = expand_expr ctx acc ~dims ~syms b in
      let one = const_op ctx acc 1 in
      let bm1 = binop_op ctx acc "arith.subi" vb one in
      let sum = binop_op ctx acc "arith.addi" va bm1 in
      binop_op ctx acc "arith.divsi" sum vb

let split_map_operands (map : Affine_map.t) operands =
  let rec take n = function
    | l when n = 0 -> ([], l)
    | x :: tl ->
        let a, b = take (n - 1) tl in
        (x :: a, b)
    | [] -> fail "affine map operand list too short"
  in
  take map.Affine_map.num_dims operands

let expand_map ctx acc (map : Affine_map.t) operands : value list =
  let dims, syms = split_map_operands map operands in
  List.map (expand_expr ctx acc ~dims ~syms) map.Affine_map.exprs

let run_func (f : func) : func =
  let ctx = make_ctx f in
  let rewrite (o : op) : op list =
    match o.name with
    | "affine.apply" ->
        let map = Attr.as_map (Attr.find_exn o.attrs "map") in
        let acc = ref [] in
        let vs = expand_map ctx acc map o.operands in
        let result = List.hd o.results in
        let v = List.hd vs in
        (* Re-emit the final value under the op's original result id so
           downstream uses keep working. *)
        let copy =
          {
            name = "arith.addi";
            operands = [ v; const_op ctx acc 0 ];
            results = [ result ];
            attrs = [];
            regions = [];
          }
        in
        List.rev (copy :: !acc)
    | "affine.load" ->
        let map = Attr.as_map (Attr.find_exn o.attrs "map") in
        let mem = List.hd o.operands in
        let acc = ref [] in
        let idxs = expand_map ctx acc map (List.tl o.operands) in
        let load =
          {
            name = "memref.load";
            operands = mem :: idxs;
            results = o.results;
            attrs = [];
            regions = [];
          }
        in
        List.rev (load :: !acc)
    | "affine.store" -> (
        match o.operands with
        | v :: mem :: rest ->
            let map = Attr.as_map (Attr.find_exn o.attrs "map") in
            let acc = ref [] in
            let idxs = expand_map ctx acc map rest in
            let store =
              {
                name = "memref.store";
                operands = v :: mem :: idxs;
                results = [];
                attrs = [];
                regions = [];
              }
            in
            List.rev (store :: !acc)
        | _ -> fail "affine.store: malformed operands")
    | "affine.for" ->
        let lb_map = Attr.as_map (Attr.find_exn o.attrs "lower_map") in
        let ub_map = Attr.as_map (Attr.find_exn o.attrs "upper_map") in
        let step = Attr.as_int (Attr.find_exn o.attrs "step") in
        let lb_c =
          match Affine_map.as_constant lb_map with
          | Some c -> c
          | None -> fail "affine.for: symbolic lower bound unsupported"
        in
        let ub_c =
          match Affine_map.as_constant ub_map with
          | Some c -> c
          | None -> fail "affine.for: symbolic upper bound unsupported"
        in
        let acc = ref [] in
        let lb = const_op ctx acc lb_c in
        let ub = const_op ctx acc ub_c in
        let stv = const_op ctx acc step in
        (* keep HLS directive attrs on the scf.for *)
        let dir_attrs =
          List.filter (fun (k, _) -> String.length k > 4 && String.sub k 0 4 = "hls.") o.attrs
        in
        let scf =
          {
            name = "scf.for";
            operands = lb :: ub :: stv :: o.operands;
            results = o.results;
            attrs = dir_attrs;
            regions = o.regions;
          }
        in
        List.rev (scf :: !acc)
    | "affine.yield" -> [ { o with name = "scf.yield" } ]
    | _ -> [ o ]
  in
  rewrite_func rewrite f

let run (m : modul) : modul = { funcs = List.map run_func m.funcs }
