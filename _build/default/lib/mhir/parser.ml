(** Parser for the generic textual form produced by
    [Printer.module_to_string ~generic:true].

    The grammar is the MLIR generic-op syntax restricted to what the
    printer emits: single-block regions, quoted op names, explicit
    functional type signatures.  SSA ids are file-local per function;
    types are reconstructed from op signatures and checked for
    consistency. *)

type token =
  | Word of string  (** identifiers, keywords, [x32xf32] fragments *)
  | Int of int
  | Float of float
  | Str of string  (** double-quoted *)
  | Pct of int  (** [%42] *)
  | At of string  (** [@name] *)
  | Caret of string  (** [^bb] *)
  | Punct of char
  | Arrow  (** [->] *)
  | Eof

let fail fmt = Support.Err.fail ~pass:"mhir.parser" fmt

(* ------------------------------------------------------------------ *)
(* Tokenizer                                                          *)
(* ------------------------------------------------------------------ *)

let tokenize (src : string) : token array =
  let n = String.length src in
  let toks = ref [] in
  let i = ref 0 in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  let is_word_start c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
  in
  let is_word c =
    is_word_start c || (c >= '0' && c <= '9') || c = '.' || c = '_'
  in
  let is_digit c = c >= '0' && c <= '9' in
  let read_while pred =
    let start = !i in
    while !i < n && pred src.[!i] do incr i done;
    String.sub src start (!i - start)
  in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '/' && peek 1 = Some '/' then
      while !i < n && src.[!i] <> '\n' do incr i done
    else if is_word_start c then begin
      let w = read_while is_word in
      toks := Word w :: !toks
    end
    else if is_digit c then begin
      let start = !i in
      let _ = read_while is_digit in
      (* decimal part / exponent *)
      let is_float = ref false in
      if !i < n && src.[!i] = '.' && (match peek 1 with Some d -> is_digit d | None -> false)
      then begin
        is_float := true;
        incr i;
        let _ = read_while is_digit in
        ()
      end;
      if !i < n && (src.[!i] = 'e' || src.[!i] = 'E') then begin
        let save = !i in
        incr i;
        if !i < n && (src.[!i] = '+' || src.[!i] = '-') then incr i;
        if !i < n && is_digit src.[!i] then begin
          is_float := true;
          let _ = read_while is_digit in
          ()
        end
        else i := save
      end;
      let lit = String.sub src start (!i - start) in
      if !is_float then toks := Float (float_of_string lit) :: !toks
      else toks := Int (int_of_string lit) :: !toks
    end
    else if c = '"' then begin
      incr i;
      let buf = Buffer.create 16 in
      let rec go () =
        if !i >= n then fail "unterminated string literal"
        else
          match src.[!i] with
          | '"' -> incr i
          | '\\' ->
              if !i + 1 >= n then fail "unterminated escape";
              (match src.[!i + 1] with
              | 'n' -> Buffer.add_char buf '\n'
              | 't' -> Buffer.add_char buf '\t'
              | ch -> Buffer.add_char buf ch);
              i := !i + 2;
              go ()
          | ch ->
              Buffer.add_char buf ch;
              incr i;
              go ()
      in
      go ();
      toks := Str (Buffer.contents buf) :: !toks
    end
    else if c = '%' then begin
      incr i;
      let digits = read_while is_digit in
      if digits = "" then fail "expected SSA id after %%";
      toks := Pct (int_of_string digits) :: !toks
    end
    else if c = '@' then begin
      incr i;
      toks := At (read_while is_word) :: !toks
    end
    else if c = '^' then begin
      incr i;
      toks := Caret (read_while is_word) :: !toks
    end
    else if c = '-' && peek 1 = Some '>' then begin
      i := !i + 2;
      toks := Arrow :: !toks
    end
    else begin
      incr i;
      toks := Punct c :: !toks
    end
  done;
  Array.of_list (List.rev (Eof :: !toks))

(* ------------------------------------------------------------------ *)
(* Token stream                                                       *)
(* ------------------------------------------------------------------ *)

type stream = { toks : token array; mutable pos : int }

let cur s = s.toks.(s.pos)
let advance s = s.pos <- s.pos + 1

let token_str = function
  | Word w -> w
  | Int i -> string_of_int i
  | Float f -> string_of_float f
  | Str st -> Printf.sprintf "%S" st
  | Pct i -> "%" ^ string_of_int i
  | At a -> "@" ^ a
  | Caret c -> "^" ^ c
  | Punct c -> String.make 1 c
  | Arrow -> "->"
  | Eof -> "<eof>"

let expect s tok =
  if cur s = tok then advance s
  else fail "expected %s, found %s" (token_str tok) (token_str (cur s))

let expect_word s w = expect s (Word w)
let expect_punct s c = expect s (Punct c)

let eat s tok = if cur s = tok then (advance s; true) else false

(* ------------------------------------------------------------------ *)
(* Types                                                              *)
(* ------------------------------------------------------------------ *)

let scalar_of_string = function
  | "i1" -> Types.I1
  | "i32" -> Types.I32
  | "i64" -> Types.I64
  | "index" -> Types.Index
  | "f32" -> Types.F32
  | "f64" -> Types.F64
  | s -> fail "unknown scalar type %s" s

let parse_ty s =
  match cur s with
  | Word "memref" ->
      advance s;
      expect_punct s '<';
      (* Shape fragments arrive as Int and Word tokens: [32]; [x32xf32]. *)
      let buf = Buffer.create 16 in
      let rec collect () =
        match cur s with
        | Punct '>' -> advance s
        | Int i ->
            Buffer.add_string buf (string_of_int i);
            advance s;
            collect ()
        | Word w ->
            Buffer.add_string buf w;
            advance s;
            collect ()
        | t -> fail "unexpected token in memref type: %s" (token_str t)
      in
      collect ();
      let parts = String.split_on_char 'x' (Buffer.contents buf) in
      let parts = List.filter (fun p -> p <> "") parts in
      (match List.rev parts with
      | elem :: dims_rev when dims_rev <> [] ->
          let dims = List.rev_map int_of_string dims_rev in
          Types.Memref (dims, scalar_of_string elem)
      | _ -> fail "malformed memref type")
  | Word w ->
      advance s;
      scalar_of_string w
  | t -> fail "expected a type, found %s" (token_str t)

let parse_ty_list s =
  expect_punct s '(';
  let rec go acc =
    match cur s with
    | Punct ')' ->
        advance s;
        List.rev acc
    | _ ->
        let t = parse_ty s in
        if eat s (Punct ',') then go (t :: acc)
        else begin
          expect_punct s ')';
          List.rev (t :: acc)
        end
  in
  go []

(* ------------------------------------------------------------------ *)
(* Affine maps                                                        *)
(* ------------------------------------------------------------------ *)

let parse_affine_map s =
  (* "affine_map" has been consumed by the caller. *)
  expect_punct s '<';
  expect_punct s '(';
  let rec parse_vars acc close =
    match cur s with
    | Punct c when c = close ->
        advance s;
        List.rev acc
    | Word w ->
        advance s;
        if eat s (Punct ',') then parse_vars (w :: acc) close
        else begin
          expect_punct s close;
          List.rev (w :: acc)
        end
    | t -> fail "expected dim/sym name, found %s" (token_str t)
  in
  let dims = parse_vars [] ')' in
  let syms = if eat s (Punct '[') then parse_vars [] ']' else [] in
  expect s Arrow;
  expect_punct s '(';
  let var_index kind lst name =
    let rec idx i = function
      | [] -> fail "unknown %s variable %s" kind name
      | x :: _ when x = name -> i
      | _ :: tl -> idx (i + 1) tl
    in
    idx 0 lst
  in
  let rec parse_expr () =
    let lhs = parse_term () in
    parse_expr_rest lhs
  and parse_expr_rest lhs =
    match cur s with
    | Punct '+' ->
        advance s;
        parse_expr_rest (Affine_expr.add lhs (parse_term ()))
    | Punct '-' ->
        advance s;
        parse_expr_rest (Affine_expr.sub lhs (parse_term ()))
    | _ -> lhs
  and parse_term () =
    let lhs = parse_factor () in
    parse_term_rest lhs
  and parse_term_rest lhs =
    match cur s with
    | Punct '*' ->
        advance s;
        parse_term_rest (Affine_expr.mul lhs (parse_factor ()))
    | Word "mod" ->
        advance s;
        parse_term_rest (Affine_expr.modulo lhs (parse_factor ()))
    | Word "floordiv" ->
        advance s;
        parse_term_rest (Affine_expr.floordiv lhs (parse_factor ()))
    | Word "ceildiv" ->
        advance s;
        parse_term_rest (Affine_expr.ceildiv lhs (parse_factor ()))
    | _ -> lhs
  and parse_factor () =
    match cur s with
    | Int i ->
        advance s;
        Affine_expr.const i
    | Punct '-' ->
        advance s;
        Affine_expr.mul (Affine_expr.const (-1)) (parse_factor ())
    | Punct '(' ->
        advance s;
        let e = parse_expr () in
        expect_punct s ')';
        e
    | Word w when List.mem w dims ->
        advance s;
        Affine_expr.dim (var_index "dim" dims w)
    | Word w when List.mem w syms ->
        advance s;
        Affine_expr.sym (var_index "sym" syms w)
    | t -> fail "unexpected token in affine expression: %s" (token_str t)
  in
  let rec parse_results acc =
    let e = parse_expr () in
    if eat s (Punct ',') then parse_results (e :: acc)
    else begin
      expect_punct s ')';
      List.rev (e :: acc)
    end
  in
  let exprs = parse_results [] in
  expect_punct s '>';
  Affine_map.make ~num_dims:(List.length dims) ~num_syms:(List.length syms)
    exprs

(* ------------------------------------------------------------------ *)
(* Attributes                                                         *)
(* ------------------------------------------------------------------ *)

let rec parse_attr_value s : Attr.t =
  match cur s with
  | Int i ->
      advance s;
      Attr.Int i
  | Float f ->
      advance s;
      Attr.Float f
  | Punct '-' -> (
      advance s;
      match cur s with
      | Int i ->
          advance s;
          Attr.Int (-i)
      | Float f ->
          advance s;
          Attr.Float (-.f)
      | t -> fail "expected number after '-', found %s" (token_str t))
  | Word "true" ->
      advance s;
      Attr.Bool true
  | Word "false" ->
      advance s;
      Attr.Bool false
  | Str st ->
      advance s;
      Attr.Str st
  | Word "type" ->
      advance s;
      expect_punct s '(';
      let t = parse_ty s in
      expect_punct s ')';
      Attr.Type t
  | Word "affine_map" ->
      advance s;
      Attr.Map (parse_affine_map s)
  | Punct '[' ->
      advance s;
      let rec go acc =
        if eat s (Punct ']') then List.rev acc
        else
          let v = parse_attr_value s in
          if eat s (Punct ',') then go (v :: acc)
          else begin
            expect_punct s ']';
            List.rev (v :: acc)
          end
      in
      Attr.List (go [])
  | t -> fail "unexpected attribute value: %s" (token_str t)

let parse_attr_dict s =
  if not (eat s (Punct '{')) then []
  else
    let rec go acc =
      if eat s (Punct '}') then List.rev acc
      else
        match cur s with
        | Word key ->
            advance s;
            expect_punct s '=';
            let v = parse_attr_value s in
            let acc = (key, v) :: acc in
            if eat s (Punct ',') then go acc
            else begin
              expect_punct s '}';
              List.rev acc
            end
        | t -> fail "expected attribute key, found %s" (token_str t)
    in
    go []

(* ------------------------------------------------------------------ *)
(* Ops and functions                                                  *)
(* ------------------------------------------------------------------ *)

(** Per-function SSA environment: external ids -> values. *)
type env = { values : (int, Ir.value) Hashtbl.t }

let get_value env id ty =
  match Hashtbl.find_opt env.values id with
  | Some v ->
      if not (Types.equal v.Ir.ty ty) then
        fail "SSA value %%%d used at type %s but defined at type %s" id
          (Types.to_string ty)
          (Types.to_string v.Ir.ty);
      v
  | None ->
      let v = { Ir.id; ty; hint = "" } in
      Hashtbl.replace env.values id v;
      v

let parse_id_list s =
  (* %0, %1, ... — returns raw ids *)
  let rec go acc =
    match cur s with
    | Pct id ->
        advance s;
        if eat s (Punct ',') then go (id :: acc) else List.rev (id :: acc)
    | _ -> List.rev acc
  in
  go []

let rec parse_op env s : Ir.op =
  (* results *)
  let result_ids =
    match cur s with
    | Pct _ ->
        let ids = parse_id_list s in
        expect_punct s '=';
        ids
    | _ -> []
  in
  let name =
    match cur s with
    | Str n ->
        advance s;
        n
    | t -> fail "expected quoted op name, found %s" (token_str t)
  in
  expect_punct s '(';
  let operand_ids =
    if eat s (Punct ')') then []
    else
      let ids = parse_id_list s in
      expect_punct s ')';
      ids
  in
  let attrs = parse_attr_dict s in
  let regions =
    if cur s = Punct '(' && s.toks.(s.pos + 1) = Punct '{' then begin
      advance s;
      let rec go acc =
        let r = parse_region env s in
        if eat s (Punct ',') then go (r :: acc)
        else begin
          expect_punct s ')';
          List.rev (r :: acc)
        end
      in
      go []
    end
    else []
  in
  expect_punct s ':';
  let operand_tys = parse_ty_list s in
  expect s Arrow;
  let result_tys = parse_ty_list s in
  if List.length operand_tys <> List.length operand_ids then
    fail "op %s: %d operands but %d operand types" name
      (List.length operand_ids) (List.length operand_tys);
  if List.length result_tys <> List.length result_ids then
    fail "op %s: %d results but %d result types" name (List.length result_ids)
      (List.length result_tys);
  let operands = List.map2 (get_value env) operand_ids operand_tys in
  let results = List.map2 (get_value env) result_ids result_tys in
  { Ir.name; operands; results; attrs; regions }

and parse_region env s : Ir.region =
  expect_punct s '{';
  (match cur s with
  | Caret _ -> advance s
  | t -> fail "expected ^bb block label, found %s" (token_str t));
  expect_punct s '(';
  let rec parse_params acc =
    if eat s (Punct ')') then List.rev acc
    else
      match cur s with
      | Pct id ->
          advance s;
          expect_punct s ':';
          let ty = parse_ty s in
          let v = get_value env id ty in
          if eat s (Punct ',') then parse_params (v :: acc)
          else begin
            expect_punct s ')';
            List.rev (v :: acc)
          end
      | t -> fail "expected block parameter, found %s" (token_str t)
  in
  let params = parse_params [] in
  expect_punct s ':';
  let rec parse_ops acc =
    if eat s (Punct '}') then List.rev acc
    else
      let op = parse_op env s in
      parse_ops (op :: acc)
  in
  let ops = parse_ops [] in
  { Ir.blocks = [ { Ir.params; ops } ] }

let parse_func s : Ir.func =
  expect_word s "func.func";
  let fname =
    match cur s with
    | At n ->
        advance s;
        n
    | t -> fail "expected @function-name, found %s" (token_str t)
  in
  let env = { values = Hashtbl.create 64 } in
  expect_punct s '(';
  let rec parse_args acc =
    if eat s (Punct ')') then List.rev acc
    else
      match cur s with
      | Pct id ->
          advance s;
          expect_punct s ':';
          let ty = parse_ty s in
          let v = get_value env id ty in
          if eat s (Punct ',') then parse_args (v :: acc)
          else begin
            expect_punct s ')';
            List.rev (v :: acc)
          end
      | t -> fail "expected function argument, found %s" (token_str t)
  in
  let args = parse_args [] in
  expect s Arrow;
  let ret_tys = parse_ty_list s in
  let fattrs =
    if cur s = Word "attributes" then begin
      advance s;
      parse_attr_dict s
    end
    else []
  in
  expect_punct s '{';
  let rec parse_ops acc =
    if eat s (Punct '}') then List.rev acc
    else
      let op = parse_op env s in
      parse_ops (op :: acc)
  in
  let ops = parse_ops [] in
  { Ir.fname; args; ret_tys; body = Ir.region1 ~params:[] ops; fattrs }

(** Parse a whole module from the generic textual form. *)
let parse_module (src : string) : Ir.modul =
  let s = { toks = tokenize src; pos = 0 } in
  expect_word s "module";
  expect_punct s '{';
  let rec go acc =
    match cur s with
    | Punct '}' ->
        advance s;
        List.rev acc
    | Word "func.func" -> go (parse_func s :: acc)
    | t -> fail "expected func.func or '}', found %s" (token_str t)
  in
  let funcs = go [] in
  (match cur s with
  | Eof -> ()
  | t -> fail "trailing input after module: %s" (token_str t));
  { Ir.funcs }
