lib/mhir/affine_to_scf.ml: Affine_expr Affine_map Attr Ir List String Support Types
