lib/mhir/canonicalize.ml: Attr Dialect Float Hashtbl Ir List
