lib/mhir/parser.ml: Affine_expr Affine_map Array Attr Buffer Hashtbl Ir List Printf String Support Types
