lib/mhir/affine_map.ml: Affine_expr Array Format List Printf String
