lib/mhir/dialect.ml: List String
