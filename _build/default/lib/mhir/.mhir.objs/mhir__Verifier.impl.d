lib/mhir/verifier.ml: Affine_map Attr Dialect Hashtbl Ir List Support Types
