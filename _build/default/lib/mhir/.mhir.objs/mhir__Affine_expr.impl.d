lib/mhir/affine_expr.ml: Array Format Printf
