lib/mhir/loop_unroll.ml: Affine_expr Affine_map Attr Hashtbl Ir List Support Types
