lib/mhir/attr.ml: Affine_map Format List Printf String Types
