lib/mhir/types.ml: Format List Printf String
