lib/mhir/printer.ml: Affine_map Attr Buffer Ir List Printf String Types
