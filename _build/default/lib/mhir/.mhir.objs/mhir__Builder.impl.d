lib/mhir/builder.ml: Affine_map Attr Ir List Support Types
