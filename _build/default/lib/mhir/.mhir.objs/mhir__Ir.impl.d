lib/mhir/ir.ml: Attr Hashtbl Int List Map Types
