lib/mhir/interp.ml: Affine_map Array Attr Float Hashtbl Ir List Support Types
