(** Multi-level-IR loop unrolling — a cross-layer optimization in the
    abstract's sense: transforming at the {e affine} level (where trip
    counts and subscripts are still symbolic) instead of asking the HLS
    backend to replicate the lowered data path.

    [unroll_func ~factor f] unrolls every innermost [affine.for] whose
    trip count is a multiple of [factor]: the step is scaled and the
    body cloned [factor] times with the induction variable offset by
    [k·step] per clone.  Loop-carried values chain through the clones.
    Loops whose trip count is not divisible by the factor are left
    untouched (no epilogue generation — mirroring the common HLS
    restriction that unroll factors divide trip counts). *)

open Ir

let fail = Support.Err.fail ~pass:"mhir.loop_unroll"

type ctx = { mutable next_id : int }

let make_ctx (f : func) =
  let m = ref 0 in
  let see (v : value) = if v.id >= !m then m := v.id + 1 in
  List.iter see f.args;
  walk_func
    (fun o ->
      List.iter see o.operands;
      List.iter see o.results;
      List.iter
        (fun r -> List.iter (fun b -> List.iter see b.params) r.blocks)
        o.regions)
    f;
  { next_id = !m }

let fresh ctx ty =
  let id = ctx.next_id in
  ctx.next_id <- ctx.next_id + 1;
  { id; ty; hint = "" }

(** Clone an op list with a value substitution map ([env] maps original
    value ids to replacement values).  Results and block params get
    fresh ids; the map is extended as we go. *)
let rec clone_ops ctx (env : (int, value) Hashtbl.t) (ops : op list) : op list =
  List.map
    (fun (o : op) ->
      let sub (v : value) =
        match Hashtbl.find_opt env v.id with Some v' -> v' | None -> v
      in
      let operands = List.map sub o.operands in
      let results =
        List.map
          (fun (r : value) ->
            let r' = fresh ctx r.ty in
            Hashtbl.replace env r.id r';
            r')
          o.results
      in
      let regions =
        List.map
          (fun (r : region) ->
            {
              blocks =
                List.map
                  (fun (b : block) ->
                    let params =
                      List.map
                        (fun (p : value) ->
                          let p' = fresh ctx p.ty in
                          Hashtbl.replace env p.id p';
                          p')
                        b.params
                    in
                    { params; ops = clone_ops ctx env b.ops })
                  r.blocks;
            })
          o.regions
      in
      { o with operands; results; regions })
    ops

(** Is this loop innermost (no nested affine/scf loops)? *)
let innermost (o : op) =
  let nested = ref false in
  List.iter
    (walk_region (fun inner ->
         if inner.name = "affine.for" || inner.name = "scf.for" then
           nested := true))
    o.regions;
  not !nested

let unroll_op ctx ~factor (o : op) : op list =
  if o.name <> "affine.for" || factor <= 1 || not (innermost o) then [ o ]
  else
    let lb_map = Attr.as_map (Attr.find_exn o.attrs "lower_map") in
    let ub_map = Attr.as_map (Attr.find_exn o.attrs "upper_map") in
    let step = Attr.as_int (Attr.find_exn o.attrs "step") in
    match (Affine_map.as_constant lb_map, Affine_map.as_constant ub_map) with
    | Some lb, Some ub when (ub - lb) mod (step * factor) = 0 && ub > lb ->
        let blk = entry_block (List.hd o.regions) in
        let iv, iter_params =
          match blk.params with
          | iv :: rest -> (iv, rest)
          | [] -> fail "affine.for without induction variable"
        in
        (* new loop: same bounds, step scaled by factor *)
        let new_iv = fresh ctx Types.Index in
        let new_iters = List.map (fun (p : value) -> fresh ctx p.ty) iter_params in
        (* build the body: factor clones, iv_k = new_iv + k*step,
           carried values chained through the clones *)
        let body_ops = ref [] in
        let carried = ref new_iters in
        for k = 0 to factor - 1 do
          let env = Hashtbl.create 32 in
          (* iv substitution: new_iv + k*step via affine.apply *)
          let iv_k =
            if k = 0 then new_iv
            else begin
              let r = fresh ctx Types.Index in
              body_ops :=
                {
                  name = "affine.apply";
                  operands = [ new_iv ];
                  results = [ r ];
                  attrs =
                    [
                      ( "map",
                        Attr.Map
                          (Affine_map.make ~num_dims:1 ~num_syms:0
                             [
                               Affine_expr.add (Affine_expr.dim 0)
                                 (Affine_expr.const (k * step));
                             ]) );
                    ];
                  regions = [];
                }
                :: !body_ops;
              r
            end
          in
          Hashtbl.replace env iv.id iv_k;
          List.iter2
            (fun (p : value) c -> Hashtbl.replace env p.id c)
            iter_params !carried;
          (* clone everything except the terminator *)
          let rec split_last acc = function
            | [ last ] -> (List.rev acc, last)
            | x :: tl -> split_last (x :: acc) tl
            | [] -> fail "empty loop body"
          in
          let body, yield = split_last [] blk.ops in
          let cloned = clone_ops ctx env body in
          body_ops := List.rev_append cloned !body_ops;
          (* next clone's carried values = this clone's yields *)
          carried :=
            List.map
              (fun (y : value) ->
                match Hashtbl.find_opt env y.id with
                | Some v -> v
                | None -> y (* defined outside the loop *))
              yield.operands
        done;
        let yield_op =
          {
            name = "affine.yield";
            operands = !carried;
            results = [];
            attrs = [];
            regions = [];
          }
        in
        (* the loop keeps its original result values, so downstream
           uses need no substitution *)
        [
          {
            o with
            attrs = Attr.set o.attrs "step" (Attr.Int (step * factor));
            regions =
              [
                region1
                  ~params:(new_iv :: new_iters)
                  (List.rev (yield_op :: !body_ops));
              ];
          };
        ]
    | _ -> [ o ]

(** Unroll every innermost [affine.for] in [f] by [factor]. *)
let unroll_func ~factor (f : func) : func =
  let ctx = make_ctx f in
  rewrite_func (unroll_op ctx ~factor) f

let run ~factor (m : modul) : modul =
  { funcs = List.map (unroll_func ~factor) m.funcs }
