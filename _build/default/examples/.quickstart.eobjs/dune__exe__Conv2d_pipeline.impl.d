examples/conv2d_pipeline.ml: Adaptor Array Float Flow Hls_backend List Llvmir Printf Workloads
