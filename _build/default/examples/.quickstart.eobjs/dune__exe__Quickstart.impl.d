examples/quickstart.ml: Adaptor Flow Hls_backend List Printf String Workloads
