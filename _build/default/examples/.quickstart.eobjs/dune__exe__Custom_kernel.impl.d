examples/custom_kernel.ml: Adaptor Affine_expr Affine_map Array Attr Builder Float Flow Hls_backend Ir List Llvmir Mhir Printer Printf Types Verifier
