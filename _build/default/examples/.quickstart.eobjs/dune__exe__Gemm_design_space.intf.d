examples/gemm_design_space.mli:
