examples/ir_tour.ml: Adaptor Array Attr Builder Hls_backend Ir List Llvmir Lowering Mhir Printer Printf String Types Verifier
