examples/ir_tour.mli:
