examples/conv2d_pipeline.mli:
