examples/quickstart.mli:
