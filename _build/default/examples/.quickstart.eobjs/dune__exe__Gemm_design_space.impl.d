examples/gemm_design_space.ml: Flow Hls_backend List Printf Support Workloads
