(** Benchmark harness: regenerates every table and figure of the
    evaluation (see DESIGN.md / EXPERIMENTS.md for the experiment
    index).

    Usage:
      dune exec bench/main.exe            # everything
      dune exec bench/main.exe table2     # one experiment
      dune exec bench/main.exe -- --list  # list experiment ids

    Latency/resource numbers come from the deterministic HLS estimator;
    Table 4's compile times are measured with Bechamel. *)

module K = Workloads.Kernels
module E = Hls_backend.Estimate
module T = Support.Table
module D = Mhls_driver.Driver

let kernels = K.all ()

(* One shared batch over every kernel x both flows, compiled through
   the parallel batch driver; table2/table3/fig1 all read from it, so
   each flow runs exactly once per kernel no matter how many
   experiments are selected. *)
let flow_batch =
  lazy
    (let js =
       List.concat_map
         (fun k ->
           List.map
             (fun flow -> D.job ~flow ~kernel:k.K.kname K.pipelined)
             [ Flow.Direct_ir; Flow.Hls_cpp ])
         kernels
     in
     D.run_batch ~jobs:(Mhls_driver.Pool.default_jobs ()) js)

let flow_report kname flow : E.report =
  let b = Lazy.force flow_batch in
  let o =
    List.find
      (fun (o : D.outcome) ->
        o.D.o_job.D.kernel = kname && o.D.o_job.D.flow = flow)
      b.D.outcomes
  in
  match o.D.o_qor with
  | Ok r -> r
  | Error ds -> raise (Support.Diag.Failed ds)

(* benches are a process boundary: escalate front-end diagnostics *)
let frontend_exn ?pipeline m =
  match Flow.direct_ir_frontend ?pipeline m with
  | Ok r -> r
  | Error ds -> raise (Support.Diag.Failed ds)

let hdr title =
  Printf.printf "\n==================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "==================================================\n"

let inner_ii (r : E.report) =
  List.fold_left
    (fun acc (l : E.loop_report) ->
      match l.E.achieved_ii with Some ii -> max acc ii | None -> acc)
    0 r.E.loops

(* ------------------------------------------------------------------ *)
(* Table 1: the syntax gap                                            *)
(* ------------------------------------------------------------------ *)

(** HLS-incompatible constructs in the raw MLIR-lowered IR, per kernel,
    and after the adaptor (must be zero). *)
let table1 () =
  hdr "Table 1: unsupported-syntax gap (constructs per kernel)";
  let t =
    T.create
      ~aligns:[ T.Left; T.Right; T.Right; T.Right; T.Right; T.Right; T.Right ]
      [ "kernel"; "opaque-ptr"; "descriptor"; "intrinsic"; "loop-md"; "total";
        "after adaptor" ]
  in
  List.iter
    (fun k ->
      let m = k.K.build K.pipelined in
      let lm = Lowering.Lower.lower_module m in
      let lm = fst (Llvmir.Pass.run_pipeline Llvmir.Pass.default_pipeline lm) in
      let issues = Adaptor.Compat.check lm in
      let count kind =
        List.length
          (List.filter
             (fun i -> Adaptor.Compat.kind_name i.Adaptor.Compat.kind = kind)
             issues)
      in
      let adapted, _ = Adaptor.run_exn lm in
      let after = List.length (Adaptor.Compat.check adapted) in
      T.add_row t
        [
          k.K.kname;
          string_of_int (count "opaque-pointer");
          string_of_int (count "memref-descriptor");
          string_of_int (count "modern-intrinsic");
          string_of_int (count "loop-metadata");
          string_of_int (List.length issues);
          string_of_int after;
        ])
    kernels;
  T.print t;
  print_endline
    "(raw MLIR-lowered LLVM IR is rejected outright by the Vitis-era\n\
    \ middle-end; the adaptor closes the gap to zero)"

(* ------------------------------------------------------------------ *)
(* Table 2: latency, both flows                                       *)
(* ------------------------------------------------------------------ *)

let table2 () =
  hdr "Table 2: latency (cycles), direct-IR flow vs HLS C++ flow";
  let t =
    T.create
      ~aligns:[ T.Left; T.Right; T.Right; T.Right; T.Right; T.Right ]
      [ "kernel"; "direct-IR"; "HLS C++"; "ratio"; "II(dir)"; "II(cpp)" ]
  in
  List.iter
    (fun k ->
      let da = flow_report k.K.kname Flow.Direct_ir in
      let cb = flow_report k.K.kname Flow.Hls_cpp in
      T.add_row t
        [
          k.K.kname;
          string_of_int da.E.latency;
          string_of_int cb.E.latency;
          Printf.sprintf "%.3f"
            (float_of_int cb.E.latency /. float_of_int da.E.latency);
          string_of_int (inner_ii da);
          string_of_int (inner_ii cb);
        ])
    kernels;
  T.print t;
  print_endline
    "(paper claim: the direct-IR flow achieves comparable performance;\n\
    \ ratio = C++ latency / direct-IR latency, 1.000 = identical)"

(* ------------------------------------------------------------------ *)
(* Table 3: resources, both flows                                     *)
(* ------------------------------------------------------------------ *)

let table3 () =
  hdr "Table 3: resource usage, direct-IR (A) vs HLS C++ (B)";
  let t =
    T.create
      ~aligns:
        [ T.Left; T.Right; T.Right; T.Right; T.Right; T.Right; T.Right;
          T.Right; T.Right ]
      [ "kernel"; "BRAM(A)"; "BRAM(B)"; "DSP(A)"; "DSP(B)"; "FF(A)"; "FF(B)";
        "LUT(A)"; "LUT(B)" ]
  in
  List.iter
    (fun k ->
      let ra = (flow_report k.K.kname Flow.Direct_ir).E.resources in
      let rb = (flow_report k.K.kname Flow.Hls_cpp).E.resources in
      T.add_row t
        [
          k.K.kname;
          string_of_int ra.E.bram;
          string_of_int rb.E.bram;
          string_of_int ra.E.dsp;
          string_of_int rb.E.dsp;
          string_of_int ra.E.ff;
          string_of_int rb.E.ff;
          string_of_int ra.E.lut;
          string_of_int rb.E.lut;
        ])
    kernels;
  T.print t

(* ------------------------------------------------------------------ *)
(* Figure 1: latency-ratio chart                                      *)
(* ------------------------------------------------------------------ *)

let fig1 () =
  hdr "Figure 1: latency ratio (HLS C++ / direct-IR) per kernel";
  List.iter
    (fun k ->
      let da = flow_report k.K.kname Flow.Direct_ir in
      let cb = flow_report k.K.kname Flow.Hls_cpp in
      let r = float_of_int cb.E.latency /. float_of_int da.E.latency in
      let bar = String.make (max 1 (int_of_float (r *. 40.0))) '#' in
      Printf.printf "%-10s %5.3f |%s\n" k.K.kname r bar)
    kernels;
  print_endline "(1.000 = parity; >1 means the direct-IR flow is faster)"

(* ------------------------------------------------------------------ *)
(* Figure 2: directive sweep on gemm                                  *)
(* ------------------------------------------------------------------ *)

let fig2 () =
  hdr "Figure 2: gemm latency vs directives (both flows)";
  let t =
    T.create
      ~aligns:[ T.Left; T.Right; T.Right; T.Right; T.Right ]
      [ "directives"; "direct-IR"; "HLS C++"; "II(dir)"; "II(cpp)" ]
  in
  let cases =
    [
      ("none", K.no_directives);
      ("pipeline inner", K.pipelined);
      ("pipeline inner + unroll 2", { K.pipelined with K.unroll = Some 2 });
      ("pipeline inner + unroll 4", { K.pipelined with K.unroll = Some 4 });
      ("pipeline middle + full unroll", K.optimized ~factor:1 ~parts:[] ());
      ("  + partition factor 2", K.optimized ~factor:2 ~parts:[ ("A", 2); ("B", 1) ] ());
      ("  + partition factor 4", K.optimized ~factor:4 ~parts:[ ("A", 2); ("B", 1) ] ());
      ("  + partition factor 8", K.optimized ~factor:8 ~parts:[ ("A", 2); ("B", 1) ] ());
    ]
  in
  List.iter
    (fun (name, d) ->
      let c = Flow.compare_flows ~directives:d (K.gemm ()) in
      T.add_row t
        [
          name;
          string_of_int c.Flow.direct.Flow.hls.E.latency;
          string_of_int c.Flow.cpp.Flow.hls.E.latency;
          string_of_int (inner_ii c.Flow.direct.Flow.hls);
          string_of_int (inner_ii c.Flow.cpp.Flow.hls);
        ])
    cases;
  T.print t

(* ------------------------------------------------------------------ *)
(* Figure 3: detail retention (partitioning through flat views)       *)
(* ------------------------------------------------------------------ *)

let fig3 () =
  hdr "Figure 3: array partitioning vs delinearization (gemm + conv2d)";
  let t =
    T.create
      ~aligns:[ T.Left; T.Right; T.Right; T.Right; T.Right; T.Right ]
      [ "kernel"; "factor"; "adaptor lat"; "adaptor II"; "flat-view lat";
        "flat-view II" ]
  in
  let parts_for = function
    | "gemm" -> [ ("A", 2); ("B", 1) ]
    | "conv2d" -> [ ("img", 2); ("ker", 2) ]
    | _ -> []
  in
  List.iter
    (fun kname ->
      let k = Option.get (K.by_name kname) in
      List.iter
        (fun factor ->
          let d = K.optimized ~factor ~parts:(parts_for kname) () in
          let full = Flow.run_exn ~directives:d k Flow.Direct_ir in
          let m = k.K.build d in
          let lm, _, _ =
            frontend_exn ~pipeline:Adaptor.Pipeline.flat_views m
          in
          let flat = E.synthesize ~top:kname lm in
          T.add_row t
            [
              kname;
              string_of_int factor;
              string_of_int full.Flow.hls.E.latency;
              string_of_int (inner_ii full.Flow.hls);
              string_of_int flat.E.latency;
              string_of_int (inner_ii flat);
            ])
        [ 1; 2; 4; 8 ])
    [ "gemm"; "conv2d" ];
  T.print t;
  print_endline
    "(flat views — descriptor elimination without delinearization — lose\n\
    \ the array shape, so partition directives cannot take effect)"

(* ------------------------------------------------------------------ *)
(* Table 4: compile time (Bechamel)                                   *)
(* ------------------------------------------------------------------ *)

let table4 () =
  hdr "Table 4: front-of-HLS compile time (Bechamel, monotonic clock)";
  let open Bechamel in
  let open Toolkit in
  let tests =
    Test.make_grouped ~name:"flows"
      (List.concat_map
         (fun k ->
           [
             Test.make
               ~name:(k.K.kname ^ "/direct-ir")
               (Staged.stage (fun () ->
                    ignore (Flow.direct_ir_frontend (k.K.build K.pipelined))));
             Test.make
               ~name:(k.K.kname ^ "/hls-cpp")
               (Staged.stage (fun () ->
                    ignore (Flow.hls_cpp_frontend (k.K.build K.pipelined))));
           ])
         [ K.gemm (); K.mm2 (); K.conv2d () ])
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let t = T.create ~aligns:[ T.Left; T.Right ] [ "flow"; "time/run (ms)" ] in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let est =
        match Analyze.OLS.estimates ols_result with
        | Some [ e ] -> Printf.sprintf "%.3f" (e /. 1e6)
        | _ -> "?"
      in
      rows := (name, est) :: !rows)
    results;
  List.iter
    (fun (n, e) -> T.add_row t [ n; e ])
    (List.sort compare !rows);
  T.print t;
  print_endline
    "(the direct-IR flow skips C++ emission and re-parsing; per-pass\n\
    \ adaptor timings are in each flow's report)"

(* ------------------------------------------------------------------ *)
(* Bench target: adaptor + cleanup-pipeline compile time per kernel   *)
(* ------------------------------------------------------------------ *)

(** Measures the middle-of-flow cost this repo actually optimizes: the
    LLVM cleanup pipeline plus the adaptor, per kernel, on pre-lowered
    IR (lowering and HLS estimation excluded).  Writes the results to
    [BENCH_compile.json] (override with [MHLSC_BENCH_COMPILE_OUT]);
    [MHLSC_BENCH_SMOKE=1] shrinks the measurement budget for CI. *)
let compile_bench () =
  hdr "Bench: adaptor + cleanup pipeline compile time per kernel";
  let open Bechamel in
  let open Toolkit in
  let smoke = Sys.getenv_opt "MHLSC_BENCH_SMOKE" <> None in
  let out =
    Option.value
      (Sys.getenv_opt "MHLSC_BENCH_COMPILE_OUT")
      ~default:"BENCH_compile.json"
  in
  let prepared =
    List.map
      (fun k ->
        let m = Mhir.Canonicalize.run (k.K.build K.pipelined) in
        let lm = Lowering.Lower.lower_module ~style:Lowering.Lower.modern m in
        (k.K.kname, lm))
      kernels
  in
  (* scaling case: the cleanup pipeline over a 100-function module,
     sequential vs parallel-by-function on the domain pool (Parsafe
     gates the parallel path; output is byte-identical) *)
  let m100 = Mhls_driver.Synth.many_kernels ~n:100 in
  let par_fanout = Mhls_driver.Pool.fanout ~jobs:(if smoke then 2 else 4) in
  let tests =
    Test.make_grouped ~name:"compile"
      (List.map
         (fun (name, lm) ->
           Test.make ~name
             (Staged.stage (fun () ->
                  ignore (Adaptor.run (Flow.llvm_cleanup lm)))))
         prepared
      @ [
          Test.make ~name:"manyfunc100-seq"
            (Staged.stage (fun () ->
                 ignore
                   (Llvmir.Pass.run_pipeline Llvmir.Pass.default_pipeline m100)));
          Test.make ~name:"manyfunc100-par"
            (Staged.stage (fun () ->
                 ignore
                   (Llvmir.Pass.run_pipeline_parallel ~fanout:par_fanout
                      Llvmir.Pass.default_pipeline m100)));
        ])
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    if smoke then Benchmark.cfg ~limit:20 ~quota:(Time.second 0.05) ~stabilize:false ()
    else Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some [ e ] -> rows := (name, e /. 1e6) :: !rows
      | _ -> ())
    results;
  let rows = List.sort compare !rows in
  let t = T.create ~aligns:[ T.Left; T.Right ] [ "kernel"; "time/run (ms)" ] in
  List.iter (fun (n, ms) -> T.add_row t [ n; Printf.sprintf "%.3f" ms ]) rows;
  T.print t;
  let buf = Buffer.create 256 in
  Buffer.add_string buf "{\n  \"version\": 1,\n  \"experiment\": \"compile\",\n";
  Buffer.add_string buf "  \"unit\": \"ms-per-run\",\n  \"kernels\": [\n";
  List.iteri
    (fun i (name, ms) ->
      let kname =
        match String.rindex_opt name '/' with
        | Some j -> String.sub name (j + 1) (String.length name - j - 1)
        | None -> name
      in
      Buffer.add_string buf
        (Printf.sprintf "    { \"kernel\": \"%s\", \"ms\": %.6f }%s\n" kname ms
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out out in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote %s (%d kernels%s)\n" out (List.length rows)
    (if smoke then ", smoke budget" else "")

(* ------------------------------------------------------------------ *)
(* Bench gate: compile-time regression check                          *)
(* ------------------------------------------------------------------ *)

(** Compares [BENCH_compile.json] against [BENCH_compile_baseline.json]
    (override with [MHLSC_BENCH_COMPILE_OUT] /
    [MHLSC_BENCH_COMPILE_BASELINE]): geometric mean of per-kernel
    time ratios over the kernel intersection, exit 1 when the geomean
    regresses by more than 5%.  CI runs this on the checked-in files,
    so a change that slows compilation must refresh the baseline
    deliberately. *)
let compile_gate () =
  hdr "Bench gate: compile time vs checked-in baseline";
  let module J = Support.Json in
  let file env default = Option.value (Sys.getenv_opt env) ~default in
  let cur_f = file "MHLSC_BENCH_COMPILE_OUT" "BENCH_compile.json" in
  let base_f =
    file "MHLSC_BENCH_COMPILE_BASELINE" "BENCH_compile_baseline.json"
  in
  let load f =
    let s =
      let ic = open_in f in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match J.parse s with
    | Error e ->
        Printf.eprintf "compile-gate: %s: %s\n" f e;
        exit 1
    | Ok j -> (
        match J.list_member "kernels" j with
        | None ->
            Printf.eprintf "compile-gate: %s: no \"kernels\" array\n" f;
            exit 1
        | Some ks ->
            List.filter_map
              (fun o ->
                match (J.str_member "kernel" o, J.float_member "ms" o) with
                | Some k, Some ms when ms > 0.0 -> Some (k, ms)
                | _ -> None)
              ks)
  in
  let cur = load cur_f and base = load base_f in
  let ratios =
    List.filter_map
      (fun (k, ms) ->
        Option.map (fun b -> (k, ms, b, ms /. b)) (List.assoc_opt k base))
      cur
  in
  if ratios = [] then begin
    Printf.eprintf "compile-gate: no common kernels between %s and %s\n" cur_f
      base_f;
    exit 1
  end;
  let t =
    T.create
      ~aligns:[ T.Left; T.Right; T.Right; T.Right ]
      [ "kernel"; "current (ms)"; "baseline (ms)"; "ratio" ]
  in
  List.iter
    (fun (k, ms, b, r) ->
      T.add_row t
        [ k; Printf.sprintf "%.3f" ms; Printf.sprintf "%.3f" b;
          Printf.sprintf "%.3f" r ])
    ratios;
  T.print t;
  let geomean =
    exp
      (List.fold_left (fun a (_, _, _, r) -> a +. log r) 0.0 ratios
      /. float_of_int (List.length ratios))
  in
  Printf.printf "geomean ratio: %.4f over %d kernels (gate: <= 1.05)\n" geomean
    (List.length ratios);
  if geomean > 1.05 then begin
    Printf.eprintf
      "compile-gate: FAIL — compile time regressed %.1f%% vs baseline\n"
      ((geomean -. 1.0) *. 100.0);
    exit 1
  end
  else print_endline "compile-gate: OK"

(* ------------------------------------------------------------------ *)
(* Ablation: adaptor pass contributions                               *)
(* ------------------------------------------------------------------ *)

let ablation () =
  hdr "Ablation A: adaptor pipelines on gemm (optimized directives)";
  let d = K.optimized ~factor:4 ~parts:[ ("A", 2); ("B", 1) ] () in
  let m () = (K.gemm ()).K.build d in
  let t = T.create ~aligns:[ T.Left; T.Left ] [ "pipeline"; "outcome" ] in
  let without name =
    match Adaptor.Pipeline.(disable name (relaxed default)) with
    | Ok p -> p
    | Error diag -> failwith (Support.Diag.render [ diag ])
  in
  let try_pipeline name p =
    try
      let lm, _, _ = frontend_exn ~pipeline:p (m ()) in
      match E.synthesize ~top:"gemm" lm with
      | r ->
          T.add_row t
            [ name;
              Printf.sprintf "latency %d cycles, II %d" r.E.latency (inner_ii r) ]
      | exception E.Rejected errs ->
          T.add_row t
            [ name;
              Printf.sprintf "REJECTED (%d issues, e.g. \"%s\")"
                (List.length errs) (List.hd errs) ]
    with
    | Support.Err.Compile_error e ->
        T.add_row t [ name; "FAILED: " ^ Support.Err.to_string e ]
    | Support.Diag.Failed ds ->
        T.add_row t
          [ name; Printf.sprintf "FAILED: %d diagnostics" (List.length ds) ]
  in
  try_pipeline "full adaptor" Adaptor.Pipeline.default;
  try_pipeline "no delinearization (flat views)" Adaptor.Pipeline.flat_views;
  try_pipeline "no descriptor elimination"
    Adaptor.Pipeline.no_descriptor_elimination;
  try_pipeline "no intrinsic legalization" (without "legalize-intrinsics");
  try_pipeline "no typed-pointer reconstruction" (without "typed-pointers");
  try_pipeline "no metadata translation" (without "translate-metadata");
  T.print t

(* ------------------------------------------------------------------ *)
(* Extension: automatic DSE through the adaptor flow                  *)
(* ------------------------------------------------------------------ *)

let dse () =
  hdr "Extension: automatic design-space exploration (Pareto archive)";
  let module S = Mhls_dse.Search in
  List.iter
    (fun kname ->
      match K.by_name kname with
      | Some k ->
          let o = S.search ~jobs:(Mhls_driver.Pool.default_jobs ()) k in
          print_string (S.render o);
          (match S.best o with
          | Some best ->
              Printf.printf "best: %s (%d cycles)\n\n" best.S.pt_label
                best.S.pt_report.E.latency
          | None -> ())
      | None -> ())
    [ "gemm"; "conv2d" ]

(* ------------------------------------------------------------------ *)
(* Extension: cross-layer unrolling comparison                        *)
(* ------------------------------------------------------------------ *)

let crosslayer () =
  hdr "Extension: unroll at the MLIR level vs HLS-directive unroll (gemm)";
  let t =
    T.create
      ~aligns:[ T.Left; T.Right; T.Right; T.Right ]
      [ "where the unroll happens"; "latency"; "DSP"; "LUT" ]
  in
  let k = K.gemm () in
  let synth m =
    let lm, _, _ = frontend_exn m in
    E.synthesize ~top:"gemm" lm
  in
  let row name (r : E.report) =
    T.add_row t
      [ name; string_of_int r.E.latency; string_of_int r.E.resources.E.dsp;
        string_of_int r.E.resources.E.lut ]
  in
  row "none (pipeline inner only)" (synth (k.K.build K.pipelined));
  row "HLS directive (hls.unroll 4)"
    (synth (k.K.build { K.pipelined with K.unroll = Some 4 }));
  row "MLIR level (Mhir.Loop_unroll x4)"
    (synth (Mhir.Loop_unroll.run ~factor:4 (k.K.build K.pipelined)));
  T.print t;
  print_endline
    "(both unrolls expose the same serial float-accumulation chain; the\n\
    \ cross-layer version does it before lowering, where subscripts are\n\
    \ still affine — the abstract's cross-layer-optimization argument)"

(* ------------------------------------------------------------------ *)
(* Extension: clock sweep (operator chaining)                         *)
(* ------------------------------------------------------------------ *)

let clocksweep () =
  hdr "Extension: gemm latency vs clock period (chaining effect)";
  let t =
    T.create
      ~aligns:[ T.Right; T.Right; T.Right; T.Right ]
      [ "clock (ns)"; "freq (MHz)"; "latency (cycles)"; "time (us)" ]
  in
  List.iter
    (fun clock ->
      let r =
        Flow.run_exn ~directives:K.pipelined ~clock_ns:clock (K.gemm ())
          Flow.Direct_ir
      in
      T.add_row t
        [
          Printf.sprintf "%.1f" clock;
          Printf.sprintf "%.0f" (1000.0 /. clock);
          string_of_int r.Flow.hls.E.latency;
          Printf.sprintf "%.2f"
            (float_of_int r.Flow.hls.E.latency *. clock /. 1000.0);
        ])
    [ 2.0; 3.3; 5.0; 6.7; 10.0; 20.0 ];
  T.print t;
  print_endline
    "(shorter periods break combinational chains into more cycles; the\n\
    \ cycle count rises but wall-clock time still improves until the\n\
    \ operator latencies dominate)"

(* ------------------------------------------------------------------ *)
(* Detailed per-kernel reports                                        *)
(* ------------------------------------------------------------------ *)

let reports () =
  hdr "Appendix: full synthesis reports (direct-IR flow)";
  List.iter
    (fun k ->
      let r = Flow.run_exn k Flow.Direct_ir in
      print_string (Hls_backend.Report.render r.Flow.hls);
      print_newline ())
    kernels

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("table1", table1);
    ("table2", table2);
    ("table3", table3);
    ("table4", table4);
    ("compile", compile_bench);
    ("compile-gate", compile_gate);
    ("fig1", fig1);
    ("fig2", fig2);
    ("fig3", fig3);
    ("ablation", ablation);
    ("dse", dse);
    ("crosslayer", crosslayer);
    ("clocksweep", clocksweep);
    ("reports", reports);
  ]

let () =
  match Array.to_list Sys.argv with
  | _ :: "--list" :: _ -> List.iter (fun (n, _) -> print_endline n) experiments
  | _ :: (_ :: _ as ids) ->
      List.iter
        (fun id ->
          match List.assoc_opt id experiments with
          | Some f -> f ()
          | None ->
              Printf.eprintf "unknown experiment %s (try --list)\n" id;
              exit 1)
        ids
  | _ ->
      (* the gate exits non-zero on regression; only run it when asked
         for explicitly (CI does) *)
      List.iter (fun (n, f) -> if n <> "compile-gate" then f ()) experiments
