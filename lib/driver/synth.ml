(** Synthetic LLVM-module generators for benchmarks, CI smoke tests
    and the parallel-pipeline determinism checks.

    The modules are generated as textual IR and round-tripped through
    {!Llvmir.Lparser} so they exercise exactly the code path a real
    frontend input takes; every generated module verifies. *)

module L = Llvmir

(** One self-contained kernel function.  Each carries fodder for the
    whole scalar pipeline — an alloca cell (mem2reg), a constant
    expression (constfold), a duplicated subexpression (cse), a
    loop-invariant product (licm) and an unused chain (dce) — with
    constants varied by [i] so no two functions are identical. *)
let kernel_text (i : int) : string =
  let c = 3 + (i mod 7) in
  let bound = 32 + (8 * (i mod 5)) in
  Printf.sprintf
    {|define void @k%d([64 x float]* %%A, [64 x float]* %%B) {
entry:
  %%cell = alloca i64
  store i64 %d, i64* %%cell
  %%seed = load i64, i64* %%cell
  br label %%h
h:
  %%i = phi i64 [ 0, %%entry ], [ %%i.next, %%b ]
  %%cmp = icmp slt i64 %%i, %d
  br i1 %%cmp, label %%b, label %%x
b:
  %%inv = mul i64 %d, 3
  %%e1 = add i64 %%i, %%inv
  %%e2 = add i64 %%i, %%inv
  %%dead = mul i64 %%e2, %d
  %%keep = add i64 %%e1, %%seed
  %%pa = getelementptr inbounds [64 x float], [64 x float]* %%A, i64 0, i64 %%i
  %%v = load float, float* %%pa
  %%pb = getelementptr inbounds [64 x float], [64 x float]* %%B, i64 0, i64 %%i
  store float %%v, float* %%pb
  %%i.next = add i64 %%i, 1
  br label %%h
x:
  ret void
}|}
    i c bound c (5 + (i mod 3))

(** [many_kernels ~n] — a verified module of [n] independent kernel
    functions touching only their own pointer parameters.  {!Parsafe}
    proves it [Safe], so it is the workload for the parallel-pipeline
    byte-identity smoke test and the many-function compile bench. *)
let many_kernels ~(n : int) : L.Lmodule.t =
  let b = Buffer.create (n * 1024) in
  for i = 0 to n - 1 do
    Buffer.add_string b (kernel_text i);
    Buffer.add_char b '\n'
  done;
  let m = L.Lparser.parse_module (Buffer.contents b) in
  L.Lverifier.verify_module m;
  { m with L.Lmodule.mname = Printf.sprintf "synth%d" n }

(** A module in which two functions both read-modify-write the global
    [@acc]: the canonical {!Parsafe} negative — the checker must
    report a write-write conflict on [@acc] and the parallel pipeline
    must fall back. *)
let shared_global_writers () : L.Lmodule.t =
  let m =
    L.Lparser.parse_module
      {|@acc = global i64 0
define void @bump_a() {
entry:
  %v = load i64, i64* @acc
  %v2 = add i64 %v, 1
  store i64 %v2, i64* @acc
  ret void
}
define void @bump_b() {
entry:
  %v = load i64, i64* @acc
  %v2 = add i64 %v, 2
  store i64 %v2, i64* @acc
  ret void
}|}
  in
  L.Lverifier.verify_module m;
  { m with L.Lmodule.mname = "shared_global" }
