(** Batch compilation driver: takes a set of jobs (kernel × flow ×
    directive config), executes them on a {!Pool} of OCaml 5 domains,
    and memoizes results in a persistent content-addressed {!Cache}
    keyed by (input IR, pipeline description, directives, tool
    version) — a re-run of a sweep is near-instant.  Each job carries a
    {!Support.Tracing} hook, so the batch yields a full per-pass JSON
    trace ({!Trace}) alongside the QoR table.

    Two entry points:

    - {!run_batch} — one-shot: run a job list, return a report.
    - {!create_session}/{!submit}/{!close_session} — incremental: a
      live worker pool and cache that accept successive job batches.
      An iterative client (the DSE search loop) submits a small batch
      per round; the cache accumulates across rounds, so a config
      revisited in round [n+k] is a hit, and the domains are spawned
      once rather than per round.

    Failures are carried as {!Support.Diag.t} lists (rules HLS000 /
    HLS902 / HLS903), never ad-hoc strings, so every consumer renders
    and filters them uniformly.

    The QoR rendering ({!render_qor}) is deterministic: it depends only
    on job identities and compile results, never on wall time, worker
    count or cache state — a 4-worker run prints byte-identical QoR to
    a sequential one. *)

module K = Workloads.Kernels
module E = Hls_backend.Estimate
module Diag = Support.Diag

(** Cache-key ingredient; bump on any change that alters compiler
    output (or the marshalled payload format — 1.2.0 moved job errors
    from strings to {!Support.Diag.t}; 1.3.0 unified float-literal
    printing on {!Support.Float_lit}, changing printed IR; 1.4.0 made
    {!Llvmir.Memdep} alias-aware and gated partition axes on the alias
    oracle, changing lint output and DSE spaces; 1.5.0 added the
    rendered adaptor report to the cached payload for the serve/CLI
    handlers; 1.6.0 introduced the estimation-backend axis — jobs carry
    a scheduling discipline and the key carries the backend name, so
    the bump is the cache epoch for the backend redesign; 1.7.0 added
    GC allocation fields to {!Support.Tracing.event}, which travels
    inside the marshalled payload — reading a 1.6.0 payload into the
    new layout is undefined behaviour, so the bump is load-bearing). *)
let tool_version = "mhlsc-1.7.0"

(* ------------------------------------------------------------------ *)
(* Jobs                                                               *)
(* ------------------------------------------------------------------ *)

type job = {
  label : string;  (** unique within a batch; names trace records *)
  kernel : string;  (** built-in kernel name *)
  flow : Flow.flow_kind;
  sched : Hls_backend.Backend.sched;  (** estimation backend *)
  directives : K.directives;
  clock_ns : float;
}

let job ?label ?(flow = Flow.Direct_ir)
    ?(sched = Hls_backend.Backend.Static) ?(clock_ns = 10.0) ~kernel
    directives =
  let label =
    match label with
    | Some l -> l
    | None -> (
        (* static keeps the historical label shape; dynamic jobs are
           tagged so both disciplines coexist in one batch *)
        match sched with
        | Hls_backend.Backend.Static ->
            Printf.sprintf "%s/%s" kernel (Flow.flow_name flow)
        | Hls_backend.Backend.Dynamic ->
            Printf.sprintf "%s/%s/dyn" kernel (Flow.flow_name flow))
  in
  { label; kernel; flow; sched; directives; clock_ns }

(** Canonical description of a directive configuration — part of the
    cache identity and human-readable in traces. *)
let directives_describe (d : K.directives) : string =
  Printf.sprintf "ii=%s;unroll=%s;strategy=%s;parts=%s"
    (match d.K.pipeline_ii with None -> "-" | Some ii -> string_of_int ii)
    (match d.K.unroll with None -> "-" | Some u -> string_of_int u)
    (match d.K.strategy with K.Inner -> "inner" | K.Middle -> "middle")
    (String.concat "+"
       (List.map
          (fun (a, kind, f, dim) -> Printf.sprintf "%s:%s:%d:%d" a kind f dim)
          d.K.partitions))

(* ------------------------------------------------------------------ *)
(* Outcomes                                                           *)
(* ------------------------------------------------------------------ *)

(** What the cache stores per job (must stay marshal-safe: plain data,
    no closures — {!Support.Diag.t} qualifies). *)
type payload = {
  p_qor : (E.report, Diag.t list) result;
  p_trace : Trace.record list;
  p_seconds : float;  (** front-end compile seconds of the original run *)
  p_adaptor : string option;
      (** rendered adaptor report (direct-IR flow only) *)
}

type outcome = {
  o_job : job;
  o_qor : (E.report, Diag.t list) result;
      (** full synthesis report, or the diagnostics that failed the job *)
  o_seconds : float;
  o_from_cache : bool;
  o_adaptor : string option;  (** rendered adaptor report, if the flow had one *)
  o_trace : Trace.record list;  (** [tr_cached] reflects [o_from_cache] *)
}

type batch_report = {
  outcomes : outcome list;  (** in job-list order *)
  wall_seconds : float;
  jobs_used : int;  (** worker count *)
  cache_hits : int;
  cache_misses : int;  (** both 0 when caching is disabled *)
}

let trace_records (b : batch_report) : Trace.record list =
  List.concat_map (fun o -> o.o_trace) b.outcomes

(* ------------------------------------------------------------------ *)
(* Execution                                                          *)
(* ------------------------------------------------------------------ *)

(** Compile one job from scratch, capturing per-pass trace events.
    Never raises: every failure mode becomes [Error diags] —
    HLS000 for front-end compile errors, HLS902 for middle-end
    rejection, HLS903 for an unknown kernel name. *)
let compute ~(pipeline : Adaptor.Pipeline.t) (j : job) : payload =
  match K.by_name j.kernel with
  | None ->
      {
        p_qor =
          Error
            [
              Diag.error ~rule:"HLS903" ~func:j.label "unknown kernel '%s'"
                j.kernel;
            ];
        p_trace = [];
        p_seconds = 0.0;
        p_adaptor = None;
      }
  | Some k ->
      let hook, events = Support.Tracing.collector () in
      let qor, seconds, adaptor =
        match
          Flow.run ~directives:j.directives ~pipeline ~clock_ns:j.clock_ns
            ~sched:j.sched ~trace:hook k j.flow
        with
        | Ok r ->
            ( Ok r.Flow.hls,
              r.Flow.seconds,
              Option.map Adaptor.report_to_string r.Flow.adaptor_report )
        | Error ds -> (Error ds, 0.0, None)
        | exception Support.Err.Compile_error e ->
            (Error [ Diag.of_err ~rule:"HLS000" e ], 0.0, None)
        | exception E.Rejected errs ->
            ( Error
                (Diag.error ~rule:"HLS902" ~func:j.label
                   "rejected by HLS middle-end (%d issues)"
                   (List.length errs)
                :: List.map
                     (fun msg ->
                       Diag.error ~rule:"HLS902" ~func:j.label "%s" msg)
                     errs),
              0.0,
              None )
      in
      let records =
        List.map
          (Trace.of_event ~job:j.label ~kernel:j.kernel
             ~flow:(Flow.flow_name j.flow) ~cached:false)
          (events ())
      in
      { p_qor = qor; p_trace = records; p_seconds = seconds; p_adaptor = adaptor }

(** The job's content address: hashes the {e printed input IR} (the
    kernel built under its directives), so any change to the kernel
    builder lands on a fresh entry, plus every knob that affects the
    result downstream of that IR. *)
let cache_key ~(pipeline : Adaptor.Pipeline.t) (j : job) : string option =
  match K.by_name j.kernel with
  | None -> None
  | Some k ->
      let input_ir =
        Mhir.Printer.module_to_string (k.K.build j.directives)
      in
      Some
        (Cache.key
           [
             tool_version;
             input_ir;
             Adaptor.Pipeline.describe pipeline;
             directives_describe j.directives;
             Flow.flow_name j.flow;
             (* backend name, not the [sched] constructor: the key must
                survive variant renames and third-party backends *)
             (let (module B) =
                Hls_backend.Backend.of_sched j.sched
              in
              B.name);
             Printf.sprintf "%.3f" j.clock_ns;
           ])

let payload_to_string (p : payload) : string = Marshal.to_string p []

let payload_of_string (s : string) : payload option =
  match (Marshal.from_string s 0 : payload) with
  | p -> Some p
  | exception _ -> None

(** Run one job, consulting [cache] first. *)
let run_job ~pipeline ~(cache : Cache.t option) (j : job) : outcome =
  let fresh () =
    let p = compute ~pipeline j in
    ( p,
      {
        o_job = j;
        o_qor = p.p_qor;
        o_seconds = p.p_seconds;
        o_from_cache = false;
        o_adaptor = p.p_adaptor;
        o_trace = p.p_trace;
      } )
  in
  match cache with
  | None -> snd (fresh ())
  | Some cache -> (
      match cache_key ~pipeline j with
      | None -> snd (fresh ())
      | Some key -> (
          match Option.bind (Cache.find cache key) payload_of_string with
          | Some p ->
              {
                o_job = j;
                o_qor = p.p_qor;
                o_seconds = p.p_seconds;
                o_from_cache = true;
                o_adaptor = p.p_adaptor;
                o_trace =
                  List.map
                    (fun (r : Trace.record) ->
                      { r with Trace.tr_cached = true })
                    p.p_trace;
              }
          | None ->
              let p, o = fresh () in
              Cache.store cache key (payload_to_string p);
              o))

(* ------------------------------------------------------------------ *)
(* Sessions: a live pool + cache accepting incremental submissions    *)
(* ------------------------------------------------------------------ *)

type session = {
  s_pipeline : Adaptor.Pipeline.t;
  s_cache : Cache.t option;
  s_pool : Pool.t;
  s_submitted : int Atomic.t;
      (** atomic: {!background} tasks submit from worker domains *)
  mutable s_closed : bool;
}

(** [create_session ()] spins up the worker pool (and opens the cache
    directory, if any) once; every subsequent {!submit} reuses both.
    Close with {!close_session} — or lexically via {!with_session}.
    [~oversubscribe:true] passes through to {!Pool.create}: the serve
    daemon wants [jobs] worker domains even on fewer cores, so a
    short request can overtake a long one. *)
let create_session ?(pipeline = Adaptor.Pipeline.default) ?cache_dir
    ?(jobs = 1) ?(oversubscribe = false) () : session =
  {
    s_pipeline = pipeline;
    s_cache = Option.map (fun dir -> Cache.create ~dir) cache_dir;
    s_pool = Pool.create ~oversubscribe ~jobs ();
    s_submitted = Atomic.make 0;
    s_closed = false;
  }

(** Submit one more batch into the live session.  Outcomes come back in
    job-list order, deterministic for any worker count.  Cache hits
    accumulate across submissions: a job resubmitted in a later round
    (same content address) is served from cache.

    Submitting into a closed session is an HLS904 diagnostic, matching
    the unified result-based error convention at the API boundary —
    the serve dispatcher renders it like any other job failure.

    [?pipeline] overrides the session's adaptor pipeline for this
    batch only (the serve daemon submits per-request pipelines into
    one long-lived session); cache keys include the pipeline, so the
    shared cache stays sound. *)
let submit ?pipeline (s : session) (js : job list) :
    (outcome list, Diag.t list) result =
  if s.s_closed then
    Error
      [
        Diag.error ~rule:"HLS904"
          "session is closed; no further submissions accepted"
          ~hint:"create a fresh session with Driver.create_session";
      ]
  else begin
    let pipeline = Option.value pipeline ~default:s.s_pipeline in
    ignore (Atomic.fetch_and_add s.s_submitted (List.length js));
    Ok (Pool.run s.s_pool (run_job ~pipeline ~cache:s.s_cache) js)
  end

(** [background s task] hands [task] to one of the session's worker
    domains without blocking ({!Pool.submit}); [false] on a closed
    session or an inline pool, in which case the caller should run the
    thunk itself.  This is the serve reactor's executor: request
    groups evaluate here while the select loop keeps reading.  A
    submitted task may itself call {!submit} with a {e single-job}
    batch (it runs inline on the worker), which is exactly what the
    compile handler does. *)
let background (s : session) (task : unit -> unit) : bool =
  (not s.s_closed) && Pool.submit s.s_pool task

(** {!submit} for callers that own a visibly open session (e.g. inside
    {!with_session}); raises {!Support.Diag.Failed} on a closed one. *)
let submit_exn ?pipeline (s : session) (js : job list) : outcome list =
  match submit ?pipeline s js with
  | Ok outs -> outs
  | Error ds -> raise (Diag.Failed ds)

let session_pipeline (s : session) = s.s_pipeline
let session_submitted (s : session) = Atomic.get s.s_submitted
let session_workers (s : session) = Pool.size s.s_pool

let session_hits (s : session) =
  match s.s_cache with Some c -> Cache.hits c | None -> 0

let session_misses (s : session) =
  match s.s_cache with Some c -> Cache.misses c | None -> 0

(** Shut the pool down and mark the session closed.  Idempotent. *)
let close_session (s : session) : unit =
  if not s.s_closed then begin
    s.s_closed <- true;
    Pool.shutdown s.s_pool
  end

(** [with_session ?pipeline ?cache_dir ?jobs f] runs [f] over a fresh
    session and closes it even if [f] raises. *)
let with_session ?pipeline ?cache_dir ?jobs (f : session -> 'a) : 'a =
  let s = create_session ?pipeline ?cache_dir ?jobs () in
  Fun.protect ~finally:(fun () -> close_session s) (fun () -> f s)

(** Run a batch: up to [jobs] domains, optional result cache.  Job
    order is preserved in [outcomes] regardless of worker count.

    [jobs] is an upper bound: the pool never oversubscribes the
    hardware (OCaml 5 minor collections are stop-the-world across
    domains, so excess domains make an allocation-heavy workload
    {e slower}).  Results are deterministic for any worker count.
    One-shot wrapper over a {!session}. *)
let run_batch ?pipeline ?cache_dir ?(jobs = 1) (js : job list) : batch_report
    =
  let jobs = max 1 (min jobs (max 1 (List.length js))) in
  with_session ?pipeline ?cache_dir ~jobs (fun s ->
      let t0 = Unix.gettimeofday () in
      let outcomes = submit_exn s js in
      {
        outcomes;
        wall_seconds = Unix.gettimeofday () -. t0;
        jobs_used = session_workers s;
        cache_hits = session_hits s;
        cache_misses = session_misses s;
      })

(* ------------------------------------------------------------------ *)
(* Built-in job grids and manifests                                   *)
(* ------------------------------------------------------------------ *)

(** The default directive grid swept by [mhlsc batch --all-kernels]. *)
let default_grid : (string * K.directives) list =
  [
    ("baseline", K.no_directives);
    ("pipeline-inner", K.pipelined);
    ("inner-unroll4", { K.pipelined with K.unroll = Some 4 });
    ("middle-full-unroll", K.optimized ~factor:1 ~parts:[] ());
  ]

(** Every built-in kernel × {!default_grid} × [flows] × [scheds].
    Static jobs keep the historical labels; dynamic jobs append
    ["/dyn"]. *)
let all_kernel_jobs ?(flows = [ Flow.Direct_ir ])
    ?(scheds = [ Hls_backend.Backend.Static ]) ?(clock_ns = 10.0) () :
    job list =
  List.concat_map
    (fun k ->
      List.concat_map
        (fun flow ->
          List.concat_map
            (fun sched ->
              List.map
                (fun (cfg, d) ->
                  job
                    ~label:
                      (Printf.sprintf "%s/%s/%s%s" k.K.kname cfg
                         (Flow.flow_name flow)
                         (match sched with
                         | Hls_backend.Backend.Static -> ""
                         | Hls_backend.Backend.Dynamic -> "/dyn"))
                    ~flow ~sched ~clock_ns ~kernel:k.K.kname d)
                default_grid)
            scheds)
        flows)
    (K.all ())

let manifest_diag lineno fmt =
  Support.Diag.error ~rule:"HLS901"
    ~func:(Printf.sprintf "manifest:%d" lineno)
    fmt

(** Parse a job manifest.  One job per line:
    {v
    # comment
    <kernel> [flow=direct|cpp] [sched=static|dynamic] [label=NAME] [ii=N]
             [strategy=inner|middle] [unroll=N]
             [partition=ARG:KIND:FACTOR:DIM]* [clock=NS]
    v}
    Unknown kernels, keys or malformed values are reported as
    HLS-style diagnostics, never exceptions. *)
let parse_manifest (text : string) : (job list, Support.Diag.t) result =
  let parse_line lineno line =
    let line =
      match String.index_opt line '#' with
      | Some i -> String.sub line 0 i
      | None -> line
    in
    match
      String.split_on_char ' ' (String.trim line)
      |> List.filter (fun s -> s <> "")
    with
    | [] -> Ok None
    | kernel :: opts ->
        if K.by_name kernel = None then
          Error
            (manifest_diag lineno
               "unknown kernel '%s' in manifest" kernel)
        else
          let rec apply j partitions = function
            | [] ->
                Ok
                  (Some
                     {
                       j with
                       directives =
                         {
                           j.directives with
                           K.partitions = List.rev partitions;
                         };
                     })
            | opt :: rest -> (
                match String.index_opt opt '=' with
                | None ->
                    Error
                      (manifest_diag lineno
                         "malformed option '%s' (expected key=value)" opt)
                | Some i -> (
                    let key = String.sub opt 0 i in
                    let v =
                      String.sub opt (i + 1) (String.length opt - i - 1)
                    in
                    let int_v () =
                      match int_of_string_opt v with
                      | Some n -> Ok n
                      | None ->
                          Error
                            (manifest_diag lineno
                               "option %s wants an integer, got '%s'" key v)
                    in
                    match key with
                    | "label" -> apply { j with label = v } partitions rest
                    | "flow" -> (
                        match v with
                        | "direct" ->
                            apply { j with flow = Flow.Direct_ir } partitions
                              rest
                        | "cpp" ->
                            apply { j with flow = Flow.Hls_cpp } partitions
                              rest
                        | _ ->
                            Error
                              (manifest_diag lineno
                                 "flow must be 'direct' or 'cpp', got '%s'" v)
                        )
                    | "sched" -> (
                        match Hls_backend.Backend.sched_of_name v with
                        | Some sched -> apply { j with sched } partitions rest
                        | None ->
                            Error
                              (manifest_diag lineno
                                 "sched must be 'static' or 'dynamic', got \
                                  '%s'"
                                 v))
                    | "ii" -> (
                        match int_v () with
                        | Error d -> Error d
                        | Ok n ->
                            apply
                              {
                                j with
                                directives =
                                  {
                                    j.directives with
                                    K.pipeline_ii =
                                      (if n <= 0 then None else Some n);
                                  };
                              }
                              partitions rest)
                    | "unroll" -> (
                        match int_v () with
                        | Error d -> Error d
                        | Ok n ->
                            apply
                              {
                                j with
                                directives =
                                  { j.directives with K.unroll = Some n };
                              }
                              partitions rest)
                    | "strategy" -> (
                        match v with
                        | "inner" ->
                            apply
                              {
                                j with
                                directives =
                                  { j.directives with K.strategy = K.Inner };
                              }
                              partitions rest
                        | "middle" ->
                            apply
                              {
                                j with
                                directives =
                                  { j.directives with K.strategy = K.Middle };
                              }
                              partitions rest
                        | _ ->
                            Error
                              (manifest_diag lineno
                                 "strategy must be 'inner' or 'middle', got \
                                  '%s'"
                                 v))
                    | "clock" -> (
                        match float_of_string_opt v with
                        | Some f ->
                            apply { j with clock_ns = f } partitions rest
                        | None ->
                            Error
                              (manifest_diag lineno
                                 "clock wants a float, got '%s'" v))
                    | "partition" -> (
                        match String.split_on_char ':' v with
                        | [ a; kind; f; d ] -> (
                            match
                              (int_of_string_opt f, int_of_string_opt d)
                            with
                            | Some f, Some d ->
                                apply j ((a, kind, f, d) :: partitions) rest
                            | _ ->
                                Error
                                  (manifest_diag lineno
                                     "bad partition spec '%s' (want \
                                      ARG:KIND:FACTOR:DIM)"
                                     v))
                        | _ ->
                            Error
                              (manifest_diag lineno
                                 "bad partition spec '%s' (want \
                                  ARG:KIND:FACTOR:DIM)"
                                 v))
                    | _ ->
                        Error
                          (manifest_diag lineno
                             "unknown manifest option '%s'" key)))
          in
          apply
            (job ~label:(Printf.sprintf "%s:%d" kernel lineno) ~kernel
               K.no_directives)
            [] opts
  in
  let lines = String.split_on_char '\n' text in
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | l :: rest -> (
        match parse_line lineno l with
        | Error d -> Error d
        | Ok None -> go (lineno + 1) acc rest
        | Ok (Some j) -> go (lineno + 1) (j :: acc) rest)
  in
  go 1 [] lines

(* ------------------------------------------------------------------ *)
(* Rendering                                                          *)
(* ------------------------------------------------------------------ *)

let inner_ii (r : E.report) =
  List.fold_left
    (fun acc (l : E.loop_report) ->
      match l.E.achieved_ii with Some ii -> max acc ii | None -> acc)
    0 r.E.loops

(** Deterministic QoR table: depends only on job identities and compile
    results — never on wall time, worker count or cache state. *)
let render_qor (b : batch_report) : string =
  let t =
    Support.Table.create
      ~aligns:
        [ Support.Table.Left; Support.Table.Left; Support.Table.Left;
          Support.Table.Left; Support.Table.Right; Support.Table.Right;
          Support.Table.Right; Support.Table.Right; Support.Table.Right ]
      [ "job"; "kernel"; "flow"; "status"; "latency"; "II"; "BRAM"; "DSP";
        "LUT" ]
  in
  let failures = ref [] in
  List.iter
    (fun o ->
      match o.o_qor with
      | Ok r ->
          Support.Table.add_row t
            [
              o.o_job.label;
              o.o_job.kernel;
              Flow.flow_name o.o_job.flow;
              "ok";
              string_of_int r.E.latency;
              string_of_int (inner_ii r);
              string_of_int r.E.resources.E.bram;
              string_of_int r.E.resources.E.dsp;
              string_of_int r.E.resources.E.lut;
            ]
      | Error diags ->
          failures := (o.o_job.label, diags) :: !failures;
          Support.Table.add_row t
            [
              o.o_job.label; o.o_job.kernel; Flow.flow_name o.o_job.flow;
              "FAIL"; "-"; "-"; "-"; "-"; "-";
            ])
    b.outcomes;
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Support.Table.render t);
  List.iter
    (fun (label, diags) ->
      Buffer.add_string buf (Printf.sprintf "\n%s failed:\n" label);
      List.iter
        (fun d ->
          Buffer.add_string buf (Printf.sprintf "  %s\n" (Diag.to_string d)))
        diags)
    (List.rev !failures);
  Buffer.contents buf

(** Run statistics — the non-deterministic tail of the report.  The
    cache-hit rate line is stable ("cache-hit rate: 100%") so scripts
    and CI can assert on it. *)
let render_stats (b : batch_report) : string =
  let n = List.length b.outcomes in
  let cache_line =
    if b.cache_hits + b.cache_misses = 0 then "cache: disabled"
    else
      Printf.sprintf "cache: %d hits, %d misses; cache-hit rate: %d%%"
        b.cache_hits b.cache_misses
        (if n = 0 then 0 else 100 * b.cache_hits / (b.cache_hits + b.cache_misses))
  in
  Printf.sprintf "%d jobs in %.2fs wall (%d workers); %s\n" n b.wall_seconds
    b.jobs_used cache_line

let render (b : batch_report) : string = render_qor b ^ "\n" ^ render_stats b
