(** Fixed-size worker pool over OCaml 5 domains.

    Work items are claimed from a shared atomic counter, so the pool
    load-balances automatically: a domain that draws a cheap job simply
    claims the next one.  With [jobs <= 1] (or a single item) the work
    runs inline on the calling domain — the sequential path used by the
    determinism test as the reference. *)

(** [map ~jobs f xs] applies [f] to every element of [xs], on up to
    [jobs] domains, preserving input order in the result.  [f] should
    not raise: an exception in a worker tears down the whole pool (it
    is re-raised by [Domain.join]). *)
let map ~(jobs : int) (f : 'a -> 'b) (xs : 'a list) : 'b list =
  let n = List.length xs in
  if jobs <= 1 || n <= 1 then List.map f xs
  else begin
    let input = Array.of_list xs in
    let output = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec go () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          output.(i) <- Some (f input.(i));
          go ()
        end
      in
      go ()
    in
    let domains = List.init (min jobs n) (fun _ -> Domain.spawn worker) in
    List.iter Domain.join domains;
    Array.to_list
      (Array.map (function Some v -> v | None -> assert false) output)
  end

(** A reasonable default worker count for this machine. *)
let default_jobs () = max 1 (Domain.recommended_domain_count () - 1)
