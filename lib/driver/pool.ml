(** Worker pool over OCaml 5 domains.

    Two entry points share the machinery:

    - {!map} — the one-shot path: spawn up to [jobs] domains, apply a
      function to every element, join.  Work items are claimed from a
      shared atomic counter, so the pool load-balances automatically.
    - {!create}/{!run}/{!shutdown} — the {e live}-pool path used by the
      incremental driver session: workers are spawned once, block on a
      condition variable between batches, and successive {!run} calls
      reuse them.  A search loop that submits a small batch per round
      does not pay a domain-spawn per round.

    Both paths preserve input order in the result and run inline on the
    calling domain when [jobs <= 1] — the sequential reference used by
    the determinism tests. *)

(* ------------------------------------------------------------------ *)
(* One-shot map                                                       *)
(* ------------------------------------------------------------------ *)

(** [map ~jobs f xs] applies [f] to every element of [xs], on up to
    [jobs] domains, preserving input order in the result.  [f] should
    not raise: an exception in a worker tears down the whole pool (it
    is re-raised by [Domain.join]).  Like {!create}, the worker count
    is clamped to the hardware: on a single-core machine the map runs
    inline, since extra domains only add stop-the-world GC
    coordination. *)
let map ~(jobs : int) (f : 'a -> 'b) (xs : 'a list) : 'b list =
  let n = List.length xs in
  let jobs = min jobs (Domain.recommended_domain_count ()) in
  if jobs <= 1 || n <= 1 then List.map f xs
  else begin
    let input = Array.of_list xs in
    let output = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      (* Allocation-heavy work items make the default (256k-word)
         minor heap the bottleneck: every domain's minor collection is
         a stop-the-world sync, so at 4+ domains the pool spends its
         speedup waiting on barriers.  A larger per-domain minor heap
         trades a few MB per worker for an ~4x lower barrier rate;
         workers are short-lived, the setting dies with the domain. *)
      Gc.set { (Gc.get ()) with Gc.minor_heap_size = 1024 * 1024 };
      let rec go () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          output.(i) <- Some (f input.(i));
          go ()
        end
      in
      go ()
    in
    let domains = List.init (min jobs n) (fun _ -> Domain.spawn worker) in
    List.iter Domain.join domains;
    Array.to_list
      (Array.map (function Some v -> v | None -> assert false) output)
  end

(** A reasonable default worker count for this machine. *)
let default_jobs () = max 1 (Domain.recommended_domain_count () - 1)

(** Fanout record handed to {!Llvmir.Pass.run_pipeline_parallel}: the
    pool's {!map} plus a wall clock.  Lives here because [llvmir] sits
    below both this pool and [unix] in the layering. *)
let fanout ~(jobs : int) : Llvmir.Pass.fanout =
  { Llvmir.Pass.jobs; now = Unix.gettimeofday; map = (fun f xs -> map ~jobs f xs) }

(* ------------------------------------------------------------------ *)
(* Live pool                                                          *)
(* ------------------------------------------------------------------ *)

(** A queued unit of work.  [t_batch] tasks belong to a blocking
    {!run} batch and participate in its [pending] accounting;
    {!submit}ted tasks do not — a worker must never signal
    [batch_done] for them, or a concurrent {!run} would return with
    slots still unfilled. *)
type task = { t_run : unit -> unit; t_batch : bool }

type t = {
  jobs : int;  (** worker-domain count; 0 = inline sequential pool *)
  mutex : Mutex.t;
  work_available : Condition.t;
  batch_done : Condition.t;
  queue : task Queue.t;
  mutable pending : int;  (** batch tasks queued or running *)
  mutable stopping : bool;
  mutable domains : unit Domain.t list;
}

let worker (p : t) () =
  let rec loop () =
    Mutex.lock p.mutex;
    while Queue.is_empty p.queue && not p.stopping do
      Condition.wait p.work_available p.mutex
    done;
    if Queue.is_empty p.queue then (* stopping *)
      Mutex.unlock p.mutex
    else begin
      let task = Queue.pop p.queue in
      Mutex.unlock p.mutex;
      task.t_run ();
      if task.t_batch then begin
        Mutex.lock p.mutex;
        p.pending <- p.pending - 1;
        if p.pending = 0 then Condition.broadcast p.batch_done;
        Mutex.unlock p.mutex
      end;
      loop ()
    end
  in
  loop ()

(** [create ~jobs] spawns a pool of [min jobs (recommended - 1)]
    worker domains (at least 0: with [jobs <= 1] no domain is spawned
    and {!run} executes inline).  By default the pool never
    oversubscribes the hardware — OCaml 5 minor collections are
    stop-the-world across domains, so excess domains make
    allocation-heavy workloads {e slower}.  [~oversubscribe:true]
    lifts that clamp (still bounded by [max 16 recommended]): the
    serve reactor wants concurrency-for-latency — a short compile
    overtaking a long DSE sweep — which the OS scheduler provides by
    timeslicing domains even on a single core. *)
let create ?(oversubscribe = false) ~(jobs : int) () : t =
  let jobs =
    if jobs <= 1 then 0
    else if oversubscribe then
      min jobs (max 16 (Domain.recommended_domain_count ()))
    else min jobs (max 1 (Domain.recommended_domain_count ()))
  in
  let p =
    {
      jobs;
      mutex = Mutex.create ();
      work_available = Condition.create ();
      batch_done = Condition.create ();
      queue = Queue.create ();
      pending = 0;
      stopping = false;
      domains = [];
    }
  in
  p.domains <- List.init jobs (fun _ -> Domain.spawn (worker p));
  p

(** Number of worker domains actually running (1 when inline). *)
let size (p : t) : int = max 1 p.jobs

(** [run p f xs] evaluates [f] on every element of [xs] on the pool's
    workers and blocks until the whole batch is done, preserving input
    order.  Results are independent of the worker count.  A task that
    raises poisons only its own slot: the exception is re-raised here
    after the batch drains, so the pool stays usable. *)
let run (p : t) (f : 'a -> 'b) (xs : 'a list) : 'b list =
  let n = List.length xs in
  if p.jobs = 0 || n <= 1 then List.map f xs
  else begin
    let input = Array.of_list xs in
    let output : ('b, exn) result option array = Array.make n None in
    let task i () =
      output.(i) <-
        Some (match f input.(i) with v -> Ok v | exception e -> Error e)
    in
    Mutex.lock p.mutex;
    if p.stopping then begin
      Mutex.unlock p.mutex;
      invalid_arg "Pool.run: pool is shut down"
    end;
    for i = 0 to n - 1 do
      Queue.push { t_run = task i; t_batch = true } p.queue
    done;
    p.pending <- p.pending + n;
    Condition.broadcast p.work_available;
    while p.pending > 0 do
      Condition.wait p.batch_done p.mutex
    done;
    Mutex.unlock p.mutex;
    Array.to_list
      (Array.map
         (function
           | Some (Ok v) -> v
           | Some (Error e) -> raise e
           | None -> assert false)
         output)
  end

(** [submit p task] enqueues [task] for a worker domain without
    blocking; it runs whenever a worker frees up and its completion is
    never waited on here.  Returns [false] — and does {e not} enqueue —
    on an inline pool ([jobs <= 1]) or a stopped pool, so the caller
    knows to run the thunk itself.  [task] must not call {!run} with a
    multi-element batch on this same pool: with every worker busy
    executing submitted tasks, the nested batch would deadlock.
    (Single-element batches are safe — {!run} executes those inline.) *)
let submit (p : t) (task : unit -> unit) : bool =
  if p.jobs = 0 then false
  else begin
    Mutex.lock p.mutex;
    let accepted = not p.stopping in
    if accepted then begin
      Queue.push { t_run = task; t_batch = false } p.queue;
      Condition.signal p.work_available
    end;
    Mutex.unlock p.mutex;
    accepted
  end

(** Stop the workers and join their domains.  Idempotent. *)
let shutdown (p : t) : unit =
  Mutex.lock p.mutex;
  p.stopping <- true;
  Condition.broadcast p.work_available;
  Mutex.unlock p.mutex;
  List.iter Domain.join p.domains;
  p.domains <- []
