(** Worker pool over OCaml 5 domains: a one-shot {!map} and a live
    {!create}/{!run}/{!shutdown} pool reused across batches.  Both
    preserve input order and run inline when [jobs <= 1]. *)

(** [map ~jobs f xs] applies [f] on up to [jobs] domains, preserving
    input order.  [f] should not raise. *)
val map : jobs:int -> ('a -> 'b) -> 'a list -> 'b list

(** A reasonable default worker count for this machine. *)
val default_jobs : unit -> int

(** Fanout record for {!Llvmir.Pass.run_pipeline_parallel}: this
    pool's {!map} with a [Unix.gettimeofday] wall clock for
    worker-side timings. *)
val fanout : jobs:int -> Llvmir.Pass.fanout

(** A live pool: workers are spawned once and reused by every {!run}. *)
type t

(** [create ~jobs ()] spawns the workers ([jobs <= 1] means inline, no
    domains); the count is clamped to the hardware unless
    [~oversubscribe:true], which trades GC-coordination throughput for
    concurrency-for-latency (the serve reactor's trade: a short job
    must be able to overtake a long one even on few cores). *)
val create : ?oversubscribe:bool -> jobs:int -> unit -> t

(** Number of worker domains actually running (1 when inline). *)
val size : t -> int

(** [run p f xs] evaluates the batch on the pool, blocking until done;
    input order preserved, results independent of worker count.  A
    task's exception is re-raised here after the batch drains.
    @raise Invalid_argument after {!shutdown}. *)
val run : t -> ('a -> 'b) -> 'a list -> 'b list

(** [submit p task] enqueues [task] on a worker without blocking and
    without joining any batch accounting; [false] (nothing enqueued)
    on an inline or stopped pool — run the thunk yourself.  [task]
    must not call {!run} with a multi-element batch on the same
    pool (deadlock when all workers are busy); single-element
    batches run inline and are safe. *)
val submit : t -> (unit -> unit) -> bool

(** Stop the workers and join their domains.  Idempotent. *)
val shutdown : t -> unit
