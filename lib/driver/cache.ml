(** Persistent content-addressed result cache.

    A dumb blob store: entries are raw strings filed under the hex
    digest of whatever identity the caller hashed ({!key}).  The driver
    keys entries by (input IR, pipeline description, directives, tool
    version), so any change to any ingredient lands on a different
    entry and stale results can never be served — invalidation is
    structural, not temporal.

    Writes go through a per-domain temporary file and an atomic
    [Sys.rename], so concurrent workers (or concurrent batch runs
    sharing a cache directory) never observe torn entries.  Hit/miss
    counters are atomics for the same reason. *)

type t = {
  dir : string;
  hits : int Atomic.t;
  misses : int Atomic.t;
}

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    (try Sys.mkdir dir 0o755
     with Sys_error _ when Sys.file_exists dir -> () (* lost the race *))
  end

let create ~dir : t =
  mkdir_p dir;
  { dir; hits = Atomic.make 0; misses = Atomic.make 0 }

(** Content address for an identity: the parts are hashed with an
    unambiguous separator (no concatenation collisions). *)
let key (parts : string list) : string =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          (string_of_int (List.length parts)
          :: List.concat_map (fun p -> [ string_of_int (String.length p); p ])
               parts)))

let path t k = Filename.concat t.dir (k ^ ".cache")

(** Look an entry up; counts a hit or a miss.  Unreadable or torn
    entries are treated as misses. *)
let find (t : t) (k : string) : string option =
  match In_channel.with_open_bin (path t k) In_channel.input_all with
  | data ->
      Atomic.incr t.hits;
      Some data
  | exception Sys_error _ ->
      Atomic.incr t.misses;
      None

(** Store an entry atomically (temp file + rename).  Concurrent stores
    of the same key are benign: last rename wins, both contents are
    valid by construction. *)
let store (t : t) (k : string) (data : string) : unit =
  let tmp =
    Filename.concat t.dir
      (Printf.sprintf ".%s.tmp.%d" k (Domain.self () :> int))
  in
  Out_channel.with_open_bin tmp (fun oc -> Out_channel.output_string oc data);
  Sys.rename tmp (path t k)

let hits t = Atomic.get t.hits
let misses t = Atomic.get t.misses

(** Number of entries currently on disk. *)
let entry_count (t : t) : int =
  match Sys.readdir t.dir with
  | files ->
      Array.fold_left
        (fun n f -> if Filename.check_suffix f ".cache" then n + 1 else n)
        0 files
  | exception Sys_error _ -> 0
