(** Batch compilation driver: (kernel × flow × directive) jobs on a
    domain {!Pool}, memoized in a content-addressed {!Cache}, traced
    via {!Trace}.

    Two entry points: the one-shot {!run_batch}, and the incremental
    {!create_session}/{!submit}/{!close_session} trio, which keeps a
    live worker pool and cache across successive batches (the DSE
    search submits one batch per round; revisited configs hit the
    cache, and domains are spawned once).

    Failures are {!Support.Diag.t} lists (HLS000 compile error, HLS902
    middle-end rejection, HLS903 unknown kernel), never ad-hoc
    strings.  QoR rendering is deterministic: independent of wall
    time, worker count and cache state. *)

module K := Workloads.Kernels
module E := Hls_backend.Estimate

(** Cache-key ingredient; bumped on any change that alters compiler
    output or the cached payload format. *)
val tool_version : string

(* ------------------------------------------------------------------ *)
(* Jobs                                                               *)
(* ------------------------------------------------------------------ *)

type job = {
  label : string;  (** unique within a batch; names trace records *)
  kernel : string;  (** built-in kernel name *)
  flow : Flow.flow_kind;
  sched : Hls_backend.Backend.sched;  (** estimation backend *)
  directives : K.directives;
  clock_ns : float;
}

(** Smart constructor; the default label is ["<kernel>/<flow>"]
    (suffixed with ["/dyn"] for the dynamic backend) and the default
    discipline is {!Hls_backend.Backend.Static}.  The cache key
    includes the backend name, so static and dynamic jobs over the
    same kernel/config address distinct entries. *)
val job :
  ?label:string ->
  ?flow:Flow.flow_kind ->
  ?sched:Hls_backend.Backend.sched ->
  ?clock_ns:float ->
  kernel:string ->
  K.directives ->
  job

(** Canonical description of a directive configuration — part of the
    cache identity and human-readable in traces. *)
val directives_describe : K.directives -> string

(* ------------------------------------------------------------------ *)
(* Outcomes                                                           *)
(* ------------------------------------------------------------------ *)

type outcome = {
  o_job : job;
  o_qor : (E.report, Support.Diag.t list) result;
      (** full synthesis report, or the diagnostics that failed the job *)
  o_seconds : float;
  o_from_cache : bool;
  o_adaptor : string option;  (** rendered adaptor report, if the flow had one *)
  o_trace : Trace.record list;  (** [tr_cached] reflects [o_from_cache] *)
}

type batch_report = {
  outcomes : outcome list;  (** in job-list order *)
  wall_seconds : float;
  jobs_used : int;  (** worker count *)
  cache_hits : int;
  cache_misses : int;  (** both 0 when caching is disabled *)
}

val trace_records : batch_report -> Trace.record list

(** The job's content address, [None] for an unknown kernel: hashes
    the printed input IR plus every knob that affects the result. *)
val cache_key : pipeline:Adaptor.Pipeline.t -> job -> string option

(** Run one job, consulting [cache] first.  Never raises: every
    failure mode becomes [Error diags]. *)
val run_job : pipeline:Adaptor.Pipeline.t -> cache:Cache.t option -> job -> outcome

(* ------------------------------------------------------------------ *)
(* Sessions: a live pool + cache accepting incremental submissions    *)
(* ------------------------------------------------------------------ *)

type session

(** Spin up the worker pool (and open the cache directory, if any)
    once; every subsequent {!submit} reuses both.
    [~oversubscribe:true] lifts the pool's hardware clamp (see
    {!Pool.create}) — the serve daemon's concurrency-for-latency
    trade. *)
val create_session :
  ?pipeline:Adaptor.Pipeline.t ->
  ?cache_dir:string ->
  ?jobs:int ->
  ?oversubscribe:bool ->
  unit ->
  session

(** Submit one more batch into the live session.  Outcomes in job-list
    order, deterministic for any worker count; cache hits accumulate
    across submissions.  [?pipeline] overrides the session pipeline
    for this batch only (cache keys include it, so the shared cache
    stays sound).  Submitting after {!close_session} is an [Error]
    carrying an HLS904 diagnostic — never an exception. *)
val submit :
  ?pipeline:Adaptor.Pipeline.t ->
  session ->
  job list ->
  (outcome list, Support.Diag.t list) result

(** {!submit} for callers that own a visibly open session; raises
    {!Support.Diag.Failed} where {!submit} returns [Error]. *)
val submit_exn : ?pipeline:Adaptor.Pipeline.t -> session -> job list -> outcome list

(** [background s task] hands [task] to a session worker domain
    without blocking; [false] (nothing enqueued) on a closed session
    or an inline pool — run the thunk yourself.  The serve reactor's
    executor: a submitted task may call {!submit} with a single-job
    batch (it runs inline on the worker), but must not submit
    multi-job batches into this same session. *)
val background : session -> (unit -> unit) -> bool

val session_pipeline : session -> Adaptor.Pipeline.t
val session_submitted : session -> int
val session_workers : session -> int
val session_hits : session -> int
val session_misses : session -> int

(** Shut the pool down and mark the session closed.  Idempotent. *)
val close_session : session -> unit

(** Run [f] over a fresh session; closes it even if [f] raises. *)
val with_session :
  ?pipeline:Adaptor.Pipeline.t ->
  ?cache_dir:string ->
  ?jobs:int ->
  (session -> 'a) ->
  'a

(** One-shot wrapper over a session: run a batch on up to [jobs]
    domains with an optional result cache. *)
val run_batch :
  ?pipeline:Adaptor.Pipeline.t ->
  ?cache_dir:string ->
  ?jobs:int ->
  job list ->
  batch_report

(* ------------------------------------------------------------------ *)
(* Built-in job grids and manifests                                   *)
(* ------------------------------------------------------------------ *)

(** The default directive grid swept by [mhlsc batch --all-kernels]. *)
val default_grid : (string * K.directives) list

(** Every built-in kernel × {!default_grid} × [flows] × [scheds]
    (default static only).  Static jobs keep the historical labels;
    dynamic jobs append ["/dyn"]. *)
val all_kernel_jobs :
  ?flows:Flow.flow_kind list ->
  ?scheds:Hls_backend.Backend.sched list ->
  ?clock_ns:float ->
  unit ->
  job list

(** Parse a job manifest (one job per line; [#] comments).  Unknown
    kernels, keys or malformed values are HLS901 diagnostics. *)
val parse_manifest : string -> (job list, Support.Diag.t) result

(* ------------------------------------------------------------------ *)
(* Rendering                                                          *)
(* ------------------------------------------------------------------ *)

(** Deterministic QoR table. *)
val render_qor : batch_report -> string

(** Run statistics (wall time, worker count, cache-hit rate — the
    stable "cache-hit rate: N%" line CI asserts on). *)
val render_stats : batch_report -> string

val render : batch_report -> string
