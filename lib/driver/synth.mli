(** Synthetic LLVM-module generators (textual IR round-tripped through
    the parser; every module verifies). *)

(** [many_kernels ~n] — [n] independent kernel functions, each with
    fodder for every scalar pass; {!Llvmir.Parsafe} proves the module
    [Safe].  Workload for the parallel-pipeline determinism smoke test
    and the many-function compile bench. *)
val many_kernels : n:int -> Llvmir.Lmodule.t

(** Two functions read-modify-writing the same global [@acc] — the
    {!Llvmir.Parsafe} negative case (write-write conflict). *)
val shared_global_writers : unit -> Llvmir.Lmodule.t
