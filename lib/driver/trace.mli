(** Batch-level pass traces: per-job, per-pass records assembled from
    {!Support.Tracing} events, emitted as versioned JSON plus an
    aggregate summary table. *)

type record = {
  tr_job : string;  (** job label the pass ran under *)
  tr_kernel : string;
  tr_flow : string;  (** ["direct-ir"] | ["hls-cpp"] *)
  tr_stage : string;
  tr_pass : string;
  tr_seconds : float;
  tr_instrs_before : int;
  tr_instrs_after : int;
  tr_minor_words : float;  (** words allocated on the minor heap *)
  tr_major_words : float;  (** words allocated directly on the major heap *)
  tr_cached : bool;  (** served from the result cache, not re-run *)
}

val schema_version : int

val of_event :
  job:string ->
  kernel:string ->
  flow:string ->
  cached:bool ->
  Support.Tracing.event ->
  record

(** The record's JSON fields, in canonical schema order. *)
val record_fields : record -> (string * string) list

val to_json : tool:string -> record list -> string
val write_file : tool:string -> string -> record list -> unit

(** Structural schema check of a serialized trace: version marker,
    records array, required keys on every record. *)
val validate : string -> (unit, string) result

(** Per-(stage, pass) aggregate over a batch: run count, total/mean
    time, net IR delta. *)
val summary_table : record list -> string
