(** Batch-level pass traces: per-job, per-pass records assembled from
    {!Support.Tracing} events, emitted as JSON (one object per job per
    pass) plus an aggregate summary table.

    Trace schema, version {!schema_version} — one top-level object:
    {v
    { "version": 1,
      "tool": "<tool version>",
      "records": [
        { "job": "...", "kernel": "...", "flow": "direct-ir",
          "stage": "adaptor", "pass": "typed-pointers",
          "seconds": 0.000123, "instrs_before": 120,
          "instrs_after": 118, "minor_words": 20480,
          "major_words": 1024, "cached": false }, ... ] }
    v}
    {!validate} checks a trace against this schema structurally; the
    golden schema test and CI both rely on it. *)

type record = {
  tr_job : string;  (** job label the pass ran under *)
  tr_kernel : string;
  tr_flow : string;  (** ["direct-ir"] | ["hls-cpp"] *)
  tr_stage : string;
  tr_pass : string;
  tr_seconds : float;
  tr_instrs_before : int;
  tr_instrs_after : int;
  tr_minor_words : float;  (** words allocated on the minor heap *)
  tr_major_words : float;  (** words allocated directly on the major heap *)
  tr_cached : bool;  (** served from the result cache, not re-run *)
}

let schema_version = 1

let of_event ~job ~kernel ~flow ~cached (e : Support.Tracing.event) : record =
  {
    tr_job = job;
    tr_kernel = kernel;
    tr_flow = flow;
    tr_stage = e.Support.Tracing.ev_stage;
    tr_pass = e.Support.Tracing.ev_pass;
    tr_seconds = e.Support.Tracing.ev_seconds;
    tr_instrs_before = e.Support.Tracing.ev_instrs_before;
    tr_instrs_after = e.Support.Tracing.ev_instrs_after;
    tr_minor_words = e.Support.Tracing.ev_minor_words;
    tr_major_words = e.Support.Tracing.ev_major_words;
    tr_cached = cached;
  }

(* ------------------------------------------------------------------ *)
(* JSON emission                                                      *)
(* ------------------------------------------------------------------ *)

let json_escape (s : string) =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(** The record's fields, in schema order, as (key, rendered value). *)
let record_fields (r : record) : (string * string) list =
  [
    ("job", Printf.sprintf "\"%s\"" (json_escape r.tr_job));
    ("kernel", Printf.sprintf "\"%s\"" (json_escape r.tr_kernel));
    ("flow", Printf.sprintf "\"%s\"" (json_escape r.tr_flow));
    ("stage", Printf.sprintf "\"%s\"" (json_escape r.tr_stage));
    ("pass", Printf.sprintf "\"%s\"" (json_escape r.tr_pass));
    ("seconds", Printf.sprintf "%.6f" r.tr_seconds);
    ("instrs_before", string_of_int r.tr_instrs_before);
    ("instrs_after", string_of_int r.tr_instrs_after);
    ("minor_words", Printf.sprintf "%.0f" r.tr_minor_words);
    ("major_words", Printf.sprintf "%.0f" r.tr_major_words);
    ("cached", string_of_bool r.tr_cached);
  ]

let record_to_json (r : record) : string =
  "{"
  ^ String.concat ", "
      (List.map (fun (k, v) -> Printf.sprintf "\"%s\": %s" k v)
         (record_fields r))
  ^ "}"

let to_json ~(tool : string) (records : record list) : string =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf "{\"version\": %d, \"tool\": \"%s\", \"records\": [\n"
       schema_version (json_escape tool));
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b ("  " ^ record_to_json r))
    records;
  Buffer.add_string b "\n]}\n";
  Buffer.contents b

let write_file ~tool path records =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (to_json ~tool records))

(* ------------------------------------------------------------------ *)
(* Schema validation                                                  *)
(* ------------------------------------------------------------------ *)

let required_keys =
  [
    "job"; "kernel"; "flow"; "stage"; "pass"; "seconds"; "instrs_before";
    "instrs_after"; "minor_words"; "major_words"; "cached";
  ]

(** Split the text of a JSON array of flat objects into the objects'
    texts (no nested objects in the schema, so brace counting is
    exact; braces inside strings are skipped). *)
let split_objects (s : string) : string list =
  let objs = ref [] in
  let depth = ref 0 and start = ref 0 and in_str = ref false in
  String.iteri
    (fun i c ->
      if !in_str then begin
        if c = '"' && (i = 0 || s.[i - 1] <> '\\') then in_str := false
      end
      else
        match c with
        | '"' -> in_str := true
        | '{' ->
            if !depth = 0 then start := i;
            incr depth
        | '}' ->
            decr depth;
            if !depth = 0 then
              objs := String.sub s !start (i - !start + 1) :: !objs
        | _ -> ())
    s;
  List.rev !objs

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(** Structural schema check of a serialized trace: version marker,
    records array, and every record carrying exactly the required
    keys. *)
let validate (json : string) : (unit, string) result =
  if not (contains ~needle:(Printf.sprintf "\"version\": %d" schema_version) json)
  then Error (Printf.sprintf "missing \"version\": %d marker" schema_version)
  else if not (contains ~needle:"\"records\": [" json) then
    Error "missing \"records\" array"
  else
    let body =
      (* everything after the records marker; the header object brace
         is before it, so the remaining objects are exactly the
         records *)
      let marker = "\"records\": [" in
      let rec find i =
        if i + String.length marker > String.length json then -1
        else if String.sub json i (String.length marker) = marker then i
        else find (i + 1)
      in
      let i = find 0 in
      String.sub json i (String.length json - i)
    in
    let objs = split_objects body in
    if objs = [] then Error "trace has no records"
    else
      let bad =
        List.concat_map
          (fun o ->
            List.filter_map
              (fun k ->
                if contains ~needle:(Printf.sprintf "\"%s\":" k) o then None
                else Some (Printf.sprintf "record %s lacks key \"%s\"" o k))
              required_keys)
          objs
      in
      match bad with [] -> Ok () | e :: _ -> Error e

(* ------------------------------------------------------------------ *)
(* Aggregate summary                                                  *)
(* ------------------------------------------------------------------ *)

(** Per-(stage, pass) aggregate over a batch: run count, total and mean
    time, and the net IR delta — the "where does compile time go and
    what does each pass actually do" table. *)
let summary_table (records : record list) : string =
  let tbl : (string * string, int * float * int) Hashtbl.t =
    Hashtbl.create 16
  in
  let order = ref [] in
  List.iter
    (fun r ->
      let k = (r.tr_stage, r.tr_pass) in
      if not (Hashtbl.mem tbl k) then order := k :: !order;
      let n, secs, delta =
        Option.value ~default:(0, 0.0, 0) (Hashtbl.find_opt tbl k)
      in
      Hashtbl.replace tbl k
        ( n + 1,
          secs +. r.tr_seconds,
          delta + (r.tr_instrs_after - r.tr_instrs_before) ))
    records;
  let t =
    Support.Table.create
      ~aligns:
        [ Support.Table.Left; Support.Table.Left; Support.Table.Right;
          Support.Table.Right; Support.Table.Right; Support.Table.Right ]
      [ "stage"; "pass"; "runs"; "total (ms)"; "mean (ms)"; "IR delta" ]
  in
  List.iter
    (fun (stage, pass) ->
      let n, secs, delta = Hashtbl.find tbl (stage, pass) in
      Support.Table.add_row t
        [
          stage;
          pass;
          string_of_int n;
          Printf.sprintf "%.2f" (secs *. 1000.0);
          Printf.sprintf "%.3f" (secs *. 1000.0 /. float_of_int n);
          Printf.sprintf "%+d" delta;
        ])
    (List.rev !order);
  Support.Table.render t
