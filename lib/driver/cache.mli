(** Persistent content-addressed result cache: raw strings filed under
    the hex digest of a caller-hashed identity.  Writes are atomic
    (temp file + rename); hit/miss counters are atomics, so concurrent
    workers can share one cache. *)

type t

val create : dir:string -> t

(** Content address for an identity: the parts are hashed with an
    unambiguous separator (no concatenation collisions). *)
val key : string list -> string

(** Look an entry up; counts a hit or a miss.  Unreadable or torn
    entries are treated as misses. *)
val find : t -> string -> string option

(** Store an entry atomically.  Concurrent stores of one key are
    benign: last rename wins. *)
val store : t -> string -> string -> unit

val hits : t -> int
val misses : t -> int

(** Number of entries currently on disk. *)
val entry_count : t -> int
