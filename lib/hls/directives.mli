(** Extraction of HLS directives (pipeline/unroll/tripcount markers,
    array partitioning) from adapted IR. *)

type loop_directives = {
  pipeline_ii : int option;
  unroll : int option;
  tripcount : int option;
}

val no_directives : loop_directives

(** Directives attached to loop [i] of the function, read from the
    [_ssdm_op_Spec*] markers in its header block. *)
val loop_directives :
  Llvmir.Cfg.t -> Llvmir.Loop_info.t -> int -> loop_directives

type array_info = {
  aname : string;
  dims : int list;
  elem_bits : int;
  partition_factor : int;
  partition_kind : string;  (** "cyclic" | "block" | "complete" *)
  partition_dim : int;
  local : bool;
}

(** Memory ports available after partitioning. *)
val ports : array_info -> int

val array_dims : Llvmir.Ltype.t -> int list * int
val total_elems : array_info -> int

(** All arrays visible to the function: pointer params and local
    allocas, with their partition pragmas resolved. *)
val arrays : Llvmir.Lmodule.func -> array_info list

(** Which array (if any) a pointer value ultimately addresses. *)
val base_array : Llvmir.Findex.t -> Llvmir.Lvalue.t -> string option
