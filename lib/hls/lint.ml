(** The [mhlsc lint] rule registry: dataflow-analysis-driven HLS
    diagnostics.

    Every rule has a stable ID and emits accumulating {!Support.Diag}
    diagnostics instead of failing fast, so one run reports everything
    it can find:

    - [HLS000] (error) — the module fails IR verification;
    - [HLS001] (warning) — a pipelined loop requests an initiation
      interval below the recurrence minimum (register accumulation
      chains and known-distance loop-carried memory dependences);
    - [HLS002] (warning) — a pipelined loop has a loop-carried memory
      dependence the analysis cannot bound (the scheduler must assume
      distance 1);
    - [HLS003] (warning) — an array-partition directive conflicts with
      the observed access pattern (bank conflicts, or a directive that
      cannot apply to the flattened view);
    - [HLS004] (warning) — a store to a local array that no path ever
      reads (dead store);
    - [HLS005] (warning) — an unused top-function parameter (a dangling
      interface port);
    - [HLS006] (warning) — an unreachable basic block;
    - [HLS007] (note) — a loop with no static trip count (latency
      estimation needs a [SpecLoopTripCount] marker);
    - [HLS008] (warning) — a partitioned array is reached through a
      pointer the alias oracle cannot attribute to it, so banking
      cannot be proven conflict-free;
    - [HLS009] (warning) — two functions both write the same module
      global (a cross-function write-write conflict);
    - [HLS010] (warning) — the top function calls a function whose
      memory effects are unknown;
    - [HLS101]–[HLS106] — the {!Adaptor.Compat} issue family
      re-reported as accumulated diagnostics.

    The analyses behind the rules are {!Llvmir.Dataflow} (liveness /
    dead stores), {!Llvmir.Memdep} (loop-carried dependence distances),
    {!Llvmir.Alias} / {!Llvmir.Effects} / {!Llvmir.Parsafe}
    (aliasing, effect footprints, cross-function conflicts) and
    {!Directives} (pipeline/partition requests). *)

open Llvmir
open Linstr
module Sym = Support.Interner
module Diag = Support.Diag

(** The rule catalog: (ID, default severity, one-line description).
    Keep in sync with the README's rule table. *)
let catalog : (string * Diag.severity * string) list =
  [
    ("HLS000", Diag.Error, "module fails LLVM IR verification");
    ("HLS001", Diag.Warning, "requested pipeline II is below the recurrence minimum");
    ("HLS002", Diag.Warning, "loop-carried memory dependence with unknown distance");
    ("HLS003", Diag.Warning, "array partition conflicts with the access pattern");
    ("HLS004", Diag.Warning, "store to a local array that is never read");
    ("HLS005", Diag.Warning, "unused top-function parameter");
    ("HLS006", Diag.Warning, "unreachable basic block");
    ("HLS007", Diag.Note, "loop has no static trip count");
    ("HLS008", Diag.Warning, "may-aliased access defeats array partitioning");
    ("HLS009", Diag.Warning, "cross-function write-write conflict on a global");
    ("HLS010", Diag.Warning, "top function calls a function with unknown effects");
    ("HLS101", Diag.Error, "opaque pointer in HLS input");
    ("HLS102", Diag.Error, "memref descriptor aggregate in HLS input");
    ("HLS103", Diag.Error, "modern intrinsic unsupported by the HLS frontend");
    ("HLS104", Diag.Error, "freeze instruction in HLS input");
    ("HLS105", Diag.Warning, "untranslated modern loop metadata");
    ("HLS106", Diag.Error, "unsupported aggregate operation");
  ]

let cdiv a b = (a + b - 1) / b

(* ------------------------------------------------------------------ *)
(* Recurrence analysis (HLS001)                                       *)
(* ------------------------------------------------------------------ *)

(** Latency of the longest def-use chain from header phi [phi] back
    around the loop to its latch-incoming value [latch_v]: the cycles
    one iteration's value needs before the next iteration can start.
    [None] when the latch value does not depend on the phi (no register
    recurrence through this phi). *)
let recurrence_chain (idx : Findex.t) (phi : Linstr.t)
    (latch_v : Lvalue.t) : (int * Sym.t) option =
  match latch_v with
  | Lvalue.Reg (lr, _) ->
      let memo : (int * Sym.t) option Sym.Tbl.t = Sym.Tbl.create 16 in
      let rec go r =
        if Sym.equal r phi.result then Some (0, r)
        else
          match Sym.Tbl.find_opt memo r with
          | Some v -> v
          | None ->
              Sym.Tbl.add memo r None;  (* cycle guard *)
              let res =
                match Findex.def_instr idx r with
                | None -> None
                | Some i ->
                    let _, cost = Op_model.classify i in
                    let best =
                      List.fold_left
                        (fun acc v ->
                          match v with
                          | Lvalue.Reg (n, _) -> (
                              match (go n, acc) with
                              | Some (c, _), Some (c0, _) when c0 >= c -> acc
                              | Some (c, _), _ -> Some (c, n)
                              | None, _ -> acc)
                          | _ -> acc)
                        None (operands i)
                    in
                    Option.map
                      (fun (c, _) -> (c + cost.Op_model.latency, r))
                      best
              in
              Sym.Tbl.replace memo r res;
              res
      in
      go lr
  | _ -> None

(** Register-recurrence minimum II of loop [j]: the longest carry-phi
    chain, with the register closing it (for the message). *)
let register_rec_mii (cfg : Cfg.t) (li : Loop_info.t) (j : int)
    (idx : Findex.t) : (int * Sym.t) option =
  let l = li.Loop_info.loops.(j) in
  let header = Cfg.block cfg l.Loop_info.header in
  let latch_labels = List.map (Cfg.label cfg) l.Loop_info.latches in
  List.fold_left
    (fun acc (i : Linstr.t) ->
      match i.op with
      | Phi incoming -> (
          let chains =
            List.filter_map
              (fun (v, lbl) ->
                if List.mem lbl latch_labels then recurrence_chain idx i v
                else None)
              incoming
          in
          List.fold_left
            (fun acc c ->
              match (acc, c) with
              | Some (c0, _), (c1, _) when c0 >= c1 -> acc
              | _, c -> Some c)
            acc chains)
      | _ -> acc)
    None header.Lmodule.insts

(** Minimum II imposed by a known-distance carried memory dependence:
    the store→load round trip must fit in [distance] initiations. *)
let mem_dep_mii (d : Memdep.dep) : int option =
  match d.Memdep.dep_verdict with
  | Memdep.Carried dist when dist > 0 ->
      let lat (a : Memdep.access) =
        (snd (Op_model.classify a.Memdep.acc_inst)).Op_model.latency
      in
      Some (cdiv (lat d.Memdep.dep_src + lat d.Memdep.dep_dst) dist)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Per-function rules                                                 *)
(* ------------------------------------------------------------------ *)

let access_pos (cfg : Cfg.t) (a : Memdep.access) =
  Printf.sprintf "%s in %%%s"
    (if a.Memdep.acc_is_store then "store" else "load")
    (Sym.name (Cfg.label cfg a.Memdep.acc_block))

(** HLS001 / HLS002 / HLS007 — loop-level rules. *)
let lint_loops (buf : Diag.buffer) (f : Lmodule.func) (cfg : Cfg.t)
    (li : Loop_info.t) =
  let idx = Findex.build f in
  Array.iteri
    (fun j (l : Loop_info.loop) ->
      let header = Sym.name (Cfg.label cfg l.Loop_info.header) in
      let dirs = Directives.loop_directives cfg li j in
      if
        dirs.Directives.tripcount = None
        && Loop_info.trip_count_pattern li j = None
      then
        Diag.add buf
          (Diag.note ~func:f.Lmodule.fname ~location:header ~rule:"HLS007"
             ~hint:"add a loop trip-count directive (SpecLoopTripCount)"
             "loop has no static trip count; latency cannot be estimated");
      match dirs.Directives.pipeline_ii with
      | None -> ()
      | Some target ->
          let deps = Memdep.analyze_loop cfg li j in
          let reg = register_rec_mii cfg li j idx in
          let mem =
            List.fold_left
              (fun acc d ->
                match (mem_dep_mii d, acc) with
                | Some m, Some (m0, _) when m0 >= m -> acc
                | Some m, _ -> Some (m, d)
                | None, _ -> acc)
              None deps
          in
          let reg_mii = match reg with Some (c, _) -> c | None -> 0 in
          let mem_mii = match mem with Some (m, _) -> m | None -> 0 in
          let min_ii = max 1 (max reg_mii mem_mii) in
          if target < min_ii then begin
            let why =
              if reg_mii >= mem_mii then
                match reg with
                | Some (_, r) ->
                    Printf.sprintf "register recurrence through %%%s"
                      (Sym.name r)
                | None -> "recurrence"
              else
                match mem with
                | Some (_, d) ->
                    Printf.sprintf
                      "loop-carried dependence on %s (%s -> %s, distance %s)"
                      d.Memdep.dep_array
                      (access_pos cfg d.Memdep.dep_src)
                      (access_pos cfg d.Memdep.dep_dst)
                      (match d.Memdep.dep_verdict with
                      | Memdep.Carried k -> string_of_int k
                      | v -> Memdep.verdict_to_string v)
                | None -> "memory dependence"
            in
            Diag.add buf
              (Diag.warning ~func:f.Lmodule.fname ~location:header
                 ~rule:"HLS001"
                 ~hint:
                   (Printf.sprintf "request II >= %d or break the recurrence"
                      min_ii)
                 "pipeline II %d is infeasible: %s needs II >= %d" target why
                 min_ii)
          end;
          List.iter
            (fun (d : Memdep.dep) ->
              if d.Memdep.dep_verdict = Memdep.Unknown then
                Diag.add buf
                  (Diag.warning ~func:f.Lmodule.fname ~location:header
                     ~rule:"HLS002"
                     ~hint:
                       "the scheduler must serialize these accesses; make \
                        the subscripts affine in the loop IV"
                     "loop-carried dependence on %s with unknown distance \
                      (%s -> %s) in pipelined loop"
                     d.Memdep.dep_array
                     (access_pos cfg d.Memdep.dep_src)
                     (access_pos cfg d.Memdep.dep_dst)))
            deps)
    li.Loop_info.loops

(** HLS003 — array-partition directives vs access patterns. *)
let lint_partitions (buf : Diag.buffer) (f : Lmodule.func) (cfg : Cfg.t)
    (li : Loop_info.t) =
  let arrays = Directives.arrays f in
  let find_array n =
    List.find_opt (fun a -> a.Directives.aname = n) arrays
  in
  (* a directive that cannot apply to the (flattened) view at all *)
  List.iter
    (fun (p : Lmodule.param) ->
      let get k = List.assoc_opt k p.Lmodule.pattrs in
      let factor =
        match get "fpga.partition.factor" with
        | Some s -> Option.value ~default:1 (int_of_string_opt s)
        | None -> 1
      in
      if factor > 1 then
        match find_array p.Lmodule.pname with
        | Some a
          when a.Directives.partition_factor <= 1
               && a.Directives.partition_kind <> "complete" ->
            let dim =
              Option.value ~default:"1" (get "fpga.partition.dim")
            in
            Diag.add buf
              (Diag.warning ~func:f.Lmodule.fname ~location:p.Lmodule.pname
                 ~rule:"HLS003"
                 ~hint:
                   "re-run descriptor elimination with delinearization to \
                    recover the array shape"
                 "partition directive (factor %d, dim %s) cannot apply: the \
                  %d-dimensional view of %%%s lacks that dimension"
                 factor dim
                 (List.length a.Directives.dims)
                 p.Lmodule.pname)
        | _ -> ())
    f.Lmodule.params;
  (* bank conflicts between the partition scheme and the access stride
     in pipelined loops *)
  let seen = Hashtbl.create 8 in
  Array.iteri
    (fun j (l : Loop_info.loop) ->
      let dirs = Directives.loop_directives cfg li j in
      if dirs.Directives.pipeline_ii <> None then
        match Memdep.iv_phi cfg li j with
        | None -> ()
        | Some iv ->
            let header = Sym.name (Cfg.label cfg l.Loop_info.header) in
            List.iter
              (fun (acc : Memdep.access) ->
                match (acc.Memdep.acc_subs, find_array acc.Memdep.acc_array)
                with
                | Some forms, Some a
                  when a.Directives.partition_factor > 1
                       && a.Directives.partition_kind <> "complete" -> (
                    (* forms.(0) walks the pointer; partition dims are
                       1-based into the array shape *)
                    let fi = a.Directives.partition_dim in
                    match List.nth_opt forms fi with
                    | None -> ()
                    | Some form ->
                        let c = Memdep.coeff_of form iv in
                        let flag msg hint =
                          let key = (a.Directives.aname, header, msg) in
                          if not (Hashtbl.mem seen key) then begin
                            Hashtbl.add seen key ();
                            Diag.add buf
                              (Diag.warning ~func:f.Lmodule.fname
                                 ~location:header ~rule:"HLS003" ~hint "%s"
                                 msg)
                          end
                        in
                        if
                          a.Directives.partition_kind = "cyclic"
                          && c mod a.Directives.partition_factor = 0
                        then
                          flag
                            (Printf.sprintf
                               "cyclic partition (factor %d, dim %d) of %s: \
                                access stride %d maps every iteration to one \
                                bank"
                               a.Directives.partition_factor
                               a.Directives.partition_dim a.Directives.aname
                               c)
                            "choose a factor coprime to the stride, or \
                             partition a different dimension"
                        else if a.Directives.partition_kind = "block" then begin
                          let total =
                            Option.value ~default:0
                              (List.nth_opt a.Directives.dims
                                 (a.Directives.partition_dim - 1))
                          in
                          let bsize =
                            max 1 (total / a.Directives.partition_factor)
                          in
                          if c <> 0 && abs c < bsize then
                            flag
                              (Printf.sprintf
                                 "block partition (factor %d, dim %d) of %s: \
                                  stride-%d accesses stay in one block bank"
                                 a.Directives.partition_factor
                                 a.Directives.partition_dim a.Directives.aname
                                 c)
                              "use cyclic partitioning for unit-stride \
                               pipelined access"
                        end)
                | _ -> ())
              (Memdep.accesses_in cfg li j))
    li.Loop_info.loops

(** HLS004 — dead stores to local arrays. *)
let lint_dead_stores (buf : Diag.buffer) (f : Lmodule.func) (cfg : Cfg.t) =
  List.iter
    (fun (ds : Dataflow.dead_store) ->
      Diag.add buf
        (Diag.warning ~func:f.Lmodule.fname
           ~location:(Sym.name (Cfg.label cfg ds.Dataflow.ds_block))
           ~rule:"HLS004"
           ~hint:"remove the store, or the whole array if it is write-only"
           "store to local array %%%s is never read (instruction %d)"
           ds.Dataflow.ds_array ds.Dataflow.ds_index))
    (Dataflow.dead_stores cfg)

(** HLS005 — unused parameters of the top function. *)
let lint_unused_params (buf : Diag.buffer) (f : Lmodule.func) =
  let idx = Findex.build f in
  List.iter
    (fun (p : Lmodule.param) ->
      if not (Findex.is_used idx (Sym.intern p.Lmodule.pname)) then
        Diag.add buf
          (Diag.warning ~func:f.Lmodule.fname ~location:p.Lmodule.pname
             ~rule:"HLS005"
             ~hint:"drop the parameter or wire it into the datapath"
             "top-function parameter %%%s is never used (dangling interface \
              port)"
             p.Lmodule.pname))
    f.Lmodule.params

(** HLS008 — a partitioned array reached through a pointer the alias
    oracle cannot attribute.  Banking assumes every access to the
    array is visible as such; a [May_alias] access (an unresolvable
    pointer that might land in the array) makes the bank assignment
    unprovable, so the partition directive buys nothing. *)
let lint_aliased_partitions (buf : Diag.buffer) (f : Lmodule.func) =
  let partitioned =
    List.filter
      (fun (p : Lmodule.param) ->
        match List.assoc_opt "fpga.partition.factor" p.Lmodule.pattrs with
        | Some s -> Option.value ~default:1 (int_of_string_opt s) > 1
        | None -> false)
      f.Lmodule.params
  in
  if partitioned <> [] then begin
    let idx = Findex.build f in
    let ptrs =
      List.rev
        (Lmodule.fold_insts
           (fun acc (i : Linstr.t) ->
             match i.op with
             | Load (_, p) | Store (_, p) -> p :: acc
             | _ -> acc)
           [] f)
    in
    List.iter
      (fun (p : Lmodule.param) ->
        let pv = Lvalue.Reg (Sym.intern p.Lmodule.pname, p.Lmodule.pty) in
        match
          List.find_opt
            (fun q -> Alias.base_alias idx q pv = Alias.May_alias)
            ptrs
        with
        | None -> ()
        | Some q ->
            Diag.add buf
              (Diag.warning ~func:f.Lmodule.fname ~location:p.Lmodule.pname
                 ~rule:"HLS008"
                 ~hint:
                   "make every access a direct getelementptr on the array, \
                    or drop the partition directive"
                 "partition directive on %%%s cannot be honoured: access \
                  through %s may alias the array but is not attributable to \
                  a bank"
                 p.Lmodule.pname (Lvalue.to_string q)))
      partitioned
  end

(** HLS009 — cross-function write-write conflicts on module globals,
    straight from the {!Llvmir.Parsafe} verdict. *)
let lint_global_conflicts (buf : Diag.buffer) (m : Lmodule.t)
    (eff : Effects.t) =
  match Parsafe.check ~effects:eff m with
  | Parsafe.Safe -> ()
  | Parsafe.Unsafe cs ->
      List.iter
        (function
          | Parsafe.Global_write_write (fa, fb, g) ->
              Diag.add buf
                (Diag.warning ~func:fa ~location:("@" ^ g) ~rule:"HLS009"
                   ~hint:
                     "route the shared state through an explicit port, or \
                      merge the writers"
                   "functions @%s and @%s both write global @%s; the design \
                    cannot be parallelized or dataflow-scheduled across them"
                   fa fb g)
          | Parsafe.Global_read_write _ | Parsafe.Unknown_effects _ -> ())
        cs

(** HLS010 — the top function calls into unknown effects: every
    downstream analysis (scheduling, dependence, partitioning) has to
    assume the worst about the whole design. *)
let lint_unknown_callees (buf : Diag.buffer) (eff : Effects.t)
    (f : Lmodule.func) =
  let seen = Hashtbl.create 4 in
  Lmodule.fold_insts
    (fun () (i : Linstr.t) ->
      match i.op with
      | Call { callee; _ }
        when (not (Effects.is_inert_callee callee))
             && not (Hashtbl.mem seen callee) -> (
          Hashtbl.add seen callee ();
          let warn why =
            Diag.add buf
              (Diag.warning ~func:f.Lmodule.fname ~location:callee
                 ~rule:"HLS010"
                 ~hint:
                   "define the callee in the module or replace the call \
                    with an HLS marker intrinsic"
                 "top function calls @%s %s; its memory effects are unknown"
                 callee why)
          in
          match Effects.footprint eff callee with
          | None -> warn "which is not defined in the module"
          | Some fp when Effects.closed fp -> ()
          | Some fp ->
              warn
                (Printf.sprintf "whose footprint is open (%s)"
                   (String.concat ", " fp.Effects.fp_unknown)))
      | _ -> ())
    () f

(** HLS006 — unreachable blocks. *)
let lint_unreachable (buf : Diag.buffer) (f : Lmodule.func) (cfg : Cfg.t) =
  List.iter
    (fun b ->
      Diag.add buf
        (Diag.warning ~func:f.Lmodule.fname
           ~location:(Sym.name (Cfg.label cfg b))
           ~rule:"HLS006" ~hint:"delete the block"
           "basic block %%%s is unreachable from entry"
           (Sym.name (Cfg.label cfg b))))
    (Cfg.unreachable_blocks cfg)

(* ------------------------------------------------------------------ *)
(* Driver                                                             *)
(* ------------------------------------------------------------------ *)

(** Run every rule over [m] and return the accumulated diagnostics.

    [top] names the function checked for interface-level rules
    (HLS005); it defaults to the single function when [m] has exactly
    one.  [only] keeps just the listed rule IDs.  [werror] promotes
    warnings to errors.  A verifier failure yields a single [HLS000]
    error for the offending function and skips its other rules. *)
let run ?(only : string list option) ?(werror = false) ?(top : string option)
    (m : Lmodule.t) : Diag.t list =
  let buf = Diag.create () in
  let top_name =
    match top with
    | Some t -> Some t
    | None -> (
        match m.Lmodule.funcs with
        | [ f ] -> Some f.Lmodule.fname
        | _ -> None)
  in
  (try Diag.add_all buf (Adaptor.Compat.to_diagnostics (Adaptor.Compat.check m))
   with Support.Err.Compile_error e ->
     Diag.add buf (Diag.of_err ~rule:"HLS000" e));
  let eff =
    try
      let e = Effects.summarize m in
      lint_global_conflicts buf m e;
      Some e
    with Support.Err.Compile_error e ->
      Diag.add buf (Diag.of_err ~rule:"HLS000" e);
      None
  in
  List.iter
    (fun (f : Lmodule.func) ->
      try
        Lverifier.verify_func m f;
        let cfg = Cfg.build f in
        let li = Loop_info.compute cfg in
        lint_loops buf f cfg li;
        lint_partitions buf f cfg li;
        lint_dead_stores buf f cfg;
        lint_unreachable buf f cfg;
        lint_aliased_partitions buf f;
        if top_name = Some f.Lmodule.fname then begin
          lint_unused_params buf f;
          Option.iter (fun e -> lint_unknown_callees buf e f) eff
        end
      with Support.Err.Compile_error e ->
        Diag.add buf (Diag.of_err ~rule:"HLS000" e))
    m.Lmodule.funcs;
  let ds = Diag.contents buf in
  let ds =
    match only with
    | None -> ds
    | Some rules -> List.filter (fun d -> List.mem d.Diag.rule rules) ds
  in
  if werror then Diag.promote_warnings ds else ds
