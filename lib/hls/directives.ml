(** Extraction of synthesis directives from HLS-readable IR:
    loop markers ([_ssdm_op_Spec*] calls in loop headers) and array
    interface/partition attributes on top-function parameters. *)

open Llvmir
open Linstr

type loop_directives = {
  pipeline_ii : int option;  (** requested initiation interval *)
  unroll : int option;  (** factor; [Some 0] = full unroll *)
  tripcount : int option;
}

let no_directives = { pipeline_ii = None; unroll = None; tripcount = None }

(** Directives of loop [j]: marker calls in its header block. *)
let loop_directives (cfg : Cfg.t) (li : Loop_info.t) (j : int) :
    loop_directives =
  let l = li.Loop_info.loops.(j) in
  let header = Cfg.block cfg l.Loop_info.header in
  List.fold_left
    (fun acc (i : Linstr.t) ->
      match i.op with
      | Call { callee; args; _ } when callee = Adaptor_markers.spec_pipeline
        -> (
          match args with
          | [ Lvalue.Const (Lvalue.CInt (ii, _)) ] ->
              { acc with pipeline_ii = Some (max 1 ii) }
          | _ -> { acc with pipeline_ii = Some 1 })
      | Call { callee; args; _ } when callee = Adaptor_markers.spec_unroll -> (
          match args with
          | [ Lvalue.Const (Lvalue.CInt (f, _)) ] -> { acc with unroll = Some f }
          | _ -> acc)
      | Call { callee; args; _ } when callee = Adaptor_markers.spec_trip_count
        -> (
          match args with
          | [ Lvalue.Const (Lvalue.CInt (n, _)) ] ->
              { acc with tripcount = Some n }
          | _ -> acc)
      | _ -> acc)
    no_directives header.Lmodule.insts

(* ------------------------------------------------------------------ *)
(* Arrays                                                             *)
(* ------------------------------------------------------------------ *)

type array_info = {
  aname : string;  (** root register name (parameter or alloca) *)
  dims : int list;  (** [ [] ] for scalar pointers *)
  elem_bits : int;
  partition_factor : int;  (** 1 = unpartitioned *)
  partition_kind : string;  (** "cyclic" | "block" | "complete" | "none" *)
  partition_dim : int;
  local : bool;  (** alloca (counts toward BRAM usage) *)
}

(** Memory ports available per cycle (true dual-port BRAM × partitions;
    "complete" partitioning registers the array — effectively unlimited
    ports). *)
let ports (a : array_info) =
  if a.partition_kind = "complete" then 1024
  else 2 * max 1 a.partition_factor

let rec array_dims (t : Ltype.t) =
  match t with
  | Ltype.Array (n, elt) ->
      let dims, eb = array_dims elt in
      (n :: dims, eb)
  | t -> ([], 8 * max 1 (Ltype.sizeof t))

let total_elems (a : array_info) = List.fold_left ( * ) 1 a.dims

(** Collect the arrays of a function: pointer parameters and local
    allocas of aggregate type. *)
let arrays (f : Lmodule.func) : array_info list =
  let of_param (p : Lmodule.param) =
    match p.pty with
    | Ltype.Ptr (Some pointee) ->
        let dims, elem_bits = array_dims pointee in
        let get k = List.assoc_opt k p.pattrs in
        let factor =
          match get "fpga.partition.factor" with
          | Some s -> Option.value ~default:1 (int_of_string_opt s)
          | None -> 1
        in
        let kind =
          Option.value ~default:(if factor > 1 then "cyclic" else "none")
            (get "fpga.partition.kind")
        in
        let dim =
          match get "fpga.partition.dim" with
          | Some s -> Option.value ~default:1 (int_of_string_opt s)
          | None -> 1
        in
        (* A partition directive is only effective when the array view
           still has the dimension it names — a flattened (1-D) view of
           a multi-dimensional array cannot honour a dim>0 partition
           of the original shape (the shape information is gone).
           This is where descriptor elimination pays off. *)
        let effective_factor =
          if factor <= 1 then 1
          else if kind = "complete" then factor
          else if dim >= 1 && dim <= List.length dims then factor
          else 1
        in
        Some
          {
            aname = p.pname;
            dims;
            elem_bits;
            partition_factor = effective_factor;
            partition_kind = (if effective_factor > 1 || kind = "complete" then kind else "none");
            partition_dim = dim;
            local = false;
          }
    | _ -> None
  in
  let params = List.filter_map of_param f.params in
  let locals = ref [] in
  Lmodule.iter_insts
    (fun (i : Linstr.t) ->
      match i.op with
      | Alloca ((Ltype.Array _ as ty), _) when has_result i ->
          let dims, elem_bits = array_dims ty in
          locals :=
            {
              aname = result_name i;
              dims;
              elem_bits;
              partition_factor = 1;
              partition_kind = "none";
              partition_dim = 1;
              local = true;
            }
            :: !locals
      | _ -> ())
    f;
  params @ List.rev !locals

(** Root array of a pointer value: walk GEP/bitcast chains back to a
    parameter or alloca name. *)
let base_array (idx : Findex.t) (v : Lvalue.t) : string option =
  Option.map Support.Interner.name (Findex.base_pointer idx v)
