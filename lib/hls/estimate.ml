(** QoR estimation façade.

    The report vocabulary lives in {!Qor} (re-exported here so
    consumers keep reading [Estimate.report] fields and catching
    [Estimate.Rejected] unchanged); the estimation itself lives behind
    the {!Backend.S} signature, with {!Backend_static} as the default
    discipline.  [synthesize] is a thin alias over the static backend
    — callers that want to pick a discipline go through
    {!Backend.synthesize}. *)

include Qor

let synthesize = Backend_static.synthesize
