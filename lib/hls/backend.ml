(** The estimation-backend API: one IR, multiple scheduling
    disciplines.

    Mirrors CIRCT's [hlstool] split between statically-scheduled
    pipeline flows and dynamically-scheduled handshake flows: every
    backend turns an adapted module into the same {!Qor.report} shape
    through [schedule] (loop-nest walk + timing) and [bind] (resource
    pricing).  Consumers select a discipline with {!sched} and obtain
    the implementation as a first-class module via {!of_sched}. *)

(** A scheduling discipline.  [Static] is the classic list scheduler
    ({!Backend_static}); [Dynamic] is the elastic dataflow estimator
    ({!Backend_dynamic}). *)
type sched = Static | Dynamic

(** Wire/cache-key name of a discipline: ["static"] / ["dynamic"]. *)
let sched_name = function Static -> "static" | Dynamic -> "dynamic"

let sched_of_name = function
  | "static" -> Some Static
  | "dynamic" -> Some Dynamic
  | _ -> None

let all_scheds = [ Static; Dynamic ]

(** What every estimation backend provides. *)
module type S = sig
  (** Stable identifier, used in cache keys and report labels. *)
  val name : string

  (** One-line human description for reports and [--help]. *)
  val describe : string

  (** Walk the top function's loop nest and time it under this
      backend's discipline.
      @raise Qor.Rejected when the module is not synthesizable. *)
  val schedule :
    ?clock_ns:float -> top:string -> Llvmir.Lmodule.t -> Qor.plan

  (** Price the plan's unit demand and fabric into resources. *)
  val bind : Qor.plan -> Qor.resources

  (** [schedule] then [bind], folded into the final report.
      @raise Qor.Rejected when the module is not synthesizable. *)
  val synthesize :
    ?clock_ns:float -> top:string -> Llvmir.Lmodule.t -> Qor.report
end

let of_sched : sched -> (module S) = function
  | Static -> (module Backend_static)
  | Dynamic -> (module Backend_dynamic)

(** Convenience dispatcher: synthesize under the given discipline. *)
let synthesize ?clock_ns ~(sched : sched) ~(top : string)
    (m : Llvmir.Lmodule.t) : Qor.report =
  let (module B) = of_sched sched in
  B.synthesize ?clock_ns ~top m
