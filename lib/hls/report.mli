(** Vitis-HLS-style text rendering of synthesis reports. *)

val render : Estimate.report -> string
