(** Statically-scheduled estimation backend (list scheduling, shared
    functional units, RecMII-bound pipelining).  Implements the
    {!Backend.S} signature; {!Estimate.synthesize} is a thin alias
    over {!synthesize}. *)

val name : string
val describe : string

(** Schedule the top function into a backend-neutral plan.
    @raise Qor.Rejected when the module is not synthesizable. *)
val schedule :
  ?clock_ns:float -> top:string -> Llvmir.Lmodule.t -> Qor.plan

(** Bind the plan's functional-unit demand to fabric resources. *)
val bind : Qor.plan -> Qor.resources

(** [schedule] then [bind], folded into the final report.
    @raise Qor.Rejected when the module is not synthesizable. *)
val synthesize :
  ?clock_ns:float -> top:string -> Llvmir.Lmodule.t -> Qor.report
