(** Dynamically-scheduled (elastic / dataflow) estimation backend, in
    the style of Dynamatic's handshake circuits.

    Instead of a static schedule decided at compile time, every
    operation becomes its own spatial unit that {e fires when its
    operand tokens arrive}.  Consequences modelled here:

    - no combinational chaining: every unit registers its handshake,
      so a 0-latency ALU op still occupies one cycle;
    - no functional-unit sharing: unit count per class is the {e sum}
      over the circuit, not the maximum over loop schedules;
    - every dependence edge is an elastic channel whose FIFO costs
      BRAM/LUT/FF via {!Op_model.fifo_cost};
    - loops always overlap iterations, and the initiation interval
      emerges from the {e token round-trip time} of the loop-carried
      dependence cycle (longest elastic path from a carry phi's
      consumers back to the latch definition, plus one cycle through
      the back-edge buffer) instead of a statically computed RecMII.

    The loop-nest walk mirrors {!Backend_static}: the dependence graph
    is built by {!Schedule.run} and re-timed under elastic firing
    rules; inner loops appear as barrier nodes of known latency. *)

open Llvmir

let name = "dynamic"
let describe =
  "dynamically-scheduled elastic estimator (dataflow firing, token \
   round-trip II, FIFO-buffered channels)"

let fail = Support.Err.fail ~pass:"hls.estimate"

module FuMap = Qor.FuMap

(** Elastic occupancy of one node: handshake registering makes every
    real operation take at least a cycle; inner-loop barriers keep
    their estimated latency. *)
let elastic_latency (nd : Schedule.node) : int = max 1 nd.Schedule.latency

(** ASAP dataflow re-timing of a built dependence graph: a unit fires
    as soon as every operand token has arrived.  Returns the per-node
    finish times and the circuit latency. *)
let elastic_times (s : Schedule.t) : int array * int =
  let n = Array.length s.Schedule.nodes in
  let finish = Array.make n 0 in
  Array.iter
    (fun (nd : Schedule.node) ->
      let ready =
        List.fold_left (fun acc p -> max acc finish.(p)) 0 nd.Schedule.preds
      in
      finish.(nd.Schedule.nid) <- ready + elastic_latency nd)
    s.Schedule.nodes;
  (finish, Array.fold_left max 0 finish)

(** Token round-trip time of the carried-dependence cycle: the longest
    elastic path from any consumer of carry phi [phi] to the final
    replica's definition of [latch], plus one cycle through the
    back-edge buffer that returns the token to the phi. *)
let token_round_trip ~(replicas : int) (s : Schedule.t)
    (carries : (Support.Interner.t * Support.Interner.t) list) : int =
  let n = Array.length s.Schedule.nodes in
  let rtt = ref 1 in
  List.iter
    (fun (phi, latch) ->
      let dist = Array.make n (-1) in
      Array.iter
        (fun (nd : Schedule.node) ->
          let base =
            if nd.Schedule.carry_base = Some phi then Some 0
            else
              List.fold_left
                (fun acc p ->
                  if dist.(p) >= 0 then
                    match acc with
                    | None -> Some dist.(p)
                    | Some d -> Some (max d dist.(p))
                  else acc)
                None nd.Schedule.preds
          in
          match base with
          | Some d -> dist.(nd.Schedule.nid) <- d + elastic_latency nd
          | None -> ())
        s.Schedule.nodes;
      Array.iter
        (fun (nd : Schedule.node) ->
          if
            nd.Schedule.replica = replicas - 1
            && nd.Schedule.result = latch
            && dist.(nd.Schedule.nid) >= 0
          then rtt := max !rtt (dist.(nd.Schedule.nid) + 1))
        s.Schedule.nodes)
    carries;
  !rtt

(** Spatial unit demand: every node is its own unit, so counts sum
    instead of taking the per-schedule maximum. *)
let fu_units_spatial (s : Schedule.t) : (Op_model.cost * int) FuMap.t =
  Array.fold_left
    (fun acc (nd : Schedule.node) ->
      match nd.Schedule.fu with
      | Op_model.FU_none | Op_model.FU_mem_read | Op_model.FU_mem_write -> acc
      | fu ->
          let key = Op_model.fu_name fu in
          let _, u =
            Option.value ~default:(nd.Schedule.cost, 0) (FuMap.find_opt key acc)
          in
          FuMap.add key (nd.Schedule.cost, u + 1) acc)
    FuMap.empty s.Schedule.nodes

let fu_merge_sum a b =
  FuMap.union (fun _ (c, u1) (_, u2) -> Some (c, u1 + u2)) a b

(** Default elastic-channel geometry: word-wide tokens, two slots (one
    transparent + one opaque buffer, the minimal throughput-preserving
    configuration). *)
let channel_bits = 32
let channel_depth = 2

(** FIFO fabric for one loop-body circuit: one channel per dependence
    edge of a real (non-barrier) node, one control-token channel per
    inner-loop barrier, and one back-edge buffer per carried value. *)
let fifo_fabric (s : Schedule.t) (carries : ('a * 'b) list) : Qor.resources =
  let channels =
    Array.fold_left
      (fun acc (nd : Schedule.node) ->
        if nd.Schedule.is_inner then acc + 1
        else acc + List.length nd.Schedule.preds)
      0 s.Schedule.nodes
    + List.length carries
  in
  let bram, lut, ff =
    Op_model.fifo_cost ~depth:channel_depth ~bits:channel_bits
  in
  {
    Qor.bram = channels * bram;
    dsp = 0;
    lut = channels * lut;
    ff = channels * ff;
  }

(* ------------------------------------------------------------------ *)

type loop_estimate = {
  total : int;
  reports : Qor.loop_report list;
  fus : (Op_model.cost * int) FuMap.t;
  fifos : Qor.resources;
  accesses_per_run : (string * int) list;
}

let acc_merge a b =
  List.fold_left
    (fun acc (k, v) ->
      let prev = Option.value ~default:0 (List.assoc_opt k acc) in
      (k, prev + v) :: List.remove_assoc k acc)
    a b

let rec body_items ~clock_ns ~arrays ~idx (cfg : Cfg.t) (li : Loop_info.t)
    (f : Lmodule.func) (j : int option) :
    Schedule.item list
    * Qor.loop_report list
    * (Op_model.cost * int) FuMap.t
    * Qor.resources
    * (string * int) list =
  let n = Cfg.n_blocks cfg in
  let in_this b =
    match j with
    | None -> li.Loop_info.loop_of_block.(b) = None
    | Some j -> (
        match li.Loop_info.loop_of_block.(b) with
        | Some k -> k = j
        | None -> false)
  in
  let children =
    match j with
    | None -> Loop_info.top_level li
    | Some j -> li.Loop_info.loops.(j).Loop_info.children
  in
  let child_est =
    List.map
      (fun c -> (c, estimate_loop ~clock_ns ~arrays ~idx cfg li f c))
      children
  in
  let items = ref [] in
  let reports = ref [] in
  let fus = ref FuMap.empty in
  let fifos = ref Qor.res_zero in
  let child_acc = ref [] in
  for b = 0 to n - 1 do
    if in_this b then begin
      let blk = Cfg.block cfg b in
      List.iter (fun i -> items := Schedule.Instr i :: !items) blk.Lmodule.insts
    end
    else
      List.iter
        (fun (c, est) ->
          if li.Loop_info.loops.(c).Loop_info.header = b then begin
            items :=
              Schedule.Inner { loop_idx = c; latency = est.total } :: !items;
            reports := !reports @ est.reports;
            fus := fu_merge_sum !fus est.fus;
            fifos := Qor.res_add !fifos est.fifos;
            child_acc := acc_merge !child_acc est.accesses_per_run
          end)
        child_est
  done;
  (List.rev !items, !reports, !fus, !fifos, !child_acc)

and estimate_loop ~clock_ns ~arrays ~idx (cfg : Cfg.t) (li : Loop_info.t)
    (f : Lmodule.func) (j : int) : loop_estimate =
  let l = li.Loop_info.loops.(j) in
  let dir = Directives.loop_directives cfg li j in
  let tripcount =
    match dir.Directives.tripcount with
    | Some n -> n
    | None -> (
        match Loop_info.trip_count li j with
        | Some n -> n
        | None ->
            fail "@%s: loop at %%%s has no static trip count" f.Lmodule.fname
              (Support.Interner.name (Cfg.label cfg l.Loop_info.header)))
  in
  let unroll =
    match dir.Directives.unroll with
    | Some 0 -> max 1 tripcount
    | Some u -> max 1 (min u tripcount)
    | None -> 1
  in
  let trip' = (tripcount + unroll - 1) / max 1 unroll in
  let items, child_reports, child_fus, child_fifos, child_acc =
    body_items ~clock_ns ~arrays ~idx cfg li f (Some j)
  in
  let header_blk = Cfg.block cfg l.Loop_info.header in
  let latch_labels = List.map (Cfg.label cfg) l.Loop_info.latches in
  let carries =
    List.filter_map
      (fun (i : Linstr.t) ->
        match i.Linstr.op with
        | Linstr.Phi incoming -> (
            match
              List.find_opt (fun (_, lbl) -> List.mem lbl latch_labels) incoming
            with
            | Some (Lvalue.Reg (latch_reg, _), _) ->
                Some (i.Linstr.result, latch_reg)
            | _ -> None)
        | _ -> None)
      header_blk.Lmodule.insts
  in
  (* the dependence graph is shared with the static backend; only the
     timing interpretation differs *)
  let sched =
    Schedule.run ~clock_ns ~arrays ~carries ~replicas:unroll ~idx items
  in
  let _, iter_elastic = elastic_times sched in
  let iteration_latency = max 1 iter_elastic in
  let per_iter_acc = acc_merge sched.Schedule.mem_accesses child_acc in
  let ports_of name =
    match
      List.find_opt
        (fun (a : Directives.array_info) -> a.Directives.aname = name)
        arrays
    with
    | Some a -> Directives.ports a
    | None -> 2
  in
  let res_mii =
    List.fold_left
      (fun acc (a, c) -> max acc ((c + ports_of a - 1) / ports_of a))
      1 per_iter_acc
  in
  let ii_token = token_round_trip ~replicas:unroll sched carries in
  (* dataflow execution always overlaps iterations: the achieved II is
     whatever the token cycle and the memory ports allow *)
  let ii = max ii_token res_mii in
  let total = iteration_latency + ((trip' - 1) * ii) + 2 in
  let this_report =
    {
      Qor.label = Support.Interner.name (Cfg.label cfg l.Loop_info.header);
      depth = l.Loop_info.depth;
      tripcount;
      unroll;
      pipelined = true;
      target_ii = None;
      achieved_ii = Some ii;
      rec_mii = ii_token;
      res_mii;
      iteration_latency;
      total_latency = total;
      mem_accesses = per_iter_acc;
    }
  in
  {
    total;
    reports = this_report :: child_reports;
    fus = fu_merge_sum child_fus (fu_units_spatial sched);
    fifos = Qor.res_add child_fifos (fifo_fabric sched carries);
    accesses_per_run = List.map (fun (a, c) -> (a, c * trip')) per_iter_acc;
  }

(* ------------------------------------------------------------------ *)

(** Schedule the top function under elastic firing rules.

    @raise Qor.Rejected when the IR is outside the HLS-readable subset
    (run the adaptor first). *)
let schedule ?(clock_ns = Op_model.default_clock_ns) ~(top : string)
    (m : Lmodule.t) : Qor.plan =
  (match Adaptor_markers.legality_errors m with
  | [] -> ()
  | errs -> raise (Qor.Rejected errs));
  let f = Lmodule.find_func_exn m top in
  let cfg = Cfg.build f in
  let li = Loop_info.compute cfg in
  let idx = Findex.build f in
  let arrays = Directives.arrays f in
  let items, loop_reports, loop_fus, loop_fifos, _ =
    body_items ~clock_ns ~arrays ~idx cfg li f None
  in
  let sched =
    Schedule.run ~clock_ns ~arrays ~carries:[] ~replicas:1 ~idx items
  in
  let _, top_elastic = elastic_times sched in
  let latency = top_elastic + 2 in
  let fus = fu_merge_sum loop_fus (fu_units_spatial sched) in
  let fifos = Qor.res_add loop_fifos (fifo_fabric sched []) in
  (* handshake controllers replace the static FSM: a fork/join/branch
     steering network per loop instead of a counter-driven FSM *)
  let n_loops = List.length loop_reports in
  let control =
    {
      Qor.res_zero with
      Qor.lut = 120 + (60 * n_loops);
      ff = 160 + (80 * n_loops);
    }
  in
  {
    Qor.p_top = top;
    p_clock_ns = clock_ns;
    p_latency = latency;
    p_loops = loop_reports;
    p_fus = fus;
    p_extra = Qor.res_add fifos control;
    p_arrays = arrays;
    p_warnings = [];
  }

(** Resource binding: spatial unit demand priced by {!Op_model}, array
    BRAM banks, and the elastic FIFO + handshake fabric carried by the
    plan. *)
let bind (p : Qor.plan) : Qor.resources = Qor.bind_fus p

let synthesize ?(clock_ns = Op_model.default_clock_ns) ~(top : string)
    (m : Lmodule.t) : Qor.report =
  let plan = schedule ~clock_ns ~top m in
  Qor.report_of_plan plan (bind plan)
