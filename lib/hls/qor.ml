(** Shared quality-of-result vocabulary for every estimation backend.

    Both the static list-scheduling backend ({!Backend_static}) and the
    dynamically-scheduled elastic backend ({!Backend_dynamic}) produce
    the same {!report} shape, reject with the same {!Rejected}
    exception, and describe their intermediate result with the same
    {!plan}.  {!Estimate} re-exports everything here, so downstream
    consumers keep reading [Estimate.report] fields unchanged. *)

type resources = { bram : int; dsp : int; ff : int; lut : int }

let res_add a b =
  { bram = a.bram + b.bram; dsp = a.dsp + b.dsp; ff = a.ff + b.ff; lut = a.lut + b.lut }

let res_zero = { bram = 0; dsp = 0; ff = 0; lut = 0 }

type loop_report = {
  label : string;  (** header block label *)
  depth : int;
  tripcount : int;
  unroll : int;
  pipelined : bool;
  target_ii : int option;
  achieved_ii : int option;
  rec_mii : int;
      (** static backend: recurrence-constrained MII; dynamic backend:
          token round-trip time on the dependence cycle *)
  res_mii : int;
  iteration_latency : int;
  total_latency : int;
  mem_accesses : (string * int) list;
}

type report = {
  top : string;
  clock_ns : float;
  latency : int;  (** total function latency, cycles *)
  interval : int;  (** function initiation interval *)
  loops : loop_report list;  (** outermost-first, layout order *)
  resources : resources;
  arrays : Directives.array_info list;
  warnings : string list;
}

(** Shared backend rejection error: the module is outside the
    HLS-readable subset (run the adaptor first). *)
exception Rejected of string list

(** Stable comparable key over a report's quality-of-result numbers.
    Gives consumers (DSE, regression diffing) a total order that is
    independent of the report's non-QoR payload (loop list, warnings),
    so sorting and deduplication are deterministic across runs. *)
type qor_key = {
  qk_latency : int;
  qk_bram : int;
  qk_dsp : int;
  qk_ff : int;
  qk_lut : int;
}

let qor_key (r : report) : qor_key =
  {
    qk_latency = r.latency;
    qk_bram = r.resources.bram;
    qk_dsp = r.resources.dsp;
    qk_ff = r.resources.ff;
    qk_lut = r.resources.lut;
  }

(** Lexicographic: latency, then bram, dsp, ff, lut. *)
let qor_compare (a : qor_key) (b : qor_key) : int =
  compare
    (a.qk_latency, a.qk_bram, a.qk_dsp, a.qk_ff, a.qk_lut)
    (b.qk_latency, b.qk_bram, b.qk_dsp, b.qk_ff, b.qk_lut)

let qor_to_string (k : qor_key) : string =
  Printf.sprintf "lat=%d bram=%d dsp=%d ff=%d lut=%d" k.qk_latency k.qk_bram
    k.qk_dsp k.qk_ff k.qk_lut

(* Per-functional-unit-class accounting, keyed by {!Op_model.fu_name}. *)
module FuMap = Map.Make (String)

let bram_of_array (a : Directives.array_info) =
  let total_bits = Directives.total_elems a * a.Directives.elem_bits in
  let parts = max 1 a.Directives.partition_factor in
  if a.Directives.partition_kind = "complete" then 0
  else parts * max 1 ((total_bits / parts + 18431) / 18432)

(** A backend's scheduling result, before resource binding.  [schedule]
    produces one; [bind] folds it into {!resources}; [synthesize]
    assembles the final {!report} from both. *)
type plan = {
  p_top : string;
  p_clock_ns : float;
  p_latency : int;  (** function latency, cycles *)
  p_loops : loop_report list;  (** outermost-first, layout order *)
  p_fus : (Op_model.cost * int) FuMap.t;
      (** functional-unit demand: class -> (cost, unit count) *)
  p_extra : resources;
      (** backend-specific non-FU fabric (e.g. elastic FIFOs) *)
  p_arrays : Directives.array_info list;
  p_warnings : string list;
}

(** Resource binding shared by the backends: FU demand times per-unit
    cost, plus array BRAM banks, plus whatever backend-specific fabric
    the plan carries.  Control overhead stays with the backend (static
    FSMs and elastic handshake controllers cost differently). *)
let bind_fus (p : plan) : resources =
  let fu_res =
    FuMap.fold
      (fun _ (cost, units) acc ->
        res_add acc
          {
            bram = 0;
            dsp = units * cost.Op_model.dsp;
            lut = units * cost.Op_model.lut;
            ff = units * cost.Op_model.ff;
          })
      p.p_fus res_zero
  in
  let bram =
    List.fold_left (fun acc a -> acc + bram_of_array a) 0 p.p_arrays
  in
  res_add p.p_extra (res_add fu_res { res_zero with bram })

(** Assemble the final report from a plan and its bound resources. *)
let report_of_plan (p : plan) (resources : resources) : report =
  {
    top = p.p_top;
    clock_ns = p.p_clock_ns;
    latency = p.p_latency;
    interval = p.p_latency + 1;
    loops = p.p_loops;
    resources;
    arrays = p.p_arrays;
    warnings = p.p_warnings;
  }
