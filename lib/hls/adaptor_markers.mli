(** Recognition of the [_ssdm_op_*] directive markers the adaptor
    plants in HLS-ready IR, plus the legality check the back-end runs
    before synthesis. *)

val starts_with : string -> string -> bool
val spec_pipeline : string
val spec_unroll : string
val spec_trip_count : string

(** True for any [_ssdm_op_*] marker call. *)
val is_marker : string -> bool

(** True for intrinsics the back-end knows how to ignore or model. *)
val is_known_intrinsic : string -> bool

(** Human-readable reasons the module is not HLS-ready; empty means
    the module may enter synthesis. *)
val legality_errors : Llvmir.Lmodule.t -> string list
