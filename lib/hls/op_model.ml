(** Operator characterization for the HLS scheduler: per-operation
    latency (cycles), combinational delay (ns, for chaining) and
    resource cost.  Numbers are modelled on Xilinx 7-series /
    Zynq-class device characterizations at the default 10 ns clock
    (Vitis HLS's single-precision IP cores and integer data paths).
    Absolute values need not match a licensed Vitis installation — the
    evaluation compares two flows through the {e same} backend. *)

open Llvmir
open Linstr

type cost = {
  latency : int;  (** pipeline depth in cycles; 0 = combinational *)
  delay : float;  (** combinational delay contribution, ns *)
  dsp : int;
  lut : int;
  ff : int;
}

let zero = { latency = 0; delay = 0.0; dsp = 0; lut = 0; ff = 0 }

(** Functional-unit class an instruction binds to (units of one class
    are shared). *)
type fu_class =
  | FU_fadd
  | FU_fmul
  | FU_fdiv
  | FU_imul of int  (** bit width *)
  | FU_idiv
  | FU_alu  (** add/sub/logic/cmp/select — LUT fabric *)
  | FU_mem_read
  | FU_mem_write
  | FU_none  (** free: phis, geps folded into addressing, branches *)

let fu_name = function
  | FU_fadd -> "fadd"
  | FU_fmul -> "fmul"
  | FU_fdiv -> "fdiv"
  | FU_imul w -> Printf.sprintf "imul%d" w
  | FU_idiv -> "idiv"
  | FU_alu -> "alu"
  | FU_mem_read -> "mem-read"
  | FU_mem_write -> "mem-write"
  | FU_none -> "none"

let is_double ty = Ltype.equal ty Ltype.Double

(** Classification + cost of an instruction. *)
let classify (i : Linstr.t) : fu_class * cost =
  match i.op with
  | FBin (FAdd, a, _) | FBin (FSub, a, _) ->
      let d = is_double (Lvalue.type_of a) in
      ( FU_fadd,
        {
          latency = (if d then 7 else 4);
          delay = 3.2;
          dsp = 2;
          lut = (if d then 800 else 390);
          ff = (if d then 700 else 340);
        } )
  | FBin (FMul, a, _) ->
      let d = is_double (Lvalue.type_of a) in
      ( FU_fmul,
        {
          latency = (if d then 6 else 3);
          delay = 3.0;
          dsp = (if d then 11 else 3);
          lut = (if d then 300 else 150);
          ff = (if d then 400 else 210);
        } )
  | FBin (FDiv, a, _) | FBin (FRem, a, _) ->
      let d = is_double (Lvalue.type_of a) in
      ( FU_fdiv,
        {
          latency = (if d then 29 else 14);
          delay = 3.5;
          dsp = 0;
          lut = (if d then 3200 else 800);
          ff = (if d then 3000 else 750);
        } )
  | IBin (Mul, a, _) ->
      let w = Ltype.int_width (Lvalue.type_of a) in
      ( FU_imul w,
        {
          latency = (if w > 32 then 5 else 3);
          delay = 3.0;
          dsp = (if w > 32 then 16 else 4);
          lut = 60;
          ff = 90;
        } )
  | IBin ((SDiv | UDiv | SRem | URem), a, _) ->
      let w = Ltype.int_width (Lvalue.type_of a) in
      ( FU_idiv,
        { latency = w + 4; delay = 3.5; dsp = 0; lut = 12 * w; ff = 12 * w } )
  | IBin (_, a, _) ->
      let w = Ltype.int_width (Lvalue.type_of a) in
      (FU_alu, { latency = 0; delay = 1.5; dsp = 0; lut = w; ff = 0 })
  | Icmp (_, a, _) ->
      let w = try Ltype.int_width (Lvalue.type_of a) with _ -> 64 in
      (FU_alu, { latency = 0; delay = 1.2; dsp = 0; lut = w / 2; ff = 0 })
  | Fcmp _ ->
      (FU_alu, { latency = 1; delay = 2.0; dsp = 0; lut = 120; ff = 60 })
  | Select _ ->
      (FU_alu, { latency = 0; delay = 0.8; dsp = 0; lut = 32; ff = 0 })
  | Load _ ->
      (* BRAM synchronous read: 1 cycle address + 1 cycle data *)
      (FU_mem_read, { latency = 2; delay = 2.3; dsp = 0; lut = 10; ff = 5 })
  | Store _ ->
      (FU_mem_write, { latency = 1; delay = 2.3; dsp = 0; lut = 10; ff = 5 })
  | Gep _ ->
      (* address arithmetic folds into the port address path *)
      (FU_none, { latency = 0; delay = 1.0; dsp = 0; lut = 16; ff = 0 })
  | Cast ((Sitofp | Fptosi), _, _) ->
      (FU_alu, { latency = 3; delay = 2.5; dsp = 0; lut = 200; ff = 180 })
  | Cast _ -> (FU_none, { zero with delay = 0.2 })
  | Phi _ | Br _ | CondBr _ | Switch _ | Ret _ | Unreachable ->
      (FU_none, zero)
  | Freeze _ -> (FU_none, zero)
  | ExtractValue _ | InsertValue _ -> (FU_none, { zero with delay = 0.3 })
  | Alloca _ -> (FU_none, zero)
  | Call { callee; _ } ->
      if Adaptor_markers.is_marker callee then (FU_none, zero)
      else
        (* unknown calls: modelled as a 1-cycle black box *)
        (FU_alu, { latency = 1; delay = 2.0; dsp = 0; lut = 100; ff = 100 })

(** Clock period used when the caller does not override it. *)
let default_clock_ns = 10.0

(* ------------------------------------------------------------------ *)
(* Elastic-channel (FIFO) characterization for the dynamically-       *)
(* scheduled backend                                                  *)
(* ------------------------------------------------------------------ *)

(** Capacity (bits) above which a FIFO is mapped to BRAM instead of
    LUT-based shift registers / distributed RAM. *)
let fifo_bram_threshold_bits = 1024

(** Fabric cost of one elastic FIFO channel of [depth] slots carrying
    [bits]-wide tokens, as [(bram, lut, ff)].

    Shallow channels map to SRL/distributed-RAM fabric: LUT and FF
    grow with [depth * bits] plus a fixed handshake controller.  Once
    the capacity crosses {!fifo_bram_threshold_bits} the storage moves
    to 18 Kb BRAM blocks and the fabric share drops to addressing and
    handshake only.  Monotone in [depth] (and in [bits]) by
    construction — deeper buffering never gets cheaper. *)
let fifo_cost ~(depth : int) ~(bits : int) : int * int * int =
  let depth = max 1 depth and bits = max 1 bits in
  let capacity = depth * bits in
  if capacity > fifo_bram_threshold_bits then
    let bram = (capacity + 18431) / 18432 in
    (* pointers + handshake; storage lives in the BRAM *)
    (bram, 40 + (2 * bits), 24 + (2 * bits))
  else
    (0, 8 + (capacity / 2) + bits, 6 + capacity)
