(** Estimation-backend API: scheduling disciplines over one IR, each
    implementing [schedule] / [bind] / [synthesize] behind the same
    report shape. *)

type sched = Static | Dynamic

val sched_name : sched -> string
val sched_of_name : string -> sched option
val all_scheds : sched list

module type S = sig
  val name : string
  val describe : string

  val schedule :
    ?clock_ns:float -> top:string -> Llvmir.Lmodule.t -> Qor.plan

  val bind : Qor.plan -> Qor.resources

  val synthesize :
    ?clock_ns:float -> top:string -> Llvmir.Lmodule.t -> Qor.report
end

val of_sched : sched -> (module S)

(** Synthesize under the given discipline.
    @raise Qor.Rejected when the module is not synthesizable. *)
val synthesize :
  ?clock_ns:float ->
  sched:sched ->
  top:string ->
  Llvmir.Lmodule.t ->
  Qor.report
