(** Dynamically-scheduled (elastic / dataflow) estimation backend:
    units fire when operand tokens arrive, dependence edges are
    FIFO-buffered channels costed via {!Op_model.fifo_cost}, and loop
    II emerges from token round-trip time instead of a static RecMII.
    Implements the {!Backend.S} signature. *)

val name : string
val describe : string

(** Default elastic-channel geometry used for FIFO costing. *)
val channel_bits : int

val channel_depth : int

(** Schedule the top function under elastic firing rules.
    @raise Qor.Rejected when the module is not synthesizable. *)
val schedule :
  ?clock_ns:float -> top:string -> Llvmir.Lmodule.t -> Qor.plan

(** Bind the plan's spatial unit demand and elastic fabric. *)
val bind : Qor.plan -> Qor.resources

(** [schedule] then [bind], folded into the final report.
    @raise Qor.Rejected when the module is not synthesizable. *)
val synthesize :
  ?clock_ns:float -> top:string -> Llvmir.Lmodule.t -> Qor.report
