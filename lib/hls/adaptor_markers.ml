(** Recognition of the directive markers and legality rules of the
    simulated Vitis HLS front door.

    This module is deliberately independent from the adaptor library:
    it models what the {e tool} accepts, and the adaptor targets it. *)

let starts_with p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

let spec_pipeline = "_ssdm_op_SpecPipeline"
let spec_unroll = "_ssdm_op_SpecUnroll"
let spec_trip_count = "_ssdm_op_SpecLoopTripCount"

let is_marker name = starts_with "_ssdm_op_" name

(** Intrinsics this (LLVM-7-era) middle-end understands. *)
let is_known_intrinsic name =
  starts_with "llvm.sqrt." name || starts_with "llvm.fabs." name

(** Reject IR outside the HLS-readable subset — the "unsupported
    syntax" gate that motivates the adaptor.  Returns the list of
    reasons (empty = accepted). *)
let legality_errors (m : Llvmir.Lmodule.t) : string list =
  let open Llvmir in
  let errs = ref [] in
  let add fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  let rec opaque t =
    match t with
    | Ltype.Ptr None -> true
    | Ltype.Ptr (Some t) | Ltype.Array (_, t) -> opaque t
    | Ltype.Struct fs -> List.exists opaque fs
    | _ -> false
  in
  List.iter
    (fun (f : Lmodule.func) ->
      List.iter
        (fun (p : Lmodule.param) ->
          if opaque p.pty then
            add "@%s: opaque pointer parameter %%%s" f.fname p.pname)
        f.params;
      Lmodule.iter_insts
        (fun (i : Linstr.t) ->
          if Linstr.has_result i && opaque i.ty then
            add "@%s: opaque pointer value %%%s" f.fname (Linstr.result_name i);
          (match i.op with
          | Linstr.Freeze _ ->
              add "@%s: freeze instruction %%%s" f.fname (Linstr.result_name i)
          | Linstr.InsertValue _ | Linstr.ExtractValue _ ->
              add "@%s: aggregate SSA value %%%s (memref descriptor?)"
                f.fname (Linstr.result_name i)
          | Linstr.Call { callee; _ }
            when starts_with "llvm." callee
                 && not (is_known_intrinsic callee) ->
              add "@%s: unsupported intrinsic %s" f.fname callee
          | _ -> ());
          List.iter
            (fun (k, _) ->
              if starts_with "llvm.loop." k then
                add "@%s: unsupported loop metadata %s" f.fname k)
            i.Linstr.imeta)
        f)
    m.funcs;
  List.rev !errs
