(** Per-instruction latency/area model for the HLS back-end.

    Costs are in cycles at {!default_clock_ns}; the classifier maps an
    LLVM instruction to the functional-unit class that executes it. *)

type cost = { latency : int; delay : float; dsp : int; lut : int; ff : int }

val zero : cost

(** Functional-unit classes, used for resource binding: one unit per
    class is shared across the operations mapped to it. *)
type fu_class =
  | FU_fadd
  | FU_fmul
  | FU_fdiv
  | FU_imul of int  (** operand width in bits *)
  | FU_idiv
  | FU_alu
  | FU_mem_read
  | FU_mem_write
  | FU_none

val fu_name : fu_class -> string
val is_double : Llvmir.Ltype.t -> bool

(** Classify one instruction: which unit runs it and what it costs. *)
val classify : Llvmir.Linstr.t -> fu_class * cost

val default_clock_ns : float

(** Capacity (bits) above which a FIFO maps to BRAM. *)
val fifo_bram_threshold_bits : int

(** [(bram, lut, ff)] cost of one elastic FIFO channel of [depth]
    slots of [bits]-wide tokens; monotone in both arguments. *)
val fifo_cost : depth:int -> bits:int -> int * int * int
