(** QoR estimation: walks the loop nest of the top function, schedules
    each body with {!Schedule}, and folds the results into a
    Vitis-style synthesis report.

    The estimation internals (functional-unit accounting, per-loop
    merge helpers) are deliberately not exported — {!synthesize} is
    the only entry point. *)

type resources = { bram : int; dsp : int; ff : int; lut : int }

type loop_report = {
  label : string;
  depth : int;
  tripcount : int;
  unroll : int;
  pipelined : bool;
  target_ii : int option;
  achieved_ii : int option;
  rec_mii : int;
  res_mii : int;
  iteration_latency : int;
  total_latency : int;
  mem_accesses : (string * int) list;
}

type report = {
  top : string;
  clock_ns : float;
  latency : int;
  interval : int;
  loops : loop_report list;
  resources : resources;
  arrays : Directives.array_info list;
  warnings : string list;
}

(** Raised when the module cannot be synthesized at all (no top,
    illegal IR, ...). The payload lists the reasons. *)
exception Rejected of string list

(** Totally ordered quality-of-result key for design-space search. *)
type qor_key = {
  qk_latency : int;
  qk_bram : int;
  qk_dsp : int;
  qk_ff : int;
  qk_lut : int;
}

val qor_key : report -> qor_key
val qor_compare : qor_key -> qor_key -> int
val qor_to_string : qor_key -> string

(** BRAM banks an array occupies after partitioning. *)
val bram_of_array : Directives.array_info -> int

(** Estimate the top function of an adapted module.
    @raise Rejected when the module is not synthesizable. *)
val synthesize : ?clock_ns:float -> top:string -> Llvmir.Lmodule.t -> report
