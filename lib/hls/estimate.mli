(** QoR estimation façade: re-exports the {!Qor} report vocabulary
    (same types, same {!Qor.Rejected} exception identity) and provides
    {!synthesize} as a thin alias over the default statically-scheduled
    backend ({!Backend_static}).

    Callers that want to choose a scheduling discipline go through
    {!Backend.synthesize}; everything downstream keeps consuming the
    one [report] shape defined here. *)

include module type of struct
  include Qor
end

(** Estimate the top function of an adapted module with the static
    list-scheduling backend.
    @raise Rejected when the module is not synthesizable. *)
val synthesize : ?clock_ns:float -> top:string -> Llvmir.Lmodule.t -> report
