(** Shared quality-of-result vocabulary for every estimation backend:
    report/loop-report records, the {!Rejected} error, QoR ordering
    keys, and the backend-neutral {!plan} that [schedule]/[bind]
    exchange.  {!Estimate} re-exports the report surface. *)

type resources = { bram : int; dsp : int; ff : int; lut : int }

val res_add : resources -> resources -> resources
val res_zero : resources

type loop_report = {
  label : string;
  depth : int;
  tripcount : int;
  unroll : int;
  pipelined : bool;
  target_ii : int option;
  achieved_ii : int option;
  rec_mii : int;
  res_mii : int;
  iteration_latency : int;
  total_latency : int;
  mem_accesses : (string * int) list;
}

type report = {
  top : string;
  clock_ns : float;
  latency : int;
  interval : int;
  loops : loop_report list;
  resources : resources;
  arrays : Directives.array_info list;
  warnings : string list;
}

(** Shared backend rejection error. The payload lists the reasons. *)
exception Rejected of string list

type qor_key = {
  qk_latency : int;
  qk_bram : int;
  qk_dsp : int;
  qk_ff : int;
  qk_lut : int;
}

val qor_key : report -> qor_key
val qor_compare : qor_key -> qor_key -> int
val qor_to_string : qor_key -> string

module FuMap : Map.S with type key = string

(** BRAM banks an array occupies after partitioning. *)
val bram_of_array : Directives.array_info -> int

type plan = {
  p_top : string;
  p_clock_ns : float;
  p_latency : int;
  p_loops : loop_report list;
  p_fus : (Op_model.cost * int) FuMap.t;
  p_extra : resources;
  p_arrays : Directives.array_info list;
  p_warnings : string list;
}

val bind_fus : plan -> resources
val report_of_plan : plan -> resources -> report
