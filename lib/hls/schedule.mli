(** List-scheduling of one loop body: builds the dependence graph over
    the body's items, binds memory accesses to array ports, and
    computes the recurrence- and resource-constrained minimum
    initiation intervals. *)

module Sym = Support.Interner

type item =
  | Instr of Llvmir.Linstr.t
  | Inner of { loop_idx : int; latency : int }
      (** a fully scheduled inner loop, treated as one long operation *)

type node = {
  nid : int;
  fu : Op_model.fu_class;
  latency : int;
  delay : float;
  cost : Op_model.cost;
  array : string option;
  is_store : bool;
  is_inner : bool;
  inner_idx : int;
  result : Sym.t;
  replica : int;
  preds : int list;
  carry_base : Sym.t option;
}

type t = {
  nodes : node array;
  length : int;  (** schedule length in cycles *)
  starts : int array;
  finishes : int array;
  rec_mii : int;
  res_mii : int;
  mem_accesses : (string * int) list;
}

val run :
  clock_ns:float ->
  arrays:Directives.array_info list ->
  carries:(Sym.t * Sym.t) list ->
  replicas:int ->
  idx:Llvmir.Findex.t ->
  item list ->
  t
