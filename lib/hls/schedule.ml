(** List scheduler for one loop-body (or function-body) data-flow graph.

    Models the essentials of the Vitis HLS scheduler:
    - operator latencies and combinational {e chaining} under a clock
      budget (0-latency ops pack into one cycle until the period runs
      out);
    - memory-port constraints (dual-port BRAM per array partition);
    - loop-carried recurrences (RecMII from carry-phi cycles);
    - unroll replication (the body DFG is instantiated [replicas]
      times; reduction chains serialize across replicas exactly like a
      naively unrolled accumulation).

    Nested loops appear as barrier nodes of known latency. *)

open Llvmir
open Linstr
module Sym = Support.Interner

type item =
  | Instr of Linstr.t
  | Inner of { loop_idx : int; latency : int }
      (** a nested loop, already estimated *)

type node = {
  nid : int;
  fu : Op_model.fu_class;
  latency : int;
  delay : float;
  cost : Op_model.cost;
  array : string option;
  is_store : bool;
  is_inner : bool;
  inner_idx : int;  (** -1 unless [is_inner] *)
  result : Sym.t;  (** defining register, {!Sym.empty} if none *)
  replica : int;
  preds : int list;
  carry_base : Sym.t option;
      (** when this node reads carry phi [p] of replica 0, set to [p] *)
}

type t = {
  nodes : node array;
  length : int;  (** iteration latency (cycles) *)
  starts : int array;
  finishes : int array;
  rec_mii : int;
  res_mii : int;
  mem_accesses : (string * int) list;  (** per-array accesses / iteration *)
}

(** Build and schedule the DFG.

    [items]: body contents in program order.
    [carries]: [(phi_name, latch_reg)] for each loop-carried value.
    [replicas]: unroll instantiation count (>= 1).
    [arrays]: port model per array.
    [defs_outside]: register names defined outside the body (available
    at cycle 0) — includes the induction variable and carry phis. *)
let run ~(clock_ns : float) ~(arrays : Directives.array_info list)
    ~(carries : (Sym.t * Sym.t) list) ~(replicas : int)
    ~(idx : Findex.t) (items : item list) : t =
  let ports_of =
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun (a : Directives.array_info) ->
        Hashtbl.replace tbl a.Directives.aname (Directives.ports a))
      arrays;
    fun name -> Option.value ~default:2 (Hashtbl.find_opt tbl name)
  in
  (* ---------- build nodes ---------- *)
  let nodes = ref [] in
  let n_count = ref 0 in
  (* (replica, reg) -> nid *)
  let def_node : (int * Sym.t, int) Hashtbl.t = Hashtbl.create 64 in
  let carry_latch = carries in
  let is_carry n = List.mem_assoc n carry_latch in
  (* memory ordering state *)
  let last_store : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let accesses_since : (string, int list) Hashtbl.t = Hashtbl.create 8 in
  let mem_counts : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let last_barrier = ref (-1) in
  let add_node ~fu ~latency ~delay ~cost ~array ~is_store ~is_inner ~inner_idx
      ~result ~replica ~preds ~carry_base =
    let nid = !n_count in
    incr n_count;
    let preds = if !last_barrier >= 0 then !last_barrier :: preds else preds in
    nodes :=
      {
        nid;
        fu;
        latency;
        delay;
        cost;
        array;
        is_store;
        is_inner;
        inner_idx;
        result;
        replica;
        preds = List.sort_uniq compare preds;
        carry_base;
      }
      :: !nodes;
    if not (Sym.is_empty result) then
      Hashtbl.replace def_node (replica, result) nid;
    nid
  in
  for r = 0 to replicas - 1 do
    List.iter
      (fun item ->
        match item with
        | Inner { loop_idx; latency } ->
            (* barrier node: depends on everything so far *)
            let preds = List.init !n_count Fun.id in
            let nid =
              add_node ~fu:Op_model.FU_none ~latency ~delay:0.0
                ~cost:Op_model.zero ~array:None ~is_store:false ~is_inner:true
                ~inner_idx:loop_idx ~result:Sym.empty ~replica:r ~preds
                ~carry_base:None
            in
            last_barrier := nid
        | Instr i -> (
            match i.op with
            | Phi _ | Br _ | CondBr _ | Ret _ | Switch _ | Unreachable ->
                ()  (* control handled by loop accounting *)
            | Call { callee; _ } when Adaptor_markers.is_marker callee -> ()
            | _ ->
                let fu, cost = Op_model.classify i in
                let array, is_store =
                  match i.op with
                  | Load (_, p) -> (Directives.base_array idx p, false)
                  | Store (_, p) -> (Directives.base_array idx p, true)
                  | _ -> (None, false)
                in
                (* data predecessors *)
                let carry_base = ref None in
                let preds =
                  List.filter_map
                    (fun v ->
                      match v with
                      | Lvalue.Reg (n, _) -> (
                          match Hashtbl.find_opt def_node (r, n) with
                          | Some nid -> Some nid
                          | None ->
                              if is_carry n then
                                if r = 0 then begin
                                  carry_base := Some n;
                                  None
                                end
                                else
                                  (* replica r reads replica r-1's latch *)
                                  let latch = List.assoc n carry_latch in
                                  Hashtbl.find_opt def_node (r - 1, latch)
                              else None)
                      | _ -> None)
                    (operands i)
                in
                (* memory ordering *)
                let mem_preds =
                  match array with
                  | None -> []
                  | Some a ->
                      Hashtbl.replace mem_counts a
                        (1 + Option.value ~default:0 (Hashtbl.find_opt mem_counts a));
                      if is_store then begin
                        let ps =
                          Option.value ~default:[]
                            (Hashtbl.find_opt accesses_since a)
                          @
                          match Hashtbl.find_opt last_store a with
                          | Some s -> [ s ]
                          | None -> []
                        in
                        ps
                      end
                      else
                        (match Hashtbl.find_opt last_store a with
                        | Some s -> [ s ]
                        | None -> [])
                in
                let nid =
                  add_node ~fu ~latency:cost.Op_model.latency
                    ~delay:cost.Op_model.delay ~cost ~array ~is_store
                    ~is_inner:false ~inner_idx:(-1) ~result:i.result ~replica:r
                    ~preds:(preds @ mem_preds) ~carry_base:!carry_base
                in
                (match array with
                | Some a ->
                    if is_store then begin
                      Hashtbl.replace last_store a nid;
                      Hashtbl.replace accesses_since a []
                    end
                    else
                      Hashtbl.replace accesses_since a
                        (nid
                        :: Option.value ~default:[]
                             (Hashtbl.find_opt accesses_since a))
                | None -> ())))
      items
  done;
  let nodes = Array.of_list (List.rev !nodes) in
  let n = Array.length nodes in
  (* ---------- schedule ---------- *)
  let starts = Array.make n 0 in
  let finishes = Array.make n 0 in
  let chain_end = Array.make n 0.0 in
  (* per-(array, cycle) port usage *)
  let port_usage : (string * int, int) Hashtbl.t = Hashtbl.create 64 in
  Array.iter
    (fun nd ->
      let ready_cycle = ref 0 and ready_delay = ref 0.0 in
      List.iter
        (fun p ->
          let pnode = nodes.(p) in
          let c, d =
            if pnode.latency > 0 then (finishes.(p), 0.0)
            else (starts.(p), chain_end.(p))
          in
          if c > !ready_cycle then begin
            ready_cycle := c;
            ready_delay := d
          end
          else if c = !ready_cycle && d > !ready_delay then ready_delay := d)
        nd.preds;
      (* chaining: does this op fit in the remaining period? *)
      let cycle, base_delay =
        if !ready_delay +. nd.delay > clock_ns then (!ready_cycle + 1, 0.0)
        else (!ready_cycle, !ready_delay)
      in
      (* memory port availability *)
      let cycle, base_delay =
        match nd.array with
        | None -> (cycle, base_delay)
        | Some a ->
            let ports = ports_of a in
            let c = ref cycle and d = ref base_delay in
            while
              Option.value ~default:0 (Hashtbl.find_opt port_usage (a, !c))
              >= ports
            do
              incr c;
              d := 0.0
            done;
            Hashtbl.replace port_usage (a, !c)
              (1 + Option.value ~default:0 (Hashtbl.find_opt port_usage (a, !c)));
            (!c, !d)
      in
      starts.(nd.nid) <- cycle;
      finishes.(nd.nid) <- cycle + nd.latency;
      chain_end.(nd.nid) <-
        (if nd.latency = 0 then base_delay +. nd.delay else 0.0))
    nodes;
  let length = Array.fold_left max 0 finishes in
  (* ---------- RecMII ---------- *)
  (* longest latency path from a carry phi (replica 0) to the latch
     producer of the final replica *)
  let rec_mii = ref 1 in
  List.iter
    (fun (phi, latch) ->
      (* recdist: longest latency path from the phi, -1 = unreachable *)
      let dist = Array.make n (-1) in
      Array.iter
        (fun nd ->
          let base =
            if nd.carry_base = Some phi then Some 0
            else
              List.fold_left
                (fun acc p ->
                  if dist.(p) >= 0 then
                    match acc with
                    | None -> Some dist.(p)
                    | Some d -> Some (max d dist.(p))
                  else acc)
                None nd.preds
          in
          match base with
          | Some d -> dist.(nd.nid) <- d + max nd.latency 0
          | None -> ())
        nodes;
      match Hashtbl.find_opt def_node (replicas - 1, latch) with
      | Some nid when dist.(nid) >= 0 -> rec_mii := max !rec_mii dist.(nid)
      | _ -> ())
    carry_latch;
  (* ---------- ResMII ---------- *)
  let res_mii =
    Hashtbl.fold
      (fun a count acc -> max acc ((count + ports_of a - 1) / ports_of a))
      mem_counts 1
  in
  let mem_accesses =
    Hashtbl.fold (fun a c acc -> (a, c) :: acc) mem_counts []
    |> List.sort compare
  in
  {
    nodes;
    length;
    starts;
    finishes;
    rec_mii = !rec_mii;
    res_mii;
    mem_accesses;
  }
