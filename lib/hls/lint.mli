(** HLS-oriented lint over adapted IR: II feasibility, partition
    pragma sanity, dead stores, aliasing hazards, and the
    {!Adaptor.Compat} issue family re-surfaced as diagnostics.

    Individual rule passes are internal; {!run} executes the whole
    catalog (or a [?only] subset) and returns the findings. *)

module Diag = Support.Diag

(** The rule registry: id, default severity, one-line summary. *)
val catalog : (string * Diag.severity * string) list

(** Lint the module.  [only] restricts to the given rule ids,
    [werror] upgrades warnings to errors, [top] narrows function-level
    rules to one function. *)
val run :
  ?only:string list ->
  ?werror:bool ->
  ?top:string ->
  Llvmir.Lmodule.t ->
  Diag.t list
