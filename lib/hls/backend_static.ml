(** Statically-scheduled estimation backend — the Vitis HLS "synthesis"
    analogue, and the reference implementation of the backend API
    ({!Backend.S}).

    Loops are estimated innermost-first; each nested loop appears in
    its parent's schedule as a fixed-latency node.  Latency formulas:

    - pipelined loop:    [L + (N-1)·II + 2]  with
      [II = max(target, RecMII, ResMII)];
    - sequential loop:   [N·(L+1) + 2]  (one cycle of loop control per
      iteration, one entry + one exit cycle);
    - unrolled by [u]:   body replicated [u] times (reduction chains
      serialize, memory ports saturate), trip count divided.

    Functional units are shared across loops (they never run
    concurrently in this single-kernel model), so the function-level
    unit count per class is the maximum requirement over all loop
    schedules. *)

open Llvmir

let name = "static"
let describe = "static list scheduler (shared FUs, RecMII-bound pipelining)"

let fail = Support.Err.fail ~pass:"hls.estimate"

module FuMap = Qor.FuMap

(** Units needed by one schedule. *)
let fu_units ~(pipelined_ii : int option) (s : Schedule.t) :
    (Op_model.cost * int) FuMap.t =
  let tbl : (string, Op_model.cost * int list) Hashtbl.t = Hashtbl.create 8 in
  Array.iter
    (fun (nd : Schedule.node) ->
      match nd.Schedule.fu with
      | Op_model.FU_none | Op_model.FU_mem_read | Op_model.FU_mem_write -> ()
      | fu ->
          let key = Op_model.fu_name fu in
          let _, starts =
            Option.value ~default:(nd.Schedule.cost, [])
              (Hashtbl.find_opt tbl key)
          in
          Hashtbl.replace tbl key
            (nd.Schedule.cost, s.Schedule.starts.(nd.Schedule.nid) :: starts))
    s.Schedule.nodes;
  Hashtbl.fold
    (fun key (cost, starts) acc ->
      let units =
        match pipelined_ii with
        | Some ii when ii > 0 ->
            (* starts folded modulo II across overlapped iterations *)
            let buckets = Array.make ii 0 in
            List.iter
              (fun c -> buckets.(c mod ii) <- buckets.(c mod ii) + 1)
              starts;
            Array.fold_left max 1 buckets
        | _ ->
            (* sequential: units = max overlap of busy intervals *)
            let events = Hashtbl.create 16 in
            List.iter
              (fun c ->
                let occupancy = max 1 cost.Op_model.latency in
                for t = c to c + occupancy - 1 do
                  Hashtbl.replace events t
                    (1 + Option.value ~default:0 (Hashtbl.find_opt events t))
                done)
              starts;
            Hashtbl.fold (fun _ v acc -> max acc v) events 1
      in
      FuMap.add key (cost, units) acc)
    tbl FuMap.empty

let fu_merge a b =
  FuMap.union (fun _ (c, u1) (_, u2) -> Some (c, max u1 u2)) a b

(* ------------------------------------------------------------------ *)

type loop_estimate = {
  total : int;
  reports : Qor.loop_report list;  (** this loop then its children *)
  fus : (Op_model.cost * int) FuMap.t;
  accesses_per_run : (string * int) list;
      (** per-array memory accesses for one full execution of the loop
          (drives the ResMII of a pipelined ancestor) *)
}

let acc_merge a b =
  List.fold_left
    (fun acc (k, v) ->
      let prev = Option.value ~default:0 (List.assoc_opt k acc) in
      (k, prev + v) :: List.remove_assoc k acc)
    a b

(** Items (instructions + inner-loop nodes) of the blocks directly in
    loop [j] (or, with [j = None], of the function outside all loops). *)
let rec body_items ~clock_ns ~arrays ~idx (cfg : Cfg.t) (li : Loop_info.t)
    (f : Lmodule.func) (j : int option) :
    Schedule.item list
    * Qor.loop_report list
    * (Op_model.cost * int) FuMap.t
    * (string * int) list =
  let n = Cfg.n_blocks cfg in
  let in_this b =
    match j with
    | None -> li.Loop_info.loop_of_block.(b) = None
    | Some j -> (
        match li.Loop_info.loop_of_block.(b) with
        | Some k -> k = j
        | None -> false)
  in
  let children =
    match j with
    | None -> Loop_info.top_level li
    | Some j -> li.Loop_info.loops.(j).Loop_info.children
  in
  (* estimate children first *)
  let child_est =
    List.map
      (fun c ->
        (c, estimate_loop ~clock_ns ~arrays ~idx cfg li f c))
      children
  in
  let items = ref [] in
  let reports = ref [] in
  let fus = ref FuMap.empty in
  let child_acc = ref [] in
  for b = 0 to n - 1 do
    if in_this b then begin
      let blk = Cfg.block cfg b in
      List.iter
        (fun i -> items := Schedule.Instr i :: !items)
        blk.Lmodule.insts
    end
    else
      (* does a direct child loop start (header) at this block? *)
      List.iter
        (fun (c, est) ->
          if li.Loop_info.loops.(c).Loop_info.header = b then begin
            items :=
              Schedule.Inner { loop_idx = c; latency = est.total } :: !items;
            reports := !reports @ est.reports;
            fus := fu_merge !fus est.fus;
            child_acc := acc_merge !child_acc est.accesses_per_run
          end)
        child_est
  done;
  (List.rev !items, !reports, !fus, !child_acc)

and estimate_loop ~clock_ns ~arrays ~idx (cfg : Cfg.t) (li : Loop_info.t)
    (f : Lmodule.func) (j : int) : loop_estimate =
  let l = li.Loop_info.loops.(j) in
  let dir = Directives.loop_directives cfg li j in
  let tripcount =
    match dir.Directives.tripcount with
    | Some n -> n
    | None -> (
        match Loop_info.trip_count li j with
        | Some n -> n
        | None ->
            fail "@%s: loop at %%%s has no static trip count" f.Lmodule.fname
              (Support.Interner.name (Cfg.label cfg l.Loop_info.header)))
  in
  let unroll =
    match dir.Directives.unroll with
    | Some 0 -> max 1 tripcount  (* full *)
    | Some u -> max 1 (min u tripcount)
    | None -> 1
  in
  let trip' = (tripcount + unroll - 1) / max 1 unroll in
  let items, child_reports, child_fus, child_acc =
    body_items ~clock_ns ~arrays ~idx cfg li f (Some j)
  in
  (* carries: header phis (incoming from a latch) *)
  let header_blk = Cfg.block cfg l.Loop_info.header in
  let latch_labels = List.map (Cfg.label cfg) l.Loop_info.latches in
  let carries =
    List.filter_map
      (fun (i : Linstr.t) ->
        match i.Linstr.op with
        | Linstr.Phi incoming -> (
            match
              List.find_opt (fun (_, lbl) -> List.mem lbl latch_labels) incoming
            with
            | Some (Lvalue.Reg (latch_reg, _), _) ->
                Some (i.Linstr.result, latch_reg)
            | _ -> None)
        | _ -> None)
      header_blk.Lmodule.insts
  in
  (* header compare/branch instructions participate in the body work *)
  let sched =
    Schedule.run ~clock_ns ~arrays ~carries ~replicas:unroll ~idx items
  in
  let pipelined = dir.Directives.pipeline_ii <> None in
  let iteration_latency = max 1 sched.Schedule.length in
  (* per-iteration memory pressure includes nested loops' accesses *)
  let per_iter_acc = acc_merge sched.Schedule.mem_accesses child_acc in
  let ports_of name =
    match
      List.find_opt (fun (a : Directives.array_info) -> a.Directives.aname = name) arrays
    with
    | Some a -> Directives.ports a
    | None -> 2
  in
  let res_mii =
    List.fold_left
      (fun acc (a, c) -> max acc ((c + ports_of a - 1) / ports_of a))
      1 per_iter_acc
  in
  let total, achieved_ii =
    if pipelined then begin
      let target = Option.value ~default:1 dir.Directives.pipeline_ii in
      let ii = max target (max sched.Schedule.rec_mii res_mii) in
      (iteration_latency + ((trip' - 1) * ii) + 2, Some ii)
    end
    else (trip' * (iteration_latency + 1) + 2, None)
  in
  let this_report =
    {
      Qor.label = Support.Interner.name (Cfg.label cfg l.Loop_info.header);
      depth = l.Loop_info.depth;
      tripcount;
      unroll;
      pipelined;
      target_ii = dir.Directives.pipeline_ii;
      achieved_ii;
      rec_mii = sched.Schedule.rec_mii;
      res_mii;
      iteration_latency;
      total_latency = total;
      mem_accesses = per_iter_acc;
    }
  in
  let fus =
    fu_merge child_fus (fu_units ~pipelined_ii:achieved_ii sched)
  in
  {
    total;
    reports = this_report :: child_reports;
    fus;
    accesses_per_run =
      List.map (fun (a, c) -> (a, c * trip')) per_iter_acc;
  }

(* ------------------------------------------------------------------ *)

(** Schedule the top function of a module into a backend-neutral plan.

    @raise Qor.Rejected when the IR is outside the HLS-readable subset
    (run the adaptor first). *)
let schedule ?(clock_ns = Op_model.default_clock_ns) ~(top : string)
    (m : Lmodule.t) : Qor.plan =
  (match Adaptor_markers.legality_errors m with
  | [] -> ()
  | errs -> raise (Qor.Rejected errs));
  let f = Lmodule.find_func_exn m top in
  let cfg = Cfg.build f in
  let li = Loop_info.compute cfg in
  let idx = Findex.build f in
  let arrays = Directives.arrays f in
  let items, loop_reports, loop_fus, _ =
    body_items ~clock_ns ~arrays ~idx cfg li f None
  in
  let sched =
    Schedule.run ~clock_ns ~arrays ~carries:[] ~replicas:1 ~idx items
  in
  let latency = sched.Schedule.length + 2 in
  let fus = fu_merge loop_fus (fu_units ~pipelined_ii:None sched) in
  (* control overhead: counters/FSM per loop *)
  let n_loops = List.length loop_reports in
  let control =
    { Qor.res_zero with Qor.lut = 150 + (80 * n_loops); ff = 200 + (100 * n_loops) }
  in
  let warnings =
    List.concat_map
      (fun (lr : Qor.loop_report) ->
        match (lr.Qor.pipelined, lr.Qor.target_ii, lr.Qor.achieved_ii) with
        | true, Some t, Some a when a > t ->
            [
              Printf.sprintf
                "loop %%%s: target II=%d not met, achieved II=%d (RecMII=%d, ResMII=%d)"
                lr.Qor.label t a lr.Qor.rec_mii lr.Qor.res_mii;
            ]
        | _ -> [])
      loop_reports
  in
  {
    Qor.p_top = top;
    p_clock_ns = clock_ns;
    p_latency = latency;
    p_loops = loop_reports;
    p_fus = fus;
    p_extra = control;
    p_arrays = arrays;
    p_warnings = warnings;
  }

(** Resource binding: shared-FU demand priced by {!Op_model}, array
    BRAM banks, and the per-loop FSM control overhead carried by the
    plan. *)
let bind (p : Qor.plan) : Qor.resources = Qor.bind_fus p

let synthesize ?(clock_ns = Op_model.default_clock_ns) ~(top : string)
    (m : Lmodule.t) : Qor.report =
  let plan = schedule ~clock_ns ~top m in
  Qor.report_of_plan plan (bind plan)
