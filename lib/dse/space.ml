(** First-class design-space description, derived from kernel metadata.

    Instead of a hand-written candidate list, the axes come from the
    kernel's own IR (built once, directive-free):

    - {b pipeline II} — fixed ladder [0 (off); 1; 2; 4; 8];
    - {b unroll} — powers of two up to and including the first one
      that covers the innermost trip count (so full unroll is always
      on the axis, even for non-power-of-two trips);
    - {b strategy} — pipeline the innermost loop ([Inner]) or the
      second-innermost with the innermost fully unrolled ([Middle]);
    - {b partitioning} — one axis per {e hot array}: a memref argument
      indexed by an innermost induction variable in some load or
      store.  The partitioned dimension is where that variable appears
      in the subscript (1-based, clamped to the array's rank), and the
      factor ladder is the powers of two up to the first one covering
      that dimension's extent (complete partitioning included).

    A {!config} is one point; {!canonical} collapses aliases (under
    [Middle] the innermost loop is fully unrolled and the middle loop
    pipelined regardless of the unroll/II axes), so configs that build
    identical IR share one canonical form and one {!describe} label —
    the deduplication key of the whole search. *)

module K = Workloads.Kernels
module B = Hls_backend.Backend
module Ir = Mhir.Ir
module L = Llvmir
module Sym = Support.Interner

type partition_axis = {
  pa_array : string;  (** argument name *)
  pa_dim : int;  (** 1-based partitioned dimension *)
  pa_dim_size : int;  (** extent of that dimension *)
  pa_factors : int list;  (** ascending, starts with 1 = off *)
}

type t = {
  sp_kernel : string;
  sp_inner_trip : int;  (** smallest innermost-loop trip count *)
  sp_strategies : K.strategy list;
  sp_scheds : B.sched list;  (** estimation backends on the axis *)
  sp_iis : int list;  (** ascending; 0 = no pipeline directive *)
  sp_unrolls : int list;  (** ascending; 1 = off *)
  sp_partitions : partition_axis list;  (** sorted by array name *)
}

type config = {
  c_strategy : K.strategy;
  c_sched : B.sched;  (** which backend estimates this point *)
  c_ii : int;  (** 0 = off *)
  c_unroll : int;  (** 1 = off *)
  c_parts : (string * int) list;
      (** array → factor (1 = off); same order as [sp_partitions] *)
}

(* ------------------------------------------------------------------ *)
(* Derivation from kernel IR                                          *)
(* ------------------------------------------------------------------ *)

let const_of_map_attr attrs key =
  match List.assoc_opt key attrs with
  | Some (Mhir.Attr.Map m) -> Mhir.Affine_map.as_constant m
  | _ -> None

let int_attr attrs key =
  match List.assoc_opt key attrs with
  | Some (Mhir.Attr.Int n) -> Some n
  | _ -> None

let trip_count (op : Ir.op) : int option =
  match
    ( const_of_map_attr op.Ir.attrs "lower_map",
      const_of_map_attr op.Ir.attrs "upper_map",
      int_attr op.Ir.attrs "step" )
  with
  | Some lb, Some ub, Some step when step > 0 ->
      Some (max 0 ((ub - lb + step - 1) / step))
  | _ -> None

let is_for (op : Ir.op) = op.Ir.name = "affine.for"

let has_nested_for (op : Ir.op) =
  let found = ref false in
  List.iter
    (Ir.walk_region (fun o -> if is_for o then found := true))
    op.Ir.regions;
  !found

(** Induction variable of an [affine.for]: first entry-block param. *)
let induction_var (op : Ir.op) : Ir.value option =
  match op.Ir.regions with
  | [ r ] -> (
      match (Ir.entry_block r).Ir.params with
      | iv :: _ -> Some iv
      | [] -> None)
  | _ -> None

(** Powers of two up to the first one >= [limit]: a factor beyond that
    is already a full unroll / complete partition, so larger rungs add
    no distinct designs. *)
let pow2_ladder ~limit =
  List.filter (fun f -> f < 2 * max 1 limit) [ 1; 2; 4; 8 ]

(** Largest axis value not above [v] (axes are ascending and start at
    1): projects off-axis legacy values onto the space.  A request at
    or above the top rung lands on the top rung, which the ladder rule
    above guarantees is semantically a full unroll / complete
    partition. *)
let clamp_to (axis : int list) (v : int) : int =
  match List.rev (List.filter (fun x -> x <= v) axis) with
  | x :: _ -> x
  | [] -> List.hd axis

let find_index p xs =
  let rec go i = function
    | [] -> None
    | x :: rest -> if p x then Some i else go (i + 1) rest
  in
  go 0 xs

(** Kernel arguments whose backing storage some access in the adapted
    LLVM IR may alias without being attributable to them.  For such an
    array the banking proof behind a partition directive fails (lint
    HLS008 flags exactly this), so partitioning it cannot pay off and
    its axis is dropped from the space.

    The check runs on the {e adapted} IR ({!Flow.direct_ir_frontend}):
    raw modern lowering still reaches arrays through descriptor
    aggregates, which the alias oracle rightly calls unresolvable —
    every axis would be dropped.  A frontend failure keeps all axes:
    the DSE jobs will surface the real diagnostics. *)
let may_aliased_arrays (kernel : K.kernel) : string list =
  match Flow.direct_ir_frontend (kernel.K.build K.no_directives) with
  | Error _ -> []
  | Ok (lm, _, _) ->
      let kernel_args = List.map fst kernel.K.args in
      List.concat_map
        (fun (f : L.Lmodule.func) ->
          let idx = L.Findex.build f in
          let ptrs =
            L.Lmodule.fold_insts
              (fun acc (i : L.Linstr.t) ->
                match i.L.Linstr.op with
                | L.Linstr.Load (_, p) | L.Linstr.Store (_, p) -> p :: acc
                | _ -> acc)
              [] f
          in
          List.filter_map
            (fun (p : L.Lmodule.param) ->
              let pv =
                L.Lvalue.Reg (Sym.intern p.L.Lmodule.pname, p.L.Lmodule.pty)
              in
              if
                List.mem p.L.Lmodule.pname kernel_args
                && List.exists
                     (fun q ->
                       L.Alias.base_alias idx q pv = L.Alias.May_alias)
                     ptrs
              then Some p.L.Lmodule.pname
              else None)
            f.L.Lmodule.params)
        lm.L.Lmodule.funcs
      |> List.sort_uniq compare

(** Derive the space for a kernel by walking its directive-free IR.
    All functions of the module are walked (kernels like [mmcall] do
    their array accesses in a helper), and accesses are attributed to
    the kernel's declared arguments by name.

    [scheds] is the estimation-backend axis; the default keeps the
    historical static-only space (same size, same labels, same
    frontier bytes). *)
let of_kernel ?(scheds = [ B.Static ]) (kernel : K.kernel) : t =
  let m = kernel.K.build K.no_directives in
  let kernel_args = List.map fst kernel.K.args in
  (* innermost loops and their induction variables, module-wide *)
  let inner_trips = ref [] in
  let inner_ivs = ref [] in
  List.iter
    (Ir.walk_func (fun op ->
         if is_for op && not (has_nested_for op) then begin
           (match trip_count op with
           | Some n when n > 0 -> inner_trips := n :: !inner_trips
           | _ -> ());
           match induction_var op with
           | Some iv -> inner_ivs := iv.Ir.id :: !inner_ivs
           | None -> ()
         end))
    m.Ir.funcs;
  let inner_trip =
    match !inner_trips with [] -> 1 | ts -> List.fold_left min max_int ts
  in
  let is_inner_iv (v : Ir.value) = List.mem v.Ir.id !inner_ivs in
  (* hot arrays: memref args subscripted by an innermost iv *)
  let hot : (string, int * int) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (fn : Ir.func) ->
      let arg_of_id =
        List.filter_map
          (fun (a : Ir.value) ->
            match a.Ir.ty with
            | Mhir.Types.Memref (shape, _)
              when List.mem a.Ir.hint kernel_args ->
                Some (a.Ir.id, (a.Ir.hint, shape))
            | _ -> None)
          fn.Ir.args
      in
      let record_access (mem : Ir.value) (idxs : Ir.value list) =
        match List.assoc_opt mem.Ir.id arg_of_id with
        | None -> ()
        | Some (name, shape) -> (
            if not (Hashtbl.mem hot name) then
              match
                find_index (fun (v : Ir.value) -> is_inner_iv v) idxs
              with
              | Some pos ->
                  let rank = List.length shape in
                  let dim = min (pos + 1) rank in
                  Hashtbl.add hot name (dim, List.nth shape (dim - 1))
              | None -> ())
      in
      Ir.walk_func
        (fun op ->
          match (op.Ir.name, op.Ir.operands) with
          | "affine.load", mem :: idxs -> record_access mem idxs
          | "affine.store", _ :: mem :: idxs -> record_access mem idxs
          | _ -> ())
        fn)
    m.Ir.funcs;
  let aliased = may_aliased_arrays kernel in
  let sp_partitions =
    Hashtbl.fold
      (fun name (dim, dim_size) acc ->
        if List.mem name aliased then acc
        else
          {
            pa_array = name;
            pa_dim = dim;
            pa_dim_size = dim_size;
            pa_factors = pow2_ladder ~limit:dim_size;
          }
          :: acc)
      hot []
    |> List.sort (fun a b -> compare a.pa_array b.pa_array)
  in
  let scheds =
    match List.sort_uniq compare scheds with [] -> [ B.Static ] | ss -> ss
  in
  {
    sp_kernel = kernel.K.kname;
    sp_inner_trip = inner_trip;
    sp_strategies = [ K.Inner; K.Middle ];
    sp_scheds = scheds;
    sp_iis = [ 0; 1; 2; 4; 8 ];
    sp_unrolls = pow2_ladder ~limit:inner_trip;
    sp_partitions;
  }

(* ------------------------------------------------------------------ *)
(* Configs                                                            *)
(* ------------------------------------------------------------------ *)

(** Collapse aliases to one representative: under [Middle] the
    innermost loop is fully unrolled whatever the unroll axis says, and
    a missing II defaults to 1 — so unroll pins to 1 and II to at
    least 1.  Partition entries are sorted by array name. *)
let canonical (c : config) : config =
  let c_parts =
    List.sort (fun (a, _) (b, _) -> compare a b) c.c_parts
  in
  match c.c_strategy with
  | K.Inner -> { c with c_parts }
  | K.Middle -> { c with c_parts; c_unroll = 1; c_ii = max c.c_ii 1 }

(** Canonical, injective label — the dedup key and job label.  The
    statically-scheduled half of the space keeps the historical labels
    exactly; dynamic points carry a ["-dyn"] suffix. *)
let describe (c : config) : string =
  let c = canonical c in
  Printf.sprintf "%s-ii%d-u%d%s%s"
    (match c.c_strategy with K.Inner -> "inner" | K.Middle -> "middle")
    c.c_ii c.c_unroll
    (String.concat ""
       (List.map (fun (a, f) -> Printf.sprintf "-%s%d" a f) c.c_parts))
    (match c.c_sched with B.Static -> "" | B.Dynamic -> "-dyn")

let to_directives (sp : t) (c : config) : K.directives =
  let c = canonical c in
  {
    K.pipeline_ii = (if c.c_ii = 0 then None else Some c.c_ii);
    K.unroll = (if c.c_unroll = 1 then None else Some c.c_unroll);
    K.strategy = c.c_strategy;
    K.partitions =
      List.filter_map
        (fun ax ->
          match List.assoc_opt ax.pa_array c.c_parts with
          | Some f when f > 1 -> Some (ax.pa_array, "cyclic", f, ax.pa_dim)
          | _ -> None)
        sp.sp_partitions;
  }

let parts_all (sp : t) (f : int) : (string * int) list =
  List.map (fun ax -> (ax.pa_array, f)) sp.sp_partitions

(** The legacy fixed grid, expressed in this space: baseline, pipelined
    inner loop, inner + unroll 2/4, middle with full inner unroll, and
    middle + partition all hot arrays by 2/4/8.  Seeding the archive
    with these guarantees the search's frontier weakly dominates the
    old one.  Canonicalized and deduplicated. *)
let seeds (sp : t) : config list =
  let mk sched s ii u parts =
    canonical
      {
        c_strategy = s;
        c_sched = sched;
        c_ii = ii;
        c_unroll = clamp_to sp.sp_unrolls u;
        c_parts =
          List.map2
            (fun ax (a, f) -> (a, clamp_to ax.pa_factors f))
            sp.sp_partitions parts;
      }
  in
  let off = parts_all sp 1 in
  List.concat_map
    (fun sched ->
      [
        mk sched K.Inner 0 1 off;
        mk sched K.Inner 1 1 off;
        mk sched K.Inner 1 2 off;
        mk sched K.Inner 1 4 off;
        mk sched K.Middle 1 1 off;
        mk sched K.Middle 1 1 (parts_all sp 2);
        mk sched K.Middle 1 1 (parts_all sp 4);
        mk sched K.Middle 1 1 (parts_all sp 8);
      ])
    sp.sp_scheds
  |> List.sort_uniq (fun a b -> compare (describe a) (describe b))

(** Values adjacent to [v] on an ascending axis ([v] itself excluded;
    works even when [v] is off-axis, e.g. for legacy seeds). *)
let adjacent (axis : int list) (v : int) : int list =
  let below = List.filter (fun x -> x < v) axis in
  let above = List.filter (fun x -> x > v) axis in
  (match List.rev below with [] -> [] | b :: _ -> [ b ])
  @ (match above with [] -> [] | a :: _ -> [ a ])

(** One-axis neighborhood of a config: strategy flip, backend flip
    (when the space has more than one on its axis), one II step, one
    unroll step, one factor step on one array.  Canonicalized,
    deduplicated, self excluded, sorted by {!describe}. *)
let neighbors (sp : t) (c : config) : config list =
  let c = canonical c in
  let flip =
    match c.c_strategy with K.Inner -> K.Middle | K.Middle -> K.Inner
  in
  let sched_moves =
    List.filter_map
      (fun s -> if s = c.c_sched then None else Some { c with c_sched = s })
      sp.sp_scheds
  in
  let moves =
    sched_moves
    @ ({ c with c_strategy = flip }
      :: List.map (fun ii -> { c with c_ii = ii }) (adjacent sp.sp_iis c.c_ii))
    @ List.map
        (fun u -> { c with c_unroll = u })
        (adjacent sp.sp_unrolls c.c_unroll)
    @ List.concat_map
        (fun ax ->
          let cur =
            Option.value ~default:1 (List.assoc_opt ax.pa_array c.c_parts)
          in
          List.map
            (fun f ->
              {
                c with
                c_parts =
                  List.map
                    (fun (a, g) ->
                      if a = ax.pa_array then (a, f) else (a, g))
                    c.c_parts;
              })
            (adjacent ax.pa_factors cur))
        sp.sp_partitions
  in
  moves |> List.map canonical
  |> List.filter (fun n -> describe n <> describe c)
  |> List.sort_uniq (fun a b -> compare (describe a) (describe b))

(** Every point of the space (canonical forms, sorted).  Exponential in
    the number of hot arrays — fine at benchmark scale; the search
    itself never calls this, only {!size} reporting and tests do. *)
let enumerate (sp : t) : config list =
  let parts_combos =
    List.fold_left
      (fun acc ax ->
        List.concat_map
          (fun parts ->
            List.map (fun f -> (ax.pa_array, f) :: parts) ax.pa_factors)
          acc)
      [ [] ] sp.sp_partitions
    |> List.map List.rev
  in
  List.concat_map
    (fun sched ->
      List.concat_map
        (fun s ->
          List.concat_map
            (fun ii ->
              List.concat_map
                (fun u ->
                  List.map
                    (fun parts ->
                      canonical
                        {
                          c_strategy = s;
                          c_sched = sched;
                          c_ii = ii;
                          c_unroll = u;
                          c_parts = parts;
                        })
                    parts_combos)
                sp.sp_unrolls)
            sp.sp_iis)
        sp.sp_strategies)
    sp.sp_scheds
  |> List.sort_uniq (fun a b -> compare (describe a) (describe b))

(** Number of distinct (canonical) points in the space. *)
let size (sp : t) : int = List.length (enumerate sp)
