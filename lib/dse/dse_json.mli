(** Versioned [dse.json] frontier export + structural validator.

    The file is deterministic for a given cache state — wall-clock
    never appears, so a [--jobs 4] export is byte-identical to a
    [--jobs 1] one. *)

val schema_version : int

(** Serialize an outcome.  [tool] is the driver's version string. *)
val to_json : tool:string -> Search.outcome -> string

val write_file : tool:string -> string -> Search.outcome -> unit

(** Structural schema check of a serialized export: version marker,
    required header keys, every frontier point carrying the required
    keys, and a non-empty frontier. *)
val validate : string -> (unit, string) result

(** {!validate} on a file's contents. *)
val validate_file : string -> (unit, string) result
