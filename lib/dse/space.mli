(** First-class design-space description, derived from kernel metadata
    (per-loop pipeline/unroll axes and per-array partition axes read
    off the kernel's own IR, not a hand-written list). *)

type partition_axis = {
  pa_array : string;  (** argument name *)
  pa_dim : int;  (** 1-based partitioned dimension *)
  pa_dim_size : int;  (** extent of that dimension *)
  pa_factors : int list;  (** ascending, starts with 1 = off *)
}

type t = {
  sp_kernel : string;
  sp_inner_trip : int;  (** smallest innermost-loop trip count *)
  sp_strategies : Workloads.Kernels.strategy list;
  sp_scheds : Hls_backend.Backend.sched list;
      (** estimation backends on the axis *)
  sp_iis : int list;  (** ascending; 0 = no pipeline directive *)
  sp_unrolls : int list;  (** ascending; 1 = off *)
  sp_partitions : partition_axis list;  (** sorted by array name *)
}

(** One point of the space. *)
type config = {
  c_strategy : Workloads.Kernels.strategy;
  c_sched : Hls_backend.Backend.sched;
      (** which backend estimates this point *)
  c_ii : int;  (** 0 = off *)
  c_unroll : int;  (** 1 = off *)
  c_parts : (string * int) list;
      (** array → factor (1 = off); same order as [sp_partitions] *)
}

(** Kernel arguments whose backing storage some access in the adapted
    LLVM IR may alias without being attributable to them (lint HLS008
    territory): {!of_kernel} derives no partition axis for these.
    Sorted, deduplicated; empty when the frontend fails. *)
val may_aliased_arrays : Workloads.Kernels.kernel -> string list

(** Derive the space for a kernel by walking its directive-free IR.
    Arrays in {!may_aliased_arrays} get no partition axis.  [scheds]
    is the estimation-backend axis (sorted, deduplicated; default
    static only, which keeps the historical space byte-identical —
    same size, same labels). *)
val of_kernel :
  ?scheds:Hls_backend.Backend.sched list -> Workloads.Kernels.kernel -> t

(** Collapse directive aliases to one representative (under [Middle]
    the unroll axis is moot and II defaults to 1); sorts partition
    entries.  Idempotent. *)
val canonical : config -> config

(** Canonical, injective label — the dedup key and job label.  Static
    points keep the historical labels; dynamic points get ["-dyn"]. *)
val describe : config -> string

(** Directives that build this point's IR. *)
val to_directives : t -> config -> Workloads.Kernels.directives

(** The legacy fixed 8-point grid expressed in this space, replicated
    per backend on the axis (canonicalized, deduplicated, sorted).
    Seeding the archive with these guarantees the new frontier weakly
    dominates the old one. *)
val seeds : t -> config list

(** One-axis neighborhood: strategy flip, backend flip (multi-backend
    spaces only), one II step, one unroll step, one factor step on one
    array.  Canonical, deduplicated, self excluded, sorted by
    {!describe}. *)
val neighbors : t -> config -> config list

(** Every point (canonical forms, sorted by {!describe}). *)
val enumerate : t -> config list

(** Number of distinct canonical points, [List.length (enumerate sp)]. *)
val size : t -> int
