(** Versioned [dse.json] frontier export + structural validator.

    Schema, version {!schema_version} — one top-level object:
    {v
    { "version": 1,
      "tool": "<tool version>",
      "kernel": "gemm",
      "space_size": 384,
      "evaluated": 42,
      "full_evals": 42,
      "cache_hits": 0,
      "stopped": "stable",
      "rounds": [
        { "round": 1, "candidates": 8, "frontier": 3 }, ... ],
      "frontier": [
        { "label": "middle-ii1-u1-A4-B4", "strategy": "middle",
          "ii": 1, "unroll": 1,
          "partitions": [ { "array": "A", "dim": 2, "factor": 4 }, ... ],
          "latency": 310, "bram": 8, "dsp": 20, "ff": 1480,
          "lut": 2210 }, ... ] }
    v}

    Frontier points estimated by the dynamic backend additionally
    carry ["sched": "dynamic"] (after ["unroll"]); statically-scheduled
    points keep the historical shape, so a static-only export is
    byte-identical to pre-backend-axis versions of the tool.

    Everything in the file is deterministic for a given cache state —
    wall-clock never appears, so a [--jobs 4] export is byte-identical
    to a [--jobs 1] one.  {!validate} checks a serialized export
    structurally (same style as the trace-schema validator); the CLI
    validates what it just wrote, and CI asserts on that. *)

module E = Hls_backend.Estimate
module K = Workloads.Kernels

let schema_version = 1

let json_escape (s : string) =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let point_to_json (p : Search.point) : string =
  let c = Space.canonical p.Search.pt_config in
  let r = p.Search.pt_report in
  let partitions =
    List.map
      (fun (arr, _kind, factor, dim) ->
        Printf.sprintf
          "{\"array\": \"%s\", \"dim\": %d, \"factor\": %d}"
          (json_escape arr) dim factor)
      p.Search.pt_directives.K.partitions
  in
  String.concat ""
    [
      "{";
      Printf.sprintf "\"label\": \"%s\", " (json_escape p.Search.pt_label);
      Printf.sprintf "\"strategy\": \"%s\", "
        (match c.Space.c_strategy with
        | K.Inner -> "inner"
        | K.Middle -> "middle");
      Printf.sprintf "\"ii\": %d, " c.Space.c_ii;
      Printf.sprintf "\"unroll\": %d, " c.Space.c_unroll;
      (* emitted only off the default, so static exports keep their
         historical bytes *)
      (match c.Space.c_sched with
      | Hls_backend.Backend.Static -> ""
      | Hls_backend.Backend.Dynamic -> "\"sched\": \"dynamic\", ");
      Printf.sprintf "\"partitions\": [%s], "
        (String.concat ", " partitions);
      Printf.sprintf
        "\"latency\": %d, \"bram\": %d, \"dsp\": %d, \"ff\": %d, \"lut\": %d"
        r.E.latency r.E.resources.E.bram r.E.resources.E.dsp
        r.E.resources.E.ff r.E.resources.E.lut;
      "}";
    ]

let round_to_json (rs : Search.round_stat) : string =
  Printf.sprintf "{\"round\": %d, \"candidates\": %d, \"frontier\": %d}"
    rs.Search.rs_round rs.Search.rs_candidates rs.Search.rs_frontier

(** Serialize an outcome.  [tool] is the driver's version string. *)
let to_json ~(tool : string) (o : Search.outcome) : string =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf "{\"version\": %d, \"tool\": \"%s\",\n" schema_version
       (json_escape tool));
  Buffer.add_string b
    (Printf.sprintf
       " \"kernel\": \"%s\", \"space_size\": %d, \"evaluated\": %d, \
        \"full_evals\": %d, \"cache_hits\": %d, \"stopped\": \"%s\",\n"
       (json_escape o.Search.o_kernel)
       (Space.size o.Search.o_space)
       o.Search.o_evaluated o.Search.o_full_evals o.Search.o_cache_hits
       (Search.stop_reason_name o.Search.o_stopped));
  Buffer.add_string b " \"rounds\": [";
  List.iteri
    (fun i rs ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b (round_to_json rs))
    o.Search.o_rounds;
  Buffer.add_string b "],\n \"frontier\": [\n";
  List.iteri
    (fun i p ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b ("  " ^ point_to_json p))
    o.Search.o_frontier;
  Buffer.add_string b "\n]}\n";
  Buffer.contents b

let write_file ~tool path (o : Search.outcome) : unit =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (to_json ~tool o))

(* ------------------------------------------------------------------ *)
(* Schema validation                                                  *)
(* ------------------------------------------------------------------ *)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let header_keys =
  [ "tool"; "kernel"; "space_size"; "evaluated"; "full_evals"; "cache_hits";
    "stopped"; "rounds"; "frontier" ]

let point_keys =
  [ "label"; "strategy"; "ii"; "unroll"; "partitions"; "latency"; "bram";
    "dsp"; "ff"; "lut" ]

(** Split the text of the frontier array into the point objects' texts
    (depth-1 objects; nested partition objects are depth 2). *)
let split_points (s : string) : string list =
  let objs = ref [] in
  let depth = ref 0 and start = ref 0 and in_str = ref false in
  String.iteri
    (fun i c ->
      if !in_str then begin
        if c = '"' && (i = 0 || s.[i - 1] <> '\\') then in_str := false
      end
      else
        match c with
        | '"' -> in_str := true
        | '{' ->
            if !depth = 0 then start := i;
            incr depth
        | '}' ->
            decr depth;
            if !depth = 0 then
              objs := String.sub s !start (i - !start + 1) :: !objs
        | _ -> ())
    s;
  List.rev !objs

(** Structural schema check of a serialized export: version marker,
    required header keys, and every frontier point carrying the
    required keys.  An empty frontier is an error — the search always
    finds at least the baseline unless every config is infeasible, and
    then the export should not be trusted. *)
let validate (json : string) : (unit, string) result =
  if
    not
      (contains ~needle:(Printf.sprintf "\"version\": %d" schema_version) json)
  then Error (Printf.sprintf "missing \"version\": %d marker" schema_version)
  else
    match
      List.find_opt
        (fun k -> not (contains ~needle:(Printf.sprintf "\"%s\":" k) json))
        header_keys
    with
    | Some k -> Error (Printf.sprintf "missing header key \"%s\"" k)
    | None ->
        let marker = "\"frontier\": [" in
        let mlen = String.length marker in
        let rec find i =
          if i + mlen > String.length json then -1
          else if String.sub json i mlen = marker then i
          else find (i + 1)
        in
        let i = find 0 in
        if i < 0 then Error "missing \"frontier\" array"
        else
          let body = String.sub json i (String.length json - i) in
          let pts = split_points body in
          if pts = [] then Error "frontier is empty"
          else
            let bad =
              List.concat_map
                (fun o ->
                  List.filter_map
                    (fun k ->
                      if contains ~needle:(Printf.sprintf "\"%s\":" k) o then
                        None
                      else
                        Some
                          (Printf.sprintf "frontier point lacks key \"%s\"" k))
                    point_keys)
                pts
            in
            (match bad with [] -> Ok () | e :: _ -> Error e)

let validate_file (path : string) : (unit, string) result =
  match In_channel.with_open_text path In_channel.input_all with
  | json -> validate json
  | exception Sys_error e -> Error e
