(** Pareto archive over integer minimization objectives.

    The archive is an antichain under {!dominates}: inserting a point
    drops every archived point it dominates and is itself dropped when
    an archived point dominates it.  Ties (equal objective vectors)
    coexist — the frontier keeps every non-dominated label.

    Determinism: the archive is a pure value, {!insert} folds are
    order-independent up to the final frontier {e set}, and
    {!frontier} sorts by entry key, so any evaluation order yields a
    byte-identical rendering. *)

type objectives = int array

(** [dominates a b]: [a] is no worse on every axis and strictly better
    on at least one.  Irreflexive and antisymmetric by construction. *)
let dominates (a : objectives) (b : objectives) : bool =
  let n = Array.length a in
  if n <> Array.length b then
    invalid_arg "Pareto.dominates: dimension mismatch";
  let le = ref true and lt = ref false in
  for i = 0 to n - 1 do
    if a.(i) > b.(i) then le := false;
    if a.(i) < b.(i) then lt := true
  done;
  !le && !lt

type 'a entry = {
  e_key : string;  (** unique stable identity (canonical config label) *)
  e_obj : objectives;
  e_payload : 'a;
}

let entry ~key ~obj payload = { e_key = key; e_obj = obj; e_payload = payload }

type 'a t = { entries : 'a entry list (* unordered antichain *) }

let empty : 'a t = { entries = [] }
let size (t : 'a t) = List.length t.entries

(** [insert t e] returns the updated archive and whether the frontier
    changed.  A duplicate key is a no-op (the archive never holds two
    entries with the same key), and so is an exact objective tie with
    an archived entry — the first-inserted representative survives,
    which is deterministic because the search feeds candidates in
    canonical order. *)
let insert (t : 'a t) (e : 'a entry) : 'a t * bool =
  if
    List.exists
      (fun x -> x.e_key = e.e_key || x.e_obj = e.e_obj) t.entries
  then (t, false)
  else if List.exists (fun x -> dominates x.e_obj e.e_obj) t.entries then
    (t, false)
  else
    let survivors =
      List.filter (fun x -> not (dominates e.e_obj x.e_obj)) t.entries
    in
    ({ entries = e :: survivors }, true)

let insert_all (t : 'a t) (es : 'a entry list) : 'a t * bool =
  List.fold_left
    (fun (t, changed) e ->
      let t, c = insert t e in
      (t, changed || c))
    (t, false) es

(** The frontier, sorted by entry key — a deterministic antichain. *)
let frontier (t : 'a t) : 'a entry list =
  List.sort (fun a b -> compare a.e_key b.e_key) t.entries

(** True when no entry dominates another (internal invariant; exposed
    for the law tests). *)
let is_antichain (es : 'a entry list) : bool =
  List.for_all
    (fun a ->
      List.for_all
        (fun b -> a.e_key = b.e_key || not (dominates a.e_obj b.e_obj))
        es)
    es

(** Minimal element under a projection (smallest [f] value; entry key
    breaks ties), e.g. lowest latency on the frontier. *)
let min_by (f : 'a entry -> int) (t : 'a t) : 'a entry option =
  List.fold_left
    (fun acc e ->
      match acc with
      | None -> Some e
      | Some m ->
          if f e < f m || (f e = f m && e.e_key < m.e_key) then Some e
          else acc)
    None (frontier t)
