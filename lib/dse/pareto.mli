(** Pareto archive over integer minimization objectives: an antichain
    under {!dominates} with deterministic, key-sorted {!frontier}. *)

type objectives = int array

(** [dominates a b]: [a] is no worse on every axis and strictly better
    on at least one.  Irreflexive and antisymmetric.
    @raise Invalid_argument on dimension mismatch. *)
val dominates : objectives -> objectives -> bool

type 'a entry = {
  e_key : string;  (** unique stable identity (canonical config label) *)
  e_obj : objectives;
  e_payload : 'a;
}

val entry : key:string -> obj:objectives -> 'a -> 'a entry

type 'a t

val empty : 'a t
val size : 'a t -> int

(** [insert t e] returns the updated archive and whether the frontier
    changed (false when [e] is dominated, exactly ties an archived
    entry's objectives, or its key is already present). *)
val insert : 'a t -> 'a entry -> 'a t * bool

(** Fold {!insert} over a list; the flag is true when any insert
    changed the frontier. *)
val insert_all : 'a t -> 'a entry list -> 'a t * bool

(** The frontier, sorted by entry key — a deterministic antichain. *)
val frontier : 'a t -> 'a entry list

(** True when no entry dominates another (law tests). *)
val is_antichain : 'a entry list -> bool

(** Minimal element under a projection (entry key breaks ties). *)
val min_by : ('a entry -> int) -> 'a t -> 'a entry option
