(** Pareto-archive design-space search on the batch driver.

    Seeded coordinate descent with neighborhood expansion:

    + seed the archive with the legacy fixed grid (so the result can
      never be worse than the old 8-point sweep);
    + evaluate each round's candidates as one job batch on a live
      {!Driver} session — the domain pool is spawned once and the
      content-addressed cache is shared across rounds and runs;
    + insert feasible results into a {!Pareto} archive (dominance
      pruning; budget-violating points are counted and dropped);
    + next round's candidates are the one-axis {!Space.neighbors} of
      the current frontier, minus everything already evaluated;
    + stop when the frontier has been stable for [stable_rounds]
      consecutive rounds, or on the eval/round caps, or when the
      neighborhood is exhausted.

    Determinism: candidates are canonically sorted, the driver
    preserves job order at any worker count, and the archive is a pure
    value — the frontier is byte-identical for any [--jobs].  One
    {!Support.Tracing} event is emitted per round (stage ["dse"]). *)

module K = Workloads.Kernels
module E = Hls_backend.Estimate
module Driver = Mhls_driver.Driver

type budget = {
  b_max_bram : int option;
  b_max_dsp : int option;
  b_max_lut : int option;
}

let no_budget = { b_max_bram = None; b_max_dsp = None; b_max_lut = None }

type params = {
  max_evals : int;  (** cap on distinct configurations evaluated *)
  max_rounds : int;
  stable_rounds : int;  (** stop after this many frontier-stable rounds *)
  budget : budget;
  clock_ns : float;
}

let default_params =
  {
    max_evals = 64;
    max_rounds = 16;
    stable_rounds = 2;
    budget = no_budget;
    clock_ns = 10.0;
  }

(** One evaluated, feasible, non-dominated design point. *)
type point = {
  pt_label : string;  (** [Space.describe] of the config *)
  pt_config : Space.config;
  pt_directives : K.directives;
  pt_report : E.report;
}

type round_stat = {
  rs_round : int;  (** 1-based *)
  rs_candidates : int;
  rs_full_evals : int;  (** candidates actually compiled this round *)
  rs_cache_hits : int;
  rs_frontier : int;  (** frontier size after the round *)
  rs_seconds : float;  (** wall; excluded from dse.json *)
}

type stop_reason = [ `Stable | `Max_rounds | `Max_evals | `Exhausted ]

let stop_reason_name : stop_reason -> string = function
  | `Stable -> "stable"
  | `Max_rounds -> "max-rounds"
  | `Max_evals -> "max-evals"
  | `Exhausted -> "exhausted"

type outcome = {
  o_kernel : string;
  o_space : Space.t;
  o_frontier : point list;  (** sorted by label; the Pareto frontier *)
  o_evaluated : int;  (** distinct configurations evaluated *)
  o_full_evals : int;  (** evaluations that actually compiled *)
  o_cache_hits : int;  (** evaluations served by the result cache *)
  o_infeasible : (string * Support.Diag.t list) list;
      (** label → diagnostics, for configs the flow rejected *)
  o_over_budget : int;  (** feasible points dropped by the budget *)
  o_rounds : round_stat list;
  o_stopped : stop_reason;
}

(** Objectives (minimized): latency, BRAM, DSP, LUT — the axes the old
    fixed-grid frontier used, so old and new frontiers are directly
    comparable. *)
let objectives_of_report (r : E.report) : Pareto.objectives =
  [|
    r.E.latency; r.E.resources.E.bram; r.E.resources.E.dsp;
    r.E.resources.E.lut;
  |]

let within_budget (b : budget) (r : E.report) : bool =
  let ok limit v = match limit with None -> true | Some m -> v <= m in
  ok b.b_max_bram r.E.resources.E.bram
  && ok b.b_max_dsp r.E.resources.E.dsp
  && ok b.b_max_lut r.E.resources.E.lut

let rec take n = function
  | [] -> []
  | x :: rest -> if n <= 0 then [] else x :: take (n - 1) rest

(** Run the search.  Total: evaluation failures become [o_infeasible]
    entries, never exceptions.  [scheds] selects the estimation-backend
    axis (default static only — the historical space). *)
let search ?(params = default_params) ?scheds ?pipeline ?cache_dir
    ?(jobs = 1) ?(trace = Support.Tracing.null) (kernel : K.kernel) : outcome
    =
  let sp = Space.of_kernel ?scheds kernel in
  Driver.with_session ?pipeline ?cache_dir ~jobs (fun session ->
      let evaluated : (string, unit) Hashtbl.t = Hashtbl.create 64 in
      let archive = ref Pareto.empty in
      let infeasible = ref [] in
      let over_budget = ref 0 in
      let full = ref 0 and hits = ref 0 in
      let rounds = ref [] in
      let frontier_configs () =
        List.map
          (fun (e : point Pareto.entry) -> e.Pareto.e_payload.pt_config)
          (Pareto.frontier !archive)
      in
      let evaluate_round round cands =
        let t0 = Unix.gettimeofday () in
        let before = Pareto.size !archive in
        let js =
          List.map
            (fun c ->
              Driver.job ~label:(Space.describe c) ~sched:c.Space.c_sched
                ~clock_ns:params.clock_ns ~kernel:kernel.K.kname
                (Space.to_directives sp c))
            cands
        in
        (* the session is lexically open here ([with_session] scope) *)
        let outs = Driver.submit_exn session js in
        let round_full = ref 0 and round_hits = ref 0 in
        let changed = ref false in
        List.iter2
          (fun c (o : Driver.outcome) ->
            let label = Space.describe c in
            Hashtbl.replace evaluated label ();
            if o.Driver.o_from_cache then incr round_hits
            else incr round_full;
            match o.Driver.o_qor with
            | Error ds -> infeasible := (label, ds) :: !infeasible
            | Ok r ->
                if not (within_budget params.budget r) then
                  incr over_budget
                else begin
                  let pt =
                    {
                      pt_label = label;
                      pt_config = c;
                      pt_directives = Space.to_directives sp c;
                      pt_report = r;
                    }
                  in
                  let a, ch =
                    Pareto.insert !archive
                      (Pareto.entry ~key:label
                         ~obj:(objectives_of_report r) pt)
                  in
                  archive := a;
                  if ch then changed := true
                end)
          cands outs;
        full := !full + !round_full;
        hits := !hits + !round_hits;
        let after = Pareto.size !archive in
        let seconds = Unix.gettimeofday () -. t0 in
        rounds :=
          {
            rs_round = round;
            rs_candidates = List.length cands;
            rs_full_evals = !round_full;
            rs_cache_hits = !round_hits;
            rs_frontier = after;
            rs_seconds = seconds;
          }
          :: !rounds;
        trace
          (Support.Tracing.event ~stage:"dse"
             ~pass:(Printf.sprintf "round-%d" round)
             ~seconds ~before ~after);
        !changed
      in
      let rec loop round stable queue =
        let fresh =
          List.filter
            (fun c -> not (Hashtbl.mem evaluated (Space.describe c)))
            queue
        in
        let remaining = params.max_evals - Hashtbl.length evaluated in
        if fresh = [] then `Exhausted
        else if remaining <= 0 then `Max_evals
        else if round > params.max_rounds then `Max_rounds
        else
          let changed = evaluate_round round (take remaining fresh) in
          let stable = if changed then 0 else stable + 1 in
          if stable >= params.stable_rounds then `Stable
          else
            let queue =
              List.concat_map (Space.neighbors sp) (frontier_configs ())
              |> List.sort_uniq (fun a b ->
                     compare (Space.describe a) (Space.describe b))
            in
            loop (round + 1) stable queue
      in
      let stopped = loop 1 0 (Space.seeds sp) in
      {
        o_kernel = kernel.K.kname;
        o_space = sp;
        o_frontier =
          List.map
            (fun (e : point Pareto.entry) -> e.Pareto.e_payload)
            (Pareto.frontier !archive);
        o_evaluated = Hashtbl.length evaluated;
        o_full_evals = !full;
        o_cache_hits = !hits;
        o_infeasible =
          List.sort (fun (a, _) (b, _) -> compare a b) !infeasible;
        o_over_budget = !over_budget;
        o_rounds = List.rev !rounds;
        o_stopped = stopped;
      })

(** Fastest frontier point (label breaks latency ties). *)
let best (o : outcome) : point option =
  List.fold_left
    (fun acc p ->
      match acc with
      | None -> Some p
      | Some b ->
          if p.pt_report.E.latency < b.pt_report.E.latency then Some p
          else acc)
    None o.o_frontier

(* ------------------------------------------------------------------ *)
(* Rendering                                                          *)
(* ------------------------------------------------------------------ *)

(** Deterministic frontier table: depends only on the frontier, never
    on timing or cache state. *)
let render_frontier (o : outcome) : string =
  let t =
    Support.Table.create
      ~aligns:
        [ Support.Table.Left; Support.Table.Right; Support.Table.Right;
          Support.Table.Right; Support.Table.Right; Support.Table.Right ]
      [ "config"; "latency"; "BRAM"; "DSP"; "FF"; "LUT" ]
  in
  List.iter
    (fun p ->
      let r = p.pt_report in
      Support.Table.add_row t
        [
          p.pt_label;
          string_of_int r.E.latency;
          string_of_int r.E.resources.E.bram;
          string_of_int r.E.resources.E.dsp;
          string_of_int r.E.resources.E.ff;
          string_of_int r.E.resources.E.lut;
        ])
    o.o_frontier;
  Support.Table.render t

(** Full report: frontier table plus search statistics. *)
let render (o : outcome) : string =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "DSE %s: space of %d configs, %d evaluated\n" o.o_kernel
       (Space.size o.o_space) o.o_evaluated);
  Buffer.add_string b (render_frontier o);
  Buffer.add_char b '\n';
  Buffer.add_string b
    (Printf.sprintf
       "frontier %d points; %d full evals, %d cache hits; %d infeasible, %d \
        over budget; stopped: %s after %d round(s)\n"
       (List.length o.o_frontier)
       o.o_full_evals o.o_cache_hits
       (List.length o.o_infeasible)
       o.o_over_budget
       (stop_reason_name o.o_stopped)
       (List.length o.o_rounds));
  List.iter
    (fun rs ->
      Buffer.add_string b
        (Printf.sprintf
           "  round %d: %d candidates (%d compiled, %d cached), frontier %d \
            (%.2fs)\n"
           rs.rs_round rs.rs_candidates rs.rs_full_evals rs.rs_cache_hits
           rs.rs_frontier rs.rs_seconds))
    o.o_rounds;
  Buffer.contents b
