(** Pareto-archive design-space search on the batch driver: seeded
    coordinate descent with neighborhood expansion, dominance pruning,
    budget filtering and frontier-stability early stop.  All
    evaluations run as jobs on a live {!Mhls_driver.Driver} session
    (domain pool + content-addressed cache shared across rounds).

    The frontier is deterministic: byte-identical for any [jobs]. *)

type budget = {
  b_max_bram : int option;
  b_max_dsp : int option;
  b_max_lut : int option;
}

val no_budget : budget

type params = {
  max_evals : int;  (** cap on distinct configurations evaluated *)
  max_rounds : int;
  stable_rounds : int;  (** stop after this many frontier-stable rounds *)
  budget : budget;
  clock_ns : float;
}

val default_params : params

(** One evaluated, feasible, non-dominated design point. *)
type point = {
  pt_label : string;  (** [Space.describe] of the config *)
  pt_config : Space.config;
  pt_directives : Workloads.Kernels.directives;
  pt_report : Hls_backend.Estimate.report;
}

type round_stat = {
  rs_round : int;  (** 1-based *)
  rs_candidates : int;
  rs_full_evals : int;  (** candidates actually compiled this round *)
  rs_cache_hits : int;
  rs_frontier : int;  (** frontier size after the round *)
  rs_seconds : float;  (** wall; excluded from dse.json *)
}

type stop_reason = [ `Stable | `Max_rounds | `Max_evals | `Exhausted ]

val stop_reason_name : stop_reason -> string

type outcome = {
  o_kernel : string;
  o_space : Space.t;
  o_frontier : point list;  (** sorted by label; the Pareto frontier *)
  o_evaluated : int;  (** distinct configurations evaluated *)
  o_full_evals : int;  (** evaluations that actually compiled *)
  o_cache_hits : int;  (** evaluations served by the result cache *)
  o_infeasible : (string * Support.Diag.t list) list;
      (** label → diagnostics, for configs the flow rejected *)
  o_over_budget : int;  (** feasible points dropped by the budget *)
  o_rounds : round_stat list;
  o_stopped : stop_reason;
}

(** Objectives (minimized): latency, BRAM, DSP, LUT. *)
val objectives_of_report : Hls_backend.Estimate.report -> Pareto.objectives

val within_budget : budget -> Hls_backend.Estimate.report -> bool

(** Run the search.  Total: evaluation failures become [o_infeasible]
    entries, never exceptions.  [scheds] selects the
    estimation-backend axis (default static only — the historical
    space, whose frontier stays byte-identical). *)
val search :
  ?params:params ->
  ?scheds:Hls_backend.Backend.sched list ->
  ?pipeline:Adaptor.Pipeline.t ->
  ?cache_dir:string ->
  ?jobs:int ->
  ?trace:Support.Tracing.hook ->
  Workloads.Kernels.kernel ->
  outcome

(** Fastest frontier point (label breaks latency ties). *)
val best : outcome -> point option

(** Deterministic frontier table: depends only on the frontier, never
    on timing or cache state. *)
val render_frontier : outcome -> string

(** Full report: frontier table plus search statistics. *)
val render : outcome -> string
