(** Random-kernel specifications for the differential tester.

    A [t] is a small, closed description of a well-typed mhir kernel:
    a 2-level affine loop nest over [dim x dim] memrefs that stores one
    integer expression and one float expression per element, optionally
    carries an integer reduction through the nest, and optionally calls
    a one-op helper function.  [build] turns a spec into a real
    {!Mhir.Ir.modul}; [generate] draws one from an {!Rng} stream;
    [shrink] enumerates strictly simpler candidate specs for repro
    minimization.

    Design rules that keep every spec executable at every stage:
    - all integer expressions are [i32]; C's [int] is the same width,
      so the HLS-C++ round trip preserves types exactly;
    - division-like ops guard the divisor with
      [select (divisor == 0), 1, divisor] {e in the IR itself}, so all
      stages see the same guarded program — shifts are deliberately
      unguarded because their out-of-range behavior is defined (and is
      exactly what this harness exists to cross-check);
    - float constants are dyadic ([k/16]) so they round-trip through
      decimal C++ literals bit-exactly, and float division only ever
      sees non-zero constant divisors. *)

module B = Mhir.Builder
module T = Mhir.Types

type ibin =
  | IAdd | ISub | IMul
  | IDivS | IRemS | IDivU | IRemU | IFloorDiv
  | IAnd | IOr | IXor
  | IShl | IShrS | IShrU
  | IMaxS | IMinS | IMaxU | IMinU

type icmp = CEq | CNe | CSlt | CSle | CSgt | CSge | CUlt | CUle | CUgt | CUge
type fbin = FbAdd | FbSub | FbMul | FbDiv | FbMax | FbMin

type iexpr =
  | IConst of int
  | IArg  (** the scalar [n] kernel argument *)
  | ILoad of bool  (** [a0\[i\]\[j\]], or [a0\[j\]\[i\]] when [true] *)
  | IIdx of int  (** loop induction variable 0 or 1, cast to i32 *)
  | IBin of ibin * iexpr * iexpr
  | ISel of icmp * iexpr * iexpr * iexpr * iexpr
      (** [select (cmpi p x y), a, b] *)
  | ICall of iexpr * iexpr  (** call of the helper function *)

type fexpr =
  | FConst of float
  | FLoad of bool
  | FBin of fbin * fexpr * fexpr
  | FSel of icmp * iexpr * iexpr * fexpr * fexpr
  | FFromInt of iexpr

type t = {
  dim : int;  (** memref side length, 1..4 *)
  istore : iexpr;  (** stored to [a1\[i\]\[j\]] *)
  fstore : fexpr;  (** stored to [f1\[i\]\[j\]] *)
  ired : (ibin * iexpr) option;  (** reduction carried through the nest *)
  helper : ibin option;  (** body of the [helper] function, if present *)
}

let max_dim = 4

(* ------------------------------------------------------------------ *)
(* Size (shrinking metric)                                            *)
(* ------------------------------------------------------------------ *)

let rec isize = function
  | IConst _ | IArg | ILoad _ | IIdx _ -> 1
  | IBin (_, a, b) | ICall (a, b) -> 1 + isize a + isize b
  | ISel (_, x, y, a, b) -> 1 + isize x + isize y + isize a + isize b

let rec fsize = function
  | FConst _ | FLoad _ -> 1
  | FBin (_, a, b) -> 1 + fsize a + fsize b
  | FFromInt e -> 1 + isize e
  | FSel (_, x, y, a, b) -> 1 + isize x + isize y + fsize a + fsize b

let size s =
  s.dim + isize s.istore + fsize s.fstore
  + (match s.ired with Some (_, e) -> 1 + isize e | None -> 0)
  + (match s.helper with Some _ -> 1 | None -> 0)

(* ------------------------------------------------------------------ *)
(* Building the module                                                *)
(* ------------------------------------------------------------------ *)

let is_div = function
  | IDivS | IRemS | IDivU | IRemU | IFloorDiv -> true
  | _ -> false

let ibin_build b op x y =
  match op with
  | IAdd -> B.addi b x y
  | ISub -> B.subi b x y
  | IMul -> B.muli b x y
  | IDivS -> B.divsi b x y
  | IRemS -> B.remsi b x y
  | IDivU -> B.divui b x y
  | IRemU -> B.remui b x y
  | IFloorDiv -> B.floordivsi b x y
  | IAnd -> B.andi b x y
  | IOr -> B.ori b x y
  | IXor -> B.xori b x y
  | IShl -> B.shli b x y
  | IShrS -> B.shrsi b x y
  | IShrU -> B.shrui b x y
  | IMaxS -> B.maxsi b x y
  | IMinS -> B.minsi b x y
  | IMaxU -> B.maxui b x y
  | IMinU -> B.minui b x y

(** [select (v == 0), 1, v] — the in-IR divisor guard. *)
let nonzero b v =
  let zero = B.constant_i b ~ty:T.I32 0 in
  let one = B.constant_i b ~ty:T.I32 1 in
  let is0 = B.cmpi b B.Eq v zero in
  B.select b is0 one v

let ibin_guarded b op x y =
  if is_div op then ibin_build b op x (nonzero b y) else ibin_build b op x y

let fbin_build b op x y =
  match op with
  | FbAdd -> B.addf b x y
  | FbSub -> B.subf b x y
  | FbMul -> B.mulf b x y
  | FbDiv -> B.divf b x y
  | FbMax -> B.maxf b x y
  | FbMin -> B.minf b x y

let bpred = function
  | CEq -> B.Eq
  | CNe -> B.Ne
  | CSlt -> B.Slt
  | CSle -> B.Sle
  | CSgt -> B.Sgt
  | CSge -> B.Sge
  | CUlt -> B.Ult
  | CUle -> B.Ule
  | CUgt -> B.Ugt
  | CUge -> B.Uge

type env = {
  a0 : Mhir.Ir.value;
  f0 : Mhir.Ir.value;
  n : Mhir.Ir.value;
  i : Mhir.Ir.value;
  j : Mhir.Ir.value;
}

let rec gen_i b env = function
  | IConst c -> B.constant_i b ~ty:T.I32 c
  | IArg -> env.n
  | ILoad swap ->
      let idxs = if swap then [ env.j; env.i ] else [ env.i; env.j ] in
      B.load b env.a0 idxs
  | IIdx d -> B.index_cast b (if d = 0 then env.i else env.j) T.I32
  | IBin (op, x, y) -> ibin_guarded b op (gen_i b env x) (gen_i b env y)
  | ISel (p, x, y, a, c) ->
      let cond = B.cmpi b (bpred p) (gen_i b env x) (gen_i b env y) in
      B.select b cond (gen_i b env a) (gen_i b env c)
  | ICall (x, y) -> (
      match B.call b "helper" ~ret_tys:[ T.I32 ] [ gen_i b env x; gen_i b env y ]
      with
      | [ v ] -> v
      | _ -> assert false)

let rec gen_f b env = function
  | FConst f -> B.constant_f b ~ty:T.F32 f
  | FLoad swap ->
      let idxs = if swap then [ env.j; env.i ] else [ env.i; env.j ] in
      B.load b env.f0 idxs
  | FBin (op, x, y) -> fbin_build b op (gen_f b env x) (gen_f b env y)
  | FSel (p, x, y, a, c) ->
      let cond = B.cmpi b (bpred p) (gen_i b env x) (gen_i b env y) in
      B.select b cond (gen_f b env a) (gen_f b env c)
  | FFromInt e -> B.sitofp b (gen_i b env e) T.F32

(** Materialize the spec as a verified-shape mhir module with a
    [kernel(a0, a1, f0, f1, n) -> i32] function (and possibly a
    [helper]).  [a0]/[f0] are inputs, [a1]/[f1] outputs. *)
let build (s : t) : Mhir.Ir.modul =
  let b = B.create () in
  let helper_fns =
    match s.helper with
    | None -> []
    | Some op ->
        [
          B.func b "helper"
            ~args:[ ("x", T.I32); ("y", T.I32) ]
            ~ret_tys:[ T.I32 ]
            (fun b args ->
              match args with
              | [ x; y ] -> B.ret b [ ibin_guarded b op x y ]
              | _ -> assert false);
        ]
  in
  let imem = T.Memref ([ s.dim; s.dim ], T.I32) in
  let fmem = T.Memref ([ s.dim; s.dim ], T.F32) in
  let kernel =
    B.func b "kernel"
      ~args:
        [ ("a0", imem); ("a1", imem); ("f0", fmem); ("f1", fmem); ("n", T.I32) ]
      ~ret_tys:[ T.I32 ]
      (fun b args ->
        match args with
        | [ a0; a1; f0; f1; n ] ->
            let init = B.constant_i b ~ty:T.I32 0 in
            let iters = match s.ired with Some _ -> [ init ] | None -> [] in
            let outer =
              B.affine_for b ~lb:0 ~ub:s.dim ~iters (fun b i outer_accs ->
                  B.affine_for b ~lb:0 ~ub:s.dim ~iters:outer_accs
                    (fun b j accs ->
                      let env = { a0; f0; n; i; j } in
                      let vi = gen_i b env s.istore in
                      B.store b vi a1 [ i; j ];
                      let vf = gen_f b env s.fstore in
                      B.store b vf f1 [ i; j ];
                      match (s.ired, accs) with
                      | Some (op, e), [ acc ] ->
                          [ ibin_build b op acc (gen_i b env e) ]
                      | None, [] -> []
                      | _ -> assert false))
            in
            let ret =
              match outer with
              | [ v ] -> v
              | _ -> B.constant_i b ~ty:T.I32 0
            in
            B.ret b [ ret ]
        | _ -> assert false)
  in
  { Mhir.Ir.funcs = helper_fns @ [ kernel ] }

(* ------------------------------------------------------------------ *)
(* Generation                                                         *)
(* ------------------------------------------------------------------ *)

(** Boundary-heavy constant pool (pre-normalized i32). *)
let interesting =
  [| 0; 1; -1; 2; 7; 31; 32; 33; 0x7FFFFFFF; -0x80000000; 200; -3; 1000000007 |]

let all_ibin =
  [|
    IAdd; ISub; IMul; IDivS; IRemS; IDivU; IRemU; IFloorDiv; IAnd; IOr; IXor;
    IShl; IShrS; IShrU; IMaxS; IMinS; IMaxU; IMinU;
  |]

(** Reduction ops: associative-enough and division-free, so the carried
    accumulator never needs a guard. *)
let red_ibin = [| IAdd; ISub; IMul; IAnd; IOr; IXor; IMaxS; IMinS; IMaxU; IMinU |]

let all_icmp = [| CEq; CNe; CSlt; CSle; CSgt; CSge; CUlt; CUle; CUgt; CUge |]
let all_fbin = [| FbAdd; FbSub; FbMul; FbDiv; FbMax; FbMin |]

let gen_iconst rng =
  IConst (Support.Int_sem.norm ~width:32 (Rng.pick rng interesting))

(** Dyadic float [k/16], exactly representable and round-trippable
    through the C++ printer's decimal literals. *)
let dyadic rng = float_of_int (Rng.int rng 129 - 64) /. 16.0

let dyadic_nz rng =
  let k = 1 + Rng.int rng 64 in
  let k = if Rng.bool rng then k else -k in
  float_of_int k /. 16.0

let rec gen_iexpr rng ~helper depth =
  if depth = 0 || Rng.int rng 4 = 0 then
    match Rng.int rng 4 with
    | 0 -> gen_iconst rng
    | 1 -> IArg
    | 2 -> ILoad (Rng.bool rng)
    | _ -> IIdx (Rng.int rng 2)
  else
    match Rng.int rng (if helper then 4 else 3) with
    | 0 | 1 ->
        IBin
          ( Rng.pick rng all_ibin,
            gen_iexpr rng ~helper (depth - 1),
            gen_iexpr rng ~helper (depth - 1) )
    | 2 ->
        ISel
          ( Rng.pick rng all_icmp,
            gen_iexpr rng ~helper (depth - 1),
            gen_iexpr rng ~helper (depth - 1),
            gen_iexpr rng ~helper (depth - 1),
            gen_iexpr rng ~helper (depth - 1) )
    | _ ->
        ICall (gen_iexpr rng ~helper (depth - 1), gen_iexpr rng ~helper (depth - 1))

let rec gen_fexpr rng ~helper depth =
  if depth = 0 || Rng.int rng 4 = 0 then
    if Rng.bool rng then FConst (dyadic rng) else FLoad (Rng.bool rng)
  else
    match Rng.int rng 4 with
    | 0 | 1 ->
        let op = Rng.pick rng all_fbin in
        if op = FbDiv then
          FBin (FbDiv, gen_fexpr rng ~helper (depth - 1), FConst (dyadic_nz rng))
        else
          FBin
            ( op,
              gen_fexpr rng ~helper (depth - 1),
              gen_fexpr rng ~helper (depth - 1) )
    | 2 ->
        FSel
          ( Rng.pick rng all_icmp,
            gen_iexpr rng ~helper (depth - 1),
            gen_iexpr rng ~helper (depth - 1),
            gen_fexpr rng ~helper (depth - 1),
            gen_fexpr rng ~helper (depth - 1) )
    | _ -> FFromInt (gen_iexpr rng ~helper (depth - 1))

let generate rng : t =
  let helper = if Rng.bool rng then Some (Rng.pick rng all_ibin) else None in
  let has_h = helper <> None in
  let dim = 2 + Rng.int rng (max_dim - 1) in
  let istore = gen_iexpr rng ~helper:has_h 3 in
  let fstore = gen_fexpr rng ~helper:has_h 3 in
  let ired =
    if Rng.bool rng then
      Some (Rng.pick rng red_ibin, gen_iexpr rng ~helper:has_h 2)
    else None
  in
  { dim; istore; fstore; ired; helper }

(* ------------------------------------------------------------------ *)
(* Shrinking                                                          *)
(* ------------------------------------------------------------------ *)

let rec inline_calls op = function
  | (IConst _ | IArg | ILoad _ | IIdx _) as e -> e
  | IBin (o, a, b) -> IBin (o, inline_calls op a, inline_calls op b)
  | ISel (p, x, y, a, b) ->
      ISel
        ( p,
          inline_calls op x,
          inline_calls op y,
          inline_calls op a,
          inline_calls op b )
  | ICall (a, b) -> IBin (op, inline_calls op a, inline_calls op b)

let rec inline_calls_f op = function
  | (FConst _ | FLoad _) as e -> e
  | FBin (o, a, b) -> FBin (o, inline_calls_f op a, inline_calls_f op b)
  | FSel (p, x, y, a, b) ->
      FSel
        ( p,
          inline_calls op x,
          inline_calls op y,
          inline_calls_f op a,
          inline_calls_f op b )
  | FFromInt e -> FFromInt (inline_calls op e)

let rec shrink_iexpr = function
  | IConst 0 -> []
  | IConst c -> [ IConst 0; IConst (c / 2) ]
  | IArg | ILoad _ | IIdx _ -> [ IConst 0 ]
  | IBin (op, a, b) ->
      [ a; b ]
      @ List.map (fun a' -> IBin (op, a', b)) (shrink_iexpr a)
      @ List.map (fun b' -> IBin (op, a, b')) (shrink_iexpr b)
  | ISel (p, x, y, a, b) ->
      [ a; b ]
      @ List.map (fun x' -> ISel (p, x', y, a, b)) (shrink_iexpr x)
      @ List.map (fun y' -> ISel (p, x, y', a, b)) (shrink_iexpr y)
      @ List.map (fun a' -> ISel (p, x, y, a', b)) (shrink_iexpr a)
      @ List.map (fun b' -> ISel (p, x, y, a, b')) (shrink_iexpr b)
  | ICall (a, b) ->
      [ a; b ]
      @ List.map (fun a' -> ICall (a', b)) (shrink_iexpr a)
      @ List.map (fun b' -> ICall (a, b')) (shrink_iexpr b)

let rec shrink_fexpr = function
  | FConst f when f = 0.0 -> []
  | FConst _ -> [ FConst 0.0; FConst 1.0 ]
  | FLoad _ -> [ FConst 0.0 ]
  | FBin (op, a, b) ->
      let keep_nz cands =
        (* never shrink a divisor to a zero constant *)
        if op = FbDiv then List.filter (fun e -> e <> FConst 0.0) cands
        else cands
      in
      (keep_nz [ a; b ] |> fun whole -> whole)
      @ List.map (fun a' -> FBin (op, a', b)) (shrink_fexpr a)
      @ List.map (fun b' -> FBin (op, a, b')) (keep_nz (shrink_fexpr b))
  | FSel (p, x, y, a, b) ->
      [ a; b ]
      @ List.map (fun x' -> FSel (p, x', y, a, b)) (shrink_iexpr x)
      @ List.map (fun y' -> FSel (p, x, y', a, b)) (shrink_iexpr y)
      @ List.map (fun a' -> FSel (p, x, y, a', b)) (shrink_fexpr a)
      @ List.map (fun b' -> FSel (p, x, y, a, b')) (shrink_fexpr b)
  | FFromInt e -> FConst 0.0 :: List.map (fun e' -> FFromInt e') (shrink_iexpr e)

(** Strictly simpler candidate specs, most aggressive first.  Every
    candidate is still well-formed: [ICall] only survives while
    [helper] is present, and float divisors never become the zero
    constant. *)
let shrink (s : t) : t list =
  let dims =
    if s.dim > 1 then
      { s with dim = 1 }
      :: (if s.dim > 2 then [ { s with dim = s.dim - 1 } ] else [])
    else []
  in
  let red =
    match s.ired with
    | None -> []
    | Some (op, e) ->
        { s with ired = None }
        :: List.map (fun e' -> { s with ired = Some (op, e') }) (shrink_iexpr e)
  in
  let helper =
    match s.helper with
    | None -> []
    | Some op ->
        [
          {
            s with
            helper = None;
            istore = inline_calls op s.istore;
            fstore = inline_calls_f op s.fstore;
            ired = Option.map (fun (o, e) -> (o, inline_calls op e)) s.ired;
          };
        ]
  in
  let ist =
    (if s.istore <> IConst 0 then [ { s with istore = IConst 0 } ] else [])
    @ List.map (fun e -> { s with istore = e }) (shrink_iexpr s.istore)
  in
  let fst_ =
    (if s.fstore <> FConst 0.0 then [ { s with fstore = FConst 0.0 } ] else [])
    @ List.map (fun e -> { s with fstore = e }) (shrink_fexpr s.fstore)
  in
  List.filter (fun c -> c <> s) (dims @ red @ helper @ ist @ fst_)
