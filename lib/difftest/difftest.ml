(** Cross-layer differential equivalence oracle.

    Each test case is a random well-typed kernel ({!Spec}) plus random
    inputs.  The kernel is executed at up to four points of the stack
    on identical inputs:

    - {b mhir} — the reference: {!Mhir.Interp} on the module as built;
    - {b lower} — canonicalized, lowered to modern LLVM IR, cleaned up,
      then run on {!Llvmir.Linterp};
    - {b adapted} — the full Flow A front-end (cleanup + adaptor), same
      interpreter;
    - {b cpp} — the full Flow B front-end (HLS-C++ emission re-parsed
      by the mini-C front-end), same interpreter.

    Integer outputs and the scalar return must agree bit-exactly; float
    outputs within 2 ULP (all interpreters compute in double, so in
    practice they agree bit-exactly too).  On a mismatch a greedy
    shrinker minimizes the spec and a self-contained [.mlir] repro is
    emitted. *)

module I = Mhir.Interp
module L = Llvmir.Linterp

let fail fmt = Support.Err.fail ~pass:"difftest" fmt

(* ------------------------------------------------------------------ *)
(* Stages                                                             *)
(* ------------------------------------------------------------------ *)

type stage = Lower | Adapted | Cpp

let all_stages = [ Lower; Adapted; Cpp ]
let stage_name = function Lower -> "lower" | Adapted -> "adapted" | Cpp -> "cpp"

let stage_of_name = function
  | "lower" -> Some Lower
  | "adapted" -> Some Adapted
  | "cpp" -> Some Cpp
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Cases                                                              *)
(* ------------------------------------------------------------------ *)

type case = {
  c_seed : int;
  c_index : int;
  c_spec : Spec.t;
  c_ints : int array;  (** [max_dim²] input ints (i32-normalized) *)
  c_floats : float array;  (** [max_dim²] dyadic input floats *)
  c_n : int;  (** the scalar kernel argument *)
}

let input_slots = Spec.max_dim * Spec.max_dim

(** The case for [(seed, index)] — a pure function of both, so batches
    are reproducible for any [--jobs] and any scheduling order. *)
let gen_case ~seed ~index =
  let rng = Rng.case ~seed ~index in
  let spec = Spec.generate rng in
  let ints =
    Array.init input_slots (fun _ ->
        if Rng.bool rng then
          Support.Int_sem.norm ~width:32 (Rng.pick rng Spec.interesting)
        else Rng.i32 rng)
  in
  let floats = Array.init input_slots (fun _ -> Spec.dyadic rng) in
  let n = Support.Int_sem.norm ~width:32 (Rng.pick rng Spec.interesting) in
  {
    c_seed = seed;
    c_index = index;
    c_spec = spec;
    c_ints = ints;
    c_floats = floats;
    c_n = n;
  }

(* ------------------------------------------------------------------ *)
(* Executing one case at each stage                                   *)
(* ------------------------------------------------------------------ *)

type outputs = { o_ints : int array; o_floats : float array; o_ret : int }

let run_mhir (m : Mhir.Ir.modul) (c : case) : outputs =
  let dim = c.c_spec.Spec.dim in
  let size = dim * dim in
  let ibuf data =
    let b = I.alloc_buffer [| dim; dim |] Mhir.Types.I32 in
    Array.blit data 0 b.I.idata 0 size;
    b
  in
  let fbuf data =
    let b = I.alloc_buffer [| dim; dim |] Mhir.Types.F32 in
    Array.blit data 0 b.I.fdata 0 size;
    b
  in
  let a0 = ibuf c.c_ints in
  let a1 = I.alloc_buffer [| dim; dim |] Mhir.Types.I32 in
  let f0 = fbuf c.c_floats in
  let f1 = I.alloc_buffer [| dim; dim |] Mhir.Types.F32 in
  let rets =
    I.run_func m "kernel"
      [ I.Buf a0; I.Buf a1; I.Buf f0; I.Buf f1; I.Int c.c_n ]
  in
  let ret =
    match rets with
    | [ I.Int v ] -> v
    | _ -> fail "kernel: expected a single integer result"
  in
  {
    o_ints = Array.copy a1.I.idata;
    o_floats = Array.copy f1.I.fdata;
    o_ret = ret;
  }

let run_llvm (lm : Llvmir.Lmodule.t) (c : case) : outputs =
  let dim = c.c_spec.Spec.dim in
  let size = dim * dim in
  let st = L.create lm in
  let a0 = L.alloc_ints st size in
  L.write_ints st a0 (Array.sub c.c_ints 0 size);
  let a1 = L.alloc_ints st size in
  let f0 = L.alloc_floats st size in
  L.write_floats st f0 (Array.sub c.c_floats 0 size);
  let f1 = L.alloc_floats st size in
  let ret =
    match
      L.run st "kernel"
        [ L.RPtr a0; L.RPtr a1; L.RPtr f0; L.RPtr f1; L.RInt c.c_n ]
    with
    | Some (L.RInt v) -> v
    | _ -> fail "kernel: expected an integer return value"
  in
  {
    o_ints = L.read_ints st a1 size;
    o_floats = L.read_floats st f1 size;
    o_ret = ret;
  }

(** Produce the LLVM IR a stage hands to the interpreter.  [mutate] is
    a test hook: it sees every stage's module just before execution
    (used to demonstrate that the harness catches injected bugs). *)
let build_stage ?mutate stage (m : Mhir.Ir.modul) : Llvmir.Lmodule.t =
  let apply lm = match mutate with Some f -> f stage lm | None -> lm in
  match stage with
  | Lower ->
      let m = Mhir.Canonicalize.run m in
      let lm = Lowering.Lower.lower_module ~style:Lowering.Lower.modern m in
      Llvmir.Lverifier.verify_module lm;
      apply (Flow.llvm_cleanup lm)
  | Adapted -> (
      match Flow.direct_ir_frontend m with
      | Ok (lm, _report, _) -> apply lm
      | Error ds -> raise (Support.Diag.Failed ds))
  | Cpp ->
      let lm, _cpp, _ = Flow.hls_cpp_frontend m in
      apply lm

(* ------------------------------------------------------------------ *)
(* Comparison                                                         *)
(* ------------------------------------------------------------------ *)

let ulp_diff a b =
  let bits f =
    let x = Int64.bits_of_float f in
    (* order the bit patterns so adjacent floats differ by 1 *)
    if Int64.compare x 0L < 0 then Int64.sub Int64.min_int x else x
  in
  Int64.abs (Int64.sub (bits a) (bits b))

let float_eq a b =
  a = b
  || (Float.is_nan a && Float.is_nan b)
  || Int64.compare (ulp_diff a b) 2L <= 0

let compare_outputs (expected : outputs) (got : outputs) : string option =
  if expected.o_ret <> got.o_ret then
    Some
      (Printf.sprintf "return value: expected %d, got %d" expected.o_ret
         got.o_ret)
  else begin
    let bad = ref None in
    Array.iteri
      (fun k v ->
        if !bad = None && v <> got.o_ints.(k) then
          bad :=
            Some
              (Printf.sprintf "int output [%d]: expected %d, got %d" k v
                 got.o_ints.(k)))
      expected.o_ints;
    Array.iteri
      (fun k v ->
        if !bad = None && not (float_eq v got.o_floats.(k)) then
          bad :=
            Some
              (Printf.sprintf "float output [%d]: expected %h, got %h" k v
                 got.o_floats.(k)))
      expected.o_floats;
    !bad
  end

let describe_exn = function
  | Support.Err.Compile_error e -> Support.Err.to_string e
  | Support.Diag.Failed ds ->
      String.concat "; " (List.map Support.Diag.to_string ds)
  | e -> Printexc.to_string e

(** Run one case through the reference and every requested stage.
    [None] = all stages agree; [Some (stage, detail)] names the first
    diverging (or crashing) stage.  Never raises. *)
let run_case ?mutate ?(stages = all_stages) (c : case) :
    (string * string) option =
  match
    let m = Spec.build c.c_spec in
    Mhir.Verifier.verify_module m;
    (m, run_mhir m c)
  with
  | exception e -> Some ("mhir", describe_exn e)
  | m, expected ->
      List.fold_left
        (fun acc stage ->
          match acc with
          | Some _ -> acc
          | None -> (
              match run_llvm (build_stage ?mutate stage m) c with
              | exception e -> Some (stage_name stage, describe_exn e)
              | got -> (
                  match compare_outputs expected got with
                  | Some d -> Some (stage_name stage, d)
                  | None -> None)))
        None stages

(* ------------------------------------------------------------------ *)
(* Shrinking                                                          *)
(* ------------------------------------------------------------------ *)

(** Greedy first-improvement minimization: repeatedly move to the first
    {!Spec.shrink} candidate that still fails, within a fixed budget of
    oracle runs.  Inputs are kept fixed — input arrays are sized for
    [max_dim], so dimension shrinks reuse their prefix. *)
let shrink_case ?mutate ~stages (c : case) (first : string * string) :
    case * (string * string) =
  let budget = ref 200 in
  let rec go cur last =
    if !budget <= 0 then (cur, last)
    else begin
      let rec first_failing = function
        | [] -> None
        | spec :: rest ->
            if !budget <= 0 then None
            else begin
              decr budget;
              let cand = { cur with c_spec = spec } in
              match run_case ?mutate ~stages cand with
              | Some d -> Some (cand, d)
              | None -> first_failing rest
            end
      in
      match first_failing (Spec.shrink cur.c_spec) with
      | Some (cand, d) -> go cand d
      | None -> (cur, last)
    end
  in
  go c first

(* ------------------------------------------------------------------ *)
(* Failures and repro files                                           *)
(* ------------------------------------------------------------------ *)

type failure = {
  f_index : int;
  f_seed : int;
  f_case : case;  (** the minimized failing case *)
  f_orig_size : int;  (** spec size before shrinking *)
  f_stage : string;  (** "mhir", "lower", "adapted" or "cpp" *)
  f_detail : string;
}

(** Self-contained repro: a [//]-comment header (skipped by the mhir
    tokenizer) with the inputs, followed by the kernel in generic
    textual form — parseable with {!Mhir.Parser.parse_module}. *)
let repro_text (f : failure) : string =
  let c = f.f_case in
  let dim = c.c_spec.Spec.dim in
  let size = dim * dim in
  let join fmt arr =
    String.concat ", " (Array.to_list (Array.map fmt (Array.sub arr 0 size)))
  in
  let buf = Buffer.create 512 in
  Printf.bprintf buf "// mhlsc fuzz repro — minimal diverging kernel\n";
  Printf.bprintf buf "// seed: %d  case: %d\n" f.f_seed f.f_index;
  Printf.bprintf buf "// stage: %s\n" f.f_stage;
  Printf.bprintf buf "// mismatch: %s\n" f.f_detail;
  Printf.bprintf buf "// a0 = [%s]\n" (join string_of_int c.c_ints);
  Printf.bprintf buf "// f0 = [%s]\n" (join (Printf.sprintf "%h") c.c_floats);
  Printf.bprintf buf "// n = %d\n" c.c_n;
  Buffer.add_string buf
    (Mhir.Printer.module_to_string ~generic:true (Spec.build c.c_spec));
  Buffer.contents buf

let write_repro dir (f : failure) : string =
  (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
  let path =
    Filename.concat dir
      (Printf.sprintf "fuzz-seed%d-case%d.mlir" f.f_seed f.f_index)
  in
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (repro_text f));
  path

(* ------------------------------------------------------------------ *)
(* Batch driver                                                       *)
(* ------------------------------------------------------------------ *)

type report = {
  r_seed : int;
  r_total : int;
  r_failures : failure list;
  r_files : string list;  (** repro files written, in failure order *)
}

(** Run [count] cases derived from [seed].  Case execution fans out on
    the driver's domain pool ([jobs]); results are deterministic for
    any [jobs] value.  Shrinking and repro emission run sequentially on
    the main domain afterwards, as does [trace] (one event per case, so
    hooks need not be thread-safe). *)
let run_batch ?(trace = Support.Tracing.null) ?mutate ?(stages = all_stages)
    ?(shrink = true) ?repro_dir ?(jobs = 1) ~seed ~count () : report =
  let idxs = List.init count (fun i -> i) in
  let results =
    Mhls_driver.Pool.map ~jobs
      (fun index ->
        let t0 = Sys.time () in
        let c = gen_case ~seed ~index in
        let r =
          match run_case ?mutate ~stages c with
          | r -> r
          | exception e -> Some ("harness", describe_exn e)
        in
        (index, c, r, Sys.time () -. t0))
      idxs
  in
  List.iter
    (fun (index, c, _r, dt) ->
      trace
        (Support.Tracing.event ~stage:"difftest"
           ~pass:(Printf.sprintf "case-%d" index)
           ~seconds:dt
           ~before:(Spec.size c.c_spec)
           ~after:(Spec.size c.c_spec)))
    results;
  let failures =
    List.filter_map
      (fun (index, c, r, _dt) ->
        match r with
        | None -> None
        | Some first ->
            let orig_size = Spec.size c.c_spec in
            let c, (st, d) =
              if shrink then shrink_case ?mutate ~stages c first
              else (c, first)
            in
            Some
              {
                f_index = index;
                f_seed = seed;
                f_case = c;
                f_orig_size = orig_size;
                f_stage = st;
                f_detail = d;
              })
      results
  in
  let files =
    match repro_dir with
    | None -> []
    | Some dir -> List.map (write_repro dir) failures
  in
  { r_seed = seed; r_total = count; r_failures = failures; r_files = files }

let render (r : report) : string =
  let buf = Buffer.create 256 in
  Printf.bprintf buf "fuzz: %d cases, %d mismatching (seed %d)\n" r.r_total
    (List.length r.r_failures) r.r_seed;
  List.iter
    (fun f ->
      Printf.bprintf buf "  case %d [%s]: %s (spec %d -> %d nodes)\n" f.f_index
        f.f_stage f.f_detail f.f_orig_size
        (Spec.size f.f_case.c_spec))
    r.r_failures;
  List.iter (fun p -> Printf.bprintf buf "  repro: %s\n" p) r.r_files;
  Buffer.contents buf
