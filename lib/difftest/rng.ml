(** Deterministic pseudo-random streams for the differential tester.

    A splitmix64 generator: tiny, fast, and — unlike [Random] — with an
    explicit state we can derive per test case.  Each case gets an
    independent stream computed from [(seed, index)], so a batch
    produces identical cases regardless of [--jobs] or the order the
    worker pool happens to pick them up in. *)

type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next t =
  t.state <- Int64.add t.state golden;
  mix t.state

let create seed = { state = mix (Int64.of_int seed) }

(** The stream for case [index] of run [seed]; independent of every
    other case's stream. *)
let case ~seed ~index =
  {
    state =
      mix
        (Int64.add
           (mix (Int64.of_int seed))
           (Int64.mul golden (Int64.of_int (index + 1))));
  }

(** 62 uniformly random non-negative bits. *)
let bits t = Int64.to_int (Int64.shift_right_logical (next t) 2)

(** Uniform in [\[0, n)]; [n] must be positive. *)
let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  bits t mod n

let bool t = Int64.logand (next t) 1L = 1L
let pick t arr = arr.(int t (Array.length arr))

(** A full-width random i32, normalized to the signed range. *)
let i32 t = Support.Int_sem.norm ~width:32 (bits t land 0xFFFFFFFF)
