(** Minimal JSON: a value type, a deterministic printer and a
    recursive-descent parser.

    The serve protocol ([Mhls_serve.Protocol]) needs to {e read} JSON,
    not just write it — every other producer in the tree ({!Diag},
    [Trace], [Dse_json]) only prints.  This module is the shared
    two-way codec: object fields keep their insertion order, printing
    is deterministic (no hash-order leaks), floats round-trip via
    {!Float_lit}-style shortest forms, and parse failures are [Error]
    strings with a byte offset, never exceptions. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                           *)
(* ------------------------------------------------------------------ *)

let escape (s : string) =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let float_to_string (f : float) =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else
    (* shortest representation that round-trips *)
    let s = Printf.sprintf "%.15g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_to_string f)
  | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string buf ", ";
          write buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ", ";
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\": ";
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string (v : t) : string =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                            *)
(* ------------------------------------------------------------------ *)

exception Parse_error of int * string

let parse (src : string) : (t, string) result =
  let n = String.length src in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some src.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    if !pos + String.length word <= n
       && String.sub src !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail (Printf.sprintf "expected '%s'" word)
  in
  let parse_hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let h = String.sub src !pos 4 in
    pos := !pos + 4;
    match int_of_string_opt ("0x" ^ h) with
    | Some c -> c
    | None -> fail "bad \\u escape"
  in
  let utf8_add buf code =
    (* encode a Unicode scalar value as UTF-8 *)
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = src.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
          if !pos >= n then fail "unterminated escape";
          let e = src.[!pos] in
          advance ();
          match e with
          | '"' -> Buffer.add_char buf '"'; go ()
          | '\\' -> Buffer.add_char buf '\\'; go ()
          | '/' -> Buffer.add_char buf '/'; go ()
          | 'n' -> Buffer.add_char buf '\n'; go ()
          | 't' -> Buffer.add_char buf '\t'; go ()
          | 'r' -> Buffer.add_char buf '\r'; go ()
          | 'b' -> Buffer.add_char buf '\b'; go ()
          | 'f' -> Buffer.add_char buf '\012'; go ()
          | 'u' ->
              utf8_add buf (parse_hex4 ());
              go ()
          | _ -> fail "bad escape")
      | c -> Buffer.add_char buf c; go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char src.[!pos] do
      advance ()
    done;
    let text = String.sub src start (!pos - start) in
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail (Printf.sprintf "bad number '%s'" text))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> Str (parse_string ())
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          items []
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let rec fields acc =
            let kv = field () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields (kv :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev (kv :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          fields []
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) ->
      Error (Printf.sprintf "JSON parse error at byte %d: %s" at msg)

(* ------------------------------------------------------------------ *)
(* Accessors                                                          *)
(* ------------------------------------------------------------------ *)

let member (k : string) = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
let to_int = function Int i -> Some i | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_bool = function Bool b -> Some b | _ -> None
let to_list = function List xs -> Some xs | _ -> None

let str_member k v = Option.bind (member k v) to_str
let int_member k v = Option.bind (member k v) to_int
let float_member k v = Option.bind (member k v) to_float
let bool_member k v = Option.bind (member k v) to_bool
let list_member k v = Option.bind (member k v) to_list
