(** Global symbol interner.

    SSA register names, block labels and global names occur millions of
    times on the batch/DSE hot path; interning turns every occurrence
    into a small integer id so equality, hashing and table lookups are
    O(1) and allocation-free.  Ids are process-global and stable for
    the lifetime of the process.

    Because the id assigned to a name depends on interning order — and
    the batch driver interns from several domains at once — ids must
    never order user-visible output.  Sort by {!name} (see
    {!compare_name}) wherever ordering reaches text. *)

type t = int

(* One global table, shared across domains.  The mutex guards both the
   forward table and the reverse array; [name] also takes it because
   the reverse array is reallocated on growth. *)
let mutex = Mutex.create ()
let forward : (string, int) Hashtbl.t = Hashtbl.create 1024
let reverse = ref (Array.make 1024 "")
let next = ref 0

let intern (s : string) : t =
  Mutex.lock mutex;
  let id =
    match Hashtbl.find_opt forward s with
    | Some id -> id
    | None ->
        let id = !next in
        incr next;
        if id >= Array.length !reverse then begin
          let bigger = Array.make (2 * Array.length !reverse) "" in
          Array.blit !reverse 0 bigger 0 (Array.length !reverse);
          reverse := bigger
        end;
        !reverse.(id) <- s;
        Hashtbl.add forward s id;
        id
  in
  Mutex.unlock mutex;
  id

let name (id : t) : string =
  Mutex.lock mutex;
  let s =
    if id < 0 || id >= !next then
      invalid_arg (Printf.sprintf "Interner.name: unknown id %d" id)
    else !reverse.(id)
  in
  Mutex.unlock mutex;
  s

(* Interned before anything else so the empty symbol is id 0 in every
   process, matching the [result = ""] void-instruction convention. *)
let empty : t = intern ""
let is_empty (id : t) = id = empty
let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Stdlib.compare a b
let hash (id : t) = id
let compare_name (a : t) (b : t) = String.compare (name a) (name b)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Hash = struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end

module Tbl = Hashtbl.Make (Hash)
module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
