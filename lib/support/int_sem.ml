(** Shared two's-complement integer semantics.

    Every evaluator in the stack — the mhir reference interpreter, the
    LLVM IR interpreter, both constant folders and the adaptor's
    legalization passes — must agree bit-for-bit on integer arithmetic,
    or the differential oracle ({!Mhls_difftest}) reports false
    mismatches between stages.  This module is the single definition
    they all share.

    Representation: an integer of width [w] is stored as a native OCaml
    [int], sign-extended ("normalized") so that its signed value and its
    native value coincide.  Unsigned operations reinterpret that
    two's-complement pattern in the type's width.

    Width 64 is special: native ints have 63 bits, so 64-bit operations
    are computed in [Int64] (true LLVM semantics) and the result is
    truncated back to the native range — the same documented
    substitution the interpreters make for [i64]/[index] values.

    Deterministic shift semantics (LLVM leaves these poison; we pick a
    fixed behaviour so every stage agrees and document it):
    - shift amount [< 0] or [>= width]: [shl] and [lshr] yield 0,
      [ashr] yields the sign fill (-1 for negative operands, else 0);
    - otherwise the usual two's-complement shift in the type's width. *)

(** Sign-extend [v] to the native range from width [w] (identity for
    [w >= 63]). *)
let norm ~width v =
  if width >= 63 then v
  else
    let m = v land ((1 lsl width) - 1) in
    if width > 1 && m land (1 lsl (width - 1)) <> 0 then m - (1 lsl width)
    else m

(** Unsigned reinterpretation of a normalized value (widths < 63). *)
let to_unsigned ~width v = v land ((1 lsl width) - 1)

(* 64-bit operations run in Int64; [Int64.of_int] sign-extends the
   normalized native value into the full 64-bit pattern and
   [Int64.to_int] truncates the result back to 63 bits. *)
let via_int64 f a b = Int64.to_int (f (Int64.of_int a) (Int64.of_int b))

(** Unsigned division.  The divisor must be non-zero (callers guard and
    report division by zero in their own way). *)
let udiv ~width a b =
  if width >= 63 then via_int64 Int64.unsigned_div a b
  else norm ~width (to_unsigned ~width a / to_unsigned ~width b)

(** Unsigned remainder; divisor must be non-zero. *)
let urem ~width a b =
  if width >= 63 then via_int64 Int64.unsigned_rem a b
  else norm ~width (to_unsigned ~width a mod to_unsigned ~width b)

let shl ~width a b =
  if b < 0 || b >= width then 0
  else if width >= 63 then Int64.to_int (Int64.shift_left (Int64.of_int a) b)
  else norm ~width (a lsl b)

let lshr ~width a b =
  if b < 0 || b >= width then 0
  else if width >= 63 then
    Int64.to_int (Int64.shift_right_logical (Int64.of_int a) b)
  else norm ~width (to_unsigned ~width a lsr b)

let ashr ~width a b =
  if b < 0 || b >= width then if a < 0 then -1 else 0
  else if width >= 63 then Int64.to_int (Int64.shift_right (Int64.of_int a) b)
  else a asr b

(* Unsigned comparisons: flipping the native sign bit maps unsigned
   order onto signed order.  Sign-extension preserves unsigned order
   across widths (the negative half of width [w] maps to the top of the
   native unsigned range), so normalized values need no width here. *)
let ult a b = a lxor min_int < b lxor min_int
let ule a b = not (b lxor min_int < a lxor min_int)
let ugt a b = b lxor min_int < a lxor min_int
let uge a b = not (a lxor min_int < b lxor min_int)
let umax a b = if ult a b then b else a
let umin a b = if ult a b then a else b

(** Signed division rounding toward negative infinity (MLIR
    [arith.floordivsi]); divisor must be non-zero. *)
let floordivsi a b =
  let q = a / b and r = a mod b in
  if r <> 0 && r < 0 <> (b < 0) then q - 1 else q
