(** Pass-level tracing hook — the observability seam of the compiler.

    Every staged driver ({!Llvmir.Pass.run_pipeline}, [Adaptor.run],
    the flows) can be handed a [hook]; after each pass it reports one
    {!event} carrying the pass identity, its wall time and the IR-size
    delta it caused.  The hook is deliberately dumb — a plain callback
    over a record of scalars — so this module needs no IR knowledge and
    every layer of the stack can depend on it.  The batch driver
    ([Mhls_driver.Trace]) aggregates events into JSON traces and
    summary tables. *)

type event = {
  ev_stage : string;
      (** coarse phase: ["mhir"], ["lower"], ["llvm-opt"], ["adaptor"],
          ["hls"], ... *)
  ev_pass : string;  (** pass name within the stage *)
  ev_seconds : float;  (** time spent in the pass *)
  ev_instrs_before : int;  (** IR size (instruction count) entering *)
  ev_instrs_after : int;  (** IR size leaving — delta = effect *)
  ev_minor_words : float;
      (** words allocated on the minor heap during the pass
          ([Gc.quick_stat] delta); [0.] when the reporter doesn't
          measure allocation *)
  ev_major_words : float;  (** words allocated directly on the major heap *)
}

type hook = event -> unit

(** The no-op hook: tracing disabled. *)
let null : hook = fun _ -> ()

let event ~stage ~pass ~seconds ~before ~after : event =
  {
    ev_stage = stage;
    ev_pass = pass;
    ev_seconds = seconds;
    ev_instrs_before = before;
    ev_instrs_after = after;
    ev_minor_words = 0.;
    ev_major_words = 0.;
  }

(** Attach allocation figures to an event (reporters that measure
    [Gc.quick_stat] deltas around the pass). *)
let with_alloc ~minor_words ~major_words (e : event) : event =
  { e with ev_minor_words = minor_words; ev_major_words = major_words }

(** An accumulating hook: [collector ()] returns the hook and a
    function reading back everything recorded so far, in order. *)
let collector () : hook * (unit -> event list) =
  let events = ref [] in
  ((fun e -> events := e :: !events), fun () -> List.rev !events)

(** [timed hook ~stage ~pass ~size f x] runs [f x], reporting one event
    to [hook] with [size] evaluated on input and output. *)
let timed (hook : hook) ~stage ~pass ~(size : 'a -> int) (f : 'a -> 'a)
    (x : 'a) : 'a =
  let before = size x in
  let t0 = Sys.time () in
  let y = f x in
  let seconds = Sys.time () -. t0 in
  hook (event ~stage ~pass ~seconds ~before ~after:(size y));
  y
