(** Shortest round-tripping float literals (shared by every printer). *)

(** Shortest decimal form that parses back to the exact double, always
    containing a ['.'] or an exponent (["1.0"], not ["1"]); ["nan"],
    ["inf"], ["-inf"] for the non-finite values. *)
val to_string : float -> string
