(** Shortest round-tripping float literals.

    One definition shared by the LLVM-IR printer, the MHIR printer and
    the HLS-C++ emitter, so every textual layer prints the same
    shortest decimal form that parses back to the exact double. *)

let to_string (f : float) : string =
  if f <> f then "nan"
  else if f = infinity then "inf"
  else if f = neg_infinity then "-inf"
  else
    let s9 = Printf.sprintf "%.9g" f in
    let s = if float_of_string s9 = f then s9 else Printf.sprintf "%.17g" f in
    (* keep a float marker so the literal never re-parses as an int *)
    if String.contains s '.' || String.contains s 'e' then s else s ^ ".0"
