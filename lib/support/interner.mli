(** Global symbol interner: names as integer ids.

    [t] is [private int], so the generic [=], [compare] and
    [Hashtbl.hash] all work natively on symbols (and polymorphic
    structural equality over types embedding them stays valid).  Ids
    are assigned in interning order, which races across domains —
    never let id order reach printed output; sort by {!compare_name}
    instead. *)

type t = private int

(** Intern a name, returning its id.  Thread-safe. *)
val intern : string -> t

(** The name behind an id.  Thread-safe.
    @raise Invalid_argument on an id this process never interned. *)
val name : t -> string

(** The interned empty string — the [result] of void instructions. *)
val empty : t

val is_empty : t -> bool
val equal : t -> t -> bool

(** Id order: fast, but process-run dependent.  Internal use only. *)
val compare : t -> t -> int

val hash : t -> int

(** Name (string) order: deterministic across runs — use this wherever
    an ordering can reach user-visible output. *)
val compare_name : t -> t -> int

module Tbl : Hashtbl.S with type key = t
module Set : Set.S with type elt = t
module Map : Map.S with type key = t
