(** Error handling shared by every layer of the compiler stack.

    All front-end, verification and legalization failures are reported
    through {!exception:Compile_error} carrying a structured {!t}. *)

type severity = Error | Warning

type t = {
  severity : severity;
  pass : string;  (** producing component, e.g. ["adaptor.compat"] *)
  message : string;
  context : string option;  (** offending construct, pretty-printed *)
}

exception Compile_error of t

let severity_name = function Error -> "error" | Warning -> "warning"

let make ?(severity = Error) ?context ~pass message =
  { severity; pass; message; context }

let fail ?context ~pass fmt =
  Format.kasprintf
    (fun message -> raise (Compile_error (make ?context ~pass message)))
    fmt

let to_string { severity; pass; message; context } =
  let sev = severity_name severity in
  let ctx = match context with None -> "" | Some c -> "\n  in: " ^ c in
  Printf.sprintf "[%s] %s: %s%s" pass sev message ctx

let pp fmt_ e = Format.pp_print_string fmt_ (to_string e)

(** [guard ~pass cond msg] raises when [cond] is false. *)
let guard ?context ~pass cond msg =
  if not cond then fail ?context ~pass "%s" msg
