(** Accumulating diagnostics engine.

    {!Err} is fail-fast: the first problem raises {!Err.Compile_error}
    and compilation stops.  That is right for invariant violations but
    wrong for {e analysis} output — a lint pass or compatibility check
    should report everything it finds in one run.  This module carries
    such findings: each diagnostic has a stable rule ID ([HLS001], ...),
    a severity, a location, and renders to text or JSON.  A batch of
    diagnostics can be promoted ([-Werror]-style), summarized, and
    turned into a process exit code. *)

type severity = Note | Warning | Error

type t = {
  rule : string;  (** stable rule ID, e.g. ["HLS001"] *)
  severity : severity;
  func : string option;  (** enclosing function, without [@] *)
  location : string option;  (** block / register / parameter, without sigil *)
  message : string;
  hint : string option;  (** suggested fix, if any *)
}

(** Raised by strict-mode drivers when error-severity diagnostics
    remain; carries the {e complete} accumulated list, not just the
    first finding. *)
exception Failed of t list

let severity_name = function
  | Note -> "note"
  | Warning -> "warning"
  | Error -> "error"

let severity_rank = function Note -> 0 | Warning -> 1 | Error -> 2

let make ?func ?location ?hint ~severity ~rule fmt =
  Format.kasprintf
    (fun message -> { rule; severity; func; location; hint; message })
    fmt

let note ?func ?location ?hint ~rule fmt =
  make ?func ?location ?hint ~severity:Note ~rule fmt

let warning ?func ?location ?hint ~rule fmt =
  make ?func ?location ?hint ~severity:Warning ~rule fmt

let error ?func ?location ?hint ~rule fmt =
  make ?func ?location ?hint ~severity:Error ~rule fmt

(* ------------------------------------------------------------------ *)
(* Accumulation                                                       *)
(* ------------------------------------------------------------------ *)

(** An accumulating buffer: passes add as they go, the driver reads the
    batch at the end. *)
type buffer = { mutable items : t list (* reversed *) }

let create () = { items = [] }
let add (b : buffer) (d : t) = b.items <- d :: b.items
let add_all (b : buffer) (ds : t list) = List.iter (add b) ds
let contents (b : buffer) : t list = List.rev b.items
let is_empty (b : buffer) = b.items = []

(* ------------------------------------------------------------------ *)
(* Batch queries                                                      *)
(* ------------------------------------------------------------------ *)

let count sev ds = List.length (List.filter (fun d -> d.severity = sev) ds)
let errors ds = count Error ds
let warnings ds = count Warning ds

let max_severity (ds : t list) : severity option =
  List.fold_left
    (fun acc d ->
      match acc with
      | None -> Some d.severity
      | Some s ->
          Some (if severity_rank d.severity > severity_rank s then d.severity else s))
    None ds

(** Exit code a CLI should return for this batch:
    0 = clean or notes only, 1 = warnings, 2 = errors. *)
let exit_code (ds : t list) : int =
  match max_severity ds with
  | Some Error -> 2
  | Some Warning -> 1
  | _ -> 0

(** [-Werror]: every warning becomes an error. *)
let promote_warnings (ds : t list) : t list =
  List.map
    (fun d -> if d.severity = Warning then { d with severity = Error } else d)
    ds

(** Stable presentation order: severity (errors first), then rule ID,
    function and location; input order breaks remaining ties. *)
let sort (ds : t list) : t list =
  List.stable_sort
    (fun a b ->
      let c = compare (severity_rank b.severity) (severity_rank a.severity) in
      if c <> 0 then c
      else
        let c = compare a.rule b.rule in
        if c <> 0 then c else compare (a.func, a.location) (b.func, b.location))
    ds

(* ------------------------------------------------------------------ *)
(* Text rendering                                                     *)
(* ------------------------------------------------------------------ *)

let where_string (d : t) =
  match (d.func, d.location) with
  | Some f, Some l -> Printf.sprintf "@%s:%%%s" f l
  | Some f, None -> "@" ^ f
  | None, Some l -> "%" ^ l
  | None, None -> "-"

let to_string (d : t) =
  Printf.sprintf "%s %-7s %-20s %s%s" d.rule
    (severity_name d.severity)
    (where_string d) d.message
    (match d.hint with None -> "" | Some h -> "\n        hint: " ^ h)

let summary (ds : t list) =
  Printf.sprintf "%d error(s), %d warning(s), %d note(s)" (errors ds)
    (warnings ds) (count Note ds)

(** Full text report: sorted diagnostics plus a summary line. *)
let render (ds : t list) : string =
  let b = Buffer.create 256 in
  List.iter
    (fun d ->
      Buffer.add_string b (to_string d);
      Buffer.add_char b '\n')
    (sort ds);
  Buffer.add_string b (summary ds);
  Buffer.add_char b '\n';
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* JSON rendering                                                     *)
(* ------------------------------------------------------------------ *)

let json_escape (s : string) =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_field k v = Printf.sprintf "\"%s\": %s" k v
let json_string s = "\"" ^ json_escape s ^ "\""
let json_opt = function None -> "null" | Some s -> json_string s

let diag_to_json (d : t) =
  "{"
  ^ String.concat ", "
      [
        json_field "rule" (json_string d.rule);
        json_field "severity" (json_string (severity_name d.severity));
        json_field "function" (json_opt d.func);
        json_field "location" (json_opt d.location);
        json_field "message" (json_string d.message);
        json_field "hint" (json_opt d.hint);
      ]
  ^ "}"

(** Whole batch as one JSON object:
    [{"diagnostics": [...], "errors": n, "warnings": n, "notes": n}]. *)
let to_json (ds : t list) : string =
  let ds = sort ds in
  Printf.sprintf
    "{\"diagnostics\": [%s], \"errors\": %d, \"warnings\": %d, \"notes\": %d}"
    (String.concat ", " (List.map diag_to_json ds))
    (errors ds) (warnings ds) (count Note ds)

(* ------------------------------------------------------------------ *)
(* Interop with the fail-fast layer                                   *)
(* ------------------------------------------------------------------ *)

let of_err_severity = function Err.Error -> Error | Err.Warning -> Warning

(** Wrap an {!Err.t} (e.g. a caught {!Err.Compile_error}) as a
    diagnostic under the given rule ID. *)
let of_err ~rule (e : Err.t) : t =
  {
    rule;
    severity = of_err_severity e.Err.severity;
    func = None;
    location = None;
    message = Printf.sprintf "[%s] %s" e.Err.pass e.Err.message;
    hint = Option.map (fun c -> "in: " ^ c) e.Err.context;
  }

(** Raise {!Failed} when the batch contains errors; otherwise return it. *)
let check_errors (ds : t list) : t list =
  if errors ds > 0 then raise (Failed ds) else ds
