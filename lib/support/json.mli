(** Minimal two-way JSON codec shared by every layer that must {e read}
    JSON (the serve protocol) as well as write it.  Object fields keep
    insertion order; printing is deterministic; parsing never raises. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(** Deterministic single-line rendering ([", "]-separated, like the
    hand-rolled printers elsewhere in the tree). *)
val to_string : t -> string

(** Parse one JSON document; [Error] carries a byte offset and reason.
    Trailing non-whitespace is an error. *)
val parse : string -> (t, string) result

(** [member k v] is field [k] of object [v], if any. *)
val member : string -> t -> t option

val to_str : t -> string option
val to_int : t -> int option

(** Accepts both [Int] and [Float]. *)
val to_float : t -> float option

val to_bool : t -> bool option
val to_list : t -> t list option

(** [Option.bind (member k v)] over the matching accessor. *)
val str_member : string -> t -> string option

val int_member : string -> t -> int option
val float_member : string -> t -> float option
val bool_member : string -> t -> bool option
val list_member : string -> t -> t list option
