(** Adaptor pass 7 (analysis): the HLS compatibility checker.

    Enumerates every construct outside the HLS-readable LLVM subset —
    exactly the "gap of unsupported syntax between different versions"
    the paper's adaptor closes.  Runs standalone on raw MLIR-lowered IR
    (Table 1's "before" column) and as the adaptor's final gate
    ("after" must be zero). *)

open Llvmir
open Linstr

type issue_kind =
  | Opaque_pointer  (** any [ptr]-typed value *)
  | Memref_descriptor  (** descriptor-shaped aggregate *)
  | Modern_intrinsic of string
  | Freeze_inst
  | Modern_loop_metadata of string
  | Unsupported_aggregate_op  (** insert/extractvalue beyond descriptors *)

type issue = { kind : issue_kind; where : string; detail : string }

let kind_name = function
  | Opaque_pointer -> "opaque-pointer"
  | Memref_descriptor -> "memref-descriptor"
  | Modern_intrinsic _ -> "modern-intrinsic"
  | Freeze_inst -> "freeze"
  | Modern_loop_metadata _ -> "loop-metadata"
  | Unsupported_aggregate_op -> "aggregate-op"

(** How bad is each issue for the HLS middle-end?  Untranslated loop
    metadata merely loses directives (the IR still parses); everything
    else makes the input unreadable. *)
let issue_severity (k : issue_kind) : Support.Err.severity =
  match k with
  | Modern_loop_metadata _ -> Support.Err.Warning
  | Opaque_pointer | Memref_descriptor | Modern_intrinsic _ | Freeze_inst
  | Unsupported_aggregate_op ->
      Support.Err.Error

(** Stable lint rule ID for each issue kind (the [HLS10x] family). *)
let rule_id = function
  | Opaque_pointer -> "HLS101"
  | Memref_descriptor -> "HLS102"
  | Modern_intrinsic _ -> "HLS103"
  | Freeze_inst -> "HLS104"
  | Modern_loop_metadata _ -> "HLS105"
  | Unsupported_aggregate_op -> "HLS106"

let issue_to_string i =
  Printf.sprintf "%-7s %-18s %-24s %s"
    (Support.Err.severity_name (issue_severity i.kind))
    (kind_name i.kind) i.where i.detail

let issue_hint = function
  | Opaque_pointer -> "enable the typed-pointers adaptor pass"
  | Memref_descriptor -> "enable descriptor elimination"
  | Modern_intrinsic n -> "legalize intrinsic " ^ n
  | Freeze_inst -> "enable intrinsic legalization (freeze is folded away)"
  | Modern_loop_metadata k ->
      "enable metadata translation to turn " ^ k ^ " into _ssdm markers"
  | Unsupported_aggregate_op ->
      "only memref-descriptor aggregates can be eliminated"

(** One compat issue as an accumulating diagnostic. *)
let to_diagnostic (i : issue) : Support.Diag.t =
  let func =
    if String.length i.where > 0 && i.where.[0] = '@' then
      Some (String.sub i.where 1 (String.length i.where - 1))
    else None
  in
  {
    Support.Diag.rule = rule_id i.kind;
    severity = Support.Diag.of_err_severity (issue_severity i.kind);
    func;
    location = None;
    message = Printf.sprintf "%s: %s" (kind_name i.kind) i.detail;
    hint = Some (issue_hint i.kind);
  }

let to_diagnostics (issues : issue list) : Support.Diag.t list =
  List.map to_diagnostic issues

let rec has_opaque (t : Ltype.t) =
  match t with
  | Ltype.Ptr None -> true
  | Ltype.Ptr (Some t) -> has_opaque t
  | Ltype.Array (_, t) -> has_opaque t
  | Ltype.Struct fs -> List.exists has_opaque fs
  | _ -> false

let is_descriptor_ty (t : Ltype.t) =
  match t with
  | Ltype.Struct
      [ Ltype.Ptr _; Ltype.Ptr _; Ltype.I64;
        Ltype.Array (r1, Ltype.I64); Ltype.Array (r2, Ltype.I64) ] ->
      r1 = r2
  | _ -> false

let check_func (f : Lmodule.func) : issue list =
  let issues = ref [] in
  let add kind detail =
    issues := { kind; where = "@" ^ f.fname; detail } :: !issues
  in
  List.iter
    (fun (p : Lmodule.param) ->
      if has_opaque p.pty then
        add Opaque_pointer (Printf.sprintf "parameter %%%s : ptr" p.pname))
    f.params;
  Lmodule.iter_insts
    (fun (i : Linstr.t) ->
      if has_result i && has_opaque i.ty then
        add Opaque_pointer (Printf.sprintf "%%%s : ptr" (result_name i));
      if has_result i && is_descriptor_ty i.ty then
        add Memref_descriptor (Printf.sprintf "%%%s" (result_name i));
      (match i.op with
      | Freeze _ -> add Freeze_inst (Printf.sprintf "%%%s" (result_name i))
      | Call { callee; _ } when Hls_names.is_modern_intrinsic callee ->
          add (Modern_intrinsic callee) callee
      | ExtractValue (agg, _) | InsertValue (agg, _, _) ->
          if not (is_descriptor_ty (Lvalue.type_of agg)) then
            add Unsupported_aggregate_op
              (Printf.sprintf "%%%s" (result_name i))
      | _ -> ());
      List.iter
        (fun (k, _) ->
          if Hls_names.is_loop_md k then add (Modern_loop_metadata k) k)
        i.imeta)
    f;
  List.rev !issues

let check (m : Lmodule.t) : issue list =
  List.concat_map check_func m.funcs

let is_hls_ready m = check m = []

(** Histogram of issue kinds (for Table 1). *)
let summarize (issues : issue list) : (string * int) list =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun i ->
      let k = kind_name i.kind in
      Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
    issues;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort compare
