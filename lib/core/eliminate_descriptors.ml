(** Adaptor pass 2: memref-descriptor elimination and access
    delinearization — the "keep more expression details" step.

    MLIR's LLVM lowering turns every statically-shaped memref into a
    [{ ptr, ptr, i64, [r x i64], [r x i64] }] aggregate built by an
    [insertvalue] chain, and every access into a {e flat} GEP over a
    linearized index.  The Vitis-era middle-end cannot map that onto
    BRAMs (no array shape left to partition, descriptor structs are
    unsynthesizable).  This pass:

    1. finds descriptor chains whose shape/stride fields are literal
       constants, recording the underlying data pointer;
    2. replaces [extractvalue] uses of the descriptor by the data
       pointer / literal constants;
    3. rewrites flat GEPs over a known data pointer into
       multi-dimensional GEPs over the nested array type
       ([getelementptr [32 x [32 x float]], ptr %A, i64 0, i64 %i, i64 %j]),
       reconstructing the per-dimension indices from the linear
       expression's term structure;
    4. leaves the dead [insertvalue] chains to a DCE sweep.

    Accesses whose linear expression cannot be matched against the
    static strides fall back to a one-dimensional
    [[total x elem]] view — still typed, still synthesizable, but
    reported in {!stats} (and visible in Figure 3's partitioning
    experiment as a lost optimization opportunity). *)

open Llvmir
open Linstr
module Sym = Support.Interner

type desc_info = {
  data : Lvalue.t;  (** underlying data pointer (field 1) *)
  shape : int list;
  strides : int list;
  elem : Ltype.t option;  (** element type, discovered from accesses *)
}

type stats = {
  mutable descriptors : int;  (** descriptor chains eliminated *)
  mutable delinearized : int;  (** GEPs rebuilt with full rank *)
  mutable flat_fallback : int;  (** GEPs that kept a 1-D view *)
  mutable extracts : int;  (** extractvalue uses replaced *)
}

let fresh_stats () =
  { descriptors = 0; delinearized = 0; flat_fallback = 0; extracts = 0 }

(** Is [ty] shaped like a rank-[r] memref descriptor? *)
let descriptor_rank (ty : Ltype.t) : int option =
  match ty with
  | Ltype.Struct
      [ Ltype.Ptr _; Ltype.Ptr _; Ltype.I64;
        Ltype.Array (r1, Ltype.I64); Ltype.Array (r2, Ltype.I64) ]
    when r1 = r2 ->
      Some r1
  | _ -> None

(** Follow an insertvalue chain upward, recording field values. *)
let trace_chain (idx : Findex.t) (root : Sym.t) :
    (int list * Lvalue.t) list option =
  let rec go name acc fuel =
    if fuel = 0 then None
    else
      match Findex.def_instr idx name with
      | Some { op = InsertValue (agg, v, path); _ } -> (
          let acc = if List.mem_assoc path acc then acc else (path, v) :: acc in
          match agg with
          | Lvalue.Reg (n, _) -> go n acc (fuel - 1)
          | Lvalue.Const (Lvalue.CUndef _) | Lvalue.Const (Lvalue.CZero _) ->
              Some acc
          | _ -> None)
      | _ -> None
  in
  go root [] 64

(** Extract a static descriptor description from a traced chain. *)
let info_of_chain rank (fields : (int list * Lvalue.t) list) : desc_info option
    =
  let find path = List.assoc_opt path fields in
  let const path =
    match find path with
    | Some (Lvalue.Const (Lvalue.CInt (v, _))) -> Some v
    | _ -> None
  in
  let data = match find [ 1 ] with Some v -> Some v | None -> find [ 0 ] in
  let shape = List.map (fun i -> const [ 3; i ]) (List.init rank Fun.id) in
  let strides = List.map (fun i -> const [ 4; i ]) (List.init rank Fun.id) in
  let all_some l =
    if List.for_all Option.is_some l then Some (List.map Option.get l)
    else None
  in
  match (data, all_some shape, all_some strides) with
  | Some data, Some shape, Some strides ->
      Some { data; shape; strides; elem = None }
  | _ -> None

(** Decompose a linear-index value into [(value option, coefficient)]
    terms; [None] value = literal constant term. *)
let rec collect_terms (idx : Findex.t) (v : Lvalue.t)
    ~fuel : (Lvalue.t option * int) list option =
  if fuel = 0 then None
  else
    match v with
    | Lvalue.Const (Lvalue.CInt (c, _)) -> Some [ (None, c) ]
    | Lvalue.Reg (n, _) -> (
        match Findex.def_instr idx n with
        | Some { op = IBin (Add, a, b); _ } -> (
            match
              ( collect_terms idx a ~fuel:(fuel - 1),
                collect_terms idx b ~fuel:(fuel - 1) )
            with
            | Some ta, Some tb -> Some (ta @ tb)
            | _ -> None)
        | Some { op = IBin (Mul, x, Lvalue.Const (Lvalue.CInt (c, _))); _ } ->
            Some [ (Some x, c) ]
        | Some { op = IBin (Mul, Lvalue.Const (Lvalue.CInt (c, _)), x); _ } ->
            Some [ (Some x, c) ]
        | Some { op = IBin (Shl, x, Lvalue.Const (Lvalue.CInt (c, _))); _ } ->
            Some [ (Some x, 1 lsl c) ]
        | _ -> Some [ (Some v, 1) ])
    | _ -> Some [ (Some v, 1) ]

(** Match terms against row-major strides.  Returns per-dimension index
    {e specs}: either an existing value, a constant, or a sum that the
    caller must materialize. *)
type index_spec =
  | Ival of Lvalue.t
  | Iconst of int
  | Isum of Lvalue.t list  (* plus an implicit constant *)
  | IsumC of Lvalue.t list * int

let match_strides (terms : (Lvalue.t option * int) list) (strides : int list) :
    index_spec list option =
  (* Greedy: for each stride (descending), collect terms whose
     coefficient is an exact multiple of it but not of any larger
     stride; with row-major static shapes the coefficients of index
     [k] equal [strides.(k)] exactly, so exact matching suffices. *)
  let remaining = ref terms in
  let take pred =
    let yes, no = List.partition pred !remaining in
    remaining := no;
    yes
  in
  let specs =
    List.map
      (fun stride ->
        let matched = take (fun (_, c) -> c = stride) in
        let vals = List.filter_map fst matched in
        let consts =
          List.fold_left
            (fun acc (v, _) -> if v = None then acc + 1 else acc)
            0 matched
        in
        (* each matched constant term contributes stride*1, i.e. index 1 *)
        match (vals, consts) with
        | [ v ], 0 -> Ival v
        | [], c -> Iconst c
        | vs, 0 -> Isum vs
        | vs, c -> IsumC (vs, c))
      strides
  in
  if !remaining = [] then Some specs else None

(** [delinearize = false] keeps every access on a flat 1-D view (the
    ablation of the paper's "keep more expression details" step). *)
let run_func ?(stats = fresh_stats ()) ?(delinearize = true) ?am
    (f : Lmodule.func) : Lmodule.func =
  (* Cheap pre-scan: descriptors only ever enter a function through an
     [insertvalue] of descriptor-shaped aggregate type.  Without one,
     discovery finds nothing and every rewrite below is the identity,
     so skip the index build, the rewrite walk and the cleanup DCE. *)
  let has_descriptor =
    List.exists
      (fun (b : Lmodule.block) ->
        List.exists
          (fun (i : Linstr.t) ->
            (match i.op with InsertValue _ -> true | _ -> false)
            && (not (Sym.is_empty i.result))
            && descriptor_rank i.ty <> None)
          b.insts)
      f.blocks
  in
  if not has_descriptor then f
  else
  let fidx = Analysis.findex ?am f in
  let names = Lmodule.namegen f in
  (* 1. discover descriptors *)
  let desc_tbl : desc_info Sym.Tbl.t = Sym.Tbl.create 8 in
  Lmodule.iter_insts
    (fun i ->
      if not (Sym.is_empty i.result) then
        match descriptor_rank i.ty with
        | Some rank when (match i.op with InsertValue _ -> true | _ -> false)
          -> (
            match trace_chain fidx i.result with
            | Some fields -> (
                match info_of_chain rank fields with
                | Some info -> Sym.Tbl.replace desc_tbl i.result info
                | None -> ())
            | None -> ())
        | _ -> ())
    f;
  (* data-pointer -> descriptor info (for GEP rewriting) *)
  let by_data : desc_info Sym.Tbl.t = Sym.Tbl.create 8 in
  Sym.Tbl.iter
    (fun _ info ->
      match info.data with
      | Lvalue.Reg (n, _) -> Sym.Tbl.replace by_data n info
      | _ -> ())
    desc_tbl;
  stats.descriptors <- stats.descriptors + Sym.Tbl.length by_data;
  if Sym.Tbl.length desc_tbl = 0 then f
  else begin
  (* 2+3. rewrite extractvalues and geps *)
  let subst : Lvalue.t Sym.Tbl.t = Sym.Tbl.create 16 in
  let resolve v =
    match v with
    | Lvalue.Reg (n, _) -> (
        match Sym.Tbl.find_opt subst n with Some v' -> v' | None -> v)
    | _ -> v
  in
  let nested_array_ty elem shape =
    List.fold_right (fun d acc -> Ltype.Array (d, acc)) shape elem
  in
  let rw (i : Linstr.t) : Linstr.t list =
    let i = Linstr.map_operands resolve i in
    match i.op with
    | ExtractValue (Lvalue.Reg (agg, _), path)
      when Sym.Tbl.mem desc_tbl agg -> (
        let info = Sym.Tbl.find desc_tbl agg in
        stats.extracts <- stats.extracts + 1;
        match path with
        | [ 0 ] | [ 1 ] ->
            Sym.Tbl.replace subst i.result info.data;
            []
        | [ 2 ] ->
            Sym.Tbl.replace subst i.result (Lvalue.ci64 0);
            []
        | [ 3; k ] ->
            Sym.Tbl.replace subst i.result (Lvalue.ci64 (List.nth info.shape k));
            []
        | [ 4; k ] ->
            Sym.Tbl.replace subst i.result
              (Lvalue.ci64 (List.nth info.strides k));
            []
        | _ -> [ i ])
    | Gep { base = Lvalue.Reg (bn, bty); idxs = [ lin ]; src_ty; inbounds }
      when Sym.Tbl.mem by_data bn
           && not (Ltype.is_aggregate src_ty) -> (
        let info = Sym.Tbl.find by_data bn in
        let elem = src_ty in
        let arr_ty = nested_array_ty elem info.shape in
        let base = Lvalue.Reg (bn, bty) in
        let emit_gep specs =
          (* materialize Isum/IsumC specs as add instructions *)
          let extra = ref [] in
          let idx_of = function
            | Ival v -> v
            | Iconst c -> Lvalue.ci64 c
            | Isum [] -> Lvalue.ci64 0
            | Isum (v0 :: vs) ->
                List.fold_left
                  (fun acc v ->
                    let r = Support.Namegen.fresh names "idx" in
                    extra :=
                      Linstr.make ~result:r ~ty:Ltype.I64
                        (IBin (Add, acc, v))
                      :: !extra;
                    Lvalue.reg r Ltype.I64)
                  v0 vs
            | IsumC (vs, c) ->
                let base_v =
                  match vs with
                  | [] -> Lvalue.ci64 c
                  | v0 :: rest ->
                      List.fold_left
                        (fun acc v ->
                          let r = Support.Namegen.fresh names "idx" in
                          extra :=
                            Linstr.make ~result:r ~ty:Ltype.I64
                              (IBin (Add, acc, v))
                            :: !extra;
                          Lvalue.reg r Ltype.I64)
                        v0 rest
                in
                if c = 0 || vs = [] then base_v
                else begin
                  let r = Support.Namegen.fresh names "idx" in
                  extra :=
                    Linstr.make ~result:r ~ty:Ltype.I64
                      (IBin (Add, base_v, Lvalue.ci64 c))
                    :: !extra;
                  Lvalue.reg r Ltype.I64
                end
          in
          let idxs = Lvalue.ci64 0 :: List.map idx_of specs in
          List.rev !extra
          @ [
              {
                i with
                op = Gep { inbounds; src_ty = arr_ty; base; idxs };
              };
            ]
        in
        match (if delinearize then collect_terms fidx lin ~fuel:64 else None) with
        | Some terms -> (
            match match_strides terms info.strides with
            | Some specs ->
                stats.delinearized <- stats.delinearized + 1;
                emit_gep specs
            | None ->
                stats.flat_fallback <- stats.flat_fallback + 1;
                let total = List.fold_left ( * ) 1 info.shape in
                [
                  {
                    i with
                    op =
                      Gep
                        {
                          inbounds;
                          src_ty = Ltype.Array (total, elem);
                          base;
                          idxs = [ Lvalue.ci64 0; lin ];
                        };
                  };
                ])
        | None ->
            stats.flat_fallback <- stats.flat_fallback + 1;
            let total = List.fold_left ( * ) 1 info.shape in
            [
              {
                i with
                op =
                  Gep
                    {
                      inbounds;
                      src_ty = Ltype.Array (total, elem);
                      base;
                      idxs = [ Lvalue.ci64 0; lin ];
                    };
              };
            ])
    | _ -> [ i ]
  in
  let f' = Lmodule.rewrite_insts rw f in
  let f' = Findex.substitute_func subst f' in
  (* the insertvalue chains are now dead; [?am] lets the cleanup DCE
     cache (and seed) the index it builds for the verifier *)
  fst (Opt_dce.run_func ?am f')
  end

let run ?stats ?delinearize ?am (m : Lmodule.t) : Lmodule.t =
  Lmodule.map_funcs (run_func ?stats ?delinearize ?am) m
