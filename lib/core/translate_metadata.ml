(** Adaptor pass 5: translate modern [!llvm.loop] metadata into the
    Vitis-style [_ssdm_op_Spec*] marker calls the HLS middle-end
    expects.

    For every loop whose latch branch carries [llvm.loop.*] keys, the
    pass inserts marker calls after the phis of the loop header:
    - [llvm.loop.pipeline.ii = n]   → [call void @_ssdm_op_SpecPipeline(i32 n)]
    - [llvm.loop.unroll.count = n]  → [call void @_ssdm_op_SpecUnroll(i32 n)]
    - [llvm.loop.unroll.full]       → [call void @_ssdm_op_SpecUnroll(i32 0)]
      (factor 0 = full, Vitis convention)
    - [llvm.loop.tripcount = n]     → [call void @_ssdm_op_SpecLoopTripCount(i64 n)]
    and strips the metadata. *)

open Llvmir
open Linstr
module Sym = Support.Interner

type stats = { mutable loops : int; mutable markers : int }

let fresh_stats () = { loops = 0; markers = 0 }

let run_func ?(stats = fresh_stats ()) (f : Lmodule.func) :
    Lmodule.func * Lmodule.decl list =
  (* collect per-header marker lists from latch-branch metadata *)
  let markers : Linstr.t list Sym.Tbl.t = Sym.Tbl.create 8 in
  let decls = ref [] in
  let need name dargs =
    if not (List.exists (fun (d : Lmodule.decl) -> d.dname = name) !decls) then
      decls := { Lmodule.dname = name; dret = Ltype.Void; dargs } :: !decls
  in
  let strip (i : Linstr.t) : Linstr.t =
    let loop_md, other =
      List.partition (fun (k, _) -> Hls_names.is_loop_md k) i.imeta
    in
    if loop_md = [] then i
    else begin
      let header =
        match i.op with
        | Br l -> Some l
        | CondBr (_, t, _) -> Some t
        | _ -> None
      in
      (match header with
      | Some h ->
          stats.loops <- stats.loops + 1;
          let calls =
            List.filter_map
              (fun (k, v) ->
                let mint = function Linstr.MInt n -> n | MStr _ -> 0 in
                if k = Hls_names.md_pipeline_ii then begin
                  need Hls_names.spec_pipeline [ Ltype.I32 ];
                  Some
                    (Linstr.make
                       (Call
                          {
                            callee = Hls_names.spec_pipeline;
                            ret = Ltype.Void;
                            args = [ Lvalue.ci32 (mint v) ];
                          }))
                end
                else if k = Hls_names.md_pipeline_enable then None
                  (* II carries the request; enable alone = II 1 handled below *)
                else if k = Hls_names.md_unroll_count then begin
                  need Hls_names.spec_unroll [ Ltype.I32 ];
                  Some
                    (Linstr.make
                       (Call
                          {
                            callee = Hls_names.spec_unroll;
                            ret = Ltype.Void;
                            args = [ Lvalue.ci32 (mint v) ];
                          }))
                end
                else if k = Hls_names.md_unroll_full then begin
                  need Hls_names.spec_unroll [ Ltype.I32 ];
                  Some
                    (Linstr.make
                       (Call
                          {
                            callee = Hls_names.spec_unroll;
                            ret = Ltype.Void;
                            args = [ Lvalue.ci32 0 ];
                          }))
                end
                else if k = Hls_names.md_tripcount then begin
                  need Hls_names.spec_trip_count [ Ltype.I64 ];
                  Some
                    (Linstr.make
                       (Call
                          {
                            callee = Hls_names.spec_trip_count;
                            ret = Ltype.Void;
                            args = [ Lvalue.ci64 (mint v) ];
                          }))
                end
                else None)
              loop_md
          in
          (* pipeline.enable without an ii key = request II 1 *)
          let calls =
            if
              List.mem_assoc Hls_names.md_pipeline_enable loop_md
              && not (List.mem_assoc Hls_names.md_pipeline_ii loop_md)
            then begin
              need Hls_names.spec_pipeline [ Ltype.I32 ];
              Linstr.make
                (Call
                   {
                     callee = Hls_names.spec_pipeline;
                     ret = Ltype.Void;
                     args = [ Lvalue.ci32 1 ];
                   })
              :: calls
            end
            else calls
          in
          stats.markers <- stats.markers + List.length calls;
          let prev = Option.value ~default:[] (Sym.Tbl.find_opt markers h) in
          Sym.Tbl.replace markers h (prev @ calls)
      | None -> ());
      { i with imeta = other }
    end
  in
  let blocks =
    List.map
      (fun (b : Lmodule.block) ->
        { b with insts = List.map strip b.insts })
      f.blocks
  in
  (* insert markers after the phis of each header *)
  let blocks =
    List.map
      (fun (b : Lmodule.block) ->
        match Sym.Tbl.find_opt markers b.label with
        | None -> b
        | Some calls ->
            let phis, rest =
              let rec split acc = function
                | ({ op = Phi _; _ } as i) :: tl -> split (i :: acc) tl
                | tl -> (List.rev acc, tl)
              in
              split [] b.insts
            in
            { b with insts = phis @ calls @ rest })
      blocks
  in
  ({ f with blocks }, !decls)

let run ?stats (m : Lmodule.t) : Lmodule.t =
  let decls = ref m.decls in
  let funcs =
    List.map
      (fun f ->
        let f', ds = run_func ?stats f in
        List.iter
          (fun (d : Lmodule.decl) ->
            if
              not
                (List.exists
                   (fun (x : Lmodule.decl) -> x.dname = d.dname)
                   !decls)
            then decls := d :: !decls)
          ds;
        f')
      m.funcs
  in
  { m with funcs; decls = !decls }
