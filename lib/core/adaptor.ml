(** The MLIR HLS adaptor for LLVM IR — pipeline driver.

    Takes LLVM IR as produced by the modern MLIR lowering and emits
    HLS-readable IR: no opaque pointers, no memref descriptors, no
    modern intrinsics, directives carried by [_ssdm_op_Spec*] markers,
    interfaces annotated on the top function.  {!Compat.check} must
    return no issues on the output (asserted when the pipeline is
    strict). *)

(* Re-export the pass modules: this file is the library's root module,
   so siblings are only reachable through these aliases. *)
module Hls_names = Hls_names
module Legalize_intrinsics = Legalize_intrinsics
module Eliminate_descriptors = Eliminate_descriptors
module Typed_pointers = Typed_pointers
module Canonicalize_geps = Canonicalize_geps
module Translate_metadata = Translate_metadata
module Interfaces = Interfaces
module Compat = Compat

type report = {
  intrinsics : Legalize_intrinsics.stats;
  descriptors : Eliminate_descriptors.stats;
  pointers : Typed_pointers.stats;
  geps : Canonicalize_geps.stats;
  metadata : Translate_metadata.stats;
  interfaces : Interfaces.stats;
  issues_before : Compat.issue list;
  issues_after : Compat.issue list;
  diagnostics : Support.Diag.t list;
      (** [issues_after] as accumulated diagnostics (HLS10x rules) *)
  pass_seconds : (string * float) list;
}

let fresh_report () =
  {
    intrinsics = Legalize_intrinsics.fresh_stats ();
    descriptors = Eliminate_descriptors.fresh_stats ();
    pointers = Typed_pointers.fresh_stats ();
    geps = Canonicalize_geps.fresh_stats ();
    metadata = Translate_metadata.fresh_stats ();
    interfaces = Interfaces.fresh_stats ();
    issues_before = [];
    issues_after = [];
    diagnostics = [];
    pass_seconds = [];
  }

(** The adaptor's pass pipeline as a first-class, ordered, named value
    — replaces the old record of nine booleans.  A pipeline is an
    ordered list of named passes (each individually toggleable) plus
    the two driver options ([top], [strict]).  Pipelines can be
    described canonically ({!describe}), which the batch driver uses as
    part of its cache key, and built from user-supplied pass names
    ({!of_names}, {!set_enabled}) with unknown names reported as
    values, not exceptions. *)
module Pipeline = struct
  type pass = {
    pname : string;  (** stable pass name, e.g. ["typed-pointers"] *)
    enabled : bool;
    prun :
      report ->
      am:Llvmir.Analysis.t ->
      top:string option ->
      Llvmir.Lmodule.t ->
      Llvmir.Lmodule.t;
        (** the rewrite; updates the matching [report] stats in place.
            [am] is the analysis manager shared across the pipeline —
            a pass that indexes its {e input} queries it so the
            verifier's post-pass index is reused. *)
  }

  type t = {
    passes : pass list;  (** executed in list order *)
    top : string option;  (** top function for interface lowering *)
    strict : bool;  (** error if the output is not HLS-ready *)
  }

  let legalize_intrinsics =
    {
      pname = "legalize-intrinsics";
      enabled = true;
      prun =
        (fun r ~am ~top:_ m ->
          Legalize_intrinsics.run ~stats:r.intrinsics ~am m);
    }

  let eliminate_descriptors =
    {
      pname = "eliminate-descriptors";
      enabled = true;
      prun =
        (fun r ~am ~top:_ m ->
          Eliminate_descriptors.run ~stats:r.descriptors ~delinearize:true ~am
            m);
    }

  (** Variant of {!eliminate_descriptors} that keeps accesses on flat
      1-D views (no delinearization) — a distinct pass name so traces
      and cache keys distinguish it. *)
  let eliminate_descriptors_flat =
    {
      pname = "eliminate-descriptors-flat";
      enabled = true;
      prun =
        (fun r ~am ~top:_ m ->
          Eliminate_descriptors.run ~stats:r.descriptors ~delinearize:false ~am
            m);
    }

  let typed_pointers =
    {
      pname = "typed-pointers";
      enabled = true;
      prun = (fun r ~am:_ ~top:_ m -> Typed_pointers.run ~stats:r.pointers m);
    }

  let canonicalize_geps =
    {
      pname = "canonicalize-geps";
      enabled = true;
      prun = (fun r ~am ~top:_ m -> Canonicalize_geps.run ~stats:r.geps ~am m);
    }

  let translate_metadata =
    {
      pname = "translate-metadata";
      enabled = true;
      prun =
        (fun r ~am:_ ~top:_ m -> Translate_metadata.run ~stats:r.metadata m);
    }

  let lower_interfaces =
    {
      pname = "lower-interfaces";
      enabled = true;
      prun = (fun r ~am:_ ~top m -> Interfaces.run ~stats:r.interfaces ?top m);
    }

  (** Every constructible pass, in canonical order. *)
  let registry =
    [
      legalize_intrinsics;
      eliminate_descriptors;
      eliminate_descriptors_flat;
      typed_pointers;
      canonicalize_geps;
      translate_metadata;
      lower_interfaces;
    ]

  let known_names = List.map (fun p -> p.pname) registry
  let find_pass name = List.find_opt (fun p -> p.pname = name) registry

  (** The paper's full adaptor pipeline. *)
  let default =
    {
      passes =
        [
          legalize_intrinsics;
          eliminate_descriptors;
          typed_pointers;
          canonicalize_geps;
          translate_metadata;
          lower_interfaces;
        ];
      top = None;
      strict = true;
    }

  (** Ablation 1: skip descriptor elimination entirely.  The output
      still contains descriptor aggregates and opaque pointers, so the
      HLS middle-end {e rejects} it — the raw "syntax gap". *)
  let no_descriptor_elimination =
    {
      default with
      passes =
        List.map
          (fun p ->
            if p.pname = "eliminate-descriptors" then { p with enabled = false }
            else p)
          default.passes;
      strict = false;
    }

  (** Ablation 2: eliminate descriptors but keep accesses on flat 1-D
      views (no delinearization).  The output is accepted but the array
      shape is gone, so array-partition directives cannot take effect —
      the cost of losing "expression details". *)
  let flat_views =
    {
      default with
      passes =
        List.map
          (fun p ->
            if p.pname = "eliminate-descriptors" then eliminate_descriptors_flat
            else p)
          default.passes;
    }

  let with_top top t = { t with top }
  let relaxed t = { t with strict = false }

  (** Enabled pass names, in execution order. *)
  let enabled_names t =
    List.filter_map (fun p -> if p.enabled then Some p.pname else None) t.passes

  (** Canonical description of the whole pipeline — stable across runs,
      used for cache keying and trace metadata.  Disabled passes are
      kept (as [name:off]) because order matters. *)
  let describe (t : t) : string =
    Printf.sprintf "passes=%s;top=%s;strict=%b"
      (String.concat ","
         (List.map
            (fun p -> p.pname ^ (if p.enabled then ":on" else ":off"))
            t.passes))
      (Option.value ~default:"-" t.top)
      t.strict

  let unknown_pass_diag name =
    Support.Diag.error ~rule:"HLS900"
      ~hint:("known passes: " ^ String.concat ", " known_names)
      "unknown adaptor pass '%s'" name

  (** Toggle one named pass.  Unknown names are reported as an
      HLS-style diagnostic value, never an exception. *)
  let set_enabled (name : string) (enabled : bool) (t : t) :
      (t, Support.Diag.t) result =
    if not (List.exists (fun p -> p.pname = name) t.passes) then
      Error (unknown_pass_diag name)
    else
      Ok
        {
          t with
          passes =
            List.map
              (fun p -> if p.pname = name then { p with enabled } else p)
              t.passes;
        }

  let disable name t = set_enabled name false t

  (** Build a pipeline running exactly [names], in the given order. *)
  let of_names ?top ?(strict = true) (names : string list) :
      (t, Support.Diag.t) result =
    let rec build acc = function
      | [] -> Ok { passes = List.rev acc; top; strict }
      | n :: rest -> (
          match find_pass n with
          | Some p -> build (p :: acc) rest
          | None -> Error (unknown_pass_diag n))
    in
    build [] names
end

(* ------------------------------------------------------------------ *)
(* Driver                                                             *)
(* ------------------------------------------------------------------ *)

(** Run the adaptor pipeline.  Returns [Ok (module, report)], or — in
    strict mode, when error-severity compatibility issues remain —
    [Error diagnostics] with the {e complete} accumulated list.  No
    exception escapes; converting diagnostics to {!Support.Diag.Failed}
    is the CLI boundary's job (or use {!run_exn}).

    [?trace] receives one {!Support.Tracing.event} per executed pass
    (stage ["adaptor"]). *)
let run ?(pipeline = Pipeline.default) ?(trace = Support.Tracing.null)
    (m : Llvmir.Lmodule.t) :
    (Llvmir.Lmodule.t * report, Support.Diag.t list) result =
  let r = fresh_report () in
  let am = Llvmir.Analysis.create ~trace () in
  let issues_before = Compat.check m in
  let timings = ref [] in
  (* instruction counts exist only for trace events; skip the module
     walks entirely under the null hook *)
  let traced = trace != Support.Tracing.null in
  let step m (p : Pipeline.pass) =
    if not p.Pipeline.enabled then m
    else begin
      let before = if traced then Llvmir.Lmodule.instr_count m else 0 in
      let t0 = Sys.time () in
      let m' = p.Pipeline.prun r ~am ~top:pipeline.Pipeline.top m in
      (* adaptor passes rebuild every function; restoring physical
         identity on the unchanged ones lets the shared manager keep
         their analyses and the verifier skip them *)
      let m' = Llvmir.Lmodule.share_unchanged ~prev:m m' in
      (* Every adaptor pass rewrites instructions inside a fixed block
         skeleton — labels, order and terminator targets survive — so
         CFG-shaped analyses rebase across each step exactly as in the
         LLVM pass pipeline.  [keep] also installs the index a pass's
         cleanup DCE seeded for its output, so the verifier below
         reads the flat storage the pass wrote. *)
      Llvmir.Analysis.keep am
        ~preserves:
          [ Llvmir.Analysis.Cfg; Llvmir.Analysis.Dominance;
            Llvmir.Analysis.Loop_info ]
        m';
      let seconds = Sys.time () -. t0 in
      timings := (p.Pipeline.pname, seconds) :: !timings;
      if traced then
        trace
          (Support.Tracing.event ~stage:"adaptor" ~pass:p.Pipeline.pname
             ~seconds ~before ~after:(Llvmir.Lmodule.instr_count m'));
      m'
    end
  in
  let m = List.fold_left step m pipeline.Pipeline.passes in
  (* One verification of the final module, not one per pass: the
     verifier checks properties of the output, so this rejects exactly
     what per-pass verification would; the incremental verifier only
     re-checks functions that changed since their last accepted value,
     so pristine functions cost nothing here. *)
  Llvmir.Lverifier.verify_module ~am m;
  let issues_after = Compat.check m in
  let diagnostics = Compat.to_diagnostics issues_after in
  let report =
    {
      r with
      issues_before;
      issues_after;
      diagnostics;
      pass_seconds = List.rev !timings;
    }
  in
  (* Strict mode gates on {e error}-severity issues only (warnings such
     as untranslated loop metadata lose directives but still compile),
     and reports the complete accumulated list — not just the first. *)
  let blocking =
    List.filter
      (fun (i : Compat.issue) ->
        Compat.issue_severity i.Compat.kind = Support.Err.Error)
      issues_after
  in
  if pipeline.Pipeline.strict && blocking <> [] then Error diagnostics
  else Ok (m, report)

(** Exception-raising convenience for process boundaries: raises
    {!Support.Diag.Failed} where {!run} returns [Error]. *)
let run_exn ?pipeline ?trace (m : Llvmir.Lmodule.t) :
    Llvmir.Lmodule.t * report =
  match run ?pipeline ?trace m with
  | Ok x -> x
  | Error ds -> raise (Support.Diag.Failed ds)

let report_to_string (r : report) =
  let b = Buffer.create 256 in
  Buffer.add_string b "=== MLIR HLS Adaptor report ===\n";
  let count sev issues =
    List.length
      (List.filter
         (fun (i : Compat.issue) -> Compat.issue_severity i.Compat.kind = sev)
         issues)
  in
  Buffer.add_string b
    (Printf.sprintf
       "compat issues: %d before -> %d after (%d errors, %d warnings)\n"
       (List.length r.issues_before)
       (List.length r.issues_after)
       (count Support.Err.Error r.issues_after)
       (count Support.Err.Warning r.issues_after));
  List.iter
    (fun (k, n) -> Buffer.add_string b (Printf.sprintf "  before %-18s %d\n" k n))
    (Compat.summarize r.issues_before);
  List.iter
    (fun i ->
      Buffer.add_string b ("  after  " ^ Compat.issue_to_string i ^ "\n"))
    r.issues_after;
  Buffer.add_string b
    (Printf.sprintf
       "intrinsics: %d min/max, %d fmuladd split, %d dropped, %d freezes\n"
       r.intrinsics.Legalize_intrinsics.minmax
       r.intrinsics.Legalize_intrinsics.fmuladd
       r.intrinsics.Legalize_intrinsics.dropped
       r.intrinsics.Legalize_intrinsics.freezes);
  Buffer.add_string b
    (Printf.sprintf
       "descriptors: %d eliminated, %d GEPs delinearized, %d flat fallbacks\n"
       r.descriptors.Eliminate_descriptors.descriptors
       r.descriptors.Eliminate_descriptors.delinearized
       r.descriptors.Eliminate_descriptors.flat_fallback);
  Buffer.add_string b
    (Printf.sprintf "pointers: %d typed, %d bitcasts, %d defaulted\n"
       r.pointers.Typed_pointers.typed r.pointers.Typed_pointers.bitcasts
       r.pointers.Typed_pointers.defaulted);
  Buffer.add_string b
    (Printf.sprintf "geps: %d merged, %d indices widened\n"
       r.geps.Canonicalize_geps.merged r.geps.Canonicalize_geps.widened);
  Buffer.add_string b
    (Printf.sprintf "metadata: %d loops, %d markers emitted\n"
       r.metadata.Translate_metadata.loops r.metadata.Translate_metadata.markers);
  Buffer.add_string b
    (Printf.sprintf "interfaces: %d annotated, %d partitions\n"
       r.interfaces.Interfaces.interfaces r.interfaces.Interfaces.partitions);
  List.iter
    (fun (n, s) ->
      Buffer.add_string b (Printf.sprintf "  pass %-24s %.4fs\n" n s))
    r.pass_seconds;
  Buffer.contents b
