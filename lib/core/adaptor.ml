(** The MLIR HLS adaptor for LLVM IR — pipeline driver.

    Takes LLVM IR as produced by the modern MLIR lowering and emits
    HLS-readable IR: no opaque pointers, no memref descriptors, no
    modern intrinsics, directives carried by [_ssdm_op_Spec*] markers,
    interfaces annotated on the top function.  {!Compat.check} must
    return no issues on the output (asserted when [config.strict]). *)

(* Re-export the pass modules: this file is the library's root module,
   so siblings are only reachable through these aliases. *)
module Hls_names = Hls_names
module Legalize_intrinsics = Legalize_intrinsics
module Eliminate_descriptors = Eliminate_descriptors
module Typed_pointers = Typed_pointers
module Canonicalize_geps = Canonicalize_geps
module Translate_metadata = Translate_metadata
module Interfaces = Interfaces
module Compat = Compat

type config = {
  legalize_intrinsics : bool;
  eliminate_descriptors : bool;
  delinearize : bool;  (** rebuild multi-dimensional GEPs (paper's key step) *)
  typed_pointers : bool;
  canonicalize_geps : bool;
  translate_metadata : bool;
  lower_interfaces : bool;
  top : string option;  (** top function for interface lowering *)
  strict : bool;  (** fail if the output is not HLS-ready *)
}

let default_config =
  {
    legalize_intrinsics = true;
    eliminate_descriptors = true;
    delinearize = true;
    typed_pointers = true;
    canonicalize_geps = true;
    translate_metadata = true;
    lower_interfaces = true;
    top = None;
    strict = true;
  }

(** Ablation 1: skip descriptor elimination entirely.  The output still
    contains descriptor aggregates and opaque pointers, so the HLS
    middle-end {e rejects} it — the raw "syntax gap". *)
let no_descriptor_elimination =
  { default_config with eliminate_descriptors = false; strict = false }

(** Ablation 2: eliminate descriptors but keep accesses on flat 1-D
    views (no delinearization).  The output is accepted but the array
    shape is gone, so array-partition directives cannot take effect —
    the cost of losing "expression details". *)
let flat_views = { default_config with delinearize = false }

type report = {
  intrinsics : Legalize_intrinsics.stats;
  descriptors : Eliminate_descriptors.stats;
  pointers : Typed_pointers.stats;
  geps : Canonicalize_geps.stats;
  metadata : Translate_metadata.stats;
  interfaces : Interfaces.stats;
  issues_before : Compat.issue list;
  issues_after : Compat.issue list;
  diagnostics : Support.Diag.t list;
      (** [issues_after] as accumulated diagnostics (HLS10x rules) *)
  pass_seconds : (string * float) list;
}

let fresh_report () =
  {
    intrinsics = Legalize_intrinsics.fresh_stats ();
    descriptors = Eliminate_descriptors.fresh_stats ();
    pointers = Typed_pointers.fresh_stats ();
    geps = Canonicalize_geps.fresh_stats ();
    metadata = Translate_metadata.fresh_stats ();
    interfaces = Interfaces.fresh_stats ();
    issues_before = [];
    issues_after = [];
    diagnostics = [];
    pass_seconds = [];
  }

(** Run the adaptor.  Returns the legalized module and a report. *)
let run ?(config = default_config) (m : Llvmir.Lmodule.t) :
    Llvmir.Lmodule.t * report =
  let r = fresh_report () in
  let issues_before = Compat.check m in
  let timings = ref [] in
  let step name enabled f m =
    if not enabled then m
    else begin
      let t0 = Sys.time () in
      let m' = f m in
      timings := (name, Sys.time () -. t0) :: !timings;
      Llvmir.Lverifier.verify_module m';
      m'
    end
  in
  let m =
    m
    |> step "legalize-intrinsics" config.legalize_intrinsics
         (Legalize_intrinsics.run ~stats:r.intrinsics)
    |> step "eliminate-descriptors" config.eliminate_descriptors
         (Eliminate_descriptors.run ~stats:r.descriptors
            ~delinearize:config.delinearize)
    |> step "typed-pointers" config.typed_pointers
         (Typed_pointers.run ~stats:r.pointers)
    |> step "canonicalize-geps" config.canonicalize_geps
         (Canonicalize_geps.run ~stats:r.geps)
    |> step "translate-metadata" config.translate_metadata
         (Translate_metadata.run ~stats:r.metadata)
    |> step "lower-interfaces" config.lower_interfaces
         (Interfaces.run ~stats:r.interfaces ?top:config.top)
  in
  let issues_after = Compat.check m in
  let diagnostics = Compat.to_diagnostics issues_after in
  (* Strict mode gates on {e error}-severity issues only (warnings such
     as untranslated loop metadata lose directives but still compile),
     and reports the complete accumulated list — not just the first. *)
  let blocking =
    List.filter
      (fun (i : Compat.issue) ->
        Compat.issue_severity i.Compat.kind = Support.Err.Error)
      issues_after
  in
  if config.strict && blocking <> [] then
    raise (Support.Diag.Failed diagnostics);
  ( m,
    {
      r with
      issues_before;
      issues_after;
      diagnostics;
      pass_seconds = List.rev !timings;
    } )

let report_to_string (r : report) =
  let b = Buffer.create 256 in
  Buffer.add_string b "=== MLIR HLS Adaptor report ===\n";
  let count sev issues =
    List.length
      (List.filter
         (fun (i : Compat.issue) -> Compat.issue_severity i.Compat.kind = sev)
         issues)
  in
  Buffer.add_string b
    (Printf.sprintf
       "compat issues: %d before -> %d after (%d errors, %d warnings)\n"
       (List.length r.issues_before)
       (List.length r.issues_after)
       (count Support.Err.Error r.issues_after)
       (count Support.Err.Warning r.issues_after));
  List.iter
    (fun (k, n) -> Buffer.add_string b (Printf.sprintf "  before %-18s %d\n" k n))
    (Compat.summarize r.issues_before);
  List.iter
    (fun i ->
      Buffer.add_string b ("  after  " ^ Compat.issue_to_string i ^ "\n"))
    r.issues_after;
  Buffer.add_string b
    (Printf.sprintf
       "intrinsics: %d min/max, %d fmuladd split, %d dropped, %d freezes\n"
       r.intrinsics.Legalize_intrinsics.minmax
       r.intrinsics.Legalize_intrinsics.fmuladd
       r.intrinsics.Legalize_intrinsics.dropped
       r.intrinsics.Legalize_intrinsics.freezes);
  Buffer.add_string b
    (Printf.sprintf
       "descriptors: %d eliminated, %d GEPs delinearized, %d flat fallbacks\n"
       r.descriptors.Eliminate_descriptors.descriptors
       r.descriptors.Eliminate_descriptors.delinearized
       r.descriptors.Eliminate_descriptors.flat_fallback);
  Buffer.add_string b
    (Printf.sprintf "pointers: %d typed, %d bitcasts, %d defaulted\n"
       r.pointers.Typed_pointers.typed r.pointers.Typed_pointers.bitcasts
       r.pointers.Typed_pointers.defaulted);
  Buffer.add_string b
    (Printf.sprintf "geps: %d merged, %d indices widened\n"
       r.geps.Canonicalize_geps.merged r.geps.Canonicalize_geps.widened);
  Buffer.add_string b
    (Printf.sprintf "metadata: %d loops, %d markers emitted\n"
       r.metadata.Translate_metadata.loops r.metadata.Translate_metadata.markers);
  Buffer.add_string b
    (Printf.sprintf "interfaces: %d annotated, %d partitions\n"
       r.interfaces.Interfaces.interfaces r.interfaces.Interfaces.partitions);
  List.iter
    (fun (n, s) ->
      Buffer.add_string b (Printf.sprintf "  pass %-24s %.4fs\n" n s))
    r.pass_seconds;
  Buffer.contents b
