(** The MLIR HLS adaptor for LLVM IR — pipeline driver.

    Takes LLVM IR as produced by the modern MLIR lowering and emits
    HLS-readable IR: no opaque pointers, no memref descriptors, no
    modern intrinsics, directives carried by [_ssdm_op_Spec*] markers,
    interfaces annotated on the top function.  {!Compat.check} must
    return no issues on the output (asserted when the pipeline is
    strict). *)

(* This is the library's root module: siblings are only reachable
   through these aliases, which are the supported public paths. *)
module Hls_names = Hls_names
module Legalize_intrinsics = Legalize_intrinsics
module Eliminate_descriptors = Eliminate_descriptors
module Typed_pointers = Typed_pointers
module Canonicalize_geps = Canonicalize_geps
module Translate_metadata = Translate_metadata
module Interfaces = Interfaces
module Compat = Compat

(** Per-pass statistics and diagnostics accumulated over one run. *)
type report = {
  intrinsics : Legalize_intrinsics.stats;
  descriptors : Eliminate_descriptors.stats;
  pointers : Typed_pointers.stats;
  geps : Canonicalize_geps.stats;
  metadata : Translate_metadata.stats;
  interfaces : Interfaces.stats;
  issues_before : Compat.issue list;
  issues_after : Compat.issue list;
  diagnostics : Support.Diag.t list;
  pass_seconds : (string * float) list;
}

val fresh_report : unit -> report

(** The configurable pass pipeline: an ordered list of named passes
    with per-pass enablement, an optional top function, and a strict
    flag (strict runs assert a clean {!Compat.check} on the output). *)
module Pipeline : sig
  type pass = {
    pname : string;
    enabled : bool;
    prun :
      report ->
      am:Llvmir.Analysis.t ->
      top:string option ->
      Llvmir.Lmodule.t ->
      Llvmir.Lmodule.t;
  }

  type t = { passes : pass list; top : string option; strict : bool }

  val legalize_intrinsics : pass
  val eliminate_descriptors : pass
  val eliminate_descriptors_flat : pass
  val typed_pointers : pass
  val canonicalize_geps : pass
  val translate_metadata : pass
  val lower_interfaces : pass

  (** Every known pass, in canonical order. *)
  val registry : pass list

  val known_names : string list
  val find_pass : string -> pass option
  val default : t
  val no_descriptor_elimination : t
  val flat_views : t
  val with_top : string option -> t -> t
  val relaxed : t -> t
  val enabled_names : t -> string list
  val describe : t -> string
  val unknown_pass_diag : string -> Support.Diag.t
  val set_enabled : string -> bool -> t -> (t, Support.Diag.t) result
  val disable : string -> t -> (t, Support.Diag.t) result

  (** Build a pipeline that enables exactly [names], preserving
      canonical order; unknown names are a [Diag] error. *)
  val of_names :
    ?top:string -> ?strict:bool -> string list -> (t, Support.Diag.t) result
end

(** Run the pipeline over a module.  Diagnostics of severity [Error]
    (including strict-mode compat failures) produce [Error diags]. *)
val run :
  ?pipeline:Pipeline.t ->
  ?trace:Support.Tracing.hook ->
  Llvmir.Lmodule.t ->
  (Llvmir.Lmodule.t * report, Support.Diag.t list) result

(** Like {!run} but raises {!Support.Diag.Failed} on error. *)
val run_exn :
  ?pipeline:Pipeline.t ->
  ?trace:Support.Tracing.hook ->
  Llvmir.Lmodule.t ->
  Llvmir.Lmodule.t * report

val report_to_string : report -> string
