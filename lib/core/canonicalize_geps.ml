(** Adaptor pass 4: GEP canonicalization.

    Merges chained GEPs ([gep (gep p, …, k), 0, …] → one GEP) and
    normalizes index types to [i64].  Vitis' middle-end recognizes
    BRAM access patterns from single multi-dimensional GEPs; chains —
    typical of Clang's array-decay output and of our C round-trip
    front-end — defeat that matching.

    The merge fixpoint runs in place on the packed {!Llvmir.Iarena}:
    a merged row gets a freshly pushed operand span (the def's span
    followed by the chain's tail indices), and the next round walks
    the same flat storage.  Rounds keep the historical one-pass-per-
    round semantics — a def merged earlier in the same round is read
    through its start-of-round snapshot, which stays valid because the
    operand pool is append-only — so merge counts and intermediate
    states match the list-rewriting implementation exactly. *)

open Llvmir
open Linstr

type stats = { mutable merged : int; mutable widened : int }

let fresh_stats () = { merged = 0; widened = 0 }

let run_func ?(stats = fresh_stats ()) ?am (f : Lmodule.func) : Lmodule.func =
  let names = Lmodule.namegen f in
  let idx = Analysis.findex ?am f in
  let a = Findex.arena idx in
  let n = Iarena.n_instrs a in
  (* start-of-round snapshot of rows modified this round, so intra-
     round def reads see the round's input state *)
  let stamp = Array.make n (-1) in
  let snap_off = Array.make n 0 and snap_len = Array.make n 0 in
  let snap_aux = Array.make n 0 and snap_ib = Array.make n false in
  let any_merge = ref false in
  (* iterate: merging can expose further merges *)
  let round = ref 0 and changed = ref true in
  while !changed && !round < 8 do
    changed := false;
    for k = 0 to n - 1 do
      if Iarena.tag a k = Iarena.tag_gep && Iarena.op_len a k >= 2 then begin
        let o = Iarena.op_off a k and l = Iarena.op_len a k in
        match (Iarena.opnd a o, Iarena.opnd a (o + 1)) with
        | Lvalue.Reg (bn, _), Lvalue.Const (Lvalue.CInt (0, _)) -> (
            match Findex.def idx bn with
            | Some (Findex.Instr dk) when Iarena.tag a dk = Iarena.tag_gep ->
                (* gep (gep b0, idxs0), 0, rest  ==  gep b0, idxs0 @ rest *)
                let d_off, d_len, d_aux, d_ib =
                  if stamp.(dk) = !round then
                    (snap_off.(dk), snap_len.(dk), snap_aux.(dk), snap_ib.(dk))
                  else
                    ( Iarena.op_off a dk,
                      Iarena.op_len a dk,
                      Iarena.aux0 a dk,
                      Iarena.inbounds a dk )
                in
                let k_ib = Iarena.inbounds a k in
                stamp.(k) <- !round;
                snap_off.(k) <- o;
                snap_len.(k) <- l;
                snap_aux.(k) <- Iarena.aux0 a k;
                snap_ib.(k) <- k_ib;
                let po = Iarena.pool_len a in
                for s = d_off to d_off + d_len - 1 do
                  Iarena.push_copy a s
                done;
                for s = o + 2 to o + l - 1 do
                  Iarena.push_copy a s
                done;
                Iarena.set_span a k ~off:po ~len:(d_len + l - 2);
                Iarena.set_aux0 a k d_aux;
                Iarena.set_inbounds a k (k_ib && d_ib);
                stats.merged <- stats.merged + 1;
                changed := true;
                any_merge := true
            | _ -> ())
        | _ -> ()
      end
    done;
    incr round
  done;
  (* widen i32 GEP indices to i64 via sext *)
  let pre : (int, Linstr.t list) Hashtbl.t = Hashtbl.create 8 in
  let any_widen = ref false in
  for k = 0 to n - 1 do
    if Iarena.tag a k = Iarena.tag_gep then begin
      let o = Iarena.op_off a k and l = Iarena.op_len a k in
      let has_i32 = ref false in
      for s = o + 1 to o + l - 1 do
        if Ltype.equal (Lvalue.type_of (Iarena.opnd a s)) Ltype.I32 then
          has_i32 := true
      done;
      if !has_i32 then begin
        any_widen := true;
        let pres = ref [] in
        for s = o + 1 to o + l - 1 do
          let v = Iarena.opnd a s in
          if Ltype.equal (Lvalue.type_of v) Ltype.I32 then begin
            match v with
            | Lvalue.Const (Lvalue.CInt (c, _)) ->
                Iarena.set_opnd a k s (Lvalue.ci64 c)
            | _ ->
                stats.widened <- stats.widened + 1;
                let r = Support.Namegen.fresh names "sext" in
                pres :=
                  Linstr.make ~result:r ~ty:Ltype.I64 (Cast (Sext, v, Ltype.I64))
                  :: !pres;
                Iarena.set_opnd a k s (Lvalue.reg r Ltype.I64)
          end
        done;
        if !pres <> [] then Hashtbl.replace pre k (List.rev !pres)
      end
    end
  done;
  if not (!any_merge || !any_widen) then fst (Opt_dce.run_func f)
  else begin
    let blocks =
      List.init (Iarena.n_blocks a) (fun bi ->
          let insts = ref [] in
          for k = Iarena.block_stop a bi - 1 downto Iarena.block_start a bi do
            let tail = Iarena.instr a k :: !insts in
            insts :=
              (match Hashtbl.find_opt pre k with
              | Some ps -> ps @ tail
              | None -> tail)
          done;
          { Lmodule.label = Iarena.block_label a bi; insts = !insts })
    in
    fst (Opt_dce.run_func { f with Lmodule.blocks })
  end

let run ?stats ?am (m : Lmodule.t) : Lmodule.t =
  Lmodule.map_funcs (run_func ?stats ?am) m
