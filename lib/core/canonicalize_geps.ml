(** Adaptor pass 4: GEP canonicalization.

    Merges chained GEPs ([gep (gep p, …, k), 0, …] → one GEP) and
    normalizes index types to [i64].  Vitis' middle-end recognizes
    BRAM access patterns from single multi-dimensional GEPs; chains —
    typical of Clang's array-decay output and of our C round-trip
    front-end — defeat that matching. *)

open Llvmir
open Linstr

type stats = { mutable merged : int; mutable widened : int }

let fresh_stats () = { merged = 0; widened = 0 }

let run_func ?(stats = fresh_stats ()) ?am (f : Lmodule.func) : Lmodule.func =
  let names = Lmodule.namegen f in
  let one_round f =
    let idx = Analysis.findex ?am f in
    let changed = ref false in
    let rw (i : Linstr.t) : Linstr.t list =
      match i.op with
      | Gep { base = Lvalue.Reg (bn, _); idxs; src_ty = _; inbounds } -> (
          match (Findex.def_instr idx bn, idxs) with
          | ( Some { op = Gep { base = b0; idxs = idxs0; src_ty = st0; inbounds = ib0 }; _ },
              Lvalue.Const (Lvalue.CInt (0, _)) :: rest ) ->
              (* gep (gep b0, idxs0), 0, rest  ==  gep b0, idxs0 @ rest *)
              stats.merged <- stats.merged + 1;
              changed := true;
              [
                {
                  i with
                  op =
                    Gep
                      {
                        base = b0;
                        src_ty = st0;
                        idxs = idxs0 @ rest;
                        inbounds = inbounds && ib0;
                      };
                };
              ]
          | _ -> [ i ])
      | _ -> [ i ]
    in
    let f' = Lmodule.rewrite_insts rw f in
    if !changed then Some f' else None
  in
  (* iterate: merging can expose further merges *)
  let rec fixpoint f n =
    if n = 0 then f
    else match one_round f with None -> f | Some f' -> fixpoint f' (n - 1)
  in
  let f = fixpoint f 8 in
  (* widen i32 GEP indices to i64 via sext *)
  let rw2 (i : Linstr.t) : Linstr.t list =
    match i.op with
    | Gep ({ idxs; _ } as g)
      when List.exists
             (fun v -> Ltype.equal (Lvalue.type_of v) Ltype.I32)
             idxs ->
        let pre = ref [] in
        let widen v =
          if Ltype.equal (Lvalue.type_of v) Ltype.I32 then begin
            match v with
            | Lvalue.Const (Lvalue.CInt (c, _)) -> Lvalue.ci64 c
            | _ ->
                stats.widened <- stats.widened + 1;
                let r = Support.Namegen.fresh names "sext" in
                pre :=
                  Linstr.make ~result:r ~ty:Ltype.I64
                    (Cast (Sext, v, Ltype.I64))
                  :: !pre;
                Lvalue.reg r Ltype.I64
          end
          else v
        in
        let idxs' = List.map widen idxs in
        List.rev !pre @ [ { i with op = Gep { g with idxs = idxs' } } ]
    | _ -> [ i ]
  in
  let f = Lmodule.rewrite_insts rw2 f in
  fst (Opt_dce.run_func f)

let run ?stats ?am (m : Lmodule.t) : Lmodule.t =
  Lmodule.map_funcs (run_func ?stats ?am) m
