(** Adaptor pass 1: legalize modern intrinsics into constructs the
    HLS-readable (LLVM-7-era) dialect understands.

    - [llvm.smax/smin/umax/umin] → [icmp] + [select]
    - [llvm.abs]                 → [icmp] + [sub] + [select]
    - [llvm.fmuladd]/[llvm.fma]  → [fmul] + [fadd]
    - [llvm.lifetime.*], [llvm.assume], [llvm.experimental.*] → dropped
    - [freeze]                   → forwarded to its operand *)

open Llvmir
open Linstr
module Sym = Support.Interner

type stats = {
  mutable minmax : int;
  mutable fmuladd : int;
  mutable dropped : int;
  mutable freezes : int;
}

let fresh_stats () = { minmax = 0; fmuladd = 0; dropped = 0; freezes = 0 }

let starts_with = Hls_names.starts_with

(* Cheap pre-scan: a function with no freeze and no modern intrinsic
   takes none of the rewrites below, so the whole rewrite/substitute/
   DCE machinery (and its per-function index builds) can be skipped.
   Functions that do need work go through the original path
   unchanged. *)
let needs_work (f : Lmodule.func) : bool =
  List.exists
    (fun (b : Lmodule.block) ->
      List.exists
        (fun (i : Linstr.t) ->
          match i.op with
          | Freeze _ -> true
          | Call { callee; _ } -> Hls_names.is_modern_intrinsic callee
          | _ -> false)
        b.insts)
    f.blocks

let run_func ?(stats = fresh_stats ()) ?am (f : Lmodule.func) : Lmodule.func =
  if not (needs_work f) then f
  else
  let names = Lmodule.namegen f in
  let subst : Lvalue.t Sym.Tbl.t = Sym.Tbl.create 16 in
  let dropped_here = ref false in
  let rw (i : Linstr.t) : Linstr.t list =
    match i.op with
    | Freeze v ->
        stats.freezes <- stats.freezes + 1;
        Sym.Tbl.replace subst i.result v;
        []
    | Call { callee; args; ret } when Hls_names.is_modern_intrinsic callee -> (
        let mk ~result ~ty op = Linstr.make ~result ~ty op in
        match args with
        | [ a; b ]
          when starts_with "llvm.smax." callee
               || starts_with "llvm.umax." callee
               || starts_with "llvm.smin." callee
               || starts_with "llvm.umin." callee ->
            (* unsigned variants must compare unsigned: lowering umax
               through sgt miscompares once an operand's sign bit is
               set *)
            let pred =
              if starts_with "llvm.smax." callee then ISgt
              else if starts_with "llvm.umax." callee then IUgt
              else if starts_with "llvm.smin." callee then ISlt
              else IUlt
            in
            stats.minmax <- stats.minmax + 1;
            let c = Support.Namegen.fresh names (result_name i ^ ".cmp") in
            [
              mk ~result:c ~ty:Ltype.I1 (Icmp (pred, a, b));
              mk ~result:(result_name i) ~ty:ret
                (Select (Lvalue.reg c Ltype.I1, a, b));
            ]
        | [ a; _poison ] when starts_with "llvm.abs." callee ->
            stats.minmax <- stats.minmax + 1;
            let ty = Lvalue.type_of a in
            let neg = Support.Namegen.fresh names (result_name i ^ ".neg") in
            let c = Support.Namegen.fresh names (result_name i ^ ".cmp") in
            [
              mk ~result:neg ~ty (IBin (Sub, Lvalue.ci ~ty 0, a));
              mk ~result:c ~ty:Ltype.I1 (Icmp (ISlt, a, Lvalue.ci ~ty 0));
              mk ~result:(result_name i) ~ty:ret
                (Select
                   (Lvalue.reg c Ltype.I1, Lvalue.reg neg ty, a));
            ]
        | [ a; b; c ]
          when starts_with "llvm.fmuladd." callee
               || starts_with "llvm.fma." callee ->
            stats.fmuladd <- stats.fmuladd + 1;
            let ty = Lvalue.type_of a in
            let m = Support.Namegen.fresh names (result_name i ^ ".mul") in
            [
              mk ~result:m ~ty (FBin (FMul, a, b));
              mk ~result:(result_name i) ~ty:ret
                (FBin (FAdd, Lvalue.reg m ty, c));
            ]
        | _
          when starts_with "llvm.lifetime." callee
               || starts_with "llvm.assume" callee
               || starts_with "llvm.experimental." callee ->
            stats.dropped <- stats.dropped + 1;
            dropped_here := true;
            []
        | _ ->
            (* unknown modern intrinsic: keep; the compat checker will
               report it *)
            [ i ])
    | _ -> [ i ]
  in
  let f' = Lmodule.rewrite_insts rw f in
  let f' = Findex.substitute_func subst f' in
  (* only a dropped call ([llvm.assume], lifetime markers) can orphan
     its operand chain — the min/max/abs/fmuladd/freeze rewrites
     replace a value in place, every operand they forward was already
     live.  The cleanup DCE (and its per-function index build) is pure
     overhead unless something was dropped; [?am] lets it cache (and
     seed) the index it builds, so the post-pass verifier reuses it *)
  if !dropped_here then fst (Opt_dce.run_func ?am f') else f'

let run ?stats ?am (m : Lmodule.t) : Lmodule.t =
  let m = Lmodule.map_funcs (run_func ?stats ?am) m in
  (* prune declarations of now-unused modern intrinsics *)
  let used = Hashtbl.create 16 in
  List.iter
    (fun f ->
      Lmodule.iter_insts
        (fun i ->
          match i.op with
          | Call { callee; _ } -> Hashtbl.replace used callee ()
          | _ -> ())
        f)
    m.funcs;
  {
    m with
    decls =
      List.filter
        (fun (d : Lmodule.decl) ->
          Hashtbl.mem used d.dname || not (Hls_names.is_modern_intrinsic d.dname))
        m.decls;
  }
