(** Adaptor pass 3: reconstruct typed pointers from opaque pointers.

    Vitis HLS's LLVM predates opaque pointers, so every [ptr] value
    must become a [T*].  Pointee types are inferred by a fixpoint
    dataflow over the pointer-producing and pointer-consuming
    instructions:

    - [alloca T]              defines its result as [T*];
    - [getelementptr T, p, …] constrains [p : T*] and defines its
      result by walking [T] through the trailing indices;
    - [load T, p]             constrains [p : T*];
    - [store v, p]            constrains [p : typeof(v)*];
    - [phi]/[select]/[freeze] propagate both ways;
    - calls constrain arguments by the callee's (already reconstructed)
      parameter types.

    A pointer with conflicting constraints keeps the first type and the
    conflicting uses get explicit [bitcast]s (Vitis-era Clang output is
    full of those).  A pointer with no constraints at all becomes
    [i8*]. *)

open Llvmir
open Linstr
module Sym = Support.Interner

type stats = {
  mutable typed : int;  (** pointers given a concrete pointee *)
  mutable bitcasts : int;  (** compensating casts inserted *)
  mutable defaulted : int;  (** unconstrained pointers defaulted to i8* *)
}

let fresh_stats () = { typed = 0; bitcasts = 0; defaulted = 0 }

(** Walk an aggregate type through trailing GEP indices. *)
let rec walk_gep_ty ty idxs =
  match idxs with
  | [] -> Some ty
  | idx :: rest -> (
      match ty with
      | Ltype.Array (_, elt) -> walk_gep_ty elt rest
      | Ltype.Struct fields -> (
          match Lvalue.const_int_value idx with
          | Some k when k >= 0 && k < List.length fields ->
              walk_gep_ty (List.nth fields k) rest
          | _ -> None)
      | _ -> None)

let run_func ?(stats = fresh_stats ())
    ~(signatures : (string, Ltype.t list * Ltype.t) Hashtbl.t)
    (f : Lmodule.func) : Lmodule.func =
  (* pointee : register/param symbol -> inferred pointee type *)
  let pointee : Ltype.t Sym.Tbl.t = Sym.Tbl.create 32 in
  let is_opaque_reg (v : Lvalue.t) =
    match v with
    | Lvalue.Reg (n, Ltype.Ptr None) -> Some n
    | _ -> None
  in
  let constrain name ty =
    match Sym.Tbl.find_opt pointee name with
    | None ->
        Sym.Tbl.replace pointee name ty;
        true
    | Some t -> not (Ltype.equal t ty) |> fun _conflict -> false
  in
  (* fixpoint *)
  let changed = ref true in
  while !changed do
    changed := false;
    Lmodule.iter_insts
      (fun (i : Linstr.t) ->
        let c name ty = if constrain name ty then changed := true in
        match i.op with
        | Alloca (ty, _) -> if not (Sym.is_empty i.result) then c i.result ty
        | Load (ty, p) -> (
            match is_opaque_reg p with Some n -> c n ty | None -> ())
        | Store (v, p) -> (
            match is_opaque_reg p with
            | Some n -> c n (Lvalue.type_of v)
            | None -> ())
        | Gep { src_ty; base; idxs; _ } -> (
            (match is_opaque_reg base with
            | Some n -> c n src_ty
            | None -> ());
            if (not (Sym.is_empty i.result)) && Ltype.is_opaque_pointer i.ty then
              match idxs with
              | _ :: rest -> (
                  match walk_gep_ty src_ty rest with
                  | Some t -> c i.result t
                  | None -> ())
              | [] -> c i.result src_ty)
        | Select (_, a, b) | Phi [ (a, _); (b, _) ] -> (
            let named = [ is_opaque_reg a; is_opaque_reg b ] in
            let known =
              List.filter_map
                (fun o ->
                  match o with
                  | Some n -> Sym.Tbl.find_opt pointee n
                  | None -> None)
                named
            in
            match known with
            | ty :: _ ->
                List.iter
                  (function Some n -> c n ty | None -> ())
                  named;
                if (not (Sym.is_empty i.result)) && Ltype.is_opaque_pointer i.ty
                then c i.result ty
            | [] -> ())
        | Call { callee; args; _ } -> (
            match Hashtbl.find_opt signatures callee with
            | Some (param_tys, _) ->
                List.iteri
                  (fun k arg ->
                    match (is_opaque_reg arg, List.nth_opt param_tys k) with
                    | Some n, Some (Ltype.Ptr (Some t)) -> c n t
                    | _ -> ())
                  args
            | None -> ())
        | _ -> ())
      f;
    (* parameters are just names; loads above already constrain them *)
    ()
  done;
  (* assign final types *)
  let final_ty name =
    match Sym.Tbl.find_opt pointee name with
    | Some t ->
        stats.typed <- stats.typed + 1;
        Ltype.ptr t
    | None ->
        stats.defaulted <- stats.defaulted + 1;
        Ltype.ptr Ltype.I8
  in
  let new_reg_ty : Ltype.t Sym.Tbl.t = Sym.Tbl.create 32 in
  List.iter
    (fun (p : Lmodule.param) ->
      if Ltype.is_opaque_pointer p.pty then
        let pn = Sym.intern p.pname in
        Sym.Tbl.replace new_reg_ty pn (final_ty pn))
    f.params;
  Lmodule.iter_insts
    (fun i ->
      if (not (Sym.is_empty i.result)) && Ltype.is_opaque_pointer i.ty then
        Sym.Tbl.replace new_reg_ty i.result (final_ty i.result))
    f;
  let retype (v : Lvalue.t) =
    match v with
    | Lvalue.Reg (n, Ltype.Ptr None) -> (
        match Sym.Tbl.find_opt new_reg_ty n with
        | Some t -> Lvalue.Reg (n, t)
        | None -> v)
    | _ -> v
  in
  let params =
    List.map
      (fun (p : Lmodule.param) ->
        match Sym.Tbl.find_opt new_reg_ty (Sym.intern p.pname) with
        | Some t -> { p with Lmodule.pty = t }
        | None -> p)
      f.params
  in
  let names = Lmodule.namegen f in
  (* rewrite instructions: retype operands/results, fix mismatches with
     bitcasts *)
  let rw (i : Linstr.t) : Linstr.t list =
    let i = Linstr.map_operands retype i in
    let i =
      if (not (Sym.is_empty i.result)) && Ltype.is_opaque_pointer i.ty then
        match Sym.Tbl.find_opt new_reg_ty i.result with
        | Some t -> { i with ty = t }
        | None -> i
      else i
    in
    (* compensating bitcasts where the use needs a different pointee *)
    let pre = ref [] in
    let coerce (p : Lvalue.t) (want : Ltype.t) : Lvalue.t =
      match Lvalue.type_of p with
      | Ltype.Ptr (Some have) when not (Ltype.equal have want) ->
          stats.bitcasts <- stats.bitcasts + 1;
          let r = Support.Namegen.fresh names "cast" in
          pre :=
            Linstr.make ~result:r ~ty:(Ltype.ptr want)
              (Cast (Bitcast, p, Ltype.ptr want))
            :: !pre;
          Lvalue.reg r (Ltype.ptr want)
      | _ -> p
    in
    let i' =
      match i.op with
      | Load (ty, p) -> { i with op = Load (ty, coerce p ty) }
      | Store (v, p) -> { i with op = Store (v, coerce p (Lvalue.type_of v)) }
      | Gep ({ src_ty; base; _ } as g) ->
          { i with op = Gep { g with base = coerce base src_ty } }
      | _ -> i
    in
    (* GEP results: recompute the typed result pointer *)
    let i' =
      match i'.op with
      | Gep { src_ty; idxs; _ } when not (Sym.is_empty i'.result) -> (
          match idxs with
          | _ :: rest -> (
              match walk_gep_ty src_ty rest with
              | Some t when not (Ltype.is_opaque_pointer i'.ty) ->
                  { i' with ty = Ltype.ptr t }
              | Some t -> { i' with ty = Ltype.ptr t }
              | None -> i')
          | [] -> i')
      | _ -> i'
    in
    List.rev !pre @ [ i' ]
  in
  let f' = Lmodule.rewrite_insts rw { f with params } in
  (* after result retyping, operand occurrences of those registers must
     agree: remap all Reg occurrences through the final type table *)
  let final_map (v : Lvalue.t) =
    match v with
    | Lvalue.Reg (n, Ltype.Ptr None) -> (
        match Sym.Tbl.find_opt new_reg_ty n with
        | Some t -> Lvalue.Reg (n, t)
        | None -> v)
    | _ -> v
  in
  Lmodule.map_values final_map f'

(** Module-level driver.  Functions are processed in definition order;
    signatures of processed functions refine later call-site
    inference. *)
let run ?stats (m : Lmodule.t) : Lmodule.t =
  let signatures : (string, Ltype.t list * Ltype.t) Hashtbl.t =
    Hashtbl.create 8
  in
  List.iter
    (fun (d : Lmodule.decl) ->
      Hashtbl.replace signatures d.dname (d.dargs, d.dret))
    m.decls;
  let funcs =
    List.map
      (fun f ->
        let f' = run_func ?stats ~signatures f in
        Hashtbl.replace signatures f'.Lmodule.fname
          ( List.map (fun (p : Lmodule.param) -> p.pty) f'.Lmodule.params,
            f'.Lmodule.ret_ty );
        f')
      m.funcs
  in
  { m with funcs }
