(** End-to-end compilation flows — the two paths the paper compares —
    plus co-simulation and comparison reporting.

    {b Flow A (direct IR, the paper's proposal)}:
    mhir → canonicalize → modern LLVM lowering → LLVM cleanup pipeline →
    {e adaptor} → HLS backend.

    {b Flow B (HLS C++ baseline, ScaleHLS-style)}:
    mhir → canonicalize → HLS C++ emission → mini-C front-end (Vitis
    Clang analogue) → same LLVM cleanup pipeline → HLS backend.

    Co-simulation runs three oracles on identical inputs — the mhir
    interpreter, Flow A's LLVM IR and Flow B's LLVM IR — and checks all
    outputs against the kernel's plain-OCaml reference. *)

module K = Workloads.Kernels

type flow_kind = Direct_ir | Hls_cpp

let flow_name = function Direct_ir -> "direct-ir" | Hls_cpp -> "hls-cpp"

type result = {
  kernel : string;
  kind : flow_kind;
  sched : Hls_backend.Backend.sched;  (** scheduling discipline used *)
  llvm : Llvmir.Lmodule.t;  (** the IR handed to the HLS backend *)
  hls : Hls_backend.Estimate.report;
  seconds : float;  (** front-of-HLS compile time *)
  cpp_source : string option;
  adaptor_report : Adaptor.report option;
}

(** Shared LLVM cleanup pipeline (stands in for Vitis' middle-end
    [opt] run). *)
let llvm_cleanup ?trace m =
  fst
    (Llvmir.Pass.run_pipeline ~verify:true ?trace Llvmir.Pass.default_pipeline
       m)

(** Flow A front-end: mhir to HLS-ready LLVM IR through the adaptor.
    Returns [Error diagnostics] when the (strict) adaptor pipeline
    leaves blocking compatibility issues; no exception escapes. *)
let direct_ir_frontend ?(pipeline = Adaptor.Pipeline.default)
    ?(trace = Support.Tracing.null) (m : Mhir.Ir.modul) :
    (Llvmir.Lmodule.t * Adaptor.report * float, Support.Diag.t list)
    Stdlib.result =
  let t0 = Sys.time () in
  Mhir.Verifier.verify_module m;
  let m = Mhir.Canonicalize.run m in
  let tl0 = Sys.time () in
  let lm = Lowering.Lower.lower_module ~style:Lowering.Lower.modern m in
  Llvmir.Lverifier.verify_module lm;
  trace
    (Support.Tracing.event ~stage:"lower" ~pass:"lower-modern"
       ~seconds:(Sys.time () -. tl0) ~before:0
       ~after:(Llvmir.Lmodule.instr_count lm));
  let lm = llvm_cleanup ~trace lm in
  match Adaptor.run ~pipeline ~trace lm with
  | Ok (lm, report) -> Ok (lm, report, Sys.time () -. t0)
  | Error ds -> Error ds

(** Exception-raising convenience for process boundaries (CLI, bench):
    raises {!Support.Diag.Failed} where {!direct_ir_frontend} returns
    [Error]. *)
let direct_ir_frontend_exn ?pipeline ?trace (m : Mhir.Ir.modul) :
    Llvmir.Lmodule.t * Adaptor.report * float =
  match direct_ir_frontend ?pipeline ?trace m with
  | Ok x -> x
  | Error ds -> raise (Support.Diag.Failed ds)

(** Lint a kernel: run Flow A's front-end without the strict gate and
    hand the adapted IR to the {!Hls_backend.Lint} rule registry.
    Compat leftovers surface as accumulated HLS10x diagnostics instead
    of an exception. *)
let lint_kernel ?(directives = K.pipelined) ?only ?(werror = false) ?pipeline
    (kernel : K.kernel) : Support.Diag.t list =
  let m = kernel.K.build directives in
  let pipeline =
    match pipeline with
    | Some p -> Adaptor.Pipeline.relaxed p
    | None ->
        Adaptor.Pipeline.(
          default |> with_top (Some kernel.K.kname) |> relaxed)
  in
  match direct_ir_frontend ~pipeline m with
  | Ok (lm, _, _) -> Hls_backend.Lint.run ?only ~werror ~top:kernel.K.kname lm
  | Error ds -> ds (* unreachable: the pipeline is non-strict *)

(** Flow B front-end: mhir to HLS-ready LLVM IR through C++ text. *)
let hls_cpp_frontend ?(trace = Support.Tracing.null) (m : Mhir.Ir.modul) :
    Llvmir.Lmodule.t * string * float =
  let t0 = Sys.time () in
  Mhir.Verifier.verify_module m;
  let m = Mhir.Canonicalize.run m in
  let te0 = Sys.time () in
  let cpp = Hlscpp.Emit.emit_module m in
  let lm = Hlscpp.Ccodegen.compile cpp in
  Llvmir.Lverifier.verify_module lm;
  trace
    (Support.Tracing.event ~stage:"hls-cpp" ~pass:"emit-and-parse"
       ~seconds:(Sys.time () -. te0) ~before:0
       ~after:(Llvmir.Lmodule.instr_count lm));
  let lm = llvm_cleanup ~trace lm in
  (lm, cpp, Sys.time () -. t0)

(** Run one flow on a kernel and synthesize under the chosen
    scheduling discipline.  [Error diagnostics] when the strict
    adaptor gate blocks (direct-IR flow only). *)
let run ?(directives = K.pipelined) ?pipeline ?clock_ns
    ?(sched = Hls_backend.Backend.Static) ?(trace = Support.Tracing.null)
    (kernel : K.kernel) (kind : flow_kind) :
    (result, Support.Diag.t list) Stdlib.result =
  let m = kernel.K.build directives in
  let synthesize lm =
    let t0 = Sys.time () in
    let hls =
      Hls_backend.Backend.synthesize ?clock_ns ~sched ~top:kernel.K.kname lm
    in
    let n = Llvmir.Lmodule.instr_count lm in
    trace
      (Support.Tracing.event ~stage:"hls"
         ~pass:("estimate-" ^ Hls_backend.Backend.sched_name sched)
         ~seconds:(Sys.time () -. t0) ~before:n ~after:n);
    hls
  in
  match kind with
  | Direct_ir -> (
      match direct_ir_frontend ?pipeline ~trace m with
      | Error ds -> Error ds
      | Ok (lm, report, seconds) ->
          Ok
            {
              kernel = kernel.K.kname;
              kind;
              sched;
              llvm = lm;
              hls = synthesize lm;
              seconds;
              cpp_source = None;
              adaptor_report = Some report;
            })
  | Hls_cpp ->
      let lm, cpp, seconds = hls_cpp_frontend ~trace m in
      Ok
        {
          kernel = kernel.K.kname;
          kind;
          sched;
          llvm = lm;
          hls = synthesize lm;
          seconds;
          cpp_source = Some cpp;
          adaptor_report = None;
        }

(** Exception-raising convenience for process boundaries: raises
    {!Support.Diag.Failed} where {!run} returns [Error]. *)
let run_exn ?directives ?pipeline ?clock_ns ?sched ?trace (kernel : K.kernel)
    (kind : flow_kind) : result =
  match run ?directives ?pipeline ?clock_ns ?sched ?trace kernel kind with
  | Ok r -> r
  | Error ds -> raise (Support.Diag.Failed ds)

(* ------------------------------------------------------------------ *)
(* Co-simulation                                                      *)
(* ------------------------------------------------------------------ *)

type cosim_outcome = {
  ok : bool;
  max_abs_error : float;
  details : string list;
}

let flat_size shape = List.fold_left ( * ) 1 shape

(** Deterministic input data for argument [idx] of a kernel. *)
let input_data (kernel : K.kernel) idx =
  let _, shape = List.nth kernel.K.args idx in
  match Mhir.Interp.random_fbuf ~seed:(idx + 7) shape with
  | Mhir.Interp.Buf b -> Array.copy b.Mhir.Interp.fdata
  | _ -> assert false

(** Run the plain-OCaml reference on fresh inputs; returns all arrays
    (outputs updated in place). *)
let run_reference (kernel : K.kernel) : float array list =
  let arrays = List.mapi (fun i _ -> input_data kernel i) kernel.K.args in
  kernel.K.reference arrays;
  arrays

(** Run the mhir interpreter on fresh inputs. *)
let run_mhir (kernel : K.kernel) ~(directives : K.directives) :
    float array list =
  let m = kernel.K.build directives in
  let bufs =
    List.mapi
      (fun i (_, shape) ->
        let data = input_data kernel i in
        let b =
          Mhir.Interp.alloc_buffer (Array.of_list shape) Mhir.Types.F32
        in
        Array.blit data 0 b.Mhir.Interp.fdata 0 (Array.length data);
        Mhir.Interp.Buf b)
      kernel.K.args
  in
  ignore (Mhir.Interp.run_func m kernel.K.kname bufs);
  List.map
    (function
      | Mhir.Interp.Buf b -> Array.copy b.Mhir.Interp.fdata
      | _ -> assert false)
    bufs

(** Run an LLVM module (either flow's output) on fresh inputs. *)
let run_llvm (kernel : K.kernel) (lm : Llvmir.Lmodule.t) : float array list =
  let st = Llvmir.Linterp.create lm in
  let addrs =
    List.mapi
      (fun i (_, shape) ->
        let addr = Llvmir.Linterp.alloc_floats st (flat_size shape) in
        Llvmir.Linterp.write_floats st addr (input_data kernel i);
        addr)
      kernel.K.args
  in
  ignore
    (Llvmir.Linterp.run st kernel.K.kname
       (List.map (fun a -> Llvmir.Linterp.RPtr a) addrs));
  List.map2
    (fun addr (_, shape) -> Llvmir.Linterp.read_floats st addr (flat_size shape))
    addrs kernel.K.args

(** Compare every output argument of [got] against [want]. *)
let compare_outputs (kernel : K.kernel) ~(what : string)
    (want : float array list) (got : float array list) :
    float * string list =
  let max_err = ref 0.0 in
  let issues = ref [] in
  List.iteri
    (fun i (name, _) ->
      if List.mem name kernel.K.outputs then begin
        let w = List.nth want i and g = List.nth got i in
        Array.iteri
          (fun k wv ->
            let e = Float.abs (wv -. g.(k)) in
            let rel = e /. Float.max 1.0 (Float.abs wv) in
            if rel > !max_err then max_err := rel;
            if rel > 1e-4 && List.length !issues < 5 then
              issues :=
                Printf.sprintf "%s: %s[%d] = %g, expected %g" what name k
                  g.(k) wv
                :: !issues)
          w
      end)
    kernel.K.args;
  (!max_err, List.rev !issues)

(** Full three-way co-simulation of a kernel under given directives. *)
let cosim ?(directives = K.pipelined) (kernel : K.kernel) : cosim_outcome =
  let reference = run_reference kernel in
  let mhir_out = run_mhir kernel ~directives in
  let m = kernel.K.build directives in
  let direct, _, _ = direct_ir_frontend_exn m in
  let cpp, _, _ = hls_cpp_frontend m in
  let direct_out = run_llvm kernel direct in
  let cpp_out = run_llvm kernel cpp in
  let e1, i1 = compare_outputs kernel ~what:"mhir" reference mhir_out in
  let e2, i2 = compare_outputs kernel ~what:"direct-ir" reference direct_out in
  let e3, i3 = compare_outputs kernel ~what:"hls-cpp" reference cpp_out in
  let details = i1 @ i2 @ i3 in
  {
    ok = details = [];
    max_abs_error = List.fold_left Float.max 0.0 [ e1; e2; e3 ];
    details;
  }

(* ------------------------------------------------------------------ *)
(* Comparison                                                         *)
(* ------------------------------------------------------------------ *)

(** The paper's flow comparison, generalized to a 2×2 grid:
    frontend (direct-IR vs HLS C++) × scheduling discipline (static
    vs dynamic).  [direct]/[cpp] are the statically-scheduled cells
    the paper reports; [direct_dyn]/[cpp_dyn] are the same frontends
    re-estimated under the elastic backend. *)
type comparison = {
  c_kernel : string;
  direct : result;
  cpp : result;
  direct_dyn : result;
  cpp_dyn : result;
}

(** Run both flows under both scheduling disciplines on a kernel. *)
let compare_flows ?(directives = K.pipelined) ?clock_ns (kernel : K.kernel) :
    comparison =
  let cell sched kind = run_exn ~directives ?clock_ns ~sched kernel kind in
  {
    c_kernel = kernel.K.kname;
    direct = cell Hls_backend.Backend.Static Direct_ir;
    cpp = cell Hls_backend.Backend.Static Hls_cpp;
    direct_dyn = cell Hls_backend.Backend.Dynamic Direct_ir;
    cpp_dyn = cell Hls_backend.Backend.Dynamic Hls_cpp;
  }

let latency_ratio (c : comparison) =
  float_of_int c.cpp.hls.Hls_backend.Estimate.latency
  /. float_of_int (max 1 c.direct.hls.Hls_backend.Estimate.latency)
