(** Automatic design-space exploration on top of the direct-IR flow —
    the "developers could focus on their specialization" angle of the
    paper, implemented as the specialization layer a downstream user
    would build: enumerate directive configurations, synthesize each
    through the adaptor flow (fast, since no C++ round-trip), and keep
    the Pareto frontier of (latency, resource) points under an optional
    budget.

    The explored space is the standard HLS recipe grid:
    - pipeline placement: inner loop vs middle loop (+ full unroll);
    - unroll factors for the inner strategy;
    - cyclic partition factors applied to caller-selected arrays. *)

module K = Workloads.Kernels
module E = Hls_backend.Estimate

type budget = {
  max_bram : int option;
  max_dsp : int option;
  max_lut : int option;
}

let no_budget = { max_bram = None; max_dsp = None; max_lut = None }

type point = {
  label : string;
  directives : K.directives;
  latency : int;
  resources : E.resources;
  report : E.report;
}

let within (b : budget) (r : E.resources) =
  let ok limit v = match limit with None -> true | Some l -> v <= l in
  ok b.max_bram r.E.bram && ok b.max_dsp r.E.dsp && ok b.max_lut r.E.lut

(** Candidate directive configurations for a kernel whose partitionable
    arrays (with their hot dimension) are [parts]. *)
let candidates ~(parts : (string * int) list) ~(factors : int list) :
    (string * K.directives) list =
  let inner =
    [ ("no directives", K.no_directives); ("pipeline inner", K.pipelined) ]
    @ List.map
        (fun u ->
          ( Printf.sprintf "pipeline inner, unroll %d" u,
            { K.pipelined with K.unroll = Some u } ))
        [ 2; 4 ]
  in
  let middle =
    List.map
      (fun f ->
        let label =
          if f = 1 then "pipeline middle, full unroll"
          else Printf.sprintf "middle + partition x%d" f
        in
        (label, K.optimized ~factor:f ~parts:(if f = 1 then [] else parts) ()))
      factors
  in
  inner @ middle

(** A point [p] dominates [q] when it is no worse on every axis and
    strictly better on at least one. *)
let dominates p q =
  let r1 = p.resources and r2 = q.resources in
  p.latency <= q.latency
  && r1.E.bram <= r2.E.bram
  && r1.E.dsp <= r2.E.dsp
  && r1.E.lut <= r2.E.lut
  && (p.latency < q.latency || r1.E.bram < r2.E.bram || r1.E.dsp < r2.E.dsp
     || r1.E.lut < r2.E.lut)

let pareto (points : point list) : point list =
  List.filter
    (fun p -> not (List.exists (fun q -> dominates q p) points))
    points

type result = {
  kernel : string;
  explored : point list;  (** all feasible points, evaluation order *)
  frontier : point list;  (** Pareto-optimal subset, fastest first *)
  infeasible : (string * string) list;  (** label, reason *)
}

(** One evaluated candidate: label, directives, and either the full
    synthesis report or the reason evaluation failed.  The driver
    library produces these in parallel (with caching); {!evaluate} is
    the sequential reference evaluator. *)
type evaluation = (string * K.directives * (E.report, string) Stdlib.result) list

(** Evaluate candidates one by one through the direct-IR flow.  All
    failure modes are captured as [Error reason] values. *)
let evaluate ?pipeline (kernel : K.kernel)
    (cands : (string * K.directives) list) : evaluation =
  List.map
    (fun (label, directives) ->
      let outcome =
        match Flow_impl.run ~directives ?pipeline kernel Flow_impl.Direct_ir with
        | Ok r -> Ok r.Flow_impl.hls
        | Error ds ->
            Error (Printf.sprintf "adaptor: %s" (Support.Diag.summary ds))
        | exception Support.Err.Compile_error e ->
            Error (Support.Err.to_string e)
        | exception E.Rejected errs ->
            Error (Printf.sprintf "rejected (%d issues)" (List.length errs))
      in
      (label, directives, outcome))
    cands

(** Assemble evaluated candidates into a DSE result: apply the resource
    budget, split feasible/infeasible, compute the Pareto frontier. *)
let assemble ?(budget = no_budget) ~(kernel : string) (evals : evaluation) :
    result =
  let explored, infeasible =
    List.fold_left
      (fun (ex, inf) (label, directives, outcome) ->
        match outcome with
        | Ok (hls : E.report) ->
            if within budget hls.E.resources then
              ( {
                  label;
                  directives;
                  latency = hls.E.latency;
                  resources = hls.E.resources;
                  report = hls;
                }
                :: ex,
                inf )
            else (ex, (label, "over budget") :: inf)
        | Error reason -> (ex, (label, reason) :: inf))
      ([], []) evals
  in
  let explored = List.rev explored in
  let frontier =
    List.sort (fun a b -> compare a.latency b.latency) (pareto explored)
  in
  { kernel; explored; frontier; infeasible = List.rev infeasible }

(** Explore the space for [kernel].  [parts] names the arrays worth
    partitioning and the dimension their hot accesses vary in (e.g.
    [[("A", 2); ("B", 1)]] for gemm). *)
let explore ?budget ?(factors = [ 1; 2; 4; 8 ]) ~(parts : (string * int) list)
    (kernel : K.kernel) : result =
  candidates ~parts ~factors
  |> evaluate kernel
  |> assemble ?budget ~kernel:kernel.K.kname

(** Best (lowest-latency) feasible point, if any. *)
let best (r : result) : point option =
  match r.frontier with p :: _ -> Some p | [] -> None

let render (r : result) : string =
  let t =
    Support.Table.create
      ~aligns:
        [ Support.Table.Left; Support.Table.Right; Support.Table.Right;
          Support.Table.Right; Support.Table.Right; Support.Table.Left ]
      [ "design point"; "latency"; "BRAM"; "DSP"; "LUT"; "pareto" ]
  in
  List.iter
    (fun p ->
      Support.Table.add_row t
        [
          p.label;
          string_of_int p.latency;
          string_of_int p.resources.E.bram;
          string_of_int p.resources.E.dsp;
          string_of_int p.resources.E.lut;
          (if List.memq p r.frontier || List.exists (fun q -> q.label = p.label) r.frontier
           then "*"
           else "");
        ])
    r.explored;
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "DSE for %s:\n" r.kernel);
  Buffer.add_string buf (Support.Table.render t);
  Buffer.add_char buf '\n';
  List.iter
    (fun (l, why) ->
      Buffer.add_string buf (Printf.sprintf "  infeasible: %-30s %s\n" l why))
    r.infeasible;
  Buffer.contents buf
