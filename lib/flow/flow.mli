(** End-to-end compilation flows — the two paths the paper compares —
    plus co-simulation and comparison reporting.  This interface is the
    library's public surface: internal helpers (the [_exn] front-end
    variant, input-data plumbing) stay behind it.

    {b Flow A (direct IR, the paper's proposal)}:
    mhir → canonicalize → modern LLVM lowering → LLVM cleanup pipeline →
    {e adaptor} → HLS backend.

    {b Flow B (HLS C++ baseline, ScaleHLS-style)}:
    mhir → canonicalize → HLS C++ emission → mini-C front-end (Vitis
    Clang analogue) → same LLVM cleanup pipeline → HLS backend.

    Error convention: [result]-returning functions are the primary
    names; {!run_exn} is the one [_exn] wrapper, for process
    boundaries (CLI, bench) only. *)

type flow_kind = Direct_ir | Hls_cpp

val flow_name : flow_kind -> string

type result = {
  kernel : string;
  kind : flow_kind;
  sched : Hls_backend.Backend.sched;  (** scheduling discipline used *)
  llvm : Llvmir.Lmodule.t;  (** the IR handed to the HLS backend *)
  hls : Hls_backend.Estimate.report;
  seconds : float;  (** front-of-HLS compile time *)
  cpp_source : string option;
  adaptor_report : Adaptor.report option;
}

(** Shared LLVM cleanup pipeline (stands in for Vitis' middle-end
    [opt] run); also the cleanup stage of both flows. *)
val llvm_cleanup :
  ?trace:Support.Tracing.hook -> Llvmir.Lmodule.t -> Llvmir.Lmodule.t

(** Flow A front-end: mhir to HLS-ready LLVM IR through the adaptor.
    Returns [Error diagnostics] when the (strict) adaptor pipeline
    leaves blocking compatibility issues; no exception escapes. *)
val direct_ir_frontend :
  ?pipeline:Adaptor.Pipeline.t ->
  ?trace:Support.Tracing.hook ->
  Mhir.Ir.modul ->
  (Llvmir.Lmodule.t * Adaptor.report * float, Support.Diag.t list)
  Stdlib.result

(** Flow B front-end: mhir to HLS-ready LLVM IR through C++ text.
    Returns (module, C++ source, seconds). *)
val hls_cpp_frontend :
  ?trace:Support.Tracing.hook ->
  Mhir.Ir.modul ->
  Llvmir.Lmodule.t * string * float

(** Lint a kernel: run Flow A's front-end without the strict gate and
    hand the adapted IR to the {!Hls_backend.Lint} rule registry. *)
val lint_kernel :
  ?directives:Workloads.Kernels.directives ->
  ?only:string list ->
  ?werror:bool ->
  ?pipeline:Adaptor.Pipeline.t ->
  Workloads.Kernels.kernel ->
  Support.Diag.t list

(** Run one flow on a kernel and synthesize under the chosen
    scheduling discipline ([sched], default
    {!Hls_backend.Backend.Static}).  [Error diagnostics] when the
    strict adaptor gate blocks (direct-IR flow only). *)
val run :
  ?directives:Workloads.Kernels.directives ->
  ?pipeline:Adaptor.Pipeline.t ->
  ?clock_ns:float ->
  ?sched:Hls_backend.Backend.sched ->
  ?trace:Support.Tracing.hook ->
  Workloads.Kernels.kernel ->
  flow_kind ->
  (result, Support.Diag.t list) Stdlib.result

(** Exception-raising convenience for process boundaries: raises
    {!Support.Diag.Failed} where {!run} returns [Error]. *)
val run_exn :
  ?directives:Workloads.Kernels.directives ->
  ?pipeline:Adaptor.Pipeline.t ->
  ?clock_ns:float ->
  ?sched:Hls_backend.Backend.sched ->
  ?trace:Support.Tracing.hook ->
  Workloads.Kernels.kernel ->
  flow_kind ->
  result

(* ------------------------------------------------------------------ *)
(* Co-simulation                                                      *)
(* ------------------------------------------------------------------ *)

type cosim_outcome = {
  ok : bool;
  max_abs_error : float;
  details : string list;
}

(** Run the plain-OCaml reference on fresh deterministic inputs;
    returns all arrays (outputs updated in place). *)
val run_reference : Workloads.Kernels.kernel -> float array list

(** Run the mhir interpreter on fresh deterministic inputs. *)
val run_mhir :
  Workloads.Kernels.kernel ->
  directives:Workloads.Kernels.directives ->
  float array list

(** Run an LLVM module (either flow's output) on fresh deterministic
    inputs. *)
val run_llvm :
  Workloads.Kernels.kernel -> Llvmir.Lmodule.t -> float array list

(** Compare every output argument of the second list against the
    first; returns (max relative error, first few mismatch strings). *)
val compare_outputs :
  Workloads.Kernels.kernel ->
  what:string ->
  float array list ->
  float array list ->
  float * string list

(** Full three-way co-simulation of a kernel under given directives. *)
val cosim :
  ?directives:Workloads.Kernels.directives ->
  Workloads.Kernels.kernel ->
  cosim_outcome

(* ------------------------------------------------------------------ *)
(* Comparison                                                         *)
(* ------------------------------------------------------------------ *)

(** The paper's flow comparison, generalized to a 2×2 grid: frontend
    (direct-IR vs HLS C++) × scheduling discipline (static vs
    dynamic).  [direct]/[cpp] are the statically-scheduled cells. *)
type comparison = {
  c_kernel : string;
  direct : result;
  cpp : result;
  direct_dyn : result;
  cpp_dyn : result;
}

(** Run both flows under both scheduling disciplines on a kernel. *)
val compare_flows :
  ?directives:Workloads.Kernels.directives ->
  ?clock_ns:float ->
  Workloads.Kernels.kernel ->
  comparison

(** HLS-C++ over direct-IR latency, on the statically-scheduled
    cells (the paper's headline number). *)
val latency_ratio : comparison -> float
