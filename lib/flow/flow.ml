(** Library root: the end-to-end flows.  The public surface is sealed
    by [flow.mli]; design-space exploration lives in the separate
    [Mhls_dse] library built on the batch driver. *)

include Flow_impl
