(** Recursive-descent parser for the C subset. *)

open Cast
open Clex

let fail fmt = Support.Err.fail ~pass:"hlscpp.parser" fmt

type stream = { toks : token array; mutable pos : int }

let cur s = s.toks.(s.pos)
let peek s k = if s.pos + k < Array.length s.toks then s.toks.(s.pos + k) else Teof
let advance s = s.pos <- s.pos + 1

let token_str = function
  | Tident w -> w
  | Tint i -> string_of_int i
  | Tfloat (f, _) -> string_of_float f
  | Tpragma p -> "#" ^ p
  | Tpunct p -> p
  | Teof -> "<eof>"

let expect_punct s p =
  match cur s with
  | Tpunct q when q = p -> advance s
  | t -> fail "expected '%s', found '%s'" p (token_str t)

let eat_punct s p =
  match cur s with
  | Tpunct q when q = p ->
      advance s;
      true
  | _ -> false

let expect_ident s =
  match cur s with
  | Tident w ->
      advance s;
      w
  | t -> fail "expected identifier, found '%s'" (token_str t)

let ty_of_ident = function
  | "void" -> Some Cvoid
  | "int" -> Some Cint
  | "long" -> Some Clong
  | "float" -> Some Cfloat
  | "double" -> Some Cdouble
  | _ -> None

let is_type_kw s =
  match cur s with
  | Tident w -> ty_of_ident w <> None
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Expressions (precedence climbing)                                  *)
(* ------------------------------------------------------------------ *)

let rec parse_expr s : expr = parse_ternary s

and parse_ternary s =
  let c = parse_or s in
  if eat_punct s "?" then begin
    let a = parse_expr s in
    expect_punct s ":";
    let b = parse_expr s in
    Eternary (c, a, b)
  end
  else c

and parse_or s =
  let rec go lhs =
    if eat_punct s "||" then go (Ebin ("||", lhs, parse_and s)) else lhs
  in
  go (parse_and s)

and parse_and s =
  let rec go lhs =
    if eat_punct s "&&" then go (Ebin ("&&", lhs, parse_bitor s)) else lhs
  in
  go (parse_bitor s)

(* the lexer's longest-match rule keeps "|" distinct from "||" and
   "&" from "&&", so single-char bitwise puncts are unambiguous here *)
and parse_bitor s =
  let rec go lhs =
    if eat_punct s "|" then go (Ebin ("|", lhs, parse_bitxor s)) else lhs
  in
  go (parse_bitxor s)

and parse_bitxor s =
  let rec go lhs =
    if eat_punct s "^" then go (Ebin ("^", lhs, parse_bitand s)) else lhs
  in
  go (parse_bitand s)

and parse_bitand s =
  let rec go lhs =
    if eat_punct s "&" then go (Ebin ("&", lhs, parse_cmp s)) else lhs
  in
  go (parse_cmp s)

and parse_cmp s =
  let rec go lhs =
    match cur s with
    | Tpunct (("<" | ">" | "<=" | ">=" | "==" | "!=") as op) ->
        advance s;
        go (Ebin (op, lhs, parse_shift s))
    | _ -> lhs
  in
  go (parse_shift s)

and parse_shift s =
  let rec go lhs =
    match cur s with
    | Tpunct (("<<" | ">>") as op) ->
        advance s;
        go (Ebin (op, lhs, parse_add s))
    | _ -> lhs
  in
  go (parse_add s)

and parse_add s =
  let rec go lhs =
    match cur s with
    | Tpunct (("+" | "-") as op) ->
        advance s;
        go (Ebin (op, lhs, parse_mul s))
    | _ -> lhs
  in
  go (parse_mul s)

and parse_mul s =
  let rec go lhs =
    match cur s with
    | Tpunct (("*" | "/" | "%") as op) ->
        advance s;
        go (Ebin (op, lhs, parse_unary s))
    | _ -> lhs
  in
  go (parse_unary s)

and parse_unary s =
  match cur s with
  | Tpunct "-" ->
      advance s;
      Eunary ("-", parse_unary s)
  | Tpunct "!" ->
      advance s;
      Eunary ("!", parse_unary s)
  | Tpunct "(" when (match peek s 1 with
                     | Tident w -> ty_of_ident w <> None
                     | _ -> false) -> (
      (* cast *)
      advance s;
      let w = expect_ident s in
      expect_punct s ")";
      match ty_of_ident w with
      | Some ty -> Ecast (ty, parse_unary s)
      | None -> fail "bad cast")
  | _ -> parse_postfix s

and parse_postfix s =
  let e = parse_primary s in
  let rec go e =
    if eat_punct s "[" then begin
      let idx = parse_expr s in
      expect_punct s "]";
      go (Eindex (e, idx))
    end
    else e
  in
  go e

and parse_primary s =
  match cur s with
  | Tint v ->
      advance s;
      Eint v
  | Tfloat (v, single) ->
      advance s;
      Efloat (v, single)
  | Tident name -> (
      advance s;
      if eat_punct s "(" then begin
        let rec args acc =
          if eat_punct s ")" then List.rev acc
          else
            let a = parse_expr s in
            if eat_punct s "," then args (a :: acc)
            else begin
              expect_punct s ")";
              List.rev (a :: acc)
            end
        in
        Ecall (name, args [])
      end
      else Eident name)
  | Tpunct "(" ->
      advance s;
      let e = parse_expr s in
      expect_punct s ")";
      e
  | t -> fail "expected expression, found '%s'" (token_str t)

(* ------------------------------------------------------------------ *)
(* Pragmas                                                            *)
(* ------------------------------------------------------------------ *)

let parse_pragma (line : string) : pragma =
  let words =
    String.split_on_char ' ' line
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun w -> w <> "")
  in
  let kv w =
    match String.index_opt w '=' with
    | Some i ->
        (String.sub w 0 i, String.sub w (i + 1) (String.length w - i - 1))
    | None -> (w, "")
  in
  match words with
  | "pragma" :: "HLS" :: directive :: opts -> (
      (* keyword comparisons are case-insensitive; option {e values}
         (e.g. variable names) keep their case *)
      let kv_lc o =
        let k, v = kv o in
        (String.lowercase_ascii k, v)
      in
      match String.lowercase_ascii directive with
      | "pipeline" ->
          let ii =
            List.fold_left
              (fun acc o ->
                match kv_lc o with
                | "ii", v -> ( try int_of_string v with _ -> acc)
                | _ -> acc)
              1 opts
          in
          Ppipeline ii
      | "unroll" ->
          let f =
            List.fold_left
              (fun acc o ->
                match kv_lc o with
                | "factor", v -> ( try int_of_string v with _ -> acc)
                | _ -> acc)
              0 opts
          in
          Punroll f
      | "array_partition" ->
          let variable = ref "" and kind = ref "cyclic" and factor = ref 1 and dim = ref 1 in
          List.iter
            (fun o ->
              match kv_lc o with
              | "variable", v -> variable := v
              | "factor", v -> ( try factor := int_of_string v with _ -> ())
              | "dim", v -> ( try dim := int_of_string v with _ -> ())
              | ("cyclic" | "block" | "complete"), "" ->
                  kind := String.lowercase_ascii (fst (kv o))
              | _ -> ())
            opts;
          Ppartition { variable = !variable; kind = !kind; factor = !factor; dim = !dim }
      | _ -> Pother line)
  | _ -> Pother line

(* ------------------------------------------------------------------ *)
(* Statements                                                         *)
(* ------------------------------------------------------------------ *)

let rec parse_stmt s : stmt =
  match cur s with
  | Tpragma line ->
      advance s;
      Spragma (parse_pragma line)
  | Tident "for" ->
      advance s;
      expect_punct s "(";
      (* 'int'/'long' ivar = init *)
      let _ =
        match cur s with
        | Tident ("int" | "long") -> advance s
        | _ -> ()
      in
      let ivar = expect_ident s in
      expect_punct s "=";
      let init = parse_expr s in
      expect_punct s ";";
      let bvar = expect_ident s in
      if bvar <> ivar then fail "for: condition variable differs from induction";
      expect_punct s "<";
      let bound = parse_expr s in
      expect_punct s ";";
      let step =
        let v = expect_ident s in
        if v <> ivar then fail "for: increment variable differs from induction";
        match cur s with
        | Tpunct "++" ->
            advance s;
            Eint 1
        | Tpunct "+=" ->
            advance s;
            parse_expr s
        | t -> fail "for: expected ++ or +=, found '%s'" (token_str t)
      in
      expect_punct s ")";
      let body = parse_block s in
      Sfor { ivar; init; bound; step; body }
  | Tident "if" ->
      advance s;
      expect_punct s "(";
      let c = parse_expr s in
      expect_punct s ")";
      let then_b = parse_block s in
      let else_b =
        if cur s = Tident "else" then begin
          advance s;
          parse_block s
        end
        else []
      in
      Sif (c, then_b, else_b)
  | Tident "return" ->
      advance s;
      if eat_punct s ";" then Sreturn None
      else begin
        let e = parse_expr s in
        expect_punct s ";";
        Sreturn (Some e)
      end
  | Tident w when ty_of_ident w <> None && w <> "void" -> (
      advance s;
      let name = expect_ident s in
      let rec dims acc =
        if eat_punct s "[" then begin
          match cur s with
          | Tint d ->
              advance s;
              expect_punct s "]";
              dims (d :: acc)
          | t -> fail "expected array dimension, found '%s'" (token_str t)
        end
        else List.rev acc
      in
      let dims = dims [] in
      let init = if eat_punct s "=" then Some (parse_expr s) else None in
      expect_punct s ";";
      match ty_of_ident w with
      | Some ty -> Sdecl (ty, name, dims, init)
      | None -> assert false)
  | _ -> (
      (* assignment or expression statement *)
      let lhs = parse_expr s in
      match cur s with
      | Tpunct "=" ->
          advance s;
          let rhs = parse_expr s in
          expect_punct s ";";
          Sassign (lhs, rhs)
      | Tpunct (("+=" | "-=" | "*=" | "/=") as op) ->
          advance s;
          let rhs = parse_expr s in
          expect_punct s ";";
          Scompound_assign (String.sub op 0 1, lhs, rhs)
      | _ ->
          expect_punct s ";";
          Sexpr lhs)

and parse_block s : stmt list =
  expect_punct s "{";
  let rec go acc =
    if eat_punct s "}" then List.rev acc else go (parse_stmt s :: acc)
  in
  go []

(* ------------------------------------------------------------------ *)
(* Functions / file                                                   *)
(* ------------------------------------------------------------------ *)

let parse_func s : func =
  let ret =
    match ty_of_ident (expect_ident s) with
    | Some t -> t
    | None -> fail "expected return type"
  in
  let fname = expect_ident s in
  expect_punct s "(";
  let rec params acc =
    if eat_punct s ")" then List.rev acc
    else begin
      let pty =
        match ty_of_ident (expect_ident s) with
        | Some t -> t
        | None -> fail "expected parameter type"
      in
      let pname = expect_ident s in
      let rec dims acc2 =
        if eat_punct s "[" then
          match cur s with
          | Tint d ->
              advance s;
              expect_punct s "]";
              dims (d :: acc2)
          | t -> fail "expected dimension, found '%s'" (token_str t)
        else List.rev acc2
      in
      let p = { pname; pty; dims = dims [] } in
      if eat_punct s "," then params (p :: acc)
      else begin
        expect_punct s ")";
        List.rev (p :: acc)
      end
    end
  in
  let params = params [] in
  let body = parse_block s in
  { fname; ret; params; body }

let parse_file (src : string) : file =
  let s = { toks = Clex.tokenize src; pos = 0 } in
  let rec go acc =
    match cur s with
    | Teof -> List.rev acc
    | Tpragma _ ->
        advance s;
        go acc  (* file-level pragmas ignored *)
    | _ -> go (parse_func s :: acc)
  in
  go []
