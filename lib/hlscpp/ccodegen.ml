(** LLVM IR generation from the C subset — the Vitis Clang analogue.

    Output is deliberately Clang-at--O0-shaped: every local (including
    loop counters) lives in an alloca, array subscripts become one GEP
    per dimension (array-decay chains), [int] stays 32-bit with [sext]
    at address computations, and HLS pragmas become [_ssdm_op_Spec*]
    marker calls.  The flow then runs the shared LLVM cleanup pipeline
    (mem2reg & friends), exactly as Vitis runs its own middle-end. *)

open Cast
module B = Llvmir.Lbuilder
module Ltype = Llvmir.Ltype
module Lvalue = Llvmir.Lvalue
module Linstr = Llvmir.Linstr
module Lmodule = Llvmir.Lmodule

let fail fmt = Support.Err.fail ~pass:"hlscpp.codegen" fmt

let scalar_lty = function
  | Cvoid -> Ltype.Void
  | Cint -> Ltype.I32
  | Clong -> Ltype.I64
  | Cfloat -> Ltype.Float
  | Cdouble -> Ltype.Double

let array_lty (base : cty) (dims : int list) =
  List.fold_right (fun d acc -> Ltype.Array (d, acc)) dims (scalar_lty base)

type sym =
  | Scalar of Lvalue.t  (** alloca slot, typed pointer *)
  | ArrayRef of Lvalue.t  (** pointer to the (possibly nested) array *)

type env = {
  b : B.t;
  syms : (string, sym) Hashtbl.t;
  mutable partitions : pragma list;  (** collected array_partition pragmas *)
  mutable decls : Lmodule.decl list;
  sigs : (string, Cast.param list * cty) Hashtbl.t;
      (** user-function signatures, collected before codegen *)
}

let need_decl env (d : Lmodule.decl) =
  if not (List.exists (fun (x : Lmodule.decl) -> x.Lmodule.dname = d.Lmodule.dname) env.decls)
  then env.decls <- d :: env.decls

(* ------------------------------------------------------------------ *)
(* Conversions                                                        *)
(* ------------------------------------------------------------------ *)

let rank = function
  | Ltype.I32 -> 1
  | Ltype.I64 -> 2
  | Ltype.Float -> 3
  | Ltype.Double -> 4
  | _ -> 0

let coerce env (v : Lvalue.t) (target : Ltype.t) : Lvalue.t =
  let src = Lvalue.type_of v in
  if Ltype.equal src target then v
  else
    match (src, target) with
    | Ltype.I1, (Ltype.I32 | Ltype.I64) -> B.cast env.b Linstr.Zext v target
    | Ltype.I32, Ltype.I64 -> B.cast env.b Linstr.Sext v target
    | Ltype.I64, Ltype.I32 -> B.cast env.b Linstr.Trunc v target
    | (Ltype.I32 | Ltype.I64), (Ltype.Float | Ltype.Double) ->
        B.cast env.b Linstr.Sitofp v target
    | (Ltype.Float | Ltype.Double), (Ltype.I32 | Ltype.I64) ->
        B.cast env.b Linstr.Fptosi v target
    | Ltype.Float, Ltype.Double -> B.cast env.b Linstr.Fpext v target
    | Ltype.Double, Ltype.Float -> B.cast env.b Linstr.Fptrunc v target
    | _ ->
        fail "cannot convert %s to %s" (Ltype.to_string src)
          (Ltype.to_string target)

let common_ty a b =
  if rank a >= rank b then a else b

(* ------------------------------------------------------------------ *)
(* Expressions                                                        *)
(* ------------------------------------------------------------------ *)

(** Address of an lvalue expression; returns the element pointer. *)
let rec gen_addr env (e : expr) : Lvalue.t =
  match e with
  | Eident name -> (
      match Hashtbl.find_opt env.syms name with
      | Some (Scalar slot) -> slot
      | Some (ArrayRef p) -> p
      | None -> fail "undeclared identifier %s" name)
  | Eindex (base, idx) -> (
      let base_ptr = gen_addr env base in
      let idx_v = coerce env (gen_expr env idx) Ltype.I64 in
      match Lvalue.type_of base_ptr with
      | Ltype.Ptr (Some (Ltype.Array _ as arr_ty)) ->
          (* one GEP per subscript — Clang's array-decay chain *)
          B.gep env.b ~src_ty:arr_ty base_ptr [ Lvalue.ci64 0; idx_v ]
      | Ltype.Ptr (Some elem_ty) ->
          B.gep env.b ~src_ty:elem_ty base_ptr [ idx_v ]
      | t -> fail "cannot index a value of type %s" (Ltype.to_string t))
  | _ -> fail "expression is not an lvalue"

and gen_expr env (e : expr) : Lvalue.t =
  match e with
  | Eint v -> Lvalue.ci32 v
  | Efloat (v, true) -> Lvalue.cf ~ty:Ltype.Float v
  | Efloat (v, false) -> Lvalue.cf ~ty:Ltype.Double v
  | Eident name -> (
      match Hashtbl.find_opt env.syms name with
      | Some (Scalar slot) -> (
          match Lvalue.type_of slot with
          | Ltype.Ptr (Some t) -> B.load env.b t slot
          | _ -> fail "malformed scalar slot")
      | Some (ArrayRef p) -> p
      | None -> fail "undeclared identifier %s" name)
  | Eindex _ -> (
      let addr = gen_addr env e in
      match Lvalue.type_of addr with
      | Ltype.Ptr (Some (Ltype.Array _)) ->
          addr  (* partial indexing yields a sub-array pointer *)
      | Ltype.Ptr (Some t) -> B.load env.b t addr
      | _ -> fail "bad element pointer")
  | Eunary ("-", a) -> (
      let v = gen_expr env a in
      match Lvalue.type_of v with
      | t when Ltype.is_float t ->
          B.fbin env.b Linstr.FSub (Lvalue.cf ~ty:t 0.0) v
      | t -> B.ibin env.b Linstr.Sub (Lvalue.ci ~ty:t 0) v)
  | Eunary ("!", a) ->
      let v = gen_expr env a in
      let z = B.icmp env.b Linstr.IEq v (Lvalue.ci ~ty:(Lvalue.type_of v) 0) in
      B.cast env.b Linstr.Zext z Ltype.I32
  | Eunary (op, _) -> fail "unsupported unary operator %s" op
  | Ecast (ty, a) -> coerce env (gen_expr env a) (scalar_lty ty)
  | Eternary (c, a, b) ->
      let cv = gen_bool env c in
      let av = gen_expr env a in
      let bv = gen_expr env b in
      let ty = common_ty (Lvalue.type_of av) (Lvalue.type_of bv) in
      B.select env.b cv (coerce env av ty) (coerce env bv ty)
  | Ebin (("<" | ">" | "<=" | ">=" | "==" | "!=") as op, a, b) ->
      let v = gen_cmp env op a b in
      B.cast env.b Linstr.Zext v Ltype.I32
  | Ebin (("&&" | "||") as op, a, b) ->
      (* no short-circuit side effects in this subset: evaluate both *)
      let av = gen_bool env a in
      let bv = gen_bool env b in
      let r =
        B.ibin env.b (if op = "&&" then Linstr.And else Linstr.Or) av bv
      in
      B.cast env.b Linstr.Zext r Ltype.I32
  | Ebin (op, a, b) -> (
      let av = gen_expr env a in
      let bv = gen_expr env b in
      let ty = common_ty (Lvalue.type_of av) (Lvalue.type_of bv) in
      let av = coerce env av ty and bv = coerce env bv ty in
      if Ltype.is_float ty then
        let fop =
          match op with
          | "+" -> Linstr.FAdd
          | "-" -> Linstr.FSub
          | "*" -> Linstr.FMul
          | "/" -> Linstr.FDiv
          | _ -> fail "unsupported float operator %s" op
        in
        B.fbin env.b fop av bv
      else
        let iop =
          match op with
          | "+" -> Linstr.Add
          | "-" -> Linstr.Sub
          | "*" -> Linstr.Mul
          | "/" -> Linstr.SDiv
          | "%" -> Linstr.SRem
          | "<<" -> Linstr.Shl
          | ">>" -> Linstr.AShr
          | "&" -> Linstr.And
          | "|" -> Linstr.Or
          | "^" -> Linstr.Xor
          | _ -> fail "unsupported integer operator %s" op
        in
        B.ibin env.b iop av bv)
  | Ecall ("sqrtf", [ a ]) ->
      need_decl env
        { Lmodule.dname = "llvm.sqrt.f32"; dret = Ltype.Float; dargs = [ Ltype.Float ] };
      B.call env.b ~ret:Ltype.Float "llvm.sqrt.f32"
        [ coerce env (gen_expr env a) Ltype.Float ]
  | Ecall ("fabsf", [ a ]) ->
      need_decl env
        { Lmodule.dname = "llvm.fabs.f32"; dret = Ltype.Float; dargs = [ Ltype.Float ] };
      B.call env.b ~ret:Ltype.Float "llvm.fabs.f32"
        [ coerce env (gen_expr env a) Ltype.Float ]
  (* [__mhls_*] helpers printed by the HLS C++ emitter: C has no
     unsigned locals in this subset, so unsigned ops travel through
     these named calls and lower back to the LLVM instructions here. *)
  | Ecall (("__mhls_udiv" | "__mhls_urem" | "__mhls_lshr") as name, [ a; b ])
    ->
      let av = gen_expr env a in
      let bv = gen_expr env b in
      let ty = common_ty (Lvalue.type_of av) (Lvalue.type_of bv) in
      let op =
        match name with
        | "__mhls_udiv" -> Linstr.UDiv
        | "__mhls_urem" -> Linstr.URem
        | _ -> Linstr.LShr
      in
      B.ibin env.b op (coerce env av ty) (coerce env bv ty)
  | Ecall ("__mhls_floordiv", [ a; b ]) ->
      (* trunc-div plus correction, same expansion the direct lowering
         uses for arith.floordivsi *)
      let av = gen_expr env a in
      let bv = gen_expr env b in
      let ty = common_ty (Lvalue.type_of av) (Lvalue.type_of bv) in
      let x = coerce env av ty and y = coerce env bv ty in
      let q = B.ibin env.b Linstr.SDiv x y in
      let r = B.ibin env.b Linstr.SRem x y in
      let rnz = B.icmp env.b Linstr.INe r (Lvalue.ci ~ty 0) in
      let rneg = B.icmp env.b Linstr.ISlt r (Lvalue.ci ~ty 0) in
      let yneg = B.icmp env.b Linstr.ISlt y (Lvalue.ci ~ty 0) in
      let opposite = B.ibin env.b Linstr.Xor rneg yneg in
      let adjust = B.ibin env.b Linstr.And rnz opposite in
      let qm1 = B.ibin env.b Linstr.Sub q (Lvalue.ci ~ty 1) in
      B.select env.b adjust qm1 q
  | Ecall (("__mhls_umax" | "__mhls_umin") as name, [ a; b ]) ->
      let av = gen_expr env a in
      let bv = gen_expr env b in
      let ty = common_ty (Lvalue.type_of av) (Lvalue.type_of bv) in
      let suffix =
        match ty with
        | Ltype.I64 -> "i64"
        | _ -> "i32"
      in
      let callee =
        (if name = "__mhls_umax" then "llvm.umax." else "llvm.umin.") ^ suffix
      in
      need_decl env { Lmodule.dname = callee; dret = ty; dargs = [ ty; ty ] };
      B.call env.b ~ret:ty callee [ coerce env av ty; coerce env bv ty ]
  | Ecall (("__mhls_ult" | "__mhls_ule" | "__mhls_ugt" | "__mhls_uge") as name,
           [ a; b ]) ->
      let av = gen_expr env a in
      let bv = gen_expr env b in
      let ty = common_ty (Lvalue.type_of av) (Lvalue.type_of bv) in
      let p =
        match name with
        | "__mhls_ult" -> Linstr.IUlt
        | "__mhls_ule" -> Linstr.IUle
        | "__mhls_ugt" -> Linstr.IUgt
        | _ -> Linstr.IUge
      in
      let c = B.icmp env.b p (coerce env av ty) (coerce env bv ty) in
      B.cast env.b Linstr.Zext c Ltype.I32
  | Ecall (name, args) -> (
      (* user-defined function in the same translation unit *)
      match Hashtbl.find_opt env.sigs name with
      | Some (params, ret) ->
          if List.length args <> List.length params then
            fail "call to %s: arity mismatch" name;
          let argv =
            List.map2
              (fun (p : Cast.param) (a : expr) ->
                match p.dims with
                | [] -> coerce env (gen_expr env a) (scalar_lty p.pty)
                | dims -> (
                    (* array argument: pass the pointer *)
                    let ptr = gen_addr env a in
                    let want = Ltype.ptr (array_lty p.pty dims) in
                    if Ltype.equal (Lvalue.type_of ptr) want then ptr
                    else fail "call to %s: array argument shape mismatch" name))
              params args
          in
          B.call env.b ~ret:(scalar_lty ret) name argv
      | None -> fail "call to unsupported function %s" name)

and gen_cmp env op a b : Lvalue.t =
  let av = gen_expr env a in
  let bv = gen_expr env b in
  let ty = common_ty (Lvalue.type_of av) (Lvalue.type_of bv) in
  let av = coerce env av ty and bv = coerce env bv ty in
  if Ltype.is_float ty then
    let p =
      match op with
      | "<" -> Linstr.FOlt
      | ">" -> Linstr.FOgt
      | "<=" -> Linstr.FOle
      | ">=" -> Linstr.FOge
      | "==" -> Linstr.FOeq
      | "!=" -> Linstr.FOne
      | _ -> assert false
    in
    B.fcmp env.b p av bv
  else
    let p =
      match op with
      | "<" -> Linstr.ISlt
      | ">" -> Linstr.ISgt
      | "<=" -> Linstr.ISle
      | ">=" -> Linstr.ISge
      | "==" -> Linstr.IEq
      | "!=" -> Linstr.INe
      | _ -> assert false
    in
    B.icmp env.b p av bv

(** Condition value as i1. *)
and gen_bool env (e : expr) : Lvalue.t =
  match e with
  | Ebin (("<" | ">" | "<=" | ">=" | "==" | "!=") as op, a, b) ->
      gen_cmp env op a b
  | _ ->
      let v = gen_expr env e in
      if Ltype.equal (Lvalue.type_of v) Ltype.I1 then v
      else B.icmp env.b Linstr.INe v (Lvalue.ci ~ty:(Lvalue.type_of v) 0)

(* ------------------------------------------------------------------ *)
(* Statements                                                         *)
(* ------------------------------------------------------------------ *)

let rec gen_stmts env (stmts : stmt list) : unit =
  List.iter (gen_stmt env) stmts

and gen_stmt env (st : stmt) : unit =
  match st with
  | Spragma (Ppartition _ as p) -> env.partitions <- p :: env.partitions
  | Spragma _ -> ()  (* loop pragmas are consumed by Sfor pre-scan *)
  | Sdecl (ty, name, [], init) ->
      let lty = scalar_lty ty in
      let slot = B.alloca env.b ~name lty in
      Hashtbl.replace env.syms name (Scalar slot);
      (match init with
      | Some e -> B.store env.b (coerce env (gen_expr env e) lty) slot
      | None -> ())
  | Sdecl (ty, name, dims, init) ->
      if init <> None then fail "array initializers unsupported";
      let arr_ty = array_lty ty dims in
      let slot = B.alloca env.b ~name arr_ty in
      Hashtbl.replace env.syms name (ArrayRef slot)
  | Sassign (lhs, rhs) -> (
      let addr = gen_addr env lhs in
      match Lvalue.type_of addr with
      | Ltype.Ptr (Some t) -> B.store env.b (coerce env (gen_expr env rhs) t) addr
      | _ -> fail "bad assignment target")
  | Scompound_assign (op, lhs, rhs) -> (
      let addr = gen_addr env lhs in
      match Lvalue.type_of addr with
      | Ltype.Ptr (Some t) ->
          let old = B.load env.b t addr in
          let rhs_v = coerce env (gen_expr env rhs) t in
          let v =
            if Ltype.is_float t then
              let fop =
                match op with
                | "+" -> Linstr.FAdd
                | "-" -> Linstr.FSub
                | "*" -> Linstr.FMul
                | "/" -> Linstr.FDiv
                | _ -> fail "unsupported compound operator %s=" op
              in
              B.fbin env.b fop old rhs_v
            else
              let iop =
                match op with
                | "+" -> Linstr.Add
                | "-" -> Linstr.Sub
                | "*" -> Linstr.Mul
                | "/" -> Linstr.SDiv
                | _ -> fail "unsupported compound operator %s=" op
              in
              B.ibin env.b iop old rhs_v
          in
          B.store env.b v addr
      | _ -> fail "bad compound-assignment target")
  | Sfor { ivar; init; bound; step; body } ->
      gen_for env ~ivar ~init ~bound ~step ~body
  | Sif (c, then_b, else_b) ->
      let cv = gen_bool env c in
      let then_l = B.fresh_label env.b "if.then" in
      let else_l = B.fresh_label env.b "if.else" in
      let end_l = B.fresh_label env.b "if.end" in
      B.condbr env.b cv then_l (if else_b = [] then end_l else else_l);
      B.start_block env.b then_l;
      gen_stmts env then_b;
      if B.in_block env.b then B.br env.b end_l;
      if else_b <> [] then begin
        B.start_block env.b else_l;
        gen_stmts env else_b;
        if B.in_block env.b then B.br env.b end_l
      end;
      B.start_block env.b end_l
  | Sreturn None -> B.ret_void env.b
  | Sreturn (Some e) ->
      let v = gen_expr env e in
      B.ret env.b (Some v)
  | Sexpr e -> ignore (gen_expr env e)

and gen_for env ~ivar ~init ~bound ~step ~body =
  (* pre-scan pragmas at the head of the body *)
  let pragmas =
    List.filter_map (function Spragma p -> Some p | _ -> None) body
  in
  let slot = B.alloca env.b ~name:ivar Ltype.I32 in
  let saved = Hashtbl.find_opt env.syms ivar in
  Hashtbl.replace env.syms ivar (Scalar slot);
  B.store env.b (coerce env (gen_expr env init) Ltype.I32) slot;
  let header = B.fresh_label env.b "for.header" in
  let body_l = B.fresh_label env.b "for.body" in
  let latch = B.fresh_label env.b "for.latch" in
  let exit = B.fresh_label env.b "for.exit" in
  B.br env.b header;
  B.start_block env.b header;
  (* directive markers live in the header, Vitis-style *)
  List.iter
    (fun p ->
      match p with
      | Ppipeline ii ->
          need_decl env
            { Lmodule.dname = "_ssdm_op_SpecPipeline"; dret = Ltype.Void; dargs = [ Ltype.I32 ] };
          ignore
            (B.call env.b ~ret:Ltype.Void "_ssdm_op_SpecPipeline"
               [ Lvalue.ci32 ii ])
      | Punroll f ->
          need_decl env
            { Lmodule.dname = "_ssdm_op_SpecUnroll"; dret = Ltype.Void; dargs = [ Ltype.I32 ] };
          ignore
            (B.call env.b ~ret:Ltype.Void "_ssdm_op_SpecUnroll"
               [ Lvalue.ci32 f ])
      | _ -> ())
    pragmas;
  (match (init, bound, step) with
  | Eint lo, Eint hi, Eint st when st > 0 ->
      need_decl env
        { Lmodule.dname = "_ssdm_op_SpecLoopTripCount"; dret = Ltype.Void; dargs = [ Ltype.I64 ] };
      ignore
        (B.call env.b ~ret:Ltype.Void "_ssdm_op_SpecLoopTripCount"
           [ Lvalue.ci64 (max 0 ((hi - lo + st - 1) / st)) ])
  | _ -> ());
  let iv = B.load env.b Ltype.I32 slot in
  let bv = coerce env (gen_expr env bound) Ltype.I32 in
  let c = B.icmp env.b Linstr.ISlt iv bv in
  B.condbr env.b c body_l exit;
  B.start_block env.b body_l;
  gen_stmts env body;
  if B.in_block env.b then B.br env.b latch;
  B.start_block env.b latch;
  let iv2 = B.load env.b Ltype.I32 slot in
  let sv = coerce env (gen_expr env step) Ltype.I32 in
  let next = B.ibin env.b Linstr.Add iv2 sv in
  B.store env.b next slot;
  B.br env.b header;
  B.start_block env.b exit;
  (match saved with
  | Some s -> Hashtbl.replace env.syms ivar s
  | None -> Hashtbl.remove env.syms ivar)

(* ------------------------------------------------------------------ *)
(* Functions / file                                                   *)
(* ------------------------------------------------------------------ *)

let gen_func ~sigs (f : Cast.func) : Lmodule.func * Lmodule.decl list =
  let b = B.create () in
  let env =
    { b; syms = Hashtbl.create 32; partitions = []; decls = []; sigs }
  in
  let params =
    List.map
      (fun (p : Cast.param) ->
        let pname = B.fresh_name b p.pname in
        match p.dims with
        | [] -> { Lmodule.pname; pty = scalar_lty p.pty; pattrs = [] }
        | dims ->
            { Lmodule.pname; pty = Ltype.ptr (array_lty p.pty dims); pattrs = [] })
      f.params
  in
  B.start_block b "entry";
  List.iter2
    (fun (p : Cast.param) (lp : Lmodule.param) ->
      match p.dims with
      | [] ->
          (* Clang -O0: spill scalars into allocas *)
          let slot = B.alloca b ~name:(p.pname ^ ".addr") lp.Lmodule.pty in
          B.store b (Lvalue.reg lp.Lmodule.pname lp.Lmodule.pty) slot;
          Hashtbl.replace env.syms p.pname (Scalar slot)
      | _ ->
          Hashtbl.replace env.syms p.pname
            (ArrayRef (Lvalue.reg lp.Lmodule.pname lp.Lmodule.pty)))
    f.params params;
  gen_stmts env f.body;
  if B.in_block b then begin
    if f.ret = Cvoid then B.ret_void b
    else fail "non-void function @%s falls off the end" f.fname
  end;
  let blocks = B.finish b in
  (* apply collected array_partition pragmas to parameters *)
  let params =
    List.map
      (fun (lp : Lmodule.param) ->
        let extra =
          List.concat_map
            (fun p ->
              match p with
              | Ppartition { variable; kind; factor; dim }
                when variable = lp.Lmodule.pname ->
                  [
                    ("fpga.partition.kind", kind);
                    ("fpga.partition.factor", string_of_int factor);
                    ("fpga.partition.dim", string_of_int dim);
                  ]
              | _ -> [])
            env.partitions
        in
        let iface =
          if Ltype.is_pointer lp.Lmodule.pty then
            [ ("fpga.interface", "bram") ]
          else []
        in
        { lp with Lmodule.pattrs = extra @ iface @ lp.Lmodule.pattrs })
      params
  in
  ( {
      Lmodule.fname = f.fname;
      ret_ty = scalar_lty f.ret;
      params;
      blocks;
      fattrs = [];
    },
    env.decls )

(** Compile C source to an LLVM module (Clang-style, pre-optimization). *)
let compile (src : string) : Lmodule.t =
  let file = Cparse.parse_file src in
  (* collect every signature first so calls may reference functions
     defined later in the file *)
  let sigs = Hashtbl.create 8 in
  List.iter
    (fun (f : Cast.func) -> Hashtbl.replace sigs f.fname (f.params, f.ret))
    file;
  let funcs, decls =
    List.fold_left
      (fun (fs, ds) f ->
        let lf, d = gen_func ~sigs f in
        (lf :: fs, d @ ds))
      ([], []) file
  in
  let dedup =
    List.fold_left
      (fun acc (d : Lmodule.decl) ->
        if List.exists (fun (x : Lmodule.decl) -> x.Lmodule.dname = d.Lmodule.dname) acc
        then acc
        else d :: acc)
      [] decls
  in
  { Lmodule.mname = "hlscpp"; funcs = List.rev funcs; globals = []; decls = dedup }
