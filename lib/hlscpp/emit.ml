(** HLS C++ emission from the multi-level IR — the baseline flow's
    first half, modelled after ScaleHLS's [-scalehls-emit-hlscpp].

    Every SSA value becomes a named C variable (one statement per op),
    loop-carried values become mutable locals, and HLS directives
    become [#pragma HLS] lines.  The output is accepted by the mini-C
    front-end ({!Cparse}/{!Ccodegen}), closing the
    MLIR → C++ → (re-parse) → LLVM IR round-trip. *)

open Mhir

let fail = Support.Err.fail ~pass:"hlscpp.emit"

let ctype_of (t : Types.ty) =
  match t with
  | Types.I1 -> "int"
  | Types.I32 -> "int"
  | Types.I64 | Types.Index -> "long"
  | Types.F32 -> "float"
  | Types.F64 -> "double"
  | Types.Memref _ -> fail "memref has no scalar C type"

let vname (v : Ir.value) =
  if v.Ir.hint <> "" then v.Ir.hint else "v" ^ string_of_int (v.Ir.id)

(** C expression for an affine expression over C index expressions. *)
let rec cexpr_of_affine ~dims ~syms (e : Affine_expr.t) : string =
  let sub = cexpr_of_affine ~dims ~syms in
  match e with
  | Affine_expr.Const c -> string_of_int c
  | Affine_expr.Dim i -> List.nth dims i
  | Affine_expr.Sym i -> List.nth syms i
  | Affine_expr.Add (a, b) -> Printf.sprintf "(%s + %s)" (sub a) (sub b)
  | Affine_expr.Mul (a, b) -> Printf.sprintf "(%s * %s)" (sub a) (sub b)
  | Affine_expr.Mod (a, b) -> Printf.sprintf "(%s %% %s)" (sub a) (sub b)
  | Affine_expr.FloorDiv (a, b) -> Printf.sprintf "(%s / %s)" (sub a) (sub b)
  | Affine_expr.CeilDiv (a, b) ->
      Printf.sprintf "((%s + %s - 1) / %s)" (sub a) (sub b) (sub b)

type ctx = {
  buf : Buffer.t;
  mutable indent : int;
  names : (int, string) Hashtbl.t;  (** value id -> C name *)
}

let line ctx fmt =
  Printf.ksprintf
    (fun s ->
      Buffer.add_string ctx.buf (String.make ctx.indent ' ');
      Buffer.add_string ctx.buf s;
      Buffer.add_char ctx.buf '\n')
    fmt

let name_of ctx (v : Ir.value) =
  match Hashtbl.find_opt ctx.names v.Ir.id with
  | Some n -> n
  | None ->
      let n = vname v in
      Hashtbl.replace ctx.names v.Ir.id n;
      n

let float_lit f ty =
  let s = Support.Float_lit.to_string f in
  match ty with Types.F32 -> s ^ "f" | _ -> s

let subscripts ctx map operand_vals =
  let names = List.map (name_of ctx) operand_vals in
  let rec take n l =
    if n = 0 then ([], l)
    else
      match l with
      | x :: tl ->
          let a, b = take (n - 1) tl in
          (x :: a, b)
      | [] -> fail "map operand list too short"
  in
  let dims, syms = take map.Affine_map.num_dims names in
  List.map (cexpr_of_affine ~dims ~syms) map.Affine_map.exprs

let binop_table =
  [
    ("arith.addi", "+"); ("arith.subi", "-"); ("arith.muli", "*");
    ("arith.divsi", "/"); ("arith.remsi", "%"); ("arith.andi", "&");
    ("arith.ori", "|"); ("arith.xori", "^"); ("arith.shli", "<<");
    ("arith.shrsi", ">>"); ("arith.addf", "+"); ("arith.subf", "-");
    ("arith.mulf", "*"); ("arith.divf", "/");
  ]

let cmp_table =
  [ ("eq", "=="); ("ne", "!="); ("slt", "<"); ("sle", "<="); ("sgt", ">");
    ("sge", ">="); ("oeq", "=="); ("one", "!="); ("olt", "<"); ("ole", "<=");
    ("ogt", ">"); ("oge", ">=") ]

let rec emit_ops ctx (ops : Ir.op list) : unit =
  List.iter (emit_op ctx) ops

and emit_op ctx (o : Ir.op) : unit =
  let n k = name_of ctx (List.nth o.Ir.operands k) in
  let def v rhs =
    line ctx "%s %s = %s;" (ctype_of v.Ir.ty) (name_of ctx v) rhs
  in
  match o.Ir.name with
  | "arith.constant" -> (
      let r = List.hd o.Ir.results in
      match Attr.find_exn o.Ir.attrs "value" with
      | Attr.Int i -> def r (string_of_int i)
      | Attr.Float f -> def r (float_lit f r.Ir.ty)
      | a -> fail "bad constant %s" (Attr.to_string a))
  | name when List.mem_assoc name binop_table ->
      def (List.hd o.Ir.results)
        (Printf.sprintf "%s %s %s" (n 0) (List.assoc name binop_table) (n 1))
  (* C has no unsigned-typed locals in this dialect, so unsigned ops and
     floor division print as [__mhls_*] helper calls that the mini-C
     front-end ({!Ccodegen}) recognizes and lowers back to the right
     LLVM instructions. *)
  | "arith.divui" | "arith.remui" | "arith.shrui" | "arith.floordivsi"
  | "arith.maxui" | "arith.minui" ->
      let helper =
        match o.Ir.name with
        | "arith.divui" -> "__mhls_udiv"
        | "arith.remui" -> "__mhls_urem"
        | "arith.shrui" -> "__mhls_lshr"
        | "arith.floordivsi" -> "__mhls_floordiv"
        | "arith.maxui" -> "__mhls_umax"
        | _ -> "__mhls_umin"
      in
      def (List.hd o.Ir.results) (Printf.sprintf "%s(%s, %s)" helper (n 0) (n 1))
  | "arith.negf" -> def (List.hd o.Ir.results) (Printf.sprintf "-%s" (n 0))
  | "arith.maxsi" | "arith.maximumf" ->
      def (List.hd o.Ir.results)
        (Printf.sprintf "%s > %s ? %s : %s" (n 0) (n 1) (n 0) (n 1))
  | "arith.minsi" | "arith.minimumf" ->
      def (List.hd o.Ir.results)
        (Printf.sprintf "%s < %s ? %s : %s" (n 0) (n 1) (n 0) (n 1))
  | "arith.cmpi" | "arith.cmpf" -> (
      let p = Attr.as_str (Attr.find_exn o.Ir.attrs "predicate") in
      match List.assoc_opt p cmp_table with
      | Some c_op ->
          def (List.hd o.Ir.results)
            (Printf.sprintf "%s %s %s" (n 0) c_op (n 1))
      | None ->
          (* unsigned predicates go through helper calls, like the
             unsigned binops above *)
          def (List.hd o.Ir.results)
            (Printf.sprintf "__mhls_%s(%s, %s)" p (n 0) (n 1)))
  | "arith.select" ->
      def (List.hd o.Ir.results)
        (Printf.sprintf "%s ? %s : %s" (n 0) (n 1) (n 2))
  | "arith.index_cast" | "arith.extf" | "arith.truncf" | "arith.sitofp"
  | "arith.fptosi" ->
      let r = List.hd o.Ir.results in
      def r (Printf.sprintf "(%s)%s" (ctype_of r.Ir.ty) (n 0))
  | "affine.apply" ->
      let map = Attr.as_map (Attr.find_exn o.Ir.attrs "map") in
      let subs = subscripts ctx map o.Ir.operands in
      def (List.hd o.Ir.results) (List.hd subs)
  | "affine.load" | "memref.load" ->
      let mem = List.hd o.Ir.operands in
      let subs =
        match o.Ir.name with
        | "affine.load" ->
            subscripts ctx
              (Attr.as_map (Attr.find_exn o.Ir.attrs "map"))
              (List.tl o.Ir.operands)
        | _ -> List.map (name_of ctx) (List.tl o.Ir.operands)
      in
      def (List.hd o.Ir.results)
        (Printf.sprintf "%s%s" (name_of ctx mem)
           (String.concat "" (List.map (Printf.sprintf "[%s]") subs)))
  | "affine.store" | "memref.store" -> (
      match o.Ir.operands with
      | v :: mem :: rest ->
          let subs =
            match o.Ir.name with
            | "affine.store" ->
                subscripts ctx
                  (Attr.as_map (Attr.find_exn o.Ir.attrs "map"))
                  rest
            | _ -> List.map (name_of ctx) rest
          in
          line ctx "%s%s = %s;" (name_of ctx mem)
            (String.concat "" (List.map (Printf.sprintf "[%s]") subs))
            (name_of ctx v)
      | _ -> fail "store: malformed")
  | "memref.alloc" | "memref.alloca" -> (
      let r = List.hd o.Ir.results in
      match r.Ir.ty with
      | Types.Memref (shape, elem) ->
          line ctx "%s %s%s;" (ctype_of elem) (name_of ctx r)
            (String.concat ""
               (List.map (Printf.sprintf "[%d]") shape))
      | _ -> fail "alloc: not a memref")
  | "memref.dealloc" -> ()
  | "affine.for" -> emit_for ctx o
  | "scf.for" -> emit_scf_for ctx o
  | "scf.if" -> emit_if ctx o
  | "func.call" ->
      let callee = Attr.as_str (Attr.find_exn o.Ir.attrs "callee") in
      let args = String.concat ", " (List.map (name_of ctx) o.Ir.operands) in
      (match o.Ir.results with
      | [] -> line ctx "%s(%s);" callee args
      | [ r ] -> def r (Printf.sprintf "%s(%s)" callee args)
      | _ -> fail "call: multiple results unsupported")
  | "func.return" -> (
      match o.Ir.operands with
      | [] -> ()
      | [ v ] -> line ctx "return %s;" (name_of ctx v)
      | _ -> fail "return: multiple values unsupported")
  | "affine.yield" | "scf.yield" -> ()  (* handled by loop emitters *)
  | name -> fail "emit: unhandled op %s" name

and emit_loop_body ctx (o : Ir.op) ~(iv_name : string)
    ~(carry_names : string list) =
  let blk = Ir.entry_block (List.hd o.Ir.regions) in
  let iv, iter_params =
    match blk.Ir.params with
    | iv :: rest -> (iv, rest)
    | [] -> fail "loop without induction variable"
  in
  Hashtbl.replace ctx.names iv.Ir.id iv_name;
  List.iter2
    (fun (p : Ir.value) cn -> Hashtbl.replace ctx.names p.Ir.id cn)
    iter_params carry_names;
  (* pragmas first (must follow the opening brace) *)
  List.iter
    (fun (k, a) ->
      match (k, a) with
      | "hls.pipeline", Attr.Int ii -> line ctx "#pragma HLS pipeline II=%d" ii
      | "hls.pipeline", Attr.Bool true -> line ctx "#pragma HLS pipeline"
      | "hls.unroll", Attr.Int f -> line ctx "#pragma HLS unroll factor=%d" f
      | "hls.unroll", Attr.Bool true -> line ctx "#pragma HLS unroll"
      | _ -> ())
    o.Ir.attrs;
  emit_ops ctx blk.Ir.ops;
  (* carried values update at the end of the body *)
  (match List.rev blk.Ir.ops with
  | last :: _ when last.Ir.name = "affine.yield" || last.Ir.name = "scf.yield"
    ->
      List.iter2
        (fun cn (y : Ir.value) ->
          let yn = name_of ctx y in
          if yn <> cn then line ctx "%s = %s;" cn yn)
        carry_names last.Ir.operands
  | _ -> ())

and emit_for ctx (o : Ir.op) =
  let lb =
    match Affine_map.as_constant (Attr.as_map (Attr.find_exn o.Ir.attrs "lower_map")) with
    | Some c -> c
    | None -> fail "affine.for: symbolic bounds unsupported"
  in
  let ub =
    match Affine_map.as_constant (Attr.as_map (Attr.find_exn o.Ir.attrs "upper_map")) with
    | Some c -> c
    | None -> fail "affine.for: symbolic bounds unsupported"
  in
  let step = Attr.as_int (Attr.find_exn o.Ir.attrs "step") in
  emit_counted_for ctx o ~lb:(string_of_int lb) ~ub:(string_of_int ub)
    ~step ()

and emit_scf_for ctx (o : Ir.op) =
  match o.Ir.operands with
  | lb :: ub :: step :: _ ->
      emit_counted_for ctx
        { o with Ir.operands = List.filteri (fun i _ -> i >= 3) o.Ir.operands }
        ~lb:(name_of ctx lb) ~ub:(name_of ctx ub)
        ~step_expr:(name_of ctx step) ~step:1 ()
  | _ -> fail "scf.for: malformed operands"

and emit_counted_for ctx (o : Ir.op) ?step_expr ~lb ~ub ~step () =
  let blk = Ir.entry_block (List.hd o.Ir.regions) in
  let iv =
    match blk.Ir.params with
    | iv :: _ -> iv
    | [] -> fail "loop without induction variable"
  in
  let iv_name = "i" ^ string_of_int iv.Ir.id in
  (* declare carried locals, initialized from the loop operands *)
  let carry_names =
    List.mapi
      (fun k (init : Ir.value) ->
        let r = List.nth o.Ir.results k in
        let cn = "c" ^ string_of_int r.Ir.id in
        line ctx "%s %s = %s;" (ctype_of r.Ir.ty) cn (name_of ctx init);
        cn)
      o.Ir.operands
  in
  let step_str =
    match step_expr with
    | Some e -> Printf.sprintf "%s += %s" iv_name e
    | None ->
        if step = 1 then iv_name ^ "++"
        else Printf.sprintf "%s += %d" iv_name step
  in
  line ctx "for (int %s = %s; %s < %s; %s) {" iv_name lb iv_name ub step_str;
  ctx.indent <- ctx.indent + 2;
  emit_loop_body ctx o ~iv_name ~carry_names;
  ctx.indent <- ctx.indent - 2;
  line ctx "}";
  (* loop results are the carried locals *)
  List.iteri
    (fun k (r : Ir.value) ->
      Hashtbl.replace ctx.names r.Ir.id (List.nth carry_names k))
    o.Ir.results

and emit_if ctx (o : Ir.op) =
  let cond = name_of ctx (List.hd o.Ir.operands) in
  (* declare result variables *)
  let res_names =
    List.map
      (fun (r : Ir.value) ->
        let rn = "r" ^ string_of_int r.Ir.id in
        line ctx "%s %s = 0;" (ctype_of r.Ir.ty) rn;
        Hashtbl.replace ctx.names r.Ir.id rn;
        rn)
      o.Ir.results
  in
  let emit_branch (r : Ir.region) =
    let blk = Ir.entry_block r in
    ctx.indent <- ctx.indent + 2;
    emit_ops ctx blk.Ir.ops;
    (match List.rev blk.Ir.ops with
    | last :: _ when last.Ir.name = "scf.yield" ->
        List.iter2
          (fun rn (y : Ir.value) -> line ctx "%s = %s;" rn (name_of ctx y))
          res_names last.Ir.operands
    | _ -> ());
    ctx.indent <- ctx.indent - 2
  in
  line ctx "if (%s) {" cond;
  emit_branch (List.nth o.Ir.regions 0);
  let else_blk = Ir.entry_block (List.nth o.Ir.regions 1) in
  if List.length else_blk.Ir.ops > 1 || o.Ir.results <> [] then begin
    line ctx "} else {";
    emit_branch (List.nth o.Ir.regions 1)
  end;
  line ctx "}"

(** Emit one function as HLS C++. *)
let emit_func (f : Ir.func) : string =
  let ctx = { buf = Buffer.create 1024; indent = 0; names = Hashtbl.create 64 } in
  let params =
    List.map
      (fun (v : Ir.value) ->
        let pname = if v.Ir.hint <> "" then v.Ir.hint else "a" ^ string_of_int v.Ir.id in
        Hashtbl.replace ctx.names v.Ir.id pname;
        match v.Ir.ty with
        | Types.Memref (shape, elem) ->
            Printf.sprintf "%s %s%s" (ctype_of elem) pname
              (String.concat "" (List.map (Printf.sprintf "[%d]") shape))
        | t -> Printf.sprintf "%s %s" (ctype_of t) pname)
      f.Ir.args
  in
  let ret =
    match f.Ir.ret_tys with
    | [] -> "void"
    | [ t ] -> ctype_of t
    | _ -> fail "multiple return values unsupported in C"
  in
  line ctx "%s %s(%s) {" ret f.Ir.fname (String.concat ", " params);
  ctx.indent <- 2;
  (* array partition / interface pragmas from function attributes *)
  List.iter
    (fun (k, a) ->
      let prefix = "hls.partition." in
      if String.length k > String.length prefix
         && String.sub k 0 (String.length prefix) = prefix
      then
        let var = String.sub k (String.length prefix) (String.length k - String.length prefix) in
        match a with
        | Attr.List [ Attr.Str kind; Attr.Int factor; Attr.Int dim ] ->
            line ctx "#pragma HLS array_partition variable=%s %s factor=%d dim=%d"
              var kind factor dim
        | Attr.Str spec -> (
            (* "kind:factor:dim" encoding used by the kernel builders *)
            match String.split_on_char ':' spec with
            | [ kind; factor; dim ] ->
                line ctx
                  "#pragma HLS array_partition variable=%s %s factor=%s dim=%s"
                  var kind factor dim
            | _ -> ())
        | _ -> ())
    f.Ir.fattrs;
  emit_ops ctx (Ir.entry_block f.Ir.body).Ir.ops;
  ctx.indent <- 0;
  line ctx "}";
  Buffer.contents ctx.buf

let emit_module (m : Ir.modul) : string =
  "// Generated by the MLIR HLS C++ emitter (baseline flow)\n\n"
  ^ String.concat "\n" (List.map emit_func m.Ir.funcs)
