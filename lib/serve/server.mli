(** The [mhlsc serve] daemon loop: a single-threaded select reactor
    providing admission control (bounded queue, [busy] rejection),
    request coalescing (identical queued or in-flight requests share
    one evaluation), response memoization, concurrent group evaluation
    on an injected executor with per-kind budgets and round-robin
    fairness, cancellation of groups whose waiters all disconnected,
    soft resident-memory shedding, and per-kind latency statistics
    over bounded rings.  All compiler knowledge is injected through
    the {!dispatch} callback, so this module depends only on
    {!Protocol}. *)

(** How one request becomes a payload.  The hook receives pass events
    for streaming clients; implementations should forward it into the
    flows they run.  Under a concurrent executor the dispatcher runs
    on worker domains — it must be safe to call from several domains
    at once. *)
type dispatch =
  trace:Support.Tracing.hook ->
  Protocol.request ->
  (Protocol.payload, Support.Diag.t list) result

type config = {
  socket_path : string option;  (** Unix-domain listener *)
  tcp_port : int option;  (** loopback TCP listener *)
  queue_max : int;  (** admission-control bound *)
  budgets : (string * int) list;
      (** per-kind concurrent-evaluation bounds (clamped to ≥ 1);
          kinds not listed get [default_budget] *)
  default_budget : int;
  max_rss_mb : int option;
      (** soft resident-memory cap: above it the response memo and
          latency rings are shed after a completion *)
  log : string -> unit;  (** daemon-side progress lines *)
}

(** [mhlsc.sock], no TCP, queue bound 64, budgets [dse=1, fuzz=1]
    (default 4), no memory cap, silent. *)
val default_config : config

(** Run the daemon until a [shutdown] request arrives; raises
    [Invalid_argument] if the config names no listener at all.
    [counters] reports the driver result-cache (hits, misses) for
    [stats]; [ready] fires once the listeners are bound (tests and
    scripts use it to know when to connect); [exec] runs one group
    evaluation on a worker ({!Mhls_driver.Driver.background} in the
    real daemon) and returns [false] to decline, in which case the
    reactor evaluates inline — the default reproduces the old
    sequential drain.  Returns [Error] carrying an
    {!Protocol.rule_socket_in_use} diagnostic, without unlinking
    anything, when the socket path is owned by a live daemon; stale
    leftover sockets are removed and startup proceeds.  On [Ok]
    return the listeners are closed and the socket file removed. *)
val serve :
  ?config:config ->
  ?counters:(unit -> int * int) ->
  ?ready:(unit -> unit) ->
  ?exec:((unit -> unit) -> bool) ->
  dispatch:dispatch ->
  unit ->
  (unit, Support.Diag.t list) result
