(** The [mhlsc serve] daemon loop: a single-threaded select reactor
    providing admission control (bounded queue, [busy] rejection),
    request coalescing (identical in-flight requests share one
    evaluation), response memoization and per-kind latency statistics.
    All compiler knowledge is injected through the {!dispatch}
    callback, so this module depends only on {!Protocol}. *)

(** How one request becomes a payload.  The hook receives pass events
    for streaming clients; implementations should forward it into the
    flows they run. *)
type dispatch =
  trace:Support.Tracing.hook ->
  Protocol.request ->
  (Protocol.payload, Support.Diag.t list) result

type config = {
  socket_path : string option;  (** Unix-domain listener *)
  tcp_port : int option;  (** loopback TCP listener *)
  queue_max : int;  (** admission-control bound *)
  log : string -> unit;  (** daemon-side progress lines *)
}

(** [mhlsc.sock], no TCP, queue bound 64, silent. *)
val default_config : config

(** Run the daemon until a [shutdown] request arrives; raises
    [Invalid_argument] if the config names no listener at all.
    [counters] reports the driver result-cache (hits, misses) for
    [stats]; [ready] fires once the listeners are bound (tests and
    scripts use it to know when to connect).  On return the listeners
    are closed and the socket file removed. *)
val serve :
  ?config:config ->
  ?counters:(unit -> int * int) ->
  ?ready:(unit -> unit) ->
  dispatch:dispatch ->
  unit ->
  unit
