(** The serve protocol, schema v1: typed request / response / event
    variants with a two-way JSON codec and length-prefixed wire
    framing.

    This module is the {e single} definition of every job the compiler
    can run as a service — the CLI handlers ([Mhls_cli.Handlers]) and
    the daemon dispatcher both consume these types, so the two surfaces
    cannot drift.  Errors are carried as {!Support.Diag.t} lists (the
    unified result convention), never free-form strings; protocol-level
    failures (unparseable frame, unknown kind) use rule [HLS905].

    Wire format: each frame is a 4-byte big-endian byte length followed
    by one JSON document.  Three frame shapes, discriminated by the
    ["frame"] field:

    - [{"v":1,"frame":"request","id":N,"stream":B,"kind":K,...}]
    - [{"v":1,"frame":"response","id":N,"status":"ok"|"error"|"busy",...}]
    - [{"v":1,"frame":"event","id":N,"stage":S,"pass":P,...}]

    Responses and events carry the id of the request they answer, so a
    client may pipeline several requests over one connection. *)

module Diag = Support.Diag
module Json = Support.Json

(** Schema version stamped into (and checked on) every frame. *)
let version = 1

(** Rule ID for protocol-level failures (malformed frame, unknown
    kind, missing field, admission rejection). *)
let rule_protocol = "HLS905"

(** Rule ID for a refused daemon startup: the requested socket path is
    owned by a {e live} daemon (it accepted a probe connection), so
    unlinking it would hijack that daemon's clients. *)
let rule_socket_in_use = "HLS906"

let protocol_error fmt = Diag.error ~rule:rule_protocol fmt

(** Reserved response id for errors that cannot be attributed to any
    request — a malformed frame (no parseable id) or a client-sent
    response/event frame.  Real request ids are non-negative; the
    server echoes a request's own id otherwise, so a client seeing
    [sentinel_id] knows the error is connection-level, not a reply to
    anything it sent. *)
let sentinel_id = -1

(* ------------------------------------------------------------------ *)
(* Requests                                                           *)
(* ------------------------------------------------------------------ *)

(** Directive configuration, mirroring [Workloads.Kernels.directives]
    structurally so the protocol layer needs no kernel knowledge. *)
type directives = {
  d_ii : int option;  (** pipeline target II; [None] disables *)
  d_unroll : int option;
  d_strategy : string;  (** ["inner"] | ["middle"] *)
  d_partitions : (string * string * int * int) list;
      (** (array, kind, factor, dim) *)
}

let no_directives =
  { d_ii = Some 1; d_unroll = None; d_strategy = "inner"; d_partitions = [] }

type compile_req = {
  c_kernel : string;
  c_flow : string;  (** ["direct"] | ["cpp"] *)
  c_sched : string;  (** ["static"] | ["dynamic"] *)
  c_directives : directives;
  c_clock_ns : float;
  c_passes : string list option;  (** exact adaptor pipeline, if given *)
  c_disable : string list;
}

type lint_req = {
  l_kernel : string option;  (** built-in kernel… *)
  l_source : string option;  (** …or raw IR text (exactly one) *)
  l_directives : directives;
  l_rules : string list option;
  l_werror : bool;
  l_top : string option;
  l_passes : string list option;
  l_disable : string list;
}

type opt_req = {
  op_source : string option;  (** raw IR text… *)
  op_synth : int option;  (** …or a generated N-function module *)
  op_passes : string list option;
  op_parallel : bool;
  op_jobs : int;
  op_parsafe : bool;  (** only run the parallel-safety checker *)
  op_json : bool;  (** with [op_parsafe]: JSON verdict *)
}

type dse_req = {
  ds_kernel : string;
  ds_sched : string;  (** ["static"] | ["dynamic"] | ["both"] *)
  ds_max_evals : int option;
  ds_rounds : int option;
  ds_stable : int option;
  ds_budget_bram : int option;
  ds_budget_dsp : int option;
  ds_budget_lut : int option;
  ds_clock_ns : float;
}

type fuzz_req = {
  f_seed : int;
  f_count : int;
  f_stages : string list;
  f_shrink : bool;
  f_jobs : int;
}

type request =
  | Compile of compile_req
  | Lint of lint_req
  | Opt of opt_req
  | Dse of dse_req
  | Fuzz of fuzz_req
  | List_kernels
  | Stats
  | Ping
  | Shutdown

let request_kind = function
  | Compile _ -> "compile"
  | Lint _ -> "lint"
  | Opt _ -> "opt"
  | Dse _ -> "dse"
  | Fuzz _ -> "fuzz"
  | List_kernels -> "list"
  | Stats -> "stats"
  | Ping -> "ping"
  | Shutdown -> "shutdown"

(* ------------------------------------------------------------------ *)
(* Responses                                                          *)
(* ------------------------------------------------------------------ *)

type compile_resp = {
  cr_kernel : string;
  cr_flow : string;  (** canonical flow name, e.g. ["direct-ir"] *)
  cr_latency : int;
  cr_ii : int;
  cr_bram : int;
  cr_dsp : int;
  cr_lut : int;
  cr_seconds : float;  (** front-end compile seconds (original run) *)
  cr_from_cache : bool;  (** served by the driver's result cache *)
  cr_adaptor : string option;  (** rendered adaptor report *)
  cr_report : string;  (** rendered synthesis report (deterministic) *)
}

type lint_resp = { lr_diags : Diag.t list }

type opt_resp = {
  or_ir : string;  (** optimized module text (empty under [op_parsafe]) *)
  or_passes : int;
  or_seconds : float;
  or_par_status : string option;
  or_verdict : string option;  (** rendered Parsafe verdict *)
  or_safe : bool;
}

type dse_resp = {
  dr_report : string;  (** rendered frontier + search statistics *)
  dr_best : (string * int) option;  (** label, latency *)
  dr_json : string;  (** versioned dse.json export *)
}

type fuzz_resp = { fr_report : string; fr_failures : int }

type kernel_info = { k_name : string; k_description : string }

type latency_stat = {
  ls_kind : string;
  ls_count : int;
  ls_p50_ms : float;
  ls_p99_ms : float;
}

type stats_resp = {
  st_served : int;  (** responses sent (excluding busy rejections) *)
  st_evaluated : int;  (** dispatcher evaluations actually run *)
  st_coalesced : int;  (** requests that shared an in-flight evaluation *)
  st_memo_hits : int;  (** requests served from the response memo *)
  st_busy : int;  (** admission rejections *)
  st_cache_hits : int;  (** driver result-cache hits (session-wide) *)
  st_cache_misses : int;
  st_queue_depth : int;  (** pending requests at the time of answering *)
  st_queue_max : int;  (** admission-control bound *)
  st_inflight : int;  (** groups currently evaluating on the pool *)
  st_running : (string * int) list;
      (** in-flight groups per kind, sorted by kind (only kinds > 0) *)
  st_cancelled : int;
      (** queued groups dropped because every waiter disconnected *)
  st_shed : int;  (** memo/ring shed events under [--max-rss-mb] *)
  st_latency : latency_stat list;  (** per job kind, sorted by kind *)
}

type payload =
  | R_compile of compile_resp
  | R_lint of lint_resp
  | R_opt of opt_resp
  | R_dse of dse_resp
  | R_fuzz of fuzz_resp
  | R_list of kernel_info list
  | R_stats of stats_resp
  | R_pong
  | R_shutdown

let payload_kind = function
  | R_compile _ -> "compile"
  | R_lint _ -> "lint"
  | R_opt _ -> "opt"
  | R_dse _ -> "dse"
  | R_fuzz _ -> "fuzz"
  | R_list _ -> "list"
  | R_stats _ -> "stats"
  | R_pong -> "ping"
  | R_shutdown -> "shutdown"

(** How one request was answered. *)
type reply =
  | Done of payload
  | Failed of Diag.t list
  | Busy of int  (** rejected by admission control; carries queue depth *)

type event = {
  e_id : int;
  e_stage : string;
  e_pass : string;
  e_seconds : float;
  e_before : int;
  e_after : int;
}

type frame =
  | Request of { q_id : int; q_stream : bool; q_req : request }
  | Response of { r_id : int; r_reply : reply }
  | Event of event

(* ------------------------------------------------------------------ *)
(* Encoding                                                           *)
(* ------------------------------------------------------------------ *)

let opt_int = function None -> Json.Null | Some i -> Json.Int i
let opt_str = function None -> Json.Null | Some s -> Json.Str s

let opt_str_list = function
  | None -> Json.Null
  | Some xs -> Json.List (List.map (fun s -> Json.Str s) xs)

let str_list xs = Json.List (List.map (fun s -> Json.Str s) xs)

let directives_to_json (d : directives) : Json.t =
  Json.Obj
    [
      ("ii", opt_int d.d_ii);
      ("unroll", opt_int d.d_unroll);
      ("strategy", Json.Str d.d_strategy);
      ( "partitions",
        Json.List
          (List.map
             (fun (a, kind, f, dim) ->
               Json.List
                 [ Json.Str a; Json.Str kind; Json.Int f; Json.Int dim ])
             d.d_partitions) );
    ]

let request_fields : request -> (string * Json.t) list = function
  | Compile c ->
      [
        ("kernel", Json.Str c.c_kernel);
        ("flow", Json.Str c.c_flow);
        ("sched", Json.Str c.c_sched);
        ("directives", directives_to_json c.c_directives);
        ("clock_ns", Json.Float c.c_clock_ns);
        ("passes", opt_str_list c.c_passes);
        ("disable", str_list c.c_disable);
      ]
  | Lint l ->
      [
        ("kernel", opt_str l.l_kernel);
        ("source", opt_str l.l_source);
        ("directives", directives_to_json l.l_directives);
        ("rules", opt_str_list l.l_rules);
        ("werror", Json.Bool l.l_werror);
        ("top", opt_str l.l_top);
        ("passes", opt_str_list l.l_passes);
        ("disable", str_list l.l_disable);
      ]
  | Opt o ->
      [
        ("source", opt_str o.op_source);
        ("synth", opt_int o.op_synth);
        ("passes", opt_str_list o.op_passes);
        ("parallel", Json.Bool o.op_parallel);
        ("jobs", Json.Int o.op_jobs);
        ("parsafe", Json.Bool o.op_parsafe);
        ("json", Json.Bool o.op_json);
      ]
  | Dse d ->
      [
        ("kernel", Json.Str d.ds_kernel);
        ("sched", Json.Str d.ds_sched);
        ("max_evals", opt_int d.ds_max_evals);
        ("rounds", opt_int d.ds_rounds);
        ("stable_rounds", opt_int d.ds_stable);
        ("budget_bram", opt_int d.ds_budget_bram);
        ("budget_dsp", opt_int d.ds_budget_dsp);
        ("budget_lut", opt_int d.ds_budget_lut);
        ("clock_ns", Json.Float d.ds_clock_ns);
      ]
  | Fuzz f ->
      [
        ("seed", Json.Int f.f_seed);
        ("count", Json.Int f.f_count);
        ("stages", str_list f.f_stages);
        ("shrink", Json.Bool f.f_shrink);
        ("jobs", Json.Int f.f_jobs);
      ]
  | List_kernels | Stats | Ping | Shutdown -> []

(** The request object alone (no frame envelope) — what [mhlsc client
    --request] accepts and what {!request_key} canonicalizes. *)
let request_to_json (r : request) : Json.t =
  Json.Obj (("kind", Json.Str (request_kind r)) :: request_fields r)

let diag_to_json (d : Diag.t) : Json.t =
  Json.Obj
    [
      ("rule", Json.Str d.Diag.rule);
      ("severity", Json.Str (Diag.severity_name d.Diag.severity));
      ("function", opt_str d.Diag.func);
      ("location", opt_str d.Diag.location);
      ("message", Json.Str d.Diag.message);
      ("hint", opt_str d.Diag.hint);
    ]

let payload_fields : payload -> (string * Json.t) list = function
  | R_compile r ->
      [
        ("kernel", Json.Str r.cr_kernel);
        ("flow", Json.Str r.cr_flow);
        ("latency", Json.Int r.cr_latency);
        ("ii", Json.Int r.cr_ii);
        ("bram", Json.Int r.cr_bram);
        ("dsp", Json.Int r.cr_dsp);
        ("lut", Json.Int r.cr_lut);
        ("seconds", Json.Float r.cr_seconds);
        ("from_cache", Json.Bool r.cr_from_cache);
        ("adaptor", opt_str r.cr_adaptor);
        ("report", Json.Str r.cr_report);
      ]
  | R_lint r ->
      [ ("diagnostics", Json.List (List.map diag_to_json r.lr_diags)) ]
  | R_opt r ->
      [
        ("ir", Json.Str r.or_ir);
        ("passes", Json.Int r.or_passes);
        ("seconds", Json.Float r.or_seconds);
        ("par_status", opt_str r.or_par_status);
        ("verdict", opt_str r.or_verdict);
        ("safe", Json.Bool r.or_safe);
      ]
  | R_dse r ->
      [
        ("report", Json.Str r.dr_report);
        ( "best",
          match r.dr_best with
          | None -> Json.Null
          | Some (label, latency) ->
              Json.Obj
                [ ("label", Json.Str label); ("latency", Json.Int latency) ]
        );
        ("dse_json", Json.Str r.dr_json);
      ]
  | R_fuzz r ->
      [
        ("report", Json.Str r.fr_report);
        ("failures", Json.Int r.fr_failures);
      ]
  | R_list ks ->
      [
        ( "kernels",
          Json.List
            (List.map
               (fun k ->
                 Json.Obj
                   [
                     ("name", Json.Str k.k_name);
                     ("description", Json.Str k.k_description);
                   ])
               ks) );
      ]
  | R_stats s ->
      [
        ("served", Json.Int s.st_served);
        ("evaluated", Json.Int s.st_evaluated);
        ("coalesced", Json.Int s.st_coalesced);
        ("memo_hits", Json.Int s.st_memo_hits);
        ("busy", Json.Int s.st_busy);
        ("cache_hits", Json.Int s.st_cache_hits);
        ("cache_misses", Json.Int s.st_cache_misses);
        ("queue_depth", Json.Int s.st_queue_depth);
        ("queue_max", Json.Int s.st_queue_max);
        ("inflight", Json.Int s.st_inflight);
        ( "running",
          Json.List
            (List.map
               (fun (kind, n) ->
                 Json.Obj [ ("kind", Json.Str kind); ("n", Json.Int n) ])
               s.st_running) );
        ("cancelled", Json.Int s.st_cancelled);
        ("shed", Json.Int s.st_shed);
        ( "latency",
          Json.List
            (List.map
               (fun l ->
                 Json.Obj
                   [
                     ("kind", Json.Str l.ls_kind);
                     ("count", Json.Int l.ls_count);
                     ("p50_ms", Json.Float l.ls_p50_ms);
                     ("p99_ms", Json.Float l.ls_p99_ms);
                   ])
               s.st_latency) );
      ]
  | R_pong | R_shutdown -> []

let payload_to_json (p : payload) : Json.t =
  Json.Obj (("kind", Json.Str (payload_kind p)) :: payload_fields p)

let frame_to_json : frame -> Json.t = function
  | Request { q_id; q_stream; q_req } ->
      Json.Obj
        (("v", Json.Int version)
        :: ("frame", Json.Str "request")
        :: ("id", Json.Int q_id)
        :: ("stream", Json.Bool q_stream)
        :: ("kind", Json.Str (request_kind q_req))
        :: request_fields q_req)
  | Response { r_id; r_reply } -> (
      let base =
        [
          ("v", Json.Int version);
          ("frame", Json.Str "response");
          ("id", Json.Int r_id);
        ]
      in
      match r_reply with
      | Done p ->
          Json.Obj
            (base
            @ [
                ("status", Json.Str "ok");
                ("kind", Json.Str (payload_kind p));
                ("payload", Json.Obj (payload_fields p));
              ])
      | Failed ds ->
          Json.Obj
            (base
            @ [
                ("status", Json.Str "error");
                ("diagnostics", Json.List (List.map diag_to_json ds));
              ])
      | Busy depth ->
          Json.Obj
            (base
            @ [ ("status", Json.Str "busy"); ("queue_depth", Json.Int depth) ]
            ))
  | Event e ->
      Json.Obj
        [
          ("v", Json.Int version);
          ("frame", Json.Str "event");
          ("id", Json.Int e.e_id);
          ("stage", Json.Str e.e_stage);
          ("pass", Json.Str e.e_pass);
          ("seconds", Json.Float e.e_seconds);
          ("before", Json.Int e.e_before);
          ("after", Json.Int e.e_after);
        ]

(* ------------------------------------------------------------------ *)
(* Decoding                                                           *)
(* ------------------------------------------------------------------ *)

let get_str name j =
  match Json.str_member name j with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "missing string field '%s'" name)

let get_opt_str name j =
  match Json.member name j with
  | None | Some Json.Null -> Ok None
  | Some (Json.Str s) -> Ok (Some s)
  | Some _ -> Error (Printf.sprintf "field '%s' must be a string" name)

let get_opt_int name j =
  match Json.member name j with
  | None | Some Json.Null -> Ok None
  | Some (Json.Int i) -> Ok (Some i)
  | Some _ -> Error (Printf.sprintf "field '%s' must be an integer" name)

let get_int ~default name j =
  match get_opt_int name j with
  | Ok None -> Ok default
  | Ok (Some i) -> Ok i
  | Error e -> Error e

let get_bool ~default name j =
  match Json.member name j with
  | None | Some Json.Null -> Ok default
  | Some (Json.Bool b) -> Ok b
  | Some _ -> Error (Printf.sprintf "field '%s' must be a boolean" name)

let get_float ~default name j =
  match Json.member name j with
  | None | Some Json.Null -> Ok default
  | Some v -> (
      match Json.to_float v with
      | Some f -> Ok f
      | None -> Error (Printf.sprintf "field '%s' must be a number" name))

let get_str_list ~default name j =
  match Json.member name j with
  | None | Some Json.Null -> Ok default
  | Some (Json.List xs) ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | Json.Str s :: rest -> go (s :: acc) rest
        | _ -> Error (Printf.sprintf "field '%s' must be a string list" name)
      in
      go [] xs
  | Some _ -> Error (Printf.sprintf "field '%s' must be a string list" name)

let get_opt_str_list name j =
  match Json.member name j with
  | None | Some Json.Null -> Ok None
  | Some _ -> (
      match get_str_list ~default:[] name j with
      | Ok xs -> Ok (Some xs)
      | Error e -> Error e)

let ( let* ) = Result.bind

let directives_of_json (j : Json.t) : (directives, string) result =
  match j with
  | Json.Null -> Ok no_directives
  | Json.Obj _ ->
      let* d_ii = get_opt_int "ii" j in
      let* d_unroll = get_opt_int "unroll" j in
      let* d_strategy =
        match get_opt_str "strategy" j with
        | Ok None -> Ok "inner"
        | Ok (Some s) -> Ok s
        | Error e -> Error e
      in
      let* d_partitions =
        match Json.member "partitions" j with
        | None | Some Json.Null -> Ok []
        | Some (Json.List xs) ->
            let rec go acc = function
              | [] -> Ok (List.rev acc)
              | Json.List
                  [ Json.Str a; Json.Str kind; Json.Int f; Json.Int dim ]
                :: rest ->
                  go ((a, kind, f, dim) :: acc) rest
              | _ ->
                  Error
                    "partitions entries must be [array, kind, factor, dim]"
            in
            go [] xs
        | Some _ -> Error "field 'partitions' must be a list"
      in
      Ok { d_ii; d_unroll; d_strategy; d_partitions }
  | _ -> Error "field 'directives' must be an object"

let directives_member (j : Json.t) : (directives, string) result =
  match Json.member "directives" j with
  | None -> Ok no_directives
  | Some d -> directives_of_json d

(** Decode a request object ([{"kind": ..., ...}], no frame
    envelope).  Missing optional fields take their defaults, so
    hand-written client JSON stays short. *)
let request_of_json (j : Json.t) : (request, string) result =
  let* kind = get_str "kind" j in
  match kind with
  | "compile" ->
      let* c_kernel = get_str "kernel" j in
      let* c_flow =
        match get_opt_str "flow" j with
        | Ok None -> Ok "direct"
        | Ok (Some f) -> Ok f
        | Error e -> Error e
      in
      let* c_sched =
        (* lenient default keeps pre-1.6 schema-v1 encodings valid *)
        match get_opt_str "sched" j with
        | Ok None -> Ok "static"
        | Ok (Some s) -> Ok s
        | Error e -> Error e
      in
      let* c_directives = directives_member j in
      let* c_clock_ns = get_float ~default:10.0 "clock_ns" j in
      let* c_passes = get_opt_str_list "passes" j in
      let* c_disable = get_str_list ~default:[] "disable" j in
      Ok
        (Compile
           { c_kernel; c_flow; c_sched; c_directives; c_clock_ns; c_passes;
             c_disable })
  | "lint" ->
      let* l_kernel = get_opt_str "kernel" j in
      let* l_source = get_opt_str "source" j in
      let* l_directives = directives_member j in
      let* l_rules = get_opt_str_list "rules" j in
      let* l_werror = get_bool ~default:false "werror" j in
      let* l_top = get_opt_str "top" j in
      let* l_passes = get_opt_str_list "passes" j in
      let* l_disable = get_str_list ~default:[] "disable" j in
      Ok
        (Lint
           { l_kernel; l_source; l_directives; l_rules; l_werror; l_top;
             l_passes; l_disable })
  | "opt" ->
      let* op_source = get_opt_str "source" j in
      let* op_synth = get_opt_int "synth" j in
      let* op_passes = get_opt_str_list "passes" j in
      let* op_parallel = get_bool ~default:false "parallel" j in
      let* op_jobs = get_int ~default:1 "jobs" j in
      let* op_parsafe = get_bool ~default:false "parsafe" j in
      let* op_json = get_bool ~default:false "json" j in
      Ok
        (Opt
           { op_source; op_synth; op_passes; op_parallel; op_jobs;
             op_parsafe; op_json })
  | "dse" ->
      let* ds_kernel = get_str "kernel" j in
      let* ds_sched =
        match get_opt_str "sched" j with
        | Ok None -> Ok "static"
        | Ok (Some s) -> Ok s
        | Error e -> Error e
      in
      let* ds_max_evals = get_opt_int "max_evals" j in
      let* ds_rounds = get_opt_int "rounds" j in
      let* ds_stable = get_opt_int "stable_rounds" j in
      let* ds_budget_bram = get_opt_int "budget_bram" j in
      let* ds_budget_dsp = get_opt_int "budget_dsp" j in
      let* ds_budget_lut = get_opt_int "budget_lut" j in
      let* ds_clock_ns = get_float ~default:10.0 "clock_ns" j in
      Ok
        (Dse
           { ds_kernel; ds_sched; ds_max_evals; ds_rounds; ds_stable;
             ds_budget_bram; ds_budget_dsp; ds_budget_lut; ds_clock_ns })
  | "fuzz" ->
      let* f_seed = get_int ~default:42 "seed" j in
      let* f_count = get_int ~default:200 "count" j in
      let* f_stages =
        get_str_list ~default:[ "lower"; "adapted"; "cpp" ] "stages" j
      in
      let* f_shrink = get_bool ~default:true "shrink" j in
      let* f_jobs = get_int ~default:1 "jobs" j in
      Ok (Fuzz { f_seed; f_count; f_stages; f_shrink; f_jobs })
  | "list" -> Ok List_kernels
  | "stats" -> Ok Stats
  | "ping" -> Ok Ping
  | "shutdown" -> Ok Shutdown
  | k -> Error (Printf.sprintf "unknown request kind '%s'" k)

let severity_of_name = function
  | "note" -> Ok Diag.Note
  | "warning" -> Ok Diag.Warning
  | "error" -> Ok Diag.Error
  | s -> Error (Printf.sprintf "unknown severity '%s'" s)

let diag_of_json (j : Json.t) : (Diag.t, string) result =
  let* rule = get_str "rule" j in
  let* sev_name = get_str "severity" j in
  let* severity = severity_of_name sev_name in
  let* func = get_opt_str "function" j in
  let* location = get_opt_str "location" j in
  let* message = get_str "message" j in
  let* hint = get_opt_str "hint" j in
  Ok { Diag.rule; severity; func; location; message; hint }

let diags_of_json (j : Json.t) name : (Diag.t list, string) result =
  match Json.member name j with
  | Some (Json.List xs) ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | x :: rest -> (
            match diag_of_json x with
            | Ok d -> go (d :: acc) rest
            | Error e -> Error e)
      in
      go [] xs
  | _ -> Error (Printf.sprintf "missing diagnostics list '%s'" name)

let payload_of_json ~(kind : string) (j : Json.t) :
    (payload, string) result =
  match kind with
  | "compile" ->
      let* cr_kernel = get_str "kernel" j in
      let* cr_flow = get_str "flow" j in
      let* cr_latency = get_int ~default:0 "latency" j in
      let* cr_ii = get_int ~default:0 "ii" j in
      let* cr_bram = get_int ~default:0 "bram" j in
      let* cr_dsp = get_int ~default:0 "dsp" j in
      let* cr_lut = get_int ~default:0 "lut" j in
      let* cr_seconds = get_float ~default:0.0 "seconds" j in
      let* cr_from_cache = get_bool ~default:false "from_cache" j in
      let* cr_adaptor = get_opt_str "adaptor" j in
      let* cr_report = get_str "report" j in
      Ok
        (R_compile
           { cr_kernel; cr_flow; cr_latency; cr_ii; cr_bram; cr_dsp; cr_lut;
             cr_seconds; cr_from_cache; cr_adaptor; cr_report })
  | "lint" ->
      let* lr_diags = diags_of_json j "diagnostics" in
      Ok (R_lint { lr_diags })
  | "opt" ->
      let* or_ir = get_str "ir" j in
      let* or_passes = get_int ~default:0 "passes" j in
      let* or_seconds = get_float ~default:0.0 "seconds" j in
      let* or_par_status = get_opt_str "par_status" j in
      let* or_verdict = get_opt_str "verdict" j in
      let* or_safe = get_bool ~default:true "safe" j in
      Ok
        (R_opt
           { or_ir; or_passes; or_seconds; or_par_status; or_verdict; or_safe })
  | "dse" ->
      let* dr_report = get_str "report" j in
      let* dr_best =
        match Json.member "best" j with
        | None | Some Json.Null -> Ok None
        | Some b ->
            let* label = get_str "label" b in
            let* latency = get_int ~default:0 "latency" b in
            Ok (Some (label, latency))
      in
      let* dr_json = get_str "dse_json" j in
      Ok (R_dse { dr_report; dr_best; dr_json })
  | "fuzz" ->
      let* fr_report = get_str "report" j in
      let* fr_failures = get_int ~default:0 "failures" j in
      Ok (R_fuzz { fr_report; fr_failures })
  | "list" -> (
      match Json.member "kernels" j with
      | Some (Json.List xs) ->
          let rec go acc = function
            | [] -> Ok (R_list (List.rev acc))
            | x :: rest ->
                let* k_name = get_str "name" x in
                let* k_description = get_str "description" x in
                go ({ k_name; k_description } :: acc) rest
          in
          go [] xs
      | _ -> Error "missing 'kernels' list")
  | "stats" ->
      let* st_served = get_int ~default:0 "served" j in
      let* st_evaluated = get_int ~default:0 "evaluated" j in
      let* st_coalesced = get_int ~default:0 "coalesced" j in
      let* st_memo_hits = get_int ~default:0 "memo_hits" j in
      let* st_busy = get_int ~default:0 "busy" j in
      let* st_cache_hits = get_int ~default:0 "cache_hits" j in
      let* st_cache_misses = get_int ~default:0 "cache_misses" j in
      let* st_queue_depth = get_int ~default:0 "queue_depth" j in
      let* st_queue_max = get_int ~default:0 "queue_max" j in
      (* The concurrency fields postdate schema v1's first release;
         absent means zero, keeping old daemons readable. *)
      let* st_inflight = get_int ~default:0 "inflight" j in
      let* st_running =
        match Json.member "running" j with
        | None | Some Json.Null -> Ok []
        | Some (Json.List xs) ->
            let rec go acc = function
              | [] -> Ok (List.rev acc)
              | x :: rest ->
                  let* kind = get_str "kind" x in
                  let* n = get_int ~default:0 "n" x in
                  go ((kind, n) :: acc) rest
            in
            go [] xs
        | Some _ -> Error "field 'running' must be a list"
      in
      let* st_cancelled = get_int ~default:0 "cancelled" j in
      let* st_shed = get_int ~default:0 "shed" j in
      let* st_latency =
        match Json.member "latency" j with
        | None | Some Json.Null -> Ok []
        | Some (Json.List xs) ->
            let rec go acc = function
              | [] -> Ok (List.rev acc)
              | x :: rest ->
                  let* ls_kind = get_str "kind" x in
                  let* ls_count = get_int ~default:0 "count" x in
                  let* ls_p50_ms = get_float ~default:0.0 "p50_ms" x in
                  let* ls_p99_ms = get_float ~default:0.0 "p99_ms" x in
                  go ({ ls_kind; ls_count; ls_p50_ms; ls_p99_ms } :: acc) rest
            in
            go [] xs
        | Some _ -> Error "field 'latency' must be a list"
      in
      Ok
        (R_stats
           { st_served; st_evaluated; st_coalesced; st_memo_hits; st_busy;
             st_cache_hits; st_cache_misses; st_queue_depth; st_queue_max;
             st_inflight; st_running; st_cancelled; st_shed; st_latency })
  | "ping" -> Ok R_pong
  | "shutdown" -> Ok R_shutdown
  | k -> Error (Printf.sprintf "unknown payload kind '%s'" k)

let frame_of_json (j : Json.t) : (frame, string) result =
  let* v = get_int ~default:0 "v" j in
  if v <> version then
    Error (Printf.sprintf "unsupported schema version %d (want %d)" v version)
  else
    let* shape = get_str "frame" j in
    match shape with
    | "request" ->
        let* q_id = get_int ~default:0 "id" j in
        let* q_stream = get_bool ~default:false "stream" j in
        let* q_req = request_of_json j in
        Ok (Request { q_id; q_stream; q_req })
    | "response" -> (
        let* r_id = get_int ~default:0 "id" j in
        let* status = get_str "status" j in
        match status with
        | "ok" ->
            let* kind = get_str "kind" j in
            let* body =
              match Json.member "payload" j with
              | Some b -> Ok b
              | None -> Error "missing 'payload'"
            in
            let* p = payload_of_json ~kind body in
            Ok (Response { r_id; r_reply = Done p })
        | "error" ->
            let* ds = diags_of_json j "diagnostics" in
            Ok (Response { r_id; r_reply = Failed ds })
        | "busy" ->
            let* depth = get_int ~default:0 "queue_depth" j in
            Ok (Response { r_id; r_reply = Busy depth })
        | s -> Error (Printf.sprintf "unknown response status '%s'" s))
    | "event" ->
        let* e_id = get_int ~default:0 "id" j in
        let* e_stage = get_str "stage" j in
        let* e_pass = get_str "pass" j in
        let* e_seconds = get_float ~default:0.0 "seconds" j in
        let* e_before = get_int ~default:0 "before" j in
        let* e_after = get_int ~default:0 "after" j in
        Ok (Event { e_id; e_stage; e_pass; e_seconds; e_before; e_after })
    | s -> Error (Printf.sprintf "unknown frame shape '%s'" s)

let frame_to_string (f : frame) : string = Json.to_string (frame_to_json f)

let frame_of_string (s : string) : (frame, string) result =
  let* j = Json.parse s in
  frame_of_json j

(* ------------------------------------------------------------------ *)
(* Coalescing identity                                                *)
(* ------------------------------------------------------------------ *)

(** The request's content address for coalescing and response
    memoization: the canonical JSON of the request object (ids and
    stream flags excluded).  [None] for requests that must never be
    coalesced or memoized (stats, ping, shutdown — and [list], which
    is cheaper than a table lookup). *)
let request_key (r : request) : string option =
  match r with
  | Compile _ | Lint _ | Opt _ | Dse _ | Fuzz _ ->
      Some (Json.to_string (request_to_json r))
  | List_kernels | Stats | Ping | Shutdown -> None

(* ------------------------------------------------------------------ *)
(* Wire framing                                                       *)
(* ------------------------------------------------------------------ *)

(** Upper bound on a single frame body (64 MiB): a corrupt length
    prefix must not make the server allocate unbounded memory. *)
let max_frame_bytes = 64 * 1024 * 1024

let encode_frame (f : frame) : string =
  let body = frame_to_string f in
  let n = String.length body in
  let b = Bytes.create (4 + n) in
  Bytes.set b 0 (Char.chr ((n lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (n land 0xff));
  Bytes.blit_string body 0 b 4 n;
  Bytes.to_string b

(** Split as many complete frames as possible off the head of [buf];
    returns the decoded frames (or per-frame decode errors) and the
    unconsumed tail.  [Error] on an oversized or negative length
    prefix (the connection should be dropped). *)
let decode_frames (buf : string) :
    ((frame, string) result list * string, string) result =
  let n = String.length buf in
  let rec go at acc =
    if at + 4 > n then Ok (List.rev acc, String.sub buf at (n - at))
    else
      let len =
        (Char.code buf.[at] lsl 24)
        lor (Char.code buf.[at + 1] lsl 16)
        lor (Char.code buf.[at + 2] lsl 8)
        lor Char.code buf.[at + 3]
      in
      if len < 0 || len > max_frame_bytes then
        Error (Printf.sprintf "bad frame length %d" len)
      else if at + 4 + len > n then
        Ok (List.rev acc, String.sub buf at (n - at))
      else
        let body = String.sub buf (at + 4) len in
        go (at + 4 + len) (frame_of_string body :: acc)
  in
  go 0 []

(* Blocking single-frame IO over a file descriptor (client side and
   tests; the server uses the incremental {!decode_frames}). *)

let write_frame (fd : Unix.file_descr) (f : frame) : unit =
  let s = encode_frame f in
  let b = Bytes.of_string s in
  let rec go at =
    if at < Bytes.length b then
      match Unix.write fd b at (Bytes.length b - at) with
      | n -> go (at + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go at
  in
  go 0

let read_exactly (fd : Unix.file_descr) (n : int) : (Bytes.t, string) result =
  let b = Bytes.create n in
  let rec go at =
    if at >= n then Ok b
    else
      match Unix.read fd b at (n - at) with
      | 0 -> Error "connection closed"
      | k -> go (at + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go at
      | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  in
  go 0

let read_frame (fd : Unix.file_descr) : (frame, string) result =
  let* hdr = read_exactly fd 4 in
  let len =
    (Char.code (Bytes.get hdr 0) lsl 24)
    lor (Char.code (Bytes.get hdr 1) lsl 16)
    lor (Char.code (Bytes.get hdr 2) lsl 8)
    lor Char.code (Bytes.get hdr 3)
  in
  if len < 0 || len > max_frame_bytes then
    Error (Printf.sprintf "bad frame length %d" len)
  else
    let* body = read_exactly fd len in
    frame_of_string (Bytes.to_string body)
