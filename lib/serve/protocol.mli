(** The serve protocol, schema v1: the single typed definition of every
    job the compiler can run as a service, shared by the CLI handlers
    and the daemon.  Errors travel as {!Support.Diag.t} lists, never
    free-form strings.  See the DESIGN.md serve chapter for the wire
    format. *)

module Diag := Support.Diag
module Json := Support.Json

(** Schema version stamped into (and checked on) every frame. *)
val version : int

(** Rule ID for protocol-level failures (malformed frame, unknown
    kind, missing field, admission rejection). *)
val rule_protocol : string

(** Rule ID for a refused daemon startup: the requested socket path is
    owned by a live daemon. *)
val rule_socket_in_use : string

(** [Diag.error ~rule:rule_protocol]. *)
val protocol_error :
  ('a, Format.formatter, unit, Diag.t) format4 -> 'a

(** Reserved response id (−1) for errors not attributable to any
    request (malformed frame, client-sent response/event frame).
    Request ids are non-negative; a response carrying [sentinel_id]
    is connection-level, never a reply to a pipelined request. *)
val sentinel_id : int

(* ------------------------------------------------------------------ *)
(* Requests                                                           *)
(* ------------------------------------------------------------------ *)

type directives = {
  d_ii : int option;  (** pipeline target II; [None] disables *)
  d_unroll : int option;
  d_strategy : string;  (** ["inner"] | ["middle"] *)
  d_partitions : (string * string * int * int) list;
      (** (array, kind, factor, dim) *)
}

val no_directives : directives

type compile_req = {
  c_kernel : string;
  c_flow : string;  (** ["direct"] | ["cpp"] *)
  c_sched : string;
      (** ["static"] | ["dynamic"]; decoder defaults to ["static"], so
          pre-1.6 schema-v1 encodings stay valid *)
  c_directives : directives;
  c_clock_ns : float;
  c_passes : string list option;  (** exact adaptor pipeline, if given *)
  c_disable : string list;
}

type lint_req = {
  l_kernel : string option;  (** built-in kernel… *)
  l_source : string option;  (** …or raw IR text (exactly one) *)
  l_directives : directives;
  l_rules : string list option;
  l_werror : bool;
  l_top : string option;
  l_passes : string list option;
  l_disable : string list;
}

type opt_req = {
  op_source : string option;  (** raw IR text… *)
  op_synth : int option;  (** …or a generated N-function module *)
  op_passes : string list option;
  op_parallel : bool;
  op_jobs : int;
  op_parsafe : bool;  (** only run the parallel-safety checker *)
  op_json : bool;  (** with [op_parsafe]: JSON verdict *)
}

type dse_req = {
  ds_kernel : string;
  ds_sched : string;
      (** ["static"] | ["dynamic"] | ["both"]; decoder defaults to
          ["static"] *)
  ds_max_evals : int option;
  ds_rounds : int option;
  ds_stable : int option;
  ds_budget_bram : int option;
  ds_budget_dsp : int option;
  ds_budget_lut : int option;
  ds_clock_ns : float;
}

type fuzz_req = {
  f_seed : int;
  f_count : int;
  f_stages : string list;
  f_shrink : bool;
  f_jobs : int;
}

type request =
  | Compile of compile_req
  | Lint of lint_req
  | Opt of opt_req
  | Dse of dse_req
  | Fuzz of fuzz_req
  | List_kernels
  | Stats
  | Ping
  | Shutdown

val request_kind : request -> string

(* ------------------------------------------------------------------ *)
(* Responses                                                          *)
(* ------------------------------------------------------------------ *)

type compile_resp = {
  cr_kernel : string;
  cr_flow : string;  (** canonical flow name, e.g. ["direct-ir"] *)
  cr_latency : int;
  cr_ii : int;
  cr_bram : int;
  cr_dsp : int;
  cr_lut : int;
  cr_seconds : float;  (** front-end compile seconds (original run) *)
  cr_from_cache : bool;  (** served by the driver's result cache *)
  cr_adaptor : string option;  (** rendered adaptor report *)
  cr_report : string;  (** rendered synthesis report (deterministic) *)
}

type lint_resp = { lr_diags : Diag.t list }

type opt_resp = {
  or_ir : string;  (** optimized module text (empty under [op_parsafe]) *)
  or_passes : int;
  or_seconds : float;
  or_par_status : string option;
  or_verdict : string option;  (** rendered Parsafe verdict *)
  or_safe : bool;
}

type dse_resp = {
  dr_report : string;  (** rendered frontier + search statistics *)
  dr_best : (string * int) option;  (** label, latency *)
  dr_json : string;  (** versioned dse.json export *)
}

type fuzz_resp = { fr_report : string; fr_failures : int }
type kernel_info = { k_name : string; k_description : string }

type latency_stat = {
  ls_kind : string;
  ls_count : int;
  ls_p50_ms : float;
  ls_p99_ms : float;
}

type stats_resp = {
  st_served : int;  (** responses sent (excluding busy rejections) *)
  st_evaluated : int;  (** dispatcher evaluations actually run *)
  st_coalesced : int;  (** requests that shared an in-flight evaluation *)
  st_memo_hits : int;  (** requests served from the response memo *)
  st_busy : int;  (** admission rejections *)
  st_cache_hits : int;  (** driver result-cache hits (session-wide) *)
  st_cache_misses : int;
  st_queue_depth : int;  (** pending requests at the time of answering *)
  st_queue_max : int;  (** admission-control bound *)
  st_inflight : int;  (** groups currently evaluating on the pool *)
  st_running : (string * int) list;
      (** in-flight groups per kind, sorted by kind (only kinds > 0) *)
  st_cancelled : int;
      (** queued groups dropped because every waiter disconnected *)
  st_shed : int;  (** memo/ring shed events under [--max-rss-mb] *)
  st_latency : latency_stat list;  (** per job kind, sorted by kind *)
}

type payload =
  | R_compile of compile_resp
  | R_lint of lint_resp
  | R_opt of opt_resp
  | R_dse of dse_resp
  | R_fuzz of fuzz_resp
  | R_list of kernel_info list
  | R_stats of stats_resp
  | R_pong
  | R_shutdown

val payload_kind : payload -> string

(** How one request was answered. *)
type reply =
  | Done of payload
  | Failed of Diag.t list
  | Busy of int  (** rejected by admission control; carries queue depth *)

type event = {
  e_id : int;
  e_stage : string;
  e_pass : string;
  e_seconds : float;
  e_before : int;
  e_after : int;
}

type frame =
  | Request of { q_id : int; q_stream : bool; q_req : request }
  | Response of { r_id : int; r_reply : reply }
  | Event of event

(* ------------------------------------------------------------------ *)
(* JSON codec                                                         *)
(* ------------------------------------------------------------------ *)

(** The request object alone ([{"kind": ..., ...}], no frame
    envelope) — what [mhlsc client --request] accepts and what
    {!request_key} canonicalizes. *)
val request_to_json : request -> Json.t

(** Decode a bare request object.  Missing optional fields take their
    defaults, so hand-written client JSON stays short. *)
val request_of_json : Json.t -> (request, string) result

val frame_to_json : frame -> Json.t
val frame_of_json : Json.t -> (frame, string) result
val frame_to_string : frame -> string
val frame_of_string : string -> (frame, string) result

(* ------------------------------------------------------------------ *)
(* Coalescing identity                                                *)
(* ------------------------------------------------------------------ *)

(** The request's content address for coalescing and response
    memoization: the canonical JSON of the request object (ids and
    stream flags excluded).  [None] for requests that must never be
    coalesced or memoized. *)
val request_key : request -> string option

(* ------------------------------------------------------------------ *)
(* Wire framing: 4-byte big-endian length prefix + one JSON document  *)
(* ------------------------------------------------------------------ *)

(** Upper bound on a single frame body (64 MiB). *)
val max_frame_bytes : int

val encode_frame : frame -> string

(** Split as many complete frames as possible off the head of the
    buffer; returns the decoded frames (or per-frame decode errors)
    and the unconsumed tail.  [Error] on an oversized or negative
    length prefix (the connection should be dropped). *)
val decode_frames :
  string -> ((frame, string) result list * string, string) result

(** Blocking single-frame IO (client side and tests; the server uses
    the incremental {!decode_frames}). *)
val write_frame : Unix.file_descr -> frame -> unit

val read_frame : Unix.file_descr -> (frame, string) result
