(** Blocking client for the serve protocol — the library behind
    [mhlsc client], the CI smoke test and the serve test suite.

    One connection carries any number of requests; ids are assigned
    here and responses are matched back by id, so {!pipeline} can put
    several requests on the wire in a single write (which also
    guarantees the server sees them in one intake wave — the
    deterministic way to exercise coalescing). *)

module P = Protocol

type t = { fd : Unix.file_descr; mutable next_id : int }

let ( let* ) = Result.bind

(** Connect, retrying for [retry_for] seconds while the endpoint does
    not accept yet — covers the daemon-still-starting window. *)
let connect ?(retry_for = 0.0) (addr : Unix.sockaddr) : (t, string) result =
  let domain = Unix.domain_of_sockaddr addr in
  let deadline = Unix.gettimeofday () +. retry_for in
  let rec go () =
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    match Unix.connect fd addr with
    | () -> Ok { fd; next_id = 1 }
    | exception Unix.Unix_error (e, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        if Unix.gettimeofday () < deadline then begin
          Unix.sleepf 0.05;
          go ()
        end
        else Error (Unix.error_message e)
  in
  go ()

let connect_unix ?retry_for (path : string) : (t, string) result =
  connect ?retry_for (Unix.ADDR_UNIX path)

let connect_tcp ?retry_for ~(port : int) () : (t, string) result =
  connect ?retry_for (Unix.ADDR_INET (Unix.inet_addr_loopback, port))

let close (c : t) = try Unix.close c.fd with Unix.Unix_error _ -> ()

let fresh_id (c : t) =
  let id = c.next_id in
  c.next_id <- id + 1;
  id

(** Read until every id in [want] has a response; events are forwarded
    to [on_event].  Replies come back in the order of [want]. *)
let collect ?(on_event = fun (_ : P.event) -> ()) (c : t) (want : int list) :
    ((int * P.reply) list, string) result =
  let outstanding = Hashtbl.create 4 in
  List.iter (fun id -> Hashtbl.replace outstanding id ()) want;
  let replies = Hashtbl.create 4 in
  let rec go () =
    if Hashtbl.length outstanding = 0 then
      Ok (List.map (fun id -> (id, Hashtbl.find replies id)) want)
    else
      let* frame = P.read_frame c.fd in
      match frame with
      | P.Event ev ->
          on_event ev;
          go ()
      | P.Response { r_id; r_reply } when r_id = P.sentinel_id ->
          (* Connection-level error: the server could not attribute a
             failure to any request id (malformed frame on this
             connection).  No reply we are waiting for is coming. *)
          Error
            (match r_reply with
            | P.Failed (d :: _) -> String.trim (Support.Diag.render [ d ])
            | P.Failed [] | P.Done _ | P.Busy _ ->
                "server reported a connection-level protocol error")
      | P.Response { r_id; r_reply } ->
          if Hashtbl.mem outstanding r_id then begin
            Hashtbl.remove outstanding r_id;
            Hashtbl.replace replies r_id r_reply
          end;
          go ()
      | P.Request _ -> Error "server sent a request frame"
  in
  go ()

(** One request, one reply.  [stream] additionally subscribes to pass
    events, delivered to [on_event] before the reply. *)
let request ?(stream = false) ?on_event (c : t) (req : P.request) :
    (P.reply, string) result =
  let id = fresh_id c in
  (try P.write_frame c.fd (P.Request { q_id = id; q_stream = stream; q_req = req })
   with Unix.Unix_error (e, _, _) -> raise (Failure (Unix.error_message e)));
  let* rs = collect ?on_event c [ id ] in
  match rs with [ (_, r) ] -> Ok r | _ -> Error "missing reply"

(** Put all requests on the wire in one [write], then collect every
    reply (returned in request order).  Because the frames travel in
    one segment, the server reads them in a single intake wave — so
    identical requests in [reqs] are guaranteed to coalesce. *)
let pipeline ?on_event (c : t) (reqs : P.request list) :
    (P.reply list, string) result =
  let ids = List.map (fun _ -> fresh_id c) reqs in
  let wire =
    String.concat ""
      (List.map2
         (fun id req ->
           P.encode_frame (P.Request { q_id = id; q_stream = false; q_req = req }))
         ids reqs)
  in
  let b = Bytes.of_string wire in
  let rec write_all at =
    if at < Bytes.length b then
      write_all (at + Unix.write c.fd b at (Bytes.length b - at))
  in
  (try write_all 0
   with Unix.Unix_error (e, _, _) -> raise (Failure (Unix.error_message e)));
  let* rs = collect ?on_event c ids in
  Ok (List.map snd rs)
