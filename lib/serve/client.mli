(** Blocking client for the serve protocol — the library behind
    [mhlsc client], the CI smoke test and the serve test suite.

    A response carrying {!Protocol.sentinel_id} is a connection-level
    protocol failure (the server could not attribute it to any request
    id); {!request} and {!pipeline} surface it as [Error] rather than
    waiting forever for replies that will never come. *)

type t

(** Connect to a Unix-domain endpoint, retrying for [retry_for]
    seconds while the daemon is still starting. *)
val connect_unix : ?retry_for:float -> string -> (t, string) result

(** Connect to the loopback TCP endpoint. *)
val connect_tcp : ?retry_for:float -> port:int -> unit -> (t, string) result

val close : t -> unit

(** One request, one reply.  [stream] additionally subscribes to pass
    events, delivered to [on_event] before the reply. *)
val request :
  ?stream:bool ->
  ?on_event:(Protocol.event -> unit) ->
  t ->
  Protocol.request ->
  (Protocol.reply, string) result

(** Put all requests on the wire in one write, then collect every
    reply (returned in request order).  Because the frames travel in
    one segment, the server reads them in a single intake wave — so
    identical requests in the list are guaranteed to coalesce. *)
val pipeline :
  ?on_event:(Protocol.event -> unit) ->
  t ->
  Protocol.request list ->
  (Protocol.reply list, string) result
