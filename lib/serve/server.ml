(** The [mhlsc serve] daemon loop.

    A single-threaded {!Unix.select} reactor over one Unix-domain
    listener (and optionally a loopback TCP listener).  The expensive
    state — interner, analysis caches, the driver's domain pool and
    content-addressed result cache — lives in the {e dispatcher}
    closure the caller passes in, so it stays warm across requests;
    this module only does admission control, coalescing, response
    memoization and bookkeeping:

    + {b admission control}: at most [queue_max] requests may be
      pending; beyond that a request is answered [busy] (with the
      current depth) instead of queueing unboundedly;
    + {b coalescing}: all pending requests with the same
      {!Protocol.request_key} share a single dispatcher evaluation —
      one compile, N responses;
    + {b memoization}: successful payloads are remembered by request
      key, so a resubmitted identical request is served without
      re-entering the dispatcher at all;
    + {b streaming}: requests sent with ["stream": true] receive pass
      events (re-emitted from the {!Support.Tracing} hook) before
      their response.

    The loop owns no compiler knowledge: [Stats], [Ping] and
    [Shutdown] are handled here, everything else goes through the
    injected dispatcher.  That keeps the dependency arrow pointing one
    way — the CLI handler library depends on the protocol, never the
    reverse. *)

module Diag = Support.Diag
module P = Protocol

(** How one request becomes a payload.  The hook receives pass events
    for streaming clients; implementations should forward it into the
    flows they run. *)
type dispatch =
  trace:Support.Tracing.hook ->
  P.request ->
  (P.payload, Diag.t list) result

type config = {
  socket_path : string option;  (** Unix-domain listener *)
  tcp_port : int option;  (** loopback TCP listener *)
  queue_max : int;  (** admission-control bound *)
  log : string -> unit;  (** daemon-side progress lines *)
}

let default_config =
  {
    socket_path = Some "mhlsc.sock";
    tcp_port = None;
    queue_max = 64;
    log = ignore;
  }

(* ------------------------------------------------------------------ *)
(* Internal state                                                     *)
(* ------------------------------------------------------------------ *)

type client = {
  c_fd : Unix.file_descr;
  mutable c_buf : string;  (** unconsumed bytes (partial frames) *)
}

type pending = {
  pd_fd : Unix.file_descr;
  pd_id : int;
  pd_stream : bool;
  pd_req : P.request;
  pd_key : string option;
  pd_arrival : float;
}

type state = {
  cfg : config;
  dispatch : dispatch;
  counters : unit -> int * int;  (** driver cache (hits, misses) *)
  clients : (Unix.file_descr, client) Hashtbl.t;
  queue : pending Queue.t;
  memo : (string, P.payload) Hashtbl.t;
  latency : (string, float list ref) Hashtbl.t;  (** kind → ms samples *)
  mutable served : int;
  mutable evaluated : int;
  mutable coalesced : int;
  mutable memo_hits : int;
  mutable busy : int;
  mutable running : bool;
}

let record_latency (st : state) (kind : string) (ms : float) =
  match Hashtbl.find_opt st.latency kind with
  | Some r -> r := ms :: !r
  | None -> Hashtbl.add st.latency kind (ref [ ms ])

let percentile (sorted : float array) (p : float) : float =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) rank))

let latency_stats (st : state) : P.latency_stat list =
  Hashtbl.fold (fun kind samples acc -> (kind, !samples) :: acc) st.latency []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.map (fun (kind, samples) ->
         let a = Array.of_list samples in
         Array.sort compare a;
         {
           P.ls_kind = kind;
           ls_count = Array.length a;
           ls_p50_ms = percentile a 50.0;
           ls_p99_ms = percentile a 99.0;
         })

let stats_payload (st : state) : P.payload =
  let hits, misses = st.counters () in
  P.R_stats
    {
      P.st_served = st.served;
      st_evaluated = st.evaluated;
      st_coalesced = st.coalesced;
      st_memo_hits = st.memo_hits;
      st_busy = st.busy;
      st_cache_hits = hits;
      st_cache_misses = misses;
      st_queue_depth = Queue.length st.queue;
      st_queue_max = st.cfg.queue_max;
      st_latency = latency_stats st;
    }

(* ------------------------------------------------------------------ *)
(* Client IO                                                          *)
(* ------------------------------------------------------------------ *)

let drop_client (st : state) (fd : Unix.file_descr) =
  if Hashtbl.mem st.clients fd then begin
    Hashtbl.remove st.clients fd;
    (try Unix.close fd with Unix.Unix_error _ -> ())
  end

(** Send a frame, dropping the client on a broken pipe; pending
    replies to a vanished client are simply discarded. *)
let send (st : state) (fd : Unix.file_descr) (f : P.frame) =
  if Hashtbl.mem st.clients fd then
    try P.write_frame fd f
    with Unix.Unix_error _ | Sys_error _ -> drop_client st fd

let respond (st : state) (fd : Unix.file_descr) (id : int) (r : P.reply) =
  send st fd (P.Response { r_id = id; r_reply = r })

(* ------------------------------------------------------------------ *)
(* Request intake                                                     *)
(* ------------------------------------------------------------------ *)

let reply_now (st : state) (p : pending) (r : P.reply) =
  st.served <- st.served + 1;
  record_latency st
    (P.request_kind p.pd_req)
    ((Unix.gettimeofday () -. p.pd_arrival) *. 1000.0);
  respond st p.pd_fd p.pd_id r

let enqueue (st : state) (fd : Unix.file_descr) ~id ~stream
    (req : P.request) =
  let now = Unix.gettimeofday () in
  let p =
    {
      pd_fd = fd;
      pd_id = id;
      pd_stream = stream;
      pd_req = req;
      pd_key = P.request_key req;
      pd_arrival = now;
    }
  in
  match req with
  | P.Ping -> reply_now st p (P.Done P.R_pong)
  | P.Stats -> reply_now st p (P.Done (stats_payload st))
  | P.Shutdown ->
      st.cfg.log "shutdown requested";
      reply_now st p (P.Done P.R_shutdown);
      st.running <- false
  | _ ->
      if Queue.length st.queue >= st.cfg.queue_max then begin
        st.busy <- st.busy + 1;
        respond st fd id (P.Busy (Queue.length st.queue))
      end
      else Queue.add p st.queue

let handle_frame (st : state) (fd : Unix.file_descr) = function
  | Ok (P.Request { q_id; q_stream; q_req }) ->
      enqueue st fd ~id:q_id ~stream:q_stream q_req
  | Ok (P.Response _ | P.Event _) ->
      respond st fd 0
        (P.Failed
           [ P.protocol_error "clients may only send request frames" ])
  | Error msg ->
      respond st fd 0 (P.Failed [ P.protocol_error "bad frame: %s" msg ])

let read_client (st : state) (c : client) =
  let chunk = Bytes.create 65536 in
  match Unix.read c.c_fd chunk 0 (Bytes.length chunk) with
  | 0 -> drop_client st c.c_fd
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
      drop_client st c.c_fd
  | n -> (
      c.c_buf <- c.c_buf ^ Bytes.sub_string chunk 0 n;
      match P.decode_frames c.c_buf with
      | Error msg ->
          st.cfg.log (Printf.sprintf "dropping client: %s" msg);
          drop_client st c.c_fd
      | Ok (frames, rest) ->
          c.c_buf <- rest;
          List.iter (handle_frame st c.c_fd) frames)

(* ------------------------------------------------------------------ *)
(* Draining: coalesce, memoize, dispatch                              *)
(* ------------------------------------------------------------------ *)

(** One evaluation for a whole group of identical requests. *)
let evaluate_group (st : state) (group : pending list) =
  let lead = List.hd group in
  let n = List.length group in
  let memoized =
    match lead.pd_key with
    | Some key -> Hashtbl.find_opt st.memo key
    | None -> None
  in
  match memoized with
  | Some payload ->
      st.memo_hits <- st.memo_hits + n;
      List.iter (fun p -> reply_now st p (P.Done payload)) group
  | None ->
      let streamers = List.filter (fun p -> p.pd_stream) group in
      let trace (ev : Support.Tracing.event) =
        List.iter
          (fun p ->
            send st p.pd_fd
              (P.Event
                 {
                   P.e_id = p.pd_id;
                   e_stage = ev.Support.Tracing.ev_stage;
                   e_pass = ev.Support.Tracing.ev_pass;
                   e_seconds = ev.Support.Tracing.ev_seconds;
                   e_before = ev.Support.Tracing.ev_instrs_before;
                   e_after = ev.Support.Tracing.ev_instrs_after;
                 }))
          streamers
      in
      st.evaluated <- st.evaluated + 1;
      st.coalesced <- st.coalesced + (n - 1);
      let reply =
        match st.dispatch ~trace lead.pd_req with
        | Ok payload ->
            (match lead.pd_key with
            | Some key -> Hashtbl.replace st.memo key payload
            | None -> ());
            P.Done payload
        | Error ds -> P.Failed ds
        | exception exn ->
            P.Failed
              [
                Diag.error ~rule:"HLS000" "internal dispatcher failure: %s"
                  (Printexc.to_string exn);
              ]
      in
      List.iter (fun p -> reply_now st p reply) group

(** Drain everything currently queued.  Requests that share a
    {!Protocol.request_key} are grouped — first-arrival order decides
    evaluation order — and each group is evaluated exactly once. *)
let drain (st : state) =
  if not (Queue.is_empty st.queue) then begin
    let items = List.of_seq (Queue.to_seq st.queue) in
    Queue.clear st.queue;
    let groups : (string, pending list ref) Hashtbl.t = Hashtbl.create 8 in
    let order = ref [] in
    List.iter
      (fun p ->
        match p.pd_key with
        | None -> order := `One p :: !order
        | Some key -> (
            match Hashtbl.find_opt groups key with
            | Some r -> r := p :: !r
            | None ->
                let r = ref [ p ] in
                Hashtbl.add groups key r;
                order := `Group r :: !order))
      items;
    List.iter
      (function
        | `One p -> evaluate_group st [ p ]
        | `Group r -> evaluate_group st (List.rev !r))
      (List.rev !order)
  end

(* ------------------------------------------------------------------ *)
(* Listeners and the reactor                                          *)
(* ------------------------------------------------------------------ *)

let unix_listener (path : string) : Unix.file_descr =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 64;
  fd

let tcp_listener (port : int) : Unix.file_descr =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen fd 64;
  fd

let accept_client (st : state) (lfd : Unix.file_descr) =
  match Unix.accept lfd with
  | fd, _ -> Hashtbl.replace st.clients fd { c_fd = fd; c_buf = "" }
  | exception Unix.Unix_error _ -> ()

(** Run the daemon until a [shutdown] request arrives.  [counters]
    reports the driver result-cache (hits, misses) for [stats];
    [ready] fires once the listeners are bound (tests and scripts use
    it to know when to connect). *)
let serve ?(config = default_config) ?(counters = fun () -> (0, 0))
    ?(ready = fun () -> ()) ~(dispatch : dispatch) () : unit =
  let listeners =
    (match config.socket_path with
    | Some p ->
        config.log (Printf.sprintf "listening on %s" p);
        [ unix_listener p ]
    | None -> [])
    @
    match config.tcp_port with
    | Some port ->
        config.log (Printf.sprintf "listening on 127.0.0.1:%d" port);
        [ tcp_listener port ]
    | None -> []
  in
  if listeners = [] then
    invalid_arg "Server.serve: no socket path and no TCP port";
  let st =
    {
      cfg = config;
      dispatch;
      counters;
      clients = Hashtbl.create 16;
      queue = Queue.create ();
      memo = Hashtbl.create 64;
      latency = Hashtbl.create 8;
      served = 0;
      evaluated = 0;
      coalesced = 0;
      memo_hits = 0;
      busy = 0;
      running = true;
    }
  in
  ready ();
  while st.running do
    let client_fds = Hashtbl.fold (fun fd _ acc -> fd :: acc) st.clients [] in
    match Unix.select (listeners @ client_fds) [] [] (-1.0) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | readable, _, _ ->
        List.iter
          (fun fd ->
            if List.mem fd listeners then accept_client st fd
            else
              match Hashtbl.find_opt st.clients fd with
              | Some c -> read_client st c
              | None -> ())
          readable;
        (* Intake first, then drain: every request read in this wave is
           in the queue before grouping, so identical requests written
           back-to-back are guaranteed to coalesce. *)
        drain st
  done;
  Hashtbl.iter (fun fd _ -> try Unix.close fd with Unix.Unix_error _ -> ())
    st.clients;
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
    listeners;
  (match config.socket_path with
  | Some p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
  | None -> ());
  config.log "daemon stopped"
