(** The [mhlsc serve] daemon loop.

    A single-threaded {!Unix.select} reactor over one Unix-domain
    listener (and optionally a loopback TCP listener).  The expensive
    state — interner, analysis caches, the driver's domain pool and
    content-addressed result cache — lives in the {e dispatcher}
    closure the caller passes in, so it stays warm across requests;
    this module does admission control, coalescing, response
    memoization, scheduling and bookkeeping:

    + {b admission control}: at most [queue_max] requests may be
      queued; beyond that a request is answered [busy] (with the
      current depth) instead of queueing unboundedly;
    + {b coalescing}: all requests with the same
      {!Protocol.request_key} — queued {e or already evaluating} —
      share a single dispatcher evaluation: one compile, N responses;
    + {b memoization}: successful payloads are remembered by request
      key, so a resubmitted identical request is served without
      re-entering the dispatcher at all;
    + {b concurrency}: request groups evaluate on an injected executor
      (the driver's domain pool) while the select loop keeps reading
      and accepting.  Workers never touch client sockets — events and
      completions travel through a mutex-protected mailbox whose
      self-pipe wakes [select] — so frames cannot interleave;
    + {b budgets}: at most [budget kind] groups of one kind evaluate
      at once (DSE sweeps are heavy, compiles are light), so a burst
      of sweeps cannot monopolize the pool;
    + {b fairness}: queued groups are picked round-robin across
      connections, so one chatty client cannot starve the rest;
    + {b cancellation}: a queued group whose waiters have all
      disconnected is dropped before it ever starts; events and
      replies of an already-running group go only to waiters still
      connected;
    + {b shedding}: with [max_rss_mb] set, the response memo and the
      latency rings are dropped when resident memory crosses the cap —
      the daemon degrades to re-evaluating instead of being OOM-killed;
    + {b streaming}: requests sent with ["stream": true] receive pass
      events (re-emitted from the {!Support.Tracing} hook) before
      their response.

    The loop owns no compiler knowledge: [Stats], [Ping] and
    [Shutdown] are handled here, everything else goes through the
    injected dispatcher.  That keeps the dependency arrow pointing one
    way — the CLI handler library depends on the protocol, never the
    reverse. *)

module Diag = Support.Diag
module P = Protocol

(** How one request becomes a payload.  The hook receives pass events
    for streaming clients; implementations should forward it into the
    flows they run.  Under a concurrent executor the dispatcher runs
    on worker domains, so it must not share mutable state with other
    invocations (the bundled handlers qualify: the driver session and
    cache are domain-safe). *)
type dispatch =
  trace:Support.Tracing.hook ->
  P.request ->
  (P.payload, Diag.t list) result

type config = {
  socket_path : string option;  (** Unix-domain listener *)
  tcp_port : int option;  (** loopback TCP listener *)
  queue_max : int;  (** admission-control bound *)
  budgets : (string * int) list;
      (** per-kind concurrent-evaluation bounds; kinds not listed get
          [default_budget] *)
  default_budget : int;
  max_rss_mb : int option;
      (** soft resident-memory cap: shed memo + latency rings above it *)
  log : string -> unit;  (** daemon-side progress lines *)
}

let default_config =
  {
    socket_path = Some "mhlsc.sock";
    tcp_port = None;
    queue_max = 64;
    (* DSE and fuzz fan out internally — one of each at a time is
       plenty; everything else is a single compile-sized job. *)
    budgets = [ ("dse", 1); ("fuzz", 1) ];
    default_budget = 4;
    max_rss_mb = None;
    log = ignore;
  }

(* ------------------------------------------------------------------ *)
(* Bounded latency rings                                              *)
(* ------------------------------------------------------------------ *)

(** Last [ring_capacity] samples per kind.  A long-lived daemon must
    not keep every latency sample ever recorded: the old per-kind
    [float list ref] grew without bound. *)
let ring_capacity = 4096

type ring = {
  r_buf : float array;
  mutable r_len : int;
  mutable r_pos : int;  (** next write slot *)
}

let ring_create () =
  { r_buf = Array.make ring_capacity 0.0; r_len = 0; r_pos = 0 }

let ring_push (r : ring) (v : float) =
  r.r_buf.(r.r_pos) <- v;
  r.r_pos <- (r.r_pos + 1) mod ring_capacity;
  if r.r_len < ring_capacity then r.r_len <- r.r_len + 1

let ring_clear (r : ring) =
  r.r_len <- 0;
  r.r_pos <- 0

let ring_snapshot (r : ring) : float array = Array.sub r.r_buf 0 r.r_len

(* ------------------------------------------------------------------ *)
(* Internal state                                                     *)
(* ------------------------------------------------------------------ *)

type pending = {
  pd_fd : Unix.file_descr;
  pd_id : int;
  pd_stream : bool;
  pd_req : P.request;
  pd_key : string option;
  pd_arrival : float;
}

(** A coalesced request group: one evaluation, [g_waiters] responses.
    Queued groups live in their owner connection's ready list (for
    round-robin fairness); running groups live in the in-flight
    table.  [g_waiters] is newest-first; replies reverse it back to
    arrival order. *)
type group = {
  g_id : int;
  g_key : string option;
  g_kind : string;
  g_req : P.request;
  g_stream : bool;  (** any waiter asked for events when it started *)
  mutable g_waiters : pending list;
}

type client = {
  c_fd : Unix.file_descr;
  mutable c_buf : string;  (** unconsumed bytes (partial frames) *)
  mutable c_ready : group list;  (** queued groups owned here, FIFO *)
}

(** Worker → reactor messages.  Workers never write to client fds —
    a worker-side write would interleave with reactor frames and
    corrupt the length-prefixed stream — so everything they produce
    funnels through here and is forwarded on the reactor domain. *)
type msg =
  | M_event of int * Support.Tracing.event  (** group id, pass event *)
  | M_done of int * P.reply  (** group id, final reply *)

type state = {
  cfg : config;
  dispatch : dispatch;
  counters : unit -> int * int;  (** driver cache (hits, misses) *)
  exec : (unit -> unit) -> bool;
      (** run a thunk on a worker; [false] = run it inline *)
  clients : (Unix.file_descr, client) Hashtbl.t;
  mutable rr : Unix.file_descr list;
      (** round-robin pick order; a client moves to the back after a
          group of theirs is started *)
  by_key : (string, group) Hashtbl.t;  (** queued or running groups *)
  inflight : (int, group) Hashtbl.t;  (** running groups by group id *)
  running_kinds : (string, int) Hashtbl.t;  (** in-flight count per kind *)
  mutable next_group : int;
  memo : (string, P.payload) Hashtbl.t;
  latency : (string, ring) Hashtbl.t;  (** kind → ms samples *)
  mutable served : int;
  mutable evaluated : int;
  mutable coalesced : int;
  mutable memo_hits : int;
  mutable busy : int;
  mutable cancelled : int;
  mutable shed : int;
  mb_mutex : Mutex.t;
  mutable mb_msgs : msg list;  (** newest-first *)
  wake_r : Unix.file_descr;  (** self-pipe: wakes [select] on post *)
  wake_w : Unix.file_descr;  (** non-blocking write end *)
  mutable running : bool;
}

let record_latency (st : state) (kind : string) (ms : float) =
  match Hashtbl.find_opt st.latency kind with
  | Some r -> ring_push r ms
  | None ->
      let r = ring_create () in
      ring_push r ms;
      Hashtbl.add st.latency kind r

let percentile (sorted : float array) (p : float) : float =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) rank))

let latency_stats (st : state) : P.latency_stat list =
  Hashtbl.fold (fun kind r acc -> (kind, ring_snapshot r) :: acc) st.latency []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.map (fun (kind, a) ->
         Array.sort Float.compare a;
         {
           P.ls_kind = kind;
           ls_count = Array.length a;
           ls_p50_ms = percentile a 50.0;
           ls_p99_ms = percentile a 99.0;
         })

(** Waiters in not-yet-started groups — the admission-control depth.
    Riders coalesced onto a running group are not queued work. *)
let queue_depth (st : state) : int =
  Hashtbl.fold
    (fun _ c acc ->
      List.fold_left
        (fun acc g -> acc + List.length g.g_waiters)
        acc c.c_ready)
    st.clients 0

let budget_of (st : state) (kind : string) : int =
  match List.assoc_opt kind st.cfg.budgets with
  | Some n -> max 1 n
  | None -> max 1 st.cfg.default_budget

let running_of (st : state) (kind : string) : int =
  Option.value (Hashtbl.find_opt st.running_kinds kind) ~default:0

let stats_payload (st : state) : P.payload =
  let hits, misses = st.counters () in
  P.R_stats
    {
      P.st_served = st.served;
      st_evaluated = st.evaluated;
      st_coalesced = st.coalesced;
      st_memo_hits = st.memo_hits;
      st_busy = st.busy;
      st_cache_hits = hits;
      st_cache_misses = misses;
      st_queue_depth = queue_depth st;
      st_queue_max = st.cfg.queue_max;
      st_inflight = Hashtbl.length st.inflight;
      st_running =
        Hashtbl.fold (fun k n acc -> if n > 0 then (k, n) :: acc else acc)
          st.running_kinds []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b);
      st_cancelled = st.cancelled;
      st_shed = st.shed;
      st_latency = latency_stats st;
    }

(* ------------------------------------------------------------------ *)
(* Mailbox and self-pipe                                              *)
(* ------------------------------------------------------------------ *)

(** Post from any domain.  The wake byte is best-effort: if the pipe
    is full the reactor is already due to wake, and if the pipe is
    gone the loop has exited and the message will never be read. *)
let post (st : state) (m : msg) =
  Mutex.lock st.mb_mutex;
  st.mb_msgs <- m :: st.mb_msgs;
  Mutex.unlock st.mb_mutex;
  try ignore (Unix.write st.wake_w (Bytes.make 1 '!') 0 1)
  with Unix.Unix_error _ -> ()

let drain_wake (st : state) =
  let b = Bytes.create 1024 in
  match Unix.read st.wake_r b 0 (Bytes.length b) with
  | _ -> ()
  | exception Unix.Unix_error _ -> ()

let take_messages (st : state) : msg list =
  Mutex.lock st.mb_mutex;
  let ms = List.rev st.mb_msgs in
  st.mb_msgs <- [];
  Mutex.unlock st.mb_mutex;
  ms

(* ------------------------------------------------------------------ *)
(* Client IO                                                          *)
(* ------------------------------------------------------------------ *)

(** Remove a connection.  Queued groups owned by this connection are
    re-owned by a surviving waiter, or cancelled outright when every
    waiter is gone — the whole point of tracking waiters: work nobody
    is listening for must not occupy a budget slot. *)
let rec drop_client (st : state) (fd : Unix.file_descr) =
  match Hashtbl.find_opt st.clients fd with
  | None -> ()
  | Some c ->
      Hashtbl.remove st.clients fd;
      st.rr <- List.filter (fun f -> f <> fd) st.rr;
      (try Unix.close fd with Unix.Unix_error _ -> ());
      let orphans = c.c_ready in
      c.c_ready <- [];
      List.iter
        (fun g ->
          g.g_waiters <-
            List.filter (fun p -> Hashtbl.mem st.clients p.pd_fd) g.g_waiters;
          match g.g_waiters with
          | [] -> cancel_group st g
          | p :: _ -> (
              match Hashtbl.find_opt st.clients p.pd_fd with
              | Some c' -> c'.c_ready <- c'.c_ready @ [ g ]
              | None -> cancel_group st g))
        orphans

and cancel_group (st : state) (g : group) =
  (match g.g_key with
  | Some k -> Hashtbl.remove st.by_key k
  | None -> ());
  st.cancelled <- st.cancelled + 1;
  st.cfg.log
    (Printf.sprintf "cancelled %s group #%d (all waiters gone)" g.g_kind
       g.g_id)

(** Send a frame, dropping the client on a broken pipe; frames for a
    vanished client are simply discarded — this is also what
    suppresses replies and events of a group whose waiter left. *)
let send (st : state) (fd : Unix.file_descr) (f : P.frame) =
  if Hashtbl.mem st.clients fd then
    try P.write_frame fd f
    with Unix.Unix_error _ | Sys_error _ -> drop_client st fd

let respond (st : state) (fd : Unix.file_descr) (id : int) (r : P.reply) =
  send st fd (P.Response { r_id = id; r_reply = r })

let reply_now (st : state) (p : pending) (r : P.reply) =
  st.served <- st.served + 1;
  record_latency st
    (P.request_kind p.pd_req)
    ((Unix.gettimeofday () -. p.pd_arrival) *. 1000.0);
  respond st p.pd_fd p.pd_id r

(* ------------------------------------------------------------------ *)
(* Memory shedding                                                    *)
(* ------------------------------------------------------------------ *)

(** Resident set size in MiB from /proc/self/statm ([None] where no
    procfs).  Page size is taken as 4 KiB — the only size Linux uses
    on the platforms this daemon targets. *)
let rss_mb () : int option =
  match
    In_channel.with_open_text "/proc/self/statm" In_channel.input_line
  with
  | Some line -> (
      match String.split_on_char ' ' line with
      | _ :: resident :: _ ->
          Option.map
            (fun pages -> pages * 4096 / (1024 * 1024))
            (int_of_string_opt resident)
      | _ -> None)
  | None -> None
  | exception Sys_error _ -> None

(** Soft-cap enforcement, checked after each completion: above the
    cap, drop the response memo and the latency rings (the only
    unbounded-ish state this module owns) and count a shed.  The
    daemon keeps serving — identical requests just re-evaluate. *)
let maybe_shed (st : state) =
  match st.cfg.max_rss_mb with
  | None -> ()
  | Some cap ->
      let have_state =
        Hashtbl.length st.memo > 0
        || Hashtbl.fold (fun _ r acc -> acc || r.r_len > 0) st.latency false
      in
      if have_state then (
        match rss_mb () with
        | Some mb when mb > cap ->
            st.shed <- st.shed + 1;
            st.cfg.log
              (Printf.sprintf
                 "rss %d MiB over cap %d MiB: shedding %d memo entries and \
                  latency rings"
                 mb cap (Hashtbl.length st.memo));
            Hashtbl.reset st.memo;
            Hashtbl.iter (fun _ r -> ring_clear r) st.latency
        | Some _ | None -> ())

(* ------------------------------------------------------------------ *)
(* Group completion (reactor side)                                    *)
(* ------------------------------------------------------------------ *)

let forward_event (st : state) (gid : int) (ev : Support.Tracing.event) =
  match Hashtbl.find_opt st.inflight gid with
  | None -> ()
  | Some g ->
      List.iter
        (fun p ->
          if p.pd_stream then
            send st p.pd_fd
              (P.Event
                 {
                   P.e_id = p.pd_id;
                   e_stage = ev.Support.Tracing.ev_stage;
                   e_pass = ev.Support.Tracing.ev_pass;
                   e_seconds = ev.Support.Tracing.ev_seconds;
                   e_before = ev.Support.Tracing.ev_instrs_before;
                   e_after = ev.Support.Tracing.ev_instrs_after;
                 }))
        (List.rev g.g_waiters)

let complete (st : state) (gid : int) (reply : P.reply) =
  match Hashtbl.find_opt st.inflight gid with
  | None -> ()
  | Some g ->
      Hashtbl.remove st.inflight gid;
      Hashtbl.replace st.running_kinds g.g_kind
        (max 0 (running_of st g.g_kind - 1));
      (match g.g_key with
      | Some k ->
          Hashtbl.remove st.by_key k;
          (match reply with
          | P.Done payload -> Hashtbl.replace st.memo k payload
          | P.Failed _ | P.Busy _ -> ())
      | None -> ());
      List.iter
        (fun p ->
          if Hashtbl.mem st.clients p.pd_fd then reply_now st p reply)
        (List.rev g.g_waiters);
      maybe_shed st

let process_mailbox (st : state) =
  List.iter
    (function
      | M_event (gid, ev) -> forward_event st gid ev
      | M_done (gid, reply) -> complete st gid reply)
    (take_messages st)

(* ------------------------------------------------------------------ *)
(* Scheduling                                                         *)
(* ------------------------------------------------------------------ *)

(** Move a group to the in-flight table and hand its evaluation to the
    executor.  Returns [true] when the executor declined and the thunk
    ran inline (its completion is already in the mailbox). *)
let start_group (st : state) (g : group) : bool =
  Hashtbl.replace st.inflight g.g_id g;
  Hashtbl.replace st.running_kinds g.g_kind (running_of st g.g_kind + 1);
  st.evaluated <- st.evaluated + 1;
  let gid = g.g_id and req = g.g_req and streamed = g.g_stream in
  let dispatch = st.dispatch in
  let thunk () =
    let trace =
      if streamed then fun ev -> post st (M_event (gid, ev))
      else Support.Tracing.null
    in
    let reply =
      match dispatch ~trace req with
      | Ok payload -> P.Done payload
      | Error ds -> P.Failed ds
      | exception exn ->
          P.Failed
            [
              Diag.error ~rule:"HLS000" "internal dispatcher failure: %s"
                (Printexc.to_string exn);
            ]
    in
    post st (M_done (gid, reply))
  in
  if st.exec thunk then false
  else begin
    thunk ();
    true
  end

(** Start the first group in [c]'s queue whose kind has budget,
    pruning groups whose waiters all disconnected along the way
    (cancellation-before-start). *)
let try_client (st : state) (c : client) : [ `Started of bool | `None ] =
  let rec go skipped = function
    | [] ->
        c.c_ready <- List.rev skipped;
        `None
    | g :: rest ->
        g.g_waiters <-
          List.filter (fun p -> Hashtbl.mem st.clients p.pd_fd) g.g_waiters;
        if g.g_waiters = [] then begin
          cancel_group st g;
          go skipped rest
        end
        else if running_of st g.g_kind < budget_of st g.g_kind then begin
          c.c_ready <- List.rev_append skipped rest;
          `Started (start_group st g)
        end
        else go (g :: skipped) rest
  in
  go [] c.c_ready

(** Round-robin scheduler: sweep connections in [rr] order, starting
    at most one group per connection per sweep and rotating a served
    connection to the back, until nothing more can start (budgets
    exhausted or queues empty).  Inline completions (sequential
    executor) are processed and the sweep retried, so the inline
    daemon drains exactly like the old synchronous one. *)
let rec pump (st : state) =
  let inline_ran = ref false in
  let progress = ref true in
  while !progress do
    progress := false;
    List.iter
      (fun fd ->
        match Hashtbl.find_opt st.clients fd with
        | None -> ()
        | Some c -> (
            match try_client st c with
            | `Started inline ->
                progress := true;
                inline_ran := !inline_ran || inline;
                st.rr <- List.filter (fun f -> f <> fd) st.rr @ [ fd ]
            | `None -> ()))
      st.rr
  done;
  if !inline_ran then begin
    process_mailbox st;
    pump st
  end

(* ------------------------------------------------------------------ *)
(* Request intake                                                     *)
(* ------------------------------------------------------------------ *)

let enqueue (st : state) (fd : Unix.file_descr) ~id ~stream
    (req : P.request) =
  let now = Unix.gettimeofday () in
  let p =
    {
      pd_fd = fd;
      pd_id = id;
      pd_stream = stream;
      pd_req = req;
      pd_key = P.request_key req;
      pd_arrival = now;
    }
  in
  match req with
  | P.Ping -> reply_now st p (P.Done P.R_pong)
  | P.Stats -> reply_now st p (P.Done (stats_payload st))
  | P.Shutdown ->
      st.cfg.log "shutdown requested";
      reply_now st p (P.Done P.R_shutdown);
      st.running <- false
  | _ -> (
      match
        Option.bind p.pd_key (fun k -> Hashtbl.find_opt st.memo k)
      with
      | Some payload ->
          st.memo_hits <- st.memo_hits + 1;
          reply_now st p (P.Done payload)
      | None -> (
          match Option.bind p.pd_key (Hashtbl.find_opt st.by_key) with
          | Some g ->
              (* Queued or already evaluating: ride along. *)
              st.coalesced <- st.coalesced + 1;
              g.g_waiters <- p :: g.g_waiters
          | None -> (
              match Hashtbl.find_opt st.clients fd with
              | None -> ()  (* dropped earlier in this intake wave *)
              | Some c ->
                  if queue_depth st >= st.cfg.queue_max then begin
                    st.busy <- st.busy + 1;
                    respond st fd id (P.Busy (queue_depth st))
                  end
                  else begin
                    let g =
                      {
                        g_id = st.next_group;
                        g_key = p.pd_key;
                        g_kind = P.request_kind req;
                        g_req = req;
                        g_stream = stream;
                        g_waiters = [ p ];
                      }
                    in
                    st.next_group <- st.next_group + 1;
                    (match p.pd_key with
                    | Some k -> Hashtbl.replace st.by_key k g
                    | None -> ());
                    c.c_ready <- c.c_ready @ [ g ]
                  end)))

let handle_frame (st : state) (fd : Unix.file_descr) = function
  | Ok (P.Request { q_id; q_stream; q_req }) ->
      enqueue st fd ~id:q_id ~stream:q_stream q_req
  | Ok (P.Response _ | P.Event _) ->
      respond st fd P.sentinel_id
        (P.Failed
           [ P.protocol_error "clients may only send request frames" ])
  | Error msg ->
      respond st fd P.sentinel_id
        (P.Failed [ P.protocol_error "bad frame: %s" msg ])

(** Read what's available on a client socket.  EINTR retries (a signal
    must not kill the daemon), EAGAIN is a spurious wakeup, and any
    other error drops just this client — never the reactor. *)
let rec read_client (st : state) (c : client) =
  let chunk = Bytes.create 65536 in
  match Unix.read c.c_fd chunk 0 (Bytes.length chunk) with
  | 0 -> drop_client st c.c_fd
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_client st c
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | exception Unix.Unix_error (_, _, _) -> drop_client st c.c_fd
  | n -> (
      c.c_buf <- c.c_buf ^ Bytes.sub_string chunk 0 n;
      match P.decode_frames c.c_buf with
      | Error msg ->
          st.cfg.log (Printf.sprintf "dropping client: %s" msg);
          drop_client st c.c_fd
      | Ok (frames, rest) ->
          c.c_buf <- rest;
          List.iter (handle_frame st c.c_fd) frames)

(* ------------------------------------------------------------------ *)
(* Listeners and the reactor                                          *)
(* ------------------------------------------------------------------ *)

type socket_status = Absent | Stale | Live of string

(** Is anything still behind [path]?  A connect that succeeds proves a
    live listener (whether or not it answers ping); ECONNREFUSED
    proves a stale leftover from a dead daemon.  Anything else —
    permissions, weird file types — is treated as live: when in doubt,
    refuse to unlink. *)
let probe_socket (path : string) : socket_status =
  if not (Sys.file_exists path) then Absent
  else
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () ->
        try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        match Unix.connect fd (Unix.ADDR_UNIX path) with
        | () -> (
            try
              Unix.setsockopt_float fd Unix.SO_RCVTIMEO 2.0;
              P.write_frame fd
                (P.Request { q_id = 0; q_stream = false; q_req = P.Ping });
              match P.read_frame fd with
              | Ok (P.Response { r_reply = P.Done P.R_pong; _ }) ->
                  Live "a daemon answered ping"
              | Ok _ | Error _ -> Live "something is listening"
            with Unix.Unix_error _ | Sys_error _ ->
              Live "something is listening")
        | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _)
          ->
            Stale
        | exception Unix.Unix_error (e, _, _) ->
            Live (Unix.error_message e))

(** Bind the Unix listener.  A live socket at [path] is an HLS906
    refusal — the old behavior unlinked unconditionally, silently
    hijacking a running daemon's clients; only provably stale sockets
    are removed. *)
let unix_listener ~(log : string -> unit) (path : string) :
    (Unix.file_descr, Diag.t list) result =
  match probe_socket path with
  | Live detail ->
      Error
        [
          Diag.error ~rule:P.rule_socket_in_use
            "socket '%s' is already in use: %s" path detail
            ~hint:
              "stop the running daemon with `mhlsc client --request \
               '{\"kind\": \"shutdown\"}'` or pass a different --socket";
        ]
  | Absent | Stale ->
      (match probe_socket path with
      | Stale ->
          log (Printf.sprintf "removing stale socket %s" path);
          (try Unix.unlink path with Unix.Unix_error _ -> ())
      | Absent | Live _ -> ());
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      Ok fd

let tcp_listener (port : int) : Unix.file_descr =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen fd 64;
  fd

let rec accept_client (st : state) (lfd : Unix.file_descr) =
  match Unix.accept lfd with
  | fd, _ ->
      Hashtbl.replace st.clients fd { c_fd = fd; c_buf = ""; c_ready = [] };
      st.rr <- st.rr @ [ fd ]
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_client st lfd
  | exception Unix.Unix_error _ -> ()

(** A daemon must outlive stray signals: SIGPIPE (a client vanishing
    mid-write) must not kill the process, and anything that interrupts
    a blocking syscall (the EINTR paths above) must find a handler
    installed, or the default action terminates us before EINTR is
    even raised. *)
let install_signal_handlers () =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  try Sys.set_signal Sys.sigusr1 (Sys.Signal_handle (fun _ -> ()))
  with Invalid_argument _ | Sys_error _ -> ()

(** Run the daemon until a [shutdown] request arrives.  [counters]
    reports the driver result-cache (hits, misses) for [stats];
    [ready] fires once the listeners are bound (tests and scripts use
    it to know when to connect); [exec] runs one group evaluation on a
    worker ({!Mhls_driver.Driver.background} in the real daemon) and
    returns [false] to decline, in which case the reactor evaluates
    inline — the default, which reproduces the old sequential drain.
    Returns [Error] (HLS906) without disturbing anything when the
    socket path is owned by a live daemon.  Groups still evaluating
    when a shutdown lands are abandoned: their waiters' connections
    close without a reply. *)
let serve ?(config = default_config) ?(counters = fun () -> (0, 0))
    ?(ready = fun () -> ()) ?(exec = fun (_ : unit -> unit) -> false)
    ~(dispatch : dispatch) () : (unit, Diag.t list) result =
  install_signal_handlers ();
  let unix_fds =
    match config.socket_path with
    | None -> Ok []
    | Some p -> (
        match unix_listener ~log:config.log p with
        | Ok fd ->
            config.log (Printf.sprintf "listening on %s" p);
            Ok [ fd ]
        | Error ds -> Error ds)
  in
  match unix_fds with
  | Error ds -> Error ds
  | Ok unix_fds ->
      let listeners =
        unix_fds
        @
        match config.tcp_port with
        | Some port ->
            config.log (Printf.sprintf "listening on 127.0.0.1:%d" port);
            [ tcp_listener port ]
        | None -> []
      in
      if listeners = [] then
        invalid_arg "Server.serve: no socket path and no TCP port";
      let wake_r, wake_w = Unix.pipe () in
      Unix.set_nonblock wake_w;
      let st =
        {
          cfg = config;
          dispatch;
          counters;
          exec;
          clients = Hashtbl.create 16;
          rr = [];
          by_key = Hashtbl.create 16;
          inflight = Hashtbl.create 16;
          running_kinds = Hashtbl.create 8;
          next_group = 1;
          memo = Hashtbl.create 64;
          latency = Hashtbl.create 8;
          served = 0;
          evaluated = 0;
          coalesced = 0;
          memo_hits = 0;
          busy = 0;
          cancelled = 0;
          shed = 0;
          mb_mutex = Mutex.create ();
          mb_msgs = [];
          wake_r;
          wake_w;
          running = true;
        }
      in
      ready ();
      while st.running do
        let client_fds =
          Hashtbl.fold (fun fd _ acc -> fd :: acc) st.clients []
        in
        match
          Unix.select ((st.wake_r :: listeners) @ client_fds) [] [] (-1.0)
        with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | readable, _, _ ->
            List.iter
              (fun fd ->
                if fd = st.wake_r then drain_wake st
                else if List.mem fd listeners then accept_client st fd
                else
                  match Hashtbl.find_opt st.clients fd with
                  | Some c -> read_client st c
                  | None -> ())
              readable;
            (* Completions first — they free budget slots and populate
               the memo — then schedule whatever the intake wave
               queued.  Intake precedes scheduling, so identical
               requests written back-to-back still meet in one group
               before it starts. *)
            process_mailbox st;
            pump st
      done;
      Hashtbl.iter
        (fun fd _ -> try Unix.close fd with Unix.Unix_error _ -> ())
        st.clients;
      List.iter
        (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        listeners;
      (try Unix.close st.wake_r with Unix.Unix_error _ -> ());
      (try Unix.close st.wake_w with Unix.Unix_error _ -> ());
      (match config.socket_path with
      | Some p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
      | None -> ());
      config.log "daemon stopped";
      Ok ()
