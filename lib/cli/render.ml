(** The CLI's historical output formats, as pure [response -> string]
    functions over the handler result types.

    Kept separate from {!Handlers} so the formats are defined exactly
    once: [bin/mhlsc.ml] prints these strings byte-for-byte as the
    pre-registry CLI did, and tests compare daemon responses against
    them. *)

module K = Workloads.Kernels
module E = Hls_backend.Estimate
module P = Mhls_serve.Protocol

(** `mhlsc list`. *)
let kernel_list (ks : P.kernel_info list) : string =
  String.concat ""
    (List.map
       (fun k -> Printf.sprintf "%-10s %s\n" k.P.k_name k.P.k_description)
       ks)

(** `mhlsc synth` / `mhlsc compile`: header line, optional adaptor
    report, synthesis report. *)
let compile ?(verbose = false) (r : P.compile_resp) : string =
  Printf.sprintf "kernel: %s   flow: %s   front-end: %.1f ms\n" r.P.cr_kernel
    r.P.cr_flow
    (r.P.cr_seconds *. 1000.0)
  ^ (if verbose then Option.value r.P.cr_adaptor ~default:"" else "")
  ^ r.P.cr_report

(** `mhlsc compare`: the 2×2 grid — frontend (direct-IR vs HLS C++) ×
    scheduling discipline (static vs dynamic).  The first two columns
    are the statically-scheduled cells the paper compares; the ratio
    line is computed on them. *)
let compare (c : Handlers.compare_resp) : string =
  let b = Buffer.create 512 in
  let row name f =
    Buffer.add_string b
      (Printf.sprintf "%-12s %12s %12s %12s %12s\n" name
         (f c.Handlers.cm_direct c.Handlers.cm_direct_seconds)
         (f c.Handlers.cm_cpp c.Handlers.cm_cpp_seconds)
         (f c.Handlers.cm_direct_dyn c.Handlers.cm_direct_dyn_seconds)
         (f c.Handlers.cm_cpp_dyn c.Handlers.cm_cpp_dyn_seconds))
  in
  Buffer.add_string b
    (Printf.sprintf "%-12s %12s %12s %12s %12s\n" "" "direct-IR" "HLS C++"
       "direct/dyn" "cpp/dyn");
  row "latency" (fun r _ -> string_of_int r.E.latency);
  row "BRAM" (fun r _ -> string_of_int r.E.resources.E.bram);
  row "DSP" (fun r _ -> string_of_int r.E.resources.E.dsp);
  row "time (ms)" (fun _ s -> Printf.sprintf "%.1f" (s *. 1000.0));
  Buffer.add_string b
    (Printf.sprintf "latency ratio (cpp/direct): %.3f\n" c.Handlers.cm_ratio);
  Buffer.contents b

(** `mhlsc cosim` (stdout part; the exit code comes from [ok]). *)
let cosim (cs : Flow.cosim_outcome) : string =
  if cs.Flow.ok then
    Printf.sprintf "cosim PASS (max relative error %.2e)\n"
      cs.Flow.max_abs_error
  else
    "cosim FAIL\n"
    ^ String.concat "" (List.map (fun d -> d ^ "\n") cs.Flow.details)

(** `mhlsc lint --list-rules`: one row per rule from the registry. *)
let rule_list ~json =
  let cat = Hls_backend.Lint.catalog in
  if json then
    Printf.sprintf "[%s]\n"
      (String.concat ", "
         (List.map
            (fun (id, sev, summary) ->
              Printf.sprintf
                "{\"id\": \"%s\", \"severity\": \"%s\", \"summary\": \"%s\"}"
                id
                (Support.Diag.severity_name sev)
                summary)
            cat))
  else
    String.concat ""
      (List.map
         (fun (id, sev, summary) ->
           Printf.sprintf "%-8s %-8s %s\n" id
             (Support.Diag.severity_name sev)
             summary)
         cat)

(** `mhlsc dse` tail: best point or infeasibility note. *)
let dse_best (r : P.dse_resp) : string =
  match r.P.dr_best with
  | Some (label, latency) ->
      Printf.sprintf "\nbest: %s (%d cycles)\n" label latency
  | None -> "\nno feasible design point under this budget\n"

(** `mhlsc client`: any reply as one JSON document (the response frame
    without the envelope id). *)
let reply_json (r : P.reply) : string =
  Support.Json.to_string
    (P.frame_to_json (P.Response { r_id = 0; r_reply = r }))

(** `mhlsc serve --stats`-style human summary of a stats payload. *)
let stats (s : P.stats_resp) : string =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf
       "served %d (evaluated %d, coalesced %d, memo hits %d, busy %d)\n"
       s.P.st_served s.P.st_evaluated s.P.st_coalesced s.P.st_memo_hits
       s.P.st_busy);
  Buffer.add_string b
    (Printf.sprintf "driver cache: %d hits, %d misses; queue %d/%d\n"
       s.P.st_cache_hits s.P.st_cache_misses s.P.st_queue_depth
       s.P.st_queue_max);
  Buffer.add_string b
    (Printf.sprintf "in flight %d%s; cancelled %d, shed %d\n" s.P.st_inflight
       (match s.P.st_running with
       | [] -> ""
       | running ->
           Printf.sprintf " (%s)"
             (String.concat ", "
                (List.map (fun (k, n) -> Printf.sprintf "%s=%d" k n) running)))
       s.P.st_cancelled s.P.st_shed);
  List.iter
    (fun l ->
      Buffer.add_string b
        (Printf.sprintf "  %-8s %4d requests, p50 %.1f ms, p99 %.1f ms\n"
           l.P.ls_kind l.P.ls_count l.P.ls_p50_ms l.P.ls_p99_ms))
    s.P.st_latency;
  Buffer.contents b
