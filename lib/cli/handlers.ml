(** The command registry: every [mhlsc] subcommand as a pure handler
    [request -> (response, Diag.t list) result] over the serve
    {!Mhls_serve.Protocol} types.

    The argv front-end ([bin/mhlsc.ml]) and the daemon dispatcher
    ({!dispatch}) call the {e same} functions, so the CLI and the
    service cannot drift: a handler never prints, never exits, and
    reports every failure as a {!Support.Diag.t} list.  Rendering the
    responses back into the CLI's historical output formats lives in
    {!Render}; exception-to-exit-code conversion stays in the
    executable.

    Jobs that compile kernels ({!compile}) run on the {!env}'s
    long-lived driver session, so the domain pool and the
    content-addressed result cache stay warm across requests — the
    whole point of [mhlsc serve]. *)

module K = Workloads.Kernels
module E = Hls_backend.Estimate
module D = Mhls_driver.Driver
module P = Mhls_serve.Protocol
module Diag = Support.Diag

let ( let* ) = Result.bind

(* ------------------------------------------------------------------ *)
(* Environment                                                        *)
(* ------------------------------------------------------------------ *)

(** Long-lived handler state: the driver session (domain pool + result
    cache).  The CLI builds a throwaway one per invocation; the daemon
    keeps one for its whole lifetime. *)
type env = {
  session : D.session;
  cache_dir : string option;  (** shared with DSE's internal sessions *)
  jobs : int;
}

let create_env ?cache_dir ?(jobs = 1) ?(oversubscribe = false) () : env =
  {
    session = D.create_session ?cache_dir ~jobs ~oversubscribe ();
    cache_dir;
    jobs;
  }

let close_env (env : env) : unit = D.close_session env.session

(** The serve reactor's executor: hand one group evaluation to a
    session worker domain.  [false] (run it inline) on a closed
    session or an inline pool. *)
let background (env : env) (task : unit -> unit) : bool =
  D.background env.session task

(** Driver result-cache (hits, misses) — the [stats] request reports
    these next to the server's own counters. *)
let counters (env : env) : int * int =
  (D.session_hits env.session, D.session_misses env.session)

(* ------------------------------------------------------------------ *)
(* Shared resolution helpers                                          *)
(* ------------------------------------------------------------------ *)

let find_kernel (name : string) : (K.kernel, Diag.t list) result =
  match K.by_name name with
  | Some k -> Ok k
  | None ->
      Error
        [
          Diag.error ~rule:"HLS903" "unknown kernel '%s'" name
            ~hint:"try `mhlsc list`";
        ]

let flow_of_name : string -> (Flow.flow_kind, Diag.t list) result = function
  | "direct" | "direct-ir" -> Ok Flow.Direct_ir
  | "cpp" | "hls-cpp" -> Ok Flow.Hls_cpp
  | f ->
      Error [ P.protocol_error "unknown flow '%s' (want direct or cpp)" f ]

let sched_of_name (s : string) :
    (Hls_backend.Backend.sched, Diag.t list) result =
  match Hls_backend.Backend.sched_of_name s with
  | Some sc -> Ok sc
  | None ->
      Error
        [ P.protocol_error "unknown sched '%s' (want static or dynamic)" s ]

(** The DSE request's backend axis: [static], [dynamic], or [both]. *)
let scheds_of_name :
    string -> (Hls_backend.Backend.sched list, Diag.t list) result = function
  | "both" -> Ok Hls_backend.Backend.all_scheds
  | s -> Result.map (fun sc -> [ sc ]) (sched_of_name s)

let strategy_of_name : string -> (K.strategy, Diag.t list) result = function
  | "inner" -> Ok K.Inner
  | "middle" -> Ok K.Middle
  | s ->
      Error
        [ P.protocol_error "unknown strategy '%s' (want inner or middle)" s ]

(** Protocol directives to kernel directives; [ii <= 0] disables
    pipelining, mirroring the CLI's [--pipeline 0]. *)
let directives_of_protocol (d : P.directives) :
    (K.directives, Diag.t list) result =
  let* strategy = strategy_of_name d.P.d_strategy in
  Ok
    {
      K.pipeline_ii =
        (match d.P.d_ii with Some ii when ii <= 0 -> None | ii -> ii);
      K.unroll = d.P.d_unroll;
      K.strategy;
      K.partitions = d.P.d_partitions;
    }

(** Parse repeatable CLI [--partition ARG:KIND:FACTOR:DIM] specs into
    protocol form. *)
let parse_partitions (specs : string list) :
    ((string * string * int * int) list, Diag.t list) result =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | spec :: rest -> (
        match String.split_on_char ':' spec with
        | [ a; kind; f; d ] -> (
            match (int_of_string_opt f, int_of_string_opt d) with
            | Some f, Some d -> go ((a, kind, f, d) :: acc) rest
            | _ -> Error [ P.protocol_error "bad partition spec: %s" spec ])
        | _ -> Error [ P.protocol_error "bad partition spec: %s" spec ])
  in
  go [] specs

(** Resolve pass-pipeline knobs; unknown pass names are HLS900
    diagnostics (from the pipeline registry), never exceptions. *)
let pipeline_of ?top ?(strict = true) ~(passes : string list option)
    ~(disable : string list) () : (Adaptor.Pipeline.t, Diag.t list) result =
  let wrap = Result.map_error (fun d -> [ d ]) in
  let* base =
    match passes with
    | None -> Ok { Adaptor.Pipeline.default with Adaptor.Pipeline.top; strict }
    | Some names -> wrap (Adaptor.Pipeline.of_names ?top ~strict names)
  in
  List.fold_left
    (fun acc name ->
      let* p = acc in
      wrap (Adaptor.Pipeline.disable name p))
    (Ok base) disable

let inner_ii (r : E.report) : int =
  List.fold_left
    (fun acc (l : E.loop_report) ->
      match l.E.achieved_ii with Some ii -> max acc ii | None -> acc)
    0 r.E.loops

(* ------------------------------------------------------------------ *)
(* Service handlers (shared by argv and daemon)                       *)
(* ------------------------------------------------------------------ *)

(** Compile one kernel through the env's driver session — warm pool,
    warm cache, per-request pipeline override.  Cached per-pass trace
    records are replayed into [trace] so streaming clients see the
    passes either way. *)
let compile (env : env) ~(trace : Support.Tracing.hook)
    (c : P.compile_req) : (P.compile_resp, Diag.t list) result =
  let* k = find_kernel c.P.c_kernel in
  let* flow = flow_of_name c.P.c_flow in
  let* sched = sched_of_name c.P.c_sched in
  let* d = directives_of_protocol c.P.c_directives in
  let* pipeline =
    pipeline_of ~top:k.K.kname ~passes:c.P.c_passes ~disable:c.P.c_disable ()
  in
  let job =
    D.job ~flow ~sched ~clock_ns:c.P.c_clock_ns ~kernel:k.K.kname d
  in
  let* outs = D.submit ~pipeline env.session [ job ] in
  match outs with
  | [ o ] -> (
      List.iter
        (fun (r : Mhls_driver.Trace.record) ->
          trace
            (Support.Tracing.with_alloc
               ~minor_words:r.Mhls_driver.Trace.tr_minor_words
               ~major_words:r.Mhls_driver.Trace.tr_major_words
               (Support.Tracing.event ~stage:r.Mhls_driver.Trace.tr_stage
                  ~pass:r.Mhls_driver.Trace.tr_pass
                  ~seconds:r.Mhls_driver.Trace.tr_seconds
                  ~before:r.Mhls_driver.Trace.tr_instrs_before
                  ~after:r.Mhls_driver.Trace.tr_instrs_after)))
        o.D.o_trace;
      match o.D.o_qor with
      | Error ds -> Error ds
      | Ok r ->
          Ok
            {
              P.cr_kernel = k.K.kname;
              cr_flow = Flow.flow_name flow;
              cr_latency = r.E.latency;
              cr_ii = inner_ii r;
              cr_bram = r.E.resources.E.bram;
              cr_dsp = r.E.resources.E.dsp;
              cr_lut = r.E.resources.E.lut;
              cr_seconds = o.D.o_seconds;
              cr_from_cache = o.D.o_from_cache;
              cr_adaptor = o.D.o_adaptor;
              cr_report = Hls_backend.Report.render r;
            })
  | outs ->
      Error
        [
          Diag.error ~rule:"HLS000" "driver returned %d outcomes for one job"
            (List.length outs);
        ]

(** Lint a built-in kernel (on the adaptor's HLS-ready output) or raw
    IR source (as written).  Findings are the {e successful} payload —
    only setup problems (no target, unknown kernel, bad pipeline) are
    handler errors; an unparseable source becomes an HLS000 finding,
    matching the CLI's historical behavior. *)
let lint (l : P.lint_req) : (P.lint_resp, Diag.t list) result =
  let only = l.P.l_rules in
  let werror = l.P.l_werror in
  match (l.P.l_kernel, l.P.l_source) with
  | Some _, Some _ ->
      Error [ P.protocol_error "lint takes a kernel or source text, not both" ]
  | None, None ->
      Error [ P.protocol_error "lint needs a kernel or source text" ]
  | None, Some src -> (
      match Llvmir.Lparser.parse_module src with
      | m ->
          Ok { P.lr_diags = Hls_backend.Lint.run ?only ~werror ?top:l.P.l_top m }
      | exception Support.Err.Compile_error e ->
          Ok { P.lr_diags = [ Diag.of_err ~rule:"HLS000" e ] })
  | Some name, None ->
      let* k = find_kernel name in
      let* d = directives_of_protocol l.P.l_directives in
      let* pipeline =
        pipeline_of ~top:k.K.kname ~passes:l.P.l_passes ~disable:l.P.l_disable
          ()
      in
      Ok { P.lr_diags = Flow.lint_kernel ~directives:d ~pipeline ?only ~werror k }

(** Run the LLVM cleanup pipeline (or just the parallel-safety
    checker) on source text or a generated [--synth N] module. *)
let opt (o : P.opt_req) : (P.opt_resp, Diag.t list) result =
  let module LP = Llvmir.Pass in
  let* m =
    match (o.P.op_source, o.P.op_synth) with
    | Some _, Some _ ->
        Error [ P.protocol_error "opt takes source or synth, not both" ]
    | None, None ->
        Error [ P.protocol_error "opt needs source text or a synth size" ]
    | Some src, None -> (
        match
          let m = Llvmir.Lparser.parse_module src in
          Llvmir.Lverifier.verify_module m;
          m
        with
        | m -> Ok m
        | exception Support.Err.Compile_error e ->
            Error [ Diag.of_err ~rule:"HLS000" e ])
    | None, Some n -> Ok (Mhls_driver.Synth.many_kernels ~n)
  in
  if o.P.op_parsafe then
    let v = Llvmir.Parsafe.check m in
    let safe =
      match v with Llvmir.Parsafe.Safe -> true | Llvmir.Parsafe.Unsafe _ -> false
    in
    Ok
      {
        P.or_ir = "";
        or_passes = 0;
        or_seconds = 0.0;
        or_par_status = None;
        or_verdict =
          Some
            (if o.P.op_json then Llvmir.Parsafe.to_json v
             else Llvmir.Parsafe.verdict_to_string v);
        or_safe = safe;
      }
  else
    let* passes =
      match o.P.op_passes with
      | None -> Ok LP.default_pipeline
      | Some names ->
          let rec go acc = function
            | [] -> Ok (List.rev acc)
            | name :: rest -> (
                match LP.by_name name with
                | Some p -> go (p :: acc) rest
                | None ->
                    Error [ P.protocol_error "unknown LLVM pass %S" name ])
          in
          go [] names
    in
    let m', timings, par_status =
      if o.P.op_parallel then
        let fanout = Mhls_driver.Pool.fanout ~jobs:o.P.op_jobs in
        let m', ts, status = LP.run_pipeline_parallel ~fanout passes m in
        (m', ts, Some (LP.par_status_to_string status))
      else
        let m', ts = LP.run_pipeline passes m in
        (m', ts, None)
    in
    let total =
      List.fold_left (fun a (t : LP.timing) -> a +. t.LP.seconds) 0.0 timings
    in
    Ok
      {
        P.or_ir = Llvmir.Lprinter.module_to_string m';
        or_passes = List.length timings;
        or_seconds = total;
        or_par_status = par_status;
        or_verdict = None;
        or_safe = true;
      }

(** Design-space exploration.  The search runs its own driver session
    but shares the on-disk result cache, so daemon-warmed entries keep
    paying off. *)
let dse ?cache_dir ~(jobs : int) ~(trace : Support.Tracing.hook)
    (d : P.dse_req) : (P.dse_resp, Diag.t list) result =
  let module S = Mhls_dse.Search in
  let* k = find_kernel d.P.ds_kernel in
  let* scheds = scheds_of_name d.P.ds_sched in
  let dp = S.default_params in
  let params =
    {
      S.max_evals = Option.value d.P.ds_max_evals ~default:dp.S.max_evals;
      S.max_rounds = Option.value d.P.ds_rounds ~default:dp.S.max_rounds;
      S.stable_rounds = Option.value d.P.ds_stable ~default:dp.S.stable_rounds;
      S.budget =
        {
          S.b_max_bram = d.P.ds_budget_bram;
          S.b_max_dsp = d.P.ds_budget_dsp;
          S.b_max_lut = d.P.ds_budget_lut;
        };
      S.clock_ns = d.P.ds_clock_ns;
    }
  in
  let o = S.search ~params ~scheds ?cache_dir ~jobs ~trace k in
  Ok
    {
      P.dr_report = S.render o;
      dr_best =
        Option.map
          (fun (b : S.point) -> (b.S.pt_label, b.S.pt_report.E.latency))
          (S.best o);
      dr_json = Mhls_dse.Dse_json.to_json ~tool:D.tool_version o;
    }

(** Differential fuzzing.  [repro_dir] is a CLI-only extra (the daemon
    does not write repro files into its own working directory). *)
let fuzz ?repro_dir ~(trace : Support.Tracing.hook) (f : P.fuzz_req) :
    (P.fuzz_resp, Diag.t list) result =
  let module F = Mhls_difftest.Difftest in
  let* stages =
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | s :: rest -> (
          match F.stage_of_name s with
          | Some st -> go (st :: acc) rest
          | None ->
              Error
                [
                  P.protocol_error
                    "unknown stage %S (expected lower, adapted or cpp)" s;
                ])
    in
    go [] f.P.f_stages
  in
  let r =
    F.run_batch ~trace ~stages ~shrink:f.P.f_shrink ?repro_dir
      ~jobs:f.P.f_jobs ~seed:f.P.f_seed ~count:f.P.f_count ()
  in
  Ok { P.fr_report = F.render r; fr_failures = List.length r.F.r_failures }

let list_kernels () : P.kernel_info list =
  List.map
    (fun k -> { P.k_name = k.K.kname; k_description = k.K.description })
    (K.all ())

(** The daemon dispatcher: one entry per service request kind, closing
    over the shared {!env}.  [Stats]/[Ping]/[Shutdown] never reach a
    dispatcher — the server answers them itself. *)
let dispatch (env : env) : Mhls_serve.Server.dispatch =
 fun ~trace req ->
  match req with
  | P.Compile c -> Result.map (fun r -> P.R_compile r) (compile env ~trace c)
  | P.Lint l -> Result.map (fun r -> P.R_lint r) (lint l)
  | P.Opt o -> Result.map (fun r -> P.R_opt r) (opt o)
  | P.Dse d ->
      Result.map
        (fun r -> P.R_dse r)
        (dse ?cache_dir:env.cache_dir ~jobs:env.jobs ~trace d)
  | P.Fuzz f -> Result.map (fun r -> P.R_fuzz r) (fuzz ~trace f)
  | P.List_kernels -> Ok (P.R_list (list_kernels ()))
  | P.Stats | P.Ping | P.Shutdown ->
      Error
        [ P.protocol_error "request is handled by the server, not the dispatcher" ]

(* ------------------------------------------------------------------ *)
(* CLI-only handlers (no daemon surface, same purity contract)        *)
(* ------------------------------------------------------------------ *)

type emit_stage = Mhir | Mhir_generic | Llvm | Adapted | Cpp

(** Print a kernel's IR at a chosen stage. *)
let emit ~(kernel : string) ~(stage : emit_stage)
    ~(directives : P.directives) : (string, Diag.t list) result =
  let* k = find_kernel kernel in
  let* d = directives_of_protocol directives in
  let m = k.K.build d in
  match stage with
  | Mhir -> Ok (Mhir.Printer.module_to_string m)
  | Mhir_generic -> Ok (Mhir.Printer.module_to_string ~generic:true m)
  | Llvm ->
      let lm = Lowering.Lower.lower_module (Mhir.Canonicalize.run m) in
      let lm =
        fst (Llvmir.Pass.run_pipeline Llvmir.Pass.default_pipeline lm)
      in
      Ok (Llvmir.Lprinter.module_to_string lm)
  | Adapted ->
      let* lm, _, _ = Flow.direct_ir_frontend m in
      Ok (Llvmir.Lprinter.module_to_string lm)
  | Cpp ->
      let _, cpp, _ = Flow.hls_cpp_frontend m in
      Ok cpp

type compare_resp = {
  cm_direct : E.report;
  cm_cpp : E.report;
  cm_direct_dyn : E.report;
  cm_cpp_dyn : E.report;
  cm_direct_seconds : float;
  cm_cpp_seconds : float;
  cm_direct_dyn_seconds : float;
  cm_cpp_dyn_seconds : float;
  cm_ratio : float;  (** cpp/direct latency on the static cells *)
}

(** Run the full 2×2 grid — frontend (direct-IR vs HLS C++) ×
    scheduling discipline (static vs dynamic) — on one kernel. *)
let compare_kernel ~(kernel : string) ~(directives : P.directives)
    ~(clock_ns : float) : (compare_resp, Diag.t list) result =
  let* k = find_kernel kernel in
  let* d = directives_of_protocol directives in
  let c = Flow.compare_flows ~directives:d ~clock_ns k in
  Ok
    {
      cm_direct = c.Flow.direct.Flow.hls;
      cm_cpp = c.Flow.cpp.Flow.hls;
      cm_direct_dyn = c.Flow.direct_dyn.Flow.hls;
      cm_cpp_dyn = c.Flow.cpp_dyn.Flow.hls;
      cm_direct_seconds = c.Flow.direct.Flow.seconds;
      cm_cpp_seconds = c.Flow.cpp.Flow.seconds;
      cm_direct_dyn_seconds = c.Flow.direct_dyn.Flow.seconds;
      cm_cpp_dyn_seconds = c.Flow.cpp_dyn.Flow.seconds;
      cm_ratio = Flow.latency_ratio c;
    }

(** Three-way co-simulation. *)
let cosim ~(kernel : string) ~(directives : P.directives) :
    (Flow.cosim_outcome, Diag.t list) result =
  let* k = find_kernel kernel in
  let* d = directives_of_protocol directives in
  Ok (Flow.cosim ~directives:d k)

type adapt_resp = {
  a_ir : string;  (** legalized IR (stdout) *)
  a_report : string;  (** rendered adaptor report (stderr) *)
}

(** Run the adaptor on raw IR source (this tool's textual dialect). *)
let adapt ~(source : string) ~(strict : bool)
    ~(passes : string list option) ~(disable : string list) () :
    (adapt_resp, Diag.t list) result =
  let* m =
    match
      let m = Llvmir.Lparser.parse_module source in
      Llvmir.Lverifier.verify_module m;
      m
    with
    | m -> Ok m
    | exception Support.Err.Compile_error e ->
        Error [ Diag.of_err ~rule:"HLS000" e ]
  in
  let* pipeline = pipeline_of ~strict ~passes ~disable () in
  let* m', report = Adaptor.run ~pipeline m in
  Ok
    {
      a_ir = Llvmir.Lprinter.module_to_string m';
      a_report = Adaptor.report_to_string report;
    }

type synth_mlir_resp = {
  sm_report : string;  (** rendered synthesis report (stdout) *)
  sm_aux : string;  (** adaptor report / generated C++ for [-v] (stderr) *)
}

(** Compile a textual multi-level IR module end-to-end. *)
let synth_mlir ~(source : string) ~(top : string option)
    ~(flow : Flow.flow_kind) ?(sched = Hls_backend.Backend.Static)
    ~(clock_ns : float) () : (synth_mlir_resp, Diag.t list) result =
  let* m =
    match
      let m = Mhir.Parser.parse_module source in
      Mhir.Verifier.verify_module m;
      m
    with
    | m -> Ok m
    | exception Support.Err.Compile_error e ->
        Error [ Diag.of_err ~rule:"HLS000" e ]
  in
  let* top =
    match (top, m.Mhir.Ir.funcs) with
    | Some t, _ -> Ok t
    | None, f :: _ -> Ok f.Mhir.Ir.fname
    | None, [] -> Error [ P.protocol_error "module has no functions" ]
  in
  let* lm, aux =
    match flow with
    | Flow.Direct_ir ->
        let* lm, report, _ = Flow.direct_ir_frontend m in
        Ok (lm, Adaptor.report_to_string report)
    | Flow.Hls_cpp ->
        let lm, cpp, _ = Flow.hls_cpp_frontend m in
        Ok (lm, cpp)
  in
  let r = Hls_backend.Backend.synthesize ~clock_ns ~sched ~top lm in
  Ok { sm_report = Hls_backend.Report.render r; sm_aux = aux }

(** Batch compilation from a manifest or the built-in grid.  [sched]
    picks the estimation backend for the built-in grid; manifest lines
    choose their own via the [sched=] key. *)
let batch ~(manifest : string option) ~(all_kernels : bool)
    ~(both_flows : bool) ?(sched = Hls_backend.Backend.Static)
    ~(jobs : int) ~(cache_dir : string option) ~(clock_ns : float)
    ~(passes : string list option) ~(disable : string list) () :
    (D.batch_report, Diag.t list) result =
  let* pipeline = pipeline_of ~passes ~disable () in
  let* js =
    match (manifest, all_kernels) with
    | Some text, _ ->
        Result.map_error (fun d -> [ d ]) (D.parse_manifest text)
    | None, true ->
        let flows =
          if both_flows then [ Flow.Direct_ir; Flow.Hls_cpp ]
          else [ Flow.Direct_ir ]
        in
        Ok (D.all_kernel_jobs ~flows ~scheds:[ sched ] ~clock_ns ())
    | None, false ->
        Error [ P.protocol_error "batch needs a manifest or --all-kernels" ]
  in
  Ok (D.run_batch ~pipeline ?cache_dir ~jobs js)
