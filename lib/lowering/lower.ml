(** MLIR → LLVM IR conversion, mirroring the upstream
    [-convert-{affine,scf,memref,arith,func}-to-llvm] + [mlir-translate]
    path.

    The default {!modern} style reproduces the constructs that make
    MLIR-produced IR unreadable by the Vitis-era LLVM and that the
    paper's adaptor must legalize:
    - {b opaque pointers} ([ptr]) everywhere;
    - {b memref descriptors}: each memref becomes a
      [{ ptr, ptr, i64, [r x i64], [r x i64] }] aggregate built with
      [insertvalue]; loads/stores extract the aligned pointer and index
      it with a {e linearized} flat GEP, erasing the multi-dimensional
      structure;
    - {b modern intrinsics}: [llvm.smax/smin], [llvm.fmuladd] (fused
      from [mulf]+[addf]), [llvm.lifetime.*] around local buffers,
      [llvm.assume] of loop-bound facts;
    - {b loop metadata}: [llvm.loop.*] keys on the latch branch carry
      the HLS directives (pipeline II, unroll factor, trip count).

    Memref function arguments use the bare-pointer calling convention
    ([-use-bare-ptr-memref-call-conv]): one pointer parameter per
    memref, repacked into a descriptor in the entry block. *)

open Mhir
module Ltype = Llvmir.Ltype
module Lvalue = Llvmir.Lvalue
module Linstr = Llvmir.Linstr
module Lmodule = Llvmir.Lmodule
module Sym = Support.Interner

let fail = Support.Err.fail ~pass:"lowering"

type style = {
  opaque_pointers : bool;
  use_descriptors : bool;
  modern_intrinsics : bool;
  emit_lifetimes : bool;
  emit_assumes : bool;
  loop_metadata : bool;
}

(** What [mlir-translate] produces today (LLVM 14+ dialect). *)
let modern =
  {
    opaque_pointers = true;
    use_descriptors = true;
    modern_intrinsics = true;
    emit_lifetimes = true;
    emit_assumes = true;
    loop_metadata = true;
  }

(** A conservative classic style (typed pointers, no descriptors); used
    by tests to cross-check the adaptor against a direct lowering. *)
let classic =
  {
    opaque_pointers = false;
    use_descriptors = false;
    modern_intrinsics = false;
    emit_lifetimes = false;
    emit_assumes = false;
    loop_metadata = true;
  }

(* ------------------------------------------------------------------ *)
(* Types                                                              *)
(* ------------------------------------------------------------------ *)

let rec lower_scalar_ty (t : Types.ty) : Ltype.t =
  match t with
  | Types.I1 -> Ltype.I1
  | Types.I32 -> Ltype.I32
  | Types.I64 | Types.Index -> Ltype.I64
  | Types.F32 -> Ltype.Float
  | Types.F64 -> Ltype.Double
  | Types.Memref _ -> fail "memref is not a scalar type"

(** Nested-array LLVM type of a memref: [memref<4x8xf32>] →
    [[4 x [8 x float]]]. *)
and memref_array_ty (t : Types.ty) : Ltype.t =
  match t with
  | Types.Memref (shape, elem) ->
      List.fold_right
        (fun d acc -> Ltype.Array (d, acc))
        shape
        (lower_scalar_ty elem)
  | _ -> fail "memref_array_ty: not a memref"

(** Descriptor struct type for a rank-[r] memref. *)
let descriptor_ty (style : style) (t : Types.ty) : Ltype.t =
  match t with
  | Types.Memref (shape, elem) ->
      let rank = List.length shape in
      let p =
        if style.opaque_pointers then Ltype.opaque_ptr
        else Ltype.ptr (lower_scalar_ty elem)
      in
      Ltype.Struct
        [ p; p; Ltype.I64; Ltype.Array (rank, Ltype.I64); Ltype.Array (rank, Ltype.I64) ]
  | _ -> fail "descriptor_ty: not a memref"

(** Row-major strides of a static shape. *)
let strides_of_shape shape =
  let n = List.length shape in
  let arr = Array.of_list shape in
  let strides = Array.make n 1 in
  for i = n - 2 downto 0 do
    strides.(i) <- strides.(i + 1) * arr.(i + 1)
  done;
  Array.to_list strides

(* ------------------------------------------------------------------ *)
(* Conversion state                                                   *)
(* ------------------------------------------------------------------ *)

(** How a lowered memref value is represented. *)
type memref_repr = {
  desc : Lvalue.t option;  (** descriptor aggregate (modern style) *)
  base_ptr : Lvalue.t;  (** data pointer (bare or extracted) *)
  shape : int list;
  elem : Types.ty;
}

type env = {
  style : style;
  b : Llvmir.Lbuilder.t;
  values : (int, Lvalue.t) Hashtbl.t;  (** scalar mhir values *)
  memrefs : (int, memref_repr) Hashtbl.t;
  mutable decls : Llvmir.Lmodule.decl list;
  mutable loop_counter : int;
}

module B = Llvmir.Lbuilder

let bind env (v : Ir.value) (lv : Lvalue.t) = Hashtbl.replace env.values v.Ir.id lv

let lookup env (v : Ir.value) : Lvalue.t =
  match Hashtbl.find_opt env.values v.Ir.id with
  | Some lv -> lv
  | None -> fail "value %%%d has no lowered binding" v.Ir.id

let lookup_memref env (v : Ir.value) : memref_repr =
  match Hashtbl.find_opt env.memrefs v.Ir.id with
  | Some r -> r
  | None -> fail "memref %%%d has no lowered representation" v.Ir.id

let need_decl env (d : Llvmir.Lmodule.decl) =
  if not (List.exists (fun (x : Llvmir.Lmodule.decl) -> x.dname = d.dname) env.decls)
  then env.decls <- d :: env.decls

let elem_lty env (r : memref_repr) =
  ignore env;
  lower_scalar_ty r.elem

let ptr_ty env elem =
  if env.style.opaque_pointers then Ltype.opaque_ptr else Ltype.ptr elem

(* ------------------------------------------------------------------ *)
(* Descriptor construction                                            *)
(* ------------------------------------------------------------------ *)

(** Pack a bare data pointer into a full descriptor with static
    shape/stride fields — the [insertvalue] chain MLIR emits. *)
let build_descriptor env (mty : Types.ty) (data : Lvalue.t) : Lvalue.t =
  let dty = descriptor_ty env.style mty in
  let shape, _elem =
    match mty with
    | Types.Memref (s, e) -> (s, e)
    | _ -> fail "build_descriptor: not a memref"
  in
  let strides = strides_of_shape shape in
  let agg = Lvalue.Const (Lvalue.CUndef dty) in
  let agg = B.insertvalue env.b agg data [ 0 ] in
  let agg = B.insertvalue env.b agg data [ 1 ] in
  let agg = B.insertvalue env.b agg (Lvalue.ci64 0) [ 2 ] in
  let agg =
    List.fold_left
      (fun agg (i, d) -> B.insertvalue env.b agg (Lvalue.ci64 d) [ 3; i ])
      agg
      (List.mapi (fun i d -> (i, d)) shape)
  in
  List.fold_left
    (fun agg (i, s) -> B.insertvalue env.b agg (Lvalue.ci64 s) [ 4; i ])
    agg
    (List.mapi (fun i s -> (i, s)) strides)

(** Data pointer of a memref representation; extracts descriptor field 1
    in modern style (each access re-extracts, as MLIR's generated code
    does before instcombine cleans it up). *)
let data_ptr env (r : memref_repr) : Lvalue.t =
  match (env.style.use_descriptors, r.desc) with
  | true, Some d ->
      B.extractvalue env.b d [ 1 ] (ptr_ty env (lower_scalar_ty r.elem))
  | _ -> r.base_ptr

(* ------------------------------------------------------------------ *)
(* Subscript lowering                                                 *)
(* ------------------------------------------------------------------ *)

(** Expand an affine expression into LLVM i64 arithmetic. *)
let rec lower_affine_expr env ~dims ~syms (e : Affine_expr.t) : Lvalue.t =
  match e with
  | Affine_expr.Const c -> Lvalue.ci64 c
  | Affine_expr.Dim i -> List.nth dims i
  | Affine_expr.Sym i -> List.nth syms i
  | Affine_expr.Add (a, b) ->
      B.ibin env.b Linstr.Add
        (lower_affine_expr env ~dims ~syms a)
        (lower_affine_expr env ~dims ~syms b)
  | Affine_expr.Mul (a, b) ->
      B.ibin env.b Linstr.Mul
        (lower_affine_expr env ~dims ~syms a)
        (lower_affine_expr env ~dims ~syms b)
  | Affine_expr.Mod (a, b) ->
      B.ibin env.b Linstr.SRem
        (lower_affine_expr env ~dims ~syms a)
        (lower_affine_expr env ~dims ~syms b)
  | Affine_expr.FloorDiv (a, b) ->
      B.ibin env.b Linstr.SDiv
        (lower_affine_expr env ~dims ~syms a)
        (lower_affine_expr env ~dims ~syms b)
  | Affine_expr.CeilDiv (a, b) ->
      let va = lower_affine_expr env ~dims ~syms a in
      let vb = lower_affine_expr env ~dims ~syms b in
      let bm1 = B.ibin env.b Linstr.Sub vb (Lvalue.ci64 1) in
      let sum = B.ibin env.b Linstr.Add va bm1 in
      B.ibin env.b Linstr.SDiv sum vb

let lower_map env (map : Affine_map.t) (operands : Lvalue.t list) :
    Lvalue.t list =
  let rec take n l =
    if n = 0 then ([], l)
    else
      match l with
      | x :: tl ->
          let a, b = take (n - 1) tl in
          (x :: a, b)
      | [] -> fail "affine map operand list too short"
  in
  let dims, syms = take map.Affine_map.num_dims operands in
  List.map (lower_affine_expr env ~dims ~syms) map.Affine_map.exprs

(** Address computation for an access.

    Modern/descriptor style: linearize ([(i0*s0) + (i1*s1) + ...]) and
    emit a flat one-index GEP on the element type — the shape
    information is {e gone} from the IR, which is exactly what the
    adaptor's descriptor-elimination pass has to undo.

    Classic style: emit a multi-dimensional GEP over the nested array
    type. *)
let access_addr env (r : memref_repr) (idxs : Lvalue.t list) : Lvalue.t =
  let elem = lower_scalar_ty r.elem in
  if env.style.use_descriptors then begin
    let strides = strides_of_shape r.shape in
    let lin =
      List.fold_left2
        (fun acc idx stride ->
          let term =
            if stride = 1 then idx
            else B.ibin env.b Linstr.Mul idx (Lvalue.ci64 stride)
          in
          match acc with
          | None -> Some term
          | Some a -> Some (B.ibin env.b Linstr.Add a term))
        None idxs strides
    in
    let lin = match lin with Some v -> v | None -> Lvalue.ci64 0 in
    let ptr = data_ptr env r in
    B.gep env.b ~opaque:env.style.opaque_pointers ~src_ty:elem ptr [ lin ]
  end
  else begin
    let arr_ty = memref_array_ty (Types.Memref (r.shape, r.elem)) in
    B.gep env.b ~src_ty:arr_ty r.base_ptr (Lvalue.ci64 0 :: idxs)
  end

(* ------------------------------------------------------------------ *)
(* Op lowering                                                        *)
(* ------------------------------------------------------------------ *)

let cmpi_pred = function
  | "eq" -> Linstr.IEq
  | "ne" -> Linstr.INe
  | "slt" -> Linstr.ISlt
  | "sle" -> Linstr.ISle
  | "sgt" -> Linstr.ISgt
  | "sge" -> Linstr.ISge
  | "ult" -> Linstr.IUlt
  | "ule" -> Linstr.IUle
  | "ugt" -> Linstr.IUgt
  | "uge" -> Linstr.IUge
  | p -> fail "unknown cmpi predicate %s" p

let cmpf_pred = function
  | "oeq" -> Linstr.FOeq
  | "one" -> Linstr.FOne
  | "olt" -> Linstr.FOlt
  | "ole" -> Linstr.FOle
  | "ogt" -> Linstr.FOgt
  | "oge" -> Linstr.FOge
  | p -> fail "unknown cmpf predicate %s" p

let float_suffix = function
  | Ltype.Float -> "f32"
  | Ltype.Double -> "f64"
  | t -> fail "float_suffix: %s" (Ltype.to_string t)

let int_suffix = function
  | Ltype.I32 -> "i32"
  | Ltype.I64 -> "i64"
  | t -> fail "int_suffix: %s" (Ltype.to_string t)

(** Use-count table for the fmuladd fusion peephole. *)
let use_counts_of_func (f : Ir.func) =
  let tbl = Hashtbl.create 64 in
  Ir.walk_func
    (fun o ->
      List.iter
        (fun (v : Ir.value) ->
          Hashtbl.replace tbl v.Ir.id
            (1 + Option.value ~default:0 (Hashtbl.find_opt tbl v.Ir.id)))
        o.Ir.operands)
    f;
  tbl

type fctx = {
  uses : (int, int) Hashtbl.t;
  (* mulf results fused into fmuladd: id -> (lhs, rhs) *)
  fused_muls : (int, Ir.value * Ir.value) Hashtbl.t;
  func : Ir.func;
}

(** Materialize a deferred [mulf] (one that was scheduled for fmuladd
    fusion but is needed as a plain value after all). *)
let force env fctx (v : Ir.value) : Lvalue.t =
  match Hashtbl.find_opt fctx.fused_muls v.Ir.id with
  | Some (a, b) ->
      Hashtbl.remove fctx.fused_muls v.Ir.id;
      let r = B.fbin env.b Linstr.FMul (lookup env a) (lookup env b) in
      bind env v r;
      r
  | None -> lookup env v

let rec lower_block env fctx (ops : Ir.op list) : unit =
  match ops with
  | [] -> ()
  | o :: rest ->
      lower_op env fctx rest o;
      lower_block env fctx rest

(** [rest] = the ops following [o] in the same block (used by the
    fmuladd fusion peephole to look ahead). *)
and lower_op env fctx (rest : Ir.op list) (o : Ir.op) : unit =
  let open Linstr in
  let b = env.b in
  let res () = List.hd o.Ir.results in
  let operand n = List.nth o.Ir.operands n in
  let lv n = force env fctx (operand n) in
  let bind1 v = bind env (res ()) v in
  match o.Ir.name with
  | "arith.constant" -> (
      let r = res () in
      match Attr.find_exn o.Ir.attrs "value" with
      | Attr.Int i -> bind1 (Lvalue.ci ~ty:(lower_scalar_ty r.Ir.ty) i)
      | Attr.Float f -> bind1 (Lvalue.cf ~ty:(lower_scalar_ty r.Ir.ty) f)
      | a -> fail "bad constant %s" (Attr.to_string a))
  | "arith.addi" -> bind1 (B.ibin b Add (lv 0) (lv 1))
  | "arith.subi" -> bind1 (B.ibin b Sub (lv 0) (lv 1))
  | "arith.muli" -> bind1 (B.ibin b Mul (lv 0) (lv 1))
  | "arith.divsi" -> bind1 (B.ibin b SDiv (lv 0) (lv 1))
  | "arith.remsi" -> bind1 (B.ibin b SRem (lv 0) (lv 1))
  | "arith.divui" -> bind1 (B.ibin b UDiv (lv 0) (lv 1))
  | "arith.remui" -> bind1 (B.ibin b URem (lv 0) (lv 1))
  | "arith.floordivsi" ->
      (* expand to trunc-div with correction: q - 1 when the remainder
         is non-zero and has a sign opposite to the divisor *)
      let x = lv 0 and y = lv 1 in
      let ty = Lvalue.type_of x in
      let q = B.ibin b SDiv x y in
      let r = B.ibin b SRem x y in
      let rnz = B.icmp b INe r (Lvalue.ci ~ty 0) in
      let rneg = B.icmp b ISlt r (Lvalue.ci ~ty 0) in
      let yneg = B.icmp b ISlt y (Lvalue.ci ~ty 0) in
      let opposite = B.ibin b Xor rneg yneg in
      let adjust = B.ibin b And rnz opposite in
      let qm1 = B.ibin b Sub q (Lvalue.ci ~ty 1) in
      bind1 (B.select b adjust qm1 q)
  | "arith.andi" -> bind1 (B.ibin b And (lv 0) (lv 1))
  | "arith.ori" -> bind1 (B.ibin b Or (lv 0) (lv 1))
  | "arith.xori" -> bind1 (B.ibin b Xor (lv 0) (lv 1))
  | "arith.shli" -> bind1 (B.ibin b Shl (lv 0) (lv 1))
  | "arith.shrsi" -> bind1 (B.ibin b AShr (lv 0) (lv 1))
  | "arith.shrui" -> bind1 (B.ibin b LShr (lv 0) (lv 1))
  | "arith.maxsi" | "arith.minsi" | "arith.maxui" | "arith.minui" ->
      let x = lv 0 and y = lv 1 in
      if env.style.modern_intrinsics then begin
        let ty = Lvalue.type_of x in
        let name =
          (match o.Ir.name with
          | "arith.maxsi" -> "llvm.smax."
          | "arith.minsi" -> "llvm.smin."
          | "arith.maxui" -> "llvm.umax."
          | _ -> "llvm.umin.")
          ^ int_suffix ty
        in
        need_decl env { dname = name; dret = ty; dargs = [ ty; ty ] };
        bind1 (B.call b ~ret:ty name [ x; y ])
      end
      else begin
        let pred =
          match o.Ir.name with
          | "arith.maxsi" -> ISgt
          | "arith.minsi" -> ISlt
          | "arith.maxui" -> IUgt
          | _ -> IUlt
        in
        let c = B.icmp b pred x y in
        bind1 (B.select b c x y)
      end
  | "arith.addf" -> (
      (* fmuladd fusion: addf(mulf(a,b), c) -> llvm.fmuladd(a,b,c) *)
      let fused_operand k =
        Hashtbl.find_opt fctx.fused_muls (operand k).Ir.id
        |> Option.map (fun ab -> (k, ab))
      in
      let pick =
        match fused_operand 0 with Some x -> Some x | None -> fused_operand 1
      in
      match pick with
      | Some (k, (ma, mb)) ->
          Hashtbl.remove fctx.fused_muls (operand k).Ir.id;
          let addend = force env fctx (operand (1 - k)) in
          let va = lookup env ma and vb = lookup env mb in
          let ty = Lvalue.type_of va in
          let name = "llvm.fmuladd." ^ float_suffix ty in
          need_decl env { dname = name; dret = ty; dargs = [ ty; ty; ty ] };
          bind1 (B.call b ~ret:ty name [ va; vb; addend ])
      | None -> bind1 (B.fbin b FAdd (lv 0) (lv 1)))
  | "arith.subf" -> bind1 (B.fbin b FSub (lv 0) (lv 1))
  | "arith.mulf" ->
      let r = res () in
      (* defer if the unique use is a later addf in this block *)
      let fused =
        env.style.modern_intrinsics
        && Hashtbl.find_opt fctx.uses r.Ir.id = Some 1
        && List.exists
             (fun (o2 : Ir.op) ->
               o2.Ir.name = "arith.addf"
               && List.exists
                    (fun (v : Ir.value) -> v.Ir.id = r.Ir.id)
                    o2.Ir.operands)
             rest
      in
      if fused then
        Hashtbl.replace fctx.fused_muls r.Ir.id (operand 0, operand 1)
      else bind1 (B.fbin b FMul (lv 0) (lv 1))
  | "arith.divf" -> bind1 (B.fbin b FDiv (lv 0) (lv 1))
  | "arith.negf" ->
      let x = lv 0 in
      bind1 (B.fbin b FSub (Lvalue.cf ~ty:(Lvalue.type_of x) 0.0) x)
  | "arith.maximumf" | "arith.minimumf" ->
      let x = lv 0 and y = lv 1 in
      let c =
        B.fcmp b (if o.Ir.name = "arith.maximumf" then FOgt else FOlt) x y
      in
      bind1 (B.select b c x y)
  | "arith.cmpi" ->
      bind1
        (B.icmp b
           (cmpi_pred (Attr.as_str (Attr.find_exn o.Ir.attrs "predicate")))
           (lv 0) (lv 1))
  | "arith.cmpf" ->
      bind1
        (B.fcmp b
           (cmpf_pred (Attr.as_str (Attr.find_exn o.Ir.attrs "predicate")))
           (lv 0) (lv 1))
  | "arith.select" -> bind1 (B.select b (lv 0) (lv 1) (lv 2))
  | "arith.index_cast" ->
      let r = res () in
      let target = lower_scalar_ty r.Ir.ty in
      let v = lv 0 in
      let src = Lvalue.type_of v in
      if Ltype.equal src target then bind1 v
      else if Ltype.int_width src < Ltype.int_width target then
        bind1 (B.cast b Sext v target)
      else bind1 (B.cast b Trunc v target)
  | "arith.sitofp" -> bind1 (B.cast b Sitofp (lv 0) (lower_scalar_ty (res ()).Ir.ty))
  | "arith.fptosi" -> bind1 (B.cast b Fptosi (lv 0) (lower_scalar_ty (res ()).Ir.ty))
  | "arith.extf" -> bind1 (B.cast b Fpext (lv 0) (lower_scalar_ty (res ()).Ir.ty))
  | "arith.truncf" -> bind1 (B.cast b Fptrunc (lv 0) (lower_scalar_ty (res ()).Ir.ty))
  | "memref.alloc" | "memref.alloca" ->
      let r = res () in
      let arr_ty = memref_array_ty r.Ir.ty in
      let shape, elem =
        match r.Ir.ty with
        | Types.Memref (s, e) -> (s, e)
        | _ -> fail "memref.alloc: bad type"
      in
      let data =
        if env.style.opaque_pointers then
          B.alloca_opaque b ~name:"buf" arr_ty
        else
          let p = B.alloca b ~name:"buf" arr_ty in
          (* classic: keep nested-array pointer; bitcast to elem* not needed *)
          p
      in
      if env.style.emit_lifetimes then begin
        let pty = Lvalue.type_of data in
        need_decl env
          {
            dname = "llvm.lifetime.start.p0";
            dret = Ltype.Void;
            dargs = [ Ltype.I64; pty ];
          };
        ignore
          (B.call b ~ret:Ltype.Void "llvm.lifetime.start.p0"
             [ Lvalue.ci64 (Ltype.sizeof arr_ty); data ])
      end;
      let desc =
        if env.style.use_descriptors then
          Some (build_descriptor env r.Ir.ty data)
        else None
      in
      Hashtbl.replace env.memrefs r.Ir.id { desc; base_ptr = data; shape; elem }
  | "memref.dealloc" ->
      if env.style.emit_lifetimes then begin
        let r = lookup_memref env (operand 0) in
        let pty = Lvalue.type_of r.base_ptr in
        need_decl env
          {
            dname = "llvm.lifetime.end.p0";
            dret = Ltype.Void;
            dargs = [ Ltype.I64; pty ];
          };
        let arr_ty = memref_array_ty (Types.Memref (r.shape, r.elem)) in
        ignore
          (B.call b ~ret:Ltype.Void "llvm.lifetime.end.p0"
             [ Lvalue.ci64 (Ltype.sizeof arr_ty); r.base_ptr ])
      end
  | "affine.load" | "memref.load" ->
      let r = lookup_memref env (operand 0) in
      let raw_idxs =
        List.map (fun v -> lookup env v) (List.tl o.Ir.operands)
      in
      let idxs =
        match o.Ir.name with
        | "affine.load" ->
            let map = Attr.as_map (Attr.find_exn o.Ir.attrs "map") in
            lower_map env map raw_idxs
        | _ -> raw_idxs
      in
      let addr = access_addr env r idxs in
      bind1 (B.load b (lower_scalar_ty r.elem) addr)
  | "affine.store" | "memref.store" -> (
      match o.Ir.operands with
      | v :: m :: rest ->
          let r = lookup_memref env m in
          let raw_idxs = List.map (fun x -> lookup env x) rest in
          let idxs =
            match o.Ir.name with
            | "affine.store" ->
                let map = Attr.as_map (Attr.find_exn o.Ir.attrs "map") in
                lower_map env map raw_idxs
            | _ -> raw_idxs
          in
          let addr = access_addr env r idxs in
          B.store b (lookup env v) addr
      | _ -> fail "store: malformed operands")
  | "affine.apply" ->
      let map = Attr.as_map (Attr.find_exn o.Ir.attrs "map") in
      let vs = lower_map env map (List.map (lookup env) o.Ir.operands) in
      bind1 (List.hd vs)
  | "affine.for" -> lower_affine_for env fctx o
  | "scf.for" -> lower_scf_for env fctx o
  | "scf.if" -> lower_scf_if env fctx o
  | "func.call" ->
      let callee = Attr.as_str (Attr.find_exn o.Ir.attrs "callee") in
      let args =
        List.map
          (fun (v : Ir.value) ->
            if Types.is_memref v.Ir.ty then (lookup_memref env v).base_ptr
            else lookup env v)
          o.Ir.operands
      in
      (match o.Ir.results with
      | [] -> ignore (B.call b ~ret:Ltype.Void callee args)
      | [ r ] ->
          bind env r (B.call b ~ret:(lower_scalar_ty r.Ir.ty) callee args)
      | _ -> fail "func.call: at most one result supported")
  | "func.return" -> (
      match o.Ir.operands with
      | [] -> B.ret_void b
      | [ v ] -> B.ret b (Some (lookup env v))
      | _ -> fail "func.return: at most one value supported")
  | "affine.yield" | "scf.yield" ->
      (* handled by the enclosing loop/if lowering *)
      ()
  | name -> fail "lowering: unhandled op %s" name

(** Shared loop skeleton.  [lb]/[ub]/[step] are i64 values; [iters] are
    the loop-carried inits; [dir_attrs] are HLS directive attrs from the
    source op.  [body_ops] is the region block. *)
and lower_counted_loop env fctx ~(lb : Lvalue.t) ~(ub : Lvalue.t)
    ~(step : Lvalue.t) ~(iters : Lvalue.t list) ~(dir_attrs : (string * Attr.t) list)
    ~(blk : Ir.block) ~(results : Ir.value list) : unit =
  let b = env.b in
  env.loop_counter <- env.loop_counter + 1;
  let n = env.loop_counter in
  let header = B.fresh_label b (Printf.sprintf "loop%d.header" n) in
  let body_l = B.fresh_label b (Printf.sprintf "loop%d.body" n) in
  let latch = B.fresh_label b (Printf.sprintf "loop%d.latch" n) in
  let exit = B.fresh_label b (Printf.sprintf "loop%d.exit" n) in
  let iv_mh, iter_params =
    match blk.Ir.params with
    | iv :: rest -> (iv, rest)
    | [] -> fail "loop region lacks induction variable"
  in
  (* optional assume: trip count positive — a modern-IR-ism *)
  if env.style.emit_assumes then begin
    need_decl env
      { dname = "llvm.assume"; dret = Ltype.Void; dargs = [ Ltype.I1 ] };
    let pos = B.icmp b Linstr.ISle lb ub in
    ignore (B.call b ~ret:Ltype.Void "llvm.assume" [ pos ])
  end;
  let pre_label =
    (* label of the block we are currently in; needed for phis *)
    match b.B.cur_label with Some l -> l | None -> fail "not in a block"
  in
  B.br b header;
  (* header: iv phi + iter phis + bound check *)
  B.start_block b header;
  let iv_name = B.fresh_name b (Printf.sprintf "i%d" n) in
  let iv = Lvalue.reg iv_name Ltype.I64 in
  let next_name = B.fresh_name b (Printf.sprintf "i%d.next" n) in
  B.emit b
    (Linstr.make ~result:iv_name ~ty:Ltype.I64
       (Linstr.Phi
          [
            (lb, Sym.intern pre_label);
            (Lvalue.reg next_name Ltype.I64, Sym.intern latch);
          ]));
  bind env iv_mh iv;
  let iter_phis =
    List.map2
      (fun (p : Ir.value) init ->
        let ty = lower_scalar_ty p.Ir.ty in
        let pn = B.fresh_name b "carry" in
        (* latch value filled in after body lowering via a placeholder *)
        (pn, ty, init, p))
      iter_params iters
  in
  (* Emit iter phis with placeholder latch values; we patch them after. *)
  List.iter
    (fun (pn, ty, init, p) ->
      B.emit b
        (Linstr.make ~result:pn ~ty
           (Linstr.Phi [ (init, Sym.intern pre_label) ]));
      bind env p (Lvalue.reg pn ty))
    iter_phis;
  let cond = B.icmp b Linstr.ISlt iv ub in
  B.condbr b cond body_l exit;
  (* body *)
  B.start_block b body_l;
  lower_block env fctx blk.Ir.ops;
  (* the block terminator in mhir is the yield: collect yielded values *)
  let yielded =
    match List.rev blk.Ir.ops with
    | last :: _ when last.Ir.name = "affine.yield" || last.Ir.name = "scf.yield"
      ->
        List.map (lookup env) last.Ir.operands
    | _ -> []
  in
  B.br b latch;
  let body_end_label =
    (* the lowered body may contain nested loops; the branch to the latch
       came from whatever block was open, which [emit] just closed.  Find
       it: it is the block whose terminator is [br latch]. *)
    latch
  in
  ignore body_end_label;
  (* latch: iv increment + back edge with loop metadata *)
  B.start_block b latch;
  B.emit b
    (Linstr.make ~result:next_name ~ty:Ltype.I64
       (Linstr.IBin (Linstr.Add, iv, step)));
  B.br b header;
  if env.style.loop_metadata then begin
    let md = ref [] in
    List.iter
      (fun (k, a) ->
        match (k, a) with
        | "hls.pipeline", Attr.Int ii ->
            md := ("llvm.loop.pipeline.enable", Linstr.MInt 1)
                  :: ("llvm.loop.pipeline.ii", Linstr.MInt ii) :: !md
        | "hls.pipeline", Attr.Bool true ->
            md := ("llvm.loop.pipeline.enable", Linstr.MInt 1) :: !md
        | "hls.unroll", Attr.Int f ->
            md := ("llvm.loop.unroll.count", Linstr.MInt f) :: !md
        | "hls.unroll", Attr.Bool true ->
            md := ("llvm.loop.unroll.full", Linstr.MInt 1) :: !md
        | "hls.tripcount", Attr.Int t ->
            md := ("llvm.loop.tripcount", Linstr.MInt t) :: !md
        | _ -> ())
      dir_attrs;
    if !md <> [] then B.annotate_last b !md
  end;
  (* exit *)
  B.start_block b exit;
  (* patch iter phis with latch incoming (the yielded values) *)
  List.iteri
    (fun k (pn, ty, _init, _p) ->
      let yv = List.nth yielded k in
      let header_s = Sym.intern header and latch_s = Sym.intern latch in
      let pn_s = Sym.intern pn in
      (* find the phi in the header block and append the latch edge *)
      let patch (blkrec : Llvmir.Lmodule.block) =
        if blkrec.Llvmir.Lmodule.label <> header_s then blkrec
        else
          {
            blkrec with
            Llvmir.Lmodule.insts =
              List.map
                (fun (ins : Linstr.t) ->
                  if ins.Linstr.result = pn_s then
                    match ins.Linstr.op with
                    | Linstr.Phi inc ->
                        { ins with Linstr.op = Linstr.Phi (inc @ [ (yv, latch_s) ]) }
                    | _ -> ins
                  else ins)
                blkrec.Llvmir.Lmodule.insts;
          }
      in
      b.B.blocks <- List.map patch b.B.blocks;
      ignore ty)
    iter_phis;
  (* loop results bind to the final iter values (header phis) *)
  List.iteri
    (fun k (r : Ir.value) ->
      let pn, ty, _, _ = List.nth iter_phis k in
      bind env r (Lvalue.reg pn ty))
    results

and lower_affine_for env fctx (o : Ir.op) : unit =
  let lb_map = Attr.as_map (Attr.find_exn o.Ir.attrs "lower_map") in
  let ub_map = Attr.as_map (Attr.find_exn o.Ir.attrs "upper_map") in
  let step = Attr.as_int (Attr.find_exn o.Ir.attrs "step") in
  let lb =
    match Affine_map.as_constant lb_map with
    | Some c -> Lvalue.ci64 c
    | None -> fail "affine.for: symbolic bounds unsupported"
  in
  let ub =
    match Affine_map.as_constant ub_map with
    | Some c -> Lvalue.ci64 c
    | None -> fail "affine.for: symbolic bounds unsupported"
  in
  let iters = List.map (lookup env) o.Ir.operands in
  let blk = Ir.entry_block (List.hd o.Ir.regions) in
  (* attach a tripcount directive implicitly *)
  let dir_attrs =
    let tc =
      match (Affine_map.as_constant lb_map, Affine_map.as_constant ub_map) with
      | Some l, Some u -> [ ("hls.tripcount", Attr.Int (max 0 ((u - l + step - 1) / step))) ]
      | _ -> []
    in
    o.Ir.attrs @ tc
  in
  lower_counted_loop env fctx ~lb ~ub ~step:(Lvalue.ci64 step) ~iters
    ~dir_attrs ~blk ~results:o.Ir.results

and lower_scf_for env fctx (o : Ir.op) : unit =
  match o.Ir.operands with
  | lb :: ub :: step :: iter_inits ->
      let blk = Ir.entry_block (List.hd o.Ir.regions) in
      lower_counted_loop env fctx ~lb:(lookup env lb) ~ub:(lookup env ub)
        ~step:(lookup env step)
        ~iters:(List.map (lookup env) iter_inits)
        ~dir_attrs:o.Ir.attrs ~blk ~results:o.Ir.results
  | _ -> fail "scf.for: malformed operands"

and lower_scf_if env fctx (o : Ir.op) : unit =
  let b = env.b in
  env.loop_counter <- env.loop_counter + 1;
  let n = env.loop_counter in
  let then_l = B.fresh_label b (Printf.sprintf "if%d.then" n) in
  let else_l = B.fresh_label b (Printf.sprintf "if%d.else" n) in
  let merge = B.fresh_label b (Printf.sprintf "if%d.end" n) in
  let cond = lookup env (List.hd o.Ir.operands) in
  B.condbr b cond then_l else_l;
  let lower_branch label (r : Ir.region) =
    B.start_block b label;
    let blk = Ir.entry_block r in
    lower_block env fctx blk.Ir.ops;
    let yielded =
      match List.rev blk.Ir.ops with
      | last :: _ when last.Ir.name = "scf.yield" ->
          List.map (lookup env) last.Ir.operands
      | _ -> []
    in
    (* remember which block we ended in for the phi *)
    let end_label =
      match b.B.cur_label with Some l -> l | None -> fail "branch fell out"
    in
    B.br b merge;
    (yielded, end_label)
  in
  let then_vals, then_end = lower_branch then_l (List.nth o.Ir.regions 0) in
  let else_vals, else_end = lower_branch else_l (List.nth o.Ir.regions 1) in
  B.start_block b merge;
  List.iteri
    (fun k (r : Ir.value) ->
      let ty = lower_scalar_ty r.Ir.ty in
      let v =
        B.phi b ~name:"ifres" ty
          [ (List.nth then_vals k, then_end); (List.nth else_vals k, else_end) ]
      in
      bind env r v)
    o.Ir.results;
  (* a merge block needs a terminator eventually; the subsequent ops of
     the enclosing block will be emitted here. *)
  ()

(* ------------------------------------------------------------------ *)
(* Function / module                                                  *)
(* ------------------------------------------------------------------ *)

let lower_func (style : style) (mhf : Ir.func) : Llvmir.Lmodule.func * Llvmir.Lmodule.decl list =
  let b = B.create () in
  let env =
    {
      style;
      b;
      values = Hashtbl.create 128;
      memrefs = Hashtbl.create 16;
      decls = [];
      loop_counter = 0;
    }
  in
  let fctx =
    { uses = use_counts_of_func mhf; fused_muls = Hashtbl.create 8; func = mhf }
  in
  (* parameters: memrefs use the bare-pointer convention *)
  let params =
    List.map
      (fun (v : Ir.value) ->
        let hint = if v.Ir.hint = "" then "arg" ^ string_of_int v.Ir.id else v.Ir.hint in
        let pname = B.fresh_name b hint in
        match v.Ir.ty with
        | Types.Memref (_, elem) ->
            let pty =
              if style.opaque_pointers then Ltype.opaque_ptr
              else if style.use_descriptors then
                Ltype.ptr (lower_scalar_ty elem)
              else Ltype.ptr (memref_array_ty v.Ir.ty)
            in
            { Llvmir.Lmodule.pname; pty; pattrs = [] }
        | t -> { Llvmir.Lmodule.pname; pty = lower_scalar_ty t; pattrs = [] })
      mhf.Ir.args
  in
  B.start_block b "entry";
  (* bind parameters; repack memrefs into descriptors *)
  List.iter2
    (fun (v : Ir.value) (p : Llvmir.Lmodule.param) ->
      match v.Ir.ty with
      | Types.Memref (shape, elem) ->
          let bare = Lvalue.reg p.Llvmir.Lmodule.pname p.Llvmir.Lmodule.pty in
          let desc =
            if style.use_descriptors then Some (build_descriptor env v.Ir.ty bare)
            else None
          in
          Hashtbl.replace env.memrefs v.Ir.id
            { desc; base_ptr = bare; shape; elem }
      | _ ->
          bind env v (Lvalue.reg p.Llvmir.Lmodule.pname p.Llvmir.Lmodule.pty))
    mhf.Ir.args params;
  lower_block env fctx (Ir.entry_block mhf.Ir.body).Ir.ops;
  let blocks = B.finish b in
  let ret_ty =
    match mhf.Ir.ret_tys with
    | [] -> Ltype.Void
    | [ t ] -> lower_scalar_ty t
    | _ -> fail "multiple return values unsupported at LLVM level"
  in
  (* function attributes: forward HLS partition directives *)
  let fattrs =
    List.filter_map
      (fun (k, a) ->
        if String.length k >= 4 && String.sub k 0 4 = "hls." then
          (* string attrs pass through unquoted (e.g. "cyclic:4:2") *)
          match a with
          | Attr.Str s -> Some (k, s)
          | a -> Some (k, Attr.to_string a)
        else None)
      mhf.Ir.fattrs
  in
  ( { Llvmir.Lmodule.fname = mhf.Ir.fname; ret_ty; params; blocks; fattrs },
    env.decls )

(** Lower a whole module.  The result verifies under
    {!Llvmir.Lverifier}. *)
let lower_module ?(style = modern) (m : Ir.modul) : Llvmir.Lmodule.t =
  let funcs, decls =
    List.fold_left
      (fun (fs, ds) f ->
        let lf, d = lower_func style f in
        (lf :: fs, d @ ds))
      ([], []) m.Ir.funcs
  in
  let dedup =
    List.fold_left
      (fun acc (d : Llvmir.Lmodule.decl) ->
        if List.exists (fun (x : Llvmir.Lmodule.decl) -> x.dname = d.dname) acc
        then acc
        else d :: acc)
      [] decls
  in
  {
    Llvmir.Lmodule.mname = "lowered";
    funcs = List.rev funcs;
    globals = [];
    decls = dedup;
  }
