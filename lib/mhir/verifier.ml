(** Structural and semantic verification of multi-level IR.

    Checks performed:
    - SSA: every value has exactly one definition; operands are defined
      by an earlier op, a block parameter or an enclosing scope;
    - dialect signatures: operand/result/region arities match the
      {!Dialect} registry; unknown dialects are rejected;
    - terminators: every region's single block ends with the right
      terminator ([affine.yield] / [scf.yield] / [func.return]) whose
      operand types match the parent's results;
    - op-specific typing rules for arith/affine/scf/memref ops. *)

open Ir

let fail = Support.Err.fail ~pass:"mhir.verifier"

type scope = { defined : (int, unit) Hashtbl.t }

let define scope (v : value) =
  if Hashtbl.mem scope.defined v.id then
    fail "value %%%d defined twice" v.id;
  Hashtbl.replace scope.defined v.id ()

let check_defined scope op (v : value) =
  if not (Hashtbl.mem scope.defined v.id) then
    fail ~context:op.name "operand %%%d used before definition" v.id

let expect_ty what v ty =
  if not (Types.equal v.ty ty) then
    fail "%s: expected %s, got %s" what (Types.to_string ty)
      (Types.to_string v.ty)

let check_signature (o : op) =
  match Dialect.lookup o.name with
  | None -> fail "unknown operation %S" o.name
  | Some s ->
      if not (Dialect.arity_ok s.operands (List.length o.operands)) then
        fail "%s: bad operand count %d" o.name (List.length o.operands);
      if not (Dialect.arity_ok s.results (List.length o.results)) then
        fail "%s: bad result count %d" o.name (List.length o.results);
      if s.regions <> List.length o.regions then
        fail "%s: expected %d regions, got %d" o.name s.regions
          (List.length o.regions)

(** Op-specific typing rules beyond arity. *)
let check_op_types (o : op) =
  let binop_same kind =
    match (o.operands, o.results) with
    | [ a; b ], [ r ] ->
        if not (Types.equal a.ty b.ty) then
          fail "%s: operand types differ" o.name;
        if not (Types.equal a.ty r.ty) then
          fail "%s: result type differs from operands" o.name;
        (match kind with
        | `Int when not (Types.is_int a.ty) ->
            fail "%s: expects integer operands" o.name
        | `Float when not (Types.is_float a.ty) ->
            fail "%s: expects float operands" o.name
        | _ -> ())
    | _ -> ()
  in
  match o.name with
  | "arith.addi" | "arith.subi" | "arith.muli" | "arith.divsi"
  | "arith.remsi" | "arith.divui" | "arith.remui" | "arith.floordivsi"
  | "arith.andi" | "arith.ori" | "arith.xori"
  | "arith.shli" | "arith.shrsi" | "arith.shrui"
  | "arith.maxsi" | "arith.minsi" | "arith.maxui" | "arith.minui" ->
      binop_same `Int
  | "arith.addf" | "arith.subf" | "arith.mulf" | "arith.divf"
  | "arith.maximumf" | "arith.minimumf" ->
      binop_same `Float
  | "arith.cmpi" | "arith.cmpf" -> (
      ignore (Attr.as_str (Attr.find_exn o.attrs "predicate"));
      match o.results with
      | [ r ] -> expect_ty (o.name ^ " result") r Types.I1
      | _ -> ())
  | "arith.constant" -> (
      let v = Attr.find_exn o.attrs "value" in
      match (v, o.results) with
      | Attr.Int _, [ r ] when Types.is_int r.ty -> ()
      | Attr.Float _, [ r ] when Types.is_float r.ty -> ()
      | _ -> fail "arith.constant: attribute/result type mismatch")
  | "arith.select" -> (
      match o.operands with
      | [ c; a; b ] ->
          expect_ty "arith.select condition" c Types.I1;
          if not (Types.equal a.ty b.ty) then
            fail "arith.select: branch types differ"
      | _ -> ())
  | "affine.load" | "memref.load" -> (
      match (o.operands, o.results) with
      | m :: idxs, [ r ] -> (
          match m.ty with
          | Types.Memref (shape, elem) ->
              expect_ty "load result" r elem;
              (match o.name with
              | "affine.load" ->
                  let map = Attr.as_map (Attr.find_exn o.attrs "map") in
                  if Affine_map.num_results map <> List.length shape then
                    fail "affine.load: map/rank mismatch";
                  if
                    List.length idxs
                    <> map.Affine_map.num_dims + map.Affine_map.num_syms
                  then fail "affine.load: map operand count mismatch"
              | _ ->
                  if List.length idxs <> List.length shape then
                    fail "memref.load: rank mismatch");
              List.iter (fun i -> expect_ty "subscript" i Types.Index) idxs
          | _ -> fail "%s: base is not a memref" o.name)
      | _ -> ())
  | "affine.store" | "memref.store" -> (
      match o.operands with
      | v :: m :: idxs -> (
          match m.ty with
          | Types.Memref (shape, elem) ->
              expect_ty "stored value" v elem;
              (match o.name with
              | "affine.store" ->
                  let map = Attr.as_map (Attr.find_exn o.attrs "map") in
                  if Affine_map.num_results map <> List.length shape then
                    fail "affine.store: map/rank mismatch"
              | _ ->
                  if List.length idxs <> List.length shape then
                    fail "memref.store: rank mismatch");
              List.iter (fun i -> expect_ty "subscript" i Types.Index) idxs
          | _ -> fail "%s: base is not a memref" o.name)
      | _ -> ())
  | "affine.for" ->
      let lb = Attr.as_map (Attr.find_exn o.attrs "lower_map") in
      let ub = Attr.as_map (Attr.find_exn o.attrs "upper_map") in
      let step = Attr.as_int (Attr.find_exn o.attrs "step") in
      if step <= 0 then fail "affine.for: step must be positive";
      if Affine_map.num_results lb <> 1 || Affine_map.num_results ub <> 1 then
        fail "affine.for: bound maps must have one result";
      let blk = entry_block (List.hd o.regions) in
      (match blk.params with
      | iv :: iter_params ->
          expect_ty "induction variable" iv Types.Index;
          if List.length iter_params <> List.length o.operands then
            fail "affine.for: iter_args/operand count mismatch";
          List.iter2
            (fun p a ->
              if not (Types.equal p.ty a.ty) then
                fail "affine.for: iter_arg type mismatch")
            iter_params o.operands;
          if List.length o.results <> List.length o.operands then
            fail "affine.for: result/iter_arg count mismatch"
      | [] -> fail "affine.for: region must have an induction variable")
  | "scf.for" -> (
      match o.operands with
      | lb :: ub :: step :: iters ->
          if not (Types.is_int lb.ty) then fail "scf.for: non-integer bound";
          if not (Types.equal lb.ty ub.ty && Types.equal lb.ty step.ty) then
            fail "scf.for: bound type mismatch";
          let blk = entry_block (List.hd o.regions) in
          (match blk.params with
          | iv :: iter_params ->
              if not (Types.equal iv.ty lb.ty) then
                fail "scf.for: induction variable type mismatch";
              if List.length iter_params <> List.length iters then
                fail "scf.for: iter_args count mismatch"
          | [] -> fail "scf.for: region must have an induction variable")
      | _ -> ())
  | "scf.if" ->
      expect_ty "scf.if condition" (List.hd o.operands) Types.I1
  | "memref.alloc" | "memref.alloca" -> (
      match o.results with
      | [ r ] when Types.is_memref r.ty -> ()
      | _ -> fail "%s: result must be a memref" o.name)
  | _ -> ()

let rec verify_region scope ~terminator ~yield_tys (r : region) =
  match r.blocks with
  | [ blk ] ->
      List.iter (define scope) blk.params;
      let n = List.length blk.ops in
      if n = 0 then fail "empty block (missing terminator)";
      List.iteri
        (fun i (o : op) ->
          check_signature o;
          List.iter (check_defined scope o) o.operands;
          check_op_types o;
          let is_term = Dialect.is_terminator o.name in
          if is_term && i <> n - 1 then
            fail "%s: terminator not at end of block" o.name;
          if i = n - 1 then begin
            if not is_term then fail "block does not end with a terminator";
            if o.name <> terminator then
              fail "expected terminator %s, found %s" terminator o.name;
            let tys = List.map (fun (v : value) -> v.ty) o.operands in
            if tys <> yield_tys then
              fail "%s: yielded types (%s) do not match expected (%s)" o.name
                (Types.fn_to_string { inputs = tys; outputs = [] })
                (Types.fn_to_string { inputs = yield_tys; outputs = [] })
          end;
          verify_op_regions scope o;
          List.iter (define scope) o.results)
        blk.ops
  | _ -> fail "regions must contain exactly one block"

and verify_op_regions scope (o : op) =
  let result_tys = List.map (fun (v : value) -> v.ty) o.results in
  match o.name with
  | "affine.for" ->
      verify_region scope ~terminator:"affine.yield" ~yield_tys:result_tys
        (List.hd o.regions)
  | "scf.for" ->
      verify_region scope ~terminator:"scf.yield" ~yield_tys:result_tys
        (List.hd o.regions)
  | "scf.if" ->
      List.iter
        (verify_region scope ~terminator:"scf.yield" ~yield_tys:result_tys)
        o.regions
  | _ ->
      if o.regions <> [] then
        fail "%s: unexpected nested regions" o.name

let verify_func (f : func) =
  let scope = { defined = Hashtbl.create 64 } in
  List.iter (define scope) f.args;
  let body = { blocks = [ { params = []; ops = (entry_block f.body).ops } ] } in
  verify_region scope ~terminator:"func.return" ~yield_tys:f.ret_tys body

(** Verify a module; raises {!Support.Err.Compile_error} on the first
    violation.  Also checks [func.call] targets exist with matching
    types. *)
let verify_module (m : modul) =
  let names = List.map (fun f -> f.fname) m.funcs in
  let dup =
    List.exists
      (fun n -> List.length (List.filter (( = ) n) names) > 1)
      names
  in
  if dup then fail "duplicate function names in module";
  List.iter verify_func m.funcs;
  List.iter
    (fun f ->
      walk_func
        (fun o ->
          if o.name = "func.call" then begin
            let callee = Attr.as_str (Attr.find_exn o.attrs "callee") in
            match find_func m callee with
            | None -> fail "call to unknown function @%s" callee
            | Some g ->
                let arg_tys = List.map (fun (v : value) -> v.ty) o.operands in
                let param_tys = List.map (fun (v : value) -> v.ty) g.args in
                if arg_tys <> param_tys then
                  fail "call to @%s: argument types mismatch" callee;
                let res_tys = List.map (fun (v : value) -> v.ty) o.results in
                if res_tys <> g.ret_tys then
                  fail "call to @%s: result types mismatch" callee
          end)
        f)
    m.funcs
