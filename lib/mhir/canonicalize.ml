(** Canonicalization: constant folding, algebraic identities and
    elimination of dead pure ops.  This mirrors MLIR's [-canonicalize]
    at the level of detail the flows need and runs before lowering in
    both flows. *)

open Ir

(* Folding must agree with {!Interp} bit-for-bit (the differential
   oracle runs canonicalized and raw kernels against each other), so
   unsigned ops, shifts and result normalization all defer to
   {!Support.Int_sem} in the result type's width. *)
let fold_int_binop name ty a b =
  let module S = Support.Int_sem in
  match Types.int_width ty with
  | exception Invalid_argument _ -> None
  | w -> (
      let nz f x y = if y = 0 then raise Exit else f x y in
      let a = S.norm ~width:w a and b = S.norm ~width:w b in
      let f =
        match name with
        | "arith.addi" -> Some ( + )
        | "arith.subi" -> Some ( - )
        | "arith.muli" -> Some ( * )
        | "arith.divsi" -> Some (nz ( / ))
        | "arith.remsi" -> Some (nz (fun x y -> x mod y))
        | "arith.divui" -> Some (nz (S.udiv ~width:w))
        | "arith.remui" -> Some (nz (S.urem ~width:w))
        | "arith.floordivsi" -> Some (nz S.floordivsi)
        | "arith.andi" -> Some ( land )
        | "arith.ori" -> Some ( lor )
        | "arith.xori" -> Some ( lxor )
        | "arith.shli" -> Some (S.shl ~width:w)
        | "arith.shrsi" -> Some (S.ashr ~width:w)
        | "arith.shrui" -> Some (S.lshr ~width:w)
        | "arith.maxsi" -> Some max
        | "arith.minsi" -> Some min
        | "arith.maxui" -> Some S.umax
        | "arith.minui" -> Some S.umin
        | _ -> None
      in
      match f with
      | Some f -> ( try Some (S.norm ~width:w (f a b)) with Exit -> None)
      | None -> None)

let fold_float_binop name a b =
  match name with
  | "arith.addf" -> Some (a +. b)
  | "arith.subf" -> Some (a -. b)
  | "arith.mulf" -> Some (a *. b)
  | "arith.divf" -> Some (a /. b)
  | "arith.maximumf" -> Some (Float.max a b)
  | "arith.minimumf" -> Some (Float.min a b)
  | _ -> None

(** One folding walk over a function.  Because defs precede uses in the
    structured IR, a single in-order traversal that records constants
    and aliases as it goes sees every binding before its uses. *)
let fold_constants_func (f : func) : func * bool =
  let consts : (int, Attr.t) Hashtbl.t = Hashtbl.create 64 in
  let alias : (int, value) Hashtbl.t = Hashtbl.create 16 in
  let changed = ref false in
  let resolve v =
    match Hashtbl.find_opt alias v.id with Some v' -> v' | None -> v
  in
  let const_of v = Hashtbl.find_opt consts (resolve v).id in
  let mk_const (r : value) attr =
    Hashtbl.replace consts r.id attr;
    {
      name = "arith.constant";
      operands = [];
      results = [ r ];
      attrs = [ ("value", attr) ];
      regions = [];
    }
  in
  let set_alias (r : value) target =
    changed := true;
    Hashtbl.replace alias r.id (resolve target)
  in
  let rec rw_op (o : op) : op list =
    let o = { o with operands = List.map resolve o.operands } in
    let o = { o with regions = List.map rw_region o.regions } in
    match o.name with
    | "arith.constant" ->
        Hashtbl.replace consts (List.hd o.results).id
          (Attr.find_exn o.attrs "value");
        [ o ]
    | _ -> (
        match (o.operands, o.results) with
        | [ a; b ], [ r ] -> (
            match (const_of a, const_of b) with
            | Some (Attr.Int x), Some (Attr.Int y) -> (
                match fold_int_binop o.name r.ty x y with
                | Some v ->
                    changed := true;
                    [ mk_const r (Attr.Int v) ]
                | None -> [ o ])
            | Some (Attr.Float x), Some (Attr.Float y) -> (
                match fold_float_binop o.name x y with
                | Some v ->
                    changed := true;
                    [ mk_const r (Attr.Float v) ]
                | None -> [ o ])
            | _, cb -> (
                let ca = const_of a in
                match (o.name, ca, cb) with
                | ("arith.addi" | "arith.ori" | "arith.xori"), _, Some (Attr.Int 0)
                | ("arith.muli" | "arith.divsi"), _, Some (Attr.Int 1)
                | ( ("arith.shli" | "arith.shrsi" | "arith.shrui"),
                    _,
                    Some (Attr.Int 0) )
                | "arith.subi", _, Some (Attr.Int 0) ->
                    set_alias r a;
                    []
                | ("arith.addi" | "arith.ori" | "arith.xori"), Some (Attr.Int 0), _
                | "arith.muli", Some (Attr.Int 1), _ ->
                    set_alias r b;
                    []
                | "arith.muli", (Some (Attr.Int 0) as z), _
                | "arith.muli", _, (Some (Attr.Int 0) as z)
                | "arith.andi", (Some (Attr.Int 0) as z), _
                | "arith.andi", _, (Some (Attr.Int 0) as z) -> (
                    match z with
                    | Some attr ->
                        changed := true;
                        [ mk_const r attr ]
                    | None -> [ o ])
                | "arith.addf", _, Some (Attr.Float 0.0)
                | "arith.subf", _, Some (Attr.Float 0.0)
                | "arith.mulf", _, Some (Attr.Float 1.0)
                | "arith.divf", _, Some (Attr.Float 1.0) ->
                    set_alias r a;
                    []
                | "arith.addf", Some (Attr.Float 0.0), _
                | "arith.mulf", Some (Attr.Float 1.0), _ ->
                    set_alias r b;
                    []
                | _ -> [ o ]))
        | [ c; x; y ], [ r ] when o.name = "arith.select" -> (
            match const_of c with
            | Some (Attr.Int 0) ->
                set_alias r y;
                []
            | Some (Attr.Int _) ->
                set_alias r x;
                []
            | _ -> [ o ])
        | _ -> [ o ])
  and rw_region (r : region) : region =
    {
      blocks =
        List.map
          (fun b -> { b with ops = List.concat_map rw_op b.ops })
          r.blocks;
    }
  in
  let f' = { f with body = rw_region f.body } in
  (f', !changed)

(** Remove pure ops whose results are never used.  Iterates to a fixed
    point (removing one op can make its operands dead). *)
let eliminate_dead_func (f : func) : func * bool =
  let changed_any = ref false in
  let rec go f =
    let used = used_values f.body in
    let changed = ref false in
    let keep (o : op) =
      let pure = Dialect.is_pure o.name in
      let any_used =
        List.exists (fun (r : value) -> Hashtbl.mem used r.id) o.results
      in
      if pure && o.results <> [] && not any_used then begin
        changed := true;
        false
      end
      else true
    in
    let rec clean_region (r : region) =
      {
        blocks =
          List.map
            (fun b ->
              {
                b with
                ops =
                  List.filter_map
                    (fun o ->
                      if keep o then
                        Some
                          { o with regions = List.map clean_region o.regions }
                      else None)
                    b.ops;
              })
            r.blocks;
      }
    in
    let f' = { f with body = clean_region f.body } in
    if !changed then begin
      changed_any := true;
      go f'
    end
    else f'
  in
  let f' = go f in
  (f', !changed_any)

(** Full canonicalization to fixpoint (bounded iterations). *)
let run_func (f : func) : func =
  let rec go f n =
    if n = 0 then f
    else
      let f, c1 = fold_constants_func f in
      let f, c2 = eliminate_dead_func f in
      if c1 || c2 then go f (n - 1) else f
  in
  go f 8

let run (m : modul) : modul = { funcs = List.map run_func m.funcs }
