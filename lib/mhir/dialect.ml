(** Registry of known operations and their structural signatures.

    [signature] captures what the generic verifier can check without
    dialect knowledge: operand/result/region counts.  Semantic checks
    (types, attribute well-formedness) live in {!Verifier}. *)

type arity = Exact of int | AtLeast of int

type signature = {
  operands : arity;
  results : arity;
  regions : int;
  terminator : bool;  (** must appear last in its block *)
  pure : bool;  (** no side effects — candidate for DCE *)
}

let sig_ ?(operands = Exact 0) ?(results = Exact 0) ?(regions = 0)
    ?(terminator = false) ?(pure = false) () =
  { operands; results; regions; terminator; pure }

let registry : (string * signature) list =
  let binop = sig_ ~operands:(Exact 2) ~results:(Exact 1) ~pure:true () in
  let unop = sig_ ~operands:(Exact 1) ~results:(Exact 1) ~pure:true () in
  [
    ("arith.constant", sig_ ~results:(Exact 1) ~pure:true ());
    ("arith.addi", binop);
    ("arith.subi", binop);
    ("arith.muli", binop);
    ("arith.divsi", binop);
    ("arith.remsi", binop);
    ("arith.andi", binop);
    ("arith.ori", binop);
    ("arith.xori", binop);
    ("arith.divui", binop);
    ("arith.remui", binop);
    ("arith.floordivsi", binop);
    ("arith.shli", binop);
    ("arith.shrsi", binop);
    ("arith.shrui", binop);
    ("arith.maxsi", binop);
    ("arith.minsi", binop);
    ("arith.maxui", binop);
    ("arith.minui", binop);
    ("arith.addf", binop);
    ("arith.subf", binop);
    ("arith.mulf", binop);
    ("arith.divf", binop);
    ("arith.maximumf", binop);
    ("arith.minimumf", binop);
    ("arith.negf", unop);
    ("arith.cmpi", sig_ ~operands:(Exact 2) ~results:(Exact 1) ~pure:true ());
    ("arith.cmpf", sig_ ~operands:(Exact 2) ~results:(Exact 1) ~pure:true ());
    ("arith.select", sig_ ~operands:(Exact 3) ~results:(Exact 1) ~pure:true ());
    ("arith.index_cast", unop);
    ("arith.sitofp", unop);
    ("arith.fptosi", unop);
    ("arith.extf", unop);
    ("arith.truncf", unop);
    ("affine.for",
     sig_ ~operands:(AtLeast 0) ~results:(AtLeast 0) ~regions:1 ());
    ("affine.yield", sig_ ~operands:(AtLeast 0) ~terminator:true ());
    ("affine.load",
     sig_ ~operands:(AtLeast 1) ~results:(Exact 1) ~pure:true ());
    ("affine.store", sig_ ~operands:(AtLeast 2) ());
    ("affine.apply",
     sig_ ~operands:(AtLeast 0) ~results:(Exact 1) ~pure:true ());
    ("scf.for", sig_ ~operands:(AtLeast 3) ~results:(AtLeast 0) ~regions:1 ());
    ("scf.if", sig_ ~operands:(Exact 1) ~results:(AtLeast 0) ~regions:2 ());
    ("scf.yield", sig_ ~operands:(AtLeast 0) ~terminator:true ());
    ("memref.alloc", sig_ ~results:(Exact 1) ());
    ("memref.alloca", sig_ ~results:(Exact 1) ());
    ("memref.dealloc", sig_ ~operands:(Exact 1) ());
    ("memref.load", sig_ ~operands:(AtLeast 1) ~results:(Exact 1) ~pure:true ());
    ("memref.store", sig_ ~operands:(AtLeast 2) ());
    ("func.call", sig_ ~operands:(AtLeast 0) ~results:(AtLeast 0) ());
    ("func.return", sig_ ~operands:(AtLeast 0) ~terminator:true ());
  ]

let lookup name = List.assoc_opt name registry

let lookup_exn name =
  match lookup name with
  | Some s -> s
  | None -> invalid_arg ("Dialect.lookup_exn: unknown op " ^ name)

let is_known name = lookup name <> None
let is_terminator name =
  match lookup name with Some s -> s.terminator | None -> false

let is_pure name = match lookup name with Some s -> s.pure | None -> false

let arity_ok arity n =
  match arity with Exact k -> n = k | AtLeast k -> n >= k

(** Dialect prefix of an op name (["affine.for"] -> ["affine"]). *)
let dialect_of name =
  match String.index_opt name '.' with
  | Some i -> String.sub name 0 i
  | None -> name
