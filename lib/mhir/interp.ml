(** Reference interpreter for the multi-level IR.

    Used as the semantic oracle: workloads run here to produce golden
    outputs that both HLS flows (direct-IR and C++ round-trip) must
    match in "co-simulation" tests.

    Integer semantics: values are stored as OCaml [int]s and normalized
    to the width of their type after every operation ([i32] wraps,
    [i1] is 0/1, [index]/[i64] use the native 63-bit range — documented
    substitution, kernels stay far below 2^62). *)

open Ir

let fail = Support.Err.fail ~pass:"mhir.interp"

type buffer = {
  shape : int array;
  elem : Types.ty;
  fdata : float array;  (** used when [elem] is a float type *)
  idata : int array;  (** used when [elem] is an integer type *)
}

type rv = Int of int | Float of float | Buf of buffer

(** Normalize an integer to the range of its type. *)
let norm_int ty v =
  match ty with
  | Types.I1 -> v land 1
  | Types.I32 ->
      let m = v land 0xFFFFFFFF in
      if m land 0x80000000 <> 0 then m - (1 lsl 32) else m
  | _ -> v

let alloc_buffer shape elem =
  let size = Array.fold_left ( * ) 1 shape in
  if Types.is_float elem then
    { shape; elem; fdata = Array.make size 0.0; idata = [||] }
  else { shape; elem; fdata = [||]; idata = Array.make size 0 }

let buffer_of_ty = function
  | Types.Memref (shape, elem) -> alloc_buffer (Array.of_list shape) elem
  | t -> fail "cannot allocate non-memref type %s" (Types.to_string t)

let linearize (b : buffer) idxs =
  let rank = Array.length b.shape in
  if List.length idxs <> rank then fail "subscript rank mismatch";
  let off = ref 0 in
  List.iteri
    (fun d i ->
      if i < 0 || i >= b.shape.(d) then
        fail "subscript %d out of bounds for dimension %d (size %d)" i d
          b.shape.(d);
      off := (!off * b.shape.(d)) + i)
    idxs;
  !off

let buf_get b idxs =
  let off = linearize b idxs in
  if Types.is_float b.elem then Float b.fdata.(off) else Int b.idata.(off)

let buf_set b idxs v =
  let off = linearize b idxs in
  match v with
  | Float f when Types.is_float b.elem -> b.fdata.(off) <- f
  | Int i when Types.is_int b.elem -> b.idata.(off) <- norm_int b.elem i
  | _ -> fail "stored value does not match buffer element type"

let as_int = function Int i -> i | _ -> fail "expected integer value"
let as_float = function Float f -> f | _ -> fail "expected float value"
let as_buf = function Buf b -> b | _ -> fail "expected memref value"

type env = { vals : (int, rv) Hashtbl.t; modul : modul }

let lookup env (v : value) =
  match Hashtbl.find_opt env.vals v.id with
  | Some rv -> rv
  | None -> fail "value %%%d has no runtime binding" v.id

let bind env (v : value) rv = Hashtbl.replace env.vals v.id rv

(* Unsigned arithmetic, floor division and deterministic out-of-range
   shifts are shared with the LLVM-side evaluators through
   {!Support.Int_sem} (which supersedes the old local euclid_mod
   helper): stage disagreement here would be reported as a kernel
   miscompile by the differential oracle. *)
module S = Support.Int_sem

let rec exec_block env (blk : block) : rv list =
  let rec go = function
    | [] -> fail "block fell through without terminator"
    | [ last ] -> (
        match last.name with
        | "affine.yield" | "scf.yield" | "func.return" ->
            List.map (lookup env) last.operands
        | _ ->
            exec_op env last;
            fail "block does not end with a terminator")
    | o :: rest ->
        exec_op env o;
        go rest
  in
  go blk.ops

and exec_op env (o : op) : unit =
  let bind1 rv = bind env (List.hd o.results) rv in
  let int_binop f =
    let a = as_int (lookup env (List.nth o.operands 0)) in
    let b = as_int (lookup env (List.nth o.operands 1)) in
    let r = (List.hd o.results : value) in
    bind1 (Int (norm_int r.ty (f a b)))
  in
  (* variant receiving the type's bit width (unsigned ops, shifts) *)
  let int_binop_w f =
    let r = (List.hd o.results : value) in
    int_binop (f (Types.int_width r.ty))
  in
  let float_binop f =
    let a = as_float (lookup env (List.nth o.operands 0)) in
    let b = as_float (lookup env (List.nth o.operands 1)) in
    bind1 (Float (f a b))
  in
  match o.name with
  | "arith.constant" -> (
      let r = (List.hd o.results : value) in
      match Attr.find_exn o.attrs "value" with
      | Attr.Int i -> bind1 (Int (norm_int r.ty i))
      | Attr.Float f -> bind1 (Float f)
      | a -> fail "bad constant attribute %s" (Attr.to_string a))
  | "arith.addi" -> int_binop ( + )
  | "arith.subi" -> int_binop ( - )
  | "arith.muli" -> int_binop ( * )
  | "arith.divsi" ->
      int_binop (fun a b ->
          if b = 0 then fail "division by zero" else a / b)
  | "arith.remsi" ->
      int_binop (fun a b ->
          if b = 0 then fail "remainder by zero" else a mod b)
  | "arith.divui" ->
      int_binop_w (fun w a b ->
          if b = 0 then fail "division by zero" else S.udiv ~width:w a b)
  | "arith.remui" ->
      int_binop_w (fun w a b ->
          if b = 0 then fail "remainder by zero" else S.urem ~width:w a b)
  | "arith.floordivsi" ->
      int_binop (fun a b ->
          if b = 0 then fail "division by zero" else S.floordivsi a b)
  | "arith.andi" -> int_binop ( land )
  | "arith.ori" -> int_binop ( lor )
  | "arith.xori" -> int_binop ( lxor )
  | "arith.shli" -> int_binop_w (fun w a b -> S.shl ~width:w a b)
  | "arith.shrsi" -> int_binop_w (fun w a b -> S.ashr ~width:w a b)
  | "arith.shrui" -> int_binop_w (fun w a b -> S.lshr ~width:w a b)
  | "arith.maxsi" -> int_binop max
  | "arith.minsi" -> int_binop min
  | "arith.maxui" -> int_binop S.umax
  | "arith.minui" -> int_binop S.umin
  | "arith.addf" -> float_binop ( +. )
  | "arith.subf" -> float_binop ( -. )
  | "arith.mulf" -> float_binop ( *. )
  | "arith.divf" -> float_binop ( /. )
  | "arith.maximumf" -> float_binop Float.max
  | "arith.minimumf" -> float_binop Float.min
  | "arith.negf" ->
      bind1 (Float (-.as_float (lookup env (List.hd o.operands))))
  | "arith.cmpi" ->
      let a = as_int (lookup env (List.nth o.operands 0)) in
      let b = as_int (lookup env (List.nth o.operands 1)) in
      let p = Attr.as_str (Attr.find_exn o.attrs "predicate") in
      let r =
        match p with
        | "eq" -> a = b
        | "ne" -> a <> b
        | "slt" -> a < b
        | "sle" -> a <= b
        | "sgt" -> a > b
        | "sge" -> a >= b
        | "ult" -> S.ult a b
        | "ule" -> S.ule a b
        | "ugt" -> S.ugt a b
        | "uge" -> S.uge a b
        | _ -> fail "unknown cmpi predicate %s" p
      in
      bind1 (Int (if r then 1 else 0))
  | "arith.cmpf" ->
      let a = as_float (lookup env (List.nth o.operands 0)) in
      let b = as_float (lookup env (List.nth o.operands 1)) in
      let p = Attr.as_str (Attr.find_exn o.attrs "predicate") in
      let r =
        match p with
        | "oeq" -> a = b
        | "one" -> a <> b && not (Float.is_nan a || Float.is_nan b)
        | "olt" -> a < b
        | "ole" -> a <= b
        | "ogt" -> a > b
        | "oge" -> a >= b
        | _ -> fail "unknown cmpf predicate %s" p
      in
      bind1 (Int (if r then 1 else 0))
  | "arith.select" ->
      let c = as_int (lookup env (List.nth o.operands 0)) in
      bind1 (lookup env (List.nth o.operands (if c <> 0 then 1 else 2)))
  | "arith.index_cast" ->
      let r = (List.hd o.results : value) in
      bind1 (Int (norm_int r.ty (as_int (lookup env (List.hd o.operands)))))
  | "arith.sitofp" ->
      bind1 (Float (float_of_int (as_int (lookup env (List.hd o.operands)))))
  | "arith.fptosi" ->
      let r = (List.hd o.results : value) in
      bind1
        (Int
           (norm_int r.ty
              (int_of_float (as_float (lookup env (List.hd o.operands))))))
  | "arith.extf" | "arith.truncf" ->
      bind1 (Float (as_float (lookup env (List.hd o.operands))))
  | "memref.alloc" | "memref.alloca" ->
      let r = (List.hd o.results : value) in
      bind1 (Buf (buffer_of_ty r.ty))
  | "memref.dealloc" -> ()
  | "memref.load" ->
      let buf = as_buf (lookup env (List.hd o.operands)) in
      let idxs =
        List.map (fun v -> as_int (lookup env v)) (List.tl o.operands)
      in
      bind1 (buf_get buf idxs)
  | "memref.store" -> (
      match o.operands with
      | v :: m :: idx_vals ->
          let buf = as_buf (lookup env m) in
          let idxs = List.map (fun v -> as_int (lookup env v)) idx_vals in
          buf_set buf idxs (lookup env v)
      | _ -> fail "memref.store: malformed operands")
  | "affine.apply" ->
      let map = Attr.as_map (Attr.find_exn o.attrs "map") in
      let operand_vals =
        List.map (fun v -> as_int (lookup env v)) o.operands
      in
      let dims = Array.of_list operand_vals in
      let dims, syms =
        ( Array.sub dims 0 map.Affine_map.num_dims,
          Array.sub dims map.Affine_map.num_dims map.Affine_map.num_syms )
      in
      (match Affine_map.eval map ~dims ~syms with
      | [ r ] -> bind1 (Int r)
      | _ -> fail "affine.apply: map must have one result")
  | "affine.load" ->
      let buf = as_buf (lookup env (List.hd o.operands)) in
      let map = Attr.as_map (Attr.find_exn o.attrs "map") in
      let operand_vals =
        List.map (fun v -> as_int (lookup env v)) (List.tl o.operands)
      in
      let arr = Array.of_list operand_vals in
      let dims = Array.sub arr 0 map.Affine_map.num_dims in
      let syms = Array.sub arr map.Affine_map.num_dims map.Affine_map.num_syms in
      bind1 (buf_get buf (Affine_map.eval map ~dims ~syms))
  | "affine.store" -> (
      match o.operands with
      | v :: m :: idx_vals ->
          let buf = as_buf (lookup env m) in
          let map = Attr.as_map (Attr.find_exn o.attrs "map") in
          let operand_vals =
            List.map (fun v -> as_int (lookup env v)) idx_vals
          in
          let arr = Array.of_list operand_vals in
          let dims = Array.sub arr 0 map.Affine_map.num_dims in
          let syms =
            Array.sub arr map.Affine_map.num_dims map.Affine_map.num_syms
          in
          buf_set buf (Affine_map.eval map ~dims ~syms) (lookup env v)
      | _ -> fail "affine.store: malformed operands")
  | "affine.for" ->
      let lb_map = Attr.as_map (Attr.find_exn o.attrs "lower_map") in
      let ub_map = Attr.as_map (Attr.find_exn o.attrs "upper_map") in
      let step = Attr.as_int (Attr.find_exn o.attrs "step") in
      let n_lower = Attr.as_int (Attr.find_exn o.attrs "lower_operands") in
      let iter_inits = o.operands in
      (* Bound operands precede iter_args when maps are non-constant; the
         builder only produces constant bounds so [n_lower] is 0 here. *)
      if n_lower <> 0 then fail "affine.for: symbolic bounds not supported";
      let eval_bound m =
        match Affine_map.eval m ~dims:[||] ~syms:[||] with
        | [ c ] -> c
        | _ -> fail "affine.for: bound map must have one result"
      in
      let lb = eval_bound lb_map and ub = eval_bound ub_map in
      let blk = entry_block (List.hd o.regions) in
      let iv, iter_params =
        match blk.params with
        | iv :: rest -> (iv, rest)
        | [] -> fail "affine.for: missing induction variable"
      in
      let rec loop i carried =
        if i >= ub then carried
        else begin
          bind env iv (Int i);
          List.iter2 (bind env) iter_params carried;
          let yielded = exec_block env blk in
          loop (i + step) yielded
        end
      in
      let finals = loop lb (List.map (lookup env) iter_inits) in
      List.iter2 (bind env) o.results finals
  | "scf.for" -> (
      match o.operands with
      | lb_v :: ub_v :: step_v :: iter_inits ->
          let lb = as_int (lookup env lb_v) in
          let ub = as_int (lookup env ub_v) in
          let step = as_int (lookup env step_v) in
          if step <= 0 then fail "scf.for: non-positive step";
          let blk = entry_block (List.hd o.regions) in
          let iv, iter_params =
            match blk.params with
            | iv :: rest -> (iv, rest)
            | [] -> fail "scf.for: missing induction variable"
          in
          let rec loop i carried =
            if i >= ub then carried
            else begin
              bind env iv (Int i);
              List.iter2 (bind env) iter_params carried;
              let yielded = exec_block env blk in
              loop (i + step) yielded
            end
          in
          let finals = loop lb (List.map (lookup env) iter_inits) in
          List.iter2 (bind env) o.results finals
      | _ -> fail "scf.for: malformed operands")
  | "scf.if" ->
      let c = as_int (lookup env (List.hd o.operands)) in
      let r = List.nth o.regions (if c <> 0 then 0 else 1) in
      let yielded = exec_block env (entry_block r) in
      List.iter2 (bind env) o.results yielded
  | "func.call" ->
      let callee = Attr.as_str (Attr.find_exn o.attrs "callee") in
      let f = find_func_exn env.modul callee in
      let args = List.map (lookup env) o.operands in
      let results = call_func env.modul f args in
      List.iter2 (bind env) o.results results
  | name -> fail "interpreter: unhandled op %s" name

(** Invoke function [f] with runtime arguments.  Memref arguments are
    passed by reference ([Buf] shares the array), mirroring MLIR
    semantics. *)
and call_func (m : modul) (f : func) (args : rv list) : rv list =
  if List.length args <> List.length f.args then
    fail "call @%s: expected %d arguments, got %d" f.fname
      (List.length f.args) (List.length args);
  let env = { vals = Hashtbl.create 256; modul = m } in
  List.iter2 (bind env) f.args args;
  exec_block env (entry_block f.body)

let run_func (m : modul) name args =
  call_func m (find_func_exn m name) args

(** Convenience: build a float buffer from a flat list with shape. *)
let fbuf shape values =
  let b = alloc_buffer (Array.of_list shape) Types.F32 in
  List.iteri (fun i v -> b.fdata.(i) <- v) values;
  Buf b

(** Deterministic pseudo-random float buffer (for tests/benches). *)
let random_fbuf ~seed shape =
  let size = List.fold_left ( * ) 1 shape in
  let st = ref (seed land 0x3FFFFFFF) in
  let next () =
    st := ((!st * 1103515245) + 12345) land 0x3FFFFFFF;
    float_of_int (!st mod 1000) /. 100.0
  in
  let b = alloc_buffer (Array.of_list shape) Types.F32 in
  for i = 0 to size - 1 do
    b.fdata.(i) <- next ()
  done;
  Buf b
