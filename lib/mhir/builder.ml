(** Typed smart constructors for building IR, dialect by dialect.

    A builder owns the SSA id counter and a stack of op accumulators;
    region-creating ops ([affine_for], [scf_if], ...) take OCaml
    closures that receive the region's block arguments and return the
    values to yield, so nesting in the source mirrors nesting in the
    IR.  All constructors type-check their operands eagerly. *)

open Ir

type t = {
  mutable next_id : int;
  mutable scopes : op list ref list;  (** head = innermost region *)
}

let create () = { next_id = 0; scopes = [ ref [] ] }

let new_value b ?(hint = "") ty =
  let id = b.next_id in
  b.next_id <- b.next_id + 1;
  { id; ty; hint }

let emit b op =
  match b.scopes with
  | scope :: _ -> scope := op :: !scope
  | [] -> invalid_arg "Builder.emit: no open scope"

(** Run [f] with a fresh op accumulator; return its ops. *)
let collect b f =
  let scope = ref [] in
  b.scopes <- scope :: b.scopes;
  let r = f () in
  (match b.scopes with
  | _ :: rest -> b.scopes <- rest
  | [] -> assert false);
  (List.rev !scope, r)

let fail = Support.Err.fail ~pass:"builder"

let check_int what v =
  if not (Types.is_int v.ty) then
    fail "%s: expected integer operand, got %s" what (Types.to_string v.ty)

let check_float what v =
  if not (Types.is_float v.ty) then
    fail "%s: expected float operand, got %s" what (Types.to_string v.ty)

let check_same what a c =
  if not (Types.equal a.ty c.ty) then
    fail "%s: operand types differ (%s vs %s)" what (Types.to_string a.ty)
      (Types.to_string c.ty)

(* ------------------------------------------------------------------ *)
(* arith                                                              *)
(* ------------------------------------------------------------------ *)

let constant_i b ?(ty = Types.Index) c =
  let r = new_value b ty in
  emit b
    {
      name = "arith.constant";
      operands = [];
      results = [ r ];
      attrs = [ ("value", Attr.Int c) ];
      regions = [];
    };
  r

let constant_f b ?(ty = Types.F32) f =
  let r = new_value b ty in
  emit b
    {
      name = "arith.constant";
      operands = [];
      results = [ r ];
      attrs = [ ("value", Attr.Float f) ];
      regions = [];
    };
  r

let binop b name check x y =
  check name x;
  check name y;
  check_same name x y;
  let r = new_value b x.ty in
  emit b { name; operands = [ x; y ]; results = [ r ]; attrs = []; regions = [] };
  r

let addi b x y = binop b "arith.addi" check_int x y
let subi b x y = binop b "arith.subi" check_int x y
let muli b x y = binop b "arith.muli" check_int x y
let divsi b x y = binop b "arith.divsi" check_int x y
let remsi b x y = binop b "arith.remsi" check_int x y
let divui b x y = binop b "arith.divui" check_int x y
let remui b x y = binop b "arith.remui" check_int x y
let floordivsi b x y = binop b "arith.floordivsi" check_int x y
let andi b x y = binop b "arith.andi" check_int x y
let ori b x y = binop b "arith.ori" check_int x y
let xori b x y = binop b "arith.xori" check_int x y
let shli b x y = binop b "arith.shli" check_int x y
let shrsi b x y = binop b "arith.shrsi" check_int x y
let shrui b x y = binop b "arith.shrui" check_int x y
let maxsi b x y = binop b "arith.maxsi" check_int x y
let minsi b x y = binop b "arith.minsi" check_int x y
let maxui b x y = binop b "arith.maxui" check_int x y
let minui b x y = binop b "arith.minui" check_int x y
let addf b x y = binop b "arith.addf" check_float x y
let subf b x y = binop b "arith.subf" check_float x y
let mulf b x y = binop b "arith.mulf" check_float x y
let divf b x y = binop b "arith.divf" check_float x y
let maxf b x y = binop b "arith.maximumf" check_float x y
let minf b x y = binop b "arith.minimumf" check_float x y

let negf b x =
  check_float "arith.negf" x;
  let r = new_value b x.ty in
  emit b
    { name = "arith.negf"; operands = [ x ]; results = [ r ]; attrs = []; regions = [] };
  r

type cmpi_pred = Eq | Ne | Slt | Sle | Sgt | Sge | Ult | Ule | Ugt | Uge

let string_of_cmpi = function
  | Eq -> "eq" | Ne -> "ne" | Slt -> "slt" | Sle -> "sle"
  | Sgt -> "sgt" | Sge -> "sge" | Ult -> "ult" | Ule -> "ule"
  | Ugt -> "ugt" | Uge -> "uge"

let cmpi_of_string = function
  | "eq" -> Eq | "ne" -> Ne | "slt" -> Slt | "sle" -> Sle
  | "sgt" -> Sgt | "sge" -> Sge | "ult" -> Ult | "ule" -> Ule
  | "ugt" -> Ugt | "uge" -> Uge
  | s -> invalid_arg ("Builder.cmpi_of_string: " ^ s)

type cmpf_pred = Oeq | One | Olt | Ole | Ogt | Oge

let string_of_cmpf = function
  | Oeq -> "oeq" | One -> "one" | Olt -> "olt" | Ole -> "ole"
  | Ogt -> "ogt" | Oge -> "oge"

let cmpf_of_string = function
  | "oeq" -> Oeq | "one" -> One | "olt" -> Olt | "ole" -> Ole
  | "ogt" -> Ogt | "oge" -> Oge
  | s -> invalid_arg ("Builder.cmpf_of_string: " ^ s)

let cmpi b pred x y =
  check_int "arith.cmpi" x;
  check_same "arith.cmpi" x y;
  let r = new_value b Types.I1 in
  emit b
    {
      name = "arith.cmpi";
      operands = [ x; y ];
      results = [ r ];
      attrs = [ ("predicate", Attr.Str (string_of_cmpi pred)) ];
      regions = [];
    };
  r

let cmpf b pred x y =
  check_float "arith.cmpf" x;
  check_same "arith.cmpf" x y;
  let r = new_value b Types.I1 in
  emit b
    {
      name = "arith.cmpf";
      operands = [ x; y ];
      results = [ r ];
      attrs = [ ("predicate", Attr.Str (string_of_cmpf pred)) ];
      regions = [];
    };
  r

let select b cond x y =
  if not (Types.equal cond.ty Types.I1) then
    fail "arith.select: condition must be i1";
  check_same "arith.select" x y;
  let r = new_value b x.ty in
  emit b
    {
      name = "arith.select";
      operands = [ cond; x; y ];
      results = [ r ];
      attrs = [];
      regions = [];
    };
  r

let cast b name check_src v ty =
  check_src name v;
  let r = new_value b ty in
  emit b { name; operands = [ v ]; results = [ r ]; attrs = []; regions = [] };
  r

let index_cast b v ty = cast b "arith.index_cast" check_int v ty
let sitofp b v ty = cast b "arith.sitofp" check_int v ty
let fptosi b v ty = cast b "arith.fptosi" check_float v ty
let extf b v ty = cast b "arith.extf" check_float v ty
let truncf b v ty = cast b "arith.truncf" check_float v ty

(* ------------------------------------------------------------------ *)
(* memref                                                             *)
(* ------------------------------------------------------------------ *)

let memref_alloc ?(alloca = false) b ty =
  if not (Types.is_memref ty) then fail "memref.alloc: result must be memref";
  let r = new_value b ty in
  emit b
    {
      name = (if alloca then "memref.alloca" else "memref.alloc");
      operands = [];
      results = [ r ];
      attrs = [];
      regions = [];
    };
  r

let memref_dealloc b v =
  emit b
    { name = "memref.dealloc"; operands = [ v ]; results = []; attrs = []; regions = [] }

let check_subscript name mem idxs =
  match mem.ty with
  | Types.Memref (shape, elem) ->
      if List.length shape <> List.length idxs then
        fail "%s: rank mismatch (%d subscripts for %s)" name
          (List.length idxs) (Types.to_string mem.ty);
      List.iter
        (fun i ->
          if not (Types.equal i.ty Types.Index) then
            fail "%s: subscripts must have index type" name)
        idxs;
      elem
  | _ -> fail "%s: base must be a memref, got %s" name (Types.to_string mem.ty)

let memref_load b mem idxs =
  let elem = check_subscript "memref.load" mem idxs in
  let r = new_value b elem in
  emit b
    {
      name = "memref.load";
      operands = mem :: idxs;
      results = [ r ];
      attrs = [];
      regions = [];
    };
  r

let memref_store b v mem idxs =
  let elem = check_subscript "memref.store" mem idxs in
  if not (Types.equal v.ty elem) then
    fail "memref.store: value type %s does not match element type %s"
      (Types.to_string v.ty) (Types.to_string elem);
  emit b
    {
      name = "memref.store";
      operands = v :: mem :: idxs;
      results = [];
      attrs = [];
      regions = [];
    }

(* ------------------------------------------------------------------ *)
(* affine                                                             *)
(* ------------------------------------------------------------------ *)

let affine_apply b map operands =
  if Affine_map.num_results map <> 1 then
    fail "affine.apply: map must have exactly one result";
  if List.length operands <> map.Affine_map.num_dims + map.Affine_map.num_syms
  then fail "affine.apply: wrong number of operands";
  let r = new_value b Types.Index in
  emit b
    {
      name = "affine.apply";
      operands;
      results = [ r ];
      attrs = [ ("map", Attr.Map map) ];
      regions = [];
    };
  r

let affine_load b mem ~map operands =
  (match mem.ty with
  | Types.Memref (shape, _) ->
      if Affine_map.num_results map <> List.length shape then
        fail "affine.load: map result count must equal memref rank"
  | _ -> fail "affine.load: base must be a memref");
  let elem = match mem.ty with Types.Memref (_, e) -> e | _ -> assert false in
  let r = new_value b elem in
  emit b
    {
      name = "affine.load";
      operands = mem :: operands;
      results = [ r ];
      attrs = [ ("map", Attr.Map map) ];
      regions = [];
    };
  r

let affine_store b v mem ~map operands =
  (match mem.ty with
  | Types.Memref (shape, elem) ->
      if Affine_map.num_results map <> List.length shape then
        fail "affine.store: map result count must equal memref rank";
      if not (Types.equal v.ty elem) then
        fail "affine.store: value/element type mismatch"
  | _ -> fail "affine.store: base must be a memref");
  emit b
    {
      name = "affine.store";
      operands = v :: mem :: operands;
      results = [];
      attrs = [ ("map", Attr.Map map) ];
      regions = [];
    }

(** Identity-subscript conveniences: [A[i, j]]. *)
let load b mem idxs =
  affine_load b mem ~map:(Affine_map.identity (List.length idxs)) idxs

let store b v mem idxs =
  affine_store b v mem ~map:(Affine_map.identity (List.length idxs)) idxs

(** [affine_for b ~lb ~ub ?step ?iters ?attrs body] builds an
    [affine.for] with constant bounds.  [body b iv iter_vals] returns
    the values to yield (must match [iters] in type).  Returns the
    loop's results (one per iter arg). *)
let affine_for b ?(step = 1) ?(iters = []) ?(attrs = []) ~lb ~ub body =
  if step <= 0 then fail "affine.for: step must be positive";
  let iv = new_value b ~hint:"i" Types.Index in
  let iter_params = List.map (fun v -> new_value b v.ty) iters in
  let ops, yielded =
    collect b (fun () ->
        let ys = body b iv iter_params in
        emit b
          {
            name = "affine.yield";
            operands = ys;
            results = [];
            attrs = [];
            regions = [];
          };
        ys)
  in
  List.iter2
    (fun i y ->
      if not (Types.equal i.ty y.ty) then
        fail "affine.for: yielded type does not match iter_arg type")
    iters yielded;
  let results = List.map (fun v -> new_value b v.ty) iters in
  emit b
    {
      name = "affine.for";
      operands = iters;
      results;
      attrs =
        attrs
        @ [
            ("lower_map", Attr.Map (Affine_map.constant lb));
            ("upper_map", Attr.Map (Affine_map.constant ub));
            ("step", Attr.Int step);
            ("lower_operands", Attr.Int 0);
          ];
      regions = [ region1 ~params:(iv :: iter_params) ops ];
    };
  results

(* ------------------------------------------------------------------ *)
(* scf                                                                *)
(* ------------------------------------------------------------------ *)

let scf_for b ~lb ~ub ~step ?(iters = []) body =
  check_int "scf.for" lb;
  check_int "scf.for" ub;
  check_int "scf.for" step;
  let iv = new_value b ~hint:"i" lb.ty in
  let iter_params = List.map (fun v -> new_value b v.ty) iters in
  let ops, _ =
    collect b (fun () ->
        let ys = body b iv iter_params in
        emit b
          { name = "scf.yield"; operands = ys; results = []; attrs = []; regions = [] })
  in
  let results = List.map (fun v -> new_value b v.ty) iters in
  emit b
    {
      name = "scf.for";
      operands = lb :: ub :: step :: iters;
      results;
      attrs = [];
      regions = [ region1 ~params:(iv :: iter_params) ops ];
    };
  results

let scf_if b cond ~result_tys ~then_ ~else_ =
  if not (Types.equal cond.ty Types.I1) then fail "scf.if: condition must be i1";
  let build branch =
    let ops, _ =
      collect b (fun () ->
          let ys = branch b in
          emit b
            { name = "scf.yield"; operands = ys; results = []; attrs = []; regions = [] })
    in
    region1 ~params:[] ops
  in
  let then_r = build then_ in
  let else_r = build else_ in
  let results = List.map (fun ty -> new_value b ty) result_tys in
  emit b
    {
      name = "scf.if";
      operands = [ cond ];
      results;
      attrs = [];
      regions = [ then_r; else_r ];
    };
  results

(* ------------------------------------------------------------------ *)
(* func                                                               *)
(* ------------------------------------------------------------------ *)

let call b callee ~ret_tys args =
  let results = List.map (fun ty -> new_value b ty) ret_tys in
  emit b
    {
      name = "func.call";
      operands = args;
      results;
      attrs = [ ("callee", Attr.Str callee) ];
      regions = [];
    };
  results

let ret b vals =
  emit b
    { name = "func.return"; operands = vals; results = []; attrs = []; regions = [] }

(** Build a whole function.  [body b args] must end by calling {!ret}
    (or return unit for implicit empty return of a void function). *)
let func b name ~args ~ret_tys ?(fattrs = []) body =
  let arg_vals = List.map (fun (hint, ty) -> new_value b ~hint ty) args in
  let ops, _ =
    collect b (fun () ->
        body b arg_vals;
        ())
  in
  let ops =
    match List.rev ops with
    | last :: _ when last.name = "func.return" -> ops
    | _ ->
        ops
        @ [ { name = "func.return"; operands = []; results = []; attrs = []; regions = [] } ]
  in
  { fname = name; args = arg_vals; ret_tys; body = region1 ~params:[] ops; fattrs }
