(** Textual output of the multi-level IR.

    Two forms are produced:
    - the {b generic} form ([~generic:true]), fully parenthesized and
      round-trippable through {!Parser};
    - the {b pretty} form (default), which renders the structured ops
      ([affine.for], [affine.load], [scf.if], ...) with MLIR-like
      custom syntax for human consumption. *)

open Ir

let vname (v : value) = "%" ^ string_of_int v.id

let vlist vs = String.concat ", " (List.map vname vs)

let tylist tys = String.concat ", " (List.map Types.to_string tys)

(** Round-trippable decimal float literal — the shared shortest form,
    so MHIR text, LLVM IR and emitted C++ agree on every literal. *)
let float_lit = Support.Float_lit.to_string

let attr_to_string (a : Attr.t) =
  let rec go = function
    | Attr.Int i -> string_of_int i
    | Attr.Float f -> float_lit f
    | Attr.Bool b -> string_of_bool b
    | Attr.Str s -> Printf.sprintf "%S" s
    | Attr.Type t -> Printf.sprintf "type(%s)" (Types.to_string t)
    | Attr.Map m -> Affine_map.to_string m
    | Attr.List l -> "[" ^ String.concat ", " (List.map go l) ^ "]"
  in
  go a

let attrs_to_string = function
  | [] -> ""
  | attrs ->
      " {"
      ^ String.concat ", "
          (List.map (fun (k, v) -> k ^ " = " ^ attr_to_string v) attrs)
      ^ "}"

let rec generic_op buf indent (o : op) =
  let pad = String.make indent ' ' in
  Buffer.add_string buf pad;
  if o.results <> [] then Buffer.add_string buf (vlist o.results ^ " = ");
  Buffer.add_string buf (Printf.sprintf "%S" o.name);
  Buffer.add_string buf ("(" ^ vlist o.operands ^ ")");
  Buffer.add_string buf (attrs_to_string o.attrs);
  if o.regions <> [] then begin
    Buffer.add_string buf " (";
    List.iteri
      (fun i r ->
        if i > 0 then Buffer.add_string buf ", ";
        generic_region buf indent r)
      o.regions;
    Buffer.add_string buf ")"
  end;
  Buffer.add_string buf
    (Printf.sprintf " : (%s) -> (%s)\n"
       (tylist (List.map (fun v -> v.ty) o.operands))
       (tylist (List.map (fun v -> v.ty) o.results)))

and generic_region buf indent (r : region) =
  Buffer.add_string buf "{\n";
  List.iter
    (fun b ->
      let pad = String.make (indent + 2) ' ' in
      Buffer.add_string buf pad;
      Buffer.add_string buf "^bb(";
      Buffer.add_string buf
        (String.concat ", "
           (List.map
              (fun v -> vname v ^ ": " ^ Types.to_string v.ty)
              b.params));
      Buffer.add_string buf "):\n";
      List.iter (generic_op buf (indent + 4)) b.ops)
    r.blocks;
  Buffer.add_string buf (String.make indent ' ' ^ "}")

(* ------------------------------------------------------------------ *)
(* Pretty form                                                        *)
(* ------------------------------------------------------------------ *)

let rec pretty_op buf indent (o : op) =
  let pad = String.make indent ' ' in
  let line s = Buffer.add_string buf (pad ^ s ^ "\n") in
  let res_prefix = if o.results = [] then "" else vlist o.results ^ " = " in
  match o.name with
  | "arith.constant" ->
      let v = Attr.find_exn o.attrs "value" in
      let ty = (List.hd o.results).ty in
      line
        (Printf.sprintf "%sarith.constant %s : %s" res_prefix
           (match v with
           | Attr.Int i -> string_of_int i
           | Attr.Float f -> Printf.sprintf "%g" f
           | a -> Attr.to_string a)
           (Types.to_string ty))
  | "affine.for" ->
      let lb = Attr.as_map (Attr.find_exn o.attrs "lower_map") in
      let ub = Attr.as_map (Attr.find_exn o.attrs "upper_map") in
      let step = Attr.as_int (Attr.find_exn o.attrs "step") in
      let blk = entry_block (List.hd o.regions) in
      let iv, iter_params =
        match blk.params with
        | iv :: rest -> (iv, rest)
        | [] -> invalid_arg "pretty_op: affine.for without induction variable"
      in
      let iter_str =
        if o.operands = [] then ""
        else
          Printf.sprintf " iter_args(%s = %s)"
            (vlist iter_params) (vlist o.operands)
      in
      let bound m =
        match Affine_map.as_constant m with
        | Some c -> string_of_int c
        | None -> Affine_map.to_string m
      in
      let step_str = if step = 1 then "" else Printf.sprintf " step %d" step in
      let dir_attrs =
        List.filter
          (fun (k, _) -> String.length k > 4 && String.sub k 0 4 = "hls.")
          o.attrs
      in
      line
        (Printf.sprintf "%saffine.for %s = %s to %s%s%s%s {" res_prefix
           (vname iv) (bound lb) (bound ub) step_str iter_str
           (attrs_to_string dir_attrs));
      List.iter (pretty_op buf (indent + 2)) blk.ops;
      line "}"
  | "affine.load" | "memref.load" ->
      let mem, idxs =
        match o.operands with
        | m :: rest -> (m, rest)
        | [] -> invalid_arg "pretty_op: load without operands"
      in
      let subs =
        match Attr.find o.attrs "map" with
        | Some (Attr.Map m) when not (Affine_map.equal m (Affine_map.identity (List.length idxs))) ->
            Printf.sprintf "[%s] via %s" (vlist idxs) (Affine_map.to_string m)
        | _ -> Printf.sprintf "[%s]" (vlist idxs)
      in
      line
        (Printf.sprintf "%s%s %s%s : %s" res_prefix o.name (vname mem) subs
           (Types.to_string mem.ty))
  | "affine.store" | "memref.store" ->
      let v, mem, idxs =
        match o.operands with
        | v :: m :: rest -> (v, m, rest)
        | _ -> invalid_arg "pretty_op: store without operands"
      in
      line
        (Printf.sprintf "%s %s, %s[%s] : %s" o.name (vname v) (vname mem)
           (vlist idxs) (Types.to_string mem.ty))
  | "scf.if" ->
      let then_r = List.nth o.regions 0 and else_r = List.nth o.regions 1 in
      line
        (Printf.sprintf "%sscf.if %s {" res_prefix
           (vname (List.hd o.operands)));
      List.iter (pretty_op buf (indent + 2)) (entry_block then_r).ops;
      if (entry_block else_r).ops <> [] then begin
        line "} else {";
        List.iter (pretty_op buf (indent + 2)) (entry_block else_r).ops
      end;
      line "}"
  | "scf.for" ->
      let lb, ub, step, iters =
        match o.operands with
        | lb :: ub :: step :: rest -> (lb, ub, step, rest)
        | _ -> invalid_arg "pretty_op: scf.for operands"
      in
      let blk = entry_block (List.hd o.regions) in
      let iv = List.hd blk.params and iter_params = List.tl blk.params in
      let iter_str =
        if iters = [] then ""
        else
          Printf.sprintf " iter_args(%s = %s)" (vlist iter_params) (vlist iters)
      in
      line
        (Printf.sprintf "%sscf.for %s = %s to %s step %s%s {" res_prefix
           (vname iv) (vname lb) (vname ub) (vname step) iter_str);
      List.iter (pretty_op buf (indent + 2)) blk.ops;
      line "}"
  | _ ->
      let ty_suffix =
        match o.results with
        | [] -> ""
        | rs -> " : " ^ tylist (List.map (fun v -> v.ty) rs)
      in
      line
        (Printf.sprintf "%s%s %s%s%s" res_prefix o.name (vlist o.operands)
           (attrs_to_string o.attrs) ty_suffix)

let func_to_string ?(generic = false) (f : func) =
  let buf = Buffer.create 1024 in
  let args =
    String.concat ", "
      (List.map (fun v -> vname v ^ ": " ^ Types.to_string v.ty) f.args)
  in
  Buffer.add_string buf
    (Printf.sprintf "func.func @%s(%s) -> (%s)%s {\n" f.fname args
       (tylist f.ret_tys)
       (match f.fattrs with
       | [] -> ""
       | a -> " attributes" ^ attrs_to_string a));
  let blk = entry_block f.body in
  if generic then List.iter (generic_op buf 2) blk.ops
  else List.iter (pretty_op buf 2) blk.ops;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let module_to_string ?(generic = false) (m : modul) =
  "module {\n"
  ^ String.concat "\n" (List.map (func_to_string ~generic) m.funcs)
  ^ "}\n"

let print ?generic m = print_string (module_to_string ?generic m)
