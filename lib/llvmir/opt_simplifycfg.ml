(** CFG simplification:
    - fold conditional branches on constant conditions;
    - remove blocks unreachable from the entry (fixing up phis);
    - merge a block into its unique predecessor when that predecessor
      has a single successor (straightening chains the lowering and
      other passes leave behind). *)

open Linstr
open Lmodule
module Sym = Support.Interner

(** Drop phi entries coming from labels not in [preds]. *)
let prune_phis (f : func) (live_preds : Sym.t -> Sym.t list) : func =
  {
    f with
    blocks =
      List.map
        (fun (b : block) ->
          let keep = live_preds b.label in
          {
            b with
            insts =
              List.concat_map
                (fun (i : Linstr.t) ->
                  match i.op with
                  | Phi incoming -> (
                      let incoming' =
                        List.filter (fun (_, l) -> List.mem l keep) incoming
                      in
                      match incoming' with
                      | [] -> []
                      | _ -> [ { i with op = Phi incoming' } ])
                  | _ -> [ i ])
                b.insts;
          })
        f.blocks;
  }

let fold_const_branches (f : func) : func * bool =
  let changed = ref false in
  let f' =
    rewrite_insts
      (fun (i : Linstr.t) ->
        match i.op with
        | CondBr (Lvalue.Const (Lvalue.CInt (c, _)), t, e) ->
            changed := true;
            [ { i with op = Br (if c <> 0 then t else e) } ]
        | CondBr (_, t, e) when t = e ->
            changed := true;
            [ { i with op = Br t } ]
        | _ -> [ i ])
      f
  in
  (* return the original value when nothing folded: downstream CFG
     queries and the incremental verifier key on physical identity, so
     handing back a rebuilt copy would invalidate both for a no-op *)
  ((if !changed then f' else f), !changed)

let remove_unreachable ?am (f : func) : func * bool =
  let cfg = Analysis.cfg ?am f in
  let dead = Cfg.unreachable_blocks cfg in
  if dead = [] then (f, false)
  else begin
    let dead_labels = List.map (Cfg.label cfg) dead in
    let blocks =
      List.filter (fun (b : block) -> not (List.mem b.label dead_labels)) f.blocks
    in
    let f' = { f with blocks } in
    let cfg' = Analysis.cfg ?am f' in
    let live_preds label =
      match Cfg.index_of cfg' label with
      | Some i -> List.map (Cfg.label cfg') cfg'.Cfg.preds.(i)
      | None -> []
    in
    (prune_phis f' live_preds, true)
  end

(** Merge each block into its unique predecessor when that predecessor
    has a single successor and the block has no phis.  Whole chains
    ([a -> b -> c]) collapse in one sweep: every absorbable block is
    marked against one CFG, then each unabsorbed head concatenates its
    chain's instructions (dropping the intermediate terminators) in a
    single rebuild — the fixpoint a merge-one-pair-then-recompute loop
    reaches, without the per-merge CFG rebuilds. *)
let merge_blocks ?am (f : func) : func * bool =
  let cfg = Analysis.cfg ?am f in
  let n = Cfg.n_blocks cfg in
  (* absorbed.(bi) = true: bi folds into its unique predecessor *)
  let absorbed = Array.make n false in
  let any = ref false in
  for bi = 1 to n - 1 do
    match cfg.Cfg.preds.(bi) with
    | [ p ] when List.length cfg.Cfg.succs.(p) = 1 && p <> bi ->
        let blk = Cfg.block cfg bi in
        let has_phi =
          List.exists
            (fun (i : Linstr.t) ->
              match i.op with Phi _ -> true | _ -> false)
            blk.insts
        in
        if not has_phi then begin
          absorbed.(bi) <- true;
          any := true
        end
    | _ -> ()
  done;
  if not !any then (f, false)
  else begin
    (* absorbed label -> label of its chain head, for phi fixup *)
    let head_of = Array.init n Fun.id in
    for bi = 1 to n - 1 do
      (* preds come before their single successor in any order; resolve
         lazily by chasing to the root *)
      if absorbed.(bi) then
        match cfg.Cfg.preds.(bi) with [ p ] -> head_of.(bi) <- p | _ -> ()
    done;
    (* fuel-bounded: a fully-absorbed cycle cannot be reachable (each
       node would need a second, external predecessor) and
       [remove_unreachable] runs first, but don't hang if that ordering
       ever changes *)
    let rec root fuel bi =
      if head_of.(bi) = bi || fuel = 0 then bi else root (fuel - 1) head_of.(bi)
    in
    let relabel : Sym.t Sym.Tbl.t = Sym.Tbl.create 8 in
    for bi = 1 to n - 1 do
      if absorbed.(bi) then
        Sym.Tbl.replace relabel (Cfg.label cfg bi) (Cfg.label cfg (root n bi))
    done;
    let drop_term insts =
      match List.rev insts with _term :: rest -> List.rev rest | [] -> []
    in
    let rec chain_insts bi =
      let blk = Cfg.block cfg bi in
      match cfg.Cfg.succs.(bi) with
      | [ s ] when absorbed.(s) -> drop_term blk.insts @ chain_insts s
      | _ -> blk.insts
    in
    let blocks = ref [] in
    for bi = n - 1 downto 0 do
      if not absorbed.(bi) then
        blocks :=
          { (Cfg.block cfg bi) with insts = chain_insts bi } :: !blocks
    done;
    (* phis referencing an absorbed label now come from its chain head *)
    let fixup (b : block) =
      {
        b with
        insts =
          List.map
            (fun (i : Linstr.t) ->
              match i.op with
              | Phi incoming ->
                  {
                    i with
                    op =
                      Phi
                        (List.map
                           (fun ((v : Lvalue.t), l) ->
                             ( v,
                               match Sym.Tbl.find_opt relabel l with
                               | Some l' -> l'
                               | None -> l ))
                           incoming);
                  }
              | _ -> i)
            b.insts;
      }
    in
    ({ f with blocks = List.map fixup !blocks }, true)
  end

let run_func ?am (f : func) : func * bool =
  let changed_total = ref false in
  let rec go f n =
    if n = 0 then f
    else begin
      let f, c1 = fold_const_branches f in
      let f, c2 = remove_unreachable ?am f in
      let f, c3 = merge_blocks ?am f in
      if c1 || c2 || c3 then begin
        changed_total := true;
        go f (n - 1)
      end
      else f
    end
  in
  let f' = go f 64 in
  (f', !changed_total)

let run ?am (m : t) : t = map_funcs (fun f -> fst (run_func ?am f)) m
