(** CFG simplification:
    - fold conditional branches on constant conditions;
    - remove blocks unreachable from the entry (fixing up phis);
    - merge a block into its unique predecessor when that predecessor
      has a single successor (straightening chains the lowering and
      other passes leave behind). *)

open Linstr
open Lmodule
module Sym = Support.Interner

(** Drop phi entries coming from labels not in [preds]. *)
let prune_phis (f : func) (live_preds : Sym.t -> Sym.t list) : func =
  {
    f with
    blocks =
      List.map
        (fun (b : block) ->
          let keep = live_preds b.label in
          {
            b with
            insts =
              List.concat_map
                (fun (i : Linstr.t) ->
                  match i.op with
                  | Phi incoming -> (
                      let incoming' =
                        List.filter (fun (_, l) -> List.mem l keep) incoming
                      in
                      match incoming' with
                      | [] -> []
                      | _ -> [ { i with op = Phi incoming' } ])
                  | _ -> [ i ])
                b.insts;
          })
        f.blocks;
  }

let fold_const_branches (f : func) : func * bool =
  let changed = ref false in
  let f' =
    rewrite_insts
      (fun (i : Linstr.t) ->
        match i.op with
        | CondBr (Lvalue.Const (Lvalue.CInt (c, _)), t, e) ->
            changed := true;
            [ { i with op = Br (if c <> 0 then t else e) } ]
        | CondBr (_, t, e) when t = e ->
            changed := true;
            [ { i with op = Br t } ]
        | _ -> [ i ])
      f
  in
  (f', !changed)

let remove_unreachable ?am (f : func) : func * bool =
  let cfg = Analysis.cfg ?am f in
  let dead = Cfg.unreachable_blocks cfg in
  if dead = [] then (f, false)
  else begin
    let dead_labels = List.map (Cfg.label cfg) dead in
    let blocks =
      List.filter (fun (b : block) -> not (List.mem b.label dead_labels)) f.blocks
    in
    let f' = { f with blocks } in
    let cfg' = Analysis.cfg ?am f' in
    let live_preds label =
      match Cfg.index_of cfg' label with
      | Some i -> List.map (Cfg.label cfg') cfg'.Cfg.preds.(i)
      | None -> []
    in
    (prune_phis f' live_preds, true)
  end

(** Merge [b] into its unique predecessor [p] when [p]'s terminator is
    an unconditional branch to [b] and [b] has no phis. *)
let merge_blocks ?am (f : func) : func * bool =
  let cfg = Analysis.cfg ?am f in
  let n = Cfg.n_blocks cfg in
  (* find a mergeable pair *)
  let candidate = ref None in
  for bi = 1 to n - 1 do
    if !candidate = None then
      match cfg.Cfg.preds.(bi) with
      | [ p ] when List.length cfg.Cfg.succs.(p) = 1 && p <> bi ->
          let blk = Cfg.block cfg bi in
          let has_phi =
            List.exists
              (fun (i : Linstr.t) ->
                match i.op with Phi _ -> true | _ -> false)
              blk.insts
          in
          if not has_phi then candidate := Some (p, bi)
      | _ -> ()
  done;
  match !candidate with
  | None -> (f, false)
  | Some (p, bi) ->
      let pred = Cfg.block cfg p in
      let blk = Cfg.block cfg bi in
      let pred_insts =
        match List.rev pred.insts with
        | _term :: rest -> List.rev rest
        | [] -> []
      in
      let merged = { pred with insts = pred_insts @ blk.insts } in
      let blocks =
        List.filter_map
          (fun (b : block) ->
            if b.label = pred.label then Some merged
            else if b.label = blk.label then None
            else Some b)
          f.blocks
      in
      (* phis in successors referencing the removed label now come from
         the predecessor's label *)
      let fixup (b : block) =
        {
          b with
          insts =
            List.map
              (fun (i : Linstr.t) ->
                match i.op with
                | Phi incoming ->
                    {
                      i with
                      op =
                        Phi
                          (List.map
                             (fun (v, l) ->
                               ((v : Lvalue.t), if l = blk.label then pred.label else l))
                             incoming);
                    }
                | _ -> i)
              b.insts;
        }
      in
      ({ f with blocks = List.map fixup blocks }, true)

let run_func ?am (f : func) : func * bool =
  let changed_total = ref false in
  let rec go f n =
    if n = 0 then f
    else begin
      let f, c1 = fold_const_branches f in
      let f, c2 = remove_unreachable ?am f in
      let f, c3 = merge_blocks ?am f in
      if c1 || c2 || c3 then begin
        changed_total := true;
        go f (n - 1)
      end
      else f
    end
  in
  let f' = go f 64 in
  (f', !changed_total)

let run ?am (m : t) : t = map_funcs (fun f -> fst (run_func ?am f)) m
