(** LLVM IR containers: blocks, functions, globals, modules — plus the
    rewrite utilities every pass builds on.

    Block labels are interned symbols; per-function def/use/def-map
    tables live in {!Findex} (built once per function and shared), not
    here. *)

module Sym = Support.Interner

type param = {
  pname : string;
  pty : Ltype.t;
  pattrs : (string * string) list;
      (** e.g. [("fpga.interface", "bram")], [("partition.factor", "4")] *)
}

type block = { label : Sym.t; insts : Linstr.t list }

type func = {
  fname : string;
  ret_ty : Ltype.t;
  params : param list;
  blocks : block list;  (** head = entry *)
  fattrs : (string * string) list;
}

type global = {
  gname : string;
  gty : Ltype.t;  (** content type *)
  ginit : Lvalue.const option;
  gconst : bool;
}

(** External declaration (intrinsics, HLS spec ops). *)
type decl = { dname : string; dret : Ltype.t; dargs : Ltype.t list }

type t = {
  mname : string;
  funcs : func list;
  globals : global list;
  decls : decl list;
}

val empty : string -> t
val find_func : t -> string -> func option
val find_func_exn : t -> string -> func
val find_block : func -> Sym.t -> block option
val find_block_exn : func -> Sym.t -> block
val entry : func -> block
val find_decl : t -> string -> decl option

(** Add a declaration if not already present. *)
val ensure_decl : t -> decl -> t

val replace_func : t -> func -> t
val map_funcs : (func -> func) -> t -> t

(** [share_unchanged ~prev m] — reuse [prev]'s physical function
    values wherever [m]'s same-named function is structurally equal
    (polymorphic compare; NaN-safe).  Restores the physical identity
    the {!Analysis} caches and the incremental verifier key on after
    a pass that rebuilds every function unconditionally. *)
val share_unchanged : prev:t -> t -> t

(** Total instruction count — the "IR size" metric pass tracing
    reports deltas of. *)
val instr_count : t -> int

val iter_insts : (Linstr.t -> unit) -> func -> unit
val fold_insts : ('a -> Linstr.t -> 'a) -> 'a -> func -> 'a
val inst_count : func -> int

(** Rewrite every instruction; [f] returns the replacement list. *)
val rewrite_insts : (Linstr.t -> Linstr.t list) -> func -> func

(** Map all operand values through [f] everywhere in the function. *)
val map_values : (Lvalue.t -> Lvalue.t) -> func -> func

(** Fresh-name generator seeded with every name already in [fn]. *)
val namegen : func -> Support.Namegen.t
