(** LLVM IR values: constants, virtual registers and globals.

    Register and global names are interned symbols
    ({!Support.Interner.t}), so value equality and hashing are O(1);
    the parser and printer translate to and from text at the module
    boundary only. *)

module Sym = Support.Interner

type const =
  | CInt of int * Ltype.t
  | CFloat of float * Ltype.t
  | CNull of Ltype.t  (** null pointer of the given pointer type *)
  | CUndef of Ltype.t
  | CZero of Ltype.t  (** zeroinitializer *)

type t =
  | Reg of Sym.t * Ltype.t  (** [%name] — function-local SSA register *)
  | Global of Sym.t * Ltype.t  (** [@name]; type is the pointer type *)
  | Const of const

(** [reg name ty] builds a register from its textual name, interning
    it — the string-facing constructor for builders and tests. *)
val reg : string -> Ltype.t -> t

val global : string -> Ltype.t -> t
val ci : ?ty:Ltype.t -> int -> t
val ci32 : int -> t
val ci64 : int -> t
val ci1 : bool -> t
val cf : ?ty:Ltype.t -> float -> t
val undef : Ltype.t -> t
val type_of : t -> Ltype.t
val const_to_string : const -> string
val to_string : t -> string

(** Value with its type prefix, as operands print in .ll files. *)
val typed_to_string : t -> string

val is_const : t -> bool
val const_int_value : t -> int option
val const_float_value : t -> float option

(** Same SSA register? *)
val same_reg : t -> t -> bool

val equal : t -> t -> bool
