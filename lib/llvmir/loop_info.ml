(** Natural-loop detection over the dominator tree, plus trip-count
    pattern matching for the canonical loops the lowering emits.

    The HLS backend consumes this analysis to recover the loop nest
    from the CFG (Vitis does the same on its LLVM) and to know each
    loop's trip count, II/unroll requests ([!md] on the back edge or
    [_ssdm_op_Spec*] marker calls in the header). *)

type loop = {
  header : int;
  latches : int list;  (** blocks with a back edge to [header] *)
  body : int list;  (** all blocks in the loop, including header *)
  depth : int;  (** 1 = outermost *)
  parent : int option;  (** index into the loops array *)
  children : int list;  (** indices of directly nested loops *)
}

type t = {
  cfg : Cfg.t;
  loops : loop array;
  loop_of_block : int option array;  (** innermost loop containing block *)
}

let compute (cfg : Cfg.t) : t =
  let dom = Dominance.compute cfg in
  let n = Cfg.n_blocks cfg in
  (* back edges: succ edge u -> h where h dominates u *)
  let back_edges = ref [] in
  for u = 0 to n - 1 do
    List.iter
      (fun h -> if Dominance.dominates dom h u then back_edges := (u, h) :: !back_edges)
      cfg.Cfg.succs.(u)
  done;
  (* group by header *)
  let headers =
    List.sort_uniq compare (List.map snd !back_edges)
  in
  let raw_loops =
    List.map
      (fun h ->
        let latches =
          List.filter_map
            (fun (u, h') -> if h' = h then Some u else None)
            !back_edges
        in
        (* loop body: blocks reaching a latch backwards without passing h *)
        let in_loop = Hashtbl.create 8 in
        Hashtbl.replace in_loop h ();
        let rec pull u =
          if not (Hashtbl.mem in_loop u) then begin
            Hashtbl.replace in_loop u ();
            List.iter pull cfg.Cfg.preds.(u)
          end
        in
        List.iter pull latches;
        let body =
          List.filter (Hashtbl.mem in_loop) (List.init n (fun i -> i))
        in
        (h, latches, body))
      headers
  in
  (* nesting: loop A is inside B if A's header is in B's body and A <> B *)
  let arr = Array.of_list raw_loops in
  let contains i j =
    (* loop i contains loop j *)
    let _, _, body_i = arr.(i) in
    let hj, _, _ = arr.(j) in
    i <> j && List.mem hj body_i
  in
  let k = Array.length arr in
  let parent = Array.make k None in
  for j = 0 to k - 1 do
    (* innermost containing loop = the containing loop with smallest body *)
    let best = ref None in
    for i = 0 to k - 1 do
      if contains i j then
        match !best with
        | None -> best := Some i
        | Some b ->
            let _, _, body_b = arr.(b) in
            let _, _, body_i = arr.(i) in
            if List.length body_i < List.length body_b then best := Some i
    done;
    parent.(j) <- !best
  done;
  let depth = Array.make k 0 in
  let rec depth_of j =
    if depth.(j) > 0 then depth.(j)
    else begin
      let d = match parent.(j) with None -> 1 | Some p -> depth_of p + 1 in
      depth.(j) <- d;
      d
    end
  in
  for j = 0 to k - 1 do ignore (depth_of j) done;
  let children = Array.make k [] in
  for j = k - 1 downto 0 do
    match parent.(j) with
    | Some p -> children.(p) <- j :: children.(p)
    | None -> ()
  done;
  let loops =
    Array.init k (fun j ->
        let header, latches, body = arr.(j) in
        {
          header;
          latches;
          body;
          depth = depth.(j);
          parent = parent.(j);
          children = children.(j);
        })
  in
  let loop_of_block = Array.make n None in
  (* innermost loop per block: deepest loop whose body contains it *)
  for b = 0 to n - 1 do
    let best = ref None in
    Array.iteri
      (fun j l ->
        if List.mem b l.body then
          match !best with
          | None -> best := Some j
          | Some jb -> if l.depth > loops.(jb).depth then best := Some j)
      loops;
    loop_of_block.(b) <- !best
  done;
  { cfg; loops; loop_of_block }

(** Rebase a cached loop nest onto a rewritten function value.  Only
    valid when the rewrite preserved the CFG shape — the
    analysis-manager preserve contract. *)
let rebase t (f : Lmodule.func) = { t with cfg = Cfg.rebase t.cfg f }

let top_level (t : t) =
  List.filter (fun j -> t.loops.(j).parent = None)
    (List.init (Array.length t.loops) (fun j -> j))

(** Match the canonical counted-loop pattern the lowering emits:
    header has [%iv = phi ty [ lb, pre ], [ %iv.next, latch ]],
    a compare [icmp slt %iv, ub] controlling the exit, and
    [%iv.next = add %iv, step].  Returns [Some (lb, ub, step)] when all
    three are literal constants. *)
let trip_count_pattern (t : t) (j : int) : (int * int * int) option =
  let l = t.loops.(j) in
  let header_blk = Cfg.block t.cfg l.header in
  let insts = header_blk.Lmodule.insts in
  (* find the iv phi: a phi with one incoming from outside, one from a latch *)
  let latch_labels = List.map (Cfg.label t.cfg) l.latches in
  let find_phi () =
    List.find_map
      (fun (i : Linstr.t) ->
        match i.op with
        | Linstr.Phi incoming when List.length incoming = 2 ->
            let from_latch =
              List.find_opt (fun (_, lbl) -> List.mem lbl latch_labels) incoming
            in
            let from_outside =
              List.find_opt
                (fun (_, lbl) -> not (List.mem lbl latch_labels))
                incoming
            in
            (match (from_latch, from_outside) with
            | Some (vl, _), Some (vo, _) -> Some (i.result, vo, vl)
            | _ -> None)
        | _ -> None)
      insts
  in
  match find_phi () with
  | None -> None
  | Some (iv, init_v, next_v) -> (
      let lb = Lvalue.const_int_value init_v in
      (* ub from the header's exit compare *)
      let ub =
        List.find_map
          (fun (i : Linstr.t) ->
            match i.op with
            | Linstr.Icmp (Linstr.ISlt, Lvalue.Reg (r, _), bound) when r = iv ->
                Lvalue.const_int_value bound
            | Linstr.Icmp (Linstr.ISge, Lvalue.Reg (r, _), bound) when r = iv ->
                Lvalue.const_int_value bound
            | _ -> None)
          insts
      in
      (* step from the increment feeding the phi (may live in any loop block) *)
      let next_name =
        match next_v with Lvalue.Reg (r, _) -> Some r | _ -> None
      in
      let step =
        match next_name with
        | None -> None
        | Some nn ->
            List.find_map
              (fun bi ->
                let blk = Cfg.block t.cfg bi in
                List.find_map
                  (fun (i : Linstr.t) ->
                    if i.result = nn then
                      match i.op with
                      | Linstr.IBin (Linstr.Add, Lvalue.Reg (r, _), stepv)
                        when r = iv ->
                          Lvalue.const_int_value stepv
                      | Linstr.IBin (Linstr.Add, stepv, Lvalue.Reg (r, _))
                        when r = iv ->
                          Lvalue.const_int_value stepv
                      | _ -> None
                    else None)
                  blk.Lmodule.insts)
              l.body
      in
      match (lb, ub, step) with
      | Some lb, Some ub, Some st when st > 0 -> Some (lb, ub, st)
      | _ -> None)

(** Trip count if the canonical pattern matched. *)
let trip_count t j =
  match trip_count_pattern t j with
  | Some (lb, ub, st) -> Some (max 0 ((ub - lb + st - 1) / st))
  | None -> None
