(** Per-function index: instruction arena, def table, use-def/def-use
    edges, block membership and use counts — computed once and shared
    by every analysis and pass that used to rebuild its own string
    tables ad hoc.

    The index is a pure snapshot of one [Lmodule.func] value; any pass
    that rewrites the function must use a fresh index (or one the
    {!Pass} analysis manager revalidated) afterwards. *)

module Sym = Support.Interner

type def_site =
  | Param of int  (** defined by the [i]-th function parameter *)
  | Instr of int  (** defined by the instruction at this arena index *)

type t

val build : Lmodule.func -> t

(** Rebase a cached index onto a rewritten function value.  Only valid
    when the rewrite changed no instruction — the analysis-manager
    preserve contract for the findex analysis. *)
val rebase : t -> Lmodule.func -> t

val func : t -> Lmodule.func
val n_instrs : t -> int
val n_blocks : t -> int

(** Instruction at arena index [k]; the arena is in layout order, so
    intra-block ordering is plain index comparison. *)
val instr : t -> int -> Linstr.t

val block_of_instr : t -> int -> int
val block_label : t -> int -> Sym.t
val block_number : t -> Sym.t -> int option

(** Unique def site of an SSA name; [None] for names the function does
    not define (undefined references). *)
val def : t -> Sym.t -> def_site option

(** Defining instruction; [None] for parameters and unknown names. *)
val def_instr : t -> Sym.t -> Linstr.t option

(** Is [n] defined here at all (parameter or instruction result)? *)
val defines : t -> Sym.t -> bool

(** Arena indices of the instructions using [n], in layout order. *)
val users : t -> Sym.t -> int list

(** Operand occurrences of [n] across the function (0 when unused). *)
val use_count : t -> Sym.t -> int

val is_used : t -> Sym.t -> bool

(** Root of a pointer value: walk GEP/bitcast chains back to the
    underlying parameter, alloca or global name. *)
val base_pointer : t -> Lvalue.t -> Sym.t option

(** Substitute registers by name, resolving substitution chains, via a
    single indexed walk: chains are path-compressed once, then only
    the instructions the index lists as users of a substituted name
    are rebuilt. *)
val substitute : t -> Lvalue.t Sym.Tbl.t -> Lmodule.func

(** Convenience: substitute over a function without a prebuilt index. *)
val substitute_func : Lvalue.t Sym.Tbl.t -> Lmodule.func -> Lmodule.func
