(** Per-function index over the packed {!Iarena} encoding: def table,
    use-def/def-use edges, block membership and use counts — computed
    once and shared by every analysis and pass that used to rebuild
    its own string tables ad hoc.

    SSA names map to dense {e local ids}; defs, use counts and user
    edges are flat arrays over those ids.  Passes that want the packed
    storage reach it through {!arena}; everything else keeps the
    boxed-instruction view of the original index.

    The index is a pure snapshot of one [Lmodule.func] value; any pass
    that rewrites the function must use a fresh index (or one the
    {!Pass} analysis manager revalidated) afterwards. *)

module Sym = Support.Interner

type def_site =
  | Param of int  (** defined by the [i]-th function parameter *)
  | Instr of int  (** defined by the instruction at this arena index *)

type t

val build : Lmodule.func -> t

(** Index a prebuilt arena.  [f] must be the function the arena
    materialises — {!build} pairs the two; passes seeding the analysis
    cache pair {!Iarena.compact} with their output function. *)
val of_arena : Lmodule.func -> Iarena.t -> t

(** The packed storage this index was computed over. *)
val arena : t -> Iarena.t

(** Rebase a cached index onto a rewritten function value.  Only valid
    when the rewrite changed no instruction — the analysis-manager
    preserve contract for the findex analysis. *)
val rebase : t -> Lmodule.func -> t

val func : t -> Lmodule.func
val n_instrs : t -> int
val n_blocks : t -> int

(** Instruction at arena index [k]; the arena is in layout order, so
    intra-block ordering is plain index comparison. *)
val instr : t -> int -> Linstr.t

val block_of_instr : t -> int -> int
val block_label : t -> int -> Sym.t
val block_number : t -> Sym.t -> int option

(** Unique def site of an SSA name; [None] for names the function does
    not define (undefined references). *)
val def : t -> Sym.t -> def_site option

(** Defining instruction; [None] for parameters and unknown names. *)
val def_instr : t -> Sym.t -> Linstr.t option

(** Is [n] defined here at all (parameter or instruction result)? *)
val defines : t -> Sym.t -> bool

(** {1 Dense local-id view}

    SSA names (parameters, results, register operands) get dense ids
    [0 .. n_locals - 1]; the flat tables below let DCE-style cascades
    run without hashing. *)

val n_locals : t -> int

(** Local id of a name; [-1] when the function never mentions it. *)
val local_of : t -> Sym.t -> int

(** Local id of the register at operand-pool slot [s]; [-1] for
    globals and constants. *)
val local_of_slot : t -> int -> int

(** Local id of row [k]'s result; [-1] for void instructions. *)
val local_of_res : t -> int -> int

(** Fresh copy of the per-local operand-occurrence counts — a mutable
    working set for kill cascades. *)
val use_counts : t -> int array

val def_of_local : t -> int -> def_site option

(** Apply [f] to each user of [n] (arena indices, reverse layout
    order) without building a list. *)
val iter_users : t -> Sym.t -> (int -> unit) -> unit

(** Arena indices of the instructions using [n], in layout order. *)
val users : t -> Sym.t -> int list

(** Operand occurrences of [n] across the function (0 when unused). *)
val use_count : t -> Sym.t -> int

val is_used : t -> Sym.t -> bool

(** Root of a pointer value: walk GEP/bitcast chains back to the
    underlying parameter, alloca or global name. *)
val base_pointer : t -> Lvalue.t -> Sym.t option

(** Path-compress a substitution table: every key maps straight to its
    final value, so a rewrite resolves each operand with one lookup. *)
val compress_chains : Lvalue.t Sym.Tbl.t -> Lvalue.t Sym.Tbl.t

(** Substitute registers by name, resolving substitution chains, via a
    single indexed walk: chains are path-compressed once, then only
    the instructions the index lists as users of a substituted name
    are rebuilt. *)
val substitute : t -> Lvalue.t Sym.Tbl.t -> Lmodule.func

(** Convenience: substitute over a function without a prebuilt index. *)
val substitute_func : Lvalue.t Sym.Tbl.t -> Lmodule.func -> Lmodule.func
