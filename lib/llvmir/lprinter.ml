(** Textual output of LLVM IR in (near-).ll syntax.

    Divergences from upstream .ll, chosen for exact round-tripping with
    {!Lparser}:
    - instruction metadata prints as a [!md{key = value, ...}] suffix
      instead of numbered metadata nodes;
    - parameter/function attributes print as [attrs(key = "value")];
    - [alloca] with a static count prints as [alloca ty, i64 n]. *)

open Linstr
open Lmodule
module Sym = Support.Interner

let vstr = Lvalue.to_string
let tstr = Ltype.to_string

(** Operand with its type, as .ll prints most operands. *)
let tv v = Printf.sprintf "%s %s" (tstr (Lvalue.type_of v)) (vstr v)

let meta_str = function
  | MInt i -> string_of_int i
  | MStr s -> Printf.sprintf "%S" s

let imeta_str = function
  | [] -> ""
  | kvs ->
      " !md{"
      ^ String.concat ", "
          (List.map (fun (k, v) -> k ^ " = " ^ meta_str v) kvs)
      ^ "}"

let attrs_str = function
  | [] -> ""
  | kvs ->
      " attrs("
      ^ String.concat ", "
          (List.map (fun (k, v) -> Printf.sprintf "%s = %S" k v) kvs)
      ^ ")"

let inst_to_string (i : Linstr.t) =
  let lhs =
    if Sym.is_empty i.result then ""
    else Printf.sprintf "%%%s = " (Sym.name i.result)
  in
  let body =
    match i.op with
    | IBin (op, a, b) ->
        Printf.sprintf "%s %s %s, %s" (string_of_ibinop op)
          (tstr (Lvalue.type_of a)) (vstr a) (vstr b)
    | FBin (op, a, b) ->
        Printf.sprintf "%s %s %s, %s" (string_of_fbinop op)
          (tstr (Lvalue.type_of a)) (vstr a) (vstr b)
    | Icmp (p, a, b) ->
        Printf.sprintf "icmp %s %s %s, %s" (string_of_icmp p)
          (tstr (Lvalue.type_of a)) (vstr a) (vstr b)
    | Fcmp (p, a, b) ->
        Printf.sprintf "fcmp %s %s %s, %s" (string_of_fcmp p)
          (tstr (Lvalue.type_of a)) (vstr a) (vstr b)
    | Alloca (ty, 1) -> Printf.sprintf "alloca %s" (tstr ty)
    | Alloca (ty, n) -> Printf.sprintf "alloca %s, i64 %d" (tstr ty) n
    | Load (ty, p) -> Printf.sprintf "load %s, %s" (tstr ty) (tv p)
    | Store (v, p) -> Printf.sprintf "store %s, %s" (tv v) (tv p)
    | Gep { inbounds; src_ty; base; idxs } ->
        Printf.sprintf "getelementptr%s %s, %s%s"
          (if inbounds then " inbounds" else "")
          (tstr src_ty) (tv base)
          (String.concat "" (List.map (fun x -> ", " ^ tv x) idxs))
    | Cast (c, v, ty) ->
        Printf.sprintf "%s %s to %s" (string_of_cast c) (tv v) (tstr ty)
    | Select (c, a, b) ->
        Printf.sprintf "select %s, %s, %s" (tv c) (tv a) (tv b)
    | Phi incoming ->
        let ty =
          match incoming with
          | (v, _) :: _ -> tstr (Lvalue.type_of v)
          | [] -> "void"
        in
        Printf.sprintf "phi %s %s" ty
          (String.concat ", "
             (List.map
                (fun (v, l) -> Printf.sprintf "[ %s, %%%s ]" (vstr v) (Sym.name l))
                incoming))
    | Call { callee; ret; args } ->
        Printf.sprintf "call %s @%s(%s)" (tstr ret) callee
          (String.concat ", " (List.map tv args))
    | ExtractValue (agg, path) ->
        Printf.sprintf "extractvalue %s%s" (tv agg)
          (String.concat ""
             (List.map (fun i -> ", " ^ string_of_int i) path))
    | InsertValue (agg, v, path) ->
        Printf.sprintf "insertvalue %s, %s%s" (tv agg) (tv v)
          (String.concat ""
             (List.map (fun i -> ", " ^ string_of_int i) path))
    | Freeze v -> Printf.sprintf "freeze %s" (tv v)
    | Ret (Some v) -> Printf.sprintf "ret %s" (tv v)
    | Ret None -> "ret void"
    | Br l -> Printf.sprintf "br label %%%s" (Sym.name l)
    | CondBr (c, t, e) ->
        Printf.sprintf "br %s, label %%%s, label %%%s" (tv c) (Sym.name t)
          (Sym.name e)
    | Switch (v, d, cases) ->
        Printf.sprintf "switch %s, label %%%s [ %s ]" (tv v) (Sym.name d)
          (String.concat " "
             (List.map
                (fun (c, l) ->
                  Printf.sprintf "%s %d, label %%%s"
                    (tstr (Lvalue.type_of v)) c (Sym.name l))
                cases))
    | Unreachable -> "unreachable"
  in
  lhs ^ body ^ imeta_str i.imeta

let block_to_string (b : block) =
  Sym.name b.label ^ ":\n"
  ^ String.concat ""
      (List.map (fun i -> "  " ^ inst_to_string i ^ "\n") b.insts)

let param_to_string (p : param) =
  Printf.sprintf "%s %%%s%s" (tstr p.pty) p.pname (attrs_str p.pattrs)

let func_to_string (f : func) =
  Printf.sprintf "define %s @%s(%s)%s {\n%s}\n" (tstr f.ret_ty) f.fname
    (String.concat ", " (List.map param_to_string f.params))
    (attrs_str f.fattrs)
    (String.concat "" (List.map block_to_string f.blocks))

let global_to_string (g : global) =
  Printf.sprintf "@%s = %s %s %s\n" g.gname
    (if g.gconst then "constant" else "global")
    (tstr g.gty)
    (match g.ginit with
    | Some c -> Lvalue.const_to_string c
    | None -> "zeroinitializer")

let decl_to_string (d : decl) =
  Printf.sprintf "declare %s @%s(%s)\n" (tstr d.dret) d.dname
    (String.concat ", " (List.map tstr d.dargs))

let module_to_string (m : t) =
  Printf.sprintf "; ModuleID = '%s'\n%s%s\n%s" m.mname
    (String.concat "" (List.map decl_to_string (List.rev m.decls)))
    (String.concat "" (List.map global_to_string m.globals))
    (String.concat "\n" (List.map func_to_string m.funcs))

let print m = print_string (module_to_string m)
